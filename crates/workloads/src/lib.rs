//! Synthetic SPEC CPU2006-like guest workloads.
//!
//! Real SPEC sources and reference inputs cannot be redistributed or executed
//! in this environment, so each benchmark is replaced by a small guest
//! program whose dominant kernel matches the real benchmark's character
//! (pointer chasing for `429.mcf`, streaming array updates for
//! `462.libquantum`, dynamic-programming inner loops for `456.hmmer`,
//! floating-point stencils for the FP suite, and so on).  The Captive-vs-QEMU
//! gap the paper reports is driven by memory-translation and FP-helper
//! overhead, which these kernels exercise in the same proportions.
//!
//! Every workload is deterministic: data is initialised by the guest program
//! itself from fixed seeds.

use guest_aarch64::asm::{self, Assembler};
use guest_aarch64::isa::Cond;
use hvm::virtio::{DESC_F_NEXT, DESC_F_WRITE, REQ_READ, REQ_WRITE, SECTOR_SIZE};

/// Base guest physical address where workload code is loaded.
pub const CODE_BASE: u64 = 0x1000;
/// Base guest physical address of workload data.
pub const DATA_BASE: u64 = 0x0010_0000;

/// Which suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// SPEC CPU2006 integer.
    Int,
    /// SPEC CPU2006 C++ floating point.
    Fp,
}

/// A ready-to-run guest program.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (SPEC-style).
    pub name: &'static str,
    /// Suite.
    pub suite: Suite,
    /// Instruction words to load at [`CODE_BASE`].
    pub words: Vec<u32>,
    /// Entry point.
    pub entry: u64,
}

/// Scale factor applied to all iteration counts (1 = quick, larger = longer).
#[derive(Debug, Clone, Copy)]
pub struct Scale(pub u32);

impl Default for Scale {
    fn default() -> Self {
        Scale(1)
    }
}

fn finish(name: &'static str, suite: Suite, a: Assembler) -> Workload {
    Workload {
        name,
        suite,
        words: a.finish(),
        entry: CODE_BASE,
    }
}

/// Pointer-chasing kernel (linked-list traversal): `429.mcf`, `471.omnetpp`,
/// `473.astar`, `483.xalancbmk`.
fn pointer_chase(name: &'static str, nodes: u32, iters: u32, scale: Scale) -> Workload {
    let mut a = Assembler::new();
    let stride = 64u32; // one "node" per cache line
                        // Build a circular linked list: node[i].next = &node[(i*7+1) % nodes]
    a.mov_imm64(1, DATA_BASE);
    a.push(asm::movz(2, 0, 0)); // i
    a.push(asm::movz(3, nodes & 0xFFFF, 0)); // node count
    a.label("build");
    //   idx = (i*7 + 1) % nodes
    a.push(asm::movz(4, 7, 0));
    a.push(asm::mul(4, 2, 4));
    a.push(asm::addi(4, 4, 1));
    a.push(asm::udiv(5, 4, 3));
    a.push(asm::mul(5, 5, 3));
    a.push(asm::sub(5, 4, 5)); // idx
    a.push(asm::movz(6, stride, 0));
    a.push(asm::mul(5, 5, 6));
    a.push(asm::add(5, 5, 1)); // &node[idx]
    a.push(asm::mul(7, 2, 6));
    a.push(asm::add(7, 7, 1)); // &node[i]
    a.push(asm::str(5, 7, 0));
    a.push(asm::addi(2, 2, 1));
    a.push(asm::cmp(2, 3));
    a.bcond_to(Cond::Ne, "build");
    // Chase the list.
    a.mov_imm64(2, (iters * scale.0) as u64);
    a.push(asm::orr(4, 1, 1)); // cursor = head
    a.push(asm::movz(9, 0, 0)); // checksum
    a.label("chase");
    a.push(asm::ldr(4, 4, 0));
    a.push(asm::add(9, 9, 4));
    a.push(asm::subi(2, 2, 1));
    a.cbnz_to(2, "chase");
    a.push(asm::hlt());
    finish(name, Suite::Int, a)
}

/// Streaming array update: `462.libquantum`, `401.bzip2`.
fn stream(name: &'static str, elems: u32, passes: u32, scale: Scale) -> Workload {
    let mut a = Assembler::new();
    a.mov_imm64(1, DATA_BASE);
    a.mov_imm64(10, (passes * scale.0) as u64);
    a.label("pass");
    a.push(asm::movz(2, 0, 0));
    a.push(asm::movz(3, elems & 0xFFFF, 0));
    a.label("elem");
    a.push(asm::lsli(4, 2, 3)); // offset = i * 8
    a.push(asm::add(4, 4, 1));
    a.push(asm::ldr(5, 4, 0));
    a.push(asm::eor(5, 5, 2));
    a.push(asm::addi(5, 5, 3));
    a.push(asm::str(5, 4, 0));
    a.push(asm::addi(2, 2, 1));
    a.push(asm::cmp(2, 3));
    a.bcond_to(Cond::Ne, "elem");
    a.push(asm::subi(10, 10, 1));
    a.cbnz_to(10, "pass");
    a.push(asm::hlt());
    finish(name, Suite::Int, a)
}

/// Integer dynamic-programming / hashing inner loop with data-dependent
/// branches: `400.perlbench`, `403.gcc`, `445.gobmk`, `456.hmmer`,
/// `458.sjeng`, `464.h264ref`.
fn int_mix(name: &'static str, iters: u32, branchy: bool, scale: Scale) -> Workload {
    let mut a = Assembler::new();
    a.mov_imm64(0, 0x9E37_79B9_7F4A_7C15);
    a.push(asm::movz(1, 0x1234, 0));
    a.mov_imm64(2, (iters * scale.0) as u64);
    a.mov_imm64(3, DATA_BASE);
    a.push(asm::movz(9, 0, 0));
    a.label("loop");
    a.push(asm::mul(4, 1, 0));
    a.push(asm::eor(1, 1, 4));
    a.push(asm::lsri(5, 1, 29));
    a.push(asm::add(1, 1, 5));
    if branchy {
        a.push(asm::ands(6, 1, 0));
        a.bcond_to(Cond::Eq, "skip");
        a.push(asm::addi(9, 9, 1));
        a.label("skip");
    }
    // A table access keyed by the hash (exercises the memory path).
    a.push(asm::movz(7, 0xFFF8, 0));
    a.push(asm::and(7, 1, 7));
    a.push(asm::add(7, 7, 3));
    a.push(asm::ldr(8, 7, 0));
    a.push(asm::add(8, 8, 1));
    a.push(asm::str(8, 7, 0));
    a.push(asm::subi(2, 2, 1));
    a.cbnz_to(2, "loop");
    a.push(asm::hlt());
    finish(name, Suite::Int, a)
}

/// Scalar floating-point stencil: `482.sphinx3`, `444.namd`, `435.gromacs`.
fn fp_stencil(name: &'static str, iters: u32, scale: Scale) -> Workload {
    let mut a = Assembler::new();
    a.push(asm::fmov_imm(0, 0x78)); // 1.5
    a.push(asm::fmov_imm(1, 0x70)); // 1.0
    a.push(asm::fmov_imm(2, 0x60)); // 0.5
    a.mov_imm64(1, (iters * scale.0) as u64);
    a.mov_imm64(3, DATA_BASE);
    a.label("loop");
    a.push(asm::fmul(3, 0, 2));
    a.push(asm::fadd(4, 3, 1));
    a.push(asm::fmadd(5, 3, 4, 2));
    a.push(asm::fdiv(6, 5, 0));
    a.push(asm::fsqrt(7, 6));
    a.push(asm::str_d(7, 3, 0));
    a.push(asm::ldr_d(0, 3, 0));
    a.push(asm::subi(1, 1, 1));
    a.cbnz_to(1, "loop");
    a.push(asm::hlt());
    Workload {
        name,
        suite: Suite::Fp,
        words: a.finish(),
        entry: CODE_BASE,
    }
}

/// Vector (packed double) kernel: `433.milc`, `470.lbm`.
fn fp_vector(name: &'static str, iters: u32, scale: Scale) -> Workload {
    let mut a = Assembler::new();
    a.mov_imm64(1, DATA_BASE);
    a.mov_imm64(2, (iters * scale.0) as u64);
    // Seed two vector registers from scalars.
    a.push(asm::fmov_imm(0, 0x78));
    a.push(asm::fmov_to_gpr(3, 0));
    a.push(asm::dup2d(1, 3));
    a.push(asm::fmov_imm(0, 0x70));
    a.push(asm::fmov_to_gpr(3, 0));
    a.push(asm::dup2d(2, 3));
    a.label("loop");
    a.push(asm::vmul2d(3, 1, 2));
    a.push(asm::vadd2d(4, 3, 2));
    a.push(asm::str_q(4, 1, 0));
    a.push(asm::ldr_q(1, 1, 0));
    a.push(asm::vadd2d(1, 1, 2));
    a.push(asm::subi(2, 2, 1));
    a.cbnz_to(2, "loop");
    a.push(asm::hlt());
    Workload {
        name,
        suite: Suite::Fp,
        words: a.finish(),
        entry: CODE_BASE,
    }
}

/// The FP micro-benchmark used for the hardware-vs-software FP ablation
/// (Section 3.6.2): a tight mix of common FP operations.
pub fn fp_micro(scale: Scale) -> Workload {
    fp_stencil("fp-micro", 20_000, scale)
}

/// Streaming array update whose inner loop carries a data-dependent guard —
/// the bounds-check-in-the-hot-loop shape real stream code has.  The body is
/// *multi-block* (guard leg + rejoin), so before looping regions the trace
/// closed after one trip and every iteration re-entered through the chain
/// machinery.
fn stream_guarded(name: &'static str, elems: u32, passes: u32, scale: Scale) -> Workload {
    let mut a = Assembler::new();
    a.mov_imm64(1, DATA_BASE);
    a.mov_imm64(10, (passes * scale.0) as u64);
    a.push(asm::movz(7, 0xFFF, 0)); // guard mask
    a.label("pass");
    a.push(asm::movz(2, 0, 0));
    a.push(asm::movz(3, elems & 0xFFFF, 0));
    a.label("elem");
    a.push(asm::lsli(4, 2, 3)); // offset = i * 8
    a.push(asm::add(4, 4, 1));
    a.push(asm::ldr(5, 4, 0));
    a.push(asm::ands(6, 2, 7)); // index guard: cold leg once per pass
    a.bcond_to(Cond::Eq, "skip");
    a.push(asm::addi(5, 5, 1)); // guarded update
    a.label("skip");
    a.push(asm::eor(5, 5, 2));
    a.push(asm::str(5, 4, 0));
    a.push(asm::addi(2, 2, 1));
    a.push(asm::cmp(2, 3));
    a.bcond_to(Cond::Ne, "elem");
    a.push(asm::subi(10, 10, 1));
    a.cbnz_to(10, "pass");
    a.push(asm::hlt());
    finish(name, Suite::Int, a)
}

/// Dynamic-programming inner loop whose body spans three blocks (a nested
/// conditional plus the rejoined table update) — the multi-block loop shape
/// the region former could not keep inside one translation before
/// back-edges closed internally.
fn loop_nest(name: &'static str, iters: u32, scale: Scale) -> Workload {
    let mut a = Assembler::new();
    a.mov_imm64(0, 0x9E37_79B9_7F4A_7C15);
    a.push(asm::movz(1, 0x1234, 0));
    a.mov_imm64(2, (iters * scale.0) as u64);
    a.mov_imm64(3, DATA_BASE);
    a.push(asm::movz(9, 0, 0));
    a.label("loop");
    a.push(asm::mul(4, 1, 0));
    a.push(asm::eor(1, 1, 4));
    a.push(asm::lsri(5, 1, 29));
    a.push(asm::add(1, 1, 5));
    a.push(asm::ands(6, 1, 0));
    a.bcond_to(Cond::Eq, "skip");
    a.push(asm::addi(9, 9, 1));
    a.label("skip");
    a.push(asm::movz(7, 0xFFF8, 0));
    a.push(asm::and(7, 1, 7));
    a.push(asm::add(7, 7, 3));
    a.push(asm::ldr(8, 7, 0));
    a.push(asm::add(8, 8, 1));
    a.push(asm::str(8, 7, 0));
    a.push(asm::subi(2, 2, 1));
    a.cbnz_to(2, "loop");
    a.push(asm::hlt());
    finish(name, Suite::Int, a)
}

/// Word offset (within the workload image) where the event workloads place
/// their exception vector, so tests can compute the handler's address.
pub const EVENT_HANDLER_WORD: usize = 0x80;

/// Guest virtual/physical address of the event workloads' exception vector.
pub const EVENT_HANDLER_VA: u64 = CODE_BASE + (EVENT_HANDLER_WORD as u64) * 4;

fn pad_to(a: &mut Assembler, word: usize) {
    assert!(
        a.here() <= word,
        "host bug: workload overran its vector pad"
    );
    while a.here() < word {
        a.push(asm::nop());
    }
}

/// Interrupt-storm workload: the guest arms a periodic timer via
/// `MSR CNT_CTL` and spins on an idempotent memory kernel until its handler
/// has observed `irqs` deliveries.  Engines retire different cycle counts,
/// so IRQs preempt each engine at different guest points — every
/// architectural side effect here is **count-driven, not cycle-driven**:
/// the spin body writes the same values every iteration, the handler only
/// increments the delivery counter (x20), and the handler itself cancels
/// the timer on the final delivery (while IRQs are masked, so no stray
/// delivery can race the cancellation).  Final registers, flags and memory
/// are therefore identical on every engine and configuration.
pub fn interrupt_storm(irqs: u32, period: u32) -> Workload {
    let mut a = Assembler::new();
    a.mov_imm64(9, EVENT_HANDLER_VA);
    a.push(asm::msr(guest_aarch64::SysReg::Vbar as u32, 9));
    a.push(asm::movz(20, 0, 0)); // delivery count
    a.mov_imm64(21, irqs as u64); // target count
    a.mov_imm64(1, DATA_BASE);
    a.mov_imm64(2, period as u64);
    a.push(asm::msr(guest_aarch64::SysReg::CntCtl as u32, 2)); // periodic
    a.label("spin");
    // Idempotent body: every iteration recomputes the same values from
    // constants, so the iteration count (which differs per engine) leaves
    // no architectural trace.
    a.push(asm::ldr(5, 1, 0));
    a.push(asm::eor(6, 5, 2));
    a.push(asm::str(6, 1, 8));
    a.push(asm::cmp(20, 21));
    a.bcond_to(Cond::Ne, "spin");
    a.push(asm::hlt());
    pad_to(&mut a, EVENT_HANDLER_WORD);
    // Vector: count the delivery; after the final one, cancel the timer
    // before unmasking so the count can never overshoot.
    a.push(asm::addi(20, 20, 1));
    a.push(asm::cmp(20, 21));
    a.bcond_to(Cond::Ne, "resume");
    a.push(asm::movz(22, 0, 0));
    a.push(asm::msr(guest_aarch64::SysReg::CntCtl as u32, 22)); // cancel
    a.label("resume");
    a.push(asm::eret());
    finish("interrupt.storm", Suite::Int, a)
}

/// Timer-tick workload: the guest arms a **one-shot** timer via
/// `MSR CNT_TVAL` and runs a long countdown loop; the tick preempts the
/// loop mid-flight and the handler captures ELR into x10 before resuming.
/// The loop is a single basic block, so on every engine the precise
/// preemption PC — and hence the captured ELR — is the loop header, even
/// when the loop is executing inside an unrolled looping region.  The loop
/// then runs to completion, so final state is engine-independent.
pub fn timer_tick(delay: u32, iters: u32) -> Workload {
    let mut a = Assembler::new();
    a.mov_imm64(9, EVENT_HANDLER_VA);
    a.push(asm::msr(guest_aarch64::SysReg::Vbar as u32, 9));
    a.push(asm::movz(20, 0, 0)); // tick count
    a.mov_imm64(2, delay as u64);
    a.push(asm::msr(guest_aarch64::SysReg::CntTval as u32, 2)); // one-shot
    a.mov_imm64(1, iters as u64);
    a.label("loop");
    a.push(asm::subi(1, 1, 1));
    a.cbnz_to(1, "loop");
    a.push(asm::hlt());
    pad_to(&mut a, EVENT_HANDLER_WORD);
    a.push(asm::addi(20, 20, 1));
    a.push(asm::mrs(10, guest_aarch64::SysReg::Elr as u32));
    a.push(asm::eret());
    finish("timer.tick", Suite::Int, a)
}

/// Guest virtual address of the `timer_tick(delay, iters)` countdown loop
/// header.  Takes the same arguments as [`timer_tick`] because the prologue
/// width depends on them (`mov_imm64` emits only the non-zero halfwords).
pub fn timer_tick_loop_va(delay: u32, iters: u32) -> u64 {
    // Recover it structurally instead of hard-coding: the loop header is
    // the first `subi x1, x1, #1` in the image.
    let w = timer_tick(delay, iters);
    let target = asm::subi(1, 1, 1);
    let idx = w
        .words
        .iter()
        .position(|&x| x == target)
        .expect("timer_tick contains its countdown loop");
    CODE_BASE + idx as u64 * 4
}

/// The loop-heavy kernel set exercised by `figures -- loops`: the two SPEC
/// stream kernels plus the dedicated multi-block-loop shapes whose inner
/// loops only stay inside one region once back-edges close internally.
pub fn loop_kernels(scale: Scale) -> Vec<Workload> {
    vec![
        stream("401.bzip2", 2048, 60, scale),
        stream("462.libquantum", 4096, 40, scale),
        stream_guarded("stream.guarded", 2048, 40, scale),
        loop_nest("loop.nest", 60_000, scale),
    ]
}

/// A queue-flood kernel for the tiered translation service: `loops`
/// independent self-loops visited round-robin for `passes` outer passes.
/// With the default formation threshold (16) and `trips` around 9, every
/// loop head crosses the publish heat during the first outer pass and the
/// install heat during the second — so many formation requests are in
/// flight simultaneously, stressing the worker queue and the parked-result
/// path.  Final x9 = loops × trips × passes.
pub fn loop_flood(loops: u32, trips: u32, passes: u32) -> Workload {
    let mut a = Assembler::new();
    a.mov_imm64(1, passes as u64);
    a.push(asm::movz(9, 0, 0));
    a.label("outer");
    for i in 0..loops {
        let label = format!("self{i}");
        a.push(asm::movz(2, trips & 0xFFFF, 0));
        a.label(&label);
        a.push(asm::addi(9, 9, 1));
        a.push(asm::subi(2, 2, 1));
        a.cbnz_to(2, &label);
    }
    a.push(asm::subi(1, 1, 1));
    a.cbnz_to(1, "outer");
    a.push(asm::hlt());
    Workload {
        name: "tier.flood",
        suite: Suite::Int,
        words: a.finish(),
        entry: CODE_BASE,
    }
}

/// Flag-heavy branch kernel for the guest-idiom layer: every iteration
/// hashes, then takes three data-dependent branches — an *unsigned*
/// compare (`b.hi`), a *signed* compare (`b.ge`) and a logic test
/// (`ands`+`b.eq`) — plus the `subi`+`cbnz` back-edge.  Four fusible
/// compare+branch pairs per trip and zero other work, so NZCV
/// materialisation dominates and the `fuse.*` rules carry the kernel.
fn branch_mix(name: &'static str, iters: u32, scale: Scale) -> Workload {
    let mut a = Assembler::new();
    a.mov_imm64(0, 0x9E37_79B9_7F4A_7C15);
    a.push(asm::movz(1, 0x1234, 0));
    a.mov_imm64(2, (iters * scale.0) as u64);
    a.mov_imm64(12, 0x8000_0000_0000_0000);
    a.push(asm::movz(9, 0, 0));
    a.push(asm::movz(10, 0, 0));
    a.push(asm::movz(11, 0, 0));
    a.label("loop");
    a.push(asm::mul(4, 1, 0));
    a.push(asm::eor(1, 1, 4));
    a.push(asm::lsri(5, 1, 17));
    a.push(asm::add(1, 1, 5));
    // Unsigned compare + branch (C|Z path through the flags).
    a.push(asm::cmp(1, 12));
    a.bcond_to(Cond::Hi, "hi_skip");
    a.push(asm::addi(9, 9, 1));
    a.label("hi_skip");
    // Signed compare + branch (N^V path).
    a.push(asm::cmp(1, 12));
    a.bcond_to(Cond::Ge, "ge_skip");
    a.push(asm::addi(10, 10, 1));
    a.label("ge_skip");
    // Logic test + branch (Z-only path, C=V=0).
    a.push(asm::ands(6, 1, 12));
    a.bcond_to(Cond::Eq, "eq_skip");
    a.push(asm::addi(11, 11, 1));
    a.label("eq_skip");
    a.push(asm::subi(2, 2, 1));
    a.cbnz_to(2, "loop");
    a.push(asm::hlt());
    finish(name, Suite::Int, a)
}

/// Byte-wise memset kernel (`strb` do-while over a page, repeated): the
/// shape the `bulk.memset` rule rewrites to wide 64-bit host stores.  The
/// pass loop re-reads the buffer head so the stores stay architecturally
/// observable.
fn memset_loop(name: &'static str, bytes: u32, passes: u32, scale: Scale) -> Workload {
    let mut a = Assembler::new();
    a.mov_imm64(1, DATA_BASE);
    a.mov_imm64(10, (passes * scale.0) as u64);
    a.push(asm::movz(3, 0xAB, 0)); // fill value
    a.push(asm::movz(9, 0, 0)); // checksum
    a.label("pass");
    a.push(asm::orr(4, 1, 1)); // cur = base
    a.push(asm::movz(5, bytes & 0xFFFF, 0)); // count
    a.label("ms");
    a.push(asm::strb(3, 4, 0));
    a.push(asm::addi(4, 4, 1));
    a.push(asm::subi(5, 5, 1));
    a.cbnz_to(5, "ms");
    a.push(asm::ldr(6, 1, 0));
    a.push(asm::add(9, 9, 6));
    a.push(asm::subi(10, 10, 1));
    a.cbnz_to(10, "pass");
    a.push(asm::hlt());
    finish(name, Suite::Int, a)
}

/// Scaled-index address-generation kernel: `lsl` + register-offset
/// load/store in the hot loop — the guest idiom the `addr.fold` rule turns
/// into one x86 scaled-index memory operand.
fn addr_gen(name: &'static str, iters: u32, scale: Scale) -> Workload {
    let mut a = Assembler::new();
    a.mov_imm64(1, DATA_BASE);
    a.mov_imm64(2, (iters * scale.0) as u64);
    a.push(asm::movz(4, 0, 0)); // i
    a.push(asm::movz(7, 1023, 0)); // index mask
    a.label("loop");
    a.push(asm::and(5, 4, 7)); // idx = i & 1023
    a.push(asm::lsli(6, 5, 3)); // off = idx * 8
    a.push(asm::ldr_reg(8, 1, 6));
    a.push(asm::addi(8, 8, 1));
    a.push(asm::str_reg(8, 1, 6));
    a.push(asm::addi(4, 4, 1));
    a.push(asm::subi(2, 2, 1));
    a.cbnz_to(2, "loop");
    a.push(asm::hlt());
    finish(name, Suite::Int, a)
}

/// The guest-idiom kernel set exercised by `figures -- idioms`: one kernel
/// per idiom family (compare+branch fusion, bulk memset rewriting, address
/// mode folding), kept out of the pinned SPEC suites.
pub fn idiom_kernels(scale: Scale) -> Vec<Workload> {
    vec![
        branch_mix("idiom.branch", 60_000, scale),
        memset_loop("idiom.memset", 4096, 20, scale),
        addr_gen("idiom.addr", 60_000, scale),
    ]
}

// ---------------------------------------------------------------------------
// Virtio-blk I/O kernels.
//
// Guest-side drivers for the `hvm::virtio` block device: each kernel builds
// its descriptor chains and rings in the data region, kicks the queue with
// `msr VblkNotify`, and synchronizes on *counts* (spinning on `used.idx`),
// never on cycle timing — so both execution engines, which retire different
// cycle totals, end byte-identical.  All device structures live inside the
// chaos harness's 64 KiB data-digest window so any cross-engine divergence
// in DMA behaviour is caught byte-for-byte.
// ---------------------------------------------------------------------------

/// Guest-physical base of the virtio-mmio register window the I/O kernels
/// program (inside the data region, so small-RAM configurations work).
pub const VBLK_MMIO_BASE: u64 = DATA_BASE + 0x8000;
/// Guest-physical address of the descriptor table.
pub const VBLK_DESC: u64 = DATA_BASE + 0x9000;
/// Guest-physical address of the available ring.
pub const VBLK_AVAIL: u64 = DATA_BASE + 0xA000;
/// Guest-physical address of the used ring.
pub const VBLK_USED: u64 = DATA_BASE + 0xB000;
/// Guest-physical base of the kernels' DMA data buffers.
pub const VBLK_BUF: u64 = DATA_BASE + 0xC000;
/// Guest-physical base of the request header blocks (16 bytes per request).
pub const VBLK_HDR: u64 = VBLK_BUF + 0x2000;
/// Guest-physical base of the status words (8 bytes per request).
pub const VBLK_STATUS: u64 = VBLK_BUF + 0x2800;
/// Minimum guest RAM for the I/O kernels (covers the data region).
pub const VBLK_MIN_RAM: u64 = DATA_BASE + 0x10000;

/// Attach-time device configuration matching the I/O kernels' ring layout.
/// Both engines must be handed the same configuration.
pub fn vblk_config() -> hvm::VirtioBlkConfig {
    hvm::VirtioBlkConfig {
        mmio_base: VBLK_MMIO_BASE,
        completion_latency: 2_000,
        ..Default::default()
    }
}

/// Emits the device-register prologue: x1..x4 = MMIO/desc/avail/used bases,
/// queue addresses programmed, IRQs off (the kernels poll `used.idx`).
fn vblk_prologue(a: &mut Assembler) {
    a.mov_imm64(1, VBLK_MMIO_BASE);
    a.mov_imm64(2, VBLK_DESC);
    a.mov_imm64(3, VBLK_AVAIL);
    a.mov_imm64(4, VBLK_USED);
    a.push(asm::str(2, 1, 0x28)); // QUEUE_DESC
    a.push(asm::str(3, 1, 0x30)); // QUEUE_AVAIL
    a.push(asm::str(4, 1, 0x38)); // QUEUE_USED
    a.push(asm::movz(17, 0, 0));
    a.push(asm::str(17, 1, 0x40)); // IRQ_ENABLE = 0 (polling)
}

/// Emits stores filling descriptor `idx` (`{addr, len, flags, next}`).
fn emit_desc(a: &mut Assembler, idx: u64, addr: u64, len: u64, flags: u64, next: u64) {
    let off = (idx * 32) as u32;
    for (field, value) in [(0, addr), (8, len), (16, flags), (24, next)] {
        a.mov_imm64(17, value);
        a.push(asm::str(17, 2, off + field));
    }
}

/// Emits one full request chain at descriptor slots `first_desc ..`:
/// header desc → one data desc per `(gpa, len)` segment → status desc,
/// plus the header block itself.  Data segments are device-writable for
/// reads.  Returns the number of descriptors consumed.
fn emit_chain(
    a: &mut Assembler,
    req: u64,
    first_desc: u64,
    req_type: u64,
    sector: u64,
    data: &[(u64, u64)],
) -> u64 {
    let hdr = VBLK_HDR + req * 16;
    let status = VBLK_STATUS + req * 8;
    a.mov_imm64(16, hdr);
    a.mov_imm64(17, req_type);
    a.push(asm::str(17, 16, 0));
    a.mov_imm64(17, sector);
    a.push(asm::str(17, 16, 8));
    let n = data.len() as u64;
    emit_desc(a, first_desc, hdr, 16, DESC_F_NEXT, first_desc + 1);
    for (k, &(gpa, len)) in data.iter().enumerate() {
        let k = k as u64;
        let flags = DESC_F_NEXT
            | if req_type == REQ_READ {
                DESC_F_WRITE
            } else {
                0
            };
        emit_desc(a, first_desc + 1 + k, gpa, len, flags, first_desc + 2 + k);
    }
    emit_desc(a, first_desc + 1 + n, status, 8, DESC_F_WRITE, 0);
    n + 2
}

/// Emits the available-ring entry for `slot` pointing at head `head`.
fn emit_avail(a: &mut Assembler, slot: u64, head: u64) {
    a.mov_imm64(17, head);
    a.push(asm::str(17, 3, (8 + slot * 8) as u32));
}

/// Publishes `avail.idx = idx` and kicks the queue (`msr VblkNotify`).
fn emit_publish_and_kick(a: &mut Assembler, idx: u64) {
    a.mov_imm64(17, idx);
    a.push(asm::str(17, 3, 0));
    a.push(asm::msr(guest_aarch64::SysReg::VblkNotify as u32, 17));
}

/// Emits a spin on `used.idx == target` (count-driven synchronization).
fn emit_wait_used(a: &mut Assembler, label: &str, target: u64) {
    a.label(label);
    a.push(asm::ldr(7, 4, 0));
    a.push(asm::cmpi(7, target as u32));
    a.bcond_to(Cond::Ne, label);
}

/// Emits a checksum loop accumulating `words` 64-bit words at `gpa` into x9.
fn emit_checksum(a: &mut Assembler, label: &str, gpa: u64, words: u64) {
    a.mov_imm64(10, gpa);
    a.mov_imm64(11, words);
    a.label(label);
    a.push(asm::ldr(12, 10, 0));
    a.push(asm::add(9, 9, 12));
    a.push(asm::addi(10, 10, 8));
    a.push(asm::subi(11, 11, 1));
    a.cbnz_to(11, label);
}

/// Sequential-read kernel: `n` one-sector read requests submitted as one
/// batch and kicked once; the guest spins on `used.idx == n`, then
/// checksums the DMA'd data and the status words into x9.
pub fn vblk_read(n: u32) -> Workload {
    assert!(n >= 1 && (n as u64) * 3 <= 64, "descriptor table overflow");
    let mut a = Assembler::new();
    vblk_prologue(&mut a);
    for i in 0..n as u64 {
        emit_chain(
            &mut a,
            i,
            i * 3,
            REQ_READ,
            i,
            &[(VBLK_BUF + i * SECTOR_SIZE, SECTOR_SIZE)],
        );
        emit_avail(&mut a, i, i * 3);
    }
    emit_publish_and_kick(&mut a, n as u64);
    emit_wait_used(&mut a, "wait", n as u64);
    a.push(asm::movz(9, 0, 0));
    emit_checksum(&mut a, "sum", VBLK_BUF, n as u64 * (SECTOR_SIZE / 8));
    emit_checksum(&mut a, "sumst", VBLK_STATUS, n as u64);
    a.push(asm::hlt());
    finish("io.read", Suite::Int, a)
}

/// Write-then-read-back kernel: fills a two-sector buffer with a computed
/// pattern, writes it to disk, waits for the completion, reads it back into
/// a second buffer, and checksums the round-trip plus both status words.
pub fn vblk_write_read() -> Workload {
    let mut a = Assembler::new();
    vblk_prologue(&mut a);
    a.mov_imm64(10, VBLK_BUF);
    a.mov_imm64(11, 2 * (SECTOR_SIZE / 8));
    a.mov_imm64(12, 0x0101_0203_0405_0607);
    a.label("fill");
    a.push(asm::str(12, 10, 0));
    a.push(asm::addi(12, 12, 1));
    a.push(asm::addi(10, 10, 8));
    a.push(asm::subi(11, 11, 1));
    a.cbnz_to(11, "fill");
    emit_chain(&mut a, 0, 0, REQ_WRITE, 4, &[(VBLK_BUF, 2 * SECTOR_SIZE)]);
    emit_avail(&mut a, 0, 0);
    emit_publish_and_kick(&mut a, 1);
    emit_wait_used(&mut a, "wait_w", 1);
    emit_chain(
        &mut a,
        1,
        3,
        REQ_READ,
        4,
        &[(VBLK_BUF + 0x1000, 2 * SECTOR_SIZE)],
    );
    emit_avail(&mut a, 1, 3);
    emit_publish_and_kick(&mut a, 2);
    emit_wait_used(&mut a, "wait_r", 2);
    a.push(asm::movz(9, 0, 0));
    emit_checksum(&mut a, "sum", VBLK_BUF + 0x1000, 2 * (SECTOR_SIZE / 8));
    emit_checksum(&mut a, "sumst", VBLK_STATUS, 2);
    a.push(asm::hlt());
    finish("io.writeread", Suite::Int, a)
}

/// Scatter-gather kernel: one read request whose two disk sectors land in
/// four non-contiguous 256-byte guest buffers via a 6-descriptor chain.
pub fn vblk_scatter() -> Workload {
    let mut a = Assembler::new();
    vblk_prologue(&mut a);
    let segs: Vec<(u64, u64)> = (0..4).map(|k| (VBLK_BUF + k * 0x400, 256)).collect();
    emit_chain(&mut a, 0, 0, REQ_READ, 8, &segs);
    emit_avail(&mut a, 0, 0);
    emit_publish_and_kick(&mut a, 1);
    emit_wait_used(&mut a, "wait", 1);
    a.push(asm::movz(9, 0, 0));
    for (k, &(gpa, len)) in segs.iter().enumerate() {
        emit_checksum(&mut a, &format!("sum{k}"), gpa, len / 8);
    }
    emit_checksum(&mut a, "sumst", VBLK_STATUS, 1);
    a.push(asm::hlt());
    finish("io.scatter", Suite::Int, a)
}

/// Word offset of the `vblk_smc` spin loop (the DMA patch target).
pub const VBLK_SMC_LOOP_WORD: usize = 0x100;

/// Guest-physical address the `vblk_smc` completion DMA-writes: the page
/// holding the guest's own spin loop.
pub const VBLK_SMC_PATCH_GPA: u64 = CODE_BASE + (VBLK_SMC_LOOP_WORD as u64) * 4;

/// DMA-onto-executed-page kernel: the guest submits a one-sector read whose
/// target is **its own spin loop**, then spins in a hot, idempotent,
/// always-taken loop with no architectural exit.  Disk sector 0 (returned
/// as the disk image to attach) holds a byte-identical copy of those 512
/// code bytes with the loop's back-edge replaced by NOP — so the only way
/// out of the loop is the device's completion DMA landing on the executing
/// page: asynchronous external self-modifying code.  Engines retire
/// different cycle counts, so the patch lands after a different number of
/// trips on each — the loop body is idempotent (x6/x22 recompute the same
/// values every trip) precisely so the trip count leaves no architectural
/// trace and final state stays byte-identical.
///
/// Attach with [`vblk_smc_config`]; the completion latency is generous so
/// every engine configuration (including tiered background formation) has
/// promoted the spin loop into a live looping region before the patch hits.
pub fn vblk_smc() -> (Workload, Vec<u8>) {
    let mut a = Assembler::new();
    vblk_prologue(&mut a);
    emit_chain(
        &mut a,
        0,
        0,
        REQ_READ,
        0,
        &[(VBLK_SMC_PATCH_GPA, SECTOR_SIZE)],
    );
    emit_avail(&mut a, 0, 0);
    a.mov_imm64(7, 0x55AA);
    a.mov_imm64(8, 0x0F0F);
    a.push(asm::movz(6, 0, 0));
    a.push(asm::movz(22, 0, 0));
    emit_publish_and_kick(&mut a, 1);
    pad_to(&mut a, VBLK_SMC_LOOP_WORD);
    a.label("spin");
    a.push(asm::add(6, 7, 8)); // idempotent body: same values every trip
    a.push(asm::orr(22, 6, 7));
    a.cbnz_to(7, "spin"); // always taken (x7 = 0x55AA) — exit is the patch
    a.push(asm::movz(9, 0, 0));
    emit_checksum(&mut a, "sum", VBLK_SMC_PATCH_GPA, SECTOR_SIZE / 8);
    emit_checksum(&mut a, "sumst", VBLK_STATUS, 1);
    a.push(asm::hlt());
    pad_to(&mut a, VBLK_SMC_LOOP_WORD + (SECTOR_SIZE as usize) / 4);
    let w = finish("io.smc", Suite::Int, a);
    let start = VBLK_SMC_LOOP_WORD;
    let mut sector: Vec<u8> = w.words[start..start + (SECTOR_SIZE as usize) / 4]
        .iter()
        .flat_map(|x| x.to_le_bytes())
        .collect();
    let back_edge = asm::cbnz(7, -8); // two words back to "spin"
    let at = w.words[start..start + (SECTOR_SIZE as usize) / 4]
        .iter()
        .position(|&x| x == back_edge)
        .expect("vblk_smc contains its spin back-edge");
    sector[at * 4..at * 4 + 4].copy_from_slice(&asm::nop().to_le_bytes());
    (w, sector)
}

/// Device configuration for [`vblk_smc`]: the patched sector as the disk
/// image and a completion latency long enough for the spin loop to get hot
/// (region-formed and promoted) on every engine configuration first.
pub fn vblk_smc_config(disk_sector0: Vec<u8>) -> hvm::VirtioBlkConfig {
    hvm::VirtioBlkConfig {
        mmio_base: VBLK_MMIO_BASE,
        completion_latency: 60_000,
        disk_image: Some(disk_sector0),
        ..Default::default()
    }
}

/// The clean I/O kernel set exercised by `figures -- io` (the `io.smc`
/// kernel is separate because it carries its own disk image).
pub fn io_kernels() -> Vec<Workload> {
    vec![vblk_read(4), vblk_write_read(), vblk_scatter()]
}

/// The twelve SPEC CPU2006 integer workloads (Fig. 17).
pub fn spec_int(scale: Scale) -> Vec<Workload> {
    vec![
        int_mix("400.perlbench", 40_000, true, scale),
        stream("401.bzip2", 2048, 60, scale),
        int_mix("403.gcc", 40_000, true, scale),
        pointer_chase("429.mcf", 1024, 120_000, scale),
        int_mix("445.gobmk", 40_000, true, scale),
        int_mix("456.hmmer", 60_000, false, scale),
        int_mix("458.sjeng", 40_000, true, scale),
        stream("462.libquantum", 4096, 40, scale),
        int_mix("464.h264ref", 60_000, false, scale),
        pointer_chase("471.omnetpp", 2048, 80_000, scale),
        pointer_chase("473.astar", 512, 100_000, scale),
        pointer_chase("483.xalancbmk", 4096, 60_000, scale),
    ]
}

/// The five C++ floating-point workloads (Fig. 18).
pub fn spec_fp(scale: Scale) -> Vec<Workload> {
    vec![
        fp_stencil("482.sphinx3", 40_000, scale),
        fp_vector("433.milc", 30_000, scale),
        fp_stencil("435.gromacs", 40_000, scale),
        fp_stencil("444.namd", 50_000, scale),
        fp_vector("470.lbm", 40_000, scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loop_kernels_assemble_and_decode() {
        for w in loop_kernels(Scale(1)) {
            assert!(!w.words.is_empty(), "{}", w.name);
            assert!(w.words.contains(&guest_aarch64::asm::hlt()), "{}", w.name);
            for (i, word) in w.words.iter().enumerate() {
                assert!(
                    guest_aarch64::decode(*word).is_some(),
                    "{} word {} ({word:#010x}) does not decode",
                    w.name,
                    i
                );
            }
        }
    }

    #[test]
    fn loop_flood_assembles_and_decodes() {
        let w = loop_flood(12, 9, 30);
        assert!(w.words.contains(&guest_aarch64::asm::hlt()));
        for (i, word) in w.words.iter().enumerate() {
            assert!(
                guest_aarch64::decode(*word).is_some(),
                "{} word {} ({word:#010x}) does not decode",
                w.name,
                i
            );
        }
    }

    #[test]
    fn idiom_kernels_assemble_and_decode() {
        let kernels = idiom_kernels(Scale(1));
        assert_eq!(kernels.len(), 3);
        for w in kernels {
            assert!(w.words.contains(&guest_aarch64::asm::hlt()), "{}", w.name);
            for (i, word) in w.words.iter().enumerate() {
                assert!(
                    guest_aarch64::decode(*word).is_some(),
                    "{} word {} ({word:#010x}) does not decode",
                    w.name,
                    i
                );
            }
        }
    }

    #[test]
    fn io_kernels_assemble_and_decode() {
        let (smc, _) = vblk_smc();
        for w in io_kernels().into_iter().chain([smc]) {
            assert!(w.words.contains(&guest_aarch64::asm::hlt()), "{}", w.name);
            for (i, word) in w.words.iter().enumerate() {
                assert!(
                    guest_aarch64::decode(*word).is_some(),
                    "{} word {} ({word:#010x}) does not decode",
                    w.name,
                    i
                );
            }
        }
    }

    #[test]
    fn vblk_smc_sector_patches_exactly_the_back_edge() {
        let (w, sector) = vblk_smc();
        assert_eq!(sector.len(), SECTOR_SIZE as usize);
        let code: Vec<u8> = w.words
            [VBLK_SMC_LOOP_WORD..VBLK_SMC_LOOP_WORD + (SECTOR_SIZE as usize) / 4]
            .iter()
            .flat_map(|x| x.to_le_bytes())
            .collect();
        let diffs: Vec<usize> = (0..sector.len())
            .filter(|&i| sector[i] != code[i])
            .collect();
        assert!(!diffs.is_empty(), "sector must differ from the live code");
        assert!(
            diffs.iter().all(|&i| i / 4 == diffs[0] / 4),
            "only one word may differ"
        );
        let at = (diffs[0] / 4) * 4;
        assert_eq!(
            u32::from_le_bytes(sector[at..at + 4].try_into().unwrap()),
            asm::nop(),
            "the patched word must be a NOP"
        );
    }

    #[test]
    fn all_workloads_assemble() {
        for w in spec_int(Scale(1)).into_iter().chain(spec_fp(Scale(1))) {
            assert!(!w.words.is_empty(), "{}", w.name);
            assert!(w.words.len() < 4096, "{} too large", w.name);
            // Every program must end with a HLT so runs terminate.
            assert!(w.words.contains(&guest_aarch64::asm::hlt()), "{}", w.name);
        }
    }

    #[test]
    fn suites_have_the_paper_counts() {
        assert_eq!(spec_int(Scale(1)).len(), 12);
        assert_eq!(spec_fp(Scale(1)).len(), 5);
    }

    #[test]
    fn workloads_decode_cleanly() {
        for w in spec_int(Scale(1)).into_iter().chain(spec_fp(Scale(1))) {
            for (i, word) in w.words.iter().enumerate() {
                assert!(
                    guest_aarch64::decode(*word).is_some(),
                    "{} word {} ({word:#010x}) does not decode",
                    w.name,
                    i
                );
            }
        }
    }
}
