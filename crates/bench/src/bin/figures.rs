//! Regenerates the paper's tables and figures on the simulated substrate.
//!
//! Usage: `cargo run --release -p bench --bin figures -- [all|fig17|fig18|fig19|fig20|jitstats|fig21|fig22|table2|fp_modes|chaining|regions|unroll|loops|promote|scale|opt|idioms|storm|tiers|io]`
//!
//! The `chaining`, `regions`, `unroll`, `promote`, `scale`, `opt`, `idioms`
//! and `storm` sections double as CI smoke checks: they assert the counter
//! invariants the dispatcher and optimiser guarantee (chained gaps accounted
//! exactly, regions no slower than chaining with strictly fewer interpreter
//! entries, self-loop unrolling forming regions on the pointer-chase kernels
//! at no cycle cost, cycles growing monotonically with workload scale,
//! optimised translations no slower than unoptimised with nonzero
//! elimination counters on flag-heavy workloads, every shipped idiom rule
//! firing somewhere on the idiom kernels at a cycle win, and — under an
//! interrupt storm — regions still forming and tripping with every IRQ
//! delivered on both engines) and panic on regression.

use bench::{
    geomean, native_model, run_both_raw, run_captive, run_captive_chaining, run_captive_idioms,
    run_captive_idioms_mined, run_captive_loops, run_captive_opt, run_captive_promote,
    run_captive_regions, run_captive_unroll, run_captive_with, run_qemu, run_qemu_chaining,
    run_qemu_goto_tb, Measurement,
};
use captive::FpMode;
use workloads::Scale;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = arg == "all";
    if all || arg == "fig17" {
        fig17();
    }
    if all || arg == "fig18" {
        fig18();
    }
    if all || arg == "fig19" {
        fig19();
    }
    if all || arg == "fig20" || arg == "jitstats" {
        fig20_and_jitstats();
    }
    if all || arg == "fig21" {
        fig21();
    }
    if all || arg == "fig22" {
        fig22();
    }
    if all || arg == "table2" {
        table2();
    }
    if all || arg == "fp_modes" {
        fp_modes();
    }
    if all || arg == "chaining" {
        chaining();
    }
    if all || arg == "regions" || arg == "superblocks" {
        regions();
    }
    if all || arg == "unroll" {
        unroll();
    }
    if all || arg == "loops" {
        loops();
    }
    if all || arg == "promote" {
        promote();
    }
    if all || arg == "json" {
        json();
    }
    if all || arg == "scale" {
        scale();
    }
    if all || arg == "opt" {
        opt();
    }
    if all || arg == "idioms" {
        idioms();
    }
    if all || arg == "storm" {
        storm();
    }
    if all || arg == "tiers" {
        tiers();
    }
    if all || arg == "io" {
        io();
    }
}

fn io() {
    println!("== Virtio-blk I/O: DMA kernels, fault injection, device-originated SMC ==");
    println!(
        "{:<14} {:<10} {:>12} {:>6} {:>9} {:>7} {:>7} {:>10}",
        "kernel", "engine", "cycles", "compl", "dma-bytes", "faults", "io-err", "ext-inval"
    );
    let vcfg = workloads::vblk_config();
    let row = |kernel: &str, engine: &str, m: &Measurement| {
        println!(
            "{:<14} {:<10} {:>12} {:>6} {:>9} {:>7} {:>7} {:>10}",
            kernel,
            engine,
            m.cycles,
            m.counter("virtio.completions"),
            m.counter("virtio.dma_bytes"),
            m.counter("virtio.fault_injections"),
            m.counter("virtio.io_errors"),
            m.counter("virtio.external_invalidations"),
        );
    };
    // Clean-disk kernels: both engines must retire every request with no
    // errors and move the same DMA byte count.
    for w in workloads::io_kernels() {
        let c = bench::run_captive_io(&w, vcfg.clone(), captive::CaptiveConfig::default());
        let q = bench::run_qemu_io(&w, vcfg.clone());
        row(w.name, "captive", &c);
        row(w.name, "qemu", &q);
        assert!(
            c.counter("virtio.completions") > 0,
            "{}: device did no work",
            w.name
        );
        for key in ["virtio.completions", "virtio.dma_bytes", "virtio.io_errors"] {
            assert_eq!(
                c.counter(key),
                q.counter(key),
                "{}: {key} diverged across engines",
                w.name
            );
        }
        assert_eq!(c.counter("virtio.io_errors"), 0, "{}: clean disk", w.name);
    }
    // Fault-injection leg: a seed chosen (deterministically) to bite inside
    // the first three of io.read's four requests.  Faults must surface as
    // typed statuses — the run still halts — and identically on both engines.
    let fault_seed = (1u64..)
        .find(|&s| {
            let plan = hvm::FaultPlan::seeded(s, 3);
            (0..3).any(|q| plan.decide(q, false) != hvm::FaultKind::None)
        })
        .unwrap();
    let faulty = hvm::VirtioBlkConfig {
        fault_seed: Some(fault_seed),
        exempt_after: 3,
        ..workloads::vblk_config()
    };
    let w = workloads::vblk_read(4);
    let c = bench::run_captive_io(&w, faulty.clone(), captive::CaptiveConfig::default());
    let q = bench::run_qemu_io(&w, faulty);
    row("io.read+fault", "captive", &c);
    row("io.read+fault", "qemu", &q);
    assert!(
        c.counter("virtio.fault_injections") > 0,
        "the chosen fault seed must inject"
    );
    assert_eq!(
        c.counter("virtio.fault_injections"),
        q.counter("virtio.fault_injections")
    );
    assert_eq!(c.counter("virtio.io_errors"), q.counter("virtio.io_errors"));
    // Device-originated SMC: the io.smc kernel's completion DMAs over its
    // own (live, looping) spin page, so both engines must walk their
    // external-invalidation path to terminate.
    let (w, sector0) = workloads::vblk_smc();
    let smc_cfg = workloads::vblk_smc_config(sector0);
    let c = bench::run_captive_io(&w, smc_cfg.clone(), captive::CaptiveConfig::default());
    let q = bench::run_qemu_io(&w, smc_cfg);
    row(w.name, "captive", &c);
    row(w.name, "qemu", &q);
    assert!(
        c.counter("virtio.external_invalidations") > 0
            && q.counter("virtio.external_invalidations") > 0,
        "device DMA onto translated code must invalidate on both engines"
    );
    assert!(
        c.loop_regions_formed > 0,
        "the spin must be a formed looping region when the DMA lands"
    );
    // Idle-device parity: attaching the device without touching it must not
    // move the modeled cycle count of a non-I/O workload.
    let w = workloads::loop_flood(4, 8, 20);
    let idle = bench::run_captive_io(&w, vcfg, captive::CaptiveConfig::default());
    let bare = bench::run_captive(&w);
    assert_eq!(idle.counter("virtio.kicks"), 0);
    assert_eq!(
        idle.cycles, bare.cycles,
        "an idle attached device must be cycle-free"
    );
    println!(
        "   idle-device parity: {} cycles with and without the device\n",
        bare.cycles
    );
}

fn fig17() {
    println!("== Figure 17: SPEC CPU2006 integer — Captive vs QEMU-style baseline ==");
    println!(
        "{:<18} {:>14} {:>14} {:>9}",
        "benchmark", "qemu cycles", "captive cycles", "speedup"
    );
    let mut speedups = Vec::new();
    for w in workloads::spec_int(Scale(1)) {
        let c = run_captive(&w);
        let q = run_qemu(&w);
        let s = q.cycles as f64 / c.cycles as f64;
        speedups.push(s);
        println!(
            "{:<18} {:>14} {:>14} {:>8.2}x",
            w.name, q.cycles, c.cycles, s
        );
    }
    println!(
        "{:<18} {:>38.2}x  (paper: 2.21x)\n",
        "geo. mean",
        geomean(&speedups)
    );
}

fn fig18() {
    println!("== Figure 18: SPEC CPU2006 FP — Captive vs QEMU-style baseline ==");
    println!(
        "{:<18} {:>14} {:>14} {:>9}",
        "benchmark", "qemu cycles", "captive cycles", "speedup"
    );
    let mut speedups = Vec::new();
    for w in workloads::spec_fp(Scale(1)) {
        let c = run_captive(&w);
        let q = run_qemu(&w);
        let s = q.cycles as f64 / c.cycles as f64;
        speedups.push(s);
        println!(
            "{:<18} {:>14} {:>14} {:>8.2}x",
            w.name, q.cycles, c.cycles, s
        );
    }
    println!(
        "{:<18} {:>38.2}x  (paper: 6.49x)\n",
        "geo. mean",
        geomean(&speedups)
    );
}

fn fig19() {
    println!("== Figure 19: SimBench micro-benchmarks — speedup of Captive over QEMU ==");
    for b in simbench::suite() {
        let (c, q) = run_both_raw(b.name, &b.words, b.entry);
        println!("{:<22} {:>8.2}x", b.name, q as f64 / c as f64);
    }
    println!();
}

fn fig20_and_jitstats() {
    println!("== Figure 20 / Section 3.4: JIT compilation statistics ==");
    // Translate-heavy run: every SPEC-int workload once (cold caches).
    let mut cap_frac = (0.0, 0.0, 0.0, 0.0);
    let mut cap_time = 0.0;
    let mut qemu_time = 0.0;
    let mut cap_bytes = 0u64;
    let mut cap_insns = 0u64;
    let mut qemu_bytes = 0u64;
    let mut qemu_insns = 0u64;
    for w in workloads::spec_int(Scale(1)) {
        let c = run_captive(&w);
        let q = run_qemu(&w);
        cap_frac = c.jit_fractions;
        cap_time += c.jit_seconds;
        qemu_time += q.jit_seconds;
        if w.name == "429.mcf" {
            cap_bytes = c.code_bytes;
            cap_insns = c.translations;
            qemu_bytes = q.code_bytes;
            qemu_insns = q.translations;
        }
    }
    println!(
        "Captive phase breakdown: decode {:.1}%  translate {:.1}%  regalloc {:.1}%  encode {:.1}%",
        cap_frac.0 * 100.0,
        cap_frac.1 * 100.0,
        cap_frac.2 * 100.0,
        cap_frac.3 * 100.0
    );
    println!("  (paper: decode 2.8%, translate 54.5%, regalloc 25.6%, encode 17.1%)");
    println!(
        "Translation wall-clock: captive {:.3} ms vs qemu-style {:.3} ms ({:.2}x slower; paper: 2.6x)",
        cap_time * 1e3,
        qemu_time * 1e3,
        cap_time / qemu_time.max(1e-12)
    );
    println!(
        "429.mcf code size: captive {} bytes over {} translations, qemu {} bytes over {} translations",
        cap_bytes, cap_insns, qemu_bytes, qemu_insns
    );
    println!("  (paper: 67.53 vs 40.26 bytes per guest instruction)\n");
}

fn fig21() {
    println!("== Figure 21: per-block code quality on 429.mcf (chaining comparable) ==");
    let w = &workloads::spec_int(Scale(1))[3];
    let c = run_captive_with(w, FpMode::Hardware, true);
    let q = run_qemu(w);
    println!(
        "captive: {} cycles over {} guest insns;  qemu: {} cycles",
        c.cycles, c.guest_insns, q.cycles
    );
    println!(
        "aggregate per-guest-instruction cycle ratio (qemu/captive): {:.2}x (paper block-level: 3.44x)\n",
        (q.cycles as f64 / q.guest_insns.max(1) as f64)
            / (c.cycles as f64 / c.guest_insns.max(1) as f64)
    );
}

fn fig22() {
    println!("== Figure 22: Captive vs native Arm hardware (IPC models) ==");
    let mut ratios_a53 = Vec::new();
    let mut ratios_a57 = Vec::new();
    for w in workloads::spec_int(Scale(1)) {
        let c = run_captive(&w);
        let a53 = native_model::cortex_a53_cycles(c.guest_insns);
        let a57 = native_model::cortex_a57_cycles(c.guest_insns);
        ratios_a53.push(a53 as f64 / c.cycles as f64);
        ratios_a57.push(a57 as f64 / c.cycles as f64);
    }
    println!(
        "Captive vs Cortex-A53 (1.2GHz): {:.2}x the A53's speed   (paper: ~2x)",
        geomean(&ratios_a53)
    );
    println!(
        "Captive vs Cortex-A57 (2.0GHz): {:.2}x the A57's speed   (paper: ~0.4x)\n",
        geomean(&ratios_a57)
    );
}

fn table2() {
    println!("== Table 2: x86 SQRTSD vs Arm FSQRT special cases ==");
    let inputs = [
        ("0.0", 0.0f64),
        ("-0.0", -0.0),
        ("inf", f64::INFINITY),
        ("-inf", f64::NEG_INFINITY),
        ("0.5", 0.5),
        ("-0.5", -0.5),
        ("NaN", f64::from_bits(0x7FF8_0000_0000_0000)),
        ("-NaN", f64::from_bits(0xFFF8_0000_0000_0000)),
    ];
    let mut env = softfloat::FpEnv::new();
    println!(
        "{:<8} {:>20} {:>20} {:>12}",
        "input", "x86 (SQRTSD)", "Arm (FSQRT)", "difference"
    );
    for (name, v) in inputs {
        let x86 = softfloat::f64_sqrt_x86(v.to_bits(), &mut env);
        let arm = softfloat::f64_sqrt_arm(v.to_bits(), &mut env);
        let diff = if x86 == arm {
            "-"
        } else if (x86 ^ arm) == 1 << 63 || (x86 >> 63) != (arm >> 63) {
            "sign bit"
        } else {
            "payload"
        };
        println!(
            "{:<8} {:>20} {:>20} {:>12}",
            name,
            format!("{:#018x}", x86),
            format!("{:#018x}", arm),
            diff
        );
    }
    println!();
}

fn chaining() {
    println!("== Section 2.6/2.7: direct block chaining and the fetch iTLB ==");
    println!("   (both baselines reported: plain QEMU and QEMU with same-page chaining)");
    println!(
        "{:<18} {:>9} {:>14} {:>14} {:>14} {:>14} {:>9} {:>8} {:>8} {:>9}",
        "workload",
        "speedup",
        "cycles (on)",
        "cycles (off)",
        "qemu",
        "qemu+chain",
        "chained",
        "patches",
        "slowdsp",
        "itlb hit"
    );
    let mut hot = workloads::spec_int(Scale(1));
    hot.truncate(4);
    hot.push(bench::micro_workload(&simbench::same_page_direct(10_000)));
    for w in &hot {
        let on = run_captive_chaining(w, true);
        let off = run_captive_chaining(w, false);
        let q = run_qemu(w);
        let qc = run_qemu_chaining(w, true);
        let itlb_rate = on.itlb_hit_rate();
        assert!(
            on.cycles <= off.cycles,
            "{}: chaining regressed ({} > {})",
            w.name,
            on.cycles,
            off.cycles
        );
        assert!(
            qc.cycles <= q.cycles,
            "{}: qemu chaining regressed ({} > {})",
            w.name,
            qc.cycles,
            q.cycles
        );
        println!(
            "{:<18} {:>8.3}x {:>14} {:>14} {:>14} {:>14} {:>9} {:>8} {:>8} {:>8.1}%",
            w.name,
            off.cycles as f64 / on.cycles as f64,
            on.cycles,
            off.cycles,
            q.cycles,
            qc.cycles,
            on.chained_transfers,
            on.chain_patches,
            on.slow_dispatches,
            itlb_rate * 100.0
        );
    }
    println!();
}

fn regions() {
    println!("== Region formation over hot chain paths ==");
    println!(
        "{:<18} {:>14} {:>14} {:>9} {:>9} {:>9} {:>8} {:>12} {:>12}",
        "workload",
        "chain cycles",
        "super cycles",
        "speedup",
        "formed",
        "sb-xfers",
        "entries",
        "(chain-only)",
        "dtlb hits"
    );
    let mut hot = workloads::spec_int(Scale(1));
    hot.truncate(4);
    let hot_loop = bench::micro_workload(&simbench::same_page_direct(10_000));
    let hot_loop_name = hot_loop.name;
    hot.push(hot_loop);
    let mut hot_loop_sb = None;
    for w in &hot {
        let chain = run_captive_chaining(w, true);
        let sb = run_captive_regions(w);
        // CI smoke invariants: regions must never cost cycles over chaining
        // alone, and wherever a region formed it must have absorbed
        // interpreter entries.
        assert!(
            sb.cycles <= chain.cycles,
            "{}: regions regressed cycles ({} > {})",
            w.name,
            sb.cycles,
            chain.cycles
        );
        if sb.regions_formed > 0 {
            assert!(
                sb.region_transfers > 0,
                "{}: regions formed but no stitched transfers",
                w.name
            );
            assert!(
                sb.blocks < chain.blocks,
                "{}: regions did not reduce interpreter entries ({} vs {})",
                w.name,
                sb.blocks,
                chain.blocks
            );
        }
        println!(
            "{:<18} {:>14} {:>14} {:>8.3}x {:>9} {:>9} {:>8} {:>12} {:>12}",
            w.name,
            chain.cycles,
            sb.cycles,
            chain.cycles as f64 / sb.cycles as f64,
            sb.regions_formed,
            sb.region_transfers,
            sb.blocks,
            chain.blocks,
            sb.dtlb_hits
        );
        if w.name == hot_loop_name {
            hot_loop_sb = Some(sb);
        }
    }
    let sb = hot_loop_sb.expect("the hot-loop micro is in the workload list");
    assert!(
        sb.regions_formed >= 1 && sb.region_transfers > 10_000,
        "hot loop must form and exercise a region (formed {}, transfers {})",
        sb.regions_formed,
        sb.region_transfers
    );
    println!();
}

fn unroll() {
    println!("== Self-loop unrolling: peeled regions on pointer-chase kernels ==");
    println!(
        "{:<18} {:>14} {:>14} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "workload",
        "cycles (x4)",
        "cycles (off)",
        "speedup",
        "formed",
        "unrolled",
        "sb-xfers",
        "entries"
    );
    // The pointer-chase kernels are single-block self-loops: without
    // unrolling their traces close at one constituent and no region forms.
    let chasers: Vec<_> = workloads::spec_int(Scale(1))
        .into_iter()
        .filter(|w| matches!(w.name, "429.mcf" | "473.astar"))
        .collect();
    for w in &chasers {
        let on = run_captive_unroll(w, 4);
        let off = run_captive_unroll(w, 1);
        // CI smoke invariants: the chase loop must actually unroll, and
        // peeling must never cost modeled cycles.
        assert!(
            on.regions_unrolled >= 1,
            "{}: the self-loop must form an unrolled region",
            w.name
        );
        assert!(
            on.cycles <= off.cycles,
            "{}: unrolling regressed cycles ({} > {})",
            w.name,
            on.cycles,
            off.cycles
        );
        assert!(
            on.blocks < off.blocks,
            "{}: peeled iterations must cut interpreter entries ({} vs {})",
            w.name,
            on.blocks,
            off.blocks
        );
        println!(
            "{:<18} {:>14} {:>14} {:>8.3}x {:>9} {:>9} {:>10} {:>10}",
            w.name,
            on.cycles,
            off.cycles,
            off.cycles as f64 / on.cycles as f64,
            on.regions_formed,
            on.regions_unrolled,
            on.region_transfers,
            on.blocks
        );
    }
    println!();
}

fn loops() {
    println!("== Looping regions: region-internal back-edges on loop-heavy kernels ==");
    println!("   (off = regions without back-edge closing; chain = chaining alone)");
    println!(
        "{:<18} {:>13} {:>13} {:>13} {:>8} {:>8} {:>10} {:>9} {:>9}",
        "workload",
        "cycles (on)",
        "cycles (off)",
        "chain-only",
        "vs off",
        "vs chain",
        "backedges",
        "entries",
        "(off)"
    );
    let mut ws = workloads::loop_kernels(Scale(1));
    // The dispatch-bound multi-block loop: the shape whose per-iteration
    // cost is dominated by the machinery back-edges remove.
    let micro = bench::micro_workload(&simbench::same_page_direct(10_000));
    let micro_name = micro.name;
    ws.push(micro);
    let mut micro_gain = 0.0f64;
    for w in &ws {
        let on = run_captive_loops(w, true);
        let off = run_captive_loops(w, false);
        let chain = run_captive_chaining(w, true);
        // CI smoke invariants: every loop-heavy kernel must close at least
        // one back-edge region, trip it internally, and never cost modeled
        // cycles over loop-regions-off; wherever the loop closes fully the
        // dispatcher entries per trip collapse.
        assert!(
            on.loop_regions_formed >= 1,
            "{}: no back-edge region formed",
            w.name
        );
        assert!(
            on.backedge_transfers > 0,
            "{}: back-edge regions formed but never tripped",
            w.name
        );
        assert!(
            on.cycles <= off.cycles,
            "{}: looping regions regressed cycles ({} > {})",
            w.name,
            on.cycles,
            off.cycles
        );
        assert!(
            on.blocks < off.blocks,
            "{}: dispatcher entries per trip must drop ({} vs {})",
            w.name,
            on.blocks,
            off.blocks
        );
        let vs_off = off.cycles as f64 / on.cycles as f64;
        let vs_chain = chain.cycles as f64 / on.cycles as f64;
        if w.name == micro_name {
            micro_gain = vs_off;
        }
        println!(
            "{:<18} {:>13} {:>13} {:>13} {:>7.3}x {:>7.3}x {:>10} {:>9} {:>9}",
            w.name,
            on.cycles,
            off.cycles,
            chain.cycles,
            vs_off,
            vs_chain,
            on.backedge_transfers,
            on.blocks,
            off.blocks
        );
    }
    println!();
    // The acceptance bar: on the dispatch-bound multi-block loop workload,
    // looping regions must pay for themselves by a wide margin.  (This
    // section pins `promote: false` so the on/off delta isolates the
    // back-edge machinery; the `promote` section below measures what
    // loop-carried register promotion adds on top.)
    assert!(
        micro_gain >= 1.15,
        "the multi-block-loop workload must run >= 1.15x fewer modeled \
         cycles with looping regions on vs off (got {micro_gain:.3}x)"
    );
}

fn promote() {
    println!("== Loop-carried register promotion and invariant hoisting ==");
    println!("   (off = looping regions without promotion; qemu+gtb = goto_tb baseline)");
    println!(
        "{:<18} {:>13} {:>13} {:>13} {:>8} {:>9} {:>9} {:>7} {:>9}",
        "workload",
        "cycles (on)",
        "cycles (off)",
        "qemu+gtb",
        "vs off",
        "promoted",
        "hoisted",
        "fpfwd",
        "gtb-xfers"
    );
    let mut stream_gain = 0.0f64;
    for w in workloads::loop_kernels(Scale(1)) {
        let on = run_captive_promote(&w, true);
        let off = run_captive_promote(&w, false);
        let gtb = run_qemu_goto_tb(&w);
        // CI smoke invariants: every loop kernel must promote at least one
        // slot and hoist at least one invariant load, promotion must never
        // cost modeled cycles, and the honest baseline comparison stays
        // honest — the goto_tb-enabled QEMU must itself beat the plain
        // dispatcher on these loop-dominated kernels.
        assert!(
            on.opt_promoted_slots >= 1,
            "{}: no regfile slot promoted to a loop carrier",
            w.name
        );
        assert!(
            on.opt_hoisted_loads >= 1,
            "{}: no loop-invariant regfile load hoisted",
            w.name
        );
        assert!(
            on.cycles <= off.cycles,
            "{}: promotion regressed cycles ({} > {})",
            w.name,
            on.cycles,
            off.cycles
        );
        assert!(
            gtb.cycles <= run_qemu_chaining(&w, true).cycles,
            "{}: goto_tb regressed the chained baseline",
            w.name
        );
        let vs_off = off.cycles as f64 / on.cycles as f64;
        if w.name == "stream.guarded" {
            stream_gain = vs_off;
        }
        println!(
            "{:<18} {:>13} {:>13} {:>13} {:>7.3}x {:>9} {:>9} {:>7} {:>9}",
            w.name,
            on.cycles,
            off.cycles,
            gtb.cycles,
            vs_off,
            on.opt_promoted_slots,
            on.opt_hoisted_loads,
            on.opt_fp_forwarded,
            gtb.goto_tb_transfers
        );
    }
    // The loop kernels are single-page, so same-page chaining already links
    // every transfer and goto_tb is quiescent there; the cross-page
    // direct-branch micro is the shape only goto_tb can link, and keeps the
    // baseline honest about it.
    let cross = bench::micro_workload(&simbench::inter_page_direct(5_000));
    let gtb = run_qemu_goto_tb(&cross);
    let plain = run_qemu_chaining(&cross, true);
    assert!(
        gtb.goto_tb_transfers > 1_000,
        "the cross-page loop must take goto_tb links (got {})",
        gtb.goto_tb_transfers
    );
    assert!(
        gtb.cycles < plain.cycles,
        "goto_tb must beat same-page chaining on the cross-page loop \
         ({} vs {})",
        gtb.cycles,
        plain.cycles
    );
    println!(
        "{:<18} {:>13} {:>13} {:>13} {:>8} {:>9} {:>9} {:>7} {:>9}",
        cross.name, "-", "-", gtb.cycles, "-", "-", "-", "-", gtb.goto_tb_transfers
    );
    // The no-regression rider: on the branchy integer kernels — where trial
    // allocation should veto most candidates — promotion must never cost
    // modeled cycles.
    for w in workloads::spec_int(Scale(1)).into_iter().take(4) {
        let on = run_captive_promote(&w, true);
        let off = run_captive_promote(&w, false);
        assert!(
            on.cycles <= off.cycles,
            "{}: promotion regressed a non-loop kernel ({} > {})",
            w.name,
            on.cycles,
            off.cycles
        );
    }
    println!();
    // The acceptance bar: on the guarded stream kernel — a fat loop body
    // whose regfile traffic dominates once the dispatch layer is gone —
    // promotion must cut >= 1.15x modeled cycles over looping regions alone.
    assert!(
        stream_gain >= 1.15,
        "stream.guarded must run >= 1.15x fewer modeled cycles with \
         promotion on vs off (got {stream_gain:.3}x)"
    );
}

/// One JSON record per (kernel, engine) with the counters the perf
/// trajectory is tracked on across PRs.
fn json_record(out: &mut String, kernel: &str, engine: &str, m: &Measurement) {
    let mips = if m.cycles == 0 {
        0.0
    } else {
        m.guest_insns as f64 / (m.cycles as f64 / 3.5e9) / 1e6
    };
    // Keys are engine-generated identifiers ([a-z0-9._] only), so no JSON
    // string escaping is needed.
    let counters = m
        .counters
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&format!(
        "    {{\"kernel\": \"{kernel}\", \"engine\": \"{engine}\", \
         \"cycles\": {}, \"guest_insns\": {}, \"mips\": {mips:.1}, \
         \"blocks\": {}, \"chained_transfers\": {}, \"region_transfers\": {}, \
         \"backedge_transfers\": {}, \"regions_formed\": {}, \
         \"loop_regions_formed\": {}, \"opt_dead_stores\": {}, \
         \"opt_forwarded_loads\": {}, \"opt_partial_forwarded\": {}, \
         \"opt_copies_folded\": {}, \"opt_promoted_slots\": {}, \
         \"opt_hoisted_loads\": {}, \"opt_fp_forwarded\": {}, \
         \"opt_idioms_fused\": {}, \
         \"goto_tb_transfers\": {}, \"elided_dyn_insns\": {}, \
         \"irqs_delivered\": {}, \"timer_irqs\": {}, \
         \"capacity_evictions\": {}, \"bytes_live\": {}, \
         \"regions_live\": {}, \"formation_failures\": {}, \
         \"regions_quarantined\": {}, \"lower_bailouts\": {}, \
         \"tier1_requests\": {}, \"regions_installed_async\": {}, \
         \"stale_discards\": {}, \"reuse_hits\": {}, \"reuse_misses\": {}, \
         \"jit_wall_ns\": {}, \"tier_worker_wall_ns\": {}, \
         \"first_region_install_ns\": {}, \"counters\": {{{counters}}}}}",
        m.cycles,
        m.guest_insns,
        m.blocks,
        m.chained_transfers,
        m.region_transfers,
        m.backedge_transfers,
        m.regions_formed,
        m.loop_regions_formed,
        m.opt_dead_stores,
        m.opt_forwarded_loads,
        m.opt_partial_forwarded,
        m.opt_copies_folded,
        m.opt_promoted_slots,
        m.opt_hoisted_loads,
        m.opt_fp_forwarded,
        m.opt_idioms_fused,
        m.goto_tb_transfers,
        m.elided_dyn_insns,
        m.irqs_delivered,
        m.timer_irqs,
        m.capacity_evictions,
        m.bytes_live,
        m.regions_live,
        m.formation_failures,
        m.regions_quarantined,
        m.lower_bailouts,
        m.tier1_requests,
        m.regions_installed_async,
        m.stale_discards,
        m.reuse_hits,
        m.reuse_misses,
        m.jit_wall_ns,
        m.tier_worker_wall_ns,
        m.first_region_install_ns,
    ));
}

fn json() {
    println!("== BENCH_figures.json: machine-readable per-kernel results ==");
    let mut records: Vec<String> = Vec::new();
    let mut push = |kernel: &str, engine: &str, m: &Measurement| {
        let mut s = String::new();
        json_record(&mut s, kernel, engine, m);
        records.push(s);
    };
    for w in workloads::spec_int(Scale(1)) {
        push(w.name, "captive", &run_captive(&w));
        push(w.name, "qemu", &run_qemu(&w));
        push(w.name, "qemu+chain", &run_qemu_chaining(&w, true));
    }
    for w in workloads::spec_fp(Scale(1)) {
        push(w.name, "captive", &run_captive(&w));
        push(w.name, "qemu", &run_qemu(&w));
    }
    for w in workloads::loop_kernels(Scale(1)) {
        push(w.name, "captive", &run_captive_loops(&w, true));
        push(w.name, "captive-loops-off", &run_captive_loops(&w, false));
        push(w.name, "captive-promote", &run_captive_promote(&w, true));
        push(w.name, "qemu+goto_tb", &run_qemu_goto_tb(&w));
        // The tier trajectory: cold run publishes+installs asynchronously,
        // the warm run resurrects regions from the shared reuse cache.
        let reuse = std::sync::Arc::new(dbt::ReuseCache::new());
        push(
            w.name,
            "captive-tiered-cold",
            &bench::run_captive_tiered_reuse(&w, &reuse),
        );
        push(
            w.name,
            "captive-tiered-warm",
            &bench::run_captive_tiered_reuse(&w, &reuse),
        );
    }
    for w in [
        workloads::interrupt_storm(40, 2_500),
        workloads::timer_tick(20_000, 200_000),
    ] {
        push(w.name, "captive", &run_captive(&w));
        push(w.name, "qemu", &run_qemu(&w));
    }
    // The guest-idiom trajectory: per-rule hit/candidate counters land in
    // each record's "counters" object.
    for w in workloads::idiom_kernels(Scale(1)) {
        push(w.name, "captive-idiom", &run_captive_idioms(&w, true));
        push(w.name, "captive-noidiom", &run_captive_idioms(&w, false));
        push(w.name, "qemu", &run_qemu(&w));
    }
    // The virtio-blk I/O kernels, including the device-originated-SMC case;
    // the virtio.* counters land in each record's "counters" object.
    let vcfg = workloads::vblk_config();
    for w in workloads::io_kernels() {
        push(
            w.name,
            "captive",
            &bench::run_captive_io(&w, vcfg.clone(), captive::CaptiveConfig::default()),
        );
        push(w.name, "qemu", &bench::run_qemu_io(&w, vcfg.clone()));
    }
    let (smc, sector0) = workloads::vblk_smc();
    let smc_cfg = workloads::vblk_smc_config(sector0);
    push(
        smc.name,
        "captive",
        &bench::run_captive_io(&smc, smc_cfg.clone(), captive::CaptiveConfig::default()),
    );
    push(smc.name, "qemu", &bench::run_qemu_io(&smc, smc_cfg));
    // A deliberately starved code cache, so the eviction counters have a
    // tracked non-zero baseline.
    let mcf = workloads::spec_int(Scale(1)).remove(3);
    push(
        "429.mcf",
        "captive-tinycache",
        &bench::run_captive_cfg(
            &mcf,
            captive::CaptiveConfig {
                cache_capacity_regions: Some(3),
                ..captive::CaptiveConfig::default()
            },
        ),
    );
    let body = format!(
        "{{\n  \"schema\": \"bench-figures-v1\",\n  \"results\": [\n{}\n  ]\n}}\n",
        records.join(",\n")
    );
    std::fs::write("BENCH_figures.json", &body).expect("write BENCH_figures.json");
    println!(
        "wrote BENCH_figures.json ({} records, {} bytes)\n",
        records.len(),
        body.len()
    );
}

fn scale() {
    println!("== Workload scaling: cycles and MIPS trends per engine ==");
    println!(
        "{:<18} {:>6} {:>14} {:>9} {:>14} {:>9} {:>14} {:>9}",
        "workload", "scale", "captive cyc", "MIPS", "qemu cyc", "MIPS", "qemu+chain", "MIPS"
    );
    // Modeled MIPS: guest instructions retired per simulated second in the
    // 3.5 GHz-equivalent cycle domain the cost model is calibrated to.
    let mips = |guest_insns: u64, cycles: u64| guest_insns as f64 / (cycles as f64 / 3.5e9) / 1e6;
    // One workload per kernel character: streaming, pointer chasing, and
    // the branchy integer mix.
    for name in ["401.bzip2", "429.mcf", "456.hmmer"] {
        let mut prev: Option<(u64, u64, u64)> = None;
        for sc in [1u32, 2, 4] {
            let w = workloads::spec_int(Scale(sc))
                .into_iter()
                .find(|w| w.name == name)
                .expect("workload exists at every scale");
            let c = run_captive(&w);
            let q = run_qemu(&w);
            let qc = run_qemu_chaining(&w, true);
            // CI smoke invariants: work must grow strictly with scale on
            // every engine, and the engine ordering must hold at every
            // scale (captive < qemu+chain <= qemu on these kernels).
            if let Some((pc, pq, pqc)) = prev {
                assert!(
                    c.cycles > pc && q.cycles > pq && qc.cycles > pqc,
                    "{name}@x{sc}: cycles must grow with scale"
                );
            }
            assert!(
                c.cycles < qc.cycles && qc.cycles <= q.cycles,
                "{name}@x{sc}: engine ordering violated ({} vs {} vs {})",
                c.cycles,
                qc.cycles,
                q.cycles
            );
            prev = Some((c.cycles, q.cycles, qc.cycles));
            println!(
                "{:<18} {:>5}x {:>14} {:>9.1} {:>14} {:>9.1} {:>14} {:>9.1}",
                name,
                sc,
                c.cycles,
                mips(c.guest_insns, c.cycles),
                q.cycles,
                mips(q.guest_insns, q.cycles),
                qc.cycles,
                mips(qc.guest_insns, qc.cycles)
            );
        }
    }
    println!();
}

fn opt() {
    println!("== Block-scoped LIR optimizer: dead-flag elimination, forwarding, iterative DCE ==");
    println!(
        "{:<18} {:>14} {:>14} {:>9} {:>9} {:>9} {:>6} {:>9} {:>14} {:>12}",
        "workload",
        "cycles (on)",
        "cycles (off)",
        "saved",
        "deadst",
        "fwd",
        "pfwd",
        "dce",
        "dyn-elided",
        "cyc saved"
    );
    // The flag-heavy integer kernels are where dead-flag elimination and
    // NZCV forwarding pay; a streaming and an FP workload ride along to
    // check the no-regression invariant off the happy path too.
    let mut ws = workloads::spec_int(Scale(1));
    ws.truncate(8);
    let flag_heavy = ws.len();
    ws.push(workloads::fp_micro(Scale(1)));
    let mut total_dead = 0u64;
    let mut total_saved = 0u64;
    for (i, w) in ws.iter().enumerate() {
        let on = run_captive_opt(w, true);
        let off = run_captive_opt(w, false);
        // CI smoke invariants: the optimiser must never cost modeled cycles,
        // and on the flag-heavy integer kernels it must actually eliminate
        // work (the FP rider is only held to the no-regression bar).
        assert!(
            on.cycles <= off.cycles,
            "{}: optimizer regressed cycles ({} > {})",
            w.name,
            on.cycles,
            off.cycles
        );
        assert!(
            i >= flag_heavy || (on.opt_forwarded_loads > 0 && on.opt_dce_insns > 0),
            "{}: optimizer reported no work (fwd {}, dce {})",
            w.name,
            on.opt_forwarded_loads,
            on.opt_dce_insns
        );
        println!(
            "{:<18} {:>14} {:>14} {:>8.3}x {:>9} {:>9} {:>6} {:>9} {:>14} {:>12}",
            w.name,
            on.cycles,
            off.cycles,
            off.cycles as f64 / on.cycles as f64,
            on.opt_dead_stores,
            on.opt_forwarded_loads,
            on.opt_partial_forwarded,
            on.opt_dce_insns,
            on.elided_dyn_insns,
            off.cycles - on.cycles
        );
        total_dead += on.opt_dead_stores;
        total_saved += off.cycles - on.cycles;
    }
    // Across the set as a whole, dead-store elimination must have fired and
    // a measurable modeled-cycle reduction must exist.
    assert!(total_dead > 0, "dead-store elimination never fired");
    assert!(
        total_saved > 0,
        "no modeled-cycle reduction across the suite"
    );
    println!(
        "totals: {} dead stores, {} cycles saved across the set\n",
        total_dead, total_saved
    );
}

fn idioms() {
    println!("== Guest-idiom layer: fusion, address folding and bulk rewriting ==");
    println!(
        "{:<14} {:>13} {:>13} {:>8} {:>7} {:>7} {:>6} {:>6} {:>6}",
        "workload",
        "cycles (on)",
        "cycles (off)",
        "vs off",
        "fused",
        "cmpbr",
        "tstbr",
        "cbz",
        "bulk"
    );
    let kernels = workloads::idiom_kernels(Scale(1));
    let mut per_rule = [0u64; dbt::RULE_COUNT];
    let mut total_fused = 0u64;
    let mut branch_gain = 0.0f64;
    for w in &kernels {
        let on = run_captive_idioms(w, true);
        let off = run_captive_idioms(w, false);
        // CI smoke invariants: the idiom layer must never cost modeled
        // cycles, it must actually rewrite something on its own kernels, and
        // with the layer off its counters must stay exactly zero.
        assert!(
            on.cycles <= off.cycles,
            "{}: idiom layer regressed cycles ({} > {})",
            w.name,
            on.cycles,
            off.cycles
        );
        assert!(
            on.opt_idioms_fused > 0,
            "{}: no idiom fused on an idiom kernel",
            w.name
        );
        assert_eq!(
            off.opt_idioms_fused, 0,
            "{}: idioms fused with the layer disabled",
            w.name
        );
        for (i, kind) in dbt::RuleKind::ALL.iter().enumerate() {
            per_rule[i] += on.counter(&format!("idiom.hit.{}", kind.name()));
        }
        total_fused += on.opt_idioms_fused;
        let vs_off = off.cycles as f64 / on.cycles as f64;
        if w.name == "idiom.branch" {
            branch_gain = vs_off;
        }
        println!(
            "{:<14} {:>13} {:>13} {:>7.3}x {:>7} {:>7} {:>6} {:>6} {:>6}",
            w.name,
            on.cycles,
            off.cycles,
            vs_off,
            on.opt_idioms_fused,
            on.counter("idiom.hit.fuse.cmpbr"),
            on.counter("idiom.hit.fuse.tstbr"),
            on.counter("idiom.hit.fuse.cbz"),
            on.counter("idiom.hit.bulk.memset"),
        );
    }
    // Every shipped rule must pay its way: at least one hit somewhere on the
    // idiom kernels, and a nonzero grand total.
    for (i, kind) in dbt::RuleKind::ALL.iter().enumerate() {
        assert!(
            per_rule[i] > 0,
            "rule {} never fired on any idiom kernel",
            kind.name()
        );
    }
    assert!(total_fused > 0, "no idiom fused across the kernel set");
    // The no-regression rider: on the general workloads the layer must be
    // free or better.
    for w in workloads::spec_int(Scale(1))
        .into_iter()
        .take(4)
        .chain(workloads::loop_kernels(Scale(1)))
    {
        let on = run_captive_idioms(&w, true);
        let off = run_captive_idioms(&w, false);
        assert!(
            on.cycles <= off.cycles,
            "{}: idiom layer regressed a non-idiom kernel ({} > {})",
            w.name,
            on.cycles,
            off.cycles
        );
    }
    // The mining flow: observe-only candidates on the branch kernel must
    // mine a table that keeps the branch-fusion rules enabled, and running
    // under the mined table must match the hand-enabled full table.
    let branch = &kernels[0];
    assert_eq!(branch.name, "idiom.branch");
    let (observe, mined, table) = run_captive_idioms_mined(branch);
    assert_eq!(
        observe.opt_idioms_fused, 0,
        "observe-only mode must not rewrite anything"
    );
    assert!(
        observe.counter("idiom.cand.fuse.cmpbr") > 0,
        "observe-only mode must still count candidates"
    );
    for kind in [
        dbt::RuleKind::FuseCmpBr,
        dbt::RuleKind::FuseTstBr,
        dbt::RuleKind::FuseCbz,
    ] {
        assert!(
            table.enabled(kind) && table.weight(kind) > 0,
            "mined table dropped {} despite hot candidates",
            kind.name()
        );
    }
    assert!(
        mined.opt_idioms_fused > 0 && mined.cycles <= observe.cycles,
        "mined table must fuse and win on the kernel it was mined from \
         ({} fused, {} vs {} cycles)",
        mined.opt_idioms_fused,
        mined.cycles,
        observe.cycles
    );
    println!(
        "mined from idiom.branch: {} (mined run {} cycles, observe {} cycles)",
        table.serialize().replace('\n', " "),
        mined.cycles,
        observe.cycles
    );
    println!();
    // The acceptance bar: on the flag-heavy branch kernel the NZCV-free
    // fusion path must cut >= 1.10x modeled cycles over the layer being off.
    assert!(
        branch_gain >= 1.10,
        "idiom.branch must run >= 1.10x fewer modeled cycles with the idiom \
         layer on vs off (got {branch_gain:.3}x)"
    );
}

fn storm() {
    println!("== Event sources: interrupt storm and timer preemption ==");
    println!(
        "{:<18} {:>14} {:>14} {:>8} {:>8} {:>9} {:>10} {:>9}",
        "workload", "captive cyc", "qemu cyc", "irqs", "timer", "regions", "backedges", "quarant"
    );
    let storm = workloads::interrupt_storm(40, 2_500);
    let tick = workloads::timer_tick(20_000, 200_000);
    for w in [&storm, &tick] {
        let c = run_captive(w);
        let q = run_qemu(w);
        // CI smoke invariants: every engine delivers the same IRQ count
        // (the storm's handler stops the run only after its target), and
        // IRQ pressure must not stop Captive from forming and tripping its
        // translation units, nor push any trace into quarantine.
        assert_eq!(
            c.irqs_delivered, q.irqs_delivered,
            "{}: engines disagree on deliveries",
            w.name
        );
        assert!(c.irqs_delivered > 0, "{}: no IRQs delivered", w.name);
        assert!(
            c.regions_formed + c.loop_regions_formed > 0,
            "{}: no region formed under IRQ pressure",
            w.name
        );
        assert!(
            c.backedge_transfers + c.region_transfers > 0,
            "{}: regions formed but never tripped",
            w.name
        );
        assert_eq!(
            c.regions_quarantined, 0,
            "{}: IRQ preemption must not quarantine traces",
            w.name
        );
        println!(
            "{:<18} {:>14} {:>14} {:>8} {:>8} {:>9} {:>10} {:>9}",
            w.name,
            c.cycles,
            q.cycles,
            c.irqs_delivered,
            c.timer_irqs,
            c.regions_formed + c.loop_regions_formed,
            c.backedge_transfers,
            c.regions_quarantined
        );
    }
    println!();
}

fn tiers() {
    println!("== Tiered translation: background formation + content-keyed reuse ==");
    println!("   (cold = first tiered run, warm = second run against the shared reuse cache)");
    println!(
        "{:<18} {:>13} {:>10} {:>10} {:>10} {:>7} {:>7} {:>6} {:>10}",
        "workload",
        "cycles",
        "sync-wall",
        "cold-wall",
        "warm-wall",
        "async",
        "stale",
        "reuse",
        "first-inst"
    );
    let us = |ns: u64| ns as f64 / 1e3;
    let mut warm_wall = 0u64;
    let mut sync_wall = 0u64;
    let mut async_installs = 0u64;
    for w in workloads::loop_kernels(Scale(1)) {
        // Both tiered runs share one content-keyed reuse cache, modelling the
        // same kernel image booted twice on one hypervisor instance.
        let reuse = std::sync::Arc::new(dbt::ReuseCache::new());
        let cold = bench::run_captive_tiered_reuse(&w, &reuse);
        let warm = bench::run_captive_tiered_reuse(&w, &reuse);
        let sync = bench::run_captive_tiered(&w, false);
        // CI smoke invariants: regions are installed at the same guest
        // progress point in both modes, so the modeled cost is mode- and
        // warmth-blind on these single-trace kernels; the background path
        // must actually install asynchronously on the cold run; the warm
        // run must resurrect at least one region from the reuse cache; and
        // time-to-first-install must have been recorded.
        assert_eq!(
            cold.cycles, sync.cycles,
            "{}: tiered modeled cost diverged from synchronous",
            w.name
        );
        assert_eq!(
            warm.cycles, sync.cycles,
            "{}: reuse-warm modeled cost diverged from synchronous",
            w.name
        );
        assert!(
            cold.tier1_requests >= 1 && cold.regions_installed_async >= 1,
            "{}: the background tier never installed (requests {}, installs {})",
            w.name,
            cold.tier1_requests,
            cold.regions_installed_async
        );
        assert!(
            warm.reuse_hits >= 1,
            "{}: second run of the same image must hit the reuse cache",
            w.name
        );
        assert!(
            cold.first_region_install_ns > 0,
            "{}: time-to-first-install not recorded",
            w.name
        );
        warm_wall += warm.jit_wall_ns;
        sync_wall += sync.jit_wall_ns;
        async_installs += cold.regions_installed_async;
        println!(
            "{:<18} {:>13} {:>9.0}u {:>9.0}u {:>9.0}u {:>7} {:>7} {:>6} {:>9.0}u",
            w.name,
            sync.cycles,
            us(sync.jit_wall_ns),
            us(cold.jit_wall_ns),
            us(warm.jit_wall_ns),
            cold.regions_installed_async,
            cold.stale_discards,
            warm.reuse_hits,
            us(cold.first_region_install_ns)
        );
    }
    // The acceptance bar: once the reuse cache is warm the run thread never
    // re-forms a region, so its translation wall-clock must land strictly
    // below the synchronous former's across the loop-kernel suite.
    assert!(async_installs >= 1, "no asynchronous install in the sweep");
    assert!(
        warm_wall < sync_wall,
        "warm tiered run-thread JIT wall must undercut the synchronous \
         former ({warm_wall} ns vs {sync_wall} ns)"
    );
    println!(
        "run-thread JIT wall across the suite: sync {:.0}us vs reuse-warm tiered {:.0}us \
         ({:.0}us of translation stall eliminated)\n",
        us(sync_wall),
        us(warm_wall),
        us(sync_wall - warm_wall)
    );
}

fn fp_modes() {
    println!("== Section 3.6.2: hardware vs software FP in Captive ==");
    let w = workloads::fp_micro(Scale(1));
    let hw = run_captive_with(&w, FpMode::Hardware, false);
    let sw = run_captive_with(&w, FpMode::Software, false);
    let q = run_qemu(&w);
    println!(
        "captive hw-fp: {} cycles; captive soft-fp: {} cycles; qemu: {} cycles",
        hw.cycles, sw.cycles, q.cycles
    );
    println!(
        "speedup over qemu: hw {:.2}x (paper 2.17x), soft {:.2}x (paper 1.68x); hw-vs-soft {:.2}x (paper 1.3x)\n",
        q.cycles as f64 / hw.cycles as f64,
        q.cycles as f64 / sw.cycles as f64,
        sw.cycles as f64 / hw.cycles as f64
    );
}
