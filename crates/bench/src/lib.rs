//! Benchmark harness shared by the Criterion benches, the `figures` binary
//! and the examples: loads a guest program into Captive or the QEMU-style
//! baseline, runs it to completion, and reports simulated-cycle statistics.

use captive::{Captive, CaptiveConfig, FpMode, RunExit};
use qemu_ref::QemuRef;
use workloads::Workload;

pub mod chaos;

/// Maximum dispatched blocks per run (safety net against guest hangs).
pub const BLOCK_BUDGET: u64 = 200_000_000;

/// Result of running one guest program on one system.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Simulated host cycles.
    pub cycles: u64,
    /// Host instructions executed.
    pub host_insns: u64,
    /// Guest instructions attributed.
    pub guest_insns: u64,
    /// Translations performed.
    pub translations: u64,
    /// Bytes of generated host code.
    pub code_bytes: u64,
    /// Wall-clock seconds spent inside the JIT (all phases).
    pub jit_seconds: f64,
    /// JIT phase fractions (decode, translate, regalloc, encode).
    pub jit_fractions: (f64, f64, f64, f64),
    /// Control transfers that followed a chain link (Captive only; 0 for the
    /// baseline).
    pub chained_transfers: u64,
    /// Successor links patched lazily (Captive only).
    pub chain_patches: u64,
    /// Dispatcher slow-path entries (Captive only).
    pub slow_dispatches: u64,
    /// Fetch-side iTLB hits (Captive only).
    pub itlb_hits: u64,
    /// Fetch-side iTLB misses (Captive only).
    pub itlb_misses: u64,
    /// Data-side gTLB hits (Captive only).
    pub dtlb_hits: u64,
    /// Data-side gTLB misses (Captive only).
    pub dtlb_misses: u64,
    /// Intra-region stitched transfers (Captive with region formation only).
    pub region_transfers: u64,
    /// Multi-constituent regions formed (Captive only).
    pub regions_formed: u64,
    /// Regions formed by unrolling a loop body (Captive only).
    pub regions_unrolled: u64,
    /// Regions whose loop closed as an internal back-edge (Captive only).
    pub loop_regions_formed: u64,
    /// Back-edge transfers taken: loop trips that stayed inside one region
    /// (Captive only).
    pub backedge_transfers: u64,
    /// Interpreter entries (blocks executed; chained + dispatched +
    /// superblock entries).
    pub blocks: u64,
    /// Regfile stores deleted by the LIR optimiser (Captive only; static).
    pub opt_dead_stores: u64,
    /// Regfile loads rewritten into register moves (Captive only; static).
    pub opt_forwarded_loads: u64,
    /// Partial-width forwards (subset of `opt_forwarded_loads`; Captive
    /// only; static).
    pub opt_partial_forwarded: u64,
    /// Register-copy uses folded by copy propagation (Captive only; static).
    pub opt_copies_folded: u64,
    /// LIR instructions marked dead by iterative DCE (static).
    pub opt_dce_insns: u64,
    /// Regfile slots promoted to loop-carried host registers (Captive only;
    /// static).
    pub opt_promoted_slots: u64,
    /// In-loop regfile loads satisfied from a carrier register (Captive
    /// only; static).
    pub opt_hoisted_loads: u64,
    /// Vector regfile loads forwarded, including cross-file transfers
    /// (Captive only; static).
    pub opt_fp_forwarded: u64,
    /// Guest-idiom rewrites applied across all rules (Captive only; static).
    pub opt_idioms_fused: u64,
    /// Cross-page chained transfers (QEMU-style baseline with `goto_tb`
    /// only; subset of `chained_transfers`).
    pub goto_tb_transfers: u64,
    /// Dynamic host instructions saved by elimination (eliminated LIR
    /// instructions × block executions).
    pub elided_dyn_insns: u64,
    /// Guest IRQs delivered (timer + interrupt-latch lines).
    pub irqs_delivered: u64,
    /// Timer-originated IRQs delivered (subset of `irqs_delivered`).
    pub timer_irqs: u64,
    /// Regions evicted because the code cache hit its capacity bound
    /// (Captive only; 0 for an unbounded cache).
    pub capacity_evictions: u64,
    /// Encoded bytes resident in the code cache at run end (Captive only).
    pub bytes_live: u64,
    /// Regions resident in the code cache at run end (Captive only).
    pub regions_live: u64,
    /// Region formations that produced nothing (Captive only).
    pub formation_failures: u64,
    /// Trace heads quarantined after repeated formation failures (Captive
    /// only).
    pub regions_quarantined: u64,
    /// Translations abandoned by the typed lowering-error fallback.
    pub lower_bailouts: u64,
    /// Tier-1 formation requests published to the background service
    /// (Captive tiered mode only).
    pub tier1_requests: u64,
    /// Regions installed from a background worker's result (Captive tiered
    /// mode only).
    pub regions_installed_async: u64,
    /// Worker results discarded as stale at the install gate (Captive tiered
    /// mode only).
    pub stale_discards: u64,
    /// Regions installed from the content-keyed reuse cache (Captive tiered
    /// mode only).
    pub reuse_hits: u64,
    /// Reuse-cache lookups that found no valid template (Captive tiered mode
    /// only).
    pub reuse_misses: u64,
    /// JIT wall-clock the run thread actually stalled on, in nanoseconds
    /// (tier-0 translation + snapshot capture + result waits + synchronous
    /// formation).  Wall time, NOT modeled cycles.
    pub jit_wall_ns: u64,
    /// Wall-clock spent inside tier-1 workers, in nanoseconds (runs hidden
    /// behind execution).
    pub tier_worker_wall_ns: u64,
    /// Nanoseconds from engine construction to the first region install
    /// (0 when no region was installed).
    pub first_region_install_ns: u64,
    /// String-keyed counters that don't warrant a dedicated field: per-rule
    /// idiom hit/candidate counts (`idiom.hit.<rule>`, `idiom.cand.<rule>`)
    /// today, anything cheap-to-name tomorrow.  Serialized by the `figures`
    /// binary as a `"counters"` JSON object per record.
    pub counters: Vec<(String, u64)>,
}

impl Measurement {
    /// Fetch iTLB hit rate in [0, 1]; 1.0 when there were no fetches (same
    /// empty-denominator convention as [`hvm::PerfCounters::tlb_hit_rate`]).
    pub fn itlb_hit_rate(&self) -> f64 {
        let total = self.itlb_hits + self.itlb_misses;
        if total == 0 {
            1.0
        } else {
            self.itlb_hits as f64 / total as f64
        }
    }

    /// Looks up a string-keyed counter; 0 when the key was never recorded.
    pub fn counter(&self, key: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map_or(0, |(_, v)| *v)
    }
}

/// Runs a workload under Captive (hardware FP, chaining on).
pub fn run_captive(w: &Workload) -> Measurement {
    run_captive_with(w, FpMode::Hardware, false)
}

/// Runs a workload under Captive with explicit FP mode / per-block stats.
pub fn run_captive_with(w: &Workload, fp: FpMode, per_block: bool) -> Measurement {
    run_captive_cfg(
        w,
        CaptiveConfig {
            fp_mode: fp,
            per_block_stats: per_block,
            ..CaptiveConfig::default()
        },
    )
}

/// Runs a workload under Captive with chaining forced on or off.
///
/// Region formation is pinned off: this entry point measures *chaining
/// alone*, and the chaining-gap equality checks (tests and `figures --
/// chaining`) pin chain-only cycle accounting.
pub fn run_captive_chaining(w: &Workload, chaining: bool) -> Measurement {
    run_captive_cfg(
        w,
        CaptiveConfig {
            chaining,
            form_regions: false,
            ..CaptiveConfig::default()
        },
    )
}

/// Runs a workload under Captive with the tiered translation service forced
/// on or off (everything else default).  Modeled cycles are identical either
/// way; the wall-clock fields (`jit_wall_ns`, `tier_worker_wall_ns`) are what
/// differ — this is the `figures -- tiers` comparison pair.
pub fn run_captive_tiered(w: &Workload, tiered: bool) -> Measurement {
    run_captive_cfg(
        w,
        CaptiveConfig {
            tiered,
            ..CaptiveConfig::default()
        },
    )
}

/// Same as [`run_captive_tiered`] with a shared content-keyed reuse cache,
/// for repeated-image sweeps where later runs should hit templates published
/// by earlier ones.
pub fn run_captive_tiered_reuse(
    w: &Workload,
    reuse: &std::sync::Arc<dbt::ReuseCache>,
) -> Measurement {
    run_captive_cfg(
        w,
        CaptiveConfig {
            tiered: true,
            reuse_cache: Some(std::sync::Arc::clone(reuse)),
            ..CaptiveConfig::default()
        },
    )
}

/// Runs a workload under Captive with the LIR optimiser forced on or off
/// (everything else default: chaining and superblocks on).  The tiered
/// service is pinned off here and in the other single-knob ablation helpers:
/// it cannot change modeled cycles, and the ablations want single-threaded
/// wall-clock accounting.
pub fn run_captive_opt(w: &Workload, opt: bool) -> Measurement {
    run_captive_cfg(
        w,
        CaptiveConfig {
            opt,
            tiered: false,
            ..CaptiveConfig::default()
        },
    )
}

/// Runs a workload under Captive with chaining plus region formation.
pub fn run_captive_regions(w: &Workload) -> Measurement {
    run_captive_cfg(
        w,
        CaptiveConfig {
            chaining: true,
            form_regions: true,
            tiered: false,
            ..CaptiveConfig::default()
        },
    )
}

/// Runs a workload under Captive with loop-body unrolling set explicitly
/// and back-edge closing pinned OFF (1 disables peeling; chaining + regions
/// stay on).  This measures the legacy peel machinery alone; the looping
/// comparison lives in [`run_captive_loops`].
pub fn run_captive_unroll(w: &Workload, unroll: usize) -> Measurement {
    run_captive_cfg(
        w,
        CaptiveConfig {
            unroll_loops: unroll,
            loop_regions: false,
            tiered: false,
            ..CaptiveConfig::default()
        },
    )
}

/// Runs a workload under Captive with looping regions (back-edge closing)
/// forced on or off; everything else default (chaining, region formation
/// and unrolling on).  Loop promotion is pinned OFF so this entry point
/// isolates the back-edge-closing machinery — the figures legs built on it
/// assert exact pre-promotion cycle counts; the promotion comparison lives
/// in [`run_captive_promote`].
pub fn run_captive_loops(w: &Workload, loop_regions: bool) -> Measurement {
    run_captive_cfg(
        w,
        CaptiveConfig {
            loop_regions,
            promote: false,
            tiered: false,
            ..CaptiveConfig::default()
        },
    )
}

/// Runs a workload under Captive with loop-carried register promotion forced
/// on or off; everything else default (chaining, regions, looping regions and
/// unrolling on) — the `figures -- promote` comparison pair.
pub fn run_captive_promote(w: &Workload, promote: bool) -> Measurement {
    run_captive_cfg(
        w,
        CaptiveConfig {
            promote,
            tiered: false,
            ..CaptiveConfig::default()
        },
    )
}

/// Runs a workload under Captive with the guest-idiom layer forced on or
/// off (tiered pinned off for single-threaded accounting; everything else
/// default) — the `figures -- idioms` comparison pair.
pub fn run_captive_idioms(w: &Workload, idioms: bool) -> Measurement {
    run_captive_cfg(
        w,
        CaptiveConfig {
            idioms,
            tiered: false,
            ..CaptiveConfig::default()
        },
    )
}

/// The profile-mined idiom flow: one observe-only pass (candidates counted,
/// nothing rewritten), mine a [`dbt::RuleTable`] from the hot-region
/// profiles, then re-run with the mined table applied.  Returns
/// `(observe, mined, table)`.
pub fn run_captive_idioms_mined(w: &Workload) -> (Measurement, Measurement, dbt::RuleTable) {
    let cfg = || CaptiveConfig {
        tiered: false,
        ..CaptiveConfig::default()
    };
    let mut observer = Captive::new(cfg());
    observer.set_idiom_rules(dbt::RuleTable::observe_only());
    let observe = drive_captive(w, &mut observer);
    let table = observer.mine_idiom_rules();
    let mut miner = Captive::new(cfg());
    miner.set_idiom_rules(table.clone());
    let mined = drive_captive(w, &mut miner);
    (observe, mined, table)
}

/// Runs a workload under Captive with a fully explicit configuration.
pub fn run_captive_cfg(w: &Workload, cfg: CaptiveConfig) -> Measurement {
    let mut c = Captive::new(cfg);
    drive_captive(w, &mut c)
}

/// Loads, runs to the halt and extracts a [`Measurement`] from an already
/// constructed engine (so callers can pre-seat a rule table or inspect the
/// engine afterwards).
fn drive_captive(w: &Workload, c: &mut Captive) -> Measurement {
    c.load_program(workloads::CODE_BASE, &w.words);
    c.set_entry(w.entry);
    let exit = c.run(BLOCK_BUDGET);
    assert!(
        matches!(exit, RunExit::GuestHalted { .. }),
        "{}: unexpected exit {exit:?}",
        w.name
    );
    let s = c.stats();
    let mut counters: Vec<(String, u64)> = Vec::new();
    for (name, n) in &s.idiom_hits {
        counters.push((format!("idiom.hit.{name}"), *n));
    }
    for (name, n) in &s.idiom_candidates {
        counters.push((format!("idiom.cand.{name}"), *n));
    }
    if s.virtio_kicks > 0 || s.external_invalidations > 0 {
        counters.push(("virtio.kicks".into(), s.virtio_kicks));
        counters.push(("virtio.submissions".into(), s.virtio_submissions));
        counters.push(("virtio.completions".into(), s.virtio_completions));
        counters.push(("virtio.irqs".into(), s.virtio_irqs));
        counters.push(("virtio.fault_injections".into(), s.virtio_fault_injections));
        counters.push(("virtio.dma_bytes".into(), s.virtio_dma_bytes));
        counters.push(("virtio.io_errors".into(), s.virtio_io_errors));
        counters.push((
            "virtio.external_invalidations".into(),
            s.external_invalidations,
        ));
    }
    Measurement {
        cycles: s.cycles,
        host_insns: s.host_insns,
        guest_insns: s.guest_insns,
        translations: s.translations,
        code_bytes: s.code_bytes,
        jit_seconds: c.timers.total().as_secs_f64(),
        jit_fractions: c.timers.fractions(),
        chained_transfers: s.chained_transfers,
        chain_patches: s.chain_patches,
        slow_dispatches: s.slow_dispatches,
        itlb_hits: s.itlb_hits,
        itlb_misses: s.itlb_misses,
        dtlb_hits: s.dtlb_hits,
        dtlb_misses: s.dtlb_misses,
        region_transfers: s.region_transfers,
        regions_formed: s.regions_formed,
        regions_unrolled: s.regions_unrolled,
        loop_regions_formed: s.loop_regions_formed,
        backedge_transfers: s.backedge_transfers,
        blocks: s.blocks,
        opt_dead_stores: s.opt_dead_stores,
        opt_forwarded_loads: s.opt_forwarded_loads,
        opt_partial_forwarded: s.opt_partial_forwarded,
        opt_copies_folded: s.opt_copies_folded,
        opt_dce_insns: s.opt_dce_insns,
        opt_promoted_slots: s.opt_promoted_slots,
        opt_hoisted_loads: s.opt_hoisted_loads,
        opt_fp_forwarded: s.opt_fp_forwarded,
        opt_idioms_fused: s.opt_idioms_fused,
        goto_tb_transfers: 0,
        elided_dyn_insns: s.elided_dyn_insns,
        irqs_delivered: s.irqs_delivered,
        timer_irqs: s.timer_irqs,
        capacity_evictions: s.capacity_evictions,
        bytes_live: s.bytes_live,
        regions_live: s.regions_live,
        formation_failures: s.formation_failures,
        regions_quarantined: s.regions_quarantined,
        lower_bailouts: c.timers.lower_bailouts,
        tier1_requests: s.tier1_requests,
        regions_installed_async: s.regions_installed_async,
        stale_discards: s.stale_discards,
        reuse_hits: s.reuse_hits,
        reuse_misses: s.reuse_misses,
        jit_wall_ns: s.jit_wall_ns,
        tier_worker_wall_ns: s.tier_worker_wall_ns,
        first_region_install_ns: s.first_region_install_ns,
        counters,
    }
}

/// Runs a workload under the QEMU-style baseline (no chaining).
pub fn run_qemu(w: &Workload) -> Measurement {
    run_qemu_chaining(w, false)
}

/// Runs a workload under the QEMU-style baseline with same-page chaining
/// configured explicitly (the tightened baseline of real QEMU).
pub fn run_qemu_chaining(w: &Workload, chaining: bool) -> Measurement {
    run_qemu_prepared(w, QemuRef::with_chaining(32 * 1024 * 1024, chaining))
}

/// Runs a workload under the strongest honest baseline: same-page chaining
/// plus TCG-style `goto_tb` cross-page linking.  The `figures -- promote`
/// headline speedups are measured against this configuration.
pub fn run_qemu_goto_tb(w: &Workload) -> Measurement {
    run_qemu_prepared(w, QemuRef::with_goto_tb(32 * 1024 * 1024))
}

fn run_qemu_prepared(w: &Workload, mut q: QemuRef) -> Measurement {
    q.load_program(workloads::CODE_BASE, &w.words);
    q.set_entry(w.entry);
    let exit = q.run(BLOCK_BUDGET);
    assert!(
        matches!(exit, qemu_ref::RunExit::GuestHalted { .. }),
        "{}: unexpected exit {exit:?}",
        w.name
    );
    let s = q.stats();
    let mut counters: Vec<(String, u64)> = Vec::new();
    if s.virtio_kicks > 0 || s.external_invalidations > 0 {
        counters.push(("virtio.kicks".into(), s.virtio_kicks));
        counters.push(("virtio.submissions".into(), s.virtio_submissions));
        counters.push(("virtio.completions".into(), s.virtio_completions));
        counters.push(("virtio.irqs".into(), s.virtio_irqs));
        counters.push(("virtio.fault_injections".into(), s.virtio_fault_injections));
        counters.push(("virtio.dma_bytes".into(), s.virtio_dma_bytes));
        counters.push(("virtio.io_errors".into(), s.virtio_io_errors));
        counters.push((
            "virtio.external_invalidations".into(),
            s.external_invalidations,
        ));
    }
    Measurement {
        cycles: s.cycles,
        host_insns: s.host_insns,
        guest_insns: s.guest_insns,
        translations: s.translations,
        code_bytes: s.code_bytes,
        jit_seconds: q.timers.total().as_secs_f64(),
        jit_fractions: q.timers.fractions(),
        chained_transfers: s.chained_transfers,
        chain_patches: s.chain_patches,
        slow_dispatches: s.blocks - s.chained_transfers,
        itlb_hits: 0,
        itlb_misses: 0,
        dtlb_hits: 0,
        dtlb_misses: 0,
        region_transfers: 0,
        regions_formed: 0,
        regions_unrolled: 0,
        loop_regions_formed: 0,
        backedge_transfers: 0,
        blocks: s.blocks,
        opt_dead_stores: 0,
        opt_forwarded_loads: 0,
        opt_partial_forwarded: 0,
        opt_copies_folded: 0,
        opt_dce_insns: q.timers.opt_dce_insns,
        opt_promoted_slots: 0,
        opt_hoisted_loads: 0,
        opt_fp_forwarded: 0,
        opt_idioms_fused: 0,
        goto_tb_transfers: s.goto_tb_transfers,
        elided_dyn_insns: 0,
        irqs_delivered: s.irqs_delivered,
        timer_irqs: s.timer_irqs,
        capacity_evictions: 0,
        bytes_live: 0,
        regions_live: 0,
        formation_failures: 0,
        regions_quarantined: 0,
        lower_bailouts: q.timers.lower_bailouts,
        tier1_requests: 0,
        regions_installed_async: 0,
        stale_discards: 0,
        reuse_hits: 0,
        reuse_misses: 0,
        jit_wall_ns: 0,
        tier_worker_wall_ns: 0,
        first_region_install_ns: 0,
        counters,
    }
}

/// Runs a workload under Captive with a virtio-blk device attached on top
/// of an arbitrary engine configuration.
pub fn run_captive_io(w: &Workload, vcfg: hvm::VirtioBlkConfig, cfg: CaptiveConfig) -> Measurement {
    run_captive_cfg(
        w,
        CaptiveConfig {
            virtio: Some(vcfg),
            ..cfg
        },
    )
}

/// Runs a workload under the QEMU-style baseline with a virtio-blk device
/// attached (plain non-chaining configuration, like [`run_qemu`]).
pub fn run_qemu_io(w: &Workload, vcfg: hvm::VirtioBlkConfig) -> Measurement {
    let mut q = QemuRef::new(32 * 1024 * 1024);
    q.attach_virtio(vcfg);
    run_qemu_prepared(w, q)
}

/// Wraps a SimBench micro-benchmark as a [`Workload`] so it can go through
/// the same measurement entry points as the SPEC-shaped workloads.
pub fn micro_workload(b: &simbench::MicroBench) -> Workload {
    Workload {
        name: b.name,
        suite: workloads::Suite::Int,
        words: b.words.clone(),
        entry: b.entry,
    }
}

/// Runs a raw instruction-word program (SimBench) on both systems, returning
/// (captive cycles, qemu cycles).
pub fn run_both_raw(name: &str, words: &[u32], entry: u64) -> (u64, u64) {
    let w = Workload {
        name: "micro",
        suite: workloads::Suite::Int,
        words: words.to_vec(),
        entry,
    };
    let c = run_captive(&w);
    let q = run_qemu(&w);
    let _ = name;
    (c.cycles, q.cycles)
}

/// Geometric mean of a sequence of ratios.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Simple calibrated IPC models for the two native Arm machines of Fig. 22,
/// used only to place Captive's performance between them as the paper does.
pub mod native_model {
    /// Estimated cycles a Cortex-A53 (1.2 GHz, in-order) needs for a workload
    /// that executes `guest_insns` instructions: IPC ≈ 0.8, scaled to the
    /// host simulator's 3.5 GHz-equivalent cycle domain.
    pub fn cortex_a53_cycles(guest_insns: u64) -> u64 {
        let cycles_native = guest_insns as f64 / 0.8;
        (cycles_native * (3.5 / 1.2)) as u64
    }

    /// Estimated cycles for a Cortex-A57 (2.0 GHz, out-of-order): IPC ≈ 1.9.
    pub fn cortex_a57_cycles(guest_insns: u64) -> u64 {
        let cycles_native = guest_insns as f64 / 1.9;
        (cycles_native * (3.5 / 2.0)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn captive_and_qemu_agree_on_results_and_captive_is_faster_on_mcf() {
        let w = &workloads::spec_int(workloads::Scale(1))[3]; // 429.mcf
        assert_eq!(w.name, "429.mcf");
        let c = run_captive(w);
        let q = run_qemu(w);
        assert!(c.cycles > 0 && q.cycles > 0);
        assert!(
            c.cycles < q.cycles,
            "captive {} should beat qemu {} on mcf",
            c.cycles,
            q.cycles
        );
    }

    #[test]
    fn fp_workload_speedup_exceeds_integer_speedup() {
        let int = &workloads::spec_int(workloads::Scale(1))[5]; // hmmer
        let fp = &workloads::spec_fp(workloads::Scale(1))[0]; // sphinx3
        let int_speedup = run_qemu(int).cycles as f64 / run_captive(int).cycles as f64;
        let fp_speedup = run_qemu(fp).cycles as f64 / run_captive(fp).cycles as f64;
        assert!(
            fp_speedup > int_speedup,
            "fp {fp_speedup:.2} vs int {int_speedup:.2}"
        );
    }
}
