//! Deterministic fault injection ("chaos") harness.
//!
//! From a single RNG seed this module derives a *hostile guest program* plus
//! an external interrupt plan, and runs them on any engine configuration.
//! The program interleaves ordinary computation with every nasty behaviour
//! the engine must survive: stores onto its own (translated) code pages,
//! TLB invalidates, system-register writebacks that tear down translation
//! state, undefined instructions, out-of-bounds loads that take data aborts,
//! supervisor calls, a one-shot timer, externally scheduled "spurious"
//! device interrupts, and seed-drawn virtio-blk requests against a
//! fault-injecting disk ([`hvm::FaultPlan`]) whose DMA completions land in
//! guest memory asynchronously.
//!
//! Every plan ends with a *forced* virtio read of disk sector 0, whose data
//! descriptor is patched at runtime to point at the `used.idx` wait loop the
//! guest is about to spin in.  Sector 0 holds a byte-identical copy of that
//! code (built from the assembled program below), so the DMA is
//! architecturally invisible — but it is device-originated external SMC onto
//! a page holding a *live looping region*, and must force the engine down
//! its invalidation path on every seed.
//!
//! # Why the outcome is engine-independent
//!
//! The engines retire different cycle counts for the same guest work, so
//! asynchronous events preempt each engine at different guest instructions.
//! The generated program is therefore written so that **every architectural
//! effect is driven by program order or by event counts, never by cycle
//! counts**:
//!
//! - fault-injection ops live in fixed-size instruction slots, so a
//!   self-modifying store can compute the address of a *future* placeholder
//!   instruction and always lands (in program order) before its target
//!   executes;
//! - the exception vector dispatches on ESR class and only increments
//!   counters / accumulates ESR values (commutative, so delivery
//!   interleaving does not matter), then zeroes its scratch registers so no
//!   "last exception" state leaks into the final register file;
//! - spurious interrupts are scheduled inside a cycle window that every
//!   engine reaches *after* installing the vector and *before* finishing a
//!   long countdown tail, so every engine drains exactly the same set;
//! - virtio completion *order* is fixed at kick time (program order) and
//!   write payloads snapshot at the kick, so although each engine retires a
//!   completion at a different cycle, the architectural effects — used-ring
//!   contents, DMA'd data, status bytes, IRQ count — are count-driven and
//!   identical; the guest spins on `used.idx` before its countdown tail so
//!   every completion has landed by `hlt`.
//!
//! Consequently the same seed must produce byte-identical final registers,
//! flags and guest memory on Captive (any configuration) and on the QEMU
//! baseline; `bench/tests/chaos.rs` holds the engine to that.

use captive::{Captive, CaptiveConfig, RunExit};
use guest_aarch64::asm::{self, Assembler};
use guest_aarch64::isa::Cond;
use guest_aarch64::SysReg;
use hvm::virtio::{mmio, DESC_F_NEXT, DESC_F_WRITE, REQ_READ, REQ_WRITE, SECTOR_SIZE};
use hvm::VirtioBlkConfig;
use qemu_ref::QemuRef;
use workloads::{
    Workload, CODE_BASE, DATA_BASE, VBLK_AVAIL, VBLK_BUF, VBLK_DESC, VBLK_HDR, VBLK_MMIO_BASE,
    VBLK_STATUS, VBLK_USED,
};

/// Words per fault-injection op slot (longest op + nop padding), so every
/// op's address is `ops_start + index * OP_WORDS` and a patch op can target
/// a future placeholder without assembling twice.
const OP_WORDS: usize = 5;

/// Countdown iterations after the op section: long enough that every
/// engine's cycle counter passes the whole interrupt schedule before `hlt`.
const TAIL_ITERS: u64 = 100_000;

/// Scheduled interrupts fire inside this cycle window: after the slowest
/// engine has installed the vector, before the fastest engine's tail ends.
const SCHEDULE_MIN_CYCLE: u64 = 30_000;
const SCHEDULE_MAX_CYCLE: u64 = 80_000;

/// Cap on seed-drawn virtio submissions (excess draws degrade to ALU ops):
/// with the forced final request that is 15 chains of 3 descriptors each,
/// comfortably inside the device's 64-entry queue.
const MAX_CHAOS_SUBMITS: usize = 14;

/// xorshift64* — tiny, seedable, and good enough to derive op mixes.
struct ChaosRng(u64);

impl ChaosRng {
    fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point without losing seed distinctness.
        ChaosRng(seed.wrapping_mul(2).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// One fault-injection op, occupying one [`OP_WORDS`] slot.
#[derive(Debug, Clone)]
enum Op {
    /// Ordinary computation: fold a constant into the x25/x24 accumulators.
    Alu(u16),
    /// Store/load round trip at a data offset, folded into x24.
    Mem(u16),
    /// `movz x19, #v` at slot word 0 — the word patch ops overwrite — then
    /// accumulate x19 so the executed (possibly patched) value is observed.
    Placeholder(u16),
    /// Self-modifying store: overwrite the placeholder at op index `target`
    /// (strictly later in program order) with `movz x19, #value`.
    Patch { value: u16, target: usize },
    /// Guest TLB invalidate.
    Tlbi,
    /// Same-value system-register writeback (TTBR0 or SCTLR): triggers the
    /// engine's translation-teardown path with no architectural effect.
    RegFlip { ttbr: bool },
    /// An undecodable word: takes a guest UNDEF exception.
    Undef,
    /// Load from beyond guest RAM: takes a guest data abort.
    OobLoad,
    /// Supervisor call.
    Svc(u16),
    /// Publish the next prebuilt virtio request chain and kick the device:
    /// bump the x27 submission counter, store it as `avail.idx`, `msr`
    /// notify.  Which chain (read/write, which sector) was fixed at plan
    /// time and prebuilt by the prologue.
    VblkSubmit,
}

/// A seed-derived chaos run plan: the guest program plus the external
/// interrupt schedule to install on the engine's latch.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// The seed the plan was derived from.
    pub seed: u64,
    /// The hostile guest program.
    pub workload: Workload,
    /// `(cycle, line)` spurious interrupts for [`hvm::InterruptLatch::raise_at`].
    pub schedule: Vec<(u64, u32)>,
    /// Number of self-modifying patch ops in the program.
    pub patches: usize,
    /// Number of ops that take a synchronous exception (UNDEF + abort + SVC).
    pub sync_ops: usize,
    /// Device configuration (fault plan seed, identity disk image) to attach
    /// to whichever engine runs the plan.
    pub virtio: VirtioBlkConfig,
    /// Total virtio submissions, *including* the forced final identity-SMC
    /// read (so this is the expected completion and device-IRQ count).
    pub virtio_submits: u64,
}

fn emit_op(a: &mut Assembler, op: &Op, ops_start: usize) {
    let slot_start = a.here();
    match *op {
        Op::Alu(c) => {
            a.push(asm::movz(14, c as u32, 0));
            a.push(asm::eor(25, 25, 14));
            a.push(asm::add(24, 24, 25));
        }
        Op::Mem(off) => {
            a.push(asm::str(25, 1, off as u32));
            a.push(asm::ldr(26, 1, off as u32));
            a.push(asm::add(24, 24, 26));
        }
        Op::Placeholder(v) => {
            a.push(asm::movz(19, v as u32, 0));
            a.push(asm::add(24, 24, 19));
        }
        Op::Patch { value, target } => {
            let va = CODE_BASE + ((ops_start + target * OP_WORDS) as u64) * 4;
            assert!(va <= 0xFFFF, "chaos program outgrew single-movz addresses");
            let new_word = asm::movz(19, value as u32, 0);
            a.push(asm::movz(10, va as u32, 0));
            a.push(asm::movz(11, new_word & 0xFFFF, 0));
            a.push(asm::movk(11, new_word >> 16, 1));
            a.push(asm::strw(11, 10, 0));
        }
        Op::Tlbi => {
            a.push(asm::tlbi());
        }
        Op::RegFlip { ttbr } => {
            let sr = if ttbr { SysReg::Ttbr0 } else { SysReg::Sctlr } as u32;
            a.push(asm::mrs(12, sr));
            a.push(asm::msr(sr, 12));
        }
        Op::Undef => {
            a.push(0x7F << 25);
        }
        Op::OobLoad => {
            // 0x4000_0000 is well past the 32 MiB of guest RAM.
            a.push(asm::movz(10, 0, 0));
            a.push(asm::movk(10, 0x4000, 1));
            a.push(asm::ldr(13, 10, 0));
        }
        Op::Svc(imm) => {
            a.push(asm::svc(imm as u32));
        }
        Op::VblkSubmit => {
            a.push(asm::addi(27, 27, 1));
            a.push(asm::str(27, 28, 0)); // avail.idx = x27
            a.push(asm::msr(SysReg::VblkNotify as u32, 27));
        }
    }
    let used = a.here() - slot_start;
    assert!(used <= OP_WORDS, "op {op:?} overran its slot");
    for _ in used..OP_WORDS {
        a.push(asm::nop());
    }
}

/// Stores the 64-bit immediate `val` at `[x<base> + off]`.  The scratch is
/// x6, deliberately *not* a register the exception vector zeroes: the
/// one-shot timer (or a scheduled spurious IRQ) may preempt the prologue at
/// an engine-dependent instruction, and a vector-clobbered scratch would
/// make the prebuilt descriptor tables engine-dependent.
fn emit_store_imm(a: &mut Assembler, base: u32, off: u64, val: u64) {
    a.mov_imm64(6, val);
    a.push(asm::str(6, base, off as u32));
}

/// Derives the full chaos plan for `seed`.
pub fn chaos_plan(seed: u64) -> ChaosPlan {
    let mut rng = ChaosRng::new(seed);

    // Op kinds first, so patch ops can be aimed at *future* placeholders.
    // Virtio submissions record their direction/sector here in draw order;
    // the prologue prebuilds one descriptor chain per entry.
    let mut subs: Vec<(bool, u64)> = Vec::new();
    let n_ops = 48 + rng.below(17) as usize; // 48..=64
    let mut ops: Vec<Op> = (0..n_ops)
        .map(|_| match rng.below(20) {
            0..=3 => Op::Alu(rng.below(0x10000) as u16),
            4..=6 => Op::Mem((rng.below(0x200) * 8) as u16),
            7..=8 => Op::Placeholder(rng.below(0x10000) as u16),
            9..=10 => Op::Patch {
                value: rng.below(0x10000) as u16,
                target: usize::MAX, // resolved below
            },
            11 => Op::Tlbi,
            12 => Op::RegFlip {
                ttbr: rng.below(2) == 0,
            },
            13 => Op::Undef,
            14 => Op::OobLoad,
            15 => Op::Svc(rng.below(0x10000) as u16),
            _ => {
                // Reads pull from the pattern half of the disk; writes land
                // in sectors 32..56, never sector 0, so the identity image
                // the forced final request DMAs stays intact.
                let is_write = rng.below(3) == 0;
                let sector = if is_write {
                    32 + rng.below(24)
                } else {
                    rng.below(32)
                };
                if subs.len() < MAX_CHAOS_SUBMITS {
                    subs.push((is_write, sector));
                    Op::VblkSubmit
                } else {
                    Op::Alu(sector as u16 | 0x4000)
                }
            }
        })
        .collect();
    for i in 0..ops.len() {
        if let Op::Patch { value, .. } = ops[i] {
            let target = (i + 1..ops.len())
                .find(|&j| matches!(ops[j], Op::Placeholder(_)))
                .filter(|&j| {
                    // A same-slot-adjacent patch is fine, but a patch with no
                    // future placeholder degrades to plain computation.
                    j > i
                });
            match target {
                Some(j) => ops[i] = Op::Patch { value, target: j },
                None => ops[i] = Op::Alu(value),
            }
        }
    }
    let patches = ops.iter().filter(|o| matches!(o, Op::Patch { .. })).count();
    let sync_ops = ops
        .iter()
        .filter(|o| matches!(o, Op::Undef | Op::OobLoad | Op::Svc(_)))
        .count();

    let mut a = Assembler::new();
    // Prologue: install the vector before anything can fault, zero the
    // counters, then arm a one-shot timer with a seed-dependent delay.
    a.adr_to(9, "chaos_vec");
    a.push(asm::msr(SysReg::Vbar as u32, 9));
    a.push(asm::movz(20, 0, 0)); // IRQ deliveries
    a.push(asm::movz(21, 0, 0)); // synchronous exceptions
    a.push(asm::movz(23, 0, 0)); // ESR accumulator
    a.push(asm::movz(24, 0, 0)); // value accumulator
    a.push(asm::movz(25, (seed & 0xFFFF) as u32, 0)); // computation seed
    a.mov_imm64(1, DATA_BASE);
    a.push(asm::movz(2, 2_000 + rng.below(8_000) as u32, 0));
    a.push(asm::msr(SysReg::CntTval as u32, 2)); // one-shot timer

    // Virtio device bring-up: program the queue windows, enable completion
    // IRQs, and prebuild every request chain (in submission order) so each
    // VblkSubmit op slot is a fixed-size counter-bump-and-kick.  Chain i
    // uses descriptors 3i..3i+2.  The final chain (index n_subs) is the
    // forced identity-SMC read of sector 0; its data-descriptor address is
    // left 0 here and patched at runtime to the `chaos_vwait` spin loop.
    let n_subs = subs.len();
    a.mov_imm64(8, VBLK_MMIO_BASE);
    a.mov_imm64(18, VBLK_DESC);
    a.mov_imm64(28, VBLK_AVAIL);
    a.mov_imm64(22, VBLK_USED);
    a.push(asm::str(18, 8, mmio::QUEUE_DESC as u32));
    a.push(asm::str(28, 8, mmio::QUEUE_AVAIL as u32));
    a.push(asm::str(22, 8, mmio::QUEUE_USED as u32));
    a.push(asm::movz(6, 1, 0));
    a.push(asm::str(6, 8, mmio::IRQ_ENABLE as u32));
    a.push(asm::movz(27, 0, 0)); // submission counter
    a.mov_imm64(7, VBLK_HDR);
    // The extra (read, sector 0) entry is the forced final identity request.
    for (i, &(is_write, sector)) in subs.iter().chain(std::iter::once(&(false, 0))).enumerate() {
        let d0 = (i * 3) as u64;
        // Header descriptor: device reads { type, sector }.
        emit_store_imm(&mut a, 18, d0 * 32, VBLK_HDR + i as u64 * 16);
        emit_store_imm(&mut a, 18, d0 * 32 + 8, 16);
        emit_store_imm(&mut a, 18, d0 * 32 + 16, DESC_F_NEXT);
        emit_store_imm(&mut a, 18, d0 * 32 + 24, d0 + 1);
        // Data descriptor: reads DMA into a private buffer slot; writes
        // snapshot the live Mem-op scratch area at DATA_BASE at kick time.
        let (daddr, dflags) = if i == n_subs {
            (0, DESC_F_NEXT | DESC_F_WRITE) // patched to the wait loop
        } else if is_write {
            (DATA_BASE, DESC_F_NEXT)
        } else {
            (VBLK_BUF + i as u64 * 0x200, DESC_F_NEXT | DESC_F_WRITE)
        };
        emit_store_imm(&mut a, 18, (d0 + 1) * 32, daddr);
        emit_store_imm(&mut a, 18, (d0 + 1) * 32 + 8, SECTOR_SIZE);
        emit_store_imm(&mut a, 18, (d0 + 1) * 32 + 16, dflags);
        emit_store_imm(&mut a, 18, (d0 + 1) * 32 + 24, d0 + 2);
        // Status descriptor: device writes the 8-byte status word.
        emit_store_imm(&mut a, 18, (d0 + 2) * 32, VBLK_STATUS + i as u64 * 8);
        emit_store_imm(&mut a, 18, (d0 + 2) * 32 + 8, 8);
        emit_store_imm(&mut a, 18, (d0 + 2) * 32 + 16, DESC_F_WRITE);
        emit_store_imm(&mut a, 18, (d0 + 2) * 32 + 24, 0);
        // Request header content and the avail-ring entry for this chain.
        let req = if is_write { REQ_WRITE } else { REQ_READ };
        emit_store_imm(&mut a, 7, i as u64 * 16, req);
        emit_store_imm(&mut a, 7, i as u64 * 16 + 8, sector);
        emit_store_imm(&mut a, 28, 8 + i as u64 * 8, d0);
    }

    let ops_start = a.here();
    for op in &ops {
        emit_op(&mut a, op, ops_start);
    }

    // Forced final request: patch the prebuilt data descriptor to aim the
    // identity read of sector 0 at the wait loop itself, submit it, then
    // spin until the device has retired every request.  The spin is a hot
    // looping region by the time the completion's DMA lands on its page —
    // the device-originated external-SMC case every engine must survive.
    a.adr_to(8, "chaos_vwait");
    a.push(asm::str(8, 18, (n_subs as u32 * 3 + 1) * 32));
    a.push(asm::addi(27, 27, 1));
    a.push(asm::str(27, 28, 0));
    a.push(asm::msr(SysReg::VblkNotify as u32, 27));
    let wait_word = a.here();
    a.label("chaos_vwait");
    a.push(asm::ldr(7, 22, 0));
    a.push(asm::cmpi(7, (n_subs + 1) as u32));
    a.bcond_to(Cond::Ne, "chaos_vwait");

    // Countdown tail: keeps the guest alive (and polling for events at the
    // loop back-edge) until the whole interrupt schedule has drained.
    a.mov_imm64(5, TAIL_ITERS);
    a.label("chaos_tail");
    a.push(asm::subi(5, 5, 1));
    a.cbnz_to(5, "chaos_tail");
    a.push(asm::hlt());

    // Generic vector: accumulate ESR (commutative), dispatch on class, skip
    // the faulting instruction for synchronous exceptions, and zero the
    // scratch registers so the final register file carries no trace of
    // *which* exception happened to be delivered last.
    a.label("chaos_vec");
    a.push(asm::mrs(15, SysReg::Esr as u32));
    a.push(asm::add(23, 23, 15));
    a.push(asm::lsri(16, 15, 26));
    a.push(asm::cmpi(16, guest_aarch64::esr_class::IRQ as u32));
    a.bcond_to(Cond::Eq, "chaos_irq");
    a.push(asm::addi(21, 21, 1));
    a.push(asm::mrs(17, SysReg::Elr as u32));
    a.push(asm::addi(17, 17, 4));
    a.push(asm::msr(SysReg::Elr as u32, 17));
    a.b_to("chaos_out");
    a.label("chaos_irq");
    a.push(asm::addi(20, 20, 1));
    a.label("chaos_out");
    a.push(asm::movz(15, 0, 0));
    a.push(asm::movz(16, 0, 0));
    a.push(asm::movz(17, 0, 0));
    a.push(asm::eret());

    // Pad the program so a full sector of code exists from the wait loop
    // onward, then freeze that window as disk sector 0: the forced final
    // read DMAs these exact bytes back over themselves.
    while a.here() < wait_word + SECTOR_SIZE as usize / 4 {
        a.push(asm::nop());
    }

    // Each spurious interrupt gets a *distinct* line: the latch is a
    // pending bitmask, so two raises of one line could collapse into a
    // single delivery — or not — depending on where each engine's cycle
    // counter sits, which would make the delivery count engine-dependent.
    let n_irqs = 2 + rng.below(3); // 2..=4 spurious interrupts
    let schedule: Vec<(u64, u32)> = (0..n_irqs)
        .map(|i| {
            let cycle = SCHEDULE_MIN_CYCLE + rng.below(SCHEDULE_MAX_CYCLE - SCHEDULE_MIN_CYCLE);
            (cycle, 1 + i as u32)
        })
        .collect();

    let words = a.finish();
    let sector0: Vec<u8> = words[wait_word..wait_word + SECTOR_SIZE as usize / 4]
        .iter()
        .flat_map(|w| w.to_le_bytes())
        .collect();
    let virtio = VirtioBlkConfig {
        mmio_base: VBLK_MMIO_BASE,
        completion_latency: 3_000,
        disk_image: Some(sector0),
        fault_seed: Some(seed ^ 0xFA17_5EED),
        // The forced final identity read must land verbatim; everything
        // before it is fair game for the fault plan.
        exempt_after: n_subs as u64,
        ..VirtioBlkConfig::default()
    };

    ChaosPlan {
        seed,
        workload: Workload {
            name: "chaos",
            suite: workloads::Suite::Int,
            words,
            entry: CODE_BASE,
        },
        schedule,
        patches,
        sync_ops,
        virtio,
        virtio_submits: n_subs as u64 + 1,
    }
}

/// Final architectural state plus engine counters after a chaos run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosOutcome {
    /// x0..x30.
    pub regs: [u64; 31],
    /// NZCV flags.
    pub nzcv: u64,
    /// FNV digest of the code image region (covers self-modified words).
    pub code_digest: u64,
    /// FNV digest of the guest data region.
    pub data_digest: u64,
    /// IRQs the engine delivered (must equal x20 and the plan's schedule
    /// length + 1 timer fire + one per virtio completion).
    pub irqs_delivered: u64,
    /// Virtio completions the device retired (must equal the plan's
    /// `virtio_submits`).
    pub completions: u64,
    /// Completions retired with a non-OK status — a pure function of the
    /// plan's fault seed, so engine-independent.
    pub io_errors: u64,
    /// Faults the device's plan injected; engine-independent for the same
    /// reason.
    pub fault_injections: u64,
}

/// Engine counters captured for the same-seed determinism check; not part
/// of the cross-engine architectural comparison (cycle counts legitimately
/// differ between engines).
pub type ChaosCounters = Vec<(&'static str, u64)>;

const CODE_DIGEST_LEN: u64 = 16 * 1024;
const DATA_DIGEST_LEN: u64 = 64 * 1024;

/// The Captive configurations the chaos proptest holds to one outcome.
pub fn chaos_captive_configs() -> Vec<(&'static str, CaptiveConfig)> {
    vec![
        ("captive", CaptiveConfig::default()),
        (
            "captive-noopt",
            CaptiveConfig {
                opt: false,
                ..CaptiveConfig::default()
            },
        ),
        (
            "captive-noloops",
            CaptiveConfig {
                loop_regions: false,
                ..CaptiveConfig::default()
            },
        ),
        (
            "captive-nopromote",
            CaptiveConfig {
                promote: false,
                ..CaptiveConfig::default()
            },
        ),
        // The default config runs the guest-idiom layer; this leg pins the
        // idiom-on/idiom-off/QEMU architectural outcomes byte-identical on
        // every chaos seed.
        (
            "captive-noidiom",
            CaptiveConfig {
                idioms: false,
                ..CaptiveConfig::default()
            },
        ),
        (
            "captive-tinycache",
            CaptiveConfig {
                cache_capacity_regions: Some(4),
                ..CaptiveConfig::default()
            },
        ),
        (
            "captive-sync",
            CaptiveConfig {
                tiered: false,
                ..CaptiveConfig::default()
            },
        ),
    ]
}

/// Runs the plan under Captive with the given configuration.
pub fn run_chaos_captive(plan: &ChaosPlan, cfg: CaptiveConfig) -> (ChaosOutcome, ChaosCounters) {
    let cfg = CaptiveConfig {
        virtio: Some(plan.virtio.clone()),
        ..cfg
    };
    let mut c = Captive::new(cfg);
    c.load_program(CODE_BASE, &plan.workload.words);
    c.set_entry(plan.workload.entry);
    for &(cycle, line) in &plan.schedule {
        c.runtime.events.latch.raise_at(cycle, line);
    }
    let exit = c.run(crate::BLOCK_BUDGET);
    assert!(
        matches!(exit, RunExit::GuestHalted { .. }),
        "chaos seed {:#x}: unexpected captive exit {exit:?}",
        plan.seed
    );
    let s = c.stats();
    let mut regs = [0u64; 31];
    for (i, r) in regs.iter_mut().enumerate() {
        *r = c.guest_reg(i as u32);
    }
    let outcome = ChaosOutcome {
        regs,
        nzcv: c.guest_nzcv(),
        code_digest: c.guest_mem_digest(CODE_BASE, CODE_DIGEST_LEN),
        data_digest: c.guest_mem_digest(DATA_BASE, DATA_DIGEST_LEN),
        irqs_delivered: s.irqs_delivered,
        completions: s.virtio_completions,
        io_errors: s.virtio_io_errors,
        fault_injections: s.virtio_fault_injections,
    };
    let counters = vec![
        ("cycles", s.cycles),
        ("host_insns", s.host_insns),
        ("guest_insns", s.guest_insns),
        ("blocks", s.blocks),
        ("translations", s.translations),
        ("guest_exceptions", s.guest_exceptions),
        ("irqs_delivered", s.irqs_delivered),
        ("timer_irqs", s.timer_irqs),
        ("regions_formed", s.regions_formed),
        ("loop_regions_formed", s.loop_regions_formed),
        ("capacity_evictions", s.capacity_evictions),
        ("bytes_live", s.bytes_live),
        ("regions_live", s.regions_live),
        ("formation_failures", s.formation_failures),
        ("regions_quarantined", s.regions_quarantined),
        ("regions_evicted", s.regions_evicted),
        // Tiered-service counters: deterministic because requests publish at
        // fixed link heats and results are consumed at the (blocking) install
        // point.  Wall-clock fields (jit_wall_ns etc.) are deliberately NOT
        // here — they are nondeterministic by nature.
        ("tier1_requests", s.tier1_requests),
        ("regions_installed_async", s.regions_installed_async),
        ("stale_discards", s.stale_discards),
        ("reuse_hits", s.reuse_hits),
        ("reuse_misses", s.reuse_misses),
        // Virtio counters: completion order and payloads are fixed at kick
        // time, so every one of these is deterministic per seed.
        ("virtio_kicks", s.virtio_kicks),
        ("virtio_submissions", s.virtio_submissions),
        ("virtio_completions", s.virtio_completions),
        ("virtio_irqs", s.virtio_irqs),
        ("virtio_fault_injections", s.virtio_fault_injections),
        ("virtio_dma_bytes", s.virtio_dma_bytes),
        ("virtio_io_errors", s.virtio_io_errors),
        ("external_invalidations", s.external_invalidations),
    ];
    (outcome, counters)
}

/// Runs the plan under the QEMU-style baseline.
pub fn run_chaos_qemu(plan: &ChaosPlan) -> (ChaosOutcome, ChaosCounters) {
    let mut q = QemuRef::new(32 * 1024 * 1024);
    q.load_program(CODE_BASE, &plan.workload.words);
    q.set_entry(plan.workload.entry);
    q.attach_virtio(plan.virtio.clone());
    for &(cycle, line) in &plan.schedule {
        q.runtime.events.latch.raise_at(cycle, line);
    }
    let exit = q.run(crate::BLOCK_BUDGET);
    assert!(
        matches!(exit, qemu_ref::RunExit::GuestHalted { .. }),
        "chaos seed {:#x}: unexpected qemu exit {exit:?}",
        plan.seed
    );
    let s = q.stats();
    let mut regs = [0u64; 31];
    for (i, r) in regs.iter_mut().enumerate() {
        *r = q.guest_reg(i as u32);
    }
    let outcome = ChaosOutcome {
        regs,
        nzcv: q.guest_nzcv(),
        code_digest: q.guest_mem_digest(CODE_BASE, CODE_DIGEST_LEN),
        data_digest: q.guest_mem_digest(DATA_BASE, DATA_DIGEST_LEN),
        irqs_delivered: s.irqs_delivered,
        completions: s.virtio_completions,
        io_errors: s.virtio_io_errors,
        fault_injections: s.virtio_fault_injections,
    };
    let counters = vec![
        ("cycles", s.cycles),
        ("host_insns", s.host_insns),
        ("guest_insns", s.guest_insns),
        ("blocks", s.blocks),
        ("translations", s.translations),
        ("guest_exceptions", s.guest_exceptions),
        ("irqs_delivered", s.irqs_delivered),
        ("timer_irqs", s.timer_irqs),
        ("virtio_kicks", s.virtio_kicks),
        ("virtio_submissions", s.virtio_submissions),
        ("virtio_completions", s.virtio_completions),
        ("virtio_irqs", s.virtio_irqs),
        ("virtio_fault_injections", s.virtio_fault_injections),
        ("virtio_dma_bytes", s.virtio_dma_bytes),
        ("virtio_io_errors", s.virtio_io_errors),
        ("external_invalidations", s.external_invalidations),
    ];
    (outcome, counters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_seed_deterministic_and_decode_where_defined() {
        let a = chaos_plan(0xC0FFEE);
        let b = chaos_plan(0xC0FFEE);
        assert_eq!(a.workload.words, b.workload.words);
        assert_eq!(a.schedule, b.schedule);
        let c = chaos_plan(0xC0FFEF);
        assert_ne!(
            a.workload.words, c.workload.words,
            "different seeds should derive different programs"
        );
    }

    #[test]
    fn plans_contain_hostile_ops_and_a_terminating_hlt() {
        // Across a handful of seeds every op class should appear.
        let mut saw_patch = false;
        let mut saw_sync = false;
        let mut saw_vblk_op = false;
        for seed in 0..8u64 {
            let p = chaos_plan(seed);
            saw_patch |= p.patches > 0;
            saw_sync |= p.sync_ops > 0;
            saw_vblk_op |= p.virtio_submits > 1;
            assert!(p.workload.words.contains(&asm::hlt()), "seed {seed}");
            assert!(
                (1..=MAX_CHAOS_SUBMITS as u64 + 1).contains(&p.virtio_submits),
                "seed {seed}: always the forced final, never past the cap"
            );
            assert_eq!(
                p.virtio.exempt_after,
                p.virtio_submits - 1,
                "seed {seed}: only the forced final identity read is exempt"
            );
            assert_eq!(
                p.virtio.disk_image.as_ref().map(Vec::len),
                Some(SECTOR_SIZE as usize),
                "seed {seed}: identity image is exactly one sector"
            );
            assert!(p.schedule.len() >= 2, "seed {seed} schedules spurious IRQs");
            for &(cycle, line) in &p.schedule {
                assert!((SCHEDULE_MIN_CYCLE..SCHEDULE_MAX_CYCLE).contains(&cycle));
                assert!((1..16).contains(&line));
            }
            let mut lines: Vec<u32> = p.schedule.iter().map(|&(_, l)| l).collect();
            lines.sort_unstable();
            lines.dedup();
            assert_eq!(
                lines.len(),
                p.schedule.len(),
                "seed {seed}: scheduled lines must be distinct"
            );
        }
        assert!(saw_patch && saw_sync && saw_vblk_op);
    }

    #[test]
    fn identity_sector_matches_the_wait_loop_bytes() {
        for seed in 0..4u64 {
            let p = chaos_plan(seed);
            let img = p.virtio.disk_image.as_ref().unwrap();
            let code: Vec<u8> = p
                .workload
                .words
                .iter()
                .flat_map(|w| w.to_le_bytes())
                .collect();
            assert!(
                code.windows(img.len()).any(|w| w == &img[..]),
                "seed {seed}: sector 0 must be a verbatim slice of the program"
            );
        }
    }

    #[test]
    fn patches_only_aim_at_future_placeholder_slots() {
        for seed in 0..16u64 {
            let plan = chaos_plan(seed);
            let words = &plan.workload.words;
            // Recover patch targets from the emitted words: each patch op
            // stores to an address it built with `movz x10, #va`.
            for w in words {
                if (w >> 25) == 0x02 && (w & 0x1F) == 10 && ((w >> 21) & 3) == 0 {
                    let va = (w >> 5) & 0xFFFF;
                    if va as u64 >= CODE_BASE {
                        let idx = (va as u64 - CODE_BASE) / 4;
                        let target = words[idx as usize];
                        assert_eq!(
                            target >> 25,
                            0x02,
                            "seed {seed}: patch target {va:#x} is not a movz placeholder"
                        );
                        assert_eq!(target & 0x1F, 19, "placeholders load x19");
                    }
                }
            }
        }
    }
}
