//! Cross-engine virtio-blk tests: the I/O kernels, the fault-injecting
//! disk, and device-originated code invalidation must leave every Captive
//! configuration byte-identical to the QEMU-style baseline.
//!
//! The `io.smc` kernel is the sharp case: its one read request DMAs disk
//! sector 0 over the kernel's own spin loop *while the loop is hot* — by
//! the time the completion retires, the loop is a formed (and, on the
//! default configuration, promoted) looping region.  The sector holds an
//! almost-identical copy of the code with the spin's back-edge replaced by
//! a NOP, so the loop terminates only if the engine notices the external
//! store, invalidates the region, reconciles any promoted loop carriers,
//! and retranslates.

use bench::chaos::chaos_captive_configs;
use captive::{Captive, CaptiveConfig, RunExit};
use hvm::{FaultKind, FaultPlan, VirtioBlkConfig};
use qemu_ref::QemuRef;
use workloads::{io_kernels, vblk_config, vblk_read, vblk_smc, vblk_smc_config, Workload};
use workloads::{CODE_BASE, DATA_BASE};

const CODE_DIGEST_LEN: u64 = 16 * 1024;
const DATA_DIGEST_LEN: u64 = 64 * 1024;

/// Final architectural state after an I/O run; must be engine-independent.
#[derive(Debug, Clone, PartialEq, Eq)]
struct IoOutcome {
    regs: [u64; 31],
    nzcv: u64,
    code_digest: u64,
    data_digest: u64,
}

fn run_captive_io(
    w: &Workload,
    vcfg: &VirtioBlkConfig,
    cfg: CaptiveConfig,
) -> (IoOutcome, captive::RunStats) {
    let mut c = Captive::new(CaptiveConfig {
        virtio: Some(vcfg.clone()),
        ..cfg
    });
    c.load_program(CODE_BASE, &w.words);
    c.set_entry(w.entry);
    let exit = c.run(bench::BLOCK_BUDGET);
    assert!(
        matches!(exit, RunExit::GuestHalted { .. }),
        "{}: unexpected captive exit {exit:?}",
        w.name
    );
    let mut regs = [0u64; 31];
    for (i, r) in regs.iter_mut().enumerate() {
        *r = c.guest_reg(i as u32);
    }
    let outcome = IoOutcome {
        regs,
        nzcv: c.guest_nzcv(),
        code_digest: c.guest_mem_digest(CODE_BASE, CODE_DIGEST_LEN),
        data_digest: c.guest_mem_digest(DATA_BASE, DATA_DIGEST_LEN),
    };
    (outcome, c.stats())
}

fn run_qemu_io(w: &Workload, vcfg: &VirtioBlkConfig) -> (IoOutcome, qemu_ref::RunStats) {
    let mut q = QemuRef::new(32 * 1024 * 1024);
    q.load_program(CODE_BASE, &w.words);
    q.set_entry(w.entry);
    q.attach_virtio(vcfg.clone());
    let exit = q.run(bench::BLOCK_BUDGET);
    assert!(
        matches!(exit, qemu_ref::RunExit::GuestHalted { .. }),
        "{}: unexpected qemu exit {exit:?}",
        w.name
    );
    let mut regs = [0u64; 31];
    for (i, r) in regs.iter_mut().enumerate() {
        *r = q.guest_reg(i as u32);
    }
    let outcome = IoOutcome {
        regs,
        nzcv: q.guest_nzcv(),
        code_digest: q.guest_mem_digest(CODE_BASE, CODE_DIGEST_LEN),
        data_digest: q.guest_mem_digest(DATA_BASE, DATA_DIGEST_LEN),
    };
    (outcome, q.stats())
}

#[test]
fn io_kernels_agree_across_engines_on_a_clean_disk() {
    let vcfg = vblk_config();
    for w in io_kernels() {
        let (reference, qs) = run_qemu_io(&w, &vcfg);
        assert!(qs.virtio_completions > 0, "{}: device did work", w.name);
        assert_eq!(qs.virtio_io_errors, 0, "{}: clean disk", w.name);
        assert_eq!(
            qs.virtio_completions, qs.virtio_submissions,
            "{}: every request retires",
            w.name
        );
        for (name, cfg) in chaos_captive_configs() {
            let (outcome, cs) = run_captive_io(&w, &vcfg, cfg);
            assert_eq!(outcome, reference, "{}: {name} diverged", w.name);
            assert_eq!(cs.virtio_completions, qs.virtio_completions, "{name}");
            assert_eq!(cs.virtio_dma_bytes, qs.virtio_dma_bytes, "{name}");
        }
    }
}

#[test]
fn smc_kernel_invalidates_a_live_looping_region_on_every_engine() {
    let (w, sector0) = vblk_smc();
    let vcfg = vblk_smc_config(sector0);
    let (reference, qs) = run_qemu_io(&w, &vcfg);
    assert!(
        qs.external_invalidations > 0,
        "device DMA over live code must flush the baseline's cache"
    );
    for (name, cfg) in chaos_captive_configs() {
        let (outcome, cs) = run_captive_io(&w, &vcfg, cfg);
        assert_eq!(outcome, reference, "{name} diverged on io.smc");
        if name == "captive" {
            assert!(
                cs.external_invalidations > 0,
                "device DMA must invalidate the translated page"
            );
            assert!(
                cs.loop_regions_formed > 0,
                "the spin loop must actually be a formed looping region"
            );
        }
    }
}

#[test]
fn promoted_loop_carriers_reconcile_across_device_invalidation() {
    // The spin loop promotes its registers into host loop carriers on the
    // default configuration; the device's asynchronous invalidation forces a
    // region exit, so the carriers must reconcile back to the register file
    // before retranslation.  Promotion on vs off must be invisible.
    let (w, sector0) = vblk_smc();
    let vcfg = vblk_smc_config(sector0);
    let (with_promote, ps) = run_captive_io(&w, &vcfg, CaptiveConfig::default());
    let (without_promote, _) = run_captive_io(
        &w,
        &vcfg,
        CaptiveConfig {
            promote: false,
            ..CaptiveConfig::default()
        },
    );
    assert_eq!(with_promote, without_promote);
    assert!(
        ps.opt_promoted_slots > 0,
        "the default config must have promoted loop carriers to reconcile"
    );
    assert!(ps.external_invalidations > 0);
}

#[test]
fn injected_faults_degrade_to_typed_errors_identically() {
    // Find a fault seed that actually bites inside the first three requests
    // (the fourth is exempt so a Reordered fault can never wait on a kick
    // that will not come), then hold every engine to one outcome.
    let fault_seed = (1u64..)
        .find(|&s| {
            let plan = FaultPlan::seeded(s, 3);
            (0..3).any(|q| plan.decide(q, false) != FaultKind::None)
        })
        .unwrap();
    let vcfg = VirtioBlkConfig {
        fault_seed: Some(fault_seed),
        exempt_after: 3,
        ..vblk_config()
    };
    let w = vblk_read(4);
    let (reference, qs) = run_qemu_io(&w, &vcfg);
    assert!(qs.virtio_fault_injections > 0, "the chosen seed injects");
    assert_eq!(qs.virtio_completions, 4, "faults never lose completions");
    for (name, cfg) in chaos_captive_configs() {
        let (outcome, cs) = run_captive_io(&w, &vcfg, cfg);
        assert_eq!(outcome, reference, "{name} diverged under injected faults");
        assert_eq!(cs.virtio_fault_injections, qs.virtio_fault_injections);
        assert_eq!(cs.virtio_io_errors, qs.virtio_io_errors);
    }
}

#[test]
fn attached_but_idle_device_changes_nothing() {
    // A non-I/O workload with the device attached must behave — and cost —
    // exactly as if the device were absent: the poll path may not perturb
    // the modeled cycle count.  The data digest stops short of the MMIO
    // window, which legitimately differs (init_mmio populates the device ID
    // registers there).
    let data_len = workloads::VBLK_MMIO_BASE - DATA_BASE;
    let w = workloads::loop_flood(4, 8, 20);
    let run = |virtio: Option<VirtioBlkConfig>| {
        let mut c = Captive::new(CaptiveConfig {
            virtio,
            ..CaptiveConfig::default()
        });
        c.load_program(CODE_BASE, &w.words);
        c.set_entry(w.entry);
        let exit = c.run(bench::BLOCK_BUDGET);
        assert!(matches!(exit, RunExit::GuestHalted { .. }));
        let mut regs = [0u64; 31];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = c.guest_reg(i as u32);
        }
        let outcome = IoOutcome {
            regs,
            nzcv: c.guest_nzcv(),
            code_digest: c.guest_mem_digest(CODE_BASE, CODE_DIGEST_LEN),
            data_digest: c.guest_mem_digest(DATA_BASE, data_len),
        };
        (outcome, c.stats())
    };
    let (with_dev, ds) = run(Some(vblk_config()));
    let (without_dev, ns) = run(None);
    assert_eq!(ds.virtio_kicks, 0);
    assert_eq!(ds.virtio_completions, 0);
    assert_eq!(with_dev, without_dev);
    assert_eq!(ds.cycles, ns.cycles, "idle device is cycle-free");
}
