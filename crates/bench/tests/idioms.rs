//! Guest-idiom layer equivalence tests: every shipped rewrite rule must be
//! architecturally invisible.  Per rule, a kernel shaped to trigger exactly
//! that rule retires identical registers, NZCV *and* guest memory with the
//! idiom layer on, off, and under the QEMU-style baseline — across trip
//! counts 0 and 1, random trip counts, every fusible condition code, and the
//! promoted-looping-region configurations the rewrites compose with.  The
//! negative tests pin the soundness gates: shapes whose operands are
//! clobbered between compare and branch, or whose flags escape the fusion
//! window, must not fuse.

use captive::{Captive, CaptiveConfig};
use guest_aarch64::asm::{self, Assembler};
use guest_aarch64::isa::Cond;
use proptest::prelude::*;
use qemu_ref::QemuRef;
use workloads::DATA_BASE;

const MEM_DIGEST_LEN: u64 = 64 * 1024;

fn run_captive(words: &[u32], idioms: bool) -> Captive {
    run_captive_cfg(
        words,
        CaptiveConfig {
            idioms,
            region_threshold: 4,
            ..CaptiveConfig::default()
        },
    )
}

fn run_captive_cfg(words: &[u32], cfg: CaptiveConfig) -> Captive {
    let mut c = Captive::new(cfg);
    c.load_program(0x1000, words);
    c.set_entry(0x1000);
    assert!(matches!(
        c.run(50_000_000),
        captive::RunExit::GuestHalted { .. }
    ));
    c
}

fn run_qemu(words: &[u32]) -> QemuRef {
    let mut q = QemuRef::new(32 * 1024 * 1024);
    q.load_program(0x1000, words);
    q.set_entry(0x1000);
    assert!(matches!(
        q.run(50_000_000),
        qemu_ref::RunExit::GuestHalted { .. }
    ));
    q
}

/// Per-rule fusion count from a finished run.
fn hits(c: &mut Captive, rule: &str) -> u64 {
    c.stats()
        .idiom_hits
        .iter()
        .find(|(n, _)| n == rule)
        .map_or(0, |(_, v)| *v)
}

/// Full architectural comparison: 31 registers, NZCV, and the data region.
fn assert_arch_eq(on: &mut Captive, off: &mut Captive, q: &mut QemuRef, label: &str) {
    for r in 0..31 {
        let v = on.guest_reg(r);
        assert_eq!(v, off.guest_reg(r), "{label}: x{r} diverged idioms on/off");
        assert_eq!(v, q.guest_reg(r), "{label}: x{r} diverged from baseline");
    }
    assert_eq!(
        on.guest_nzcv(),
        off.guest_nzcv(),
        "{label}: NZCV diverged idioms on/off"
    );
    assert_eq!(
        on.guest_nzcv(),
        q.guest_nzcv(),
        "{label}: NZCV diverged from baseline"
    );
    assert_eq!(
        on.guest_mem_digest(DATA_BASE, MEM_DIGEST_LEN),
        off.guest_mem_digest(DATA_BASE, MEM_DIGEST_LEN),
        "{label}: memory diverged idioms on/off"
    );
    assert_eq!(
        on.guest_mem_digest(DATA_BASE, MEM_DIGEST_LEN),
        q.guest_mem_digest(DATA_BASE, MEM_DIGEST_LEN),
        "{label}: memory diverged from baseline"
    );
}

/// The conditions the subtract-producer consumer tables cover.
const CONDS: [Cond; 8] = [
    Cond::Eq,
    Cond::Ne,
    Cond::Hi,
    Cond::Ls,
    Cond::Ge,
    Cond::Lt,
    Cond::Gt,
    Cond::Le,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// fuse.cmpbr: a hot loop whose body compares a moving value against a
    /// bound and conditionally branches on it — the flags die at the branch,
    /// so the NZCV materialisation is bypassed — retires identical state for
    /// trip counts 0, 1 and a random count across every condition code.
    #[test]
    fn cmpbr_fusion_agrees_across_engines(
        random_trips in 2u32..300,
        cond_idx in 0usize..CONDS.len(),
        av in 0u32..0x100,
        bv in 0u32..0x100,
    ) {
        for trips in [0u32, 1, random_trips] {
            let mut a = Assembler::new();
            a.push(asm::movz(1, trips, 0));
            a.push(asm::movz(2, av, 0));
            a.push(asm::movz(3, bv, 0));
            a.push(asm::movz(9, 0, 0));
            a.cbz_to(1, "done");
            a.label("loop");
            a.push(asm::add(2, 2, 1)); // moving compare operand
            a.push(asm::cmp(2, 3));
            a.bcond_to(CONDS[cond_idx], "skip");
            a.push(asm::addi(9, 9, 1));
            a.label("skip");
            a.push(asm::subi(1, 1, 1));
            a.cbnz_to(1, "loop");
            a.label("done");
            a.push(asm::hlt());
            let words = a.finish();

            let mut on = run_captive(&words, true);
            let mut off = run_captive(&words, false);
            let mut q = run_qemu(&words);
            assert_arch_eq(&mut on, &mut off, &mut q, "cmpbr");
            if trips > 16 {
                prop_assert!(
                    hits(&mut on, "fuse.cmpbr") >= 1,
                    "hot cmp+b.{:?} loop must fuse",
                    CONDS[cond_idx]
                );
            }
            prop_assert_eq!(hits(&mut off, "fuse.cmpbr"), 0);
        }
    }

    /// fuse.tstbr: the logic-producer variant — `ands` feeding a
    /// conditional branch (only Eq/Ne classify against the
    /// carry/overflow-free nibble).
    #[test]
    fn tstbr_fusion_agrees_across_engines(
        random_trips in 2u32..300,
        eq_bit in 0u32..2,
        mask in 1u32..0x100,
    ) {
        for trips in [0u32, 1, random_trips] {
            let cond = if eq_bit == 0 { Cond::Eq } else { Cond::Ne };
            let mut a = Assembler::new();
            a.push(asm::movz(1, trips, 0));
            a.push(asm::movz(3, mask, 0));
            a.push(asm::movz(9, 0, 0));
            a.cbz_to(1, "done");
            a.label("loop");
            a.push(asm::ands(6, 1, 3)); // flag-setting test of the counter
            a.bcond_to(cond, "skip");
            a.push(asm::addi(9, 9, 1));
            a.label("skip");
            a.push(asm::subi(1, 1, 1));
            a.cbnz_to(1, "loop");
            a.label("done");
            a.push(asm::hlt());
            let words = a.finish();

            let mut on = run_captive(&words, true);
            let mut off = run_captive(&words, false);
            let mut q = run_qemu(&words);
            assert_arch_eq(&mut on, &mut off, &mut q, "tstbr");
            if trips > 16 {
                prop_assert!(
                    hits(&mut on, "fuse.tstbr") >= 1,
                    "hot ands+b.{cond:?} loop must fuse"
                );
            }
            prop_assert_eq!(hits(&mut off, "fuse.tstbr"), 0);
        }
    }

    /// fuse.cbz: counted loops closed by `cbnz`/`cbz` — the materialised
    /// zero-test boolean collapses into a direct compare-and-branch.
    #[test]
    fn cbz_fusion_agrees_across_engines(
        random_trips in 2u32..300,
        stride in 1u32..5,
    ) {
        for trips in [0u32, 1, random_trips] {
            let mut a = Assembler::new();
            a.push(asm::movz(1, trips * stride, 0));
            a.push(asm::movz(9, 0, 0));
            a.cbz_to(1, "done");
            a.label("loop");
            a.push(asm::add(9, 9, 1));
            a.push(asm::subi(1, 1, stride));
            a.cbnz_to(1, "loop");
            a.label("done");
            a.push(asm::hlt());
            let words = a.finish();

            let mut on = run_captive(&words, true);
            let mut off = run_captive(&words, false);
            let mut q = run_qemu(&words);
            assert_arch_eq(&mut on, &mut off, &mut q, "cbz");
            if trips > 16 {
                prop_assert!(
                    hits(&mut on, "fuse.cbz") >= 1,
                    "hot cbnz loop must fuse its back-edge test"
                );
            }
            prop_assert_eq!(hits(&mut off, "fuse.cbz"), 0);
        }
    }

    /// addr.fold: shift/add address chains feeding loads and stores fold
    /// into scaled-index operands for any shift amount the encoder scales.
    #[test]
    fn addr_fold_agrees_across_engines(
        random_trips in 2u32..300,
        mask in 1u32..0x40,
    ) {
        for trips in [0u32, 1, random_trips] {
            let mut a = Assembler::new();
            a.push(asm::movz(1, trips, 0));
            a.mov_imm64(2, DATA_BASE);
            a.push(asm::movz(4, 0, 0)); // index source
            a.push(asm::movz(7, mask, 0));
            a.push(asm::movz(9, 0, 0));
            a.cbz_to(1, "done");
            a.label("loop");
            a.push(asm::and(5, 4, 7)); // bounded index
            a.push(asm::lsli(6, 5, 3)); // scale by 8
            a.push(asm::add(6, 6, 2)); // base + scaled index
            a.push(asm::ldr(8, 6, 0));
            a.push(asm::add(8, 8, 4));
            a.push(asm::str(8, 6, 0));
            a.push(asm::add(9, 9, 8));
            a.push(asm::addi(4, 4, 1));
            a.push(asm::subi(1, 1, 1));
            a.cbnz_to(1, "loop");
            a.label("done");
            a.push(asm::hlt());
            let words = a.finish();

            let mut on = run_captive(&words, true);
            let mut off = run_captive(&words, false);
            let mut q = run_qemu(&words);
            assert_arch_eq(&mut on, &mut off, &mut q, "addr");
            if trips > 16 {
                prop_assert!(
                    hits(&mut on, "addr.fold") >= 1,
                    "hot scaled-index loop must fold its address chain"
                );
            }
            prop_assert_eq!(hits(&mut off, "addr.fold"), 0);
        }
    }

    /// bulk.memset: byte-fill loops of every length — including the 0- and
    /// 1-trip edges, non-multiple-of-8 tails, and bodies running inside
    /// promoted looping regions (the default config) — leave identical
    /// memory, registers and flags whether or not the wide fast path is
    /// spliced in.
    #[test]
    fn bulk_memset_agrees_across_engines(
        random_bytes in 2u32..2_000,
        fill in 0u32..0x100,
        offset in 0u32..16,
    ) {
        for bytes in [0u32, 1, 7, random_bytes] {
            let mut a = Assembler::new();
            a.mov_imm64(1, DATA_BASE + offset as u64);
            a.push(asm::movz(3, fill, 0));
            a.push(asm::movz(5, bytes, 0));
            a.push(asm::movz(4, 0, 0));
            a.push(asm::orr(4, 1, 1)); // cur = base
            a.cbz_to(5, "done");
            a.label("fill");
            a.push(asm::strb(3, 4, 0));
            a.push(asm::addi(4, 4, 1));
            a.push(asm::subi(5, 5, 1));
            a.cbnz_to(5, "fill");
            a.label("done");
            a.push(asm::ldr(6, 1, 0)); // read back through the fill
            a.push(asm::hlt());
            let words = a.finish();

            let mut on = run_captive(&words, true);
            let mut off = run_captive(&words, false);
            let mut q = run_qemu(&words);
            assert_arch_eq(&mut on, &mut off, &mut q, "bulk");
            if bytes > 200 {
                prop_assert!(
                    hits(&mut on, "bulk.memset") >= 1,
                    "a {bytes}-byte fill must take the wide path"
                );
            }
            prop_assert_eq!(hits(&mut off, "bulk.memset"), 0);
        }
    }
}

/// Negative: a carry-reading condition (`Hi`) on a logic producer cannot
/// classify — `ands` packs only Z and N into the nibble, so no host
/// condition of the re-materialised test reproduces the guest predicate.
/// The site must not fuse, and must not even count as a candidate.
#[test]
fn carry_condition_on_logic_producer_suppresses_fusion() {
    let mut a = Assembler::new();
    a.push(asm::movz(1, 300, 0));
    a.push(asm::movz(2, 5, 0));
    a.push(asm::movz(3, 9, 0));
    a.push(asm::movz(9, 0, 0));
    a.label("loop");
    a.push(asm::ands(6, 2, 3)); // logic producer: C and V always clear
    a.bcond_to(Cond::Hi, "skip"); // Hi reads C — unclassifiable
    a.push(asm::addi(9, 9, 1));
    a.label("skip");
    a.push(asm::add(2, 2, 9));
    a.push(asm::subi(1, 1, 1));
    a.cbnz_to(1, "loop");
    a.push(asm::hlt());
    let words = a.finish();

    let mut on = run_captive(&words, true);
    let mut off = run_captive(&words, false);
    let mut q = run_qemu(&words);
    assert_arch_eq(&mut on, &mut off, &mut q, "hi-on-ands");
    for rule in ["fuse.cmpbr", "fuse.tstbr"] {
        assert_eq!(
            hits(&mut on, rule),
            0,
            "{rule}: an ands+b.hi site must refuse fusion"
        );
        let cands = on
            .stats()
            .idiom_candidates
            .iter()
            .find(|(n, _)| n == rule)
            .map_or(0, |(_, v)| *v);
        assert_eq!(
            cands, 0,
            "{rule}: the unclassifiable site must not count as a candidate"
        );
    }
}

/// Region-boundary soundness: the loop's conditional exit leg leaves the
/// region as a side exit with the compare's NZCV still architecturally
/// live — a `csel` beyond the exit reads it with no intervening flag
/// write.  Whatever the layer does to the branch itself, the flags read
/// outside the region must be the compare's exact result on every trip
/// count parity.
#[test]
fn flags_read_across_side_exit_stay_exact() {
    for trips in [1u32, 2, 37, 200] {
        let mut a = Assembler::new();
        a.push(asm::movz(1, trips, 0));
        a.push(asm::movz(3, 7, 0));
        a.push(asm::movz(9, 0, 0));
        a.label("loop");
        a.push(asm::addi(9, 9, 1));
        a.push(asm::subi(1, 1, 1));
        a.push(asm::cmpi(1, 0));
        a.bcond_to(Cond::Eq, "done"); // cold side exit carries live flags
        a.b_to("loop");
        a.label("done");
        // Reads the loop-exit compare's flags with no flag write between:
        // Z is set on exit, so the Eq select must pick x9.
        a.push(asm::csel(4, 9, 3, Cond::Eq));
        a.push(asm::hlt());
        let words = a.finish();

        let mut on = run_captive(&words, true);
        let mut off = run_captive(&words, false);
        let mut q = run_qemu(&words);
        assert_arch_eq(&mut on, &mut off, &mut q, "side-exit flags");
        assert_eq!(
            on.guest_reg(4),
            trips as u64,
            "the side-exit csel must see the compare's Z flag"
        );
    }
}

/// Ret-boundary soundness: a fused compare+branch at the end of a called
/// kernel, with the caller reading NZCV right after the `ret` — the flags
/// must survive the region's return boundary.
#[test]
fn flags_read_across_ret_stay_exact() {
    let mut main = Assembler::new();
    main.push(asm::movz(6, 120, 0)); // calls
    main.push(asm::movz(9, 0, 0));
    main.mov_imm64(3, 0x2000);
    main.label("again");
    main.push(asm::blr(3));
    // x5's flags come from the kernel's final subtract-compare, across ret.
    main.push(asm::csel(5, 9, 6, Cond::Eq));
    main.push(asm::add(9, 9, 5));
    main.push(asm::subi(6, 6, 1));
    main.cbnz_to(6, "again");
    main.push(asm::hlt());

    let mut kern = Assembler::new();
    kern.push(asm::movz(10, 8, 0));
    kern.label("k");
    kern.push(asm::subi(10, 10, 1));
    kern.push(asm::cmpi(10, 0));
    kern.bcond_to(Cond::Ne, "k");
    kern.push(asm::ret());
    let main_words = main.finish();
    let kern_words = kern.finish();

    let run = |idioms: bool| {
        let mut c = Captive::new(CaptiveConfig {
            idioms,
            region_threshold: 4,
            ..CaptiveConfig::default()
        });
        c.load_program(0x1000, &main_words);
        c.load_program(0x2000, &kern_words);
        c.set_entry(0x1000);
        assert!(matches!(
            c.run(50_000_000),
            captive::RunExit::GuestHalted { .. }
        ));
        c
    };
    let mut on = run(true);
    let mut off = run(false);
    for r in 0..31 {
        assert_eq!(on.guest_reg(r), off.guest_reg(r), "x{r} diverged");
    }
    assert_eq!(on.guest_nzcv(), off.guest_nzcv(), "NZCV across ret");
}

/// The idiom layer composes with loop promotion: on the memset kernel the
/// wide rewrite introduces a second back-edge, which the promoter must
/// refuse rather than mis-reconcile — and the wide path's own trip
/// accounting must agree with the byte path under every knob combination.
#[test]
fn bulk_rewrite_composes_with_promotion_knobs() {
    let mut a = Assembler::new();
    a.mov_imm64(1, DATA_BASE);
    a.push(asm::movz(3, 0xA5, 0));
    a.push(asm::movz(5, 1000, 0));
    a.push(asm::orr(4, 1, 1));
    a.label("fill");
    a.push(asm::strb(3, 4, 0));
    a.push(asm::addi(4, 4, 1));
    a.push(asm::subi(5, 5, 1));
    a.cbnz_to(5, "fill");
    a.push(asm::hlt());
    let words = a.finish();

    let mut reference: Option<(Vec<u64>, u64, u64)> = None;
    for promote in [false, true] {
        for unroll in [1usize, 4] {
            for idioms in [false, true] {
                let mut c = run_captive_cfg(
                    &words,
                    CaptiveConfig {
                        idioms,
                        promote,
                        unroll_loops: unroll,
                        region_threshold: 4,
                        ..CaptiveConfig::default()
                    },
                );
                let regs: Vec<u64> = (0..31).map(|r| c.guest_reg(r)).collect();
                let nzcv = c.guest_nzcv();
                let mem = c.guest_mem_digest(DATA_BASE, MEM_DIGEST_LEN);
                match &reference {
                    None => reference = Some((regs, nzcv, mem)),
                    Some((rr, rn, rm)) => {
                        assert_eq!(
                            (&regs, nzcv, mem),
                            (rr, *rn, *rm),
                            "promote={promote} unroll={unroll} idioms={idioms} diverged"
                        );
                    }
                }
            }
        }
    }
}
