//! Cross-crate integration tests: Captive and the QEMU-style baseline must be
//! *functionally* indistinguishable to the guest (same architectural results)
//! while differing in the performance characteristics the paper measures.

use captive::{Captive, CaptiveConfig, FpMode};
use guest_aarch64::asm::{self, Assembler};
use proptest::prelude::*;
use qemu_ref::QemuRef;
use workloads::Scale;

fn run_both(words: &[u32]) -> (Captive, QemuRef) {
    let mut c = Captive::new(CaptiveConfig::default());
    c.load_program(0x1000, words);
    c.set_entry(0x1000);
    assert!(matches!(
        c.run(50_000_000),
        captive::RunExit::GuestHalted { .. }
    ));

    let mut q = QemuRef::new(32 * 1024 * 1024);
    q.load_program(0x1000, words);
    q.set_entry(0x1000);
    assert!(matches!(
        q.run(50_000_000),
        qemu_ref::RunExit::GuestHalted { .. }
    ));
    (c, q)
}

#[test]
fn spec_int_results_match_across_systems() {
    for w in workloads::spec_int(Scale(1)).into_iter().take(4) {
        let (mut c, mut q) = run_both(&w.words);
        for r in 0..16 {
            assert_eq!(c.guest_reg(r), q.guest_reg(r), "{}: x{r} diverged", w.name);
        }
    }
}

#[test]
fn fp_results_match_between_hardware_and_software_modes() {
    // The fix-up machinery means Captive's hardware-FP path must be
    // bit-identical to the softfloat path for the workload mix.
    let w = workloads::fp_micro(Scale(1));
    let mut hw = Captive::new(CaptiveConfig {
        fp_mode: FpMode::Hardware,
        ..CaptiveConfig::default()
    });
    hw.load_program(0x1000, &w.words);
    hw.set_entry(w.entry);
    assert!(matches!(
        hw.run(50_000_000),
        captive::RunExit::GuestHalted { .. }
    ));

    let mut sw = Captive::new(CaptiveConfig {
        fp_mode: FpMode::Software,
        ..CaptiveConfig::default()
    });
    sw.load_program(0x1000, &w.words);
    sw.set_entry(w.entry);
    assert!(matches!(
        sw.run(50_000_000),
        captive::RunExit::GuestHalted { .. }
    ));

    for r in 0..8 {
        assert_eq!(hw.guest_reg(r), sw.guest_reg(r), "x{r}");
    }
}

#[test]
fn chaining_on_and_off_are_architecturally_identical() {
    // The chained dispatcher must be invisible to the guest: every SimBench
    // micro (including the MMU-on and TLB-flushing ones) and a SPEC subset
    // produce the same register state with chaining on, chaining off, and
    // under the QEMU-style baseline.
    let run_captive = |words: &[u32], entry: u64, chaining: bool| {
        let mut c = Captive::new(CaptiveConfig {
            chaining,
            ..CaptiveConfig::default()
        });
        c.load_program(0x1000, words);
        c.set_entry(entry);
        assert!(matches!(
            c.run(50_000_000),
            captive::RunExit::GuestHalted { .. }
        ));
        c
    };
    let mut programs: Vec<(String, Vec<u32>, u64)> = simbench::suite()
        .into_iter()
        .map(|b| (b.name.to_string(), b.words, b.entry))
        .collect();
    for w in workloads::spec_int(Scale(1)).into_iter().take(2) {
        programs.push((w.name.to_string(), w.words.clone(), w.entry));
    }
    for (name, words, entry) in &programs {
        let mut on = run_captive(words, *entry, true);
        let mut off = run_captive(words, *entry, false);
        for r in 0..16 {
            assert_eq!(
                on.guest_reg(r),
                off.guest_reg(r),
                "{name}: x{r} diverged between chaining settings"
            );
        }
        let mut q = QemuRef::new(32 * 1024 * 1024);
        q.load_program(0x1000, words);
        q.set_entry(*entry);
        assert!(matches!(
            q.run(50_000_000),
            qemu_ref::RunExit::GuestHalted { .. }
        ));
        for r in 0..16 {
            assert_eq!(
                on.guest_reg(r),
                q.guest_reg(r),
                "{name}: x{r} diverged from the baseline"
            );
        }
    }
}

#[test]
fn chaining_speeds_up_a_dispatch_bound_loop() {
    // The acceptance bar for the chaining engine: a cache-hot loop runs in
    // measurably fewer simulated cycles with chaining, and the gap is the
    // counted chained transfers' saved dispatch cost — not a credit.
    let w = bench::micro_workload(&simbench::same_page_direct(10_000));
    let on = bench::run_captive_chaining(&w, true);
    let off = bench::run_captive_chaining(&w, false);
    assert!(on.chained_transfers > 20_000, "direct branches must chain");
    assert_eq!(off.chained_transfers, 0);
    assert!(
        on.cycles < off.cycles,
        "chaining on ({}) must beat chaining off ({})",
        on.cycles,
        off.cycles
    );
    let model = hvm::CostModel::default();
    assert_eq!(
        off.cycles - on.cycles,
        on.chained_transfers * (model.dispatch - model.chain),
        "the whole gap is accounted to chained transfers"
    );
}

#[test]
fn scaled_workloads_agree_across_all_engines() {
    // Architectural equivalence at scale factors beyond Scale(1): the
    // QEMU-style baseline (with and without same-page chaining), Captive
    // with chaining, and Captive with superblocks must all retire the same
    // register state.  Scale(4) exercises iteration counts high enough that
    // every hot loop crosses the superblock threshold many times over.
    let mut programs: Vec<(String, workloads::Workload)> = Vec::new();
    for scale in [Scale(2), Scale(4)] {
        let suite = workloads::spec_int(scale);
        for idx in [1usize, 3] {
            // 401.bzip2 (streaming) and 429.mcf (pointer chasing)
            let w = suite[idx].clone();
            programs.push((format!("{}@x{}", w.name, scale.0), w));
        }
    }
    for (name, w) in &programs {
        // Chain-only configuration (region formation pinned off), so the
        // region run below still contrasts with chaining alone.
        let mut chain = Captive::new(CaptiveConfig {
            form_regions: false,
            ..CaptiveConfig::default()
        });
        chain.load_program(workloads::CODE_BASE, &w.words);
        chain.set_entry(w.entry);
        assert!(matches!(
            chain.run(200_000_000),
            captive::RunExit::GuestHalted { .. }
        ));

        let mut sup = Captive::new(CaptiveConfig {
            form_regions: true,
            ..CaptiveConfig::default()
        });
        sup.load_program(workloads::CODE_BASE, &w.words);
        sup.set_entry(w.entry);
        assert!(matches!(
            sup.run(200_000_000),
            captive::RunExit::GuestHalted { .. }
        ));

        let mut q = QemuRef::new(32 * 1024 * 1024);
        q.load_program(workloads::CODE_BASE, &w.words);
        q.set_entry(w.entry);
        assert!(matches!(
            q.run(200_000_000),
            qemu_ref::RunExit::GuestHalted { .. }
        ));

        let mut qc = QemuRef::with_chaining(32 * 1024 * 1024, true);
        qc.load_program(workloads::CODE_BASE, &w.words);
        qc.set_entry(w.entry);
        assert!(matches!(
            qc.run(200_000_000),
            qemu_ref::RunExit::GuestHalted { .. }
        ));

        for r in 0..16 {
            let v = chain.guest_reg(r);
            assert_eq!(v, sup.guest_reg(r), "{name}: x{r} regions diverged");
            assert_eq!(v, q.guest_reg(r), "{name}: x{r} baseline diverged");
            assert_eq!(v, qc.guest_reg(r), "{name}: x{r} qemu-chaining diverged");
        }
        assert!(
            sup.stats().cycles <= chain.stats().cycles,
            "{name}: regions may not cost cycles"
        );
    }
}

#[test]
fn regions_cut_interpreter_entries_on_dispatch_bound_loop() {
    // The acceptance bar for the region former: on the dispatch-bound
    // hot loop, regions execute measurably fewer interpreter entries
    // (tracked by the region_transfers counter) at no cycle cost over
    // chaining alone, and the QEMU baselines order as expected.
    let w = bench::micro_workload(&simbench::same_page_direct(10_000));
    let chain = bench::run_captive_chaining(&w, true);
    let sb = bench::run_captive_regions(&w);
    assert!(sb.regions_formed >= 1);
    assert!(
        sb.region_transfers > 10_000,
        "stitched transfers must carry the loop: {}",
        sb.region_transfers
    );
    assert!(
        sb.blocks + sb.region_transfers + sb.backedge_transfers >= chain.blocks,
        "stitched and back-edge transfers account for the missing \
         interpreter entries: {} + {} + {} vs {}",
        sb.blocks,
        sb.region_transfers,
        sb.backedge_transfers,
        chain.blocks
    );
    assert!(
        sb.blocks < chain.blocks / 2,
        "interpreter entries must drop: {} vs {}",
        sb.blocks,
        chain.blocks
    );
    assert!(
        sb.loop_regions_formed >= 1 && sb.backedge_transfers > 1_000,
        "the hot loop must close as a looping region and trip internally: \
         formed {}, backedges {}",
        sb.loop_regions_formed,
        sb.backedge_transfers
    );
    assert!(
        sb.cycles <= chain.cycles,
        "regions must not regress cycles: {} vs {}",
        sb.cycles,
        chain.cycles
    );

    let q = bench::run_qemu(&w);
    let qc = bench::run_qemu_chaining(&w, true);
    assert!(qc.chained_transfers > 10_000, "qemu chains within the page");
    assert!(
        qc.cycles < q.cycles,
        "the chained baseline must tighten the comparison"
    );
}

#[test]
fn optimizer_on_off_and_baseline_agree_on_flag_heavy_kernels() {
    // The LIR optimizer must be architecturally invisible: the flag-heavy
    // SPEC kernels (data-dependent branches over NZCV) retire the same
    // register file *and* flags with the optimizer on, off, and under the
    // QEMU-style baseline.
    for w in workloads::spec_int(Scale(1)).into_iter().take(8) {
        let run = |opt: bool| {
            let mut c = Captive::new(CaptiveConfig {
                opt,
                ..CaptiveConfig::default()
            });
            c.load_program(workloads::CODE_BASE, &w.words);
            c.set_entry(w.entry);
            assert!(matches!(
                c.run(50_000_000),
                captive::RunExit::GuestHalted { .. }
            ));
            c
        };
        let mut on = run(true);
        let mut off = run(false);
        let mut q = QemuRef::new(32 * 1024 * 1024);
        q.load_program(workloads::CODE_BASE, &w.words);
        q.set_entry(w.entry);
        assert!(matches!(
            q.run(50_000_000),
            qemu_ref::RunExit::GuestHalted { .. }
        ));
        for r in 0..31 {
            let v = on.guest_reg(r);
            assert_eq!(v, off.guest_reg(r), "{}: x{r} diverged opt on/off", w.name);
            assert_eq!(v, q.guest_reg(r), "{}: x{r} diverged from baseline", w.name);
        }
        assert_eq!(
            on.guest_nzcv(),
            off.guest_nzcv(),
            "{}: NZCV diverged opt on/off",
            w.name
        );
        assert_eq!(
            on.guest_nzcv(),
            q.guest_nzcv(),
            "{}: NZCV diverged from baseline",
            w.name
        );
        assert!(
            on.stats().cycles <= off.stats().cycles,
            "{}: optimizer may not cost cycles",
            w.name
        );
    }
}

#[test]
fn optimizer_preserves_region_side_exit_state() {
    // Flag-heavy two-block loop whose conditional leg gets stitched: the
    // side-exit stub must still deliver an exact register file with the
    // optimizer eliminating stores around it.
    let mut a = Assembler::new();
    a.push(asm::movz(1, 500, 0));
    a.push(asm::movz(9, 0, 0));
    a.push(asm::movz(2, 1, 0));
    a.label("loop");
    a.push(asm::adds(9, 9, 2)); // flag-setting; NZCV dead (overwritten below)
    a.push(asm::subis(1, 1, 1)); // flag-setting; NZCV read by the branch
    a.bcond_to(guest_aarch64::isa::Cond::Eq, "done"); // cold leg → side exit
    a.b_to("loop");
    a.label("done");
    a.push(asm::hlt());
    let words = a.finish();
    let run = |opt: bool| {
        let mut c = Captive::new(CaptiveConfig {
            opt,
            ..CaptiveConfig::default()
        });
        c.load_program(0x1000, &words);
        c.set_entry(0x1000);
        assert!(matches!(
            c.run(50_000_000),
            captive::RunExit::GuestHalted { .. }
        ));
        c
    };
    let mut on = run(true);
    let mut off = run(false);
    assert_eq!(on.guest_reg(9), 500);
    assert_eq!(on.guest_reg(1), 0);
    for r in 0..16 {
        assert_eq!(on.guest_reg(r), off.guest_reg(r), "x{r}");
    }
    assert_eq!(on.guest_nzcv(), off.guest_nzcv(), "NZCV at the side exit");
    assert!(
        on.stats().regions_formed >= 1,
        "the loop must get hot enough to stitch"
    );
    assert!(
        on.stats().opt_dead_stores >= 1,
        "the adds NZCV store is dead and must be eliminated"
    );
    assert!(on.stats().cycles <= off.stats().cycles);
}

#[test]
fn unrolled_region_fault_mid_iteration_delivers_exact_elr() {
    // A single-block self-loop (store, stride, unconditional loop-back)
    // marches out of guest RAM: the fault lands *inside* an unrolled region
    // — possibly in a peeled iteration past a trace edge — and must still
    // deliver the exact faulting PC into ELR and the first OOB address into
    // FAR.
    let mut a = Assembler::new();
    a.mov_imm64(9, 0x2000);
    a.push(asm::msr(guest_aarch64::SysReg::Vbar as u32, 9));
    a.mov_imm64(1, 0x100_0000); // 16 MiB
    a.mov_imm64(2, 0xBEEF);
    a.mov_imm64(3, 0x1_0000); // 64 KiB stride → 256 iterations to 32 MiB
    a.label("loop");
    let fault_idx = a.here();
    a.push(asm::str(2, 1, 0));
    a.push(asm::add(1, 1, 3));
    a.b_to("loop");
    let main = a.finish();
    let fault_pc = 0x1000 + fault_idx as u64 * 4;

    let mut v = Assembler::new();
    v.push(asm::mrs(10, guest_aarch64::SysReg::Elr as u32));
    v.push(asm::mrs(11, guest_aarch64::SysReg::Far as u32));
    v.push(asm::hlt());

    let mut c = Captive::new(CaptiveConfig::default());
    c.load_program(0x1000, &main);
    c.load_program(0x2000, &v.finish());
    c.set_entry(0x1000);
    assert!(matches!(
        c.run(1_000_000),
        captive::RunExit::GuestHalted { .. }
    ));
    assert_eq!(c.guest_reg(10), fault_pc, "ELR is the faulting PC");
    assert_eq!(c.guest_reg(11), 0x200_0000, "FAR is the first OOB address");
    let s = c.stats();
    assert!(
        s.regions_unrolled >= 1,
        "the self-loop must have unrolled before faulting"
    );
    assert!(s.region_transfers > 100, "peeled iterations were executed");
}

#[test]
fn smc_on_the_looping_page_retires_the_unrolled_region() {
    // A callable self-loop kernel gets hot enough to unroll; the guest then
    // rewrites the kernel's first instruction and re-runs it.  The write
    // must retire the unrolled region (and every plain region on the page),
    // and the second phase must execute the new code — identically with
    // unrolling on and off.
    let make = || {
        let mut main = Assembler::new();
        main.push(asm::movz(6, 2, 0)); // two phases
        main.mov_imm64(3, 0x2000); // kernel address
        main.mov_imm64(4, asm::movz(7, 2, 0) as u64); // patched first insn
        main.label("phase");
        main.push(asm::movz(5, 300, 0));
        let bl_idx = main.here();
        main.push(asm::bl(0x2000 - (0x1000 + bl_idx as i64 * 4)));
        main.push(asm::strw(4, 3, 0)); // SMC: rewrite `movz x7, #1`
        main.push(asm::subi(6, 6, 1));
        main.cbnz_to(6, "phase");
        main.push(asm::hlt());

        let mut kern = Assembler::new();
        kern.push(asm::movz(7, 1, 0)); // patched to `movz x7, #2`
        kern.label("loop");
        kern.push(asm::addi(9, 9, 1));
        kern.push(asm::subi(5, 5, 1));
        kern.cbnz_to(5, "loop");
        kern.push(asm::ret());
        (main.finish(), kern.finish())
    };
    let run = |unroll: usize| {
        let (main, kern) = make();
        let mut c = Captive::new(CaptiveConfig {
            unroll_loops: unroll,
            ..CaptiveConfig::default()
        });
        c.load_program(0x1000, &main);
        c.load_program(0x2000, &kern);
        c.set_entry(0x1000);
        assert!(matches!(
            c.run(1_000_000),
            captive::RunExit::GuestHalted { .. }
        ));
        c
    };
    let mut on = run(4);
    let mut off = run(1);
    for r in 0..16 {
        assert_eq!(on.guest_reg(r), off.guest_reg(r), "x{r} diverged");
    }
    assert_eq!(on.guest_reg(7), 2, "phase 2 must run the rewritten kernel");
    assert_eq!(on.guest_reg(9), 600, "both phases looped fully");
    let s = on.stats();
    assert!(
        s.regions_unrolled >= 1,
        "phase 1 must unroll the kernel loop"
    );
    assert!(
        on.cache.stats().invalidated_page >= 1,
        "the code-page write must invalidate the looping page"
    );
}

#[test]
fn smc_on_a_loop_page_mid_iteration_takes_effect_next_iteration() {
    // The guest patches an instruction of its own running loop from *inside*
    // the looping region: on the patch iteration the store hits the loop's
    // code page, and the back-edge's pending-event poll must turn the
    // loop-back into a dispatcher exit — so the stale translation executes
    // for at most the remainder of the current iteration, and the very next
    // iteration runs the rewritten code.  unroll_loops=1 closes the
    // back-edge after a single body copy, making the staleness bound exactly
    // one iteration and the final accumulator value deterministic.
    const ITERS: u64 = 60;
    const PATCH_AT: u64 = 20; // patch when the countdown reaches this value
    let mut a = Assembler::new();
    a.push(asm::movz(1, ITERS as u32, 0)); // countdown
    a.push(asm::movz(9, 0, 0)); // accumulator
    a.push(asm::movz(8, PATCH_AT as u32, 0));
    a.mov_imm64(10, 0x8000); // scratch store target (plain data)
    a.mov_imm64(4, asm::movz(7, 2, 0) as u64); // the patched word
    let target_ref = a.here(); // position of mov_imm64 below patched later
    a.mov_imm64(3, 0); // placeholder: patch-target address (fixed up below)
    a.label("loop");
    let patch_idx = a.here();
    a.push(asm::movz(7, 1, 0)); // <- patch target: becomes `movz x7, #2`
    a.push(asm::add(9, 9, 7));
    a.b_to("cont"); // split the body: the loop is multi-block
    a.label("cont");
    a.push(asm::cmp(1, 8));
    a.push(asm::csel(5, 3, 10, guest_aarch64::isa::Cond::Eq));
    a.push(asm::strw(4, 5, 0)); // hits the code page only on the patch iteration
    a.push(asm::subi(1, 1, 1));
    a.cbnz_to(1, "loop");
    a.push(asm::hlt());
    let mut words = a.finish();
    // Fix up the placeholder mov_imm64 to carry the patch target's address.
    let patch_va = 0x1000 + patch_idx as u64 * 4;
    let mut fixup = Assembler::new();
    fixup.mov_imm64(3, patch_va);
    for (i, w) in fixup.finish().into_iter().enumerate() {
        words[target_ref + i] = w;
    }

    let mut c = Captive::new(CaptiveConfig {
        unroll_loops: 1,
        region_threshold: 8,
        ..CaptiveConfig::default()
    });
    c.load_program(0x1000, &words);
    c.set_entry(0x1000);
    assert!(matches!(
        c.run(1_000_000),
        captive::RunExit::GuestHalted { .. }
    ));
    // Iterations with the countdown at 60..=20 ran the original `movz x7,#1`
    // (the patch lands mid-iteration at 20, after that iteration's add);
    // 19..=1 must run the rewritten `movz x7,#2`.
    let old_iters = ITERS - PATCH_AT + 1;
    let new_iters = PATCH_AT - 1;
    assert_eq!(
        c.guest_reg(9),
        old_iters + 2 * new_iters,
        "the patched loop body must take effect on the iteration after the \
         write — no unbounded stale execution inside the looping region"
    );
    let s = c.stats();
    assert!(
        s.loop_regions_formed >= 1,
        "the loop must have closed as a looping region before the patch"
    );
    assert!(s.backedge_transfers > 5, "iterations tripped internally");
    assert!(
        c.cache.stats().invalidated_page >= 1,
        "the code-page write invalidated the looping region"
    );
}

#[test]
fn fault_mid_looping_region_delivers_exact_elr() {
    // A two-block striding store loop closed as a looping region marches out
    // of guest RAM: the data abort lands inside an internal loop trip and
    // must still deliver the exact faulting PC into ELR (the per-insn PC
    // tracking plus the back-edge's folded PC update keep state precise at
    // every point of the loop).
    let mut a = Assembler::new();
    a.mov_imm64(9, 0x2000);
    a.push(asm::msr(guest_aarch64::SysReg::Vbar as u32, 9));
    a.mov_imm64(1, 0x100_0000); // 16 MiB
    a.mov_imm64(2, 0xBEEF);
    a.mov_imm64(3, 0x1_0000); // 64 KiB stride → 256 iterations to 32 MiB
    a.label("loop");
    let fault_idx = a.here();
    a.push(asm::str(2, 1, 0));
    a.push(asm::add(1, 1, 3));
    a.b_to("m");
    a.label("m");
    a.b_to("loop");
    let main = a.finish();
    let fault_pc = 0x1000 + fault_idx as u64 * 4;

    let mut v = Assembler::new();
    v.push(asm::mrs(10, guest_aarch64::SysReg::Elr as u32));
    v.push(asm::mrs(11, guest_aarch64::SysReg::Far as u32));
    v.push(asm::hlt());

    let mut c = Captive::new(CaptiveConfig::default());
    c.load_program(0x1000, &main);
    c.load_program(0x2000, &v.finish());
    c.set_entry(0x1000);
    assert!(matches!(
        c.run(1_000_000),
        captive::RunExit::GuestHalted { .. }
    ));
    assert_eq!(c.guest_reg(10), fault_pc, "ELR is the faulting PC");
    assert_eq!(c.guest_reg(11), 0x200_0000, "FAR is the first OOB address");
    let s = c.stats();
    assert!(
        s.loop_regions_formed >= 1,
        "the loop closed internally before faulting"
    );
    assert!(
        s.backedge_transfers > 50,
        "iterations tripped inside the region (4 per trip at the default \
         unroll): {}",
        s.backedge_transfers
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Looping regions are architecturally invisible on multi-block loop
    /// bodies with a nested conditional: for trip counts 0, 1 and a random
    /// count, and unroll factors 1–4, the kernel retires identical
    /// registers *and* NZCV with looping regions on, off, and under the
    /// QEMU-style baseline.  A low formation threshold makes even modest
    /// trip counts cross into formation, so the nested side exits, the
    /// peeled copies and the loop-exit leg all get exercised.
    #[test]
    fn looping_regions_agree_across_engines_on_nested_bodies(
        random_trips in 2u32..300,
        unroll in 1usize..5,
        cond_idx in 0usize..4,
    ) {
        use guest_aarch64::isa::Cond;
        let conds = [Cond::Eq, Cond::Ne, Cond::Hi, Cond::Lt];
        for trips in [0u32, 1, random_trips] {
            let mut a = Assembler::new();
            a.push(asm::movz(1, trips, 0));
            a.push(asm::movz(9, 0, 0));
            a.push(asm::movz(2, 3, 0));
            a.cbz_to(1, "done");
            a.label("loop");
            a.push(asm::adds(9, 9, 2)); // flag-setting accumulate
            a.bcond_to(conds[cond_idx], "other"); // nested conditional
            a.push(asm::addi(9, 9, 1));
            a.b_to("join");
            a.label("other");
            a.push(asm::addi(9, 9, 2));
            a.label("join");
            a.push(asm::subis(1, 1, 1)); // flag-setting loop counter
            a.bcond_to(Cond::Ne, "loop");
            a.label("done");
            a.push(asm::hlt());
            let words = a.finish();

            let run = |loop_regions: bool, unroll: usize| {
                let mut c = Captive::new(CaptiveConfig {
                    loop_regions,
                    unroll_loops: unroll,
                    region_threshold: 4,
                    ..CaptiveConfig::default()
                });
                c.load_program(0x1000, &words);
                c.set_entry(0x1000);
                assert!(matches!(
                    c.run(1_000_000),
                    captive::RunExit::GuestHalted { .. }
                ));
                c
            };
            let mut on = run(true, unroll);
            let mut off = run(false, 1);
            let mut q = QemuRef::new(32 * 1024 * 1024);
            q.load_program(0x1000, &words);
            q.set_entry(0x1000);
            assert!(matches!(
                q.run(1_000_000),
                qemu_ref::RunExit::GuestHalted { .. }
            ));
            for r in 0..16 {
                let v = on.guest_reg(r);
                prop_assert_eq!(v, off.guest_reg(r), "x{} diverged loops on/off", r);
                prop_assert_eq!(v, q.guest_reg(r), "x{} diverged from baseline", r);
            }
            prop_assert_eq!(on.guest_nzcv(), off.guest_nzcv(), "NZCV loops on/off");
            prop_assert_eq!(on.guest_nzcv(), q.guest_nzcv(), "NZCV vs baseline");
            if trips > 16 {
                prop_assert!(
                    on.stats().loop_regions_formed >= 1,
                    "trip count {} past the threshold must close a loop",
                    trips
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Unrolled self-loop regions are architecturally invisible: for trip
    /// counts 0, 1 and a random count, and a random unroll factor 2–4, the
    /// self-loop kernel retires identical registers *and* NZCV under
    /// Captive-with-unrolling, Captive-without, and the QEMU-style baseline.
    /// A low formation threshold makes even modest trip counts cross into
    /// region formation, so side exits from every peel position get hit.
    #[test]
    fn unrolled_self_loops_agree_across_engines(
        random_trips in 2u32..300,
        unroll in 2usize..5,
    ) {
        for trips in [0u32, 1, random_trips] {
            let mut a = Assembler::new();
            a.push(asm::movz(1, trips, 0));
            a.push(asm::movz(9, 0, 0));
            a.push(asm::movz(2, 3, 0));
            a.cbz_to(1, "done");
            a.label("loop");
            a.push(asm::add(9, 9, 2));
            a.push(asm::subis(1, 1, 1)); // flag-setting loop counter
            a.bcond_to(guest_aarch64::isa::Cond::Ne, "loop");
            a.label("done");
            a.push(asm::hlt());
            let words = a.finish();

            let run = |unroll: usize| {
                let mut c = Captive::new(CaptiveConfig {
                    unroll_loops: unroll,
                    region_threshold: 4,
                    ..CaptiveConfig::default()
                });
                c.load_program(0x1000, &words);
                c.set_entry(0x1000);
                assert!(matches!(
                    c.run(1_000_000),
                    captive::RunExit::GuestHalted { .. }
                ));
                c
            };
            let mut on = run(unroll);
            let mut off = run(1);
            let mut q = QemuRef::new(32 * 1024 * 1024);
            q.load_program(0x1000, &words);
            q.set_entry(0x1000);
            assert!(matches!(
                q.run(1_000_000),
                qemu_ref::RunExit::GuestHalted { .. }
            ));
            for r in 0..16 {
                let v = on.guest_reg(r);
                prop_assert_eq!(v, off.guest_reg(r), "x{} diverged unroll on/off", r);
                prop_assert_eq!(v, q.guest_reg(r), "x{} diverged from baseline", r);
            }
            prop_assert_eq!(on.guest_nzcv(), off.guest_nzcv(), "NZCV unroll on/off");
            prop_assert_eq!(on.guest_nzcv(), q.guest_nzcv(), "NZCV vs baseline");
            if trips > 8 {
                prop_assert!(
                    on.stats().regions_unrolled >= 1,
                    "trip count {} past the threshold must unroll",
                    trips
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Loop-carried register promotion is architecturally invisible: a
    /// memory-marching kernel whose loop carries a dirty index and
    /// accumulator past a loop-invariant base and mask — the exact shape
    /// promotion and hoisting feed on — retires identical registers *and*
    /// NZCV with promotion on, promotion off, and under the QEMU-style
    /// baseline, for trip counts 0, 1 and a random count crossed with
    /// unroll factors 1–4.
    #[test]
    fn promoted_loops_agree_across_engines(
        random_trips in 2u32..300,
        unroll in 1usize..5,
    ) {
        use guest_aarch64::isa::Cond;
        for trips in [0u32, 1, random_trips] {
            let mut a = Assembler::new();
            a.push(asm::movz(1, trips, 0)); // countdown (dirty carrier)
            a.push(asm::movz(9, 0, 0)); // accumulator (dirty carrier)
            a.mov_imm64(2, 0x10_0000); // data base (invariant, hoisted)
            a.push(asm::movz(3, 0, 0)); // index (dirty carrier)
            a.push(asm::movz(4, 7, 0)); // mask (invariant, hoisted)
            a.cbz_to(1, "done");
            a.label("loop");
            a.push(asm::lsli(5, 3, 3));
            a.push(asm::add(5, 5, 2));
            a.push(asm::str(3, 5, 0)); // arr[i] = i (may-fault store in span)
            a.push(asm::ldr(6, 5, 0));
            a.push(asm::ands(7, 3, 4)); // flag-setting guard
            a.bcond_to(Cond::Eq, "skip");
            a.push(asm::addi(6, 6, 1));
            a.label("skip");
            a.push(asm::add(9, 9, 6));
            a.push(asm::addi(3, 3, 1));
            a.push(asm::subis(1, 1, 1)); // flag-setting loop counter
            a.bcond_to(Cond::Ne, "loop");
            a.label("done");
            a.push(asm::hlt());
            let words = a.finish();

            let run = |promote: bool, unroll: usize| {
                let mut c = Captive::new(CaptiveConfig {
                    promote,
                    unroll_loops: unroll,
                    region_threshold: 4,
                    ..CaptiveConfig::default()
                });
                c.load_program(0x1000, &words);
                c.set_entry(0x1000);
                assert!(matches!(
                    c.run(1_000_000),
                    captive::RunExit::GuestHalted { .. }
                ));
                c
            };
            let mut on = run(true, unroll);
            let mut off = run(false, unroll);
            let mut q = QemuRef::new(32 * 1024 * 1024);
            q.load_program(0x1000, &words);
            q.set_entry(0x1000);
            assert!(matches!(
                q.run(1_000_000),
                qemu_ref::RunExit::GuestHalted { .. }
            ));
            for r in 0..16 {
                let v = on.guest_reg(r);
                prop_assert_eq!(v, off.guest_reg(r), "x{} diverged promote on/off", r);
                prop_assert_eq!(v, q.guest_reg(r), "x{} diverged from baseline", r);
            }
            prop_assert_eq!(on.guest_nzcv(), off.guest_nzcv(), "NZCV promote on/off");
            prop_assert_eq!(on.guest_nzcv(), q.guest_nzcv(), "NZCV vs baseline");
            if trips > 16 {
                let s = on.stats();
                prop_assert!(
                    s.loop_regions_formed >= 1,
                    "trip count {} past the threshold must close a loop",
                    trips
                );
                prop_assert!(
                    s.opt_promoted_slots >= 1,
                    "the dirty index/accumulator slots must promote \
                     (trips {}, unroll {})",
                    trips,
                    unroll
                );
            }
        }
    }
}

#[test]
fn fault_mid_promoted_loop_reconciles_exact_state() {
    // The striding-store loop from above, with promotion left on: the
    // marching address x1 is a *dirty promoted carrier* (loaded and stored
    // every iteration), so when the store finally walks off the end of
    // guest RAM the fault-time materialization path — not a regfile store
    // in the loop body — must surface its exact architectural value.  The
    // vector handler reads ELR, FAR *and* x1 itself; a promote-off run must
    // be byte-identical, proving promotion never leaks into fault delivery.
    let mut a = Assembler::new();
    a.mov_imm64(9, 0x2000);
    a.push(asm::msr(guest_aarch64::SysReg::Vbar as u32, 9));
    a.mov_imm64(1, 0x100_0000); // 16 MiB
    a.mov_imm64(2, 0xBEEF); // invariant store value (hoisted)
    a.mov_imm64(3, 0x1_0000); // invariant stride (hoisted)
    a.label("loop");
    let fault_idx = a.here();
    a.push(asm::str(2, 1, 0));
    a.push(asm::add(1, 1, 3));
    a.b_to("m");
    a.label("m");
    a.b_to("loop");
    let main = a.finish();
    let fault_pc = 0x1000 + fault_idx as u64 * 4;

    let mut v = Assembler::new();
    v.push(asm::mrs(10, guest_aarch64::SysReg::Elr as u32));
    v.push(asm::mrs(11, guest_aarch64::SysReg::Far as u32));
    v.push(asm::orr(12, 1, 1)); // capture the promoted slot's value at fault
    v.push(asm::hlt());
    let handler = v.finish();

    let run = |promote: bool| {
        let mut c = Captive::new(CaptiveConfig {
            promote,
            ..CaptiveConfig::default()
        });
        c.load_program(0x1000, &main);
        c.load_program(0x2000, &handler);
        c.set_entry(0x1000);
        assert!(matches!(
            c.run(1_000_000),
            captive::RunExit::GuestHalted { .. }
        ));
        c
    };
    let mut on = run(true);
    let mut off = run(false);
    for r in 0..16 {
        assert_eq!(on.guest_reg(r), off.guest_reg(r), "x{r} diverged");
    }
    assert_eq!(on.guest_reg(10), fault_pc, "ELR is the faulting PC");
    assert_eq!(on.guest_reg(11), 0x200_0000, "FAR is the first OOB address");
    assert_eq!(
        on.guest_reg(12),
        0x200_0000,
        "the dirty promoted address slot must read its exact value at fault"
    );
    let s = on.stats();
    assert!(
        s.opt_promoted_slots >= 1,
        "the marching address must have promoted"
    );
    assert!(
        s.opt_hoisted_loads >= 1,
        "the invariant value/stride loads must have hoisted"
    );
    assert!(s.backedge_transfers > 50, "iterations tripped in-region");
}

#[test]
fn smc_mid_promoted_loop_reconciles_carriers() {
    // The mid-iteration self-patch kernel, promote on vs off: the patch
    // store hits the loop's own code page from *inside* the looping region,
    // the back-edge poll yields, and the reconcile compensation block must
    // write every dirty carrier (countdown x1, accumulator x9, patched-in
    // x7) back to the regfile before the dispatcher retranslates — any
    // stale carrier shows up as a wrong final accumulator.
    const ITERS: u64 = 60;
    const PATCH_AT: u64 = 20;
    let make = || {
        let mut a = Assembler::new();
        a.push(asm::movz(1, ITERS as u32, 0)); // countdown (dirty carrier)
        a.push(asm::movz(9, 0, 0)); // accumulator (dirty carrier)
        a.push(asm::movz(8, PATCH_AT as u32, 0));
        a.mov_imm64(10, 0x8000); // scratch store target (plain data)
        a.mov_imm64(4, asm::movz(7, 2, 0) as u64); // the patched word
        let target_ref = a.here();
        a.mov_imm64(3, 0); // placeholder: patch-target address (fixed below)
        a.label("loop");
        let patch_idx = a.here();
        a.push(asm::movz(7, 1, 0)); // <- patch target: becomes `movz x7, #2`
        a.push(asm::add(9, 9, 7));
        a.b_to("cont"); // split the body: the loop is multi-block
        a.label("cont");
        a.push(asm::cmp(1, 8));
        a.push(asm::csel(5, 3, 10, guest_aarch64::isa::Cond::Eq));
        a.push(asm::strw(4, 5, 0)); // hits the code page on the patch trip
        a.push(asm::subi(1, 1, 1));
        a.cbnz_to(1, "loop");
        a.push(asm::hlt());
        let mut words = a.finish();
        let patch_va = 0x1000 + patch_idx as u64 * 4;
        let mut fixup = Assembler::new();
        fixup.mov_imm64(3, patch_va);
        for (i, w) in fixup.finish().into_iter().enumerate() {
            words[target_ref + i] = w;
        }
        words
    };
    let run = |promote: bool| {
        let words = make();
        let mut c = Captive::new(CaptiveConfig {
            promote,
            unroll_loops: 1,
            region_threshold: 8,
            ..CaptiveConfig::default()
        });
        c.load_program(0x1000, &words);
        c.set_entry(0x1000);
        assert!(matches!(
            c.run(1_000_000),
            captive::RunExit::GuestHalted { .. }
        ));
        c
    };
    let mut on = run(true);
    let mut off = run(false);
    for r in 0..16 {
        assert_eq!(on.guest_reg(r), off.guest_reg(r), "x{r} diverged");
    }
    let old_iters = ITERS - PATCH_AT + 1;
    let new_iters = PATCH_AT - 1;
    assert_eq!(
        on.guest_reg(9),
        old_iters + 2 * new_iters,
        "carriers must reconcile at the SMC yield: the patched body takes \
         effect exactly one iteration after the write"
    );
    let s = on.stats();
    assert!(
        s.opt_promoted_slots >= 1,
        "the countdown/accumulator must have promoted"
    );
    assert!(
        on.cache.stats().invalidated_page >= 1,
        "the code-page write invalidated the looping region"
    );
}

#[test]
fn simbench_programs_terminate_on_both_systems() {
    for b in simbench::suite() {
        let (c, q) = bench::run_both_raw(b.name, &b.words, b.entry);
        assert!(c > 0 && q > 0, "{}", b.name);
    }
}

#[test]
fn captive_wins_where_the_paper_says_it_should() {
    // Memory-system micro-benchmarks: Captive's host-MMU path wins big.
    let hot = simbench::mem_hot(20_000);
    let (c, q) = bench::run_both_raw(hot.name, &hot.words, hot.entry);
    assert!(
        q as f64 / c as f64 > 2.0,
        "Mem-Hot speedup {}",
        q as f64 / c as f64
    );

    // Translation-speed micro-benchmarks: the baseline's simpler codegen wins
    // (the paper reports Captive 65–85% slower on Small/Large-Blocks).
    let blocks = simbench::small_blocks(800);
    let mut csys = Captive::new(CaptiveConfig::default());
    csys.load_program(0x1000, &blocks.words);
    csys.set_entry(blocks.entry);
    let _ = csys.run(10_000_000);
    assert!(
        csys.stats().translations >= 800,
        "every block translated once"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random straight-line integer programs produce identical guest register
    /// state under Captive and the QEMU-style baseline.
    #[test]
    fn random_programs_agree(ops in proptest::collection::vec((0u8..7, 0u32..8, 0u32..8, 0u32..8, 0u32..4096), 1..40)) {
        let mut a = Assembler::new();
        // Seed registers deterministically.
        for r in 0..8u32 {
            a.mov_imm64(r, 0x1111_1111u64.wrapping_mul(r as u64 + 1));
        }
        for (kind, rd, rn, rm, imm) in ops {
            let w = match kind {
                0 => asm::add(rd, rn, rm),
                1 => asm::sub(rd, rn, rm),
                2 => asm::and(rd, rn, rm),
                3 => asm::orr(rd, rn, rm),
                4 => asm::eor(rd, rn, rm),
                5 => asm::addi(rd, rn, imm),
                _ => asm::mul(rd, rn, rm),
            };
            a.push(w);
        }
        a.push(asm::hlt());
        let words = a.finish();
        let (mut c, mut q) = run_both(&words);
        for r in 0..8 {
            prop_assert_eq!(c.guest_reg(r), q.guest_reg(r), "x{} diverged", r);
        }
    }

    /// Random ALU/flag/branch sequences retire an identical final guest
    /// register file (flags included) with the LIR optimizer on and off.
    /// Conditional branches always skip exactly one instruction forward, so
    /// every program terminates; the mix of flag-setting ALU ops, compares,
    /// conditional selects and branches exercises dead-flag elimination,
    /// NZCV forwarding and the iterative DCE sweep.
    #[test]
    fn random_flag_programs_agree_with_optimizer_on_and_off(
        ops in proptest::collection::vec((0u8..8, 0u32..8, 0u32..8, 0u32..8, 0u8..4), 1..60)
    ) {
        use guest_aarch64::isa::Cond;
        let conds = [Cond::Eq, Cond::Ne, Cond::Hi, Cond::Lt];
        let mut a = Assembler::new();
        for r in 0..8u32 {
            a.mov_imm64(r, 0x0123_4567_89AB_CDEFu64.wrapping_mul(r as u64 + 3));
        }
        for (kind, rd, rn, rm, c) in ops {
            let cond = conds[c as usize];
            let w = match kind {
                0 => asm::adds(rd, rn, rm),
                1 => asm::subs(rd, rn, rm),
                2 => asm::ands(rd, rn, rm),
                3 => asm::cmp(rn, rm),
                4 => asm::csel(rd, rn, rm, cond),
                5 => asm::add(rd, rn, rm),
                6 => asm::eor(rd, rn, rm),
                // Forward conditional branch over exactly one instruction:
                // both legs rejoin, so termination is structural.
                _ => asm::bcond(cond, 8),
            };
            a.push(w);
        }
        // Two HLTs: a trailing branch may skip the first one.
        a.push(asm::hlt());
        a.push(asm::hlt());
        let words = a.finish();

        let run = |opt: bool| {
            let mut c = Captive::new(CaptiveConfig {
                opt,
                ..CaptiveConfig::default()
            });
            c.load_program(0x1000, &words);
            c.set_entry(0x1000);
            assert!(matches!(
                c.run(1_000_000),
                captive::RunExit::GuestHalted { .. }
            ));
            c
        };
        let mut on = run(true);
        let mut off = run(false);
        for r in 0..8 {
            prop_assert_eq!(on.guest_reg(r), off.guest_reg(r), "x{} diverged", r);
        }
        prop_assert_eq!(on.guest_nzcv(), off.guest_nzcv(), "NZCV diverged");
    }
}

/// The interrupt storm must deliver its exact IRQ count on every engine —
/// Captive preempting hot looping regions at back-edge boundaries, the
/// baseline at block boundaries — and leave identical architectural state.
#[test]
fn interrupt_storm_agrees_across_engines_and_preempts_regions() {
    let w = workloads::interrupt_storm(25, 3_000);
    let (mut c, mut q) = run_both(&w.words);
    for r in 0..31 {
        assert_eq!(c.guest_reg(r), q.guest_reg(r), "x{r} diverged");
    }
    assert_eq!(c.guest_nzcv(), q.guest_nzcv(), "NZCV diverged");
    assert_eq!(c.guest_reg(20), 25, "handler counted every delivery");
    let cs = c.stats();
    let qs = q.stats();
    assert_eq!(cs.irqs_delivered, 25);
    assert_eq!(qs.irqs_delivered, 25);
    assert_eq!(cs.timer_irqs, 25, "all storm IRQs come from the timer");
    // The storm must not stop Captive from forming and re-entering its
    // translation units: the spin loop is hot enough to become a region.
    assert!(
        cs.regions_formed + cs.loop_regions_formed > 0,
        "the spin loop should still form a region under IRQ pressure"
    );
}

/// A one-shot timer tick must preempt the countdown loop at a precise PC:
/// the handler's captured ELR is exactly the loop header, even when the
/// loop is running inside a closed looping region.
#[test]
fn timer_tick_preempts_a_hot_loop_at_a_precise_pc() {
    let w = workloads::timer_tick(20_000, 200_000);
    let (mut c, mut q) = run_both(&w.words);
    let loop_va = workloads::timer_tick_loop_va(20_000, 200_000);
    assert_eq!(c.guest_reg(20), 1, "exactly one tick");
    assert_eq!(
        c.guest_reg(10),
        loop_va,
        "captive: ELR must be the loop header, not some mid-region PC"
    );
    assert_eq!(q.guest_reg(10), loop_va, "baseline: same precise ELR");
    assert_eq!(c.guest_reg(1), 0, "the countdown still ran to completion");
    for r in 0..31 {
        assert_eq!(c.guest_reg(r), q.guest_reg(r), "x{r} diverged");
    }
    let cs = c.stats();
    assert!(
        cs.loop_regions_formed > 0,
        "the countdown loop should close as a looping region"
    );
    assert_eq!(cs.timer_irqs, 1);
}

/// With the code cache bounded far below the working set, eviction churn
/// must degrade performance only — every integer kernel still produces the
/// baseline's architectural results, and the bound demonstrably bites.
#[test]
fn bounded_cache_preserves_equivalence_on_all_integer_kernels() {
    let mut total_evictions = 0;
    for w in workloads::spec_int(Scale(1)) {
        let mut c = Captive::new(CaptiveConfig {
            cache_capacity_regions: Some(3),
            ..CaptiveConfig::default()
        });
        c.load_program(0x1000, &w.words);
        c.set_entry(w.entry);
        assert!(
            matches!(c.run(50_000_000), captive::RunExit::GuestHalted { .. }),
            "{}",
            w.name
        );
        let mut q = QemuRef::new(32 * 1024 * 1024);
        q.load_program(0x1000, &w.words);
        q.set_entry(w.entry);
        assert!(matches!(
            q.run(50_000_000),
            qemu_ref::RunExit::GuestHalted { .. }
        ));
        for r in 0..16 {
            assert_eq!(c.guest_reg(r), q.guest_reg(r), "{}: x{r} diverged", w.name);
        }
        let s = c.stats();
        assert!(
            s.regions_live <= 3,
            "{}: occupancy {} exceeds the bound",
            w.name,
            s.regions_live
        );
        total_evictions += s.capacity_evictions;
    }
    assert!(
        total_evictions > 0,
        "a 3-region cache must evict somewhere across the integer suite"
    );
}
