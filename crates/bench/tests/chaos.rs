//! Deterministic chaos tests: the same fault-injection seed must produce
//! byte-identical final architectural state on every engine configuration,
//! and repeated runs of one configuration must reproduce every counter.
//!
//! The pinned seeds below run in CI on every push; the proptest widens the
//! seed space locally.

use bench::chaos::{
    chaos_captive_configs, chaos_plan, run_chaos_captive, run_chaos_qemu, ChaosOutcome,
};
use proptest::prelude::*;

/// Seeds pinned in CI: chosen arbitrarily, then frozen so a regression on
/// any of them reproduces on every machine.
const PINNED_SEEDS: [u64; 4] = [0x5EED_0001, 0xDEAD_BEEF, 0xCAFE_F00D, 42];

/// Runs one seed on every Captive configuration plus the QEMU baseline and
/// asserts a single architectural outcome.
fn assert_one_outcome(seed: u64) -> ChaosOutcome {
    let plan = chaos_plan(seed);
    let (reference, _) = run_chaos_qemu(&plan);
    // The guest's own books must balance: x20 counted one IRQ per delivery
    // (the scheduled lines plus exactly one one-shot timer fire plus one per
    // virtio completion), and x21 counted one synchronous exception per
    // injected faulting op.
    assert_eq!(
        reference.regs[20],
        plan.schedule.len() as u64 + 1 + plan.virtio_submits,
        "seed {seed:#x}: IRQ deliveries"
    );
    assert_eq!(reference.regs[20], reference.irqs_delivered);
    assert_eq!(
        reference.regs[21], plan.sync_ops as u64,
        "seed {seed:#x}: synchronous exceptions"
    );
    assert_eq!(
        reference.completions, plan.virtio_submits,
        "seed {seed:#x}: every submitted request retires"
    );
    for (name, cfg) in chaos_captive_configs() {
        let (outcome, counters) = run_chaos_captive(&plan, cfg);
        assert_eq!(
            outcome, reference,
            "seed {seed:#x}: {name} diverged from the QEMU baseline"
        );
        // The forced final identity read DMAs over the live used.idx wait
        // loop, so the default engine must have walked its external
        // invalidation path (the tiny cache may legitimately have evicted
        // the page's translations first, so only the full-cache configs are
        // held to it).
        if name == "captive" {
            let ext = counters
                .iter()
                .find(|(n, _)| *n == "external_invalidations")
                .map(|&(_, v)| v)
                .unwrap();
            assert!(
                ext > 0,
                "seed {seed:#x}: device DMA onto live code must invalidate"
            );
        }
    }
    reference
}

#[test]
fn pinned_seed_0() {
    assert_one_outcome(PINNED_SEEDS[0]);
}

#[test]
fn pinned_seed_1() {
    assert_one_outcome(PINNED_SEEDS[1]);
}

#[test]
fn pinned_seed_2() {
    assert_one_outcome(PINNED_SEEDS[2]);
}

#[test]
fn pinned_seed_3() {
    assert_one_outcome(PINNED_SEEDS[3]);
}

#[test]
fn same_seed_reproduces_every_counter() {
    let plan = chaos_plan(PINNED_SEEDS[0]);
    for (name, cfg) in chaos_captive_configs() {
        let (out_a, counters_a) = run_chaos_captive(&plan, cfg.clone());
        let (out_b, counters_b) = run_chaos_captive(&plan, cfg);
        assert_eq!(out_a, out_b, "{name}: architectural state");
        assert_eq!(counters_a, counters_b, "{name}: run counters");
    }
    let (qa, qca) = run_chaos_qemu(&plan);
    let (qb, qcb) = run_chaos_qemu(&plan);
    assert_eq!(qa, qb);
    assert_eq!(qca, qcb);
}

#[test]
fn worker_queue_flood_is_deterministic_and_mode_blind() {
    // Many loop heads publish tier-1 requests in the same outer pass and all
    // hit their install points in the next: with a single worker the queue
    // backs up and results arrive out of order (the parked-result path).
    // Architectural state and modeled cycles must match the synchronous
    // engine exactly, and a tiered rerun must reproduce every counter.
    let w = workloads::loop_flood(12, 9, 30);
    let run = |tiered: bool, workers: usize| {
        let mut c = captive::Captive::new(captive::CaptiveConfig {
            tiered,
            tier_workers: workers,
            ..captive::CaptiveConfig::default()
        });
        c.load_program(workloads::CODE_BASE, &w.words);
        c.set_entry(w.entry);
        let exit = c.run(bench::BLOCK_BUDGET);
        assert!(
            matches!(exit, captive::RunExit::GuestHalted { .. }),
            "flood: unexpected exit {exit:?}"
        );
        // Every engine must count all 12 loops x 9 trips x 30 passes.
        assert_eq!(c.guest_reg(9), 12 * 9 * 30, "flood increment count");
        c.stats()
    };
    let flooded = run(true, 1);
    let flooded_again = run(true, 1);
    let sync = run(false, 0);
    assert!(
        flooded.tier1_requests >= 12,
        "every loop head publishes: {} requests",
        flooded.tier1_requests
    );
    assert!(
        flooded.regions_installed_async >= 10,
        "the flood drains through the worker: {} async installs",
        flooded.regions_installed_async
    );
    // Workers trace from branch heats frozen at publish time while the
    // synchronous former sees live heats at fire time, so in a dense
    // multi-head program the chosen region shapes (and therefore modeled
    // cost) may differ slightly — loop promotion widens the stakes, since a
    // differently-shaped region also promotes a different carrier set — but
    // never by more than a few percent, and the architectural result (x9
    // above) is identical in every mode.
    assert!(
        flooded.cycles <= sync.cycles + sync.cycles * 3 / 100,
        "tiered cost stays within 3% of synchronous: {} vs {}",
        flooded.cycles,
        sync.cycles
    );
    assert_eq!(flooded.regions_formed, sync.regions_formed);
    assert_eq!(flooded.cycles, flooded_again.cycles);
    assert_eq!(flooded.tier1_requests, flooded_again.tier1_requests);
    assert_eq!(
        flooded.regions_installed_async,
        flooded_again.regions_installed_async
    );
    assert_eq!(flooded.stale_discards, flooded_again.stale_discards);
    assert_eq!(flooded.reuse_hits, flooded_again.reuse_hits);
}

#[test]
fn tiny_cache_evicts_but_still_agrees() {
    // The tiny-cache configuration is only a meaningful degradation test if
    // the bound actually bites during the chaos run.
    let plan = chaos_plan(PINNED_SEEDS[1]);
    let (_, counters) = run_chaos_captive(
        &plan,
        captive::CaptiveConfig {
            cache_capacity_regions: Some(4),
            ..captive::CaptiveConfig::default()
        },
    );
    let evictions = counters
        .iter()
        .find(|(n, _)| *n == "capacity_evictions")
        .map(|&(_, v)| v)
        .unwrap();
    assert!(
        evictions > 0,
        "a 4-region cache must evict under the chaos working set"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Adversarial-schedule sweep: any seed's injected SMC stores, faults
    /// and interrupt schedule must leave all engines in one final state.
    #[test]
    fn random_seeds_agree_across_engines(seed in 0u64..u64::MAX) {
        let plan = chaos_plan(seed);
        let (reference, _) = run_chaos_qemu(&plan);
        for (name, cfg) in chaos_captive_configs() {
            let (outcome, _) = run_chaos_captive(&plan, cfg);
            prop_assert_eq!(
                &outcome,
                &reference,
                "seed {:#x}: {} diverged",
                seed,
                name
            );
        }
    }
}
