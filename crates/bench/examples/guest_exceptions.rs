//! Demonstrates the full-system side of the hypervisor: a guest "kernel"
//! installs an exception vector, takes SVCs from "user" code, services them
//! at EL1 and returns with ERET — all running as translated code inside the
//! host VM, with the guest's exception level tracked in the host's
//! protection ring.
//!
//! Run with: `cargo run -p bench --example guest_exceptions`

use captive::{Captive, CaptiveConfig};
use guest_aarch64::asm::{self, Assembler};
use guest_aarch64::isa::Cond;
use guest_aarch64::SysReg;

fn main() {
    // Main flow: set VBAR, then issue 5 SVCs in a loop; each SVC increments
    // x20 in the handler.  Finally exit with x20 as the code.
    let mut a = Assembler::new();
    a.adr_to(1, "vector");
    a.push(asm::msr(SysReg::Vbar as u32, 1));
    a.push(asm::movz(20, 0, 0));
    a.push(asm::movz(21, 5, 0));
    a.label("loop");
    a.push(asm::svc(7));
    a.push(asm::subi(21, 21, 1));
    a.cbnz_to(21, "loop");
    a.push(asm::orr(0, 20, 20));
    a.push(asm::svc(captive::runtime::SVC_EXIT));
    a.push(asm::nop());
    a.label("vector");
    // EL1 handler: check the ESR class is SVC, bump x20, return.
    a.push(asm::mrs(9, SysReg::Esr as u32));
    a.push(asm::lsri(9, 9, 26));
    a.push(asm::cmpi(9, 0x15));
    a.bcond_to(Cond::Ne, "bad");
    a.push(asm::addi(20, 20, 1));
    a.push(asm::eret());
    a.label("bad");
    a.push(asm::hlt());
    let program = a.finish();

    let mut vm = Captive::new(CaptiveConfig::default());
    vm.load_program(0x1000, &program);
    vm.set_entry(0x1000);
    let exit = vm.run(1_000_000);
    println!("guest exit: {exit:?} (expected code 5 after five serviced SVCs)");
    println!(
        "guest exceptions delivered: {}",
        vm.stats().guest_exceptions
    );
    assert_eq!(exit, captive::RunExit::GuestHalted { code: 5 });
}
