//! Quickstart: assemble a tiny guest program, boot it under the Captive
//! hypervisor, and read back the results.
//!
//! Run with: `cargo run -p bench --example quickstart`

use captive::{Captive, CaptiveConfig, RunExit};
use guest_aarch64::asm::{self, Assembler};

fn main() {
    // Guest program: print "hello from the guest\n" through the hypervisor
    // console hypercall, compute 6 * 7, then exit with that code.
    let mut a = Assembler::new();
    for ch in b"hello from the guest\n" {
        a.push(asm::movz(0, *ch as u32, 0));
        a.push(asm::svc(captive::runtime::SVC_PUTCHAR));
    }
    a.push(asm::movz(1, 6, 0));
    a.push(asm::movz(2, 7, 0));
    a.push(asm::mul(0, 1, 2));
    a.push(asm::svc(captive::runtime::SVC_EXIT));
    let program = a.finish();

    let mut vm = Captive::new(CaptiveConfig::default());
    vm.load_program(0x1000, &program);
    vm.set_entry(0x1000);
    let exit = vm.run(1_000_000);

    print!("{}", String::from_utf8_lossy(vm.console()));
    println!("guest exit: {exit:?}");
    let stats = vm.stats();
    println!(
        "executed {} guest instructions in {} simulated host cycles ({} translations)",
        stats.guest_insns, stats.cycles, stats.translations
    );
    assert_eq!(exit, RunExit::GuestHalted { code: 42 });
}
