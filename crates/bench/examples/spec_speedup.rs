//! Runs one SPEC-like integer workload and one FP workload under both
//! Captive and the QEMU-style baseline, printing the speedups — a miniature
//! version of the paper's Figures 17 and 18.
//!
//! Run with: `cargo run --release -p bench --example spec_speedup`

use workloads::Scale;

fn main() {
    let mcf = &workloads::spec_int(Scale(1))[3]; // 429.mcf: pointer chasing
    let sphinx = &workloads::spec_fp(Scale(1))[0]; // 482.sphinx3: FP stencil

    for w in [mcf, sphinx] {
        let captive = bench::run_captive(w);
        let qemu = bench::run_qemu(w);
        println!(
            "{:<14} captive: {:>12} cycles   qemu-style: {:>12} cycles   speedup: {:.2}x",
            w.name,
            captive.cycles,
            qemu.cycles,
            qemu.cycles as f64 / captive.cycles as f64
        );
    }
    println!(
        "(integer speedups come from the MMU-backed memory path; FP speedups add host-FPU mapping)"
    );
}
