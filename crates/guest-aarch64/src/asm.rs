//! Assembler for the ARMv8-lite guest ISA.
//!
//! Used by the workload, SimBench and example crates to build guest programs.
//! Provides raw encoders (one function per instruction) and an [`Assembler`]
//! with labels and branch fixups.

use crate::isa::Cond;
use std::collections::HashMap;

fn r(v: u32) -> u32 {
    v & 0x1F
}

fn op(o: u32) -> u32 {
    o << 25
}

/// `nop`
pub fn nop() -> u32 {
    op(0x00)
}
/// `hlt` — stops the guest machine (bare-metal test programs).
pub fn hlt() -> u32 {
    op(0x01)
}
/// `movz xd, #imm16, lsl #(16*hw)`
pub fn movz(rd: u32, imm16: u32, hw: u32) -> u32 {
    op(0x02) | ((hw & 3) << 21) | ((imm16 & 0xFFFF) << 5) | r(rd)
}
/// `movk xd, #imm16, lsl #(16*hw)`
pub fn movk(rd: u32, imm16: u32, hw: u32) -> u32 {
    op(0x03) | ((hw & 3) << 21) | ((imm16 & 0xFFFF) << 5) | r(rd)
}
/// `add xd, xn, #imm12`
pub fn addi(rd: u32, rn: u32, imm: u32) -> u32 {
    op(0x05) | ((imm & 0xFFF) << 10) | (r(rn) << 5) | r(rd)
}
/// `sub xd, xn, #imm12`
pub fn subi(rd: u32, rn: u32, imm: u32) -> u32 {
    op(0x06) | ((imm & 0xFFF) << 10) | (r(rn) << 5) | r(rd)
}
/// `subs xd, xn, #imm12` (`cmp xn, #imm` when rd = 31)
pub fn subis(rd: u32, rn: u32, imm: u32) -> u32 {
    op(0x07) | ((imm & 0xFFF) << 10) | (r(rn) << 5) | r(rd)
}
/// `cmp xn, #imm12`
pub fn cmpi(rn: u32, imm: u32) -> u32 {
    subis(31, rn, imm)
}
/// `add xd, xn, xm`
pub fn add(rd: u32, rn: u32, rm: u32) -> u32 {
    op(0x08) | (r(rm) << 10) | (r(rn) << 5) | r(rd)
}
/// `sub xd, xn, xm`
pub fn sub(rd: u32, rn: u32, rm: u32) -> u32 {
    op(0x09) | (r(rm) << 10) | (r(rn) << 5) | r(rd)
}
/// `adds xd, xn, xm`
pub fn adds(rd: u32, rn: u32, rm: u32) -> u32 {
    op(0x0A) | (r(rm) << 10) | (r(rn) << 5) | r(rd)
}
/// `subs xd, xn, xm` (`cmp xn, xm` when rd = 31)
pub fn subs(rd: u32, rn: u32, rm: u32) -> u32 {
    op(0x0B) | (r(rm) << 10) | (r(rn) << 5) | r(rd)
}
/// `cmp xn, xm`
pub fn cmp(rn: u32, rm: u32) -> u32 {
    subs(31, rn, rm)
}
/// `and xd, xn, xm`
pub fn and(rd: u32, rn: u32, rm: u32) -> u32 {
    op(0x0C) | (r(rm) << 10) | (r(rn) << 5) | r(rd)
}
/// `orr xd, xn, xm`
pub fn orr(rd: u32, rn: u32, rm: u32) -> u32 {
    op(0x0D) | (r(rm) << 10) | (r(rn) << 5) | r(rd)
}
/// `eor xd, xn, xm`
pub fn eor(rd: u32, rn: u32, rm: u32) -> u32 {
    op(0x0E) | (r(rm) << 10) | (r(rn) << 5) | r(rd)
}
/// `ands xd, xn, xm`
pub fn ands(rd: u32, rn: u32, rm: u32) -> u32 {
    op(0x0F) | (r(rm) << 10) | (r(rn) << 5) | r(rd)
}
/// `mul xd, xn, xm`
pub fn mul(rd: u32, rn: u32, rm: u32) -> u32 {
    op(0x10) | (r(rm) << 10) | (r(rn) << 5) | r(rd)
}
/// `udiv xd, xn, xm`
pub fn udiv(rd: u32, rn: u32, rm: u32) -> u32 {
    op(0x11) | (r(rm) << 10) | (r(rn) << 5) | r(rd)
}
/// `sdiv xd, xn, xm`
pub fn sdiv(rd: u32, rn: u32, rm: u32) -> u32 {
    op(0x12) | (r(rm) << 10) | (r(rn) << 5) | r(rd)
}
/// `umulh xd, xn, xm`
pub fn umulh(rd: u32, rn: u32, rm: u32) -> u32 {
    op(0x13) | (r(rm) << 10) | (r(rn) << 5) | r(rd)
}
/// `smulh xd, xn, xm`
pub fn smulh(rd: u32, rn: u32, rm: u32) -> u32 {
    op(0x14) | (r(rm) << 10) | (r(rn) << 5) | r(rd)
}
/// `lsl xd, xn, xm`
pub fn lslv(rd: u32, rn: u32, rm: u32) -> u32 {
    op(0x15) | (r(rm) << 10) | (r(rn) << 5) | r(rd)
}
/// `lsr xd, xn, xm`
pub fn lsrv(rd: u32, rn: u32, rm: u32) -> u32 {
    op(0x16) | (r(rm) << 10) | (r(rn) << 5) | r(rd)
}
/// `asr xd, xn, xm`
pub fn asrv(rd: u32, rn: u32, rm: u32) -> u32 {
    op(0x17) | (r(rm) << 10) | (r(rn) << 5) | r(rd)
}
/// `lsl xd, xn, #imm6`
pub fn lsli(rd: u32, rn: u32, imm: u32) -> u32 {
    op(0x18) | ((imm & 0x3F) << 10) | (r(rn) << 5) | r(rd)
}
/// `lsr xd, xn, #imm6`
pub fn lsri(rd: u32, rn: u32, imm: u32) -> u32 {
    op(0x19) | ((imm & 0x3F) << 10) | (r(rn) << 5) | r(rd)
}
/// `asr xd, xn, #imm6`
pub fn asri(rd: u32, rn: u32, imm: u32) -> u32 {
    op(0x1A) | ((imm & 0x3F) << 10) | (r(rn) << 5) | r(rd)
}
/// `ldr xt, [xn, #imm12]`
pub fn ldr(rt: u32, rn: u32, imm: u32) -> u32 {
    op(0x1B) | ((imm & 0xFFF) << 10) | (r(rn) << 5) | r(rt)
}
/// `str xt, [xn, #imm12]`
pub fn str(rt: u32, rn: u32, imm: u32) -> u32 {
    op(0x1C) | ((imm & 0xFFF) << 10) | (r(rn) << 5) | r(rt)
}
/// `ldr wt, [xn, #imm12]`
pub fn ldrw(rt: u32, rn: u32, imm: u32) -> u32 {
    op(0x1D) | ((imm & 0xFFF) << 10) | (r(rn) << 5) | r(rt)
}
/// `str wt, [xn, #imm12]`
pub fn strw(rt: u32, rn: u32, imm: u32) -> u32 {
    op(0x1E) | ((imm & 0xFFF) << 10) | (r(rn) << 5) | r(rt)
}
/// `ldrb wt, [xn, #imm12]`
pub fn ldrb(rt: u32, rn: u32, imm: u32) -> u32 {
    op(0x1F) | ((imm & 0xFFF) << 10) | (r(rn) << 5) | r(rt)
}
/// `strb wt, [xn, #imm12]`
pub fn strb(rt: u32, rn: u32, imm: u32) -> u32 {
    op(0x20) | ((imm & 0xFFF) << 10) | (r(rn) << 5) | r(rt)
}
/// `ldrh wt, [xn, #imm12]`
pub fn ldrh(rt: u32, rn: u32, imm: u32) -> u32 {
    op(0x21) | ((imm & 0xFFF) << 10) | (r(rn) << 5) | r(rt)
}
/// `strh wt, [xn, #imm12]`
pub fn strh(rt: u32, rn: u32, imm: u32) -> u32 {
    op(0x22) | ((imm & 0xFFF) << 10) | (r(rn) << 5) | r(rt)
}
/// `ldrsw xt, [xn, #imm12]`
pub fn ldrsw(rt: u32, rn: u32, imm: u32) -> u32 {
    op(0x23) | ((imm & 0xFFF) << 10) | (r(rn) << 5) | r(rt)
}
/// `ldr xt, [xn, xm]`
pub fn ldr_reg(rt: u32, rn: u32, rm: u32) -> u32 {
    op(0x24) | (r(rm) << 10) | (r(rn) << 5) | r(rt)
}
/// `str xt, [xn, xm]`
pub fn str_reg(rt: u32, rn: u32, rm: u32) -> u32 {
    op(0x25) | (r(rm) << 10) | (r(rn) << 5) | r(rt)
}
/// `ldp xt, xt2, [xn, #imm]` (imm is a signed multiple of 8)
pub fn ldp(rt: u32, rt2: u32, rn: u32, imm: i32) -> u32 {
    let scaled = ((imm / 8) as u32) & 0x7F;
    op(0x26) | (scaled << 15) | (r(rt2) << 10) | (r(rn) << 5) | r(rt)
}
/// `stp xt, xt2, [xn, #imm]`
pub fn stp(rt: u32, rt2: u32, rn: u32, imm: i32) -> u32 {
    let scaled = ((imm / 8) as u32) & 0x7F;
    op(0x27) | (scaled << 15) | (r(rt2) << 10) | (r(rn) << 5) | r(rt)
}
/// `b #offset` (byte offset, multiple of 4)
pub fn b(offset: i64) -> u32 {
    op(0x28) | ((((offset / 4) as u32) & 0xFF_FFFF) << 1)
}
/// `bl #offset`
pub fn bl(offset: i64) -> u32 {
    op(0x29) | ((((offset / 4) as u32) & 0xFF_FFFF) << 1)
}
/// `b.cond #offset`
pub fn bcond(cond: Cond, offset: i64) -> u32 {
    op(0x2A) | ((((offset / 4) as u32) & 0x7FFFF) << 5) | (cond as u32)
}
/// `cbz xt, #offset`
pub fn cbz(rt: u32, offset: i64) -> u32 {
    op(0x2B) | ((((offset / 4) as u32) & 0x7FFFF) << 5) | r(rt)
}
/// `cbnz xt, #offset`
pub fn cbnz(rt: u32, offset: i64) -> u32 {
    op(0x2C) | ((((offset / 4) as u32) & 0x7FFFF) << 5) | r(rt)
}
/// `br xn`
pub fn br(rn: u32) -> u32 {
    op(0x2D) | (r(rn) << 5)
}
/// `blr xn`
pub fn blr(rn: u32) -> u32 {
    op(0x2E) | (r(rn) << 5)
}
/// `ret` (returns through X30)
pub fn ret() -> u32 {
    op(0x2F) | (30 << 5)
}
/// `svc #imm16`
pub fn svc(imm: u32) -> u32 {
    op(0x30) | ((imm & 0xFFFF) << 5)
}
/// `mrs xt, <sysreg>`
pub fn mrs(rt: u32, sysreg: u32) -> u32 {
    op(0x31) | ((sysreg & 0x3FF) << 5) | r(rt)
}
/// `msr <sysreg>, xt`
pub fn msr(sysreg: u32, rt: u32) -> u32 {
    op(0x32) | ((sysreg & 0x3FF) << 5) | r(rt)
}
/// `tlbi vmalle1`
pub fn tlbi() -> u32 {
    op(0x33)
}
/// `eret`
pub fn eret() -> u32 {
    op(0x34)
}
/// `fmov dd, #imm8` (A64 8-bit FP immediate encoding)
pub fn fmov_imm(vd: u32, imm8: u32) -> u32 {
    op(0x35) | ((imm8 & 0xFF) << 5) | r(vd)
}
/// `fadd dd, dn, dm`
pub fn fadd(vd: u32, vn: u32, vm: u32) -> u32 {
    op(0x36) | (r(vm) << 10) | (r(vn) << 5) | r(vd)
}
/// `fsub dd, dn, dm`
pub fn fsub(vd: u32, vn: u32, vm: u32) -> u32 {
    op(0x37) | (r(vm) << 10) | (r(vn) << 5) | r(vd)
}
/// `fmul dd, dn, dm`
pub fn fmul(vd: u32, vn: u32, vm: u32) -> u32 {
    op(0x38) | (r(vm) << 10) | (r(vn) << 5) | r(vd)
}
/// `fdiv dd, dn, dm`
pub fn fdiv(vd: u32, vn: u32, vm: u32) -> u32 {
    op(0x39) | (r(vm) << 10) | (r(vn) << 5) | r(vd)
}
/// `fsqrt dd, dn`
pub fn fsqrt(vd: u32, vn: u32) -> u32 {
    op(0x3A) | (r(vn) << 5) | r(vd)
}
/// `fcmp dn, dm`
pub fn fcmp(vn: u32, vm: u32) -> u32 {
    op(0x3B) | (r(vm) << 10) | (r(vn) << 5)
}
/// `fmov xd, dn`
pub fn fmov_to_gpr(rd: u32, vn: u32) -> u32 {
    op(0x3C) | (r(vn) << 5) | r(rd)
}
/// `fmov dd, xn`
pub fn fmov_from_gpr(vd: u32, rn: u32) -> u32 {
    op(0x3D) | (r(rn) << 5) | r(vd)
}
/// `scvtf dd, xn`
pub fn scvtf(vd: u32, rn: u32) -> u32 {
    op(0x3E) | (r(rn) << 5) | r(vd)
}
/// `fcvtzs xd, dn`
pub fn fcvtzs(rd: u32, vn: u32) -> u32 {
    op(0x3F) | (r(vn) << 5) | r(rd)
}
/// `fmadd dd, dn, dm, da`
pub fn fmadd(vd: u32, vn: u32, vm: u32, va: u32) -> u32 {
    op(0x40) | (r(va) << 15) | (r(vm) << 10) | (r(vn) << 5) | r(vd)
}
/// `ldr dd, [xn, #imm12]`
pub fn ldr_d(vt: u32, rn: u32, imm: u32) -> u32 {
    op(0x41) | ((imm & 0xFFF) << 10) | (r(rn) << 5) | r(vt)
}
/// `str dd, [xn, #imm12]`
pub fn str_d(vt: u32, rn: u32, imm: u32) -> u32 {
    op(0x42) | ((imm & 0xFFF) << 10) | (r(rn) << 5) | r(vt)
}
/// `fadd vd.2d, vn.2d, vm.2d`
pub fn vadd2d(vd: u32, vn: u32, vm: u32) -> u32 {
    op(0x43) | (r(vm) << 10) | (r(vn) << 5) | r(vd)
}
/// `fmul vd.2d, vn.2d, vm.2d`
pub fn vmul2d(vd: u32, vn: u32, vm: u32) -> u32 {
    op(0x44) | (r(vm) << 10) | (r(vn) << 5) | r(vd)
}
/// `ldr qd, [xn, #imm12]`
pub fn ldr_q(vt: u32, rn: u32, imm: u32) -> u32 {
    op(0x45) | ((imm & 0xFFF) << 10) | (r(rn) << 5) | r(vt)
}
/// `str qd, [xn, #imm12]`
pub fn str_q(vt: u32, rn: u32, imm: u32) -> u32 {
    op(0x46) | ((imm & 0xFFF) << 10) | (r(rn) << 5) | r(vt)
}
/// `dup vd.2d, xn`
pub fn dup2d(vd: u32, rn: u32) -> u32 {
    op(0x47) | (r(rn) << 5) | r(vd)
}
/// `csel xd, xn, xm, cond`
pub fn csel(rd: u32, rn: u32, rm: u32, cond: Cond) -> u32 {
    op(0x48) | ((cond as u32) << 15) | (r(rm) << 10) | (r(rn) << 5) | r(rd)
}
/// `adr xd, #offset`
pub fn adr(rd: u32, offset: i64) -> u32 {
    op(0x49) | ((((offset / 4) as u32) & 0x7FFFF) << 5) | r(rd)
}

/// Kinds of label references that need fixing up.
#[derive(Debug, Clone)]
enum Fixup {
    B {
        at: usize,
        label: String,
    },
    Bl {
        at: usize,
        label: String,
    },
    BCond {
        at: usize,
        label: String,
        cond: Cond,
    },
    Cbz {
        at: usize,
        label: String,
        rt: u32,
    },
    Cbnz {
        at: usize,
        label: String,
        rt: u32,
    },
    Adr {
        at: usize,
        label: String,
        rd: u32,
    },
}

/// A small two-pass assembler with labels.
#[derive(Debug, Default)]
pub struct Assembler {
    words: Vec<u32>,
    labels: HashMap<String, usize>,
    fixups: Vec<Fixup>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a raw instruction word.
    pub fn push(&mut self, word: u32) -> &mut Self {
        self.words.push(word);
        self
    }

    /// Appends several raw instruction words.
    pub fn extend(&mut self, words: &[u32]) -> &mut Self {
        self.words.extend_from_slice(words);
        self
    }

    /// Defines a label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        self.labels.insert(name.to_string(), self.words.len());
        self
    }

    /// Current position, in instructions.
    pub fn here(&self) -> usize {
        self.words.len()
    }

    /// Emits `movz`/`movk` sequence loading an arbitrary 64-bit immediate.
    pub fn mov_imm64(&mut self, rd: u32, value: u64) -> &mut Self {
        self.push(movz(rd, (value & 0xFFFF) as u32, 0));
        for hw in 1..4u32 {
            let part = ((value >> (16 * hw)) & 0xFFFF) as u32;
            if part != 0 {
                self.push(movk(rd, part, hw));
            }
        }
        self
    }

    /// Emits a branch to a label.
    pub fn b_to(&mut self, label: &str) -> &mut Self {
        self.fixups.push(Fixup::B {
            at: self.words.len(),
            label: label.to_string(),
        });
        self.push(nop())
    }

    /// Emits a branch-and-link to a label.
    pub fn bl_to(&mut self, label: &str) -> &mut Self {
        self.fixups.push(Fixup::Bl {
            at: self.words.len(),
            label: label.to_string(),
        });
        self.push(nop())
    }

    /// Emits a conditional branch to a label.
    pub fn bcond_to(&mut self, cond: Cond, label: &str) -> &mut Self {
        self.fixups.push(Fixup::BCond {
            at: self.words.len(),
            label: label.to_string(),
            cond,
        });
        self.push(nop())
    }

    /// Emits a compare-and-branch-if-zero to a label.
    pub fn cbz_to(&mut self, rt: u32, label: &str) -> &mut Self {
        self.fixups.push(Fixup::Cbz {
            at: self.words.len(),
            label: label.to_string(),
            rt,
        });
        self.push(nop())
    }

    /// Emits a compare-and-branch-if-non-zero to a label.
    pub fn cbnz_to(&mut self, rt: u32, label: &str) -> &mut Self {
        self.fixups.push(Fixup::Cbnz {
            at: self.words.len(),
            label: label.to_string(),
            rt,
        });
        self.push(nop())
    }

    /// Emits a PC-relative address of a label into a register.
    pub fn adr_to(&mut self, rd: u32, label: &str) -> &mut Self {
        self.fixups.push(Fixup::Adr {
            at: self.words.len(),
            label: label.to_string(),
            rd,
        });
        self.push(nop())
    }

    /// Resolves fixups and returns the final instruction words.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never defined.
    pub fn finish(mut self) -> Vec<u32> {
        for fix in std::mem::take(&mut self.fixups) {
            let (at, label) = match &fix {
                Fixup::B { at, label }
                | Fixup::Bl { at, label }
                | Fixup::BCond { at, label, .. }
                | Fixup::Cbz { at, label, .. }
                | Fixup::Cbnz { at, label, .. }
                | Fixup::Adr { at, label, .. } => (*at, label.clone()),
            };
            let target = *self
                .labels
                .get(&label)
                .unwrap_or_else(|| panic!("undefined label {label}"));
            let offset = (target as i64 - at as i64) * 4;
            self.words[at] = match fix {
                Fixup::B { .. } => b(offset),
                Fixup::Bl { .. } => bl(offset),
                Fixup::BCond { cond, .. } => bcond(cond, offset),
                Fixup::Cbz { rt, .. } => cbz(rt, offset),
                Fixup::Cbnz { rt, .. } => cbnz(rt, offset),
                Fixup::Adr { rd, .. } => adr(rd, offset),
            };
        }
        self.words
    }

    /// Converts the program to little-endian bytes (without resolving labels
    /// — call [`Assembler::finish`] first if labels are used).
    pub fn to_bytes(words: &[u32]) -> Vec<u8> {
        words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{decode, AccessSize, AluKind, Insn};

    #[test]
    fn encode_decode_roundtrip_for_representative_instructions() {
        let cases = vec![
            (
                add(1, 2, 3),
                Insn::AluReg {
                    kind: AluKind::Add,
                    rd: 1,
                    rn: 2,
                    rm: 3,
                    set_flags: false,
                },
            ),
            (
                subs(4, 5, 6),
                Insn::AluReg {
                    kind: AluKind::Sub,
                    rd: 4,
                    rn: 5,
                    rm: 6,
                    set_flags: true,
                },
            ),
            (
                addi(1, 2, 100),
                Insn::AluImm {
                    kind: AluKind::Add,
                    rd: 1,
                    rn: 2,
                    imm: 100,
                    set_flags: false,
                },
            ),
            (
                movz(7, 0xBEEF, 1),
                Insn::Movz {
                    rd: 7,
                    imm16: 0xBEEF,
                    hw: 1,
                },
            ),
            (
                ldr(3, 4, 64),
                Insn::Load {
                    rt: 3,
                    rn: 4,
                    imm: 64,
                    size: AccessSize::Double,
                    sext: false,
                },
            ),
            (
                strb(3, 4, 7),
                Insn::Store {
                    rt: 3,
                    rn: 4,
                    imm: 7,
                    size: AccessSize::Byte,
                },
            ),
            (
                ldp(1, 2, 31, -16),
                Insn::Ldp {
                    rt: 1,
                    rt2: 2,
                    rn: 31,
                    imm: -16,
                },
            ),
            (
                fmul(0, 1, 2),
                Insn::FpReg {
                    kind: crate::isa::FpKind::Mul,
                    vd: 0,
                    vn: 1,
                    vm: 2,
                },
            ),
            (svc(42), Insn::Svc { imm: 42 }),
            (ret(), Insn::Ret { rn: 30 }),
        ];
        for (word, expected) in cases {
            assert_eq!(decode(word).unwrap(), expected, "word {word:#010x}");
        }
    }

    #[test]
    fn assembler_resolves_forward_and_backward_labels() {
        let mut a = Assembler::new();
        a.label("start");
        a.push(addi(0, 0, 1));
        a.cbnz_to(1, "end");
        a.b_to("start");
        a.label("end");
        a.push(ret());
        let words = a.finish();
        match decode(words[1]).unwrap() {
            Insn::Cbnz { rt: 1, offset } => assert_eq!(offset, 8),
            other => panic!("{other:?}"),
        }
        match decode(words[2]).unwrap() {
            Insn::B { offset } => assert_eq!(offset, -8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mov_imm64_builds_wide_constants() {
        let mut a = Assembler::new();
        a.mov_imm64(5, 0x1234_5678_9ABC_DEF0);
        let words = a.finish();
        assert_eq!(words.len(), 4, "four 16-bit chunks");
        let mut a = Assembler::new();
        a.mov_imm64(5, 0x42);
        assert_eq!(a.finish().len(), 1, "small constants need only movz");
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut a = Assembler::new();
        a.b_to("nowhere");
        let _ = a.finish();
    }
}
