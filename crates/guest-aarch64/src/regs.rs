//! Guest register-file layout.
//!
//! The guest register file lives in host memory and is addressed relative to
//! the register-file base pointer (`%rbp` in the generated code), exactly as
//! in the paper's examples (`0x8c0(%r14)` style operands in Fig. 12/13).
//! Every offset below is a byte offset into that block.

/// Total size of the guest register file block in bytes.
pub const REGFILE_SIZE: usize = 1024;

/// Number of general-purpose registers (X0..X30 plus SP encoded as 31).
pub const NUM_X_REGS: u32 = 32;

/// Byte offset of general-purpose register `Xi` (i = 31 is SP).
pub const fn x_off(i: u32) -> i32 {
    (i as i32) * 8
}

/// Byte offset of the stack pointer.
pub const SP_OFF: i32 = x_off(31);

/// Byte offset of the NZCV flags (stored as a single u64, N=bit3, Z=bit2,
/// C=bit1, V=bit0).
pub const NZCV_OFF: i32 = 256;

/// Byte offset of SIMD & FP register `Vi` (128 bits each).
pub const fn v_off(i: u32) -> i32 {
    272 + (i as i32) * 16
}

/// System register offsets.
pub const TTBR0_OFF: i32 = 784;
/// System control register (bit 0 = MMU enable).
pub const SCTLR_OFF: i32 = 792;
/// Vector base address register.
pub const VBAR_OFF: i32 = 800;
/// Exception syndrome register.
pub const ESR_OFF: i32 = 808;
/// Fault address register.
pub const FAR_OFF: i32 = 816;
/// Exception link register.
pub const ELR_OFF: i32 = 824;
/// Saved program status register.
pub const SPSR_OFF: i32 = 832;
/// Current exception level (0 = EL0 user, 1 = EL1 kernel).
pub const CURRENT_EL_OFF: i32 = 840;
/// Slot used to synchronise the guest PC with the register file when the
/// generated code exits to the hypervisor.
pub const PC_SLOT_OFF: i32 = 848;
/// Timer compare value: an `MSR` arms a one-shot timer IRQ this many cycles
/// in the future.
pub const CNT_TVAL_OFF: i32 = 856;
/// Timer control: an `MSR` of 0 cancels the timer; a non-zero value arms a
/// periodic timer with that cycle interval.
pub const CNT_CTL_OFF: i32 = 864;
/// Virtio-blk queue notification: an `MSR` kicks the block device, which
/// consumes newly-published available-ring entries.
pub const VBLK_NOTIFY_OFF: i32 = 872;

/// System register identifiers used by `MRS`/`MSR`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysReg {
    /// Translation table base (guest page-table root).
    Ttbr0 = 0,
    /// System control (MMU enable).
    Sctlr = 1,
    /// Vector base address.
    Vbar = 2,
    /// Exception syndrome.
    Esr = 3,
    /// Fault address.
    Far = 4,
    /// Exception link register.
    Elr = 5,
    /// Saved program status.
    Spsr = 6,
    /// Current exception level.
    CurrentEl = 7,
    /// Timer compare value (one-shot deadline, cycles from now).
    CntTval = 8,
    /// Timer control (0 = cancel, non-zero = periodic interval).
    CntCtl = 9,
    /// Virtio-blk queue notification (any value kicks the device).
    VblkNotify = 10,
}

impl SysReg {
    /// Decodes a system-register id.
    pub fn from_id(id: u32) -> Option<SysReg> {
        Some(match id {
            0 => SysReg::Ttbr0,
            1 => SysReg::Sctlr,
            2 => SysReg::Vbar,
            3 => SysReg::Esr,
            4 => SysReg::Far,
            5 => SysReg::Elr,
            6 => SysReg::Spsr,
            7 => SysReg::CurrentEl,
            8 => SysReg::CntTval,
            9 => SysReg::CntCtl,
            10 => SysReg::VblkNotify,
            _ => return None,
        })
    }

    /// Register-file byte offset backing this system register.
    pub fn offset(self) -> i32 {
        match self {
            SysReg::Ttbr0 => TTBR0_OFF,
            SysReg::Sctlr => SCTLR_OFF,
            SysReg::Vbar => VBAR_OFF,
            SysReg::Esr => ESR_OFF,
            SysReg::Far => FAR_OFF,
            SysReg::Elr => ELR_OFF,
            SysReg::Spsr => SPSR_OFF,
            SysReg::CurrentEl => CURRENT_EL_OFF,
            SysReg::CntTval => CNT_TVAL_OFF,
            SysReg::CntCtl => CNT_CTL_OFF,
            SysReg::VblkNotify => VBLK_NOTIFY_OFF,
        }
    }
}

/// Exception syndrome classes written to ESR when an exception is taken.
pub mod esr_class {
    /// Supervisor call.
    pub const SVC: u64 = 0x15;
    /// Undefined instruction.
    pub const UNDEFINED: u64 = 0x00;
    /// Instruction abort (fetch fault).
    pub const INSTR_ABORT: u64 = 0x21;
    /// Data abort (load/store fault).
    pub const DATA_ABORT: u64 = 0x25;
    /// Asynchronous interrupt (IRQ); the ISS carries the interrupt line.
    pub const IRQ: u64 = 0x3F;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_do_not_overlap() {
        assert_eq!(x_off(0), 0);
        assert_eq!(x_off(31), 248);
        assert!(NZCV_OFF >= x_off(31) + 8);
        assert!(v_off(0) >= NZCV_OFF + 8);
        assert_eq!(v_off(31), 272 + 31 * 16);
        assert!(TTBR0_OFF >= v_off(31) + 16);
        assert!((VBLK_NOTIFY_OFF as usize) + 8 <= REGFILE_SIZE);
    }

    #[test]
    fn sysreg_roundtrip() {
        for id in 0..11u32 {
            let r = SysReg::from_id(id).unwrap();
            assert_eq!(r as u32, id);
        }
        assert!(SysReg::from_id(99).is_none());
    }
}
