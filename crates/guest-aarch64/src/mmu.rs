//! Guest MMU model: a 3-level, 4 KiB-page translation table walker.
//!
//! The walker is generic over a guest-physical-memory reader so both Captive
//! (walking on a host page fault to populate host page tables) and the
//! QEMU-style baseline (walking in its softmmu slow path) use exactly the
//! same guest architecture behaviour.
//!
//! Guest page-table entry format (one u64 per entry):
//!   bit 0: valid, bit 1: writable, bit 2: user-accessible (EL0),
//!   bits 12..48: next-level table or final page frame address.

/// Guest page size in bytes.
pub const GUEST_PAGE_SIZE: u64 = 4096;
/// Levels in the guest translation table (L3 → L1).
pub const GUEST_LEVELS: u32 = 3;

/// Permissions attached to a guest mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GuestPageFlags {
    /// Entry is valid.
    pub valid: bool,
    /// Writable.
    pub writable: bool,
    /// Accessible from EL0 (user mode).
    pub user: bool,
}

impl GuestPageFlags {
    /// Encodes into the low bits of a PTE.
    pub fn encode(self) -> u64 {
        (self.valid as u64) | (self.writable as u64) << 1 | (self.user as u64) << 2
    }

    /// Decodes from a PTE.
    pub fn decode(pte: u64) -> Self {
        GuestPageFlags {
            valid: pte & 1 != 0,
            writable: pte & 2 != 0,
            user: pte & 4 != 0,
        }
    }

    /// Kernel read/write mapping.
    pub const fn kernel_rw() -> Self {
        GuestPageFlags {
            valid: true,
            writable: true,
            user: false,
        }
    }

    /// User read/write mapping.
    pub const fn user_rw() -> Self {
        GuestPageFlags {
            valid: true,
            writable: true,
            user: true,
        }
    }

    /// User read-only mapping.
    pub const fn user_ro() -> Self {
        GuestPageFlags {
            valid: true,
            writable: false,
            user: true,
        }
    }
}

/// Guest translation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestWalkError {
    /// No valid entry at the given level (3 = top).
    NotMapped {
        /// Level at which the walk stopped.
        level: u32,
    },
    /// A table pointer referenced guest physical memory that could not be read.
    BadAddress,
}

/// Result of a successful guest walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuestWalk {
    /// Guest physical page frame.
    pub frame: u64,
    /// Effective permissions (restrictive AND across levels).
    pub flags: GuestPageFlags,
}

/// Index into the table at `level` (3 = top) for a virtual address.
pub fn guest_table_index(vaddr: u64, level: u32) -> u64 {
    (vaddr >> (12 + 9 * (level - 1))) & 0x1FF
}

/// Walks the guest translation tables rooted at `ttbr0`, reading guest
/// physical memory through `read_phys`.
pub fn walk_guest(
    mut read_phys: impl FnMut(u64) -> Option<u64>,
    ttbr0: u64,
    vaddr: u64,
) -> Result<GuestWalk, GuestWalkError> {
    let mut table = ttbr0 & !0xFFF;
    let mut flags = GuestPageFlags {
        valid: true,
        writable: true,
        user: true,
    };
    for level in (1..=GUEST_LEVELS).rev() {
        let idx = guest_table_index(vaddr, level);
        let pte = read_phys(table + idx * 8).ok_or(GuestWalkError::BadAddress)?;
        let f = GuestPageFlags::decode(pte);
        if !f.valid {
            return Err(GuestWalkError::NotMapped { level });
        }
        flags.writable &= f.writable;
        flags.user &= f.user;
        if level == 1 {
            return Ok(GuestWalk {
                frame: pte & 0x0000_FFFF_FFFF_F000,
                flags: GuestPageFlags {
                    valid: true,
                    ..flags
                },
            });
        }
        table = pte & 0x0000_FFFF_FFFF_F000;
    }
    unreachable!()
}

/// A helper for building guest page tables directly in guest physical memory
/// (the job a guest OS's early boot code would do).
#[derive(Debug)]
pub struct GuestPageTableBuilder {
    /// Physical address of the root (L3) table.
    pub root: u64,
    next_table: u64,
    end: u64,
}

impl GuestPageTableBuilder {
    /// Creates a builder that allocates tables from `[pool_start, pool_end)`
    /// in guest physical memory; the first frame becomes the root table.
    pub fn new(pool_start: u64, pool_end: u64) -> Self {
        assert!(pool_end >= pool_start + GUEST_PAGE_SIZE);
        GuestPageTableBuilder {
            root: pool_start,
            next_table: pool_start + GUEST_PAGE_SIZE,
            end: pool_end,
        }
    }

    /// Maps `vaddr -> paddr` with `flags`, writing PTEs through `write_phys`
    /// and reading existing entries through `read_phys`.  Returns false if
    /// the table pool is exhausted.
    pub fn map(
        &mut self,
        mut read_phys: impl FnMut(u64) -> Option<u64>,
        mut write_phys: impl FnMut(u64, u64),
        vaddr: u64,
        paddr: u64,
        flags: GuestPageFlags,
    ) -> bool {
        let mut table = self.root;
        for level in (2..=GUEST_LEVELS).rev() {
            let idx = guest_table_index(vaddr, level);
            let pte_addr = table + idx * 8;
            let pte = read_phys(pte_addr).unwrap_or(0);
            if pte & 1 == 0 {
                if self.next_table >= self.end {
                    return false;
                }
                let new_table = self.next_table;
                self.next_table += GUEST_PAGE_SIZE;
                // Zero the new table.
                for i in 0..512 {
                    write_phys(new_table + i * 8, 0);
                }
                write_phys(pte_addr, new_table | GuestPageFlags::user_rw().encode());
                table = new_table;
            } else {
                table = pte & 0x0000_FFFF_FFFF_F000;
            }
        }
        let idx = guest_table_index(vaddr, 1);
        write_phys(table + idx * 8, (paddr & !0xFFF) | flags.encode());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct FakeMem(std::cell::RefCell<HashMap<u64, u64>>);

    impl FakeMem {
        fn new() -> Self {
            FakeMem(std::cell::RefCell::new(HashMap::new()))
        }
        fn read(&self, addr: u64) -> Option<u64> {
            Some(*self.0.borrow().get(&addr).unwrap_or(&0))
        }
        fn write(&self, addr: u64, v: u64) {
            self.0.borrow_mut().insert(addr, v);
        }
    }

    #[test]
    fn map_then_walk() {
        let mem = FakeMem::new();
        let mut b = GuestPageTableBuilder::new(0x8000, 0x20000);
        assert!(b.map(
            |a| mem.read(a),
            |a, v| mem.write(a, v),
            0x40_0000,
            0x9_C000,
            GuestPageFlags::user_rw()
        ));
        let w = walk_guest(|a| mem.read(a), b.root, 0x40_0123).unwrap();
        assert_eq!(w.frame, 0x9_C000);
        assert!(w.flags.user && w.flags.writable);
    }

    #[test]
    fn unmapped_reports_level() {
        let mem = FakeMem::new();
        match walk_guest(|a| mem.read(a), 0x8000, 0x1234_5000) {
            Err(GuestWalkError::NotMapped { level: 3 }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn permissions_intersect_across_levels() {
        let mem = FakeMem::new();
        let mut b = GuestPageTableBuilder::new(0x8000, 0x20000);
        assert!(b.map(
            |a| mem.read(a),
            |a, v| mem.write(a, v),
            0x9000,
            0xA000,
            GuestPageFlags::user_ro()
        ));
        let w = walk_guest(|a| mem.read(a), b.root, 0x9000).unwrap();
        assert!(!w.flags.writable);

        assert!(b.map(
            |a| mem.read(a),
            |a, v| mem.write(a, v),
            0xB000,
            0xC000,
            GuestPageFlags::kernel_rw()
        ));
        let w = walk_guest(|a| mem.read(a), b.root, 0xB000).unwrap();
        assert!(!w.flags.user && w.flags.writable);
    }

    #[test]
    fn table_indices_are_nine_bits() {
        assert_eq!(guest_table_index(0x1000, 1), 1);
        assert_eq!(guest_table_index(0x20_0000, 2), 1);
        assert_eq!(guest_table_index(0x4000_0000, 3), 1);
        assert!(guest_table_index(u64::MAX, 3) < 512);
    }
}
