//! Generator functions for the ARMv8-lite guest.
//!
//! Each function here corresponds to the machine-generated generator function
//! the paper's offline tool produces from the ADL description (Fig. 7): it is
//! invoked at JIT compilation time with a decoded instruction and emits IR by
//! calling into the invocation-DAG builder.  Fixed values (instruction
//! fields, immediates, the instruction's own PC) are evaluated here, at
//! translation time; dynamic values (register and memory contents) become
//! DAG nodes.

use crate::isa::{expand_fp_imm8, AccessSize, AluKind, Cond, FpKind, Insn};
use crate::regs::{self, SysReg};
use dbt::emitter::{BinOp, FpBinOp, ValueType};
use dbt::{Emitter, GuestIsa, NodeId};
use hvm::{Cond as HCond, MemSize, VecOp};

/// Runtime helper identifiers shared between the generator functions and the
/// hypervisor that implements them.
pub mod helpers {
    /// Take a synchronous guest exception: args = (class, iss, preferred return PC).
    pub const TAKE_EXCEPTION: u16 = 1;
    /// Guest TLB invalidate.
    pub const TLBI: u16 = 2;
    /// A system register was written: arg = sysreg id.
    pub const MSR_NOTIFY: u16 = 3;
    /// Double-precision compare returning an NZCV nibble: args = (a bits, b bits).
    pub const FCMP: u16 = 4;
    /// Exception return (restores EL and PC from SPSR/ELR).
    pub const ERET: u16 = 5;
    /// Halt the guest machine.
    pub const HLT: u16 = 6;
}

/// A decoded instruction plus the address it was fetched from (the generator
/// needs the PC to compute branch targets and PC-relative addresses — both
/// are *fixed* values).
#[derive(Debug, Clone, Copy)]
pub struct Decoded {
    /// Guest virtual address of the instruction.
    pub pc: u64,
    /// The decoded instruction.
    pub insn: Insn,
}

/// The guest ISA plugged into the DBT.
#[derive(Debug, Clone, Copy, Default)]
pub struct Aarch64Isa;

impl GuestIsa for Aarch64Isa {
    type Insn = Decoded;

    fn decode(&self, word: u32, pc: u64) -> Option<Decoded> {
        crate::isa::decode(word).map(|insn| Decoded { pc, insn })
    }

    fn generate(&self, insn: &Decoded, e: &mut Emitter) -> bool {
        generate(insn, e)
    }
}

fn size_to_type(size: AccessSize) -> ValueType {
    match size {
        AccessSize::Byte => ValueType::U8,
        AccessSize::Half => ValueType::U16,
        AccessSize::Word => ValueType::U32,
        AccessSize::Double => ValueType::U64,
        AccessSize::Quad => ValueType::V128,
    }
}

/// Reads general register `i` as a data-processing operand (register 31 reads
/// as zero, matching A64's XZR convention).
fn read_x(e: &mut Emitter, i: u32) -> NodeId {
    if i == 31 {
        e.const_u64(0)
    } else {
        e.load_register(regs::x_off(i), ValueType::U64)
    }
}

/// Reads general register `i` as a base address (register 31 is SP).
fn read_x_sp(e: &mut Emitter, i: u32) -> NodeId {
    e.load_register(regs::x_off(i), ValueType::U64)
}

/// Writes general register `i` (writes to register 31 are discarded, matching
/// XZR as a data-processing destination).
fn write_x(e: &mut Emitter, i: u32, value: NodeId) {
    if i != 31 {
        e.store_register(regs::x_off(i), value);
    }
}

/// Writes register `i` treating 31 as SP (loads/stores with writeback, moves).
fn write_x_sp(e: &mut Emitter, i: u32, value: NodeId) {
    e.store_register(regs::x_off(i), value);
}

/// Reads the low 64 bits of SIMD&FP register `i` as a double.
fn read_d(e: &mut Emitter, i: u32) -> NodeId {
    e.load_register(regs::v_off(i), ValueType::F64)
}

/// Writes the low 64 bits of SIMD&FP register `i` and zeroes the high lane
/// (scalar writes clear the upper bits, as on real hardware).
fn write_d(e: &mut Emitter, i: u32, value: NodeId) {
    e.store_register(regs::v_off(i), value);
    let zero = e.const_u64(0);
    e.store_register_sized(regs::v_off(i) + 8, zero, MemSize::U64);
}

/// Computes and stores NZCV for an add or subtract.
///
/// The flags are folded into one accumulator in V, C, Z, N order rather
/// than computed side by side and combined at the end.  V is the only flag
/// that needs both operands *and* the result, so producing it first lets
/// the operand values die before the remaining flags are materialised; the
/// left-deep accumulator chain then keeps at most five values live where
/// the compute-all-then-combine shape kept eight.  That head-room is what
/// lets unrolled loop bodies coexist with the optimiser's promoted loop
/// carriers inside the eight-register allocator pool.
fn set_nzcv_addsub(e: &mut Emitter, is_sub: bool, rn: NodeId, op2: NodeId, result: NodeId) {
    let v = {
        let a_xor = if is_sub {
            e.binary(BinOp::Xor, rn, op2)
        } else {
            e.binary(BinOp::Xor, rn, result)
        };
        let b_xor = if is_sub {
            e.binary(BinOp::Xor, rn, result)
        } else {
            e.binary(BinOp::Xor, op2, result)
        };
        let both = e.binary(BinOp::And, a_xor, b_xor);
        let c63 = e.const_u64(63);
        e.binary(BinOp::Shr, both, c63)
    };
    let c = if is_sub {
        // Carry = no borrow = rn >= op2 (unsigned).
        e.compare(HCond::Ge, rn, op2)
    } else {
        // Carry = unsigned overflow = result < rn.
        e.compare(HCond::Lt, result, rn)
    };
    let one = e.const_u64(1);
    let c_sh = e.binary(BinOp::Shl, c, one);
    let acc = e.binary(BinOp::Or, v, c_sh);
    let zero = e.const_u64(0);
    let z = e.compare(HCond::Eq, result, zero);
    let two = e.const_u64(2);
    let z_sh = e.binary(BinOp::Shl, z, two);
    let acc = e.binary(BinOp::Or, acc, z_sh);
    let n = e.compare(HCond::SLt, result, zero);
    let three = e.const_u64(3);
    let n_sh = e.binary(BinOp::Shl, n, three);
    let nzcv = e.binary(BinOp::Or, acc, n_sh);
    e.store_register(regs::NZCV_OFF, nzcv);
}

/// Computes and stores NZCV for a logical operation (C and V cleared).
fn set_nzcv_logic(e: &mut Emitter, result: NodeId) {
    let zero = e.const_u64(0);
    let n = e.compare(HCond::SLt, result, zero);
    let z = e.compare(HCond::Eq, result, zero);
    let three = e.const_u64(3);
    let two = e.const_u64(2);
    let n_sh = e.binary(BinOp::Shl, n, three);
    let z_sh = e.binary(BinOp::Shl, z, two);
    let nzcv = e.binary(BinOp::Or, n_sh, z_sh);
    e.store_register(regs::NZCV_OFF, nzcv);
}

/// Evaluates a guest condition code against the stored NZCV, returning a 0/1
/// node.
fn cond_value(e: &mut Emitter, cond: Cond) -> NodeId {
    let nzcv = e.load_register(regs::NZCV_OFF, ValueType::U64);
    let one = e.const_u64(1);
    let bit = |e: &mut Emitter, sh: u64| {
        let s = e.const_u64(sh);
        let v = e.binary(BinOp::Shr, nzcv, s);
        e.binary(BinOp::And, v, one)
    };
    let invert = |e: &mut Emitter, v: NodeId| e.binary(BinOp::Xor, v, one);
    match cond {
        Cond::Eq => bit(e, 2),
        Cond::Ne => {
            let z = bit(e, 2);
            invert(e, z)
        }
        Cond::Cs => bit(e, 1),
        Cond::Cc => {
            let c = bit(e, 1);
            invert(e, c)
        }
        Cond::Mi => bit(e, 3),
        Cond::Pl => {
            let n = bit(e, 3);
            invert(e, n)
        }
        Cond::Vs => bit(e, 0),
        Cond::Vc => {
            let v = bit(e, 0);
            invert(e, v)
        }
        Cond::Hi => {
            let c = bit(e, 1);
            let z = bit(e, 2);
            let nz = invert(e, z);
            e.binary(BinOp::And, c, nz)
        }
        Cond::Ls => {
            let c = bit(e, 1);
            let z = bit(e, 2);
            let nz = invert(e, z);
            let hi = e.binary(BinOp::And, c, nz);
            invert(e, hi)
        }
        Cond::Ge => {
            let n = bit(e, 3);
            let v = bit(e, 0);
            let ne = e.binary(BinOp::Xor, n, v);
            invert(e, ne)
        }
        Cond::Lt => {
            let n = bit(e, 3);
            let v = bit(e, 0);
            e.binary(BinOp::Xor, n, v)
        }
        Cond::Gt => {
            let n = bit(e, 3);
            let v = bit(e, 0);
            let z = bit(e, 2);
            let ge = {
                let ne = e.binary(BinOp::Xor, n, v);
                invert(e, ne)
            };
            let nz = invert(e, z);
            e.binary(BinOp::And, ge, nz)
        }
        Cond::Le => {
            let n = bit(e, 3);
            let v = bit(e, 0);
            let z = bit(e, 2);
            let lt = e.binary(BinOp::Xor, n, v);
            e.binary(BinOp::Or, lt, z)
        }
        Cond::Al => e.const_u64(1),
    }
}

fn alu_binop(kind: AluKind) -> BinOp {
    match kind {
        AluKind::Add => BinOp::Add,
        AluKind::Sub => BinOp::Sub,
        AluKind::And => BinOp::And,
        AluKind::Orr => BinOp::Or,
        AluKind::Eor => BinOp::Xor,
        AluKind::Mul => BinOp::Mul,
        AluKind::UDiv => BinOp::DivU,
        AluKind::SDiv => BinOp::DivS,
        AluKind::UMulH => BinOp::MulHiU,
        AluKind::SMulH => BinOp::MulHiS,
        AluKind::Lsl => BinOp::Shl,
        AluKind::Lsr => BinOp::Shr,
        AluKind::Asr => BinOp::Sar,
    }
}

/// The generator dispatcher: emits IR for one decoded instruction.  Returns
/// `true` when the instruction ends the basic block.
pub fn generate(d: &Decoded, e: &mut Emitter) -> bool {
    let pc = d.pc;
    match d.insn {
        Insn::Nop => false,
        Insn::Hlt => {
            e.call_helper(helpers::HLT, &[]);
            e.set_end_of_block();
            true
        }
        Insn::Movz { rd, imm16, hw } => {
            let v = e.const_u64((imm16 as u64) << (16 * hw as u64));
            write_x(e, rd, v);
            false
        }
        Insn::Movk { rd, imm16, hw } => {
            let old = read_x(e, rd);
            let mask = e.const_u64(!(0xFFFFu64 << (16 * hw as u64)));
            let keep = e.binary(BinOp::And, old, mask);
            let imm = e.const_u64((imm16 as u64) << (16 * hw as u64));
            let v = e.binary(BinOp::Or, keep, imm);
            write_x(e, rd, v);
            false
        }
        Insn::AluImm {
            kind,
            rd,
            rn,
            imm,
            set_flags,
        } => {
            let a = if kind == AluKind::Add || kind == AluKind::Sub {
                read_x_sp(e, rn)
            } else {
                read_x(e, rn)
            };
            let b = e.const_u64(imm as u64);
            let r = e.binary(alu_binop(kind), a, b);
            if set_flags {
                set_nzcv_addsub(e, kind == AluKind::Sub, a, b, r);
                write_x(e, rd, r);
            } else {
                // Unflagged ADD/SUB immediate may target SP (stack adjustment).
                write_x_sp(e, rd, r);
            }
            false
        }
        Insn::AluReg {
            kind,
            rd,
            rn,
            rm,
            set_flags,
        } => {
            let a = read_x(e, rn);
            let b = read_x(e, rm);
            let r = e.binary(alu_binop(kind), a, b);
            if set_flags {
                match kind {
                    AluKind::Add | AluKind::Sub => {
                        set_nzcv_addsub(e, kind == AluKind::Sub, a, b, r)
                    }
                    _ => set_nzcv_logic(e, r),
                }
            }
            write_x(e, rd, r);
            false
        }
        Insn::ShiftImm { kind, rd, rn, imm } => {
            let a = read_x(e, rn);
            let b = e.const_u64(imm as u64);
            let r = e.binary(alu_binop(kind), a, b);
            write_x(e, rd, r);
            false
        }
        Insn::Load {
            rt,
            rn,
            imm,
            size,
            sext,
        } => {
            let base = read_x_sp(e, rn);
            let off = e.const_u64(imm as u64);
            let addr = e.add(base, off);
            let ty = size_to_type(size);
            let v = e.load_memory(addr, ty, sext);
            let v = if sext { e.sext(v, ty) } else { v };
            write_x(e, rt, v);
            false
        }
        Insn::Store { rt, rn, imm, size } => {
            let base = read_x_sp(e, rn);
            let off = e.const_u64(imm as u64);
            let addr = e.add(base, off);
            let v = read_x(e, rt);
            e.store_memory(addr, v, size_to_type(size));
            false
        }
        Insn::LoadReg { rt, rn, rm } => {
            let base = read_x_sp(e, rn);
            let idx = read_x(e, rm);
            let addr = e.add(base, idx);
            let v = e.load_memory(addr, ValueType::U64, false);
            write_x(e, rt, v);
            false
        }
        Insn::StoreReg { rt, rn, rm } => {
            let base = read_x_sp(e, rn);
            let idx = read_x(e, rm);
            let addr = e.add(base, idx);
            let v = read_x(e, rt);
            e.store_memory(addr, v, ValueType::U64);
            false
        }
        Insn::Ldp { rt, rt2, rn, imm } => {
            let base = read_x_sp(e, rn);
            let off = e.const_u64(imm as i64 as u64);
            let addr = e.add(base, off);
            let v1 = e.load_memory(addr, ValueType::U64, false);
            write_x(e, rt, v1);
            let eight = e.const_u64(8);
            let addr2 = e.add(addr, eight);
            let v2 = e.load_memory(addr2, ValueType::U64, false);
            write_x(e, rt2, v2);
            false
        }
        Insn::Stp { rt, rt2, rn, imm } => {
            let base = read_x_sp(e, rn);
            let off = e.const_u64(imm as i64 as u64);
            let addr = e.add(base, off);
            let v1 = read_x(e, rt);
            e.store_memory(addr, v1, ValueType::U64);
            let eight = e.const_u64(8);
            let addr2 = e.add(addr, eight);
            let v2 = read_x(e, rt2);
            e.store_memory(addr2, v2, ValueType::U64);
            false
        }
        Insn::B { offset } => {
            let target = e.const_u64(pc.wrapping_add(offset as u64));
            e.store_pc(target);
            true
        }
        Insn::Bl { offset } => {
            let link = e.const_u64(pc.wrapping_add(4));
            write_x(e, 30, link);
            let target = e.const_u64(pc.wrapping_add(offset as u64));
            e.store_pc(target);
            true
        }
        Insn::BCond { cond, offset } => {
            let c = cond_value(e, cond);
            e.branch_cond(c, pc.wrapping_add(offset as u64), pc.wrapping_add(4));
            true
        }
        Insn::Cbz { rt, offset } => {
            let v = read_x(e, rt);
            let zero = e.const_u64(0);
            let c = e.compare(HCond::Eq, v, zero);
            e.branch_cond(c, pc.wrapping_add(offset as u64), pc.wrapping_add(4));
            true
        }
        Insn::Cbnz { rt, offset } => {
            let v = read_x(e, rt);
            let zero = e.const_u64(0);
            let c = e.compare(HCond::Ne, v, zero);
            e.branch_cond(c, pc.wrapping_add(offset as u64), pc.wrapping_add(4));
            true
        }
        Insn::Br { rn } | Insn::Ret { rn } => {
            let t = read_x(e, rn);
            e.store_pc(t);
            true
        }
        Insn::Blr { rn } => {
            let t = read_x(e, rn);
            let link = e.const_u64(pc.wrapping_add(4));
            write_x(e, 30, link);
            e.store_pc(t);
            true
        }
        Insn::Svc { imm } => {
            let class = e.const_u64(regs::esr_class::SVC);
            let iss = e.const_u64(imm as u64);
            let ret_pc = e.const_u64(pc.wrapping_add(4));
            e.call_helper(helpers::TAKE_EXCEPTION, &[class, iss, ret_pc]);
            e.set_end_of_block();
            true
        }
        Insn::Mrs { rt, sysreg } => {
            if let Some(sr) = SysReg::from_id(sysreg) {
                let v = e.load_register(sr.offset(), ValueType::U64);
                write_x(e, rt, v);
            }
            false
        }
        Insn::Msr { sysreg, rt } => {
            if let Some(sr) = SysReg::from_id(sysreg) {
                let v = read_x(e, rt);
                e.store_register(sr.offset(), v);
                let id = e.const_u64(sysreg as u64);
                e.call_helper(helpers::MSR_NOTIFY, &[id]);
            }
            // System register writes can change translation state; end the
            // block so the dispatcher re-evaluates the environment.
            e.inc_pc(4);
            e.set_end_of_block();
            true
        }
        Insn::Tlbi => {
            e.call_helper(helpers::TLBI, &[]);
            e.inc_pc(4);
            e.set_end_of_block();
            true
        }
        Insn::Eret => {
            e.call_helper(helpers::ERET, &[]);
            e.set_end_of_block();
            true
        }
        Insn::FmovImm { vd, imm8 } => {
            let bits = e.const_f64_bits(expand_fp_imm8(imm8));
            write_d(e, vd, bits);
            false
        }
        Insn::FpReg { kind, vd, vn, vm } => {
            let a = read_d(e, vn);
            let b = read_d(e, vm);
            let op = match kind {
                FpKind::Add => FpBinOp::Add,
                FpKind::Sub => FpBinOp::Sub,
                FpKind::Mul => FpBinOp::Mul,
                FpKind::Div => FpBinOp::Div,
            };
            let r = e.fp_binary(op, a, b, ValueType::F64);
            write_d(e, vd, r);
            false
        }
        Insn::Fsqrt { vd, vn } => {
            // Host square root plus the inline bit-accuracy fix-up of Table 2:
            // for negative (non-zero) inputs the Arm result is the positive
            // default NaN, whereas the host produces a negative NaN.
            let a = read_d(e, vn);
            let root = e.fp_sqrt(a, ValueType::F64);
            let root_bits = e.fp_to_gpr(root);
            let in_bits = e.fp_to_gpr(a);
            let minus_zero = e.const_u64(0x8000_0000_0000_0000);
            let is_neg = e.compare(HCond::Gt, in_bits, minus_zero);
            let default_nan = e.const_u64(0x7FF8_0000_0000_0000);
            let fixed = e.select(is_neg, default_nan, root_bits);
            let result = e.gpr_to_fp(fixed);
            write_d(e, vd, result);
            false
        }
        Insn::Fcmp { vn, vm } => {
            let a = read_d(e, vn);
            let b = read_d(e, vm);
            let ab = e.fp_to_gpr(a);
            let bb = e.fp_to_gpr(b);
            let nzcv = e.call_helper(helpers::FCMP, &[ab, bb]);
            e.store_register(regs::NZCV_OFF, nzcv);
            false
        }
        Insn::FmovToGpr { rd, vn } => {
            let v = read_d(e, vn);
            let bits = e.fp_to_gpr(v);
            write_x(e, rd, bits);
            false
        }
        Insn::FmovFromGpr { vd, rn } => {
            let v = read_x(e, rn);
            let bits = e.gpr_to_fp(v);
            write_d(e, vd, bits);
            false
        }
        Insn::Scvtf { vd, rn } => {
            let v = read_x(e, rn);
            let f = e.int_to_fp(v);
            write_d(e, vd, f);
            false
        }
        Insn::Fcvtzs { rd, vn } => {
            let v = read_d(e, vn);
            let i = e.fp_to_int(v);
            write_x(e, rd, i);
            false
        }
        Insn::Fmadd { vd, vn, vm, va } => {
            let a = read_d(e, vn);
            let b = read_d(e, vm);
            let c = read_d(e, va);
            let r = e.fp_mul_add(a, b, c);
            write_d(e, vd, r);
            false
        }
        Insn::LoadFp { vt, rn, imm, size } => {
            let base = read_x_sp(e, rn);
            let off = e.const_u64(imm as u64);
            let addr = e.add(base, off);
            let ty = size_to_type(size);
            let v = e.load_memory(
                addr,
                if size == AccessSize::Quad {
                    ValueType::V128
                } else {
                    ValueType::F64
                },
                false,
            );
            if size == AccessSize::Quad {
                e.store_register_sized(regs::v_off(vt), v, MemSize::U128);
            } else {
                write_d(e, vt, v);
            }
            let _ = ty;
            false
        }
        Insn::StoreFp { vt, rn, imm, size } => {
            let base = read_x_sp(e, rn);
            let off = e.const_u64(imm as u64);
            let addr = e.add(base, off);
            if size == AccessSize::Quad {
                let v = e.load_register(regs::v_off(vt), ValueType::V128);
                e.store_memory(addr, v, ValueType::V128);
            } else {
                let v = read_d(e, vt);
                e.store_memory(addr, v, ValueType::F64);
            }
            false
        }
        Insn::VAdd2D { vd, vn, vm } => {
            let a = e.load_register(regs::v_off(vn), ValueType::V128);
            let b = e.load_register(regs::v_off(vm), ValueType::V128);
            let r = e.vec_binary(VecOp::AddPd, a, b);
            e.store_register_sized(regs::v_off(vd), r, MemSize::U128);
            false
        }
        Insn::VMul2D { vd, vn, vm } => {
            let a = e.load_register(regs::v_off(vn), ValueType::V128);
            let b = e.load_register(regs::v_off(vm), ValueType::V128);
            let r = e.vec_binary(VecOp::MulPd, a, b);
            e.store_register_sized(regs::v_off(vd), r, MemSize::U128);
            false
        }
        Insn::Dup2D { vd, rn } => {
            let v = read_x(e, rn);
            let x = e.gpr_to_fp(v);
            let r = e.vec_binary(VecOp::Dup64, x, x);
            e.store_register_sized(regs::v_off(vd), r, MemSize::U128);
            false
        }
        Insn::Csel { rd, rn, rm, cond } => {
            let c = cond_value(e, cond);
            let a = read_x(e, rn);
            let b = read_x(e, rm);
            let r = e.select(c, a, b);
            write_x(e, rd, r);
            false
        }
        Insn::Adr { rd, offset } => {
            let v = e.const_u64(pc.wrapping_add(offset as u64));
            write_x(e, rd, v);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;
    use dbt::lir::LirInsn;

    fn translate(word: u32, pc: u64) -> (Vec<LirInsn>, bool) {
        let isa = Aarch64Isa;
        let d = isa.decode(word, pc).expect("decode");
        let mut e = Emitter::new();
        let end = generate(&d, &mut e);
        if !end {
            e.inc_pc(4);
        }
        (e.finish(), end)
    }

    #[test]
    fn add_register_translation_shape() {
        let (lir, end) = translate(asm::add(0, 1, 2), 0x1000);
        assert!(!end);
        // Loads of x1 and x2, an add, a store to x0, a PC increment.
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::Load { addr, .. } if addr.disp == 8)));
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::Load { addr, .. } if addr.disp == 16)));
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::Store { addr, .. } if addr.disp == 0)));
        assert!(lir.iter().any(|i| matches!(i, LirInsn::IncPc { imm: 4 })));
    }

    #[test]
    fn fmul_uses_host_fp_not_helpers() {
        let (lir, _) = translate(asm::fmul(0, 1, 2), 0x1000);
        assert!(lir.iter().any(|i| matches!(i, LirInsn::Fp { .. })));
        assert!(!lir.iter().any(|i| matches!(i, LirInsn::CallHelper { .. })));
    }

    #[test]
    fn fsqrt_emits_inline_fixup_not_helper() {
        let (lir, _) = translate(asm::fsqrt(0, 1), 0x1000);
        assert!(lir.iter().any(|i| matches!(
            i,
            LirInsn::Fp {
                op: hvm::FpOp::SqrtD,
                ..
            }
        )));
        assert!(
            lir.iter().any(|i| matches!(i, LirInsn::CmovCc { .. })),
            "fix-up select"
        );
        assert!(!lir.iter().any(|i| matches!(i, LirInsn::CallHelper { .. })));
    }

    #[test]
    fn branches_end_the_block_and_set_pc() {
        let (lir, end) = translate(asm::b(-16), 0x2000);
        assert!(end);
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::SetPcImm { imm } if *imm == 0x2000 - 16)));

        let (lir, end) = translate(asm::bcond(Cond::Ne, 32), 0x2000);
        assert!(end);
        let sets: Vec<u64> = lir
            .iter()
            .filter_map(|i| match i {
                LirInsn::SetPcImm { imm } => Some(*imm),
                _ => None,
            })
            .collect();
        assert!(sets.contains(&(0x2000 + 32)));
        assert!(sets.contains(&(0x2000 + 4)));
    }

    #[test]
    fn svc_goes_through_the_exception_helper() {
        let (lir, end) = translate(asm::svc(7), 0x3000);
        assert!(end);
        assert!(lir.iter().any(
            |i| matches!(i, LirInsn::CallHelper { helper } if *helper == helpers::TAKE_EXCEPTION)
        ));
    }

    #[test]
    fn xzr_semantics() {
        // add x0, x31, x31 → x0 = 0; the generator folds the zero operands.
        let (lir, _) = translate(asm::add(0, 31, 31), 0x1000);
        assert!(
            lir.iter()
                .any(|i| matches!(i, LirInsn::StoreImm { imm: 0, addr, .. } if addr.disp == 0)),
            "constant-folded zero store, got {lir:?}"
        );
        // Writes to x31 as a data-processing destination are discarded.
        let (lir, _) = translate(asm::add(31, 1, 2), 0x1000);
        assert!(!lir
            .iter()
            .any(|i| matches!(i, LirInsn::Store { addr, .. } if addr.disp == 248)));
    }

    #[test]
    fn movz_movk_build_constants() {
        let (lir, _) = translate(asm::movz(5, 0xBEEF, 1), 0x1000);
        assert!(lir.iter().any(
            |i| matches!(i, LirInsn::StoreImm { imm, addr, .. } if *imm == 0xBEEF_0000 && addr.disp == 40)
        ));
    }
}
