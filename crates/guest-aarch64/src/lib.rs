//! ARMv8-lite guest architecture model.
//!
//! This crate plays the role of the paper's offline-generated ARMv8-A module:
//! it provides the decoded-instruction type, the instruction decoder, the
//! per-instruction generator functions invoked by the JIT (the equivalent of
//! Fig. 7's machine-generated C++), the guest MMU model, the exception model,
//! the guest register-file layout and an assembler used by the workload and
//! benchmark crates to build guest programs.
//!
//! The ISA is a compact subset of A64: fixed 32-bit instructions, 31 general
//! registers plus SP, NZCV flags, 32 SIMD&FP registers, a 3-level 4 KiB-page
//! MMU behind `TTBR0`/`SCTLR`, and an EL0/EL1 exception model with
//! `SVC`/`ERET` and a vector base register.  Encodings are this crate's own
//! (documented in [`isa`]) rather than real A64 bit patterns — the decode
//! *structure* (class field plus per-class operand fields) matches how a
//! generated decoder would carve up A64, which is what matters for the DBT.

pub mod asm;
pub mod gen;
pub mod isa;
pub mod mmu;
pub mod regs;

pub use asm::Assembler;
pub use gen::Aarch64Isa;
pub use isa::{decode, Cond as GuestCond, Insn};
pub use mmu::{walk_guest, GuestPageFlags, GuestWalkError};
pub use regs::*;
