//! Decoded-instruction type and the guest instruction decoder.
//!
//! Instructions are fixed 32-bit words.  Bits `[31:25]` select the
//! instruction class; the remaining fields mirror A64's operand structure
//! (`rd`, `rn`, `rm`, a fourth register `ra`, and immediates of various
//! widths).  The decoder is a single match over the class field — the shape a
//! decoder generated from the ADL's decode specification would take.

/// Condition codes (A64 encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cond {
    Eq = 0,
    Ne = 1,
    Cs = 2,
    Cc = 3,
    Mi = 4,
    Pl = 5,
    Vs = 6,
    Vc = 7,
    Hi = 8,
    Ls = 9,
    Ge = 10,
    Lt = 11,
    Gt = 12,
    Le = 13,
    Al = 14,
}

impl Cond {
    /// Decodes a 4-bit condition field.
    pub fn from_bits(v: u32) -> Cond {
        match v & 0xF {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::Cs,
            3 => Cond::Cc,
            4 => Cond::Mi,
            5 => Cond::Pl,
            6 => Cond::Vs,
            7 => Cond::Vc,
            8 => Cond::Hi,
            9 => Cond::Ls,
            10 => Cond::Ge,
            11 => Cond::Lt,
            12 => Cond::Gt,
            13 => Cond::Le,
            _ => Cond::Al,
        }
    }
}

/// Integer ALU operations shared by the register and immediate forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluKind {
    Add,
    Sub,
    And,
    Orr,
    Eor,
    Mul,
    UDiv,
    SDiv,
    UMulH,
    SMulH,
    Lsl,
    Lsr,
    Asr,
}

/// Memory access widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessSize {
    Byte,
    Half,
    Word,
    Double,
    Quad,
}

impl AccessSize {
    /// Width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            AccessSize::Byte => 1,
            AccessSize::Half => 2,
            AccessSize::Word => 4,
            AccessSize::Double => 8,
            AccessSize::Quad => 16,
        }
    }
}

/// Scalar floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpKind {
    Add,
    Sub,
    Mul,
    Div,
}

/// A decoded guest instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    Nop,
    /// Stop the guest (used by bare-metal test programs).
    Hlt,
    /// Move a shifted 16-bit immediate, zeroing the rest.
    Movz {
        rd: u32,
        imm16: u32,
        hw: u32,
    },
    /// Insert a shifted 16-bit immediate, keeping the rest.
    Movk {
        rd: u32,
        imm16: u32,
        hw: u32,
    },
    /// ALU with a 12-bit unsigned immediate.
    AluImm {
        kind: AluKind,
        rd: u32,
        rn: u32,
        imm: u32,
        set_flags: bool,
    },
    /// ALU with a register operand.
    AluReg {
        kind: AluKind,
        rd: u32,
        rn: u32,
        rm: u32,
        set_flags: bool,
    },
    /// Shift by an immediate amount.
    ShiftImm {
        kind: AluKind,
        rd: u32,
        rn: u32,
        imm: u32,
    },
    /// Integer load (zero-extended unless `sext`).
    Load {
        rt: u32,
        rn: u32,
        imm: u32,
        size: AccessSize,
        sext: bool,
    },
    /// Integer store.
    Store {
        rt: u32,
        rn: u32,
        imm: u32,
        size: AccessSize,
    },
    /// Register-offset 64-bit load.
    LoadReg {
        rt: u32,
        rn: u32,
        rm: u32,
    },
    /// Register-offset 64-bit store.
    StoreReg {
        rt: u32,
        rn: u32,
        rm: u32,
    },
    /// Load pair of 64-bit registers.
    Ldp {
        rt: u32,
        rt2: u32,
        rn: u32,
        imm: i32,
    },
    /// Store pair of 64-bit registers.
    Stp {
        rt: u32,
        rt2: u32,
        rn: u32,
        imm: i32,
    },
    /// Unconditional branch (word offset).
    B {
        offset: i64,
    },
    /// Branch and link.
    Bl {
        offset: i64,
    },
    /// Conditional branch.
    BCond {
        cond: Cond,
        offset: i64,
    },
    /// Compare-and-branch on zero.
    Cbz {
        rt: u32,
        offset: i64,
    },
    /// Compare-and-branch on non-zero.
    Cbnz {
        rt: u32,
        offset: i64,
    },
    /// Indirect branch.
    Br {
        rn: u32,
    },
    /// Indirect branch and link.
    Blr {
        rn: u32,
    },
    /// Return (branch to the register, conventionally X30).
    Ret {
        rn: u32,
    },
    /// Supervisor call.
    Svc {
        imm: u32,
    },
    /// Read a system register.
    Mrs {
        rt: u32,
        sysreg: u32,
    },
    /// Write a system register.
    Msr {
        sysreg: u32,
        rt: u32,
    },
    /// Guest TLB invalidate (all).
    Tlbi,
    /// Exception return.
    Eret,
    /// FP move of an 8-bit encoded immediate into a D register.
    FmovImm {
        vd: u32,
        imm8: u32,
    },
    /// Scalar double-precision arithmetic.
    FpReg {
        kind: FpKind,
        vd: u32,
        vn: u32,
        vm: u32,
    },
    /// Scalar double-precision square root.
    Fsqrt {
        vd: u32,
        vn: u32,
    },
    /// Scalar double-precision compare (sets NZCV).
    Fcmp {
        vn: u32,
        vm: u32,
    },
    /// Move a D register to an X register (bit pattern).
    FmovToGpr {
        rd: u32,
        vn: u32,
    },
    /// Move an X register to a D register (bit pattern).
    FmovFromGpr {
        vd: u32,
        rn: u32,
    },
    /// Signed integer to double conversion.
    Scvtf {
        vd: u32,
        rn: u32,
    },
    /// Double to signed integer conversion (toward zero).
    Fcvtzs {
        rd: u32,
        vn: u32,
    },
    /// Fused multiply-add: `vd = va + vn * vm`.
    Fmadd {
        vd: u32,
        vn: u32,
        vm: u32,
        va: u32,
    },
    /// Load a D register.
    LoadFp {
        vt: u32,
        rn: u32,
        imm: u32,
        size: AccessSize,
    },
    /// Store a D register.
    StoreFp {
        vt: u32,
        rn: u32,
        imm: u32,
        size: AccessSize,
    },
    /// Packed double-precision add over a 128-bit vector.
    VAdd2D {
        vd: u32,
        vn: u32,
        vm: u32,
    },
    /// Packed double-precision multiply over a 128-bit vector.
    VMul2D {
        vd: u32,
        vn: u32,
        vm: u32,
    },
    /// Broadcast an X register to both 64-bit lanes of a V register.
    Dup2D {
        vd: u32,
        rn: u32,
    },
    /// Conditional select.
    Csel {
        rd: u32,
        rn: u32,
        rm: u32,
        cond: Cond,
    },
    /// PC-relative address.
    Adr {
        rd: u32,
        offset: i64,
    },
}

/// Sign-extends the low `bits` bits of `v`.
fn sext(v: u32, bits: u32) -> i64 {
    let shift = 64 - bits;
    (((v as u64) << shift) as i64) >> shift
}

/// Opcode field of an instruction word.
pub fn opcode(word: u32) -> u32 {
    word >> 25
}

/// Decodes one instruction word, returning `None` for undefined encodings.
pub fn decode(word: u32) -> Option<Insn> {
    let op = opcode(word);
    let rd = word & 0x1F;
    let rn = (word >> 5) & 0x1F;
    let rm = (word >> 10) & 0x1F;
    let ra = (word >> 15) & 0x1F;
    let imm12 = (word >> 10) & 0xFFF;
    let imm16 = (word >> 5) & 0xFFFF;
    let hw = (word >> 21) & 0x3;
    let imm19 = sext((word >> 5) & 0x7FFFF, 19);
    let imm24 = sext((word >> 1) & 0xFF_FFFF, 24);
    let imm6 = (word >> 10) & 0x3F;
    let simm7 = sext((word >> 15) & 0x7F, 7) as i32;
    let cond = Cond::from_bits(word & 0xF);

    Some(match op {
        0x00 => Insn::Nop,
        0x01 => Insn::Hlt,
        0x02 => Insn::Movz { rd, imm16, hw },
        0x03 => Insn::Movk { rd, imm16, hw },
        0x05 => Insn::AluImm {
            kind: AluKind::Add,
            rd,
            rn,
            imm: imm12,
            set_flags: false,
        },
        0x06 => Insn::AluImm {
            kind: AluKind::Sub,
            rd,
            rn,
            imm: imm12,
            set_flags: false,
        },
        0x07 => Insn::AluImm {
            kind: AluKind::Sub,
            rd,
            rn,
            imm: imm12,
            set_flags: true,
        },
        0x08 => Insn::AluReg {
            kind: AluKind::Add,
            rd,
            rn,
            rm,
            set_flags: false,
        },
        0x09 => Insn::AluReg {
            kind: AluKind::Sub,
            rd,
            rn,
            rm,
            set_flags: false,
        },
        0x0A => Insn::AluReg {
            kind: AluKind::Add,
            rd,
            rn,
            rm,
            set_flags: true,
        },
        0x0B => Insn::AluReg {
            kind: AluKind::Sub,
            rd,
            rn,
            rm,
            set_flags: true,
        },
        0x0C => Insn::AluReg {
            kind: AluKind::And,
            rd,
            rn,
            rm,
            set_flags: false,
        },
        0x0D => Insn::AluReg {
            kind: AluKind::Orr,
            rd,
            rn,
            rm,
            set_flags: false,
        },
        0x0E => Insn::AluReg {
            kind: AluKind::Eor,
            rd,
            rn,
            rm,
            set_flags: false,
        },
        0x0F => Insn::AluReg {
            kind: AluKind::And,
            rd,
            rn,
            rm,
            set_flags: true,
        },
        0x10 => Insn::AluReg {
            kind: AluKind::Mul,
            rd,
            rn,
            rm,
            set_flags: false,
        },
        0x11 => Insn::AluReg {
            kind: AluKind::UDiv,
            rd,
            rn,
            rm,
            set_flags: false,
        },
        0x12 => Insn::AluReg {
            kind: AluKind::SDiv,
            rd,
            rn,
            rm,
            set_flags: false,
        },
        0x13 => Insn::AluReg {
            kind: AluKind::UMulH,
            rd,
            rn,
            rm,
            set_flags: false,
        },
        0x14 => Insn::AluReg {
            kind: AluKind::SMulH,
            rd,
            rn,
            rm,
            set_flags: false,
        },
        0x15 => Insn::AluReg {
            kind: AluKind::Lsl,
            rd,
            rn,
            rm,
            set_flags: false,
        },
        0x16 => Insn::AluReg {
            kind: AluKind::Lsr,
            rd,
            rn,
            rm,
            set_flags: false,
        },
        0x17 => Insn::AluReg {
            kind: AluKind::Asr,
            rd,
            rn,
            rm,
            set_flags: false,
        },
        0x18 => Insn::ShiftImm {
            kind: AluKind::Lsl,
            rd,
            rn,
            imm: imm6,
        },
        0x19 => Insn::ShiftImm {
            kind: AluKind::Lsr,
            rd,
            rn,
            imm: imm6,
        },
        0x1A => Insn::ShiftImm {
            kind: AluKind::Asr,
            rd,
            rn,
            imm: imm6,
        },
        0x1B => Insn::Load {
            rt: rd,
            rn,
            imm: imm12,
            size: AccessSize::Double,
            sext: false,
        },
        0x1C => Insn::Store {
            rt: rd,
            rn,
            imm: imm12,
            size: AccessSize::Double,
        },
        0x1D => Insn::Load {
            rt: rd,
            rn,
            imm: imm12,
            size: AccessSize::Word,
            sext: false,
        },
        0x1E => Insn::Store {
            rt: rd,
            rn,
            imm: imm12,
            size: AccessSize::Word,
        },
        0x1F => Insn::Load {
            rt: rd,
            rn,
            imm: imm12,
            size: AccessSize::Byte,
            sext: false,
        },
        0x20 => Insn::Store {
            rt: rd,
            rn,
            imm: imm12,
            size: AccessSize::Byte,
        },
        0x21 => Insn::Load {
            rt: rd,
            rn,
            imm: imm12,
            size: AccessSize::Half,
            sext: false,
        },
        0x22 => Insn::Store {
            rt: rd,
            rn,
            imm: imm12,
            size: AccessSize::Half,
        },
        0x23 => Insn::Load {
            rt: rd,
            rn,
            imm: imm12,
            size: AccessSize::Word,
            sext: true,
        },
        0x24 => Insn::LoadReg { rt: rd, rn, rm },
        0x25 => Insn::StoreReg { rt: rd, rn, rm },
        0x26 => Insn::Ldp {
            rt: rd,
            rt2: rm,
            rn,
            imm: simm7 * 8,
        },
        0x27 => Insn::Stp {
            rt: rd,
            rt2: rm,
            rn,
            imm: simm7 * 8,
        },
        0x28 => Insn::B { offset: imm24 * 4 },
        0x29 => Insn::Bl { offset: imm24 * 4 },
        0x2A => Insn::BCond {
            cond,
            offset: imm19 * 4,
        },
        0x2B => Insn::Cbz {
            rt: rd,
            offset: imm19 * 4,
        },
        0x2C => Insn::Cbnz {
            rt: rd,
            offset: imm19 * 4,
        },
        0x2D => Insn::Br { rn },
        0x2E => Insn::Blr { rn },
        0x2F => Insn::Ret { rn },
        0x30 => Insn::Svc { imm: imm16 },
        0x31 => Insn::Mrs {
            rt: rd,
            sysreg: (word >> 5) & 0x3FF,
        },
        0x32 => Insn::Msr {
            sysreg: (word >> 5) & 0x3FF,
            rt: rd,
        },
        0x33 => Insn::Tlbi,
        0x34 => Insn::Eret,
        0x35 => Insn::FmovImm {
            vd: rd,
            imm8: (word >> 5) & 0xFF,
        },
        0x36 => Insn::FpReg {
            kind: FpKind::Add,
            vd: rd,
            vn: rn,
            vm: rm,
        },
        0x37 => Insn::FpReg {
            kind: FpKind::Sub,
            vd: rd,
            vn: rn,
            vm: rm,
        },
        0x38 => Insn::FpReg {
            kind: FpKind::Mul,
            vd: rd,
            vn: rn,
            vm: rm,
        },
        0x39 => Insn::FpReg {
            kind: FpKind::Div,
            vd: rd,
            vn: rn,
            vm: rm,
        },
        0x3A => Insn::Fsqrt { vd: rd, vn: rn },
        0x3B => Insn::Fcmp { vn: rn, vm: rm },
        0x3C => Insn::FmovToGpr { rd, vn: rn },
        0x3D => Insn::FmovFromGpr { vd: rd, rn },
        0x3E => Insn::Scvtf { vd: rd, rn },
        0x3F => Insn::Fcvtzs { rd, vn: rn },
        0x40 => Insn::Fmadd {
            vd: rd,
            vn: rn,
            vm: rm,
            va: ra,
        },
        0x41 => Insn::LoadFp {
            vt: rd,
            rn,
            imm: imm12,
            size: AccessSize::Double,
        },
        0x42 => Insn::StoreFp {
            vt: rd,
            rn,
            imm: imm12,
            size: AccessSize::Double,
        },
        0x43 => Insn::VAdd2D {
            vd: rd,
            vn: rn,
            vm: rm,
        },
        0x44 => Insn::VMul2D {
            vd: rd,
            vn: rn,
            vm: rm,
        },
        0x45 => Insn::LoadFp {
            vt: rd,
            rn,
            imm: imm12,
            size: AccessSize::Quad,
        },
        0x46 => Insn::StoreFp {
            vt: rd,
            rn,
            imm: imm12,
            size: AccessSize::Quad,
        },
        0x47 => Insn::Dup2D { vd: rd, rn },
        0x48 => Insn::Csel {
            rd,
            rn,
            rm,
            cond: Cond::from_bits(ra),
        },
        0x49 => Insn::Adr {
            rd,
            offset: imm19 * 4,
        },
        _ => return None,
    })
}

impl Insn {
    /// True if the instruction always ends a guest basic block.
    pub fn ends_block(&self) -> bool {
        matches!(
            self,
            Insn::B { .. }
                | Insn::Bl { .. }
                | Insn::BCond { .. }
                | Insn::Cbz { .. }
                | Insn::Cbnz { .. }
                | Insn::Br { .. }
                | Insn::Blr { .. }
                | Insn::Ret { .. }
                | Insn::Svc { .. }
                | Insn::Eret
                | Insn::Hlt
                | Insn::Tlbi
                | Insn::Msr { .. }
        )
    }
}

/// Expands an 8-bit A64 FP immediate encoding to a binary64 bit pattern
/// (VFPExpandImm): sign, 3-bit exponent seed, 4-bit fraction.
pub fn expand_fp_imm8(imm8: u32) -> u64 {
    let sign = ((imm8 >> 7) & 1) as u64;
    let not_b6 = (((imm8 >> 6) & 1) ^ 1) as u64;
    let b6 = ((imm8 >> 6) & 1) as u64;
    let b54 = ((imm8 >> 4) & 3) as u64;
    let frac = (imm8 & 0xF) as u64;
    // exponent = NOT(b6) : replicate(b6, 8) : b54  (11 bits total)
    let exp = (not_b6 << 10) | (if b6 != 0 { 0xFF << 2 } else { 0 }) | b54;
    (sign << 63) | (exp << 52) | (frac << 48)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;

    #[test]
    fn decode_rejects_undefined_opcodes() {
        assert!(decode(0x7F << 25).is_none());
        assert!(decode(0x60 << 25).is_none());
    }

    #[test]
    fn expand_fp_imm8_produces_expected_constants() {
        // 0x70 encodes 1.0, 0x78 encodes 1.5 in the A64 scheme (sign 0).
        assert_eq!(f64::from_bits(expand_fp_imm8(0x70)), 1.0);
        assert_eq!(f64::from_bits(expand_fp_imm8(0x78)), 1.5);
        assert_eq!(f64::from_bits(expand_fp_imm8(0xF0)), -1.0);
        assert_eq!(f64::from_bits(expand_fp_imm8(0x60)), 0.5);
    }

    #[test]
    fn branch_offsets_are_signed() {
        let w = asm::b(-8);
        match decode(w).unwrap() {
            Insn::B { offset } => assert_eq!(offset, -8),
            other => panic!("{other:?}"),
        }
        let w = asm::bcond(Cond::Lt, -4);
        match decode(w).unwrap() {
            Insn::BCond { cond, offset } => {
                assert_eq!(cond, Cond::Lt);
                assert_eq!(offset, -4);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ends_block_classification() {
        assert!(decode(asm::ret()).unwrap().ends_block());
        assert!(decode(asm::svc(0)).unwrap().ends_block());
        assert!(!decode(asm::add(0, 1, 2)).unwrap().ends_block());
        assert!(!decode(asm::ldr(0, 1, 0)).unwrap().ends_block());
    }
}
