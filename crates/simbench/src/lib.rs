//! SimBench-style micro-benchmarks (Fig. 19).
//!
//! SimBench [Wagstaff et al., ISPASS'17] stresses one full-system-emulation
//! subsystem per benchmark.  This crate re-creates the categories that the
//! reproduction's guest model can express; each returns a small guest program
//! plus the number of "operations" it performs so results can be reported as
//! speedups per category, as in the paper.  Categories requiring guest-MMU
//! setup build their page tables from guest code before enabling the MMU.

use guest_aarch64::asm::{self, Assembler};

/// A micro-benchmark guest program.
#[derive(Debug, Clone)]
pub struct MicroBench {
    /// Category name, matching the paper's Fig. 19 labels where applicable.
    pub name: &'static str,
    /// Instruction words (load at 0x1000).
    pub words: Vec<u32>,
    /// Entry point.
    pub entry: u64,
}

fn mb(name: &'static str, a: Assembler) -> MicroBench {
    MicroBench {
        name,
        words: a.finish(),
        entry: 0x1000,
    }
}

/// Mem-Hot: repeatedly touch a small, already-mapped buffer.
pub fn mem_hot(iters: u32) -> MicroBench {
    let mut a = Assembler::new();
    a.mov_imm64(1, 0x20_0000);
    a.mov_imm64(2, iters as u64);
    a.label("loop");
    a.push(asm::str(2, 1, 0));
    a.push(asm::ldr(3, 1, 0));
    a.push(asm::ldr(3, 1, 8));
    a.push(asm::str(3, 1, 16));
    a.push(asm::subi(2, 2, 1));
    a.cbnz_to(2, "loop");
    a.push(asm::hlt());
    mb("Mem-Hot-NoMMU", a)
}

/// Mem-Cold: touch a new page on every iteration (demand-mapping /
/// soft-TLB-miss stress).
pub fn mem_cold(pages: u32) -> MicroBench {
    let mut a = Assembler::new();
    a.mov_imm64(1, 0x40_0000);
    a.mov_imm64(2, pages as u64);
    a.mov_imm64(4, 4096);
    a.label("loop");
    a.push(asm::str(2, 1, 0));
    a.push(asm::add(1, 1, 4));
    a.push(asm::subi(2, 2, 1));
    a.cbnz_to(2, "loop");
    a.push(asm::hlt());
    mb("Mem-Cold-NoMMU", a)
}

/// Syscall: SVC in a tight loop with a trivial EL1 handler that ERETs.
pub fn syscall(iters: u32) -> MicroBench {
    let mut a = Assembler::new();
    // Install the vector (placed after the main loop, label "vector").
    a.adr_to(1, "vector");
    a.push(asm::msr(guest_aarch64::SysReg::Vbar as u32, 1));
    a.mov_imm64(2, iters as u64);
    a.label("loop");
    a.push(asm::svc(1));
    a.push(asm::subi(2, 2, 1));
    a.cbnz_to(2, "loop");
    a.push(asm::hlt());
    a.label("vector");
    a.push(asm::eret());
    mb("Syscall", a)
}

/// Undef-Instruction: execute an undefined encoding repeatedly; the EL1
/// handler skips over it by advancing ELR.
pub fn undef_instruction(iters: u32) -> MicroBench {
    let mut a = Assembler::new();
    a.adr_to(1, "vector");
    a.push(asm::msr(guest_aarch64::SysReg::Vbar as u32, 1));
    a.mov_imm64(2, iters as u64);
    a.label("loop");
    a.push(0x7F << 25); // undefined opcode
    a.push(asm::subi(2, 2, 1));
    a.cbnz_to(2, "loop");
    a.push(asm::hlt());
    a.label("vector");
    a.push(asm::mrs(3, guest_aarch64::SysReg::Elr as u32));
    a.push(asm::addi(3, 3, 4));
    a.push(asm::msr(guest_aarch64::SysReg::Elr as u32, 3));
    a.push(asm::eret());
    mb("Undef-Instruction", a)
}

/// TLB-Flush: guest TLB invalidations interleaved with memory accesses.
pub fn tlb_flush(iters: u32) -> MicroBench {
    let mut a = Assembler::new();
    a.mov_imm64(1, 0x30_0000);
    a.mov_imm64(2, iters as u64);
    a.label("loop");
    a.push(asm::str(2, 1, 0));
    a.push(asm::tlbi());
    a.push(asm::ldr(3, 1, 0));
    a.push(asm::subi(2, 2, 1));
    a.cbnz_to(2, "loop");
    a.push(asm::hlt());
    mb("TLB-Flush", a)
}

/// TLB-Evict: touch more pages than the host TLB holds, repeatedly.
pub fn tlb_evict(pages: u32, passes: u32) -> MicroBench {
    let mut a = Assembler::new();
    a.mov_imm64(10, passes as u64);
    a.mov_imm64(4, 4096);
    a.label("pass");
    a.mov_imm64(1, 0x40_0000);
    a.mov_imm64(2, pages as u64);
    a.label("loop");
    a.push(asm::ldr(3, 1, 0));
    a.push(asm::add(1, 1, 4));
    a.push(asm::subi(2, 2, 1));
    a.cbnz_to(2, "loop");
    a.push(asm::subi(10, 10, 1));
    a.cbnz_to(10, "pass");
    a.push(asm::hlt());
    mb("TLB-Evict", a)
}

/// Small-Blocks: a long chain of tiny basic blocks, each executed once
/// (translation-throughput stress).
pub fn small_blocks(count: u32) -> MicroBench {
    let mut a = Assembler::new();
    for _ in 0..count {
        a.push(asm::addi(0, 0, 1));
        a.push(asm::b(4)); // branch to the next instruction: ends the block
    }
    a.push(asm::hlt());
    mb("Small-Blocks", a)
}

/// Large-Blocks: straight-line blocks of ~48 instructions, each executed once.
pub fn large_blocks(count: u32) -> MicroBench {
    let mut a = Assembler::new();
    for _ in 0..count {
        for i in 0..47u32 {
            a.push(asm::addi(i % 8, i % 8, 1));
        }
        a.push(asm::b(4));
    }
    a.push(asm::hlt());
    mb("Large-Blocks", a)
}

/// Same-Page-Direct: direct branches that stay within one guest page.
pub fn same_page_direct(iters: u32) -> MicroBench {
    let mut a = Assembler::new();
    a.mov_imm64(2, iters as u64);
    a.label("loop");
    a.b_to("a");
    a.label("a");
    a.b_to("b");
    a.label("b");
    a.push(asm::subi(2, 2, 1));
    a.cbnz_to(2, "loop");
    a.push(asm::hlt());
    mb("Same-Page-Direct", a)
}

/// Inter-Page-Direct: direct branches bouncing between two pages — the
/// shape same-page chaining must refuse to link but a TCG-style `goto_tb`
/// baseline links directly.
pub fn inter_page_direct(iters: u32) -> MicroBench {
    let mut a = Assembler::new();
    a.mov_imm64(2, iters as u64);
    a.label("loop");
    a.b_to("far");
    a.label("back");
    a.push(asm::subi(2, 2, 1));
    a.cbnz_to(2, "loop");
    a.push(asm::hlt());
    // Pad to push "far" onto the next page.
    while a.here() < 1024 {
        a.push(asm::nop());
    }
    a.label("far");
    a.b_to("back");
    mb("Inter-Page-Direct", a)
}

/// Inter-Page-Indirect: indirect branches bouncing between two pages.
pub fn inter_page_indirect(iters: u32) -> MicroBench {
    let mut a = Assembler::new();
    a.mov_imm64(2, iters as u64);
    a.adr_to(3, "far");
    a.label("loop");
    a.push(asm::blr(3));
    a.push(asm::subi(2, 2, 1));
    a.cbnz_to(2, "loop");
    a.push(asm::hlt());
    // Pad to push "far" onto the next page.
    while a.here() < 1024 {
        a.push(asm::nop());
    }
    a.label("far");
    a.push(asm::ret());
    mb("Inter-Page-Indirect", a)
}

/// The full suite in Fig. 19 order (categories this reproduction implements).
pub fn suite() -> Vec<MicroBench> {
    vec![
        mem_hot(30_000),
        mem_cold(4_000),
        undef_instruction(2_000),
        syscall(3_000),
        small_blocks(1_500),
        large_blocks(120),
        same_page_direct(10_000),
        inter_page_direct(5_000),
        inter_page_indirect(5_000),
        tlb_flush(2_000),
        tlb_evict(1024, 20),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_assemble_and_decode() {
        for b in suite() {
            assert!(!b.words.is_empty(), "{}", b.name);
            // Undef-Instruction deliberately contains an undefined encoding.
            if b.name != "Undef-Instruction" {
                for w in &b.words {
                    assert!(guest_aarch64::decode(*w).is_some(), "{}: {w:#010x}", b.name);
                }
            }
            assert!(b.words.contains(&asm::hlt()), "{}", b.name);
        }
    }

    #[test]
    fn suite_has_distinct_names() {
        let s = suite();
        let mut names: Vec<_> = s.iter().map(|b| b.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), s.len());
    }
}
