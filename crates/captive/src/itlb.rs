//! Fetch-side instruction TLB and data-side guest TLB.
//!
//! The dispatcher needs the guest *physical* address of the next block to key
//! the code cache, which in the seed design meant a full guest page-table
//! walk (`mmu::walk_guest`) on every slow-path dispatch.  This small
//! direct-mapped VPN→PFN cache short-circuits that walk for instruction
//! fetches.
//!
//! Correctness comes from stamping every entry with the hypervisor's
//! *context generation*, which is bumped whenever guest translation state
//! may have changed: `TLBI`, writes to `TTBR0` or `SCTLR` (including MMU
//! enable/disable, so identity-mapped MMU-off entries are covered too).  A
//! lookup only hits when the entry's stamp matches the current generation,
//! so no flush walk over the entries is ever needed.  Self-modifying code
//! does *not* bump the generation — it changes what is cached for a physical
//! address, not how a virtual address maps to it.

/// Number of entries (power of two, direct-mapped on the low VPN bits).
const ITLB_ENTRIES: usize = 64;

#[derive(Debug, Clone, Copy, Default)]
struct FetchEntry {
    valid: bool,
    vpn: u64,
    page_pa: u64,
    ctx_gen: u64,
}

/// Direct-mapped fetch translation cache keyed on (VPN, context generation).
#[derive(Debug)]
pub struct FetchTlb {
    entries: [FetchEntry; ITLB_ENTRIES],
    /// Lookups answered without a guest page-table walk.
    pub hits: u64,
    /// Lookups that fell through to the guest walker.
    pub misses: u64,
}

impl Default for FetchTlb {
    fn default() -> Self {
        Self::new()
    }
}

impl FetchTlb {
    /// Creates an empty fetch TLB.
    pub fn new() -> Self {
        FetchTlb {
            entries: [FetchEntry::default(); ITLB_ENTRIES],
            hits: 0,
            misses: 0,
        }
    }

    /// Translates `va` if a current-generation entry covers its page.
    /// Counts a hit or miss either way.
    pub fn lookup(&mut self, va: u64, ctx_gen: u64) -> Option<u64> {
        let vpn = va >> 12;
        let e = &self.entries[(vpn as usize) % ITLB_ENTRIES];
        if e.valid && e.vpn == vpn && e.ctx_gen == ctx_gen {
            self.hits += 1;
            Some(e.page_pa | (va & 0xFFF))
        } else {
            self.misses += 1;
            None
        }
    }

    /// Records the translation of `va`'s page under the given generation.
    pub fn insert(&mut self, va: u64, pa: u64, ctx_gen: u64) {
        let vpn = va >> 12;
        self.entries[(vpn as usize) % ITLB_ENTRIES] = FetchEntry {
            valid: true,
            vpn,
            page_pa: pa & !0xFFF,
            ctx_gen,
        };
    }
}

/// Number of data-side entries.
const DTLB_ENTRIES: usize = 128;

/// A cached guest data translation: the walk result including the guest
/// PTE permissions, so permission checks on a hit reproduce the walk's
/// decision exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct DataEntry {
    valid: bool,
    vpn: u64,
    /// Guest physical page frame.
    pub page_pa: u64,
    /// Guest-writable (restrictive AND across walk levels).
    pub writable: bool,
    /// EL0-accessible.
    pub user: bool,
    ctx_gen: u64,
}

/// Data-side guest TLB (mirrors [`FetchTlb`]): caches guest page-table walk
/// results consulted by the host page-fault handler, so repeated host faults
/// on recently translated VAs skip the guest walk.  Entries are stamped with
/// the context generation, so guest `TLBI` / `TTBR0` / `SCTLR` writes flush
/// it wholesale — exactly the events after which a cached guest walk can no
/// longer be trusted (as on real hardware, guest page-table edits must be
/// followed by a TLBI to take effect).
#[derive(Debug)]
pub struct DataTlb {
    entries: [DataEntry; DTLB_ENTRIES],
    /// Host faults whose guest walk was answered from the cache.
    pub hits: u64,
    /// Host faults that performed a real guest page-table walk.
    pub misses: u64,
}

impl Default for DataTlb {
    fn default() -> Self {
        Self::new()
    }
}

impl DataTlb {
    /// Creates an empty data TLB.
    pub fn new() -> Self {
        DataTlb {
            entries: [DataEntry::default(); DTLB_ENTRIES],
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the cached walk result covering `va`'s page under the current
    /// generation.  Counts a hit or miss either way.
    pub fn lookup(&mut self, va: u64, ctx_gen: u64) -> Option<DataEntry> {
        let vpn = va >> 12;
        let e = self.entries[(vpn as usize) % DTLB_ENTRIES];
        if e.valid && e.vpn == vpn && e.ctx_gen == ctx_gen {
            self.hits += 1;
            Some(e)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Records the walk result for `va`'s page under the given generation.
    pub fn insert(&mut self, va: u64, page_pa: u64, writable: bool, user: bool, ctx_gen: u64) {
        let vpn = va >> 12;
        self.entries[(vpn as usize) % DTLB_ENTRIES] = DataEntry {
            valid: true,
            vpn,
            page_pa: page_pa & !0xFFF,
            writable,
            user,
            ctx_gen,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_tlb_caches_flags_and_respects_generation() {
        let mut t = DataTlb::new();
        assert!(t.lookup(0x5123, 0).is_none());
        t.insert(0x5123, 0x9000, true, false, 0);
        let e = t.lookup(0x5FFF, 0).expect("same page hits");
        assert_eq!(e.page_pa, 0x9000);
        assert!(e.writable && !e.user);
        assert!(t.lookup(0x5000, 1).is_none(), "generation bump flushes");
        assert_eq!(t.hits, 1);
        assert_eq!(t.misses, 2);
    }

    #[test]
    fn hits_only_within_the_stamped_generation() {
        let mut t = FetchTlb::new();
        assert_eq!(t.lookup(0x1234, 0), None);
        t.insert(0x1234, 0x9000 | 0x234, 0);
        assert_eq!(t.lookup(0x1238, 0), Some(0x9238), "same page, new offset");
        assert_eq!(t.lookup(0x1238, 1), None, "generation bump invalidates");
        assert_eq!(t.hits, 1);
        assert_eq!(t.misses, 2);
    }

    #[test]
    fn distinct_pages_conflict_only_on_matching_sets() {
        let mut t = FetchTlb::new();
        t.insert(0x1000, 0x9000, 0);
        // Same set (vpn differs by ITLB_ENTRIES pages): evicts.
        t.insert(0x1000 + (ITLB_ENTRIES as u64) * 4096, 0xA000, 0);
        assert_eq!(t.lookup(0x1000, 0), None);
        assert_eq!(
            t.lookup(0x1000 + (ITLB_ENTRIES as u64) * 4096, 0),
            Some(0xA000)
        );
    }
}
