//! Captive: the retargetable system-level DBT hypervisor.
//!
//! This crate ties the substrates together into the system the paper
//! describes: a KVM-style hypervisor ([`Captive`]) that owns a bare-metal
//! host virtual machine (`hvm`), runs the DBT execution engine inside it,
//! translates guest (ARMv8-lite) basic blocks through the shared `dbt`
//! pipeline using the guest model's generator functions, and exploits the
//! host machine's system features directly:
//!
//! * guest virtual memory is mapped on demand into the lower half of the
//!   host virtual address space by handling host page faults and walking the
//!   *guest* page tables (Section 2.7.3);
//! * guest TLB flushes are intercepted and implemented by clearing the
//!   low-half top-level host page-table entries (Section 2.7.4);
//! * translated code is cached by guest *physical* address and only
//!   invalidated when self-modifying code is detected via write protection
//!   (Section 2.6);
//! * guest FP/SIMD instructions map to host FP/SIMD instructions with inline
//!   bit-accuracy fix-ups, or optionally to softfloat helper calls for the
//!   ablation of Section 3.6.2;
//! * the guest's exception level is tracked and guest user code runs in host
//!   ring 3, guest system code in ring 0 (Fig. 2).

pub mod layout;
pub mod runtime;
pub mod translator;

use dbt::{CacheIndex, CodeCache, PhaseTimers};
use guest_aarch64::Aarch64Isa;
use hvm::{ExitReason, Gpr, Machine, MachineConfig, Ring};
use runtime::{CaptiveRuntime, GuestEvent};
use std::collections::HashMap;
use translator::translate_block;

/// How guest floating-point instructions are implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FpMode {
    /// Map guest FP to host FP instructions with inline fix-ups (Captive's
    /// contribution).
    #[default]
    Hardware,
    /// Call softfloat helpers for every FP operation (the QEMU approach,
    /// used for the Section 3.6.2 ablation).
    Software,
}

/// Hypervisor configuration.
#[derive(Debug, Clone)]
pub struct CaptiveConfig {
    /// Guest RAM size in bytes.
    pub guest_ram: u64,
    /// Guest FP implementation strategy.
    pub fp_mode: FpMode,
    /// Enable block chaining (dispatch-cost credit for sequential blocks).
    pub chaining: bool,
    /// Maximum guest instructions per translated block.
    pub max_block_insns: usize,
    /// Host machine configuration.
    pub machine: MachineConfig,
    /// Record per-block execution cycles (needed for the Fig. 21 experiment;
    /// adds bookkeeping overhead).
    pub per_block_stats: bool,
}

impl Default for CaptiveConfig {
    fn default() -> Self {
        CaptiveConfig {
            guest_ram: 32 * 1024 * 1024,
            fp_mode: FpMode::Hardware,
            chaining: true,
            max_block_insns: 64,
            machine: MachineConfig::default(),
            per_block_stats: false,
        }
    }
}

/// Why [`Captive::run`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunExit {
    /// The guest executed `HLT` or the exit hypercall.
    GuestHalted {
        /// Exit code passed by the guest (0 if halted without one).
        code: u64,
    },
    /// The block budget given to `run` was exhausted.
    BudgetExhausted,
    /// Something went wrong in the execution engine.
    Error(String),
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Simulated host cycles consumed by guest execution.
    pub cycles: u64,
    /// Host instructions executed.
    pub host_insns: u64,
    /// Guest instructions attributed (blocks entered × block length).
    pub guest_insns: u64,
    /// Blocks dispatched.
    pub blocks: u64,
    /// Translations performed.
    pub translations: u64,
    /// Guest exceptions delivered.
    pub guest_exceptions: u64,
    /// Bytes of host code generated.
    pub code_bytes: u64,
}

/// Per-block execution record (for the code-quality scatter plot, Fig. 21).
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockProfile {
    /// Accumulated simulated cycles spent in the block.
    pub cycles: u64,
    /// Number of executions.
    pub executions: u64,
    /// Guest instructions in the block.
    pub guest_insns: u64,
}

/// The hypervisor.
pub struct Captive {
    /// The simulated host virtual machine.
    pub machine: Machine,
    /// Runtime services (helpers, fault handling, devices).
    pub runtime: CaptiveRuntime,
    /// Translated-code cache (guest-physical indexed).
    pub cache: CodeCache,
    /// JIT phase timers.
    pub timers: PhaseTimers,
    isa: Aarch64Isa,
    config: CaptiveConfig,
    stats: RunStats,
    per_block: HashMap<u64, BlockProfile>,
}

impl Captive {
    /// Creates a hypervisor with a fresh host VM and boots the "unikernel":
    /// host page tables for the Captive area are built and paging is enabled.
    pub fn new(config: CaptiveConfig) -> Self {
        let mut machine = Machine::new(config.machine.clone());
        let runtime = CaptiveRuntime::new(&mut machine, config.guest_ram, config.fp_mode);
        // The register-file base pointer lives in %rbp for the whole run.
        machine.set_reg(Gpr::Rbp, layout::REGFILE_VA);
        // Bare-metal guests boot in EL1 (kernel mode).
        machine
            .mem
            .write_u64(
                runtime.regfile_phys + guest_aarch64::CURRENT_EL_OFF as u64,
                1,
            )
            .expect("register file is inside host RAM");
        Captive {
            machine,
            runtime,
            cache: CodeCache::new(CacheIndex::GuestPhysical),
            timers: PhaseTimers::default(),
            isa: Aarch64Isa,
            config,
            stats: RunStats::default(),
            per_block: HashMap::new(),
        }
    }

    /// Loads a guest program (little-endian instruction words) at a guest
    /// physical address.
    pub fn load_program(&mut self, guest_phys: u64, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            self.write_guest_phys(guest_phys + i as u64 * 4, *w as u64, 4);
        }
    }

    /// Writes bytes into guest physical memory.
    pub fn write_guest_phys(&mut self, guest_phys: u64, value: u64, size: u64) {
        let host = layout::GUEST_PHYS_BASE + guest_phys;
        self.machine
            .mem
            .write_uint(host, value, size)
            .expect("guest physical write within RAM");
    }

    /// Reads from guest physical memory.
    pub fn read_guest_phys(&mut self, guest_phys: u64, size: u64) -> u64 {
        let host = layout::GUEST_PHYS_BASE + guest_phys;
        self.machine.mem.read_uint(host, size).unwrap_or(0)
    }

    /// Sets the guest entry point (and starts in EL1 with the MMU off).
    pub fn set_entry(&mut self, guest_pc: u64) {
        self.machine.set_reg(Gpr::R15, guest_pc);
        self.machine.ring = Ring::Ring0;
    }

    /// Reads a guest general-purpose register from the register file.
    pub fn guest_reg(&mut self, index: u32) -> u64 {
        let addr = self.runtime.regfile_phys + guest_aarch64::x_off(index) as u64;
        self.machine.mem.read_u64(addr).unwrap_or(0)
    }

    /// Writes a guest general-purpose register.
    pub fn set_guest_reg(&mut self, index: u32, value: u64) {
        let addr = self.runtime.regfile_phys + guest_aarch64::x_off(index) as u64;
        self.machine.mem.write_u64(addr, value).expect("regfile write");
    }

    /// Console output accumulated from the guest (hypervisor UART).
    pub fn console(&self) -> &[u8] {
        &self.runtime.uart_output
    }

    /// Statistics of the run so far.
    pub fn stats(&self) -> RunStats {
        let mut s = self.stats.clone();
        s.cycles = self.machine.perf.cycles;
        s.host_insns = self.machine.perf.insns;
        s.code_bytes = self.cache.total_encoded_bytes() as u64;
        s
    }

    /// Per-block execution profile (guest physical address → profile).
    pub fn block_profiles(&self) -> &HashMap<u64, BlockProfile> {
        &self.per_block
    }

    /// Translates the guest virtual address of an *instruction fetch* to a
    /// guest physical address, or reports the fault to deliver.
    fn fetch_translate(&mut self, va: u64) -> Result<u64, GuestEvent> {
        self.runtime.guest_va_to_pa(&mut self.machine, va, false)
    }

    /// Runs the guest until it halts or `max_blocks` blocks have been
    /// dispatched.
    pub fn run(&mut self, max_blocks: u64) -> RunExit {
        for _ in 0..max_blocks {
            if let Some(code) = self.runtime.exit_code {
                return RunExit::GuestHalted { code };
            }
            let pc = self.machine.reg(Gpr::R15);
            // Resolve the block's guest physical address (cache key).
            let pa = match self.fetch_translate(pc) {
                Ok(pa) => pa,
                Err(event) => {
                    self.deliver_event(event, pc);
                    continue;
                }
            };
            let block = match self.cache.get(pa) {
                Some(b) => b,
                None => {
                    self.stats.translations += 1;
                    let block = translate_block(
                        &self.isa,
                        &mut self.machine,
                        &mut self.runtime,
                        &mut self.timers,
                        pc,
                        pa,
                        self.config.max_block_insns,
                        self.config.fp_mode,
                    );
                    self.runtime.note_code_page(&mut self.machine, pa & !0xFFF);
                    self.cache.insert(block)
                }
            };
            // Track the guest's exception level in the host protection ring
            // (guest user code runs in ring 3, guest system code in ring 0).
            let el = self
                .machine
                .mem
                .read_u64(self.runtime.regfile_phys + guest_aarch64::CURRENT_EL_OFF as u64)
                .unwrap_or(1);
            self.machine.ring = if el == 0 { Ring::Ring3 } else { Ring::Ring0 };

            let before = self.machine.perf.cycles;
            let code = std::sync::Arc::clone(&block.code);
            let exit = self.machine.run_block(&code, &mut self.runtime);
            let spent = self.machine.perf.cycles - before;
            // Invalidate translations for any code pages the guest wrote.
            for page in self.runtime.take_smc_dirty() {
                self.cache.invalidate_phys_page(page);
            }
            self.stats.blocks += 1;
            self.stats.guest_insns += block.guest_insns as u64;
            if self.config.per_block_stats {
                let p = self.per_block.entry(pa).or_default();
                p.cycles += spent;
                p.executions += 1;
                p.guest_insns = block.guest_insns as u64;
            }
            if self.config.chaining {
                // Chained blocks skip the dispatcher: credit its cost back
                // when control flows guest-sequentially between cached blocks.
                let next_pc = self.machine.reg(Gpr::R15);
                if next_pc == pc + block.guest_bytes() {
                    let credit = self.machine.cost.dispatch;
                    self.machine.perf.cycles = self.machine.perf.cycles.saturating_sub(credit);
                }
            }
            match exit {
                ExitReason::BlockEnd | ExitReason::HelperExit => {
                    if let Some(event) = self.runtime.take_pending_event() {
                        match event {
                            GuestEvent::Halt { code } => return RunExit::GuestHalted { code },
                            other => {
                                let pc_now = self.machine.reg(Gpr::R15);
                                self.deliver_event(other, pc_now);
                            }
                        }
                    }
                }
                ExitReason::Halted => {
                    let code = self.runtime.exit_code.unwrap_or(0);
                    return RunExit::GuestHalted { code };
                }
                ExitReason::MemFault { vaddr, write } => {
                    // A genuine guest data abort: deliver it to the guest.
                    let fault_pc = self.machine.reg(Gpr::R15);
                    self.deliver_event(
                        GuestEvent::DataAbort { vaddr, write },
                        fault_pc,
                    );
                }
                ExitReason::FuelExhausted => {
                    return RunExit::Error("translated block did not terminate".into())
                }
                ExitReason::Error(e) => return RunExit::Error(e),
            }
        }
        RunExit::BudgetExhausted
    }

    /// Delivers a guest-visible event (exception) by updating the guest
    /// system registers and redirecting execution to the vector base.
    fn deliver_event(&mut self, event: GuestEvent, faulting_pc: u64) {
        self.stats.guest_exceptions += 1;
        self.runtime
            .deliver_exception(&mut self.machine, event, faulting_pc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_aarch64::asm;

    fn boot(words: &[u32]) -> (Captive, RunExit) {
        let mut c = Captive::new(CaptiveConfig::default());
        c.load_program(0x1000, words);
        c.set_entry(0x1000);
        let exit = c.run(100_000);
        (c, exit)
    }

    #[test]
    fn runs_a_simple_arithmetic_program() {
        // x0 = 40 + 2, then exit with code x0 via the exit hypercall.
        let mut a = asm::Assembler::new();
        a.push(asm::movz(0, 40, 0));
        a.push(asm::addi(0, 0, 2));
        a.push(asm::hlt());
        let (mut c, exit) = boot(&a.finish());
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        assert_eq!(c.guest_reg(0), 42);
    }

    #[test]
    fn loops_and_flags_work() {
        // Sum 1..=100 into x0.
        let mut a = asm::Assembler::new();
        a.push(asm::movz(0, 0, 0));
        a.push(asm::movz(1, 100, 0));
        a.label("loop");
        a.push(asm::add(0, 0, 1));
        a.push(asm::subi(1, 1, 1));
        a.cbnz_to(1, "loop");
        a.push(asm::hlt());
        let (mut c, exit) = boot(&a.finish());
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        assert_eq!(c.guest_reg(0), 5050);
    }

    #[test]
    fn memory_access_with_mmu_off_maps_on_demand() {
        // Store then load back through guest "physical" addresses.
        let mut a = asm::Assembler::new();
        a.mov_imm64(1, 0x10000);
        a.mov_imm64(2, 0xABCD);
        a.push(asm::str(2, 1, 8));
        a.push(asm::ldr(3, 1, 8));
        a.push(asm::hlt());
        let (mut c, exit) = boot(&a.finish());
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        assert_eq!(c.guest_reg(3), 0xABCD);
        assert!(c.machine.perf.page_faults > 0, "demand mapping faulted once");
    }

    #[test]
    fn floating_point_uses_host_fpu() {
        // d0 = 1.5; d1 = d0 * d0; x0 = bits(d1)
        let mut a = asm::Assembler::new();
        a.push(asm::fmov_imm(0, 0x78)); // 1.5
        a.push(asm::fmul(1, 0, 0));
        a.push(asm::fmov_to_gpr(0, 1));
        a.push(asm::hlt());
        let (mut c, exit) = boot(&a.finish());
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        assert_eq!(f64::from_bits(c.guest_reg(0)), 2.25);
        assert!(
            c.machine.perf.helper_calls <= 1,
            "no FP helper calls (only the final halt hypercall)"
        );
    }

    #[test]
    fn fsqrt_fixup_is_bit_accurate_with_arm() {
        // sqrt(-0.5) must be the positive default NaN, not the host's -NaN.
        let mut a = asm::Assembler::new();
        a.push(asm::fmov_imm(0, 0xE0)); // -0.5
        a.push(asm::fsqrt(1, 0));
        a.push(asm::fmov_to_gpr(0, 1));
        a.push(asm::hlt());
        let (mut c, exit) = boot(&a.finish());
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        let mut env = softfloat::FpEnv::arm();
        let expected = softfloat::f64_sqrt_arm((-0.5f64).to_bits(), &mut env);
        assert_eq!(c.guest_reg(0), expected);
    }

    #[test]
    fn svc_takes_an_exception_to_el1() {
        // Install a vector that moves 99 into x5 then halts; cause an SVC from
        // the main flow.
        let mut a = asm::Assembler::new();
        // Vector code is placed at 0x2000 (VBAR).
        a.mov_imm64(1, 0x2000);
        a.push(asm::msr(guest_aarch64::SysReg::Vbar as u32, 1));
        a.push(asm::svc(3));
        a.push(asm::hlt()); // not reached: the vector halts first
        let main = a.finish();
        let mut v = asm::Assembler::new();
        v.push(asm::movz(5, 99, 0));
        v.push(asm::mrs(6, guest_aarch64::SysReg::Esr as u32));
        v.push(asm::hlt());
        let vector = v.finish();
        let mut c = Captive::new(CaptiveConfig::default());
        c.load_program(0x1000, &main);
        c.load_program(0x2000, &vector);
        c.set_entry(0x1000);
        let exit = c.run(100_000);
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        assert_eq!(c.guest_reg(5), 99);
        let esr = c.guest_reg(6);
        assert_eq!(esr >> 26, guest_aarch64::esr_class::SVC, "ESR class is SVC");
        assert_eq!(esr & 0xFFFF, 3, "ESR carries the SVC immediate");
    }

    #[test]
    fn console_hypercall_collects_output() {
        let mut a = asm::Assembler::new();
        for ch in b"hi" {
            a.push(asm::movz(0, *ch as u32, 0));
            a.push(asm::svc(runtime::SVC_PUTCHAR));
        }
        a.push(asm::hlt());
        let (c, exit) = boot(&a.finish());
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        assert_eq!(c.console(), b"hi");
    }

    #[test]
    fn translations_are_cached_and_reused() {
        let mut a = asm::Assembler::new();
        a.push(asm::movz(1, 1000, 0));
        a.label("loop");
        a.push(asm::subi(1, 1, 1));
        a.cbnz_to(1, "loop");
        a.push(asm::hlt());
        let (c, exit) = boot(&a.finish());
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        let stats = c.stats();
        assert!(stats.translations <= 4, "loop body translated once");
        assert!(stats.blocks > 900, "loop body re-dispatched from the cache");
    }
}
