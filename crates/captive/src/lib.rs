//! Captive: the retargetable system-level DBT hypervisor.
//!
//! This crate ties the substrates together into the system the paper
//! describes: a KVM-style hypervisor ([`Captive`]) that owns a bare-metal
//! host virtual machine (`hvm`), runs the DBT execution engine inside it,
//! translates guest (ARMv8-lite) basic blocks through the shared `dbt`
//! pipeline using the guest model's generator functions, and exploits the
//! host machine's system features directly:
//!
//! * guest virtual memory is mapped on demand into the lower half of the
//!   host virtual address space by handling host page faults and walking the
//!   *guest* page tables (Section 2.7.3);
//! * guest TLB flushes are intercepted and implemented by clearing the
//!   low-half top-level host page-table entries (Section 2.7.4);
//! * translated code is cached by guest *physical* address and only
//!   invalidated when self-modifying code is detected via write protection
//!   (Section 2.6);
//! * translated-to-translated control transfers are **chained** (Sections
//!   2.6–2.7): blocks ending in direct branches carry lazily patched
//!   successor links, and the dispatcher's inner loop follows them without a
//!   page walk, cache lookup, or exception-level read — see the *Block
//!   chaining* section below;
//! * guest FP/SIMD instructions map to host FP/SIMD instructions with inline
//!   bit-accuracy fix-ups, or optionally to softfloat helper calls for the
//!   ablation of Section 3.6.2;
//! * the guest's exception level is tracked and guest user code runs in host
//!   ring 3, guest system code in ring 0 (Fig. 2).
//!
//! # Block chaining
//!
//! The dispatcher ([`Captive::run`]) has a two-level structure:
//!
//! * The **slow path** resolves the guest PC to a physical address (through
//!   the fetch-side iTLB in [`itlb`], falling back to a guest page-table
//!   walk), looks the block up in the physically-indexed [`CodeCache`]
//!   (translating on a miss), and reads the guest's exception level to pick
//!   the host protection ring.
//! * The **inner chained loop** then executes blocks back-to-back: when a
//!   block exits at a direct branch whose successor link is already patched
//!   and still valid, control transfers straight to the successor's code —
//!   no page walk, no cache lookup, no EL read — and only the near-zero
//!   [`hvm::CostModel::chain`] cost is charged instead of the dispatcher's
//!   [`hvm::CostModel::dispatch`] cost.
//!
//! **Link structure.** Each [`dbt::Region`] records terminator
//! metadata ([`dbt::BlockExit`]) at translation time and carries two lazily
//! patched successor slots (taken/sequential target and conditional
//! fallthrough).  The first time an exit reaches a direct target whose link
//! is unresolved, the dispatcher falls back to the slow path once and
//! patches the link with the block it resolved.
//!
//! **Generation scheme.** A link stores the *context generation* (owned by
//! [`runtime::CaptiveRuntime`], bumped on guest `TLBI` and `TTBR0`/`SCTLR`
//! writes) and the code cache's *invalidation epoch* (bumped whenever
//! blocks are discarded).  Links are followed only while both stamps match,
//! and they hold [`std::sync::Weak`] references, so invalidation never
//! scans predecessor blocks: dropping a block kills links *into* it, and
//! the epoch stamp kills links *from* blocks the dispatcher still holds
//! (including self-loops).
//!
//! **Invalidation rules.** Self-modifying code invalidates the written
//! physical page's translations (and bumps the epoch); `TLBI` and
//! translation-state `MSR`s bump the context generation (retiring iTLB
//! entries and links wholesale); exception delivery and `ERET` always leave
//! the chained loop through the slow path, which re-reads the exception
//! level, so chained execution never runs in a stale host ring.

pub mod itlb;
pub mod layout;
pub mod runtime;
pub mod tier;
pub mod translator;

use dbt::{
    fnv1a, pack_knobs, CacheIndex, CodeCache, EntryMode, PhaseTimers, Region, RegionKey,
    RegionProfile, ReuseCache, ReuseKey, ReuseTemplate, RuleKind, RuleTable, TierTimers,
    RULE_COUNT,
};
use guest_aarch64::Aarch64Isa;
use hvm::{ExitReason, Gpr, Machine, MachineConfig, Ring};
use runtime::{CaptiveRuntime, GuestEvent};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use tier::{FormationRequest, FormationResult, FormationSnapshot, TierService, WorkerOutcome};
use translator::{form_region, translate_block};

/// How guest floating-point instructions are implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FpMode {
    /// Map guest FP to host FP instructions with inline fix-ups (Captive's
    /// contribution).
    #[default]
    Hardware,
    /// Call softfloat helpers for every FP operation (the QEMU approach,
    /// used for the Section 3.6.2 ablation).
    Software,
}

/// Hypervisor configuration.
#[derive(Debug, Clone)]
pub struct CaptiveConfig {
    /// Guest RAM size in bytes.
    pub guest_ram: u64,
    /// Guest FP implementation strategy.
    pub fp_mode: FpMode,
    /// Enable direct block chaining (patched successor links let hot paths
    /// bypass the dispatcher entirely).
    pub chaining: bool,
    /// Enable profile-guided formation of multi-constituent regions over hot
    /// chain paths (requires `chaining`, which provides the link-heat
    /// profile).
    pub form_regions: bool,
    /// Enable the block-scoped LIR optimiser (`dbt::opt`): store-to-load
    /// forwarding through register-file slots, copy propagation, and dead
    /// regfile-store elimination, with the allocator's iterative DCE
    /// sweeping the value chains feeding eliminated stores.
    pub opt: bool,
    /// Enable the guest-idiom rewrite layer (`dbt::idiom`, requires `opt`):
    /// NZCV-free compare+branch fusion, address-mode folding and bulk-move
    /// rewriting, applied under the engine's [`dbt::RuleTable`] (the full
    /// built-in table unless [`Captive::set_idiom_rules`] installs a mined
    /// one).  The table's content hash joins the reuse key, so engines with
    /// different tables never share templates.
    pub idioms: bool,
    /// Chain-link transfer count at which the link's target becomes a
    /// region trace head.
    pub region_threshold: u64,
    /// Guest-instruction cap on one region trace.
    pub region_max_insns: usize,
    /// Close back-edges inside regions: a hot loop (single- or multi-block
    /// body) becomes ONE region that iterates entirely in translated code —
    /// zero chain transfers and zero dispatcher entries per trip, side-exit
    /// stubs with precise PC on every cold leg and on loop exit.  When off,
    /// traces stop at loop closure (the pre-looping behaviour): only
    /// single-block self-loops peel, and the final copy self-chains.
    pub loop_regions: bool,
    /// Copies of a hot loop body stitched into one region before the
    /// back-edge closes (2–4 amortises the loop-back overhead; 0 or 1
    /// disables peeling).  With `loop_regions` off this reverts to the
    /// legacy single-block self-loop peeling.
    pub unroll_loops: usize,
    /// Loop-carried register promotion (requires `opt`): in a looping
    /// region the hottest register-file slots live in host registers across
    /// the back-edge, invariant loads are hoisted to the unit entry, and
    /// every exit path reconciles the promoted slots — in-code compensation
    /// stores before each dispatcher return, and fault-time materialisation
    /// from [`dbt::Region::promoted`] — so the guest always observes a
    /// precise register file.
    pub promote: bool,
    /// Maximum guest instructions per translated block.
    pub max_block_insns: usize,
    /// Host machine configuration.
    pub machine: MachineConfig,
    /// Record per-block execution cycles (needed for the Fig. 21 experiment;
    /// adds bookkeeping overhead).
    pub per_block_stats: bool,
    /// Code-cache capacity in encoded bytes (`None` = unbounded).  When the
    /// bound is hit the cache evicts clock-style; a churn-heavy guest
    /// degrades to re-translation, never to unbounded growth.
    pub cache_capacity_bytes: Option<usize>,
    /// Code-cache capacity in resident regions (`None` = unbounded).
    pub cache_capacity_regions: Option<usize>,
    /// Two-tier translation: region formation runs on background workers
    /// against immutable snapshots while the run thread keeps executing
    /// tier-0 code, with generation/epoch/SMC-gated installs.  When `false`
    /// every formation runs synchronously on the run thread — today's exact
    /// single-threaded behaviour, kept as the comparable baseline.
    pub tiered: bool,
    /// Tier-1 worker threads.  `0` selects *pump mode*: requests queue and
    /// are processed inline at the drain point (identical outcomes, fully
    /// deterministic interleaving — used by the SMC-race tests).
    pub tier_workers: usize,
    /// Content-keyed translation-reuse cache shared with other engine
    /// instances (the N-guests-one-image story).  `None` gives this
    /// instance a private cache.  Only consulted when `tiered` is on.
    pub reuse_cache: Option<Arc<ReuseCache>>,
    /// Attach a virtio-blk DMA device ([`hvm::virtio`]) with this
    /// configuration.  `None` (the default) runs with no device and zero
    /// dispatcher overhead.
    pub virtio: Option<hvm::VirtioBlkConfig>,
}

impl Default for CaptiveConfig {
    fn default() -> Self {
        CaptiveConfig {
            guest_ram: 32 * 1024 * 1024,
            fp_mode: FpMode::Hardware,
            chaining: true,
            form_regions: true,
            opt: true,
            idioms: true,
            region_threshold: 16,
            region_max_insns: 256,
            loop_regions: true,
            unroll_loops: 4,
            promote: true,
            max_block_insns: 64,
            machine: MachineConfig::default(),
            per_block_stats: false,
            cache_capacity_bytes: None,
            cache_capacity_regions: None,
            tiered: true,
            tier_workers: 2,
            reuse_cache: None,
            virtio: None,
        }
    }
}

/// Why [`Captive::run`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunExit {
    /// The guest executed `HLT` or the exit hypercall.
    GuestHalted {
        /// Exit code passed by the guest (0 if halted without one).
        code: u64,
    },
    /// The block budget given to `run` was exhausted.
    BudgetExhausted,
    /// Something went wrong in the execution engine.
    Error(String),
}

/// Aggregate statistics of a run.
///
/// Concurrency audit: every field here is owned and written by the run
/// thread only — tier-1 workers report through [`tier::FormationResult`]
/// messages and never touch shared counters — so plain `u64`s are sound.
/// The shared-state counters (code-cache lookups, evictions, epochs) live in
/// [`CodeCache`] as atomics and are *sampled* into this struct by
/// [`Captive::stats`].
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Simulated host cycles consumed by guest execution.
    pub cycles: u64,
    /// Host instructions executed.
    pub host_insns: u64,
    /// Guest instructions attributed (blocks entered × block length).
    pub guest_insns: u64,
    /// Blocks executed (chained and dispatched).
    pub blocks: u64,
    /// Translations performed.
    pub translations: u64,
    /// Guest exceptions delivered.
    pub guest_exceptions: u64,
    /// Bytes of host code generated.
    pub code_bytes: u64,
    /// Blocks entered through the dispatcher slow path (page resolution +
    /// cache lookup + EL read).
    pub slow_dispatches: u64,
    /// Control transfers that followed a patched chain link, bypassing the
    /// dispatcher.
    pub chained_transfers: u64,
    /// Successor links patched (lazy chain resolutions).
    pub chain_patches: u64,
    /// Fetch-side iTLB hits (instruction fetches resolved without a guest
    /// page-table walk).
    pub itlb_hits: u64,
    /// Fetch-side iTLB misses.
    pub itlb_misses: u64,
    /// Data-side gTLB hits (host data faults whose guest walk was answered
    /// from the cache).
    pub dtlb_hits: u64,
    /// Data-side gTLB misses (host data faults that walked guest tables).
    pub dtlb_misses: u64,
    /// Intra-region constituent transfers: stitched block boundaries crossed
    /// without an interpreter entry (each would have been a chained transfer
    /// under chaining alone).
    pub region_transfers: u64,
    /// Multi-constituent regions formed from hot chain paths.
    pub regions_formed: u64,
    /// Regions formed by unrolling a loop body — single- or multi-block
    /// (subset of `regions_formed`).
    pub regions_unrolled: u64,
    /// Regions whose loop closed as a region-internal back-edge (subset of
    /// `regions_formed`): these iterate inside translated code.
    pub loop_regions_formed: u64,
    /// Back-edge transfers taken: loop trips that stayed inside one region
    /// (each would have been at least a chained transfer, usually several,
    /// without looping regions).
    pub backedge_transfers: u64,
    /// Interpreter entries that executed a multi-constituent region (subset
    /// of `blocks`).
    pub region_entries: u64,
    /// Stale-generation regions evicted by the context-generation sweep.
    pub regions_evicted: u64,
    /// Regfile stores deleted by the LIR optimiser across all translations
    /// (static count).
    pub opt_dead_stores: u64,
    /// Regfile loads the optimiser rewrote into register moves (static).
    pub opt_forwarded_loads: u64,
    /// Partial-width forwards (subset of `opt_forwarded_loads`): 32-bit
    /// loads satisfied by the low half of a 64-bit store (static).
    pub opt_partial_forwarded: u64,
    /// Register-copy uses folded by the optimiser's copy propagation
    /// (static).
    pub opt_copies_folded: u64,
    /// LIR instructions marked dead by the allocator's iterative DCE
    /// (static).
    pub opt_dce_insns: u64,
    /// Register-file slots promoted to loop-carried host registers (static).
    pub opt_promoted_slots: u64,
    /// In-loop regfile loads satisfied from a carrier register instead of a
    /// memory round-trip (static).
    pub opt_hoisted_loads: u64,
    /// Vector (XMM) regfile loads forwarded from earlier vector values,
    /// including cross-file GPR↔XMM transfers (static).
    pub opt_fp_forwarded: u64,
    /// Guest-idiom rewrites applied across all translations (static total
    /// over every rule; see [`dbt::idiom`]).
    pub opt_idioms_fused: u64,
    /// Per-rule idiom rewrites applied, keyed by rule name (static).
    pub idiom_hits: Vec<(String, u64)>,
    /// Per-rule idiom candidate sites — matched and proven sound whether or
    /// not the rule was enabled; the rule miner's input (static).
    pub idiom_candidates: Vec<(String, u64)>,
    /// Dynamic host instructions saved: per block entry, the LIR
    /// instructions eliminated from that translation before encoding.
    pub elided_dyn_insns: u64,
    /// Asynchronous IRQs delivered (subset of `guest_exceptions`).
    pub irqs_delivered: u64,
    /// Timer-originated IRQs delivered (subset of `irqs_delivered`).
    pub timer_irqs: u64,
    /// Regions evicted because the cache hit its capacity bound.
    pub capacity_evictions: u64,
    /// Encoded bytes currently resident in the code cache.
    pub bytes_live: u64,
    /// Regions currently resident in the code cache.
    pub regions_live: u64,
    /// Region-formation attempts that produced no multi-constituent region
    /// (trace too short, or translation bailed out).
    pub formation_failures: u64,
    /// Trace heads permanently quarantined after repeated formation
    /// failures (no further attempts are made for them).
    pub regions_quarantined: u64,
    /// Tier-1 formation requests published to the background service.
    pub tier1_requests: u64,
    /// Regions formed by a background worker and installed after
    /// revalidation (subset of `regions_formed`).
    pub regions_installed_async: u64,
    /// Worker-formed regions discarded at the install gate: formed against
    /// a stale context generation or a since-patched page.
    pub stale_discards: u64,
    /// Regions installed from the content-keyed reuse cache without any
    /// formation work (subset of `regions_formed`).
    pub reuse_hits: u64,
    /// Reuse-cache lookups that found no validated template.
    pub reuse_misses: u64,
    /// JIT wall-clock the run thread blocked on, in nanoseconds: tier-0
    /// translation, snapshot capture, waits for in-flight results, and
    /// synchronous formation (wall time, NOT modeled cycles — excluded from
    /// determinism comparisons).
    pub jit_wall_ns: u64,
    /// Wall-clock spent inside tier-1 workers, in nanoseconds (runs hidden
    /// behind tier-0 execution).
    pub tier_worker_wall_ns: u64,
    /// Nanoseconds from engine construction to the first gated-region
    /// install (0 when none was installed).
    pub first_region_install_ns: u64,
    /// Virtio queue notifications (`msr VblkNotify`) the device received.
    pub virtio_kicks: u64,
    /// Virtio requests submitted (available-ring entries consumed).
    pub virtio_submissions: u64,
    /// Virtio completions retired (used-ring entries written).
    pub virtio_completions: u64,
    /// IRQs the virtio device raised on its latch line.
    pub virtio_irqs: u64,
    /// Requests whose seeded fault decision was not `None`.
    pub virtio_fault_injections: u64,
    /// Bytes DMA'd into guest memory through the external-store path.
    pub virtio_dma_bytes: u64,
    /// Completions retired with a non-OK status (typed device errors).
    pub virtio_io_errors: u64,
    /// DMA completion stores that invalidated live translations
    /// (device-originated external SMC).
    pub external_invalidations: u64,
}

/// The hypervisor.
pub struct Captive {
    /// The simulated host virtual machine.
    pub machine: Machine,
    /// Runtime services (helpers, fault handling, devices).
    pub runtime: CaptiveRuntime,
    /// Translated-code cache (guest-physical indexed).
    pub cache: CodeCache,
    /// JIT phase timers.
    pub timers: PhaseTimers,
    isa: Aarch64Isa,
    config: CaptiveConfig,
    stats: RunStats,
    /// Per-region execution profiles, keyed by region (Fig. 21): cycles and
    /// executions attributed per [`EntryMode`] by [`RegionProfile::record`].
    per_region: HashMap<RegionKey, RegionProfile>,
    /// Context generation the cache was last swept under; stale
    /// multi-constituent regions are evicted the first time the dispatcher
    /// runs after a generation bump.
    swept_region_gen: u64,
    /// Region-formation backoff state per trace head: a failed formation
    /// doubles the link heat required before the next attempt instead of
    /// retrying on every hot transfer, and repeated failures quarantine the
    /// head permanently.
    quarantine: HashMap<RegionKey, FormationBackoff>,
    /// The tier-1 formation service (`None` when `tiered` is off or regions
    /// are disabled entirely).
    tier: Option<TierService>,
    /// Trace heads with a formation request in flight, mapped to the
    /// sequence number of the live request; results carrying any other
    /// sequence are superseded and dropped.
    inflight: HashMap<RegionKey, u64>,
    /// Results drained from the service while waiting for a *different*
    /// key, parked until their own key reaches the install point.
    parked_results: HashMap<RegionKey, FormationResult>,
    /// Next formation-request sequence number.
    next_seq: u64,
    /// Content-keyed translation reuse (tiered mode only): shared across
    /// instances when the config supplies one, private otherwise.
    reuse: Option<Arc<ReuseCache>>,
    /// The guest-idiom rule table every translation applies when
    /// `config.idioms` is on.  Shared by `Arc` with background formation
    /// workers so the synchronous path and tier-1 apply the *same* table;
    /// its content hash joins the reuse key (see [`Captive::reuse_key_for`]).
    idiom_rules: Arc<RuleTable>,
    /// Tier-level wall-clock accounting (run-thread stall vs worker time).
    tier_timers: TierTimers,
    /// Construction time, the zero point for time-to-first-region-install.
    launch: Instant,
}

/// What the content-keyed reuse cache knows about a head at its install
/// point.
enum ReuseOutcome {
    /// A validated template was found: install this instantiation (boxed:
    /// the other variants are a fraction of `Region`'s size).
    Hit(Box<Region>),
    /// A validated refusal was found: this exact content is already known
    /// to form nothing, so skip the worker round-trip.
    Refusal,
    /// Nothing usable is published for the key.
    Miss,
}

/// Retry-backoff record for a trace head whose region formation failed.
#[derive(Debug, Clone, Copy)]
struct FormationBackoff {
    /// Consecutive failed formation attempts.
    failures: u32,
    /// Link heat at which the next attempt may run.
    next_retry_heat: u64,
    /// Set after [`QUARANTINE_AFTER`] failures: never attempt again.
    quarantined: bool,
}

/// Failed formation attempts after which a trace head is quarantined.
const QUARANTINE_AFTER: u32 = 4;

impl Captive {
    /// Creates a hypervisor with a fresh host VM and boots the "unikernel":
    /// host page tables for the Captive area are built and paging is enabled.
    pub fn new(config: CaptiveConfig) -> Self {
        let mut machine = Machine::new(config.machine.clone());
        let mut runtime = CaptiveRuntime::new(&mut machine, config.guest_ram, config.fp_mode);
        if let Some(vcfg) = &config.virtio {
            let dev = hvm::VirtioBlk::new(vcfg.clone(), layout::GUEST_PHYS_BASE, config.guest_ram);
            dev.init_mmio(&mut machine.mem)
                .expect("virtio MMIO window must lie inside guest RAM");
            runtime.virtio = Some(dev);
        }
        // The register-file base pointer lives in %rbp for the whole run.
        machine.set_reg(Gpr::Rbp, layout::REGFILE_VA);
        // Bare-metal guests boot in EL1 (kernel mode).
        machine
            .mem
            .write_u64(
                runtime.regfile_phys + guest_aarch64::CURRENT_EL_OFF as u64,
                1,
            )
            .expect("register file is inside host RAM");
        let cache = CodeCache::new(CacheIndex::GuestPhysical);
        cache.set_capacity(config.cache_capacity_bytes, config.cache_capacity_regions);
        let tiered = config.tiered && config.form_regions;
        let tier = tiered.then(|| TierService::new(config.tier_workers));
        let reuse = tiered.then(|| {
            config
                .reuse_cache
                .clone()
                .unwrap_or_else(|| Arc::new(ReuseCache::new()))
        });
        Captive {
            machine,
            runtime,
            cache,
            timers: PhaseTimers::default(),
            isa: Aarch64Isa,
            config,
            stats: RunStats::default(),
            per_region: HashMap::new(),
            swept_region_gen: 0,
            quarantine: HashMap::new(),
            tier,
            inflight: HashMap::new(),
            parked_results: HashMap::new(),
            next_seq: 0,
            reuse,
            idiom_rules: Arc::new(RuleTable::full()),
            tier_timers: TierTimers::default(),
            launch: Instant::now(),
        }
    }

    /// Installs a guest-idiom rule table (e.g. one mined by
    /// [`Captive::mine_idiom_rules`] from a profiling run).  Takes effect
    /// for every later translation; already-cached code is unaffected.  The
    /// table's hash changes the content-reuse key, so translations made
    /// under different tables never alias in a shared [`ReuseCache`].
    pub fn set_idiom_rules(&mut self, table: RuleTable) {
        self.idiom_rules = Arc::new(table);
    }

    /// The engine's current guest-idiom rule table.
    pub fn idiom_rules(&self) -> &RuleTable {
        &self.idiom_rules
    }

    /// Loads a guest program (little-endian instruction words) at a guest
    /// physical address.
    pub fn load_program(&mut self, guest_phys: u64, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            self.write_guest_phys(guest_phys + i as u64 * 4, *w as u64, 4);
        }
    }

    /// Writes bytes into guest physical memory.
    pub fn write_guest_phys(&mut self, guest_phys: u64, value: u64, size: u64) {
        let host = layout::GUEST_PHYS_BASE + guest_phys;
        self.machine
            .mem
            .write_uint(host, value, size)
            .expect("guest physical write within RAM");
    }

    /// Reads from guest physical memory.
    pub fn read_guest_phys(&mut self, guest_phys: u64, size: u64) -> u64 {
        let host = layout::GUEST_PHYS_BASE + guest_phys;
        self.machine.mem.read_uint(host, size).unwrap_or(0)
    }

    /// Sets the guest entry point (and starts in EL1 with the MMU off).
    pub fn set_entry(&mut self, guest_pc: u64) {
        self.machine.set_reg(Gpr::R15, guest_pc);
        self.machine.ring = Ring::Ring0;
    }

    /// Reads a guest general-purpose register from the register file.
    pub fn guest_reg(&mut self, index: u32) -> u64 {
        let addr = self.runtime.regfile_phys + guest_aarch64::x_off(index) as u64;
        self.machine.mem.read_u64(addr).unwrap_or(0)
    }

    /// Writes a guest general-purpose register.
    pub fn set_guest_reg(&mut self, index: u32, value: u64) {
        let addr = self.runtime.regfile_phys + guest_aarch64::x_off(index) as u64;
        self.machine
            .mem
            .write_u64(addr, value)
            .expect("regfile write");
    }

    /// Reads the guest's NZCV flags nibble from the register file (used by
    /// the cross-engine equivalence tests: the optimiser must preserve the
    /// architectural flags, not just the general registers).
    pub fn guest_nzcv(&mut self) -> u64 {
        let addr = self.runtime.regfile_phys + guest_aarch64::NZCV_OFF as u64;
        self.machine.mem.read_u64(addr).unwrap_or(0)
    }

    /// Console output accumulated from the guest (hypervisor UART).
    pub fn console(&self) -> &[u8] {
        &self.runtime.uart_output
    }

    /// Statistics of the run so far.
    pub fn stats(&self) -> RunStats {
        let mut s = self.stats.clone();
        s.cycles = self.machine.perf.cycles;
        s.host_insns = self.machine.perf.insns;
        s.code_bytes = self.cache.total_encoded_bytes() as u64;
        s.itlb_hits = self.runtime.fetch_tlb.hits;
        s.itlb_misses = self.runtime.fetch_tlb.misses;
        s.dtlb_hits = self.runtime.data_tlb.hits;
        s.dtlb_misses = self.runtime.data_tlb.misses;
        s.region_transfers = self.machine.perf.superblock_transfers;
        s.backedge_transfers = self.machine.perf.backedge_transfers;
        s.regions_evicted = self.cache.stats().evicted_stale_regions;
        s.opt_dead_stores = self.timers.opt_dead_stores;
        s.opt_forwarded_loads = self.timers.opt_forwarded_loads;
        s.opt_partial_forwarded = self.timers.opt_partial_forwarded;
        s.opt_copies_folded = self.timers.opt_copies_folded;
        s.opt_dce_insns = self.timers.opt_dce_insns;
        s.opt_promoted_slots = self.timers.opt_promoted_slots;
        s.opt_hoisted_loads = self.timers.opt_hoisted_loads;
        s.opt_fp_forwarded = self.timers.opt_fp_forwarded;
        s.opt_idioms_fused = self.timers.opt_idioms_fused;
        s.idiom_hits = RuleKind::ALL
            .iter()
            .map(|k| (k.name().to_string(), self.timers.idiom_hits[k.index()]))
            .collect();
        s.idiom_candidates = RuleKind::ALL
            .iter()
            .map(|k| {
                (
                    k.name().to_string(),
                    self.timers.idiom_candidates[k.index()],
                )
            })
            .collect();
        s.elided_dyn_insns = self.machine.perf.elided_insns;
        s.irqs_delivered = self.runtime.events.delivered;
        s.timer_irqs = self.runtime.events.timer_delivered;
        let cs = self.cache.stats();
        s.capacity_evictions = cs.capacity_evictions;
        s.bytes_live = cs.bytes_live;
        s.regions_live = cs.regions_live;
        s.jit_wall_ns = self.tier_timers.run_thread_stall.as_nanos() as u64;
        s.tier_worker_wall_ns = self.tier_timers.worker_wall.as_nanos() as u64;
        s.first_region_install_ns = self
            .tier_timers
            .first_install
            .map_or(0, |d| d.as_nanos() as u64);
        if let Some(dev) = &self.runtime.virtio {
            s.virtio_kicks = dev.stats.kicks;
            s.virtio_submissions = dev.stats.submissions;
            s.virtio_completions = dev.stats.completions;
            s.virtio_irqs = dev.stats.irqs_raised;
            s.virtio_fault_injections = dev.stats.fault_injections;
            s.virtio_dma_bytes = dev.stats.dma_bytes;
            s.virtio_io_errors = dev.stats.io_errors;
        }
        s.external_invalidations = self.runtime.external_invalidations;
        s
    }

    /// Tier-level wall-clock accounting (run-thread stall vs worker time).
    pub fn tier_timers(&self) -> TierTimers {
        self.tier_timers
    }

    /// FNV-1a digest of `len` bytes of guest physical memory starting at
    /// `start` (byte-exact final-state comparison for the chaos harness).
    pub fn guest_mem_digest(&self, start: u64, len: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for a in start..start.saturating_add(len) {
            let b = self
                .machine
                .mem
                .read_uint(layout::GUEST_PHYS_BASE + a, 1)
                .unwrap_or(0) as u8;
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Per-region execution profiles (region key → per-entry-mode record).
    pub fn region_profiles(&self) -> &HashMap<RegionKey, RegionProfile> {
        &self.per_region
    }

    /// Mines a guest-idiom [`RuleTable`] from this run's hot-region
    /// profiles: each rule is ranked by its dynamic candidate count —
    /// Σ over profiled regions of (static candidate sites in the region ×
    /// the region's recorded executions) — and rules that never matched a
    /// candidate anywhere are pruned (disabled), so a guest that exhibits
    /// no instance of an idiom ships a table that never looks for it.
    ///
    /// Needs `per_block_stats` for non-zero dynamic weights; without
    /// profiles the static candidate counters from the translation timers
    /// still seed the ranking, so pruning remains meaningful.
    ///
    /// The bulk-move rewrite consumes the *output* of the zero-test fusion
    /// rule (its loop-exit matcher expects a fused `Cmp/Jcc` pair), so a
    /// mined table that keeps `bulk.memset` also keeps `fuse.cbz`.
    pub fn mine_idiom_rules(&self) -> RuleTable {
        let gen = self.runtime.context_generation();
        let mut weights = [0u64; RULE_COUNT];
        // Dynamic ranking: candidates weighted by how often the region ran.
        for (key, profile) in &self.per_region {
            let Some(region) = self.cache.get(*key, gen) else {
                continue;
            };
            let execs = profile.total_executions();
            for (w, &c) in weights.iter_mut().zip(region.idiom_candidates.iter()) {
                *w += c as u64 * execs;
            }
        }
        // Static fallback: every candidate the translator ever saw counts
        // once, so a rule with real sites survives even if its regions were
        // evicted or never profiled.
        for (w, &c) in weights.iter_mut().zip(self.timers.idiom_candidates.iter()) {
            *w += c;
        }
        let mut table = RuleTable::full();
        for kind in RuleKind::ALL {
            table.set_weight(kind, weights[kind.index()]);
            if weights[kind.index()] == 0 {
                table.set_enabled(kind, false);
            }
        }
        if table.enabled(RuleKind::BulkMemset) && !table.enabled(RuleKind::FuseCbz) {
            table.set_enabled(RuleKind::FuseCbz, true);
        }
        table
    }

    /// Translates the guest virtual address of an *instruction fetch* to a
    /// guest physical address through the fetch-side iTLB, or reports the
    /// fault to deliver.
    fn fetch_translate(&mut self, va: u64) -> Result<u64, GuestEvent> {
        self.runtime.fetch_va_to_pa(&mut self.machine, va)
    }

    /// Runs the guest until it halts or `max_blocks` blocks have been
    /// executed (chained transfers count against the budget too).
    ///
    /// The outer loop is the dispatcher slow path; the inner loop executes
    /// chained blocks back-to-back without re-entering it (see the crate
    /// docs for the link and invalidation rules).
    pub fn run(&mut self, max_blocks: u64) -> RunExit {
        let mut budget = max_blocks;
        // A region whose direct exit was taken but whose successor link was
        // still unresolved; the slow path patches it once the successor is
        // known.
        let mut patch_from: Option<(Arc<Region>, usize)> = None;
        while budget > 0 {
            if let Some(code) = self.runtime.exit_code {
                return RunExit::GuestHalted { code };
            }
            // Due device completions retire here, before event delivery and
            // before any translated code runs: the DMA lands through the
            // external-store path and every touched page holding live
            // translations is invalidated — the device's completion IRQ (if
            // any) is then taken below with the data already visible.
            if self.runtime.poll_virtio(&mut self.machine) {
                for page in self.runtime.take_smc_dirty() {
                    self.cache.invalidate_phys_page(page);
                }
            }
            let pc = self.machine.reg(Gpr::R15);
            // Deterministic event sources deliver here (and at back-edge
            // preemption points that funnel back here): the guest PC is
            // architecturally precise, so ELR is exact even when a timer
            // expired mid-loop inside a region.
            if let Some(line) = self.runtime.events.take(self.machine.perf.cycles) {
                patch_from = None;
                budget -= 1;
                self.deliver_event(GuestEvent::Irq { line }, pc);
                continue;
            }
            // Resolve the entry's guest physical address (cache key).
            let pa = match self.fetch_translate(pc) {
                Ok(pa) => pa,
                Err(event) => {
                    patch_from = None;
                    budget -= 1;
                    self.deliver_event(event, pc);
                    continue;
                }
            };
            let gen = self.runtime.context_generation();
            // First dispatch after a context-generation bump: sweep the
            // cache, evicting every stale-generation multi-constituent
            // region (they can never be dispatched again and would otherwise
            // linger until replaced — unbounded on TLBI-heavy guests).
            if self.config.form_regions && gen != self.swept_region_gen {
                self.cache.evict_stale_regions(gen);
                self.swept_region_gen = gen;
            }
            // One uniform lookup: the region at (entry phys, entry virt) is
            // whatever the best current translation for this entry is — a
            // plain block or a formed trace, with the generation gate applied
            // inside the cache.  Virtual aliases of the same physical entry
            // resolve to distinct regions by construction of the key.
            let key = RegionKey { phys: pa, virt: pc };
            let block = match self.cache.get(key, gen) {
                Some(r) => r,
                None => {
                    self.stats.translations += 1;
                    // Tier-0 translation is synchronous by design (the guest
                    // needs this code *now*); its wall-clock is what the
                    // run thread visibly stalls on.
                    let t0 = Instant::now();
                    let idioms = self.config.idioms.then(|| Arc::clone(&self.idiom_rules));
                    let region = translate_block(
                        &self.isa,
                        &mut self.machine,
                        &mut self.timers,
                        pc,
                        pa,
                        self.config.max_block_insns,
                        self.config.fp_mode,
                        self.config.opt,
                        self.config.promote,
                        idioms.as_deref(),
                    );
                    self.tier_timers.run_thread_stall += t0.elapsed();
                    self.runtime.note_code_page(&mut self.machine, pa & !0xFFF);
                    self.cache.insert(region)
                }
            };
            self.stats.slow_dispatches += 1;
            // Patch the predecessor's successor link now that the target is
            // resolved.  The region key pins the virtual entry, so the link
            // can only short-circuit the exact virtual address it was
            // recorded for — no alias guard needed.
            if let Some((prev, slot)) = patch_from.take() {
                if self.config.chaining {
                    prev.set_link(
                        slot,
                        self.runtime.context_generation(),
                        self.cache.epoch(),
                        &block,
                    );
                    self.stats.chain_patches += 1;
                }
            }
            let mut block = block;
            // Track the guest's exception level in the host protection ring
            // (guest user code runs in ring 3, guest system code in ring 0).
            // The ring stays cached across chained transfers: only blocks
            // with indirect exits (exceptions, ERET, sysreg writes) can
            // change the EL, and those always return to this slow path.
            let el = self
                .machine
                .mem
                .read_u64(self.runtime.regfile_phys + guest_aarch64::CURRENT_EL_OFF as u64)
                .unwrap_or(1);
            self.machine.ring = if el == 0 { Ring::Ring3 } else { Ring::Ring0 };

            let mut chained = false;
            loop {
                let before = self.machine.perf.cycles;
                let backedges_before = self.machine.perf.backedge_transfers;
                let code = Arc::clone(&block.code);
                let exit = if chained {
                    self.machine.run_block_chained(&code, &mut self.runtime)
                } else {
                    self.machine.run_block(&code, &mut self.runtime)
                };
                let spent = self.machine.perf.cycles - before;
                // Loop trips that stayed inside the region during this entry
                // (each back-edge taken re-executed the looping portion).
                let trips = self.machine.perf.backedge_transfers - backedges_before;
                // Invalidate translations for any code pages the guest wrote
                // (bumps the cache epoch, so stale chain links die with them).
                for page in self.runtime.take_smc_dirty() {
                    self.cache.invalidate_phys_page(page);
                }
                self.stats.blocks += 1;
                self.stats.guest_insns +=
                    block.guest_insns as u64 + trips * block.loop_guest_insns as u64;
                // Dynamic instructions-saved accounting: every entry into the
                // region benefits from the LIR instructions eliminated at
                // translation time, and every internal loop trip additionally
                // benefits from the looping portion's share.
                self.machine.perf.elided_insns +=
                    block.elided_insns as u64 + trips * block.loop_elided_insns as u64;
                if block.is_multi() {
                    self.stats.region_entries += 1;
                }
                if self.config.per_block_stats {
                    // One attribution rule for every region shape: cycles and
                    // executions are recorded under the entry mode, and the
                    // region's own key/length/constituents disambiguate what
                    // was entered (a formed trace replaces the plain region
                    // at its key, so the profile follows the translation the
                    // dispatcher actually ran).
                    let p = self.per_region.entry(block.key()).or_default();
                    p.guest_insns = block.guest_insns as u64;
                    p.constituents = block.constituents as u64;
                    p.backedge_trips += trips;
                    let mode = if chained {
                        EntryMode::Chained
                    } else {
                        EntryMode::Dispatched
                    };
                    p.record(mode, spent);
                }
                budget -= 1;
                match exit {
                    ExitReason::BlockEnd | ExitReason::HelperExit => {
                        if let Some(event) = self.runtime.take_pending_event() {
                            match event {
                                GuestEvent::Halt { code } => return RunExit::GuestHalted { code },
                                other => {
                                    let pc_now = self.machine.reg(Gpr::R15);
                                    self.deliver_event(other, pc_now);
                                    break;
                                }
                            }
                        }
                        // Helper exits (exception taken, ERET, sysreg write)
                        // may have changed the EL or translation context:
                        // always re-dispatch through the slow path.
                        if exit == ExitReason::HelperExit {
                            break;
                        }
                        if !self.config.chaining || budget == 0 {
                            break;
                        }
                        // A due event source leaves the chained loop so the
                        // slow path can deliver the IRQ with a precise PC.
                        if self.runtime.events.due(self.machine.perf.cycles) {
                            break;
                        }
                        // A due device completion also leaves: retirement
                        // happens only at the dispatcher top, and a
                        // self-chaining loop would otherwise starve it.
                        if self.runtime.virtio_due(self.machine.perf.cycles) {
                            break;
                        }
                        let next_pc = self.machine.reg(Gpr::R15);
                        let Some(slot) = block.chain_slot(next_pc) else {
                            break;
                        };
                        if let Some(next) = block.follow_link(
                            slot,
                            self.runtime.context_generation(),
                            self.cache.epoch(),
                        ) {
                            // Chained transfer: straight into the successor's
                            // code, skipping page resolution, cache lookup
                            // and EL read.  With region formation enabled the
                            // transfer also feeds the link-heat profile and
                            // may widen the target into a multi-constituent
                            // region.
                            self.stats.chained_transfers += 1;
                            block = if self.config.form_regions {
                                self.maybe_form_region(&block, slot, next, next_pc)
                            } else {
                                next
                            };
                            chained = true;
                            continue;
                        }
                        // Direct exit with an unresolved (or retired) link:
                        // take the slow path once and patch it there.
                        patch_from = Some((Arc::clone(&block), slot));
                        break;
                    }
                    ExitReason::Halted => {
                        let code = self.runtime.exit_code.unwrap_or(0);
                        return RunExit::GuestHalted { code };
                    }
                    ExitReason::MemFault { vaddr, write } => {
                        // A genuine guest data abort: deliver it to the
                        // guest.  The machine's guest PC still addresses the
                        // faulting instruction, so ELR is exact even when
                        // the fault happened deep in a chain.
                        //
                        // If the region carries loop-promoted slots, their
                        // authoritative values sit in host registers at the
                        // fault point (the in-code compensation stores only
                        // run on dispatcher returns): materialise them so the
                        // abort handler observes a precise register file.
                        for &(off, gpr) in block.promoted.iter() {
                            let value = self.machine.reg(gpr);
                            self.machine
                                .mem
                                .write_u64(self.runtime.regfile_phys + off as u64, value)
                                .expect("register file is inside host RAM");
                        }
                        let fault_pc = self.machine.reg(Gpr::R15);
                        self.deliver_event(GuestEvent::DataAbort { vaddr, write }, fault_pc);
                        break;
                    }
                    ExitReason::FuelExhausted => {
                        return RunExit::Error("translated block did not terminate".into())
                    }
                    ExitReason::Error(e) => return RunExit::Error(e),
                }
            }
        }
        RunExit::BudgetExhausted
    }

    /// Profiles a chained transfer into `next` and, when its link heat
    /// crosses the hot threshold, obtains a multi-constituent region for the
    /// chained path starting at `next` and installs it.  Returns the
    /// translation to execute: the (possibly just-formed) region, otherwise
    /// `next` unchanged.
    ///
    /// **Tiered mode** splits the work across two points so formation runs
    /// hidden behind execution: at *half* the threshold a fresh head's
    /// request (snapshot + frozen profile) is published to the background
    /// service; at the threshold — the same guest-progress point where the
    /// synchronous mode forms, so modeled cycles are mode-independent — the
    /// region is obtained from the content-keyed reuse cache, else from the
    /// in-flight worker result (revalidated against live memory, discarded
    /// if stale), else formed synchronously as the always-correct fallback.
    fn maybe_form_region(
        &mut self,
        prev: &Arc<Region>,
        slot: usize,
        next: Arc<Region>,
        next_pc: u64,
    ) -> Arc<Region> {
        if next.gated() {
            return next;
        }
        let heat = prev.heat_up(slot);
        let gen = self.runtime.context_generation();
        // Another predecessor may already have widened this entry: the
        // dispatcher-held `next` then outlives its replaced cache slot, and
        // the link just needs re-pointing (a stat-free peek — this is the
        // former's own bookkeeping, not a dispatch lookup).
        if let Some(r) = self.cache.peek(next.key()) {
            if r.gated() {
                if r.ctx_gen == gen {
                    prev.set_link(slot, gen, self.cache.epoch(), &r);
                    return r;
                }
                return next;
            }
        }
        let key = next.key();
        // Tier-1 publish point: a fresh head halfway to the threshold gets
        // its request snapshotted and queued.  Heads already in flight are
        // not re-published, and heads with a failure history retry
        // synchronously (their traces close too short either way).
        if self.tier.is_some()
            && heat == self.publish_point()
            && !self.inflight.contains_key(&key)
            && !self.quarantine.contains_key(&key)
        {
            // A template (or recorded refusal) already published for this
            // key makes a worker round-trip pointless: the install point
            // will hit the reuse cache — or skip formation — directly.
            let covered = self
                .reuse
                .as_ref()
                .is_some_and(|r| r.covers(self.reuse_key_for(key)));
            if !covered {
                self.publish_formation(key);
            }
        }
        // Formation trigger with retry backoff: a head with no failure
        // history fires exactly at the configured threshold; a failed head
        // waits for its (doubled) retry heat; a quarantined head never
        // fires again.
        match self.quarantine.get(&key) {
            Some(q) if q.quarantined => return next,
            Some(q) => {
                if heat < q.next_retry_heat {
                    return next;
                }
            }
            None => {
                if heat != self.config.region_threshold {
                    return next;
                }
            }
        }
        if self.tier.is_some() {
            match self.obtain_reuse(key, gen) {
                ReuseOutcome::Hit(region) => {
                    return self.install_formed(*region, prev, slot, gen);
                }
                // A validated refusal: a worker (possibly in a prior run
                // sharing the cache) already proved this content forms
                // nothing, so fall straight through to the synchronous
                // attempt — which will refuse identically — without
                // waiting on the worker queue.
                ReuseOutcome::Refusal => {}
                ReuseOutcome::Miss => {
                    if self.inflight.contains_key(&key) {
                        if let Some(region) = self.obtain_async(key, gen) {
                            return self.install_formed(region, prev, slot, gen);
                        }
                    }
                }
            }
        }
        let t0 = Instant::now();
        let idioms = self.config.idioms.then(|| Arc::clone(&self.idiom_rules));
        let (formed, consumed) = form_region(
            &self.isa,
            &mut self.machine,
            &mut self.runtime,
            &mut self.timers,
            &self.cache,
            next_pc,
            next.guest_phys,
            self.config.region_max_insns,
            self.config.unroll_loops,
            self.config.loop_regions,
            self.config.fp_mode,
            self.config.opt,
            self.config.promote,
            idioms.as_deref(),
        );
        self.tier_timers.run_thread_stall += t0.elapsed();
        match formed {
            Some(region) => self.install_formed(region, prev, slot, gen),
            None => {
                // Nothing worth keeping came out (one-constituent trace, or
                // the translation bailed out).  Record the failure and back
                // off: the next attempt requires twice the heat, and
                // repeated failures quarantine the head for good.
                //
                // Publish the refusal under the content key just like the
                // async path does for a worker's TooShort answer: engines
                // sharing the reuse cache then skip the worker round-trip
                // for these exact bytes.  Refusals only short-circuit that
                // wait — the install point still falls through to a
                // synchronous attempt — so this can never suppress a
                // formation that would have succeeded.
                if !consumed.is_empty() {
                    if let Some(reuse) = &self.reuse {
                        reuse.publish_refusal(self.reuse_key_for(key), consumed);
                    }
                }
                self.record_formation_failure(key, heat);
                next
            }
        }
    }

    /// Link heat at which a fresh head's tier-1 request is published:
    /// halfway to the formation threshold, so the worker has the other half
    /// of the warm-up to finish before the install point.
    fn publish_point(&self) -> u64 {
        (self.config.region_threshold / 2).max(1)
    }

    /// Installs a formed (or reused) region: write-protects its pages,
    /// publishes it for content-keyed reuse, inserts it at its key and
    /// re-points the triggering chain link.  Shared by the synchronous,
    /// asynchronous and reuse paths so the bookkeeping cannot diverge.
    fn install_formed(
        &mut self,
        region: Region,
        prev: &Arc<Region>,
        slot: usize,
        gen: u64,
    ) -> Arc<Region> {
        self.quarantine.remove(&region.key());
        // Write-protect every constituent page so self-modifying code on any
        // of them invalidates the region.
        for page in &region.pages {
            self.runtime.note_code_page(&mut self.machine, *page);
        }
        if region.unroll > 1 {
            self.stats.regions_unrolled += 1;
        }
        if region.back_edges > 0 {
            self.stats.loop_regions_formed += 1;
        }
        if let Some(reuse) = &self.reuse {
            // Publish under the *live* page hashes: the async path just
            // validated them equal to the formation snapshot's, and the
            // sync path formed from live memory directly.
            let hashes: Vec<(u64, u64)> = region
                .pages
                .iter()
                .map(|&page| (page, self.live_page_hash(page)))
                .collect();
            reuse.publish(
                self.reuse_key_for(region.key()),
                ReuseTemplate::from_region(&region, &hashes),
            );
        }
        let region = self.cache.insert(region);
        self.stats.regions_formed += 1;
        self.tier_timers.record_install(self.launch.elapsed());
        prev.set_link(slot, gen, self.cache.epoch(), &region);
        region
    }

    /// Records a failed formation attempt for `key` at link heat `heat` and
    /// applies the doubling backoff / quarantine policy.
    fn record_formation_failure(&mut self, key: RegionKey, heat: u64) {
        self.stats.formation_failures += 1;
        let q = self.quarantine.entry(key).or_insert(FormationBackoff {
            failures: 0,
            next_retry_heat: 0,
            quarantined: false,
        });
        q.failures += 1;
        q.next_retry_heat = heat.saturating_mul(2).max(1);
        if q.failures >= QUARANTINE_AFTER && !q.quarantined {
            q.quarantined = true;
            self.stats.regions_quarantined += 1;
        }
    }

    /// Captures a formation snapshot of the current translation state: the
    /// bytes of every known code page, the MMU/translation registers, and
    /// the frozen branch-heat profile.
    fn capture_snapshot(&self) -> FormationSnapshot {
        FormationSnapshot {
            ctx_gen: self.runtime.context_generation(),
            mmu_enabled: self.runtime.guest_mmu_enabled(&self.machine),
            ttbr0: self.runtime.guest_ttbr0(&self.machine),
            guest_ram: self.config.guest_ram,
            pages: self
                .runtime
                .code_pages()
                .map(|page| (page, self.read_live_page(page)))
                .collect(),
            heats: self.cache.branch_profiles(),
        }
    }

    /// Publishes a tier-1 formation request for `key` and registers it
    /// in flight.
    fn publish_formation(&mut self, key: RegionKey) {
        let t0 = Instant::now();
        let snapshot = self.capture_snapshot();
        let seq = self.next_seq;
        self.next_seq += 1;
        let request = FormationRequest {
            seq,
            key,
            snapshot,
            max_insns: self.config.region_max_insns,
            unroll: self.config.unroll_loops,
            close_loops: self.config.loop_regions,
            fp_mode: self.config.fp_mode,
            run_opt: self.config.opt,
            promote: self.config.promote,
            idioms: self.config.idioms.then(|| Arc::clone(&self.idiom_rules)),
        };
        // Only the snapshot capture counts as run-thread translation stall:
        // the channel hand-off below wakes a sleeping worker, and the host
        // scheduler frequently deschedules the sender at that wake point —
        // hundreds of microseconds of scheduling artefact against a
        // single-digit-microsecond capture, none of it translation work.
        let elapsed = t0.elapsed();
        self.tier_timers.snapshot_build += elapsed;
        self.tier_timers.run_thread_stall += elapsed;
        self.inflight.insert(key, seq);
        self.tier.as_mut().expect("tiered mode").submit(request);
        self.stats.tier1_requests += 1;
    }

    /// Looks `key` up in the content-keyed reuse cache, revalidating every
    /// constituent page hash against live memory.  A hit (and a validated
    /// refusal) supersedes any in-flight formation request for the key.
    fn obtain_reuse(&mut self, key: RegionKey, gen: u64) -> ReuseOutcome {
        let Some(reuse) = self.reuse.as_ref().map(Arc::clone) else {
            return ReuseOutcome::Miss;
        };
        let t0 = Instant::now();
        let reuse_key = self.reuse_key_for(key);
        let hit = reuse.lookup(reuse_key, |page, hash| self.live_page_hash(page) == hash);
        let outcome = match hit {
            Some(template) => {
                self.stats.reuse_hits += 1;
                self.inflight.remove(&key);
                ReuseOutcome::Hit(Box::new(template.instantiate(key.phys, key.virt, gen)))
            }
            None if reuse
                .known_refusal(reuse_key, |page, hash| self.live_page_hash(page) == hash) =>
            {
                self.inflight.remove(&key);
                ReuseOutcome::Refusal
            }
            None => {
                self.stats.reuse_misses += 1;
                ReuseOutcome::Miss
            }
        };
        self.tier_timers.run_thread_stall += t0.elapsed();
        outcome
    }

    /// Waits for the in-flight tier-1 result for `key`, revalidates it
    /// against the live machine, and returns the region to install.  `None`
    /// means the worker's answer cannot be used — the trace closed too
    /// short, the region went stale between snapshot and install (counted
    /// as a discard, never installed), or the service is gone — and the
    /// caller falls back to synchronous formation.
    fn obtain_async(&mut self, key: RegionKey, gen: u64) -> Option<Region> {
        loop {
            let expected = self.inflight.get(&key).copied()?;
            let result = match self.parked_results.remove(&key) {
                Some(r) => r,
                None => {
                    let t0 = Instant::now();
                    let received = self.tier.as_mut().expect("tiered mode").recv();
                    self.tier_timers.run_thread_stall += t0.elapsed();
                    match received {
                        Some(r) => r,
                        None => {
                            // Pump queue empty, or every worker died: there
                            // is nothing to wait for.
                            self.inflight.remove(&key);
                            return None;
                        }
                    }
                }
            };
            if result.key == key && result.seq == expected {
                match result.outcome {
                    WorkerOutcome::Formed {
                        region,
                        consumed,
                        timers,
                        wall,
                    } => {
                        self.inflight.remove(&key);
                        self.timers.merge(&timers);
                        self.tier_timers.worker_wall += wall;
                        // The install gate: the region must have been formed
                        // under the current context generation AND every
                        // page it read must still hold the captured bytes.
                        let valid = region.ctx_gen == gen
                            && consumed
                                .iter()
                                .all(|&(page, hash)| self.live_page_hash(page) == hash);
                        if valid {
                            self.stats.regions_installed_async += 1;
                            return Some(*region);
                        }
                        self.stats.stale_discards += 1;
                        return None;
                    }
                    WorkerOutcome::TooShort {
                        consumed,
                        timers,
                        wall,
                    } => {
                        self.inflight.remove(&key);
                        self.timers.merge(&timers);
                        self.tier_timers.worker_wall += wall;
                        // Remember the refusal under the content key: the
                        // same bytes never pay this round-trip again, here
                        // or in a later run sharing the reuse cache.
                        if let Some(reuse) = &self.reuse {
                            reuse.publish_refusal(self.reuse_key_for(key), consumed);
                        }
                        return None;
                    }
                    WorkerOutcome::NeedPages { mut request, pages } => {
                        // Refill the snapshot from live memory and resubmit
                        // under a fresh sequence number; the install gate
                        // revalidates everything at the end regardless.
                        let t0 = Instant::now();
                        for page in pages {
                            let bytes = self.read_live_page(page);
                            request.snapshot.insert_page(page, bytes);
                        }
                        let seq = self.next_seq;
                        self.next_seq += 1;
                        request.seq = seq;
                        self.inflight.insert(key, seq);
                        self.tier.as_mut().expect("tiered mode").submit(request);
                        self.tier_timers.run_thread_stall += t0.elapsed();
                    }
                }
            } else if self.inflight.get(&result.key) == Some(&result.seq) {
                // A live result for a different key: park it until that key
                // reaches its own install point.
                self.parked_results.insert(result.key, result);
            }
            // Superseded or abandoned results are dropped on the floor —
            // their timers too, so no counter depends on worker scheduling.
        }
    }

    /// The content identity `key`'s translations are published/looked up
    /// under: entry addresses, the codegen knobs, and the live hash of the
    /// entry page.
    fn reuse_key_for(&self, key: RegionKey) -> ReuseKey {
        ReuseKey {
            phys: key.phys,
            virt: key.virt,
            knobs: pack_knobs(
                self.config.fp_mode == FpMode::Software,
                self.config.opt,
                self.config.loop_regions,
                self.config.promote,
                self.config.idioms,
                self.config.unroll_loops,
                self.config.region_max_insns,
                self.idiom_rules.hash(),
            ),
            entry_page_hash: self.live_page_hash(key.phys & !0xFFF),
        }
    }

    /// The live bytes of one guest physical page (zero-filled past the end
    /// of backed memory).
    fn read_live_page(&self, page_base: u64) -> Vec<u8> {
        let mut bytes = vec![0u8; tier::PAGE_BYTES];
        if self
            .machine
            .mem
            .read(layout::GUEST_PHYS_BASE + page_base, &mut bytes)
            .is_err()
        {
            bytes.fill(0);
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = self
                    .machine
                    .mem
                    .read_uint(layout::GUEST_PHYS_BASE + page_base + i as u64, 1)
                    .unwrap_or(0) as u8;
            }
        }
        bytes
    }

    /// FNV-1a content hash of one live guest physical page.
    fn live_page_hash(&self, page_base: u64) -> u64 {
        fnv1a(&self.read_live_page(page_base))
    }

    /// Delivers a guest-visible event (exception) by updating the guest
    /// system registers and redirecting execution to the vector base.
    fn deliver_event(&mut self, event: GuestEvent, faulting_pc: u64) {
        self.stats.guest_exceptions += 1;
        self.runtime
            .deliver_exception(&mut self.machine, event, faulting_pc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_aarch64::asm;

    fn boot(words: &[u32]) -> (Captive, RunExit) {
        let mut c = Captive::new(CaptiveConfig::default());
        c.load_program(0x1000, words);
        c.set_entry(0x1000);
        let exit = c.run(100_000);
        (c, exit)
    }

    #[test]
    fn runs_a_simple_arithmetic_program() {
        // x0 = 40 + 2, then exit with code x0 via the exit hypercall.
        let mut a = asm::Assembler::new();
        a.push(asm::movz(0, 40, 0));
        a.push(asm::addi(0, 0, 2));
        a.push(asm::hlt());
        let (mut c, exit) = boot(&a.finish());
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        assert_eq!(c.guest_reg(0), 42);
    }

    #[test]
    fn loops_and_flags_work() {
        // Sum 1..=100 into x0.
        let mut a = asm::Assembler::new();
        a.push(asm::movz(0, 0, 0));
        a.push(asm::movz(1, 100, 0));
        a.label("loop");
        a.push(asm::add(0, 0, 1));
        a.push(asm::subi(1, 1, 1));
        a.cbnz_to(1, "loop");
        a.push(asm::hlt());
        let (mut c, exit) = boot(&a.finish());
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        assert_eq!(c.guest_reg(0), 5050);
    }

    #[test]
    fn memory_access_with_mmu_off_maps_on_demand() {
        // Store then load back through guest "physical" addresses.
        let mut a = asm::Assembler::new();
        a.mov_imm64(1, 0x10000);
        a.mov_imm64(2, 0xABCD);
        a.push(asm::str(2, 1, 8));
        a.push(asm::ldr(3, 1, 8));
        a.push(asm::hlt());
        let (mut c, exit) = boot(&a.finish());
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        assert_eq!(c.guest_reg(3), 0xABCD);
        assert!(
            c.machine.perf.page_faults > 0,
            "demand mapping faulted once"
        );
    }

    #[test]
    fn floating_point_uses_host_fpu() {
        // d0 = 1.5; d1 = d0 * d0; x0 = bits(d1)
        let mut a = asm::Assembler::new();
        a.push(asm::fmov_imm(0, 0x78)); // 1.5
        a.push(asm::fmul(1, 0, 0));
        a.push(asm::fmov_to_gpr(0, 1));
        a.push(asm::hlt());
        let (mut c, exit) = boot(&a.finish());
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        assert_eq!(f64::from_bits(c.guest_reg(0)), 2.25);
        assert!(
            c.machine.perf.helper_calls <= 1,
            "no FP helper calls (only the final halt hypercall)"
        );
    }

    #[test]
    fn fsqrt_fixup_is_bit_accurate_with_arm() {
        // sqrt(-0.5) must be the positive default NaN, not the host's -NaN.
        let mut a = asm::Assembler::new();
        a.push(asm::fmov_imm(0, 0xE0)); // -0.5
        a.push(asm::fsqrt(1, 0));
        a.push(asm::fmov_to_gpr(0, 1));
        a.push(asm::hlt());
        let (mut c, exit) = boot(&a.finish());
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        let mut env = softfloat::FpEnv::arm();
        let expected = softfloat::f64_sqrt_arm((-0.5f64).to_bits(), &mut env);
        assert_eq!(c.guest_reg(0), expected);
    }

    #[test]
    fn svc_takes_an_exception_to_el1() {
        // Install a vector that moves 99 into x5 then halts; cause an SVC from
        // the main flow.
        let mut a = asm::Assembler::new();
        // Vector code is placed at 0x2000 (VBAR).
        a.mov_imm64(1, 0x2000);
        a.push(asm::msr(guest_aarch64::SysReg::Vbar as u32, 1));
        a.push(asm::svc(3));
        a.push(asm::hlt()); // not reached: the vector halts first
        let main = a.finish();
        let mut v = asm::Assembler::new();
        v.push(asm::movz(5, 99, 0));
        v.push(asm::mrs(6, guest_aarch64::SysReg::Esr as u32));
        v.push(asm::hlt());
        let vector = v.finish();
        let mut c = Captive::new(CaptiveConfig::default());
        c.load_program(0x1000, &main);
        c.load_program(0x2000, &vector);
        c.set_entry(0x1000);
        let exit = c.run(100_000);
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        assert_eq!(c.guest_reg(5), 99);
        let esr = c.guest_reg(6);
        assert_eq!(esr >> 26, guest_aarch64::esr_class::SVC, "ESR class is SVC");
        assert_eq!(esr & 0xFFFF, 3, "ESR carries the SVC immediate");
    }

    #[test]
    fn console_hypercall_collects_output() {
        let mut a = asm::Assembler::new();
        for ch in b"hi" {
            a.push(asm::movz(0, *ch as u32, 0));
            a.push(asm::svc(runtime::SVC_PUTCHAR));
        }
        a.push(asm::hlt());
        let (c, exit) = boot(&a.finish());
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        assert_eq!(c.console(), b"hi");
    }

    #[test]
    fn hot_loop_dispatches_through_chain_links() {
        // A tight countdown loop: after the first two trips (translate, then
        // patch), every iteration must flow through the chain link without
        // re-entering the dispatcher slow path.  Region formation is pinned
        // off — this test measures the chain machinery alone (with it on,
        // the self-loop unrolls and interpreter entries drop fourfold).
        let mut a = asm::Assembler::new();
        a.push(asm::movz(1, 2000, 0));
        a.label("loop");
        a.push(asm::subi(1, 1, 1));
        a.cbnz_to(1, "loop");
        a.push(asm::hlt());
        let mut c = Captive::new(CaptiveConfig {
            form_regions: false,
            ..CaptiveConfig::default()
        });
        c.load_program(0x1000, &a.finish());
        c.set_entry(0x1000);
        let exit = c.run(100_000);
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        let stats = c.stats();
        assert!(
            stats.chained_transfers > 1900,
            "loop iterations must chain: {} chained of {} blocks",
            stats.chained_transfers,
            stats.blocks
        );
        assert!(
            stats.slow_dispatches < 20,
            "slow path must be cold: {} slow dispatches",
            stats.slow_dispatches
        );
        assert!(stats.chain_patches >= 1, "links are patched lazily");
        assert_eq!(
            stats.blocks,
            stats.chained_transfers + stats.slow_dispatches,
            "every executed block is either chained or dispatched"
        );
    }

    #[test]
    fn chaining_cycle_gap_comes_from_chained_transfers() {
        // Same guest program under chaining on/off: identical architectural
        // results, and the entire cycle gap is the dispatch-vs-chain cost of
        // the counted chained transfers — not a post-hoc credit.
        let mut a = asm::Assembler::new();
        a.push(asm::movz(0, 0, 0));
        a.push(asm::movz(1, 1500, 0));
        a.label("loop");
        a.push(asm::add(0, 0, 1));
        a.push(asm::subi(1, 1, 1));
        a.cbnz_to(1, "loop");
        a.push(asm::hlt());
        let words = a.finish();

        // Superblocks are pinned off: this test pins *chain-only* cycle
        // accounting (re-baselined when superblocks went default-on).
        let run = |chaining: bool| {
            let mut c = Captive::new(CaptiveConfig {
                chaining,
                form_regions: false,
                ..CaptiveConfig::default()
            });
            c.load_program(0x1000, &words);
            c.set_entry(0x1000);
            let exit = c.run(100_000);
            assert_eq!(exit, RunExit::GuestHalted { code: 0 });
            c
        };
        let mut on = run(true);
        let mut off = run(false);

        for r in 0..31 {
            assert_eq!(on.guest_reg(r), off.guest_reg(r), "x{r} diverged");
        }
        let son = on.stats();
        let soff = off.stats();
        assert_eq!(soff.chained_transfers, 0);
        assert!(son.chained_transfers > 1400);
        assert_eq!(
            on.machine.perf.chained_entries, son.chained_transfers,
            "machine- and hypervisor-level chained counters must agree"
        );
        assert!(son.cycles < soff.cycles, "chaining must be cheaper");
        let per_transfer = on.machine.cost.dispatch - on.machine.cost.chain;
        assert_eq!(
            soff.cycles - son.cycles,
            son.chained_transfers * per_transfer,
            "the gap is exactly the chained transfers' saved dispatch cost"
        );
    }

    #[test]
    fn self_modifying_code_unlinks_stale_translations() {
        // The guest rewrites a subroutine between two calls; the second call
        // must execute the new code, never a stale translation reached
        // through a chain link.
        let patched_pair = asm::movz(5, 2, 0) as u64 | (asm::ret() as u64) << 32;
        let mut a = asm::Assembler::new();
        a.push(asm::movz(6, 2, 0));
        a.adr_to(3, "target");
        a.mov_imm64(4, patched_pair);
        a.label("loop");
        a.bl_to("target");
        a.push(asm::str(4, 3, 0));
        a.push(asm::subi(6, 6, 1));
        a.cbnz_to(6, "loop");
        a.push(asm::hlt());
        a.label("target");
        a.push(asm::movz(5, 1, 0));
        a.push(asm::ret());
        let (mut c, exit) = boot(&a.finish());
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        assert_eq!(c.guest_reg(5), 2, "second call must observe the new code");
        assert!(
            c.cache.stats().invalidated_page >= 1,
            "the write-protected code page invalidated its translations"
        );
    }

    #[test]
    fn translation_state_writes_retire_chain_links() {
        // TTBR0 writes bump the context generation, so links patched in an
        // earlier context are never followed, and execution stays correct.
        let mut a = asm::Assembler::new();
        a.push(asm::movz(0, 0, 0));
        a.push(asm::movz(1, 50, 0));
        a.push(asm::movz(2, 0, 0));
        a.label("loop");
        a.push(asm::add(0, 0, 1));
        a.push(asm::msr(guest_aarch64::SysReg::Ttbr0 as u32, 2));
        a.push(asm::subi(1, 1, 1));
        a.cbnz_to(1, "loop");
        a.push(asm::hlt());
        let (mut c, exit) = boot(&a.finish());
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        assert_eq!(c.guest_reg(0), (1..=50).sum::<u64>());
        assert!(
            c.runtime.context_generation() >= 50,
            "every TTBR0 write must bump the generation"
        );
        assert_eq!(
            c.stats().chained_transfers,
            0,
            "per-iteration generation bumps must keep links stale"
        );
    }

    #[test]
    fn tlbi_retires_chain_links_and_stays_correct() {
        let mut a = asm::Assembler::new();
        a.push(asm::movz(0, 0, 0));
        a.push(asm::movz(1, 20, 0));
        a.label("loop");
        a.push(asm::add(0, 0, 1));
        a.push(asm::tlbi());
        a.push(asm::subi(1, 1, 1));
        a.cbnz_to(1, "loop");
        a.push(asm::hlt());
        let (mut c, exit) = boot(&a.finish());
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        assert_eq!(c.guest_reg(0), (1..=20).sum::<u64>());
        assert!(c.runtime.context_generation() >= 20);
        assert_eq!(c.stats().chained_transfers, 0);
    }

    #[test]
    fn exception_mid_chain_delivers_with_correct_elr() {
        // A chained store loop marches past the end of guest RAM; the data
        // abort must carry the exact faulting PC into ELR even though it was
        // raised in a block entered through a chain link.
        let mut a = asm::Assembler::new();
        a.mov_imm64(9, 0x2000);
        a.push(asm::msr(guest_aarch64::SysReg::Vbar as u32, 9));
        a.mov_imm64(1, 0x1C0_0000); // 28 MiB, 4 strides below the 32 MiB limit
        a.mov_imm64(2, 0xDEAD);
        a.mov_imm64(3, 0x10_0000); // 1 MiB stride
        a.label("loop");
        let fault_idx = a.here();
        a.push(asm::str(2, 1, 0));
        a.push(asm::add(1, 1, 3));
        a.b_to("loop");
        let main = a.finish();
        let fault_pc = 0x1000 + fault_idx as u64 * 4;

        let mut v = asm::Assembler::new();
        v.push(asm::mrs(10, guest_aarch64::SysReg::Elr as u32));
        v.push(asm::mrs(11, guest_aarch64::SysReg::Far as u32));
        v.push(asm::hlt());

        let mut c = Captive::new(CaptiveConfig::default());
        c.load_program(0x1000, &main);
        c.load_program(0x2000, &v.finish());
        c.set_entry(0x1000);
        let exit = c.run(100_000);
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        assert_eq!(c.guest_reg(10), fault_pc, "ELR is the faulting PC");
        assert_eq!(c.guest_reg(11), 0x200_0000, "FAR is the first OOB address");
        assert!(
            c.stats().chained_transfers >= 1,
            "the fault happened while chain-looping"
        );
    }

    fn region_config() -> CaptiveConfig {
        CaptiveConfig {
            form_regions: true,
            ..CaptiveConfig::default()
        }
    }

    /// A multi-block same-page loop (two unconditional jumps plus the
    /// counted conditional), hot enough to cross the formation threshold.
    fn multi_block_loop(iters: u32) -> Vec<u32> {
        let mut a = asm::Assembler::new();
        a.push(asm::movz(1, iters, 0));
        a.push(asm::movz(9, 0, 0));
        a.label("loop");
        a.b_to("a");
        a.label("a");
        a.b_to("b");
        a.label("b");
        a.push(asm::add(9, 9, 1));
        a.push(asm::subi(1, 1, 1));
        a.cbnz_to(1, "loop");
        a.push(asm::hlt());
        a.finish()
    }

    #[test]
    fn regions_fuse_hot_chain_paths() {
        let words = multi_block_loop(3000);
        let run = |form_regions: bool| {
            let mut c = Captive::new(CaptiveConfig {
                form_regions,
                ..CaptiveConfig::default()
            });
            c.load_program(0x1000, &words);
            c.set_entry(0x1000);
            assert_eq!(c.run(100_000), RunExit::GuestHalted { code: 0 });
            c
        };
        let mut on = run(true);
        let mut off = run(false);
        for r in 0..31 {
            assert_eq!(on.guest_reg(r), off.guest_reg(r), "x{r} diverged");
        }
        let son = on.stats();
        let soff = off.stats();
        assert!(son.regions_formed >= 1, "hot loop must form a superblock");
        assert!(
            son.region_transfers > 2_000,
            "stitched transfers absorb the loop: {}",
            son.region_transfers
        );
        assert!(
            son.blocks < soff.blocks / 2,
            "superblocks must cut interpreter entries: {} vs {}",
            son.blocks,
            soff.blocks
        );
        assert!(
            son.cycles <= soff.cycles,
            "superblocks must not cost cycles over chaining: {} vs {}",
            son.cycles,
            soff.cycles
        );
        assert_eq!(
            son.region_transfers, on.machine.perf.superblock_transfers,
            "hypervisor- and machine-level counters agree"
        );
    }

    #[test]
    fn region_side_exit_leaves_with_exact_state() {
        // The loop's conditional is stitched into the superblock with its
        // exit leg (the CBZ taken to "done") as a side-exit stub; when the
        // counter reaches zero the side exit must deliver execution to the
        // exit path with the accumulator architecturally exact.
        let mut a = asm::Assembler::new();
        a.push(asm::movz(1, 500, 0));
        a.push(asm::movz(9, 0, 0));
        a.label("loop");
        a.push(asm::addi(9, 9, 1));
        a.push(asm::subi(1, 1, 1));
        a.cbz_to(1, "done");
        a.b_to("loop");
        a.label("done");
        a.push(asm::hlt());
        let mut c = Captive::new(region_config());
        c.load_program(0x1000, &a.finish());
        c.set_entry(0x1000);
        assert_eq!(c.run(100_000), RunExit::GuestHalted { code: 0 });
        assert_eq!(c.guest_reg(9), 500, "side exit preserved the accumulator");
        assert_eq!(c.guest_reg(1), 0);
        let s = c.stats();
        assert!(s.regions_formed >= 1);
        assert!(s.region_transfers > 400, "the backward jump was stitched");
    }

    #[test]
    fn smc_on_interior_region_page_invalidates_it() {
        // A hot call loop whose callee lives on the next page: the formed
        // superblock spans both pages with the callee page interior.  A
        // guest write to the callee must kill the superblock so the second
        // call phase executes the new code.
        let mut main = asm::Assembler::new();
        main.push(asm::movz(6, 100, 0));
        main.label("loop");
        let bl_idx = main.here();
        main.push(asm::bl(0x2000 - (0x1000 + bl_idx as i64 * 4)));
        main.push(asm::subi(6, 6, 1));
        main.cbnz_to(6, "loop");
        main.mov_imm64(3, 0x2000);
        main.mov_imm64(4, asm::movz(5, 2, 0) as u64);
        main.push(asm::strw(4, 3, 0)); // self-modifying write to the callee
        let bl2_idx = main.here();
        main.push(asm::bl(0x2000 - (0x1000 + bl2_idx as i64 * 4)));
        main.push(asm::hlt());
        let mut sub = asm::Assembler::new();
        sub.push(asm::movz(5, 1, 0));
        sub.push(asm::ret());

        let mut c = Captive::new(region_config());
        c.load_program(0x1000, &main.finish());
        c.load_program(0x2000, &sub.finish());
        c.set_entry(0x1000);
        assert_eq!(c.run(100_000), RunExit::GuestHalted { code: 0 });
        let s = c.stats();
        assert!(s.regions_formed >= 1, "the call loop must get hot");
        assert!(
            s.region_transfers > 50,
            "calls flow through the stitched BL"
        );
        assert_eq!(
            c.guest_reg(5),
            2,
            "the post-SMC call must run the rewritten callee"
        );
        assert_eq!(
            c.cache.multi_region_count(),
            0,
            "writing an interior page must discard the superblock"
        );
        assert!(c.cache.stats().invalidated_page >= 1);
    }

    #[test]
    fn region_indirect_exit_falls_back_to_chained_dispatch() {
        // The superblock covering [bl → callee..ret] ends at the RET
        // (indirect): every execution leaves through the slow path, after
        // which ordinary chaining resumes — and every interpreter entry is
        // still either chained or dispatched.
        let mut a = asm::Assembler::new();
        a.push(asm::movz(6, 200, 0));
        a.label("loop");
        a.bl_to("sub");
        a.push(asm::subi(6, 6, 1));
        a.cbnz_to(6, "loop");
        a.push(asm::hlt());
        a.label("sub");
        a.push(asm::movz(5, 1, 0));
        a.push(asm::ret());
        let mut c = Captive::new(region_config());
        c.load_program(0x1000, &a.finish());
        c.set_entry(0x1000);
        assert_eq!(c.run(100_000), RunExit::GuestHalted { code: 0 });
        assert_eq!(c.guest_reg(5), 1);
        assert_eq!(c.guest_reg(6), 0);
        let s = c.stats();
        assert!(s.regions_formed >= 1);
        assert!(
            s.region_entries > 100,
            "the superblock is re-entered every iteration: {}",
            s.region_entries
        );
        assert!(
            s.chained_transfers > 100,
            "chained dispatch continues after each indirect exit"
        );
        assert_eq!(
            s.blocks,
            s.chained_transfers + s.slow_dispatches,
            "every entry is chained or dispatched, superblocks included"
        );
    }

    #[test]
    fn region_fault_mid_trace_delivers_exact_elr() {
        // A striding store loop split into two blocks so a superblock forms;
        // the eventual out-of-bounds store faults *inside* the superblock
        // and must still deliver the exact faulting PC into ELR.
        let mut a = asm::Assembler::new();
        a.mov_imm64(9, 0x2000);
        a.push(asm::msr(guest_aarch64::SysReg::Vbar as u32, 9));
        a.mov_imm64(1, 0x100_0000); // 16 MiB
        a.mov_imm64(2, 0xDEAD);
        a.mov_imm64(3, 0x1_0000); // 64 KiB stride → 256 iterations to 32 MiB
        a.label("loop");
        let fault_idx = a.here();
        a.push(asm::str(2, 1, 0));
        a.push(asm::add(1, 1, 3));
        a.b_to("m");
        a.label("m");
        a.b_to("loop");
        let main = a.finish();
        let fault_pc = 0x1000 + fault_idx as u64 * 4;

        let mut v = asm::Assembler::new();
        v.push(asm::mrs(10, guest_aarch64::SysReg::Elr as u32));
        v.push(asm::mrs(11, guest_aarch64::SysReg::Far as u32));
        v.push(asm::hlt());

        let mut c = Captive::new(region_config());
        c.load_program(0x1000, &main);
        c.load_program(0x2000, &v.finish());
        c.set_entry(0x1000);
        assert_eq!(c.run(100_000), RunExit::GuestHalted { code: 0 });
        assert_eq!(c.guest_reg(10), fault_pc, "ELR is the faulting PC");
        assert_eq!(c.guest_reg(11), 0x200_0000, "FAR is the first OOB address");
        let s = c.stats();
        assert!(s.regions_formed >= 1, "the loop got hot before faulting");
        assert!(s.region_transfers > 100);
    }

    #[test]
    fn region_profiles_attribute_per_entry_mode() {
        let words = multi_block_loop(1000);
        let mut c = Captive::new(CaptiveConfig {
            form_regions: true,
            per_block_stats: true,
            ..CaptiveConfig::default()
        });
        c.load_program(0x1000, &words);
        c.set_entry(0x1000);
        assert_eq!(c.run(100_000), RunExit::GuestHalted { code: 0 });
        let profiles = c.region_profiles();
        let mut chained = 0u64;
        let mut dispatched = 0u64;
        let mut multi_entries = 0u64;
        let mut total_cycles = 0u64;
        for p in profiles.values() {
            assert_eq!(
                p.executions(EntryMode::Chained) + p.executions(EntryMode::Dispatched),
                p.total_executions(),
                "the two entry modes partition the total"
            );
            chained += p.executions(EntryMode::Chained);
            dispatched += p.executions(EntryMode::Dispatched);
            total_cycles += p.total_cycles();
            if p.constituents > 1 {
                multi_entries += p.total_executions();
            }
        }
        let s = c.stats();
        assert_eq!(
            chained + dispatched,
            s.blocks,
            "the profiles cover every interpreter entry"
        );
        assert_eq!(chained, s.chained_transfers);
        assert_eq!(dispatched, s.slow_dispatches);
        assert!(
            multi_entries >= s.region_entries,
            "rows whose key now holds a formed region cover at least the \
             multi-constituent entries (plus any pre-formation plain entries \
             recorded under the same key): {multi_entries} vs {}",
            s.region_entries
        );
        assert!(
            multi_entries >= 1,
            "the formed region's entries are attributed: {multi_entries}"
        );
        assert!(
            s.blocks < 100,
            "the looping region absorbs the hot loop into a handful of \
             interpreter entries: {}",
            s.blocks
        );
        assert!(chained > 0, "pre-formation chained entries are attributed");
        assert!(total_cycles > 0);
    }

    #[test]
    fn data_gtlb_caches_guest_walks_across_repeated_faults() {
        // MMU-on guest: a store loop hammers a read-only page, taking a data
        // abort per iteration whose handler skips the store.  Every host
        // fault needs the guest walk result; only the first may actually
        // walk — the rest must hit the data-side gTLB (no TLBI intervenes).
        use guest_aarch64::mmu::{GuestPageFlags, GuestPageTableBuilder};
        // Build the guest translation tables in a scratch map (the builder
        // needs simultaneous read/write views), then copy them into guest
        // physical memory: the code and vector pages identity-mapped, the
        // target page read-only.
        let table = std::cell::RefCell::new(HashMap::<u64, u64>::new());
        let mut b = GuestPageTableBuilder::new(0x10_0000, 0x18_0000);
        {
            let mut map = |va: u64, pa: u64, flags: GuestPageFlags| {
                assert!(b.map(
                    |a| Some(*table.borrow().get(&a).unwrap_or(&0)),
                    |a, v| {
                        table.borrow_mut().insert(a, v);
                    },
                    va,
                    pa,
                    flags,
                ));
            };
            map(0x1000, 0x1000, GuestPageFlags::kernel_rw());
            map(0x2000, 0x2000, GuestPageFlags::kernel_rw());
            map(
                0x40_0000,
                0x5000,
                GuestPageFlags {
                    valid: true,
                    writable: false,
                    user: true,
                },
            );
        }
        let mut c = Captive::new(CaptiveConfig::default());
        for (&a, &v) in table.borrow().iter() {
            c.write_guest_phys(a, v, 8);
        }
        let root = b.root;

        let mut a = asm::Assembler::new();
        a.mov_imm64(9, 0x2000);
        a.push(asm::msr(guest_aarch64::SysReg::Vbar as u32, 9));
        a.mov_imm64(0, root);
        a.push(asm::msr(guest_aarch64::SysReg::Ttbr0 as u32, 0));
        a.push(asm::movz(0, 1, 0));
        a.push(asm::msr(guest_aarch64::SysReg::Sctlr as u32, 0)); // MMU on
        a.mov_imm64(1, 0x40_0000);
        a.push(asm::movz(6, 50, 0));
        a.label("loop");
        a.push(asm::str(2, 1, 0)); // write to the RO page: data abort
        a.push(asm::subi(6, 6, 1));
        a.cbnz_to(6, "loop");
        a.push(asm::hlt());
        let mut v = asm::Assembler::new();
        v.push(asm::mrs(10, guest_aarch64::SysReg::Elr as u32));
        v.push(asm::addi(10, 10, 4));
        v.push(asm::msr(guest_aarch64::SysReg::Elr as u32, 10));
        v.push(asm::eret());

        c.load_program(0x1000, &a.finish());
        c.load_program(0x2000, &v.finish());
        c.set_entry(0x1000);
        assert_eq!(c.run(100_000), RunExit::GuestHalted { code: 0 });
        assert_eq!(c.guest_reg(6), 0, "all 50 aborts were handled");
        let s = c.stats();
        assert_eq!(s.guest_exceptions, 50);
        assert!(
            s.dtlb_hits >= 49,
            "repeated faults on the same VA must hit the gTLB: {} hits / {} misses",
            s.dtlb_hits,
            s.dtlb_misses
        );
        assert!(
            s.dtlb_misses <= 4,
            "only first-touch faults may walk: {} misses",
            s.dtlb_misses
        );
    }

    #[test]
    fn context_generation_bump_sweeps_stale_regions() {
        // A hot multi-block loop forms a superblock; the TLBI afterwards
        // bumps the context generation, and the next slow dispatch must
        // evict the now-unreachable stale-generation superblock instead of
        // letting it linger until replaced.
        let mut a = asm::Assembler::new();
        a.push(asm::movz(1, 3000, 0));
        a.push(asm::movz(9, 0, 0));
        a.label("loop");
        a.b_to("a");
        a.label("a");
        a.push(asm::addi(9, 9, 1));
        a.push(asm::subi(1, 1, 1));
        a.cbnz_to(1, "loop");
        a.push(asm::tlbi());
        a.push(asm::movz(5, 7, 0));
        a.push(asm::hlt());
        let (mut c, exit) = boot(&a.finish());
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        assert_eq!(c.guest_reg(9), 3000);
        assert_eq!(c.guest_reg(5), 7);
        let s = c.stats();
        assert!(s.regions_formed >= 1, "the loop must get hot");
        assert_eq!(
            c.cache.multi_region_count(),
            0,
            "the generation bump must sweep the stale superblock"
        );
        assert!(s.regions_evicted >= 1, "the sweep is recorded in the stats");
    }

    #[test]
    fn optimizer_reports_eliminated_work_and_saves_cycles() {
        // Back-to-back flag setters: the first NZCV store is dead, the
        // loads of x9/x1 forward, and the run must be architecturally
        // identical but cheaper than with the optimizer off.
        let mut a = asm::Assembler::new();
        a.push(asm::movz(1, 1000, 0));
        a.push(asm::movz(9, 0, 0));
        a.push(asm::movz(2, 1, 0));
        a.label("loop");
        a.push(asm::adds(9, 9, 2)); // NZCV overwritten unread
        a.push(asm::subis(1, 1, 1)); // NZCV read by the branch
        a.bcond_to(guest_aarch64::isa::Cond::Ne, "loop");
        a.push(asm::hlt());
        let words = a.finish();
        let run = |opt: bool| {
            let mut c = Captive::new(CaptiveConfig {
                opt,
                ..CaptiveConfig::default()
            });
            c.load_program(0x1000, &words);
            c.set_entry(0x1000);
            assert_eq!(c.run(100_000), RunExit::GuestHalted { code: 0 });
            c
        };
        let mut on = run(true);
        let mut off = run(false);
        for r in 0..16 {
            assert_eq!(on.guest_reg(r), off.guest_reg(r), "x{r} diverged");
        }
        let son = on.stats();
        let soff = off.stats();
        assert!(son.opt_dead_stores >= 1, "the adds NZCV store is dead");
        assert!(son.opt_forwarded_loads >= 1, "regfile loads forward");
        assert!(
            son.elided_dyn_insns > 1000,
            "every loop trip benefits from the eliminated instructions: {}",
            son.elided_dyn_insns
        );
        assert_eq!(soff.opt_dead_stores, 0);
        assert_eq!(soff.opt_forwarded_loads, 0);
        assert!(
            son.cycles < soff.cycles,
            "the optimizer must save modeled cycles ({} vs {})",
            son.cycles,
            soff.cycles
        );
    }

    #[test]
    fn faulting_load_with_dead_destination_still_delivers_the_abort() {
        // The optimiser's dead-store elimination leaves the guest-memory
        // load below with an unread destination (x1 is immediately
        // overwritten); the load must nevertheless execute and deliver its
        // data abort — the fault is architectural state the guest is owed.
        let mut a = asm::Assembler::new();
        a.mov_imm64(9, 0x2000);
        a.push(asm::msr(guest_aarch64::SysReg::Vbar as u32, 9));
        a.mov_imm64(2, 0x200_0000); // beyond the 32 MiB of guest RAM
        let fault_idx = a.here();
        a.push(asm::ldr(1, 2, 0)); // faulting load, value never read
        a.push(asm::movz(1, 5, 0)); // overwrites x1: the load's value is dead
        a.push(asm::hlt());
        let main = a.finish();
        let fault_pc = 0x1000 + fault_idx as u64 * 4;

        let mut v = asm::Assembler::new();
        v.push(asm::mrs(10, guest_aarch64::SysReg::Elr as u32));
        v.push(asm::mrs(11, guest_aarch64::SysReg::Far as u32));
        v.push(asm::hlt());

        let mut c = Captive::new(CaptiveConfig::default());
        c.load_program(0x1000, &main);
        c.load_program(0x2000, &v.finish());
        c.set_entry(0x1000);
        assert_eq!(c.run(100_000), RunExit::GuestHalted { code: 0 });
        assert_eq!(c.stats().guest_exceptions, 1, "the abort was delivered");
        assert_eq!(c.guest_reg(10), fault_pc, "ELR is the faulting load");
        assert_eq!(c.guest_reg(11), 0x200_0000, "FAR is the bad address");
        assert_ne!(c.guest_reg(1), 5, "the vector halted before the movz");
    }

    #[test]
    fn self_loop_becomes_a_looping_region_and_saves_cycles() {
        // The pointer-chase shape: a single-block self-loop.  With looping
        // regions the body is peeled fourfold AND the final copy's loop-back
        // closes as a region-internal back-edge, so the whole countdown runs
        // inside one region entry; with everything off the trace closes at
        // one constituent and every iteration re-enters through a chain
        // link.
        let mut a = asm::Assembler::new();
        a.push(asm::movz(1, 4000, 0));
        a.push(asm::movz(9, 0, 0));
        a.label("chase");
        a.push(asm::addi(9, 9, 1));
        a.push(asm::subi(1, 1, 1));
        a.cbnz_to(1, "chase");
        a.push(asm::hlt());
        let words = a.finish();
        let run = |loop_regions: bool, unroll: usize| {
            let mut c = Captive::new(CaptiveConfig {
                loop_regions,
                unroll_loops: unroll,
                ..CaptiveConfig::default()
            });
            c.load_program(0x1000, &words);
            c.set_entry(0x1000);
            assert_eq!(c.run(100_000), RunExit::GuestHalted { code: 0 });
            c
        };
        let mut on = run(true, 4);
        let mut off = run(false, 1);
        for r in 0..16 {
            assert_eq!(on.guest_reg(r), off.guest_reg(r), "x{r} diverged");
        }
        assert_eq!(on.guest_reg(9), 4000);
        let son = on.stats();
        let soff = off.stats();
        assert_eq!(
            soff.regions_formed, 0,
            "with looping and peeling off the self-loop closes at one constituent"
        );
        assert!(
            son.regions_unrolled >= 1 && son.loop_regions_formed >= 1,
            "the self-loop must form an unrolled looping region"
        );
        assert!(
            son.backedge_transfers > 900,
            "trips stay inside the region: {}",
            son.backedge_transfers
        );
        assert!(
            son.region_transfers > 2_000,
            "peeled iterations cross trace edges, not chain links: {}",
            son.region_transfers
        );
        assert!(
            son.blocks < soff.blocks / 10,
            "the looping region absorbs nearly every interpreter entry: {} vs {}",
            son.blocks,
            soff.blocks
        );
        assert!(
            son.cycles < soff.cycles,
            "looping regions must run strictly fewer modeled cycles: {} vs {}",
            son.cycles,
            soff.cycles
        );
        assert_eq!(
            son.blocks,
            son.chained_transfers + son.slow_dispatches,
            "every entry is still chained or dispatched"
        );
        assert!(
            son.guest_insns >= soff.guest_insns && son.guest_insns - soff.guest_insns < 100,
            "per-trip attribution keeps guest-instruction counts within one \
             region entry of exact: {} vs {}",
            son.guest_insns,
            soff.guest_insns
        );
    }

    #[test]
    fn virtual_aliases_of_a_hot_entry_each_get_a_live_region() {
        // Two virtual pages map the same physical page holding a hot
        // self-loop kernel; both entries must end up with their own live
        // unrolled region (the old per-physical superblock slot made the
        // aliases evict each other).
        use guest_aarch64::mmu::{GuestPageFlags, GuestPageTableBuilder};
        let table = std::cell::RefCell::new(HashMap::<u64, u64>::new());
        let mut b = GuestPageTableBuilder::new(0x10_0000, 0x18_0000);
        {
            let mut map = |va: u64, pa: u64| {
                assert!(b.map(
                    |a| Some(*table.borrow().get(&a).unwrap_or(&0)),
                    |a, v| {
                        table.borrow_mut().insert(a, v);
                    },
                    va,
                    pa,
                    GuestPageFlags::kernel_rw(),
                ));
            };
            map(0x1000, 0x1000); // main code, identity
            map(0x3000, 0x3000); // kernel, identity
            map(0x8000, 0x3000); // kernel alias
        }
        let mut c = Captive::new(CaptiveConfig::default());
        for (&a, &v) in table.borrow().iter() {
            c.write_guest_phys(a, v, 8);
        }

        // Kernel at PA 0x3000: a single-block self-loop, then return.
        let mut k = asm::Assembler::new();
        k.label("chase");
        k.push(asm::addi(9, 9, 1));
        k.push(asm::subi(5, 5, 1));
        k.cbnz_to(5, "chase");
        k.push(asm::ret());

        let mut a = asm::Assembler::new();
        a.mov_imm64(0, b.root);
        a.push(asm::msr(guest_aarch64::SysReg::Ttbr0 as u32, 0));
        a.push(asm::movz(0, 1, 0));
        a.push(asm::msr(guest_aarch64::SysReg::Sctlr as u32, 0)); // MMU on
        a.push(asm::movz(9, 0, 0));
        a.push(asm::movz(5, 200, 0));
        let bl1 = a.here();
        a.push(asm::bl(0x3000 - (0x1000 + bl1 as i64 * 4)));
        a.push(asm::movz(5, 200, 0));
        let bl2 = a.here();
        a.push(asm::bl(0x8000 - (0x1000 + bl2 as i64 * 4)));
        a.push(asm::hlt());

        c.load_program(0x1000, &a.finish());
        c.load_program(0x3000, &k.finish());
        c.set_entry(0x1000);
        assert_eq!(c.run(100_000), RunExit::GuestHalted { code: 0 });
        assert_eq!(c.guest_reg(9), 400, "both alias phases ran the kernel");
        let s = c.stats();
        assert!(
            s.regions_unrolled >= 2,
            "each alias must unroll its own region: {}",
            s.regions_unrolled
        );
        assert_eq!(
            c.cache.multi_region_count(),
            2,
            "both aliases hold a live region — no slot contention"
        );
    }

    #[test]
    fn translations_are_cached_and_reused() {
        let (c, exit) = boot(&{
            let mut a = asm::Assembler::new();
            a.push(asm::movz(1, 1000, 0));
            a.label("loop");
            a.push(asm::subi(1, 1, 1));
            a.cbnz_to(1, "loop");
            a.push(asm::hlt());
            a.finish()
        });
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        let stats = c.stats();
        assert!(stats.translations <= 4, "loop body translated once");
        assert!(
            stats.guest_insns > 1900,
            "loop body re-executed from the cache (the unrolled region packs \
             several iterations per entry): {} guest insns over {} entries",
            stats.guest_insns,
            stats.blocks
        );
    }

    #[test]
    fn tiered_and_sync_modes_are_architecturally_identical() {
        // The tiered service must be invisible to the guest: same registers,
        // same modeled cycles, same regions formed — the only difference is
        // *who* formed them.  Run threaded (the default) so the real worker
        // path is exercised.
        let words = multi_block_loop(3000);
        let run = |tiered: bool| {
            let mut c = Captive::new(CaptiveConfig {
                tiered,
                ..CaptiveConfig::default()
            });
            c.load_program(0x1000, &words);
            c.set_entry(0x1000);
            assert_eq!(c.run(200_000), RunExit::GuestHalted { code: 0 });
            (c.guest_reg(9), c.stats())
        };
        let (x9_tiered, tiered) = run(true);
        let (x9_sync, sync) = run(false);
        assert_eq!(x9_tiered, 4_501_500, "sum of the 3000-step countdown");
        assert_eq!(x9_tiered, x9_sync);
        assert_eq!(tiered.cycles, sync.cycles, "modeled cost is mode-blind");
        assert_eq!(tiered.regions_formed, sync.regions_formed);
        assert_eq!(tiered.guest_insns, sync.guest_insns);
        assert!(tiered.tier1_requests >= 1, "the hot head was published");
        assert!(
            tiered.regions_installed_async >= 1,
            "at least one region came off a background worker"
        );
        assert_eq!(tiered.stale_discards, 0, "nothing changed under it");
        assert_eq!(sync.tier1_requests, 0, "sync mode never publishes");
        assert_eq!(sync.regions_installed_async, 0);
    }

    #[test]
    fn smc_between_snapshot_and_install_discards_stale_region() {
        // A two-page call loop rewrites its callee *after* the formation
        // request is published (link heat 8) but *before* the install point
        // (heat 16).  The worker's region was formed from the stale
        // snapshot: the install gate must discard it — never install it —
        // and the synchronous fallback forms from live (rewritten) code.
        // Pump mode keeps the interleaving deterministic.
        let mut main = asm::Assembler::new();
        main.push(asm::movz(6, 60, 0));
        main.mov_imm64(3, 0x2000);
        main.mov_imm64(4, asm::movz(5, 2, 0) as u64);
        main.label("loop");
        let bl_idx = main.here();
        main.push(asm::bl(0x2000 - (0x1000 + bl_idx as i64 * 4)));
        main.push(asm::subi(6, 6, 1));
        // One-shot self-modifying write when the countdown hits 47 —
        // between the publish and install heats of the loop head.
        main.push(asm::subi(7, 6, 47));
        main.cbnz_to(7, "skip");
        main.push(asm::strw(4, 3, 0));
        main.label("skip");
        main.cbnz_to(6, "loop");
        let bl2_idx = main.here();
        main.push(asm::bl(0x2000 - (0x1000 + bl2_idx as i64 * 4)));
        main.push(asm::hlt());
        let mut sub = asm::Assembler::new();
        sub.push(asm::movz(5, 1, 0));
        sub.push(asm::ret());

        let mut c = Captive::new(CaptiveConfig {
            tier_workers: 0,
            ..region_config()
        });
        c.load_program(0x1000, &main.finish());
        c.load_program(0x2000, &sub.finish());
        c.set_entry(0x1000);
        assert_eq!(c.run(100_000), RunExit::GuestHalted { code: 0 });
        let s = c.stats();
        assert_eq!(
            c.guest_reg(5),
            2,
            "every post-SMC call must run the rewritten callee"
        );
        assert!(s.tier1_requests >= 1, "the loop head was published");
        assert!(
            s.stale_discards >= 1,
            "the stale worker region was discarded at the install gate"
        );
        assert!(
            s.regions_formed >= 1,
            "the synchronous fallback re-formed from live code"
        );
    }

    #[test]
    fn content_keyed_reuse_skips_reformation_across_instances() {
        // Two engine instances share a reuse cache and run the same kernel
        // image: the second instance must obtain its hot region by content
        // hash instead of re-forming it, with identical guest results and
        // modeled cycles.
        let reuse = Arc::new(ReuseCache::new());
        let words = multi_block_loop(3000);
        let run = || {
            let mut c = Captive::new(CaptiveConfig {
                tier_workers: 0,
                reuse_cache: Some(Arc::clone(&reuse)),
                ..CaptiveConfig::default()
            });
            c.load_program(0x1000, &words);
            c.set_entry(0x1000);
            assert_eq!(c.run(200_000), RunExit::GuestHalted { code: 0 });
            (c.guest_reg(9), c.stats())
        };
        let (x9_first, first) = run();
        let (x9_second, second) = run();
        assert_eq!(x9_first, 4_501_500, "sum of the 3000-step countdown");
        assert_eq!(x9_first, x9_second);
        assert_eq!(first.reuse_hits, 0, "cold cache on the first run");
        assert!(first.reuse_misses >= 1);
        assert!(
            second.reuse_hits >= 1,
            "the second run must hit the shared template"
        );
        assert_eq!(first.cycles, second.cycles, "reuse is cost-invisible");
        assert_eq!(first.guest_insns, second.guest_insns);
        assert_eq!(
            first.regions_formed, second.regions_formed,
            "a reused install still counts as a formed region"
        );
    }
}
