//! The tier-1 half of the two-tier translation service: background region
//! formation against immutable snapshots.
//!
//! Tier 0 (per-block translation) stays synchronous on the run thread so new
//! code executes immediately.  Tier 1 — tracing, unrolling, loop closure,
//! the LIR optimiser and register allocation — is expensive, and this module
//! moves it off the run thread:
//!
//! * When a chain link is *halfway* to the formation threshold the run
//!   thread captures a [`FormationSnapshot`] — context generation,
//!   translation state, the bytes of every code page, and a frozen
//!   branch-heat profile — and publishes a [`FormationRequest`] to the
//!   [`TierService`].
//! * A worker thread traces and translates the region **entirely from the
//!   snapshot** via [`SnapshotSource`] (never touching live guest state),
//!   and hands the formed region back with the content hash of every page it
//!   consumed.
//! * When the link finally crosses the threshold, the run thread drains the
//!   result and installs it through the ordinary replace-at-key mechanism —
//!   but only after revalidating the context generation and every consumed
//!   page hash against live memory.  A region formed against a stale
//!   generation or a since-patched page is *discarded*, never installed.
//!
//! A snapshot is seeded with the pages already known to hold translated code;
//! anything else the trace needs (page-table pages on an MMU-on guest, a
//! straight-line fall-through onto a fresh page) surfaces as
//! [`WorkerOutcome::NeedPages`], and the run thread refills the snapshot from
//! live memory and resubmits — keeping snapshot capture cheap without
//! guessing the reachable set up front.
//!
//! Decode results are memoised across requests ([`DecodeMemo`]): constituents
//! traced by several candidate regions decode once.
//!
//! With `tier_workers == 0` the service runs in *pump mode*: requests queue
//! locally and are processed inline (on the run thread) at the drain point.
//! Outcomes are identical to the threaded service — pump mode exists so
//! tests can interleave guest stores between publish and drain fully
//! deterministically (the SMC-vs-snapshot race).

use crate::translator::{form_region_from, FormOutcome, SourceRead, TraceSource};
use crate::FpMode;
use dbt::idiom::RuleTable;
use dbt::{fnv1a, GuestIsa, PhaseTimers, Region, RegionKey};
use guest_aarch64::gen::Decoded;
use guest_aarch64::{mmu, Aarch64Isa};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Guest page size (the snapshot's unit of capture and validation).
pub const PAGE_BYTES: usize = 4096;

/// Shared decode memo: (virtual PC, instruction word) → decode result.  The
/// same constituent traced by several candidate regions (or re-traced after
/// a `NeedPages` refill) decodes once.
pub type DecodeMemo = Arc<Mutex<HashMap<(u64, u32), Option<Decoded>>>>;

/// An immutable view of everything region formation reads: captured on the
/// run thread at publish time, consumed by a worker.  Workers never touch
/// the live machine.
#[derive(Debug, Clone)]
pub struct FormationSnapshot {
    /// Context generation the snapshot (and any region formed from it) is
    /// stamped with.
    pub ctx_gen: u64,
    /// Guest MMU state at capture.
    pub mmu_enabled: bool,
    /// Guest translation root at capture (only consulted when the MMU is on).
    pub ttbr0: u64,
    /// Guest RAM size (bounds for identity mapping and walk reads).
    pub guest_ram: u64,
    /// Captured page bytes, keyed by guest physical page base.
    pub pages: HashMap<u64, Vec<u8>>,
    /// Frozen branch-link profile: (taken, fallthrough) heats per cached
    /// conditional block, used by the tracer's leg selection.
    pub heats: HashMap<RegionKey, (u64, u64)>,
}

impl FormationSnapshot {
    /// Adds (or replaces) a captured page.
    pub fn insert_page(&mut self, page_base: u64, bytes: Vec<u8>) {
        debug_assert_eq!(bytes.len(), PAGE_BYTES);
        self.pages.insert(page_base & !0xFFF, bytes);
    }
}

/// One queued tier-1 formation job: the hot region key plus the snapshot and
/// codegen knobs to form it with.
#[derive(Debug, Clone)]
pub struct FormationRequest {
    /// Submission sequence number; a result is only honoured while its
    /// sequence is still the key's registered in-flight request.
    pub seq: u64,
    /// The trace head to form a region at.
    pub key: RegionKey,
    /// The immutable state to form against.
    pub snapshot: FormationSnapshot,
    /// Guest-instruction cap on the trace.
    pub max_insns: usize,
    /// Loop-unroll factor.
    pub unroll: usize,
    /// Close back-edges inside the region.
    pub close_loops: bool,
    /// FP implementation strategy.
    pub fp_mode: FpMode,
    /// Run the LIR optimiser.
    pub run_opt: bool,
    /// Run loop-carried register promotion (only meaningful with `run_opt`).
    pub promote: bool,
    /// The idiom rule set to translate with (`None` = idiom layer off).
    /// Shared by `Arc` so the run thread and every worker apply the *same*
    /// table; its hash is part of the reuse key, so results formed under a
    /// different table can never be installed.
    pub idioms: Option<Arc<RuleTable>>,
}

/// What a worker produced for one request.
#[derive(Debug)]
pub enum WorkerOutcome {
    /// A region was formed.  `consumed` lists every snapshot page the trace
    /// read (code pages and, on MMU-on guests, page-table pages) with the
    /// content hash of its captured bytes; the run thread revalidates all of
    /// them against live memory before installing.
    Formed {
        /// The formed region (stamped with the snapshot's generation),
        /// boxed to keep the enum small on the channel.
        region: Box<Region>,
        /// (page base, FNV-1a of the captured bytes) for every page read.
        consumed: Vec<(u64, u64)>,
        /// JIT phase timers accumulated by this formation.
        timers: PhaseTimers,
        /// Worker wall-clock spent on this request.
        wall: Duration,
    },
    /// The trace closed at one constituent with no back-edge, or lowering
    /// bailed out: the same refusal the synchronous former reports as
    /// `None`.
    TooShort {
        /// (page base, FNV-1a of the captured bytes) for every page the
        /// abandoned trace read — published as a reuse-cache *refusal* so
        /// later runs of the same content skip the round-trip.
        consumed: Vec<(u64, u64)>,
        /// JIT phase timers accumulated by the abandoned formation.
        timers: PhaseTimers,
        /// Worker wall-clock spent on this request.
        wall: Duration,
    },
    /// The snapshot was missing pages the trace needed; the request is
    /// returned so the run thread can refill it from live memory and
    /// resubmit.
    NeedPages {
        /// The original request, snapshot intact.
        request: FormationRequest,
        /// Guest physical page bases to capture.
        pages: Vec<u64>,
    },
}

/// A worker's reply, routed back to the run thread.
#[derive(Debug)]
pub struct FormationResult {
    /// The sequence number of the request this answers.
    pub seq: u64,
    /// The trace head the request was for.
    pub key: RegionKey,
    /// What happened.
    pub outcome: WorkerOutcome,
}

/// [`TraceSource`] over a [`FormationSnapshot`]: every read the region
/// former performs resolves against captured bytes, never the live machine.
/// Touched pages are recorded so the run thread can validate the formed
/// region against live memory at install time.
pub struct SnapshotSource<'a> {
    snapshot: &'a FormationSnapshot,
    memo: &'a DecodeMemo,
    /// Page bases read from the snapshot (code and page-table pages alike).
    consumed: Vec<u64>,
    /// Pages a failed walk found absent from the snapshot (scratch, drained
    /// into [`SourceRead::Missing`] by `va_to_pa`).
    walk_missing: Vec<u64>,
}

impl<'a> SnapshotSource<'a> {
    /// Creates a source over `snapshot` sharing the service-wide decode memo.
    pub fn new(snapshot: &'a FormationSnapshot, memo: &'a DecodeMemo) -> Self {
        SnapshotSource {
            snapshot,
            memo,
            consumed: Vec::new(),
            walk_missing: Vec::new(),
        }
    }

    fn note_consumed(&mut self, page: u64) {
        if !self.consumed.contains(&page) {
            self.consumed.push(page);
        }
    }

    /// The consumed-page validation list: every touched page with the
    /// FNV-1a hash of its captured bytes.
    pub fn consumed_hashes(&self) -> Vec<(u64, u64)> {
        self.consumed
            .iter()
            .map(|&p| (p, fnv1a(&self.snapshot.pages[&p])))
            .collect()
    }

    /// Reads a 64-bit little-endian word of captured guest physical memory
    /// for the page-table walker, recording absent pages in `walk_missing`.
    fn read_walk_u64(&mut self, gpa: u64) -> Option<u64> {
        // Same bounds rule as the live runtime's walk reads.
        match gpa.checked_add(8) {
            Some(end) if end <= self.snapshot.guest_ram => {}
            _ => return None,
        }
        let mut value = 0u64;
        for i in 0..8 {
            let addr = gpa + i;
            let page = addr & !0xFFF;
            match self.snapshot.pages.get(&page) {
                Some(bytes) => {
                    self.note_consumed(page);
                    value |= (bytes[(addr & 0xFFF) as usize] as u64) << (8 * i);
                }
                None => {
                    self.walk_missing.push(page);
                    return None;
                }
            }
        }
        Some(value)
    }
}

impl TraceSource for SnapshotSource<'_> {
    fn ctx_gen(&self) -> u64 {
        self.snapshot.ctx_gen
    }

    fn va_to_pa(&mut self, va: u64) -> SourceRead<u64> {
        if !self.snapshot.mmu_enabled {
            return if va < self.snapshot.guest_ram {
                SourceRead::Ok(va)
            } else {
                SourceRead::Fault
            };
        }
        self.walk_missing.clear();
        let ttbr0 = self.snapshot.ttbr0;
        match mmu::walk_guest(|a| self.read_walk_u64(a), ttbr0, va) {
            Ok(walk) => SourceRead::Ok(walk.frame | (va & 0xFFF)),
            Err(_) => match self.walk_missing.first() {
                // The walk only failed because a table page was not captured:
                // ask for it rather than reporting a (wrong) guest fault.
                Some(&page) => SourceRead::Missing(page),
                None => SourceRead::Fault,
            },
        }
    }

    fn read_code_word(&mut self, pa: u64) -> SourceRead<u32> {
        let page = pa & !0xFFF;
        match self.snapshot.pages.get(&page) {
            Some(bytes) => {
                self.note_consumed(page);
                let off = (pa & 0xFFF) as usize;
                SourceRead::Ok(u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()))
            }
            // Out-of-RAM fetches degrade to 0 (an UNDEF), matching the live
            // source; a refill could never provide these pages.
            None if pa.saturating_add(4) > self.snapshot.guest_ram => SourceRead::Ok(0),
            None => SourceRead::Missing(page),
        }
    }

    fn decode(&mut self, isa: &Aarch64Isa, word: u32, va: u64) -> Option<Decoded> {
        let key = (va, word);
        if let Some(hit) = self.memo.lock().unwrap().get(&key) {
            return *hit;
        }
        let decoded = isa.decode(word, va);
        self.memo.lock().unwrap().insert(key, decoded);
        decoded
    }

    fn branch_heats(&self, key: RegionKey) -> Option<(u64, u64)> {
        self.snapshot.heats.get(&key).copied()
    }
}

/// Forms one request against its snapshot.  Pure: reads only the request,
/// so the same request always produces the same result — tier-1 outcomes
/// are a deterministic function of what the run thread published.
fn process(isa: &Aarch64Isa, memo: &DecodeMemo, req: FormationRequest) -> FormationResult {
    let start = Instant::now();
    let mut timers = PhaseTimers::default();
    let mut source = SnapshotSource::new(&req.snapshot, memo);
    let outcome = form_region_from(
        isa,
        &mut source,
        &mut timers,
        req.key.virt,
        req.key.phys,
        req.max_insns,
        req.unroll,
        req.close_loops,
        req.fp_mode,
        req.run_opt,
        req.promote,
        req.idioms.as_deref(),
    );
    let consumed = source.consumed_hashes();
    drop(source);
    let (seq, key) = (req.seq, req.key);
    let outcome = match outcome {
        FormOutcome::Formed(region) => WorkerOutcome::Formed {
            region,
            consumed,
            timers,
            wall: start.elapsed(),
        },
        FormOutcome::TooShort => WorkerOutcome::TooShort {
            consumed,
            timers,
            wall: start.elapsed(),
        },
        FormOutcome::NeedPages(pages) => WorkerOutcome::NeedPages {
            request: req,
            pages,
        },
    };
    FormationResult { seq, key, outcome }
}

enum Backend {
    /// `tier_workers == 0`: requests queue locally and are processed inline
    /// at the drain point.
    Pump(VecDeque<FormationRequest>),
    /// A pool of worker threads sharing one request channel.
    Threads {
        req_tx: Option<Sender<FormationRequest>>,
        res_rx: Receiver<FormationResult>,
        handles: Vec<JoinHandle<()>>,
    },
}

/// The formation worker pool.  `submit` never blocks; `recv` blocks until
/// *some* result is available (the caller routes results it was not waiting
/// for).  Dropping the service disconnects the request channel and joins
/// every worker.
pub struct TierService {
    backend: Backend,
    memo: DecodeMemo,
    isa: Aarch64Isa,
}

impl TierService {
    /// Creates the service with `workers` background threads (0 = pump mode).
    pub fn new(workers: usize) -> Self {
        let memo: DecodeMemo = Arc::default();
        let backend = if workers == 0 {
            Backend::Pump(VecDeque::new())
        } else {
            let (req_tx, req_rx) = channel::<FormationRequest>();
            let (res_tx, res_rx) = channel::<FormationResult>();
            let req_rx = Arc::new(Mutex::new(req_rx));
            let handles = (0..workers)
                .map(|_| {
                    let rx = Arc::clone(&req_rx);
                    let tx = res_tx.clone();
                    let memo = Arc::clone(&memo);
                    std::thread::spawn(move || {
                        let isa = Aarch64Isa;
                        loop {
                            // The guard is dropped as soon as recv returns:
                            // dequeueing serialises, forming runs in parallel.
                            let req = match rx.lock().unwrap().recv() {
                                Ok(r) => r,
                                Err(_) => break,
                            };
                            if tx.send(process(&isa, &memo, req)).is_err() {
                                break;
                            }
                        }
                    })
                })
                .collect();
            // `res_tx` clones live only in the workers, so `recv` unblocks
            // (with an error) if every worker exits.
            Backend::Threads {
                req_tx: Some(req_tx),
                res_rx,
                handles,
            }
        };
        TierService {
            backend,
            memo,
            isa: Aarch64Isa,
        }
    }

    /// True when running in pump (inline) mode.
    pub fn is_pump(&self) -> bool {
        matches!(self.backend, Backend::Pump(_))
    }

    /// Queues a formation request.
    pub fn submit(&mut self, req: FormationRequest) {
        match &mut self.backend {
            Backend::Pump(queue) => queue.push_back(req),
            Backend::Threads { req_tx, .. } => {
                // A send can only fail if every worker died; the caller then
                // falls back to synchronous formation at the drain point.
                let _ = req_tx.as_ref().expect("service is live").send(req);
            }
        }
    }

    /// Blocks until one result is available and returns it; `None` when no
    /// result can ever arrive (pump queue empty, or all workers gone).
    pub fn recv(&mut self) -> Option<FormationResult> {
        match &mut self.backend {
            Backend::Pump(queue) => {
                let req = queue.pop_front()?;
                Some(process(&self.isa, &self.memo, req))
            }
            Backend::Threads { res_rx, .. } => res_rx.recv().ok(),
        }
    }
}

impl Drop for TierService {
    fn drop(&mut self) {
        if let Backend::Threads {
            req_tx, handles, ..
        } = &mut self.backend
        {
            // Disconnect the request channel so blocked workers wake and
            // exit, then reap them.
            req_tx.take();
            for handle in handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_aarch64::asm;

    fn snapshot_with_code(words: &[u32], base: u64) -> FormationSnapshot {
        let mut page = vec![0u8; PAGE_BYTES];
        for (i, w) in words.iter().enumerate() {
            let off = (base & 0xFFF) as usize + i * 4;
            // Words past the page boundary belong to the next page — the
            // caller decides whether that page is in the snapshot.
            if off + 4 <= PAGE_BYTES {
                page[off..off + 4].copy_from_slice(&w.to_le_bytes());
            }
        }
        let mut pages = HashMap::new();
        pages.insert(base & !0xFFF, page);
        FormationSnapshot {
            ctx_gen: 0,
            mmu_enabled: false,
            ttbr0: 0,
            guest_ram: 32 * 1024 * 1024,
            pages,
            heats: HashMap::new(),
        }
    }

    fn self_loop_words() -> Vec<u32> {
        let mut a = asm::Assembler::new();
        a.label("loop");
        a.push(asm::addi(9, 9, 1));
        a.push(asm::subi(1, 1, 1));
        a.cbnz_to(1, "loop");
        a.push(asm::hlt());
        a.finish()
    }

    fn request(snapshot: FormationSnapshot, entry: u64) -> FormationRequest {
        FormationRequest {
            seq: 1,
            key: RegionKey {
                phys: entry,
                virt: entry,
            },
            snapshot,
            max_insns: 256,
            unroll: 4,
            close_loops: true,
            fp_mode: FpMode::Hardware,
            run_opt: true,
            promote: true,
            idioms: Some(std::sync::Arc::new(RuleTable::full())),
        }
    }

    #[test]
    fn worker_forms_a_looping_region_from_a_snapshot() {
        let mut service = TierService::new(1);
        service.submit(request(
            snapshot_with_code(&self_loop_words(), 0x1000),
            0x1000,
        ));
        let result = service.recv().expect("one result");
        assert_eq!(result.seq, 1);
        match result.outcome {
            WorkerOutcome::Formed {
                region, consumed, ..
            } => {
                assert!(region.back_edges > 0, "the self-loop closes internally");
                assert!(region.unroll > 1, "the body is peeled");
                assert_eq!(consumed.len(), 1, "one code page consumed");
                assert_eq!(consumed[0].0, 0x1000);
            }
            other => panic!("expected a formed region, got {other:?}"),
        }
    }

    #[test]
    fn pump_mode_produces_identical_outcomes_inline() {
        let mut threaded = TierService::new(2);
        let mut pump = TierService::new(0);
        assert!(pump.is_pump() && !threaded.is_pump());
        let words = self_loop_words();
        threaded.submit(request(snapshot_with_code(&words, 0x1000), 0x1000));
        pump.submit(request(snapshot_with_code(&words, 0x1000), 0x1000));
        let a = threaded.recv().expect("threaded result");
        let b = pump.recv().expect("pump result");
        match (&a.outcome, &b.outcome) {
            (
                WorkerOutcome::Formed {
                    region: ra,
                    consumed: ca,
                    ..
                },
                WorkerOutcome::Formed {
                    region: rb,
                    consumed: cb,
                    ..
                },
            ) => {
                assert_eq!(ra.code, rb.code, "identical host code");
                assert_eq!(ra.constituents, rb.constituents);
                assert_eq!(ca, cb, "identical consumed-page hashes");
            }
            other => panic!("both must form: {other:?}"),
        }
        assert!(pump.recv().is_none(), "pump queue is drained");
    }

    #[test]
    fn missing_page_round_trips_through_need_pages() {
        // Code that falls through onto an uncaptured page: the worker must
        // ask for the page, and the refilled request must then form.
        let mut a = asm::Assembler::new();
        // A hot two-block loop whose second block sits on the next page.
        a.push(asm::movz(1, 100, 0));
        a.label("loop");
        a.push(asm::addi(9, 9, 1));
        a.push(asm::subi(1, 1, 1));
        a.cbnz_to(1, "loop");
        a.push(asm::hlt());
        let words = a.finish();
        // Entry near the end of the page so the trace crosses into the next.
        let entry = 0x2000 - 8;
        let mut snapshot = snapshot_with_code(&words, entry);
        let mut service = TierService::new(0);
        service.submit(request(snapshot.clone(), entry));
        let result = service.recv().expect("first pass");
        let (req, pages) = match result.outcome {
            WorkerOutcome::NeedPages { request, pages } => (request, pages),
            other => panic!("expected NeedPages, got {other:?}"),
        };
        assert_eq!(pages, vec![0x2000], "the next page is requested");
        // Refill: copy the overflowing words onto the requested page.
        let mut next = vec![0u8; PAGE_BYTES];
        for (i, w) in words.iter().enumerate() {
            let addr = entry + i as u64 * 4;
            if addr >= 0x2000 {
                let off = (addr - 0x2000) as usize;
                next[off..off + 4].copy_from_slice(&w.to_le_bytes());
            }
        }
        snapshot.insert_page(0x2000, next.clone());
        let mut refilled = req;
        refilled.snapshot.insert_page(0x2000, next);
        refilled.seq = 2;
        service.submit(refilled);
        let result = service.recv().expect("second pass");
        assert_eq!(result.seq, 2);
        match result.outcome {
            WorkerOutcome::Formed { consumed, .. } => {
                let mut pages: Vec<u64> = consumed.iter().map(|&(p, _)| p).collect();
                pages.sort_unstable();
                assert_eq!(pages, vec![0x1000, 0x2000]);
            }
            other => panic!("refilled request must form, got {other:?}"),
        }
    }

    #[test]
    fn decode_memo_is_shared_across_requests() {
        let service = TierService::new(0);
        let memo = Arc::clone(&service.memo);
        let snapshot = snapshot_with_code(&self_loop_words(), 0x1000);
        let mut service = service;
        service.submit(request(snapshot.clone(), 0x1000));
        service.recv().expect("formed");
        let after_first = memo.lock().unwrap().len();
        assert!(after_first > 0, "decodes are memoised");
        let mut second = request(snapshot, 0x1000);
        second.seq = 2;
        service.submit(second);
        service.recv().expect("formed again");
        assert_eq!(
            memo.lock().unwrap().len(),
            after_first,
            "the second trace re-used every decode"
        );
    }
}
