//! Runtime services of the Captive unikernel: helper calls, host page-fault
//! handling (the accelerated virtual memory system), guest exception
//! delivery, and minimal device emulation (hypervisor console).

use crate::itlb::{DataTlb, FetchTlb};
use crate::layout;
use crate::FpMode;
use guest_aarch64::gen::helpers;
use guest_aarch64::{esr_class, mmu, SysReg};
use hvm::paging::{self, FrameAlloc, PageFlags};
use hvm::{EventSources, FaultAction, Gpr, HelperResult, Machine, Ring, Runtime, VirtioBlk};
use std::collections::HashSet;

/// Cycle cost of taking a data-side host fault and evaluating guest
/// permissions (ring transition, ESR decode, bookkeeping).
const DFAULT_BASE: u64 = 300;
/// Cycle cost of a software-assisted guest page-table walk (several
/// dependent guest memory reads) — charged only on real data-gTLB misses.
const DWALK_COST: u64 = 600;
/// Cycle cost of installing the host PTE mirroring a resolved guest mapping.
const DMAP_COST: u64 = 200;

/// SVC immediate used as the hypervisor console hypercall (putchar of X0).
pub const SVC_PUTCHAR: u32 = 0xFF0;
/// SVC immediate used as the hypervisor exit hypercall (exit code in X0).
pub const SVC_EXIT: u32 = 0xFF1;

/// Softfloat helper ids used when [`FpMode::Software`] is selected.
pub mod sf_helpers {
    pub const ADD: u16 = 20;
    pub const SUB: u16 = 21;
    pub const MUL: u16 = 22;
    pub const DIV: u16 = 23;
    pub const SQRT: u16 = 24;
}

/// A guest-visible event the dispatcher must act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuestEvent {
    /// Data abort at a guest virtual address.
    DataAbort {
        /// Faulting address.
        vaddr: u64,
        /// Whether the access was a write.
        write: bool,
    },
    /// Instruction fetch abort.
    InstrAbort {
        /// Faulting address.
        vaddr: u64,
    },
    /// The guest asked to stop.
    Halt {
        /// Exit code.
        code: u64,
    },
    /// Asynchronous interrupt from an event source (timer or latch).
    Irq {
        /// Interrupt line, delivered in the ESR ISS field.
        line: u32,
    },
}

/// The unikernel runtime: owns host page tables, devices and helper state.
pub struct CaptiveRuntime {
    /// Host physical address of the guest register file.
    pub regfile_phys: u64,
    /// Root of the host page tables Captive owns.
    pub host_pt_root: u64,
    /// Frame allocator for host page tables.
    frame_alloc: FrameAlloc,
    /// Allocator position right after boot: everything above it holds
    /// lower-half (guest) page-table subtrees, reclaimed wholesale on guest
    /// TLB flushes.
    pt_boot_mark: u64,
    /// Guest RAM size.
    pub guest_ram: u64,
    /// FP implementation mode.
    pub fp_mode: FpMode,
    /// Console output captured from the guest.
    pub uart_output: Vec<u8>,
    /// Exit code set by the exit hypercall.
    pub exit_code: Option<u64>,
    /// Guest physical pages that contain translated code (for self-modifying
    /// code detection via write protection).
    code_pages: HashSet<u64>,
    /// Code pages that were written and whose translations must be dropped.
    smc_dirty: Vec<u64>,
    pending: Option<GuestEvent>,
    fp_env: softfloat::FpEnv,
    /// Bumped whenever guest translation state may have changed (TLBI,
    /// `TTBR0`/`SCTLR` writes).  Stamped into fetch-TLB entries and chain
    /// links; a mismatch silently retires them.
    context_generation: u64,
    /// Fetch-side instruction TLB (VPN→PFN for instruction fetches).
    pub fetch_tlb: FetchTlb,
    /// Data-side guest TLB: caches guest walk results for the host
    /// page-fault handler, flushed (via the generation stamp) on
    /// TLBI/TTBR0/SCTLR like the fetch TLB.
    pub data_tlb: DataTlb,
    /// Deterministic guest event sources (programmable timer + interrupt
    /// latch), polled at back-edges and block boundaries.
    pub events: EventSources,
    /// Attached virtio-blk device, if any.  Kicked from `MSR_NOTIFY`,
    /// retired from the dispatcher via [`CaptiveRuntime::poll_virtio`].
    pub virtio: Option<VirtioBlk>,
    /// DMA completion stores that landed on pages holding live translations
    /// (each one forced a `CodeCache::invalidate_phys_page`).
    pub external_invalidations: u64,
}

impl CaptiveRuntime {
    /// Builds the runtime and the initial host page tables (Captive area
    /// only: register file and spill page), then enables host paging.
    pub fn new(machine: &mut Machine, guest_ram: u64, fp_mode: FpMode) -> Self {
        let mut frame_alloc = FrameAlloc::new(layout::HOST_PT_POOL_START, layout::HOST_PT_POOL_END);
        let root = frame_alloc
            .alloc(&mut machine.mem)
            .expect("host page-table pool");
        // Captive area: register file and spill page, accessible from the
        // ring the guest code runs in.
        assert!(paging::map_page(
            &mut machine.mem,
            root,
            layout::REGFILE_VA,
            layout::REGFILE_PHYS,
            PageFlags::user_rw(),
            &mut frame_alloc,
        ));
        assert!(paging::map_page(
            &mut machine.mem,
            root,
            layout::REGFILE_VA - 4096,
            layout::SPILL_PHYS,
            PageFlags::user_rw(),
            &mut frame_alloc,
        ));
        machine.enable_paging(root, 0);
        let pt_boot_mark = frame_alloc.mark();
        CaptiveRuntime {
            regfile_phys: layout::REGFILE_PHYS,
            host_pt_root: root,
            frame_alloc,
            pt_boot_mark,
            guest_ram,
            fp_mode,
            uart_output: Vec::new(),
            exit_code: None,
            code_pages: HashSet::new(),
            smc_dirty: Vec::new(),
            pending: None,
            fp_env: softfloat::FpEnv::arm(),
            context_generation: 0,
            fetch_tlb: FetchTlb::new(),
            data_tlb: DataTlb::new(),
            events: EventSources::default(),
            virtio: None,
            external_invalidations: 0,
        }
    }

    /// Retires due virtio completions: DMA lands in guest memory through the
    /// external-store path, and any touched page holding translated code is
    /// queued for invalidation exactly like a trapped self-modifying store —
    /// except no write-protection fault announces it, so this *must* run
    /// before translated code is re-entered.  Returns true when anything
    /// retired (the dispatcher then drains `take_smc_dirty`).
    pub fn poll_virtio(&mut self, machine: &mut Machine) -> bool {
        let Some(dev) = self.virtio.as_mut() else {
            return false;
        };
        if !dev.poll(
            &mut machine.mem,
            machine.perf.cycles,
            &mut self.events.latch,
        ) {
            return false;
        }
        for page in dev.take_touched_pages() {
            if self.code_pages.remove(&page) {
                self.smc_dirty.push(page);
                self.external_invalidations += 1;
            }
        }
        true
    }

    /// True when the attached device's queue head may retire at `cycles` —
    /// the dispatcher and every looping region's back-edge must yield so
    /// the completion is not starved by chained translated code.
    pub fn virtio_due(&self, cycles: u64) -> bool {
        self.virtio
            .as_ref()
            .is_some_and(|d| d.due(cycles, &self.events.latch))
    }

    /// Current translation-context generation.
    pub fn context_generation(&self) -> u64 {
        self.context_generation
    }

    /// Guest physical pages currently holding translated code (the page set
    /// a tier-1 formation snapshot is seeded from).
    pub fn code_pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.code_pages.iter().copied()
    }

    /// Current guest `TTBR0` (the translation root a formation snapshot
    /// must walk with).
    pub fn guest_ttbr0(&self, machine: &Machine) -> u64 {
        self.read_gregfile(machine, guest_aarch64::TTBR0_OFF)
    }

    fn read_gregfile(&self, machine: &Machine, offset: i32) -> u64 {
        machine
            .mem
            .read_u64(self.regfile_phys + offset as u64)
            .unwrap_or(0)
    }

    fn write_gregfile(&self, machine: &mut Machine, offset: i32, value: u64) {
        let _ = machine
            .mem
            .write_u64(self.regfile_phys + offset as u64, value);
    }

    /// Reads guest physical memory (bounds-checked against guest RAM; the
    /// checked add keeps addresses near `u64::MAX` from wrapping past the
    /// bound).
    pub fn read_guest_phys(&self, machine: &Machine, gpa: u64) -> Option<u64> {
        match gpa.checked_add(8) {
            Some(end) if end <= self.guest_ram => {}
            _ => return None,
        }
        machine.mem.read_u64(layout::GUEST_PHYS_BASE + gpa).ok()
    }

    /// Whether the guest MMU is enabled (SCTLR bit 0).
    pub fn guest_mmu_enabled(&self, machine: &Machine) -> bool {
        self.read_gregfile(machine, guest_aarch64::SCTLR_OFF) & 1 != 0
    }

    /// Translates a guest virtual address to a guest physical address using
    /// the guest's translation state (used for instruction fetches and by the
    /// translator).
    pub fn guest_va_to_pa(
        &mut self,
        machine: &mut Machine,
        va: u64,
        write: bool,
    ) -> Result<u64, GuestEvent> {
        if !self.guest_mmu_enabled(machine) {
            if va < self.guest_ram {
                return Ok(va);
            }
            return Err(GuestEvent::InstrAbort { vaddr: va });
        }
        let ttbr0 = self.read_gregfile(machine, guest_aarch64::TTBR0_OFF);
        let walk = mmu::walk_guest(|a| self.read_guest_phys(machine, a), ttbr0, va)
            .map_err(|_| GuestEvent::InstrAbort { vaddr: va })?;
        if write && !walk.flags.writable {
            return Err(GuestEvent::DataAbort { vaddr: va, write });
        }
        Ok(walk.frame | (va & 0xFFF))
    }

    /// Translates an instruction-fetch virtual address through the fetch
    /// TLB, falling back to the guest page-table walker (charged at the
    /// hardware walk cost) on a miss.
    pub fn fetch_va_to_pa(&mut self, machine: &mut Machine, va: u64) -> Result<u64, GuestEvent> {
        let ctx_gen = self.context_generation;
        if let Some(pa) = self.fetch_tlb.lookup(va, ctx_gen) {
            return Ok(pa);
        }
        let mmu_on = self.guest_mmu_enabled(machine);
        let pa = self.guest_va_to_pa(machine, va, false)?;
        if mmu_on {
            machine.perf.cycles += machine.cost.page_walk_per_level * mmu::GUEST_LEVELS as u64;
        }
        self.fetch_tlb.insert(va, pa, ctx_gen);
        Ok(pa)
    }

    /// Records that a guest physical page now contains translated code and
    /// write-protects its identity mapping so self-modifying writes fault.
    pub fn note_code_page(&mut self, machine: &mut Machine, guest_phys_page: u64) {
        if self.code_pages.insert(guest_phys_page) {
            // While the guest MMU is off the page is identity mapped; revoke
            // write permission so a later store to it traps for invalidation.
            if paging::write_protect_page(&mut machine.mem, self.host_pt_root, guest_phys_page) {
                machine.tlb.flush_page(guest_phys_page);
            }
        }
    }

    /// Returns and clears the list of code pages invalidated by guest writes.
    pub fn take_smc_dirty(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.smc_dirty)
    }

    /// Returns a pending guest event, if any.
    pub fn take_pending_event(&mut self) -> Option<GuestEvent> {
        self.pending.take()
    }

    /// Delivers a synchronous guest exception: updates ESR/FAR/ELR/SPSR,
    /// switches to EL1 and redirects the guest PC to the vector base.
    pub fn deliver_exception(&mut self, machine: &mut Machine, event: GuestEvent, pc: u64) {
        let (class, iss, far) = match event {
            GuestEvent::DataAbort { vaddr, write } => {
                (esr_class::DATA_ABORT, write as u64, Some(vaddr))
            }
            GuestEvent::InstrAbort { vaddr } => (esr_class::INSTR_ABORT, 0, Some(vaddr)),
            GuestEvent::Halt { code } => {
                self.exit_code = Some(code);
                return;
            }
            GuestEvent::Irq { line } => (esr_class::IRQ, line as u64, None),
        };
        self.take_exception(machine, class, iss, pc, far);
    }

    fn take_exception(
        &mut self,
        machine: &mut Machine,
        class: u64,
        iss: u64,
        return_pc: u64,
        far: Option<u64>,
    ) {
        // Exception entry masks asynchronous events (the PSTATE.I analogue)
        // until the handler's `eret`: a pending IRQ must never preempt a
        // handler mid-flight and clobber ELR/ESR under it.
        self.events.set_masked(true);
        let el = self.read_gregfile(machine, guest_aarch64::CURRENT_EL_OFF);
        let nzcv = self.read_gregfile(machine, guest_aarch64::NZCV_OFF);
        self.write_gregfile(
            machine,
            guest_aarch64::ESR_OFF,
            (class << 26) | (iss & 0xFFFF),
        );
        if let Some(far) = far {
            self.write_gregfile(machine, guest_aarch64::FAR_OFF, far);
        }
        self.write_gregfile(machine, guest_aarch64::ELR_OFF, return_pc);
        // SPSR saves the interrupted context's flags alongside the EL so a
        // handler arriving at an arbitrary preemption point (e.g. a timer
        // IRQ mid-loop) may clobber NZCV freely; `eret` restores both.
        self.write_gregfile(
            machine,
            guest_aarch64::SPSR_OFF,
            ((nzcv & 0xF) << 28) | (el & 1),
        );
        self.write_gregfile(machine, guest_aarch64::CURRENT_EL_OFF, 1);
        let vbar = self.read_gregfile(machine, guest_aarch64::VBAR_OFF);
        if vbar == 0 {
            // No vector installed: the guest cannot handle this exception.
            // Treat it as a fatal guest error rather than spinning through
            // the zero page.
            self.exit_code = Some(0xDEAD);
        }
        machine.set_reg(Gpr::R15, vbar);
        machine.ring = Ring::Ring0;
    }

    /// Tears down the lower-half (guest) mappings and flushes the host TLB —
    /// the intercepted-TLB-flush mechanism of Section 2.7.4.  Also retires
    /// every fetch-TLB entry and chain link by bumping the context
    /// generation: the guest's VA→PA mapping can no longer be trusted.
    fn teardown_guest_mappings(&mut self, machine: &mut Machine) {
        paging::clear_top_level_entries(
            &mut machine.mem,
            self.host_pt_root,
            layout::LOWER_HALF_PML4_ENTRIES,
        );
        // The cleared entries orphan every lower-half page-table subtree;
        // reclaim their frames so repeated guest TLB flushes cannot exhaust
        // the pool.  This is safe because every post-boot allocation belongs
        // to a lower-half subtree: `page_fault` rejects faults at or above
        // LOWER_HALF_LIMIT before mapping, so the only upper-half tables
        // (register file + spill page, PML4 entry 256) were built at boot,
        // below the mark.
        self.frame_alloc.reset_to(self.pt_boot_mark);
        machine.tlb.flush_all();
        machine.perf.tlb_flushes += 1;
        self.context_generation += 1;
    }

    fn softfloat_binop(&mut self, machine: &mut Machine, op: u16) -> HelperResult {
        let a = machine.reg(Gpr::Rdi);
        let b = machine.reg(Gpr::Rsi);
        let r = match op {
            sf_helpers::ADD => softfloat::f64_add(a, b, &mut self.fp_env),
            sf_helpers::SUB => softfloat::f64_sub(a, b, &mut self.fp_env),
            sf_helpers::MUL => softfloat::f64_mul(a, b, &mut self.fp_env),
            sf_helpers::DIV => softfloat::f64_div(a, b, &mut self.fp_env),
            sf_helpers::SQRT => softfloat::f64_sqrt_arm(a, &mut self.fp_env),
            _ => 0,
        };
        machine.set_reg(Gpr::Rax, r);
        // The softfloat body costs roughly this many cycles on top of the
        // call overhead already charged by the machine.
        HelperResult::Continue { cost: 90 }
    }
}

impl Runtime for CaptiveRuntime {
    fn helper(&mut self, id: u16, machine: &mut Machine) -> HelperResult {
        match id {
            helpers::TAKE_EXCEPTION => {
                let class = machine.reg(Gpr::Rdi);
                let iss = machine.reg(Gpr::Rsi);
                let ret_pc = machine.reg(Gpr::Rdx);
                if class == esr_class::SVC && iss == SVC_PUTCHAR as u64 {
                    let ch = self.read_gregfile(machine, guest_aarch64::x_off(0)) as u8;
                    self.uart_output.push(ch);
                    machine.set_reg(Gpr::R15, ret_pc);
                    return HelperResult::Exit { cost: 120 };
                }
                if class == esr_class::SVC && iss == SVC_EXIT as u64 {
                    let code = self.read_gregfile(machine, guest_aarch64::x_off(0));
                    self.exit_code = Some(code);
                    return HelperResult::Halt { cost: 50 };
                }
                self.take_exception(machine, class, iss, ret_pc, None);
                HelperResult::Exit { cost: 300 }
            }
            helpers::TLBI => {
                self.teardown_guest_mappings(machine);
                HelperResult::Continue { cost: 450 }
            }
            helpers::MSR_NOTIFY => {
                let id = machine.reg(Gpr::Rdi) as u32;
                match SysReg::from_id(id) {
                    Some(SysReg::Ttbr0) | Some(SysReg::Sctlr) => {
                        self.teardown_guest_mappings(machine);
                    }
                    // Guest-programmable timer: the MSR already stored the
                    // value into the register-file slot; read it back and
                    // (re)arm against the deterministic cycle counter.
                    Some(SysReg::CntTval) => {
                        let delta = self.read_gregfile(machine, guest_aarch64::CNT_TVAL_OFF);
                        self.events
                            .timer
                            .arm_oneshot(machine.perf.cycles.saturating_add(delta));
                    }
                    Some(SysReg::CntCtl) => {
                        let period = self.read_gregfile(machine, guest_aarch64::CNT_CTL_OFF);
                        if period == 0 {
                            self.events.timer.cancel();
                        } else {
                            self.events
                                .timer
                                .arm_periodic(machine.perf.cycles.saturating_add(period), period);
                        }
                    }
                    // Queue notification: consume newly-published
                    // available-ring entries at this precise program point.
                    Some(SysReg::VblkNotify) => {
                        if let Some(dev) = self.virtio.as_mut() {
                            let now = machine.perf.cycles;
                            dev.kick(&mut machine.mem, now);
                        }
                    }
                    _ => {}
                }
                HelperResult::Continue { cost: 200 }
            }
            helpers::FCMP => {
                let a = f64::from_bits(machine.reg(Gpr::Rdi));
                let b = f64::from_bits(machine.reg(Gpr::Rsi));
                // Arm FCMP NZCV: unordered 0011, less 1000, equal 0110, greater 0010.
                let nzcv: u64 = if a.is_nan() || b.is_nan() {
                    0b0011
                } else if a < b {
                    0b1000
                } else if a == b {
                    0b0110
                } else {
                    0b0010
                };
                machine.set_reg(Gpr::Rax, nzcv);
                HelperResult::Continue { cost: 20 }
            }
            helpers::ERET => {
                let elr = self.read_gregfile(machine, guest_aarch64::ELR_OFF);
                let spsr = self.read_gregfile(machine, guest_aarch64::SPSR_OFF);
                self.write_gregfile(machine, guest_aarch64::CURRENT_EL_OFF, spsr & 1);
                self.write_gregfile(machine, guest_aarch64::NZCV_OFF, (spsr >> 28) & 0xF);
                // Returning from the handler re-enables IRQ delivery.
                self.events.set_masked(false);
                machine.set_reg(Gpr::R15, elr);
                HelperResult::Exit { cost: 260 }
            }
            helpers::HLT => {
                self.exit_code.get_or_insert(0);
                HelperResult::Halt { cost: 20 }
            }
            sf_helpers::ADD..=sf_helpers::SQRT => self.softfloat_binop(machine, id),
            _ => HelperResult::Continue { cost: 10 },
        }
    }

    /// A looping region polls this at every back-edge: a self-modifying
    /// write to a code page, a queued guest event, a due event-source
    /// deadline or a requested exit turn the loop-back into a dispatcher
    /// exit with the PC precise at the loop header, so invalidation and
    /// delivery latency is bounded by one iteration instead of the loop's
    /// (unbounded) trip count.
    fn loop_exit_pending(&mut self, cycles: u64) -> bool {
        !self.smc_dirty.is_empty()
            || self.pending.is_some()
            || self.exit_code.is_some()
            || self.events.due(cycles)
            || self.virtio_due(cycles)
    }

    fn page_fault(&mut self, vaddr: u64, write: bool, machine: &mut Machine) -> FaultAction {
        if vaddr >= layout::LOWER_HALF_LIMIT {
            // Faults in the Captive area are fatal configuration errors; the
            // guest should never see them.
            return FaultAction::Propagate { cost: 100 };
        }
        let page = vaddr & !0xFFF;
        if !self.guest_mmu_enabled(machine) {
            // Guest MMU off: guest virtual == guest physical; identity-map on
            // demand into the lower half.
            if vaddr >= self.guest_ram {
                return FaultAction::Propagate { cost: 200 };
            }
            let is_code = self.code_pages.contains(&page);
            if write && is_code {
                // Self-modifying code: drop translations for the page and
                // remap it writable.
                self.code_pages.remove(&page);
                self.smc_dirty.push(page);
            }
            let flags = if is_code && !write {
                PageFlags {
                    present: true,
                    writable: false,
                    user: true,
                }
            } else {
                PageFlags::user_rw()
            };
            let ok = paging::map_page(
                &mut machine.mem,
                self.host_pt_root,
                page,
                layout::GUEST_PHYS_BASE + page,
                flags,
                &mut self.frame_alloc,
            );
            machine.tlb.flush_page(vaddr);
            if ok {
                FaultAction::Retry { cost: 350 }
            } else {
                FaultAction::Propagate { cost: 350 }
            }
        } else {
            // Guest MMU on: resolve the guest translation — through the
            // data-side gTLB when a current-generation entry covers the page,
            // walking the guest page tables (and caching the result) only on
            // a real miss — then mirror it into the host page tables
            // (Section 2.7.3).  The walk portion of the handler cost is
            // charged only when a walk actually happened.
            let ctx_gen = self.context_generation;
            let (gpage, g_writable, g_user, walk_cost) = match self.data_tlb.lookup(vaddr, ctx_gen)
            {
                Some(e) => (e.page_pa, e.writable, e.user, 0),
                None => {
                    let ttbr0 = self.read_gregfile(machine, guest_aarch64::TTBR0_OFF);
                    let guest_ram = self.guest_ram;
                    let base = layout::GUEST_PHYS_BASE;
                    let walk = {
                        let mem = &machine.mem;
                        mmu::walk_guest(
                            |a| match a.checked_add(8) {
                                Some(end) if end <= guest_ram => mem.read_u64(base + a).ok(),
                                _ => None,
                            },
                            ttbr0,
                            vaddr,
                        )
                    };
                    match walk {
                        Ok(w) => {
                            self.data_tlb.insert(
                                vaddr,
                                w.frame,
                                w.flags.writable,
                                w.flags.user,
                                ctx_gen,
                            );
                            (w.frame & !0xFFF, w.flags.writable, w.flags.user, DWALK_COST)
                        }
                        Err(_) => {
                            return FaultAction::Propagate {
                                cost: DFAULT_BASE + DWALK_COST,
                            }
                        }
                    }
                }
            };
            let user_access = machine.ring == Ring::Ring3;
            if (write && !g_writable) || (user_access && !g_user) {
                return FaultAction::Propagate {
                    cost: DFAULT_BASE + walk_cost,
                };
            }
            let is_code = self.code_pages.contains(&gpage);
            if write && is_code {
                self.code_pages.remove(&gpage);
                self.smc_dirty.push(gpage);
            }
            let flags = PageFlags {
                present: true,
                writable: g_writable && (write || !is_code),
                user: g_user,
            };
            let ok = paging::map_page(
                &mut machine.mem,
                self.host_pt_root,
                page,
                layout::GUEST_PHYS_BASE + gpage,
                flags,
                &mut self.frame_alloc,
            );
            machine.tlb.flush_page(vaddr);
            let cost = DFAULT_BASE + DMAP_COST + walk_cost;
            if ok {
                FaultAction::Retry { cost }
            } else {
                FaultAction::Propagate { cost }
            }
        }
    }
}
