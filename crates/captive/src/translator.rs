//! The per-region translation driver: decode → generate → optimise →
//! allocate → encode.
//!
//! This is the online pipeline of Fig. 8, timed per phase for the Fig. 20
//! experiment, plus the explicit block-scoped optimisation phase
//! (`dbt::opt`) between emission and register allocation.  Every translation
//! it produces is a [`Region`]: [`translate_block`] emits the
//! one-constituent kind (a guest basic block, ending at the first
//! branch/exception instruction, at a page boundary, or at the configured
//! instruction limit), and [`form_region`] stitches a hot chained path —
//! including unrolled single-block self-loops — into a multi-constituent
//! one.

use crate::layout;
use crate::runtime::{sf_helpers, CaptiveRuntime};
use crate::FpMode;
use dbt::emitter::ValueType;
use dbt::idiom::RuleTable;
use dbt::{
    BlockExit, ChainLinks, CodeCache, Emitter, GuestIsa, Phase, PhaseTimers, Region, RegionKey,
};
use guest_aarch64::gen::Decoded;
use guest_aarch64::isa::{FpKind, Insn};
use guest_aarch64::{v_off, Aarch64Isa};
use hvm::{Machine, MemSize};
use std::sync::Arc;

/// Translates one guest basic block starting at virtual address `pc`
/// (physical address `pa`) into a one-constituent region.
#[allow(clippy::too_many_arguments)]
pub fn translate_block(
    isa: &Aarch64Isa,
    machine: &mut Machine,
    timers: &mut PhaseTimers,
    pc: u64,
    pa: u64,
    max_insns: usize,
    fp_mode: FpMode,
    run_opt: bool,
    promote: bool,
    idioms: Option<&RuleTable>,
) -> Region {
    let mut emitter = Emitter::new();
    let mut guest_insns = 0usize;
    let mut va = pc;

    loop {
        // Stop at page boundaries so a block never spans two translations
        // of different physical pages.
        if guest_insns > 0 && (va & !0xFFF) != (pc & !0xFFF) {
            break;
        }
        // Every instruction shares the first one's page (the boundary check
        // above), so its physical address is pure offset arithmetic — no
        // walk, and the fetch iTLB counters stay dispatch-only.
        let pa_i = (pa & !0xFFF) | (va & 0xFFF);
        let word = machine
            .mem
            .read_uint(layout::GUEST_PHYS_BASE + pa_i, 4)
            .unwrap_or(0) as u32;

        let decoded = timers.time(Phase::Decode, || isa.decode(word, va));
        let end = match decoded {
            None => {
                // Undefined instruction: raise a guest UNDEF exception.
                timers.time(Phase::Translate, || {
                    let class = emitter.const_u64(guest_aarch64::esr_class::UNDEFINED);
                    let iss = emitter.const_u64(0);
                    let ret = emitter.const_u64(va);
                    emitter.call_helper(
                        guest_aarch64::gen::helpers::TAKE_EXCEPTION,
                        &[class, iss, ret],
                    );
                    emitter.set_end_of_block();
                });
                true
            }
            Some(d) => timers.time(Phase::Translate, || {
                let end = if fp_mode == FpMode::Software {
                    generate_maybe_soft_fp(&d, &mut emitter, isa)
                } else {
                    isa.generate(&d, &mut emitter)
                };
                if !end {
                    emitter.inc_pc(4);
                }
                end
            }),
        };
        guest_insns += 1;
        va += 4;
        if end || guest_insns >= max_insns {
            break;
        }
    }

    // Terminator metadata for direct chaining: a block that never emitted a
    // PC-setting terminator ended at the instruction limit or a page
    // boundary and falls through sequentially.
    let exit = emitter
        .exit_hint()
        .unwrap_or(BlockExit::Fallthrough { next: va });

    let lir = emitter.finish();
    let lir_count = lir.len();
    let t = match dbt::finish_translation(timers, lir, run_opt, promote, idioms) {
        Ok(t) => t,
        Err(_) => {
            // Graceful degradation: a lowering defect discards the
            // translation and the block becomes an UNDEF-raising stub, so
            // the guest observes an architectural fault instead of the host
            // executing corrupt code.
            timers.lower_bailouts += 1;
            return undef_fallback_region(timers, pc, pa);
        }
    };
    timers.blocks += 1;
    timers.guest_insns += guest_insns as u64;

    Region {
        guest_phys: pa,
        guest_virt: pc,
        guest_insns,
        encoded_bytes: t.encoded.len(),
        lir_insns: lir_count,
        elided_insns: t.elided,
        code: Arc::new(t.code),
        exit,
        links: ChainLinks::default(),
        constituents: 1,
        pages: Region::span_pages(pa, guest_insns),
        ctx_gen: 0,
        unroll: 1,
        back_edges: 0,
        loop_guest_insns: 0,
        loop_elided_insns: 0,
        promoted: t.promoted,
        idiom_candidates: t.idioms.candidates,
    }
}

/// The degraded translation used when lowering bails out on a plain block:
/// a one-instruction region raising a guest UNDEF exception at `pc`.  The
/// stub itself uses no virtual registers, so its lowering cannot fail.
fn undef_fallback_region(timers: &mut PhaseTimers, pc: u64, pa: u64) -> Region {
    let mut emitter = Emitter::new();
    let class = emitter.const_u64(guest_aarch64::esr_class::UNDEFINED);
    let iss = emitter.const_u64(0);
    let ret = emitter.const_u64(pc);
    emitter.call_helper(
        guest_aarch64::gen::helpers::TAKE_EXCEPTION,
        &[class, iss, ret],
    );
    emitter.set_end_of_block();
    let lir = emitter.finish();
    let lir_count = lir.len();
    let t = dbt::finish_translation(timers, lir, false, false, None)
        .expect("host bug: the UNDEF stub lowers without virtual registers");
    timers.blocks += 1;
    timers.guest_insns += 1;
    Region {
        guest_phys: pa,
        guest_virt: pc,
        guest_insns: 1,
        encoded_bytes: t.encoded.len(),
        lir_insns: lir_count,
        elided_insns: t.elided,
        code: Arc::new(t.code),
        exit: BlockExit::Indirect,
        links: ChainLinks::default(),
        constituents: 1,
        pages: Region::span_pages(pa, 1),
        ctx_gen: 0,
        unroll: 1,
        back_edges: 0,
        loop_guest_insns: 0,
        loop_elided_insns: 0,
        promoted: Vec::new(),
        idiom_candidates: [0; dbt::RULE_COUNT],
    }
}

/// Maximum constituent basic blocks stitched into one region.
pub const REGION_MAX_BLOCKS: usize = 32;

/// Result of one read against a [`TraceSource`].
pub enum SourceRead<T> {
    /// The read succeeded.
    Ok(T),
    /// The address is not resolvable (unmapped, out of range): the trace
    /// ends here, exactly as a live walk failure would end it.
    Fault,
    /// The backing snapshot does not hold the physical page (base carried
    /// here): formation must abort and report the page so the requester can
    /// refill the snapshot and resubmit.  Never produced by a live source.
    Missing(u64),
}

/// What the region former reads while tracing: guest address resolution,
/// code words, decoded instructions and branch-leg profiles.  The run
/// thread traces against the live machine ([`LiveSource`]); tier-1 workers
/// trace against an immutable [`crate::tier::FormationSnapshot`], so a
/// formed region is a pure function of the snapshot.
pub trait TraceSource {
    /// Context generation the formation is stamped with.
    fn ctx_gen(&self) -> u64;
    /// Resolves a guest virtual address to a physical address for tracing.
    fn va_to_pa(&mut self, va: u64) -> SourceRead<u64>;
    /// Reads the guest code word at physical address `pa`.
    fn read_code_word(&mut self, pa: u64) -> SourceRead<u32>;
    /// Decodes `word` at `va` (a snapshot source memoizes this, so
    /// constituents traced by several candidate regions decode once).
    fn decode(&mut self, isa: &Aarch64Isa, word: u32, va: u64) -> Option<Decoded>;
    /// Taken/fallthrough link heats of the cached conditional block at
    /// `key`, when a profile exists (`None` falls back to the static
    /// backward-taken heuristic).
    fn branch_heats(&self, key: RegionKey) -> Option<(u64, u64)>;
}

/// The run thread's trace source: reads the live machine, walks through the
/// live runtime, and consults live chain-link heats.  [`form_region`] wraps
/// it, preserving the synchronous formation path bit-for-bit.
pub struct LiveSource<'a> {
    /// The live guest machine.
    pub machine: &'a mut Machine,
    /// The live runtime (address resolution, context generation).
    pub runtime: &'a mut CaptiveRuntime,
    /// The code cache (profile consultation only).
    pub cache: &'a CodeCache,
    /// Guest physical code pages the trace read, in first-touch order — the
    /// live-path mirror of [`crate::tier::SnapshotSource`]'s consumed set,
    /// so a synchronous refusal can be published to the reuse cache with the
    /// pages that prove it.  Unlike the snapshot source, the live walker
    /// does not expose the page-table pages it touches, so on an MMU-on
    /// guest the set covers code pages only; a refusal keyed on it can at
    /// worst over-apply (skipping a worker round-trip that would have
    /// refused anyway), never corrupt an installed translation.
    pub consumed: Vec<u64>,
}

impl<'a> LiveSource<'a> {
    /// Creates a live source with an empty consumed set.
    pub fn new(
        machine: &'a mut Machine,
        runtime: &'a mut CaptiveRuntime,
        cache: &'a CodeCache,
    ) -> Self {
        LiveSource {
            machine,
            runtime,
            cache,
            consumed: Vec::new(),
        }
    }

    /// The consumed code pages with the FNV-1a hash of their *live* bytes,
    /// read at call time (the synchronous path has no snapshot to hash).
    pub fn consumed_hashes(&self) -> Vec<(u64, u64)> {
        self.consumed
            .iter()
            .map(|&page| {
                let mut bytes = vec![0u8; 4096];
                for (i, b) in bytes.iter_mut().enumerate() {
                    *b = self
                        .machine
                        .mem
                        .read_uint(layout::GUEST_PHYS_BASE + page + i as u64, 1)
                        .unwrap_or(0) as u8;
                }
                (page, dbt::fnv1a(&bytes))
            })
            .collect()
    }
}

impl TraceSource for LiveSource<'_> {
    fn ctx_gen(&self) -> u64 {
        self.runtime.context_generation()
    }

    fn va_to_pa(&mut self, va: u64) -> SourceRead<u64> {
        match self.runtime.guest_va_to_pa(self.machine, va, false) {
            Ok(pa) => SourceRead::Ok(pa),
            Err(_) => SourceRead::Fault,
        }
    }

    fn read_code_word(&mut self, pa: u64) -> SourceRead<u32> {
        let page = pa & !0xFFF;
        if !self.consumed.contains(&page) {
            self.consumed.push(page);
        }
        // An unreadable word degrades to 0 (an UNDEF), matching the
        // per-block translator's behaviour.
        SourceRead::Ok(
            self.machine
                .mem
                .read_uint(layout::GUEST_PHYS_BASE + pa, 4)
                .unwrap_or(0) as u32,
        )
    }

    fn decode(&mut self, isa: &Aarch64Isa, word: u32, va: u64) -> Option<Decoded> {
        isa.decode(word, va)
    }

    fn branch_heats(&self, key: RegionKey) -> Option<(u64, u64)> {
        let b = self.cache.peek(key)?;
        if matches!(b.exit, BlockExit::Branch { .. }) {
            Some((b.link_heat(0), b.link_heat(1)))
        } else {
            None
        }
    }
}

/// Outcome of a generic region formation.
pub enum FormOutcome {
    /// A multi-constituent or looping region was formed (boxed: the other
    /// variants are a fraction of `Region`'s size).
    Formed(Box<Region>),
    /// The trace closed at one constituent with no back-edge (a region
    /// would add nothing over the plain block), or lowering bailed out.
    TooShort,
    /// A snapshot source was missing these physical pages; refill and
    /// resubmit.
    NeedPages(Vec<u64>),
}

/// A recorded constituent start: where in the trace a guest basic block
/// began, both architecturally (virtual/physical address, guest-instruction
/// count) and in the emitted LIR (so a later back-edge can bind its loop
/// label there).
struct ConstituentStart {
    va: u64,
    pa: u64,
    lir_pos: usize,
    guest_insns_before: usize,
}

/// What the trace does with a direct terminator's chosen target.
enum Step {
    /// Stitch forward into a new (or peeled) constituent at (va, pa).
    Forward(u64, u64),
    /// Close the loop: a region-internal back-edge to the target's first
    /// constituent.
    Close(u64),
    /// Generate the terminator unstitched; the trace ends at it.
    Plain,
}

/// Forms a multi-constituent region: re-decodes and re-lowers the hot
/// chained path starting at `entry_pc`/`entry_pa` as one translation,
/// stitching direct jumps and fallthroughs into internal transfers and
/// turning the off-trace leg of interior conditionals into out-of-line
/// side-exit stubs.  The trace stops at indirect exits, untranslatable
/// target pages, `max_insns` guest instructions, or [`REGION_MAX_BLOCKS`]
/// constituents.  Returns `None` when the result would be neither
/// multi-constituent nor looping (a region would add nothing over the plain
/// block).
///
/// **Looping regions.** With `close_loops` set, a back edge to an
/// already-traced constituent does not end the trace: it closes as a
/// *region-internal backward transfer* ([`hvm::MachInsn::BackEdge`]) to a
/// label bound at the target's first constituent, so a hot loop — the
/// header, its body blocks, and the hotter conditional legs — iterates
/// entirely inside one translation.  Only cold legs and the loop exit leave,
/// through side-exit stubs with precise PC; the closing conditional's exit
/// leg carries ordinary [`dbt::BlockExit::Branch`] metadata so it chains.
/// The trace always ends at the close (execution cannot proceed past a
/// closed loop).
///
/// **Unrolling.** Before closing, the loop body is *peeled*: back edges to
/// the loop header re-trace the body (forward-stitched like any hot path)
/// until `unroll` copies are stitched, and the back-edge then targets the
/// first copy, so each internal trip covers `unroll` iterations and the
/// per-iteration loop-back overhead is amortised.  This generalises the old
/// single-block self-loop peeling to whole multi-block bodies.  With
/// `close_loops` off, the legacy behaviour is kept bit-for-bit: only
/// single-block self-loops peel, the final copy's branch self-chains, and
/// multi-block loops end the trace at closure.
///
/// For interior conditionals the continuation leg is chosen by profile: the
/// hotter chain-link slot of the cached region containing the branch,
/// falling back to the static backward-branch heuristic when the profile is
/// empty.
///
/// Formation is pure JIT work: it charges no simulated cycles and touches no
/// iTLB/gTLB counters (guest translations are resolved through the
/// uncharged walker).
#[allow(clippy::too_many_arguments)]
pub fn form_region(
    isa: &Aarch64Isa,
    machine: &mut Machine,
    runtime: &mut CaptiveRuntime,
    timers: &mut PhaseTimers,
    cache: &CodeCache,
    entry_pc: u64,
    entry_pa: u64,
    max_insns: usize,
    unroll: usize,
    close_loops: bool,
    fp_mode: FpMode,
    run_opt: bool,
    promote: bool,
    idioms: Option<&RuleTable>,
) -> (Option<Region>, Vec<(u64, u64)>) {
    let mut source = LiveSource::new(machine, runtime, cache);
    match form_region_from(
        isa,
        &mut source,
        timers,
        entry_pc,
        entry_pa,
        max_insns,
        unroll,
        close_loops,
        fp_mode,
        run_opt,
        promote,
        idioms,
    ) {
        FormOutcome::Formed(region) => (Some(*region), Vec::new()),
        // A live source never reports missing pages; TooShort is the
        // ordinary "a region would add nothing" refusal, reported with the
        // code pages the abandoned trace consumed so the caller can publish
        // it to the reuse cache.
        FormOutcome::TooShort | FormOutcome::NeedPages(_) => {
            let consumed = source.consumed_hashes();
            (None, consumed)
        }
    }
}

/// The generic former behind [`form_region`]: identical tracing, stitching,
/// peeling and closing logic, but every read goes through the
/// [`TraceSource`] — the live machine on the synchronous path, an immutable
/// snapshot on a tier-1 worker.
#[allow(clippy::too_many_arguments)]
pub fn form_region_from<S: TraceSource + ?Sized>(
    isa: &Aarch64Isa,
    source: &mut S,
    timers: &mut PhaseTimers,
    entry_pc: u64,
    entry_pa: u64,
    max_insns: usize,
    unroll: usize,
    close_loops: bool,
    fp_mode: FpMode,
    run_opt: bool,
    promote: bool,
    idioms: Option<&RuleTable>,
) -> FormOutcome {
    let ctx_gen = source.ctx_gen();
    let unroll = unroll.max(1);
    let mut emitter = Emitter::new();
    let mut guest_insns = 0usize;
    let mut constituents = 1usize;
    let mut pages: Vec<u64> = vec![entry_pa & !0xFFF];
    let mut visited: Vec<u64> = vec![entry_pc];
    let mut starts: Vec<ConstituentStart> = vec![ConstituentStart {
        va: entry_pc,
        pa: entry_pa,
        lir_pos: 0,
        guest_insns_before: 0,
    }];
    // The first back-edge target seen; peeling re-traces its body until
    // `unroll` copies are stitched, then the loop closes.
    let mut loop_header: Option<u64> = None;
    let mut back_edges = 0usize;
    let mut loop_guest_insns = 0usize;
    let mut va = entry_pc;
    let mut page_va = entry_pc & !0xFFF;
    let mut page_pa = entry_pa & !0xFFF;
    // Start of the constituent currently being translated, used to consult
    // the plain region's link heats for leg selection.
    let mut block_start_pa = entry_pa;
    let mut block_start_va = entry_pc;

    loop {
        // Sequential page crossing: a fallthrough constituent boundary.
        if (va & !0xFFF) != page_va {
            if guest_insns >= max_insns || constituents >= REGION_MAX_BLOCKS {
                break;
            }
            match source.va_to_pa(va) {
                SourceRead::Ok(pa) => {
                    page_va = va & !0xFFF;
                    page_pa = pa & !0xFFF;
                    if !pages.contains(&page_pa) {
                        pages.push(page_pa);
                    }
                    constituents += 1;
                    visited.push(va);
                    block_start_pa = pa;
                    block_start_va = va;
                    emitter.trace_edge();
                    starts.push(ConstituentStart {
                        va,
                        pa,
                        lir_pos: emitter.lir_pos(),
                        guest_insns_before: guest_insns,
                    });
                }
                // The next page is not translatable right now: end the trace
                // with a fallthrough exit and let the dispatcher fault.
                SourceRead::Fault => break,
                SourceRead::Missing(page) => return FormOutcome::NeedPages(vec![page]),
            }
        }
        let pa_i = page_pa | (va & 0xFFF);
        let word = match source.read_code_word(pa_i) {
            SourceRead::Ok(w) => w,
            SourceRead::Fault => 0,
            SourceRead::Missing(page) => return FormOutcome::NeedPages(vec![page]),
        };
        let decoded = timers.time(Phase::Decode, || source.decode(isa, word, va));
        let Some(d) = decoded else {
            // Undefined instruction: raise a guest UNDEF exception, exactly
            // as the per-block translator does, and end the trace.
            timers.time(Phase::Translate, || {
                let class = emitter.const_u64(guest_aarch64::esr_class::UNDEFINED);
                let iss = emitter.const_u64(0);
                let ret = emitter.const_u64(va);
                emitter.call_helper(
                    guest_aarch64::gen::helpers::TAKE_EXCEPTION,
                    &[class, iss, ret],
                );
                emitter.set_end_of_block();
            });
            guest_insns += 1;
            va += 4;
            break;
        };

        // For direct terminators, pick the on-trace continuation and decide
        // whether it extends the trace, peels a loop body, or closes a
        // back-edge.  Physical addresses are resolved before generating, so
        // a stitched leg is known to be translatable.
        let budget_left = guest_insns + 1 < max_insns && constituents < REGION_MAX_BLOCKS;
        let candidate = match d.insn {
            Insn::B { offset } | Insn::Bl { offset } => Some(va.wrapping_add(offset as u64)),
            Insn::BCond { offset, .. } | Insn::Cbz { offset, .. } | Insn::Cbnz { offset, .. } => {
                let taken = va.wrapping_add(offset as u64);
                let fallthrough = va.wrapping_add(4);
                Some(choose_leg(
                    source,
                    block_start_pa,
                    block_start_va,
                    va,
                    taken,
                    fallthrough,
                ))
            }
            _ => None,
        };
        let step = match candidate {
            None => Step::Plain,
            Some(t) if !visited.contains(&t) => {
                if budget_left {
                    match source.va_to_pa(t) {
                        SourceRead::Ok(p) => Step::Forward(t, p),
                        SourceRead::Fault => Step::Plain,
                        SourceRead::Missing(page) => {
                            return FormOutcome::NeedPages(vec![page]);
                        }
                    }
                } else {
                    Step::Plain
                }
            }
            Some(t) if close_loops => {
                // A back edge to a traced constituent.  Peel while budget
                // allows and fewer than `unroll` copies of the header have
                // been stitched (a non-header revisit mid-peel is simply the
                // body path being re-traced); otherwise close the loop.
                let header = *loop_header.get_or_insert(t);
                let copies = visited.iter().filter(|v| **v == header).count();
                let peel = budget_left
                    && if t == header {
                        copies < unroll
                    } else {
                        copies > 1
                    };
                if peel {
                    let pa = starts
                        .iter()
                        .find(|s| s.va == t)
                        .map(|s| s.pa)
                        .expect("revisited constituent was recorded");
                    Step::Forward(t, pa)
                } else {
                    Step::Close(t)
                }
            }
            Some(t) => {
                // Legacy stop-at-closure behaviour (loop regions disabled):
                // only a single-block self-loop peels, and the final copy's
                // branch is left as the ordinary self-chaining terminator.
                if budget_left
                    && t == entry_pc
                    && unroll > 1
                    && visited.len() < unroll
                    && visited.iter().all(|v| *v == entry_pc)
                {
                    loop_header = Some(entry_pc);
                    Step::Forward(t, entry_pa)
                } else {
                    Step::Plain
                }
            }
        };

        match step {
            Step::Forward(target, target_pa) => {
                emitter.set_trace_next(target);
                timers.time(Phase::Translate, || {
                    if fp_mode == FpMode::Software {
                        generate_maybe_soft_fp(&d, &mut emitter, isa);
                    } else {
                        isa.generate(&d, &mut emitter);
                    }
                });
                if emitter.take_stitched() {
                    guest_insns += 1;
                    constituents += 1;
                    visited.push(target);
                    va = target;
                    page_va = target & !0xFFF;
                    page_pa = target_pa & !0xFFF;
                    if !pages.contains(&page_pa) {
                        pages.push(page_pa);
                    }
                    block_start_pa = target_pa;
                    block_start_va = target;
                    starts.push(ConstituentStart {
                        va: target,
                        pa: target_pa,
                        lir_pos: emitter.lir_pos(),
                        guest_insns_before: guest_insns,
                    });
                    continue;
                }
                // The generator terminated without stitching (e.g. a folded
                // conditional resolved to the other leg): the trace ends
                // here.
                guest_insns += 1;
                va += 4;
                break;
            }
            Step::Close(target) => {
                let first = starts
                    .iter()
                    .find(|s| s.va == target)
                    .expect("closed target was traced");
                let insns_before = first.guest_insns_before;
                let label = emitter.insert_label_at(first.lir_pos);
                emitter.set_trace_back(target, label);
                timers.time(Phase::Translate, || {
                    if fp_mode == FpMode::Software {
                        generate_maybe_soft_fp(&d, &mut emitter, isa);
                    } else {
                        isa.generate(&d, &mut emitter);
                    }
                });
                guest_insns += 1;
                if emitter.take_stitched_back() {
                    back_edges = 1;
                    loop_guest_insns = guest_insns - insns_before;
                } else {
                    // The generator resolved to the non-loop leg without
                    // stitching; the trace ends as an ordinary terminator
                    // (the stray loop label is harmless).
                    va += 4;
                }
                break;
            }
            Step::Plain => {
                let end = timers.time(Phase::Translate, || {
                    let end = if fp_mode == FpMode::Software {
                        generate_maybe_soft_fp(&d, &mut emitter, isa)
                    } else {
                        isa.generate(&d, &mut emitter)
                    };
                    if !end {
                        emitter.inc_pc(4);
                    }
                    end
                });
                guest_insns += 1;
                va += 4;
                if end || guest_insns >= max_insns {
                    break;
                }
            }
        }
    }

    if constituents < 2 && back_edges == 0 {
        return FormOutcome::TooShort;
    }

    let exit = emitter
        .exit_hint()
        .unwrap_or(BlockExit::Fallthrough { next: va });
    let lir = emitter.finish();
    let lir_count = lir.len();
    let t = match dbt::finish_translation(timers, lir, run_opt, promote, idioms) {
        Ok(t) => t,
        Err(_) => {
            // A lowering defect abandons the formation; the dispatcher keeps
            // running the constituent blocks and the quarantine/backoff
            // machinery decides when (or whether) to retry.
            timers.lower_bailouts += 1;
            return FormOutcome::TooShort;
        }
    };
    timers.blocks += 1;
    timers.guest_insns += guest_insns as u64;

    // Copies of the loop body stitched (header occurrences); 1 when no loop
    // was peeled or closed.
    let unroll_copies = loop_header
        .map(|h| visited.iter().filter(|v| **v == h).count())
        .unwrap_or(1);
    // Pro-rated eliminated-LIR share of the looping portion, credited per
    // back-edge transfer by the dynamic instructions-saved accounting.
    let loop_elided_insns = (t.elided * loop_guest_insns)
        .checked_div(guest_insns)
        .unwrap_or(0);

    FormOutcome::Formed(Box::new(Region {
        guest_phys: entry_pa,
        guest_virt: entry_pc,
        guest_insns,
        encoded_bytes: t.encoded.len(),
        lir_insns: lir_count,
        elided_insns: t.elided,
        code: Arc::new(t.code),
        exit,
        links: ChainLinks::default(),
        constituents,
        pages,
        ctx_gen,
        unroll: unroll_copies,
        back_edges,
        loop_guest_insns,
        loop_elided_insns,
        promoted: t.promoted,
        idiom_candidates: t.idioms.candidates,
    }))
}

/// Picks the continuation leg of an interior conditional: the hotter chain
/// link of the block holding the branch (live links or a frozen profile
/// snapshot, per the source), falling back to "backward taken targets are
/// loops" when the profile is empty or tied.
fn choose_leg<S: TraceSource + ?Sized>(
    source: &S,
    block_pa: u64,
    block_va: u64,
    branch_va: u64,
    taken: u64,
    fallthrough: u64,
) -> u64 {
    if let Some((taken_heat, fall_heat)) = source.branch_heats(RegionKey {
        phys: block_pa,
        virt: block_va,
    }) {
        if taken_heat != fall_heat {
            return if taken_heat > fall_heat {
                taken
            } else {
                fallthrough
            };
        }
    }
    if taken <= branch_va {
        taken
    } else {
        fallthrough
    }
}

/// In software-FP mode, scalar FP arithmetic is routed through softfloat
/// helper calls (the Section 3.6.2 ablation); everything else uses the normal
/// generator functions.
fn generate_maybe_soft_fp(d: &Decoded, e: &mut Emitter, isa: &Aarch64Isa) -> bool {
    let soft_bin = |e: &mut Emitter, helper: u16, vd: u32, vn: u32, vm: u32| {
        let a = e.load_register(v_off(vn), ValueType::U64);
        let b = e.load_register(v_off(vm), ValueType::U64);
        let r = e.call_helper(helper, &[a, b]);
        e.store_register(v_off(vd), r);
        let zero = e.const_u64(0);
        e.store_register_sized(v_off(vd) + 8, zero, MemSize::U64);
        false
    };
    match d.insn {
        Insn::FpReg { kind, vd, vn, vm } => {
            let helper = match kind {
                FpKind::Add => sf_helpers::ADD,
                FpKind::Sub => sf_helpers::SUB,
                FpKind::Mul => sf_helpers::MUL,
                FpKind::Div => sf_helpers::DIV,
            };
            soft_bin(e, helper, vd, vn, vm)
        }
        Insn::Fsqrt { vd, vn } => {
            let a = e.load_register(v_off(vn), ValueType::U64);
            let r = e.call_helper(sf_helpers::SQRT, &[a]);
            e.store_register(v_off(vd), r);
            let zero = e.const_u64(0);
            e.store_register_sized(v_off(vd) + 8, zero, MemSize::U64);
            false
        }
        Insn::Fmadd { vd, vn, vm, va } => {
            let a = e.load_register(v_off(vn), ValueType::U64);
            let b = e.load_register(v_off(vm), ValueType::U64);
            let prod = e.call_helper(sf_helpers::MUL, &[a, b]);
            let c = e.load_register(v_off(va), ValueType::U64);
            let sum = e.call_helper(sf_helpers::ADD, &[prod, c]);
            e.store_register(v_off(vd), sum);
            let zero = e.const_u64(0);
            e.store_register_sized(v_off(vd) + 8, zero, MemSize::U64);
            false
        }
        _ => isa.generate(d, e),
    }
}
