//! The per-block translation driver: decode → generate → allocate → encode.
//!
//! This is the online pipeline of Fig. 8, timed per phase for the Fig. 20
//! experiment.  Guest basic blocks end at the first branch/exception
//! instruction, at a page boundary, or at the configured instruction limit.

use crate::layout;
use crate::runtime::sf_helpers;
use crate::FpMode;
use dbt::emitter::ValueType;
use dbt::{
    lower, regalloc, BlockExit, ChainLinks, Emitter, GuestIsa, Phase, PhaseTimers, TranslatedBlock,
};
use guest_aarch64::gen::Decoded;
use guest_aarch64::isa::{FpKind, Insn};
use guest_aarch64::{v_off, Aarch64Isa};
use hvm::{Machine, MemSize};
use std::sync::Arc;

/// Translates one guest basic block starting at virtual address `pc`
/// (physical address `pa`).
#[allow(clippy::too_many_arguments)]
pub fn translate_block(
    isa: &Aarch64Isa,
    machine: &mut Machine,
    timers: &mut PhaseTimers,
    pc: u64,
    pa: u64,
    max_insns: usize,
    fp_mode: FpMode,
) -> TranslatedBlock {
    let mut emitter = Emitter::new();
    let mut guest_insns = 0usize;
    let mut va = pc;

    loop {
        // Stop at page boundaries so a block never spans two translations
        // of different physical pages.
        if guest_insns > 0 && (va & !0xFFF) != (pc & !0xFFF) {
            break;
        }
        // Every instruction shares the first one's page (the boundary check
        // above), so its physical address is pure offset arithmetic — no
        // walk, and the fetch iTLB counters stay dispatch-only.
        let pa_i = (pa & !0xFFF) | (va & 0xFFF);
        let word = machine
            .mem
            .read_uint(layout::GUEST_PHYS_BASE + pa_i, 4)
            .unwrap_or(0) as u32;

        let decoded = timers.time(Phase::Decode, || isa.decode(word, va));
        let end = match decoded {
            None => {
                // Undefined instruction: raise a guest UNDEF exception.
                timers.time(Phase::Translate, || {
                    let class = emitter.const_u64(guest_aarch64::esr_class::UNDEFINED);
                    let iss = emitter.const_u64(0);
                    let ret = emitter.const_u64(va);
                    emitter.call_helper(
                        guest_aarch64::gen::helpers::TAKE_EXCEPTION,
                        &[class, iss, ret],
                    );
                    emitter.set_end_of_block();
                });
                true
            }
            Some(d) => timers.time(Phase::Translate, || {
                let end = if fp_mode == FpMode::Software {
                    generate_maybe_soft_fp(&d, &mut emitter, isa)
                } else {
                    isa.generate(&d, &mut emitter)
                };
                if !end {
                    emitter.inc_pc(4);
                }
                end
            }),
        };
        guest_insns += 1;
        va += 4;
        if end || guest_insns >= max_insns {
            break;
        }
    }

    // Terminator metadata for direct chaining: a block that never emitted a
    // PC-setting terminator ended at the instruction limit or a page
    // boundary and falls through sequentially.
    let exit = emitter
        .exit_hint()
        .unwrap_or(BlockExit::Fallthrough { next: va });

    let lir = emitter.finish();
    let lir_count = lir.len();
    let allocation = timers.time(Phase::RegAlloc, || regalloc::allocate(&lir));
    let (code, encoded) = timers.time(Phase::Encode, || {
        let code = lower::lower(&lir, &allocation);
        let encoded = hvm::encode::encode_block(&code);
        (code, encoded)
    });
    timers.blocks += 1;
    timers.guest_insns += guest_insns as u64;

    TranslatedBlock {
        key: pa,
        guest_phys: pa,
        guest_virt: pc,
        guest_insns,
        encoded_bytes: encoded.len(),
        lir_insns: lir_count,
        code: Arc::new(code),
        exit,
        links: ChainLinks::default(),
    }
}

/// In software-FP mode, scalar FP arithmetic is routed through softfloat
/// helper calls (the Section 3.6.2 ablation); everything else uses the normal
/// generator functions.
fn generate_maybe_soft_fp(d: &Decoded, e: &mut Emitter, isa: &Aarch64Isa) -> bool {
    let soft_bin = |e: &mut Emitter, helper: u16, vd: u32, vn: u32, vm: u32| {
        let a = e.load_register(v_off(vn), ValueType::U64);
        let b = e.load_register(v_off(vm), ValueType::U64);
        let r = e.call_helper(helper, &[a, b]);
        e.store_register(v_off(vd), r);
        let zero = e.const_u64(0);
        e.store_register_sized(v_off(vd) + 8, zero, MemSize::U64);
        false
    };
    match d.insn {
        Insn::FpReg { kind, vd, vn, vm } => {
            let helper = match kind {
                FpKind::Add => sf_helpers::ADD,
                FpKind::Sub => sf_helpers::SUB,
                FpKind::Mul => sf_helpers::MUL,
                FpKind::Div => sf_helpers::DIV,
            };
            soft_bin(e, helper, vd, vn, vm)
        }
        Insn::Fsqrt { vd, vn } => {
            let a = e.load_register(v_off(vn), ValueType::U64);
            let r = e.call_helper(sf_helpers::SQRT, &[a]);
            e.store_register(v_off(vd), r);
            let zero = e.const_u64(0);
            e.store_register_sized(v_off(vd) + 8, zero, MemSize::U64);
            false
        }
        Insn::Fmadd { vd, vn, vm, va } => {
            let a = e.load_register(v_off(vn), ValueType::U64);
            let b = e.load_register(v_off(vm), ValueType::U64);
            let prod = e.call_helper(sf_helpers::MUL, &[a, b]);
            let c = e.load_register(v_off(va), ValueType::U64);
            let sum = e.call_helper(sf_helpers::ADD, &[prod, c]);
            e.store_register(v_off(vd), sum);
            let zero = e.const_u64(0);
            e.store_register_sized(v_off(vd) + 8, zero, MemSize::U64);
            false
        }
        _ => isa.generate(d, e),
    }
}
