//! Host physical and virtual memory layout used by the hypervisor.
//!
//! Mirrors Fig. 15 of the paper: the low half of the host virtual address
//! space belongs to the guest (populated on demand from the guest's own page
//! tables, or identity-mapped to guest physical memory while the guest MMU is
//! off), and the upper half holds Captive's own structures — here the guest
//! register file and the JIT spill area.

/// Host physical address of the guest register file (one page).
pub const REGFILE_PHYS: u64 = 0x0010_0000;
/// Host physical address of the JIT spill page.
pub const SPILL_PHYS: u64 = 0x0011_0000;
/// Host physical range used as a pool for host page-table frames.
pub const HOST_PT_POOL_START: u64 = 0x0020_0000;
/// End of the host page-table frame pool.
pub const HOST_PT_POOL_END: u64 = 0x00A0_0000;
/// Host physical base of the emulated guest physical memory.
pub const GUEST_PHYS_BASE: u64 = 0x0100_0000;

/// Host virtual address of the guest register file (upper half of the
/// canonical 48-bit space, so it survives low-half teardown on guest TLB
/// flushes).  The JIT spill area sits in the page immediately below it.
pub const REGFILE_VA: u64 = 0x0000_8000_0001_0000;

/// Boundary between the guest (lower) and Captive (upper) halves of the host
/// virtual address space.
pub const LOWER_HALF_LIMIT: u64 = 1 << 47;

/// Number of top-level page-table entries covering the lower half.
pub const LOWER_HALF_PML4_ENTRIES: u64 = 256;
