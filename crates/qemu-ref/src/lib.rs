//! QEMU/TCG-style baseline system-level DBT.
//!
//! This crate reproduces the design decisions the paper attributes QEMU's
//! performance characteristics to, over the same guest model and host
//! machine as Captive, so the two systems differ only in the ways the paper
//! compares them:
//!
//! * it runs as a "user process": host paging is left off and every guest
//!   memory access goes through a **software MMU** helper that looks up a
//!   software TLB and falls back to a guest page-table walk (Section 2.7.2);
//! * guest floating-point instructions call **softfloat helpers** instead of
//!   host FP instructions (Section 2.5);
//! * translations are cached by guest **virtual** address and the whole cache
//!   is invalidated whenever the guest changes its translation state
//!   (Section 2.6);
//! * vector instructions are implemented with helper calls rather than host
//!   SIMD;
//! * optionally (`qemu_chaining`), translated blocks chain to direct
//!   successors **within the same guest page**, as real QEMU/TCG does —
//!   cross-page links are never patched, because a virtually-indexed cache
//!   can only trust a stitched transfer while the fetch stays on the page
//!   the translation was made for.  This tightens the baseline so reported
//!   Captive speedups are not inflated by a chain-less strawman;
//! * optionally (`goto_tb`, implies nothing about `qemu_chaining` — enable
//!   both), the same-page restriction is lifted and direct branches link
//!   across pages, like TCG's `goto_tb` between translation blocks.  The
//!   epoch-stamped links still die with every full-cache flush, so the
//!   stitching stays architecturally invisible; this is the *strongest*
//!   honest baseline, used by the figures harness so promoted-loop speedups
//!   are not measured against a hobbled dispatcher.

use captive::layout;
use captive::runtime::{GuestEvent, SVC_EXIT, SVC_PUTCHAR};
use dbt::emitter::ValueType;
use dbt::{
    BlockExit, CacheIndex, ChainLinks, CodeCache, Emitter, EntryMode, GuestIsa, Phase, PhaseTimers,
    Region, RegionKey, RegionProfile,
};
use guest_aarch64::gen::helpers;
use guest_aarch64::isa::{AccessSize, FpKind, Insn};
use guest_aarch64::{esr_class, mmu, v_off, x_off, Aarch64Isa, SysReg};
use hvm::{
    EventSources, ExitReason, FaultAction, Gpr, HelperResult, Machine, MachineConfig, MemSize,
    Runtime, VirtioBlk,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Helper ids specific to the QEMU-style runtime.
pub mod qhelpers {
    /// Softmmu load: args (vaddr, size in bytes, sign-extend flag).
    pub const MMU_READ: u16 = 40;
    /// Softmmu store: args (vaddr, value, size in bytes).
    pub const MMU_WRITE: u16 = 41;
    /// Softfloat binary op: args (op, a, b) where op selects add/sub/mul/div.
    pub const SOFT_FP: u16 = 42;
    /// Softfloat square root: arg (a).
    pub const SOFT_SQRT: u16 = 43;
    /// Vector helper (packed f64 add/mul element by element through memory).
    pub const VEC_OP: u16 = 44;
}

/// Why a run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunExit {
    /// Guest halted (exit hypercall or HLT).
    GuestHalted {
        /// Exit code.
        code: u64,
    },
    /// The block budget was exhausted.
    BudgetExhausted,
    /// Execution-engine error.
    Error(String),
}

/// Aggregate run statistics.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Simulated cycles.
    pub cycles: u64,
    /// Host instructions executed.
    pub host_insns: u64,
    /// Guest instructions attributed.
    pub guest_insns: u64,
    /// Blocks executed (dispatched and chained).
    pub blocks: u64,
    /// Translations performed.
    pub translations: u64,
    /// Bytes of host code generated.
    pub code_bytes: u64,
    /// Same-page chained transfers (0 unless `qemu_chaining` is enabled).
    pub chained_transfers: u64,
    /// Cross-page chained transfers (subset of `chained_transfers`; 0 unless
    /// `goto_tb` is enabled).
    pub goto_tb_transfers: u64,
    /// Successor links patched lazily.
    pub chain_patches: u64,
    /// Guest exceptions delivered (synchronous + asynchronous).
    pub guest_exceptions: u64,
    /// Asynchronous IRQs delivered (subset of `guest_exceptions`).
    pub irqs_delivered: u64,
    /// Timer-originated IRQs delivered (subset of `irqs_delivered`).
    pub timer_irqs: u64,
    /// Virtio queue notifications (doorbell writes) observed.
    pub virtio_kicks: u64,
    /// Virtio requests accepted off the available ring.
    pub virtio_submissions: u64,
    /// Virtio completions retired to the used ring.
    pub virtio_completions: u64,
    /// Completion interrupts the device raised.
    pub virtio_irqs: u64,
    /// Faults the seeded plan injected.
    pub virtio_fault_injections: u64,
    /// Bytes moved by device DMA (both directions).
    pub virtio_dma_bytes: u64,
    /// Requests completed with a non-OK status.
    pub virtio_io_errors: u64,
    /// Full-cache flushes forced by device DMA landing behind the
    /// translator's back (the virtually-indexed analogue of Captive's
    /// per-page external invalidations).
    pub external_invalidations: u64,
}

/// The QEMU-style runtime: software TLB, softfloat state, console.
pub struct QemuRuntime {
    regfile_phys: u64,
    #[allow(dead_code)]
    guest_ram: u64,
    /// Software TLB: guest virtual page -> (guest physical page, writable, user).
    soft_tlb: HashMap<u64, (u64, bool, bool)>,
    /// Set when the guest changed translation state; the dispatcher must
    /// flush the (virtually-indexed) code cache.
    pub flush_requested: bool,
    /// Console output.
    pub uart_output: Vec<u8>,
    /// Exit code from the exit hypercall.
    pub exit_code: Option<u64>,
    pending: Option<GuestEvent>,
    fp_env: softfloat::FpEnv,
    /// Software TLB statistics.
    pub soft_tlb_hits: u64,
    /// Software TLB misses (guest page walks).
    pub soft_tlb_misses: u64,
    /// Deterministic guest event sources (timer + interrupt latch),
    /// identical in behaviour to Captive's so cross-engine runs observe the
    /// same events.
    pub events: EventSources,
    /// Optional virtio-mmio block device (same model Captive attaches, so
    /// cross-engine runs observe identical DMA and completion behaviour).
    pub virtio: Option<VirtioBlk>,
    /// Full flushes forced by device DMA (sampled into
    /// [`RunStats::external_invalidations`]).
    pub external_invalidations: u64,
}

impl QemuRuntime {
    fn new(guest_ram: u64) -> Self {
        QemuRuntime {
            regfile_phys: layout::REGFILE_PHYS,
            guest_ram,
            soft_tlb: HashMap::new(),
            flush_requested: false,
            uart_output: Vec::new(),
            exit_code: None,
            pending: None,
            fp_env: softfloat::FpEnv::arm(),
            soft_tlb_hits: 0,
            soft_tlb_misses: 0,
            events: EventSources::default(),
            virtio: None,
            external_invalidations: 0,
        }
    }

    /// Retires due virtio completions.  Any DMA the device performed landed
    /// behind the translator's back; a virtually-indexed cache has no
    /// per-physical-page index to invalidate through, so the honest QEMU
    /// response is the same one translation-state changes get: request a
    /// full flush.  Returns `true` when at least one completion retired.
    pub fn poll_virtio(&mut self, machine: &mut Machine) -> bool {
        let Some(dev) = self.virtio.as_mut() else {
            return false;
        };
        if !dev.poll(
            &mut machine.mem,
            machine.perf.cycles,
            &mut self.events.latch,
        ) {
            return false;
        }
        if !dev.take_touched_pages().is_empty() {
            self.flush_requested = true;
            self.external_invalidations += 1;
        }
        true
    }

    /// True when the attached device has a completion ready to retire at
    /// `cycles` (polled from the chained dispatch loop so device latency is
    /// bounded by one block, mirroring Captive's back-edge poll).
    pub fn virtio_due(&self, cycles: u64) -> bool {
        self.virtio
            .as_ref()
            .is_some_and(|d| d.due(cycles, &self.events.latch))
    }

    fn read_gregfile(&self, machine: &Machine, offset: i32) -> u64 {
        machine
            .mem
            .read_u64(self.regfile_phys + offset as u64)
            .unwrap_or(0)
    }

    fn write_gregfile(&self, machine: &mut Machine, offset: i32, value: u64) {
        let _ = machine
            .mem
            .write_u64(self.regfile_phys + offset as u64, value);
    }

    fn mmu_enabled(&self, machine: &Machine) -> bool {
        self.read_gregfile(machine, guest_aarch64::SCTLR_OFF) & 1 != 0
    }

    /// Software translation of a guest virtual address, maintaining the
    /// software TLB (the QEMU fast-path/slow-path structure).
    fn soft_translate(
        &mut self,
        machine: &Machine,
        va: u64,
        write: bool,
    ) -> Result<(u64, u64), GuestEvent> {
        if !self.mmu_enabled(machine) {
            if va >= self.guest_ram {
                return Err(GuestEvent::DataAbort { vaddr: va, write });
            }
            // Even with the guest MMU off, QEMU funnels accesses through its
            // software TLB; a miss takes the slow path that refills it.
            let vpn = va >> 12;
            if self.soft_tlb.contains_key(&vpn) {
                self.soft_tlb_hits += 1;
                return Ok((va, 30));
            }
            self.soft_tlb_misses += 1;
            self.soft_tlb.insert(vpn, (va & !0xFFF, true, true));
            return Ok((va, 350));
        }
        let vpn = va >> 12;
        if let Some(&(frame, writable, _user)) = self.soft_tlb.get(&vpn) {
            if !write || writable {
                self.soft_tlb_hits += 1;
                return Ok((frame | (va & 0xFFF), 30));
            }
        }
        self.soft_tlb_misses += 1;
        let ttbr0 = self.read_gregfile(machine, guest_aarch64::TTBR0_OFF);
        let guest_ram = self.guest_ram;
        let walk = mmu::walk_guest(
            |a| {
                if a + 8 > guest_ram {
                    None
                } else {
                    machine.mem.read_u64(layout::GUEST_PHYS_BASE + a).ok()
                }
            },
            ttbr0,
            va,
        )
        .map_err(|_| GuestEvent::DataAbort { vaddr: va, write })?;
        if write && !walk.flags.writable {
            return Err(GuestEvent::DataAbort { vaddr: va, write });
        }
        self.soft_tlb
            .insert(vpn, (walk.frame, walk.flags.writable, walk.flags.user));
        // Slow path: a full guest page-table walk in software (several
        // dependent memory accesses plus permission evaluation).
        Ok((walk.frame | (va & 0xFFF), 420))
    }

    fn take_exception(
        &mut self,
        machine: &mut Machine,
        class: u64,
        iss: u64,
        ret: u64,
        far: Option<u64>,
    ) {
        // Exception entry masks asynchronous events (the PSTATE.I analogue)
        // until the handler's `eret`, mirroring Captive: a pending IRQ must
        // never preempt a handler mid-flight and clobber ELR/ESR under it.
        self.events.set_masked(true);
        let el = self.read_gregfile(machine, guest_aarch64::CURRENT_EL_OFF);
        let nzcv = self.read_gregfile(machine, guest_aarch64::NZCV_OFF);
        self.write_gregfile(
            machine,
            guest_aarch64::ESR_OFF,
            (class << 26) | (iss & 0xFFFF),
        );
        if let Some(f) = far {
            self.write_gregfile(machine, guest_aarch64::FAR_OFF, f);
        }
        self.write_gregfile(machine, guest_aarch64::ELR_OFF, ret);
        // Same SPSR layout as Captive: interrupted NZCV in bits 31..28, EL
        // in bit 0, so a handler may clobber flags at any preemption point.
        self.write_gregfile(
            machine,
            guest_aarch64::SPSR_OFF,
            ((nzcv & 0xF) << 28) | (el & 1),
        );
        self.write_gregfile(machine, guest_aarch64::CURRENT_EL_OFF, 1);
        let vbar = self.read_gregfile(machine, guest_aarch64::VBAR_OFF);
        if vbar == 0 {
            // No vector installed: fatal guest error (see Captive's runtime).
            self.exit_code = Some(0xDEAD);
        }
        machine.set_reg(Gpr::R15, vbar);
    }
}

impl Runtime for QemuRuntime {
    fn helper(&mut self, id: u16, machine: &mut Machine) -> HelperResult {
        match id {
            qhelpers::MMU_READ => {
                let va = machine.reg(Gpr::Rdi);
                let size = machine.reg(Gpr::Rsi);
                match self.soft_translate(machine, va, false) {
                    Ok((pa, cost)) => {
                        let v = machine
                            .mem
                            .read_uint(layout::GUEST_PHYS_BASE + pa, size.clamp(1, 8))
                            .unwrap_or(0);
                        machine.set_reg(Gpr::Rax, v);
                        HelperResult::Continue { cost }
                    }
                    Err(ev) => {
                        self.pending = Some(ev);
                        HelperResult::Exit { cost: 200 }
                    }
                }
            }
            qhelpers::MMU_WRITE => {
                let va = machine.reg(Gpr::Rdi);
                let value = machine.reg(Gpr::Rsi);
                let size = machine.reg(Gpr::Rdx);
                match self.soft_translate(machine, va, true) {
                    Ok((pa, cost)) => {
                        let _ = machine.mem.write_uint(
                            layout::GUEST_PHYS_BASE + pa,
                            value,
                            size.clamp(1, 8),
                        );
                        HelperResult::Continue { cost }
                    }
                    Err(ev) => {
                        self.pending = Some(ev);
                        HelperResult::Exit { cost: 200 }
                    }
                }
            }
            qhelpers::SOFT_FP => {
                let op = machine.reg(Gpr::Rdi);
                let a = machine.reg(Gpr::Rsi);
                let b = machine.reg(Gpr::Rdx);
                let r = match op {
                    0 => softfloat::f64_add(a, b, &mut self.fp_env),
                    1 => softfloat::f64_sub(a, b, &mut self.fp_env),
                    2 => softfloat::f64_mul(a, b, &mut self.fp_env),
                    _ => softfloat::f64_div(a, b, &mut self.fp_env),
                };
                machine.set_reg(Gpr::Rax, r);
                HelperResult::Continue { cost: 110 }
            }
            qhelpers::SOFT_SQRT => {
                let a = machine.reg(Gpr::Rdi);
                let r = softfloat::f64_sqrt_arm(a, &mut self.fp_env);
                machine.set_reg(Gpr::Rax, r);
                HelperResult::Continue { cost: 160 }
            }
            qhelpers::VEC_OP => {
                // args: (op, vd offset, vn offset, vm offset) — element-wise
                // double-precision op performed lane by lane in the helper.
                let op = machine.reg(Gpr::Rdi);
                let vd = machine.reg(Gpr::Rsi);
                let vn = machine.reg(Gpr::Rdx);
                let vm = machine.reg(Gpr::Rcx);
                for lane in 0..2u64 {
                    let a = machine
                        .mem
                        .read_u64(self.regfile_phys + vn + lane * 8)
                        .unwrap_or(0);
                    let b = machine
                        .mem
                        .read_u64(self.regfile_phys + vm + lane * 8)
                        .unwrap_or(0);
                    let r = if op == 0 {
                        softfloat::f64_add(a, b, &mut self.fp_env)
                    } else {
                        softfloat::f64_mul(a, b, &mut self.fp_env)
                    };
                    let _ = machine.mem.write_u64(self.regfile_phys + vd + lane * 8, r);
                }
                HelperResult::Continue { cost: 260 }
            }
            helpers::TAKE_EXCEPTION => {
                let class = machine.reg(Gpr::Rdi);
                let iss = machine.reg(Gpr::Rsi);
                let ret_pc = machine.reg(Gpr::Rdx);
                if class == esr_class::SVC && iss == SVC_PUTCHAR as u64 {
                    let ch = self.read_gregfile(machine, x_off(0)) as u8;
                    self.uart_output.push(ch);
                    machine.set_reg(Gpr::R15, ret_pc);
                    return HelperResult::Exit { cost: 150 };
                }
                if class == esr_class::SVC && iss == SVC_EXIT as u64 {
                    self.exit_code = Some(self.read_gregfile(machine, x_off(0)));
                    return HelperResult::Halt { cost: 50 };
                }
                self.take_exception(machine, class, iss, ret_pc, None);
                HelperResult::Exit { cost: 350 }
            }
            helpers::TLBI => {
                self.soft_tlb.clear();
                self.flush_requested = true;
                HelperResult::Continue { cost: 300 }
            }
            helpers::MSR_NOTIFY => {
                let id = machine.reg(Gpr::Rdi) as u32;
                match SysReg::from_id(id) {
                    Some(SysReg::Ttbr0) | Some(SysReg::Sctlr) => {
                        self.soft_tlb.clear();
                        self.flush_requested = true;
                    }
                    Some(SysReg::CntTval) => {
                        let delta = self.read_gregfile(machine, guest_aarch64::CNT_TVAL_OFF);
                        // Saturate: a guest programming a near-u64::MAX delta
                        // must disarm-at-infinity, not wrap to the past.
                        self.events
                            .timer
                            .arm_oneshot(machine.perf.cycles.saturating_add(delta));
                    }
                    Some(SysReg::CntCtl) => {
                        let period = self.read_gregfile(machine, guest_aarch64::CNT_CTL_OFF);
                        if period == 0 {
                            self.events.timer.cancel();
                        } else {
                            self.events
                                .timer
                                .arm_periodic(machine.perf.cycles.saturating_add(period), period);
                        }
                    }
                    Some(SysReg::VblkNotify) => {
                        if let Some(dev) = self.virtio.as_mut() {
                            let now = machine.perf.cycles;
                            dev.kick(&mut machine.mem, now);
                        }
                    }
                    _ => {}
                }
                HelperResult::Continue { cost: 200 }
            }
            helpers::FCMP => {
                let a = f64::from_bits(machine.reg(Gpr::Rdi));
                let b = f64::from_bits(machine.reg(Gpr::Rsi));
                let nzcv: u64 = if a.is_nan() || b.is_nan() {
                    0b0011
                } else if a < b {
                    0b1000
                } else if a == b {
                    0b0110
                } else {
                    0b0010
                };
                machine.set_reg(Gpr::Rax, nzcv);
                HelperResult::Continue { cost: 60 }
            }
            helpers::ERET => {
                let elr = self.read_gregfile(machine, guest_aarch64::ELR_OFF);
                let spsr = self.read_gregfile(machine, guest_aarch64::SPSR_OFF);
                self.write_gregfile(machine, guest_aarch64::CURRENT_EL_OFF, spsr & 1);
                self.write_gregfile(machine, guest_aarch64::NZCV_OFF, (spsr >> 28) & 0xF);
                self.events.set_masked(false);
                machine.set_reg(Gpr::R15, elr);
                HelperResult::Exit { cost: 300 }
            }
            helpers::HLT => {
                self.exit_code.get_or_insert(0);
                HelperResult::Halt { cost: 20 }
            }
            _ => HelperResult::Continue { cost: 10 },
        }
    }

    fn page_fault(&mut self, _vaddr: u64, _write: bool, _machine: &mut Machine) -> FaultAction {
        // Host paging is off for the QEMU-style baseline, so no host faults
        // should occur; propagate defensively if one does.
        FaultAction::Propagate { cost: 100 }
    }
}

/// The QEMU-style baseline system emulator.
pub struct QemuRef {
    /// Host machine (paging disabled — the "user process" configuration).
    pub machine: Machine,
    /// Runtime services.
    pub runtime: QemuRuntime,
    /// Virtually-indexed code cache.
    pub cache: CodeCache,
    /// JIT phase timers.
    pub timers: PhaseTimers,
    isa: Aarch64Isa,
    guest_ram: u64,
    max_block_insns: usize,
    stats: RunStats,
    per_region: HashMap<RegionKey, RegionProfile>,
    /// Record per-block cycles.
    pub per_block_stats: bool,
    /// Chain direct successors within a guest page (real QEMU's policy).
    pub qemu_chaining: bool,
    /// Lift the same-page restriction on chaining (TCG `goto_tb` analogue):
    /// direct branches link across pages too.  Only meaningful with
    /// `qemu_chaining` enabled.
    pub goto_tb: bool,
}

impl QemuRef {
    /// Creates the baseline emulator with same-page chaining configured
    /// explicitly.
    pub fn with_chaining(guest_ram: u64, qemu_chaining: bool) -> Self {
        let mut q = Self::new(guest_ram);
        q.qemu_chaining = qemu_chaining;
        q
    }

    /// Creates the strongest honest baseline: same-page chaining plus the
    /// `goto_tb` cross-page linking analogue.
    pub fn with_goto_tb(guest_ram: u64) -> Self {
        let mut q = Self::with_chaining(guest_ram, true);
        q.goto_tb = true;
        q
    }

    /// Creates the baseline emulator with the given guest RAM size.
    pub fn new(guest_ram: u64) -> Self {
        let mut machine = Machine::new(MachineConfig::default());
        // The register file is addressed physically (flat memory).
        machine.set_reg(Gpr::Rbp, layout::REGFILE_PHYS);
        let runtime = QemuRuntime::new(guest_ram);
        let mut q = QemuRef {
            machine,
            runtime,
            cache: CodeCache::new(CacheIndex::GuestVirtual),
            timers: PhaseTimers::default(),
            isa: Aarch64Isa,
            guest_ram,
            max_block_insns: 64,
            stats: RunStats::default(),
            per_region: HashMap::new(),
            per_block_stats: false,
            qemu_chaining: false,
            goto_tb: false,
        };
        // Boot in EL1.
        q.machine
            .mem
            .write_u64(
                layout::REGFILE_PHYS + guest_aarch64::CURRENT_EL_OFF as u64,
                1,
            )
            .expect("register file inside RAM");
        q
    }

    /// Attaches a virtio-mmio block device (identical model to Captive's,
    /// so cross-engine runs stay byte-identical under injected faults).
    pub fn attach_virtio(&mut self, cfg: hvm::VirtioBlkConfig) {
        let dev = VirtioBlk::new(cfg, layout::GUEST_PHYS_BASE, self.guest_ram);
        dev.init_mmio(&mut self.machine.mem)
            .expect("virtio MMIO window must lie inside guest RAM");
        self.runtime.virtio = Some(dev);
    }

    /// Loads a guest program at a guest physical address.
    pub fn load_program(&mut self, guest_phys: u64, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            let _ = self.machine.mem.write_uint(
                layout::GUEST_PHYS_BASE + guest_phys + i as u64 * 4,
                *w as u64,
                4,
            );
        }
    }

    /// Writes guest physical memory.
    pub fn write_guest_phys(&mut self, guest_phys: u64, value: u64, size: u64) {
        let _ = self
            .machine
            .mem
            .write_uint(layout::GUEST_PHYS_BASE + guest_phys, value, size);
    }

    /// Sets the guest entry point.
    pub fn set_entry(&mut self, pc: u64) {
        self.machine.set_reg(Gpr::R15, pc);
    }

    /// Reads a guest general-purpose register.
    pub fn guest_reg(&mut self, index: u32) -> u64 {
        self.machine
            .mem
            .read_u64(layout::REGFILE_PHYS + x_off(index) as u64)
            .unwrap_or(0)
    }

    /// Reads the guest's NZCV flags nibble (cross-engine equivalence tests).
    pub fn guest_nzcv(&mut self) -> u64 {
        self.machine
            .mem
            .read_u64(layout::REGFILE_PHYS + guest_aarch64::NZCV_OFF as u64)
            .unwrap_or(0)
    }

    /// FNV-1a digest of `len` bytes of guest physical memory starting at
    /// `start` (byte-exact final-state comparison for the chaos harness).
    pub fn guest_mem_digest(&self, start: u64, len: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for a in start..start.saturating_add(len) {
            let b = self
                .machine
                .mem
                .read_uint(layout::GUEST_PHYS_BASE + a, 1)
                .unwrap_or(0) as u8;
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Console output.
    pub fn console(&self) -> &[u8] {
        &self.runtime.uart_output
    }

    /// Statistics so far.
    pub fn stats(&self) -> RunStats {
        let mut s = self.stats.clone();
        s.cycles = self.machine.perf.cycles;
        s.host_insns = self.machine.perf.insns;
        s.code_bytes = self.cache.total_encoded_bytes() as u64;
        if let Some(dev) = &self.runtime.virtio {
            s.virtio_kicks = dev.stats.kicks;
            s.virtio_submissions = dev.stats.submissions;
            s.virtio_completions = dev.stats.completions;
            s.virtio_irqs = dev.stats.irqs_raised;
            s.virtio_fault_injections = dev.stats.fault_injections;
            s.virtio_dma_bytes = dev.stats.dma_bytes;
            s.virtio_io_errors = dev.stats.io_errors;
        }
        s.external_invalidations = self.runtime.external_invalidations;
        s
    }

    /// Per-region profiles, keyed by the *executed* region (same
    /// [`RegionProfile`] shape as Captive's, so code-quality comparisons
    /// read one structure), with cycles attributed per [`EntryMode`].
    pub fn region_profiles(&self) -> &HashMap<RegionKey, RegionProfile> {
        &self.per_region
    }

    fn fetch_pa(&mut self, va: u64) -> Result<u64, GuestEvent> {
        self.runtime
            .soft_translate(&self.machine, va, false)
            .map(|(pa, _)| pa)
            .map_err(|_| GuestEvent::InstrAbort { vaddr: va })
    }

    /// Runs the guest for at most `max_blocks` executed blocks.
    ///
    /// With `qemu_chaining` enabled the dispatcher has an inner loop that
    /// follows patched successor links between blocks on the same guest
    /// page; links are stamped with the cache epoch, so the full-cache
    /// invalidation that virtual indexing forces on any translation-state
    /// change retires them automatically (there is no context generation in
    /// the QEMU-style design — the flush *is* the generation bump).
    pub fn run(&mut self, max_blocks: u64) -> RunExit {
        let mut budget = max_blocks;
        // A block whose same-page direct exit was taken with the successor
        // link still unresolved; patched once the slow path resolves it.
        let mut patch_from: Option<(Arc<Region>, usize)> = None;
        while budget > 0 {
            if let Some(code) = self.runtime.exit_code {
                return RunExit::GuestHalted { code };
            }
            // Retire due device completions before the flush check so a DMA
            // write that landed on translated code is flushed on this very
            // iteration, not the next.
            self.runtime.poll_virtio(&mut self.machine);
            if self.runtime.flush_requested {
                // Virtual indexing forces a full cache flush on guest
                // translation-state changes.
                self.cache.invalidate_all();
                self.runtime.flush_requested = false;
                patch_from = None;
            }
            let pc = self.machine.reg(Gpr::R15);
            // Deterministic event sources fire at block boundaries (and at
            // back-edge exits of looping translations): the guest PC is
            // architecturally precise here.
            if let Some(line) = self.runtime.events.take(self.machine.perf.cycles) {
                patch_from = None;
                budget -= 1;
                self.deliver(GuestEvent::Irq { line }, pc);
                continue;
            }
            let pa = match self.fetch_pa(pc) {
                Ok(pa) => pa,
                Err(ev) => {
                    patch_from = None;
                    budget -= 1;
                    let pc_now = self.machine.reg(Gpr::R15);
                    self.deliver(ev, pc_now);
                    continue;
                }
            };
            let key = RegionKey { phys: pa, virt: pc };
            let mut block = match self.cache.get(key, 0) {
                Some(b) => b,
                None => {
                    self.stats.translations += 1;
                    let b = self.translate(pc, pa);
                    self.cache.insert(b)
                }
            };
            if let Some((prev, slot)) = patch_from.take() {
                if self.qemu_chaining && block.guest_virt == pc {
                    prev.set_link(slot, 0, self.cache.epoch(), &block);
                    self.stats.chain_patches += 1;
                }
            }
            let mut chained = false;
            loop {
                let before = self.machine.perf.cycles;
                let code = Arc::clone(&block.code);
                let exit = if chained {
                    self.machine.run_block_chained(&code, &mut self.runtime)
                } else {
                    self.machine.run_block(&code, &mut self.runtime)
                };
                let spent = self.machine.perf.cycles - before;
                self.stats.blocks += 1;
                self.stats.guest_insns += block.guest_insns as u64;
                if self.per_block_stats {
                    let p = self.per_region.entry(block.key()).or_default();
                    p.guest_insns = block.guest_insns as u64;
                    p.constituents = block.constituents as u64;
                    let mode = if chained {
                        EntryMode::Chained
                    } else {
                        EntryMode::Dispatched
                    };
                    p.record(mode, spent);
                }
                budget -= 1;
                match exit {
                    ExitReason::BlockEnd | ExitReason::HelperExit => {
                        if let Some(ev) = self.runtime.pending.take() {
                            let pc_now = self.machine.reg(Gpr::R15);
                            self.deliver(ev, pc_now);
                            break;
                        }
                        // A TLBI/MSR helper may have requested the flush that
                        // virtual indexing demands: take the slow path so the
                        // cache is emptied before the next lookup.
                        if exit == ExitReason::HelperExit
                            || self.runtime.flush_requested
                            || !self.qemu_chaining
                            || budget == 0
                            || self.runtime.events.due(self.machine.perf.cycles)
                            || self.runtime.virtio_due(self.machine.perf.cycles)
                        {
                            break;
                        }
                        let next_pc = self.machine.reg(Gpr::R15);
                        // Real QEMU only chains within the guest page the
                        // translation was made for; the `goto_tb` knob lifts
                        // the restriction for direct branches.
                        let cross_page = (next_pc & !0xFFF) != (block.guest_virt & !0xFFF);
                        if cross_page && !self.goto_tb {
                            break;
                        }
                        let Some(slot) = block.chain_slot(next_pc) else {
                            break;
                        };
                        if let Some(next) = block.follow_link(slot, 0, self.cache.epoch()) {
                            self.stats.chained_transfers += 1;
                            if cross_page {
                                self.stats.goto_tb_transfers += 1;
                            }
                            block = next;
                            chained = true;
                            continue;
                        }
                        patch_from = Some((Arc::clone(&block), slot));
                        break;
                    }
                    ExitReason::Halted => {
                        return RunExit::GuestHalted {
                            code: self.runtime.exit_code.unwrap_or(0),
                        }
                    }
                    ExitReason::MemFault { vaddr, write } => {
                        let pc_now = self.machine.reg(Gpr::R15);
                        self.deliver(GuestEvent::DataAbort { vaddr, write }, pc_now);
                        break;
                    }
                    ExitReason::FuelExhausted => {
                        return RunExit::Error("translated block did not terminate".into())
                    }
                    ExitReason::Error(e) => return RunExit::Error(e),
                }
            }
        }
        RunExit::BudgetExhausted
    }

    fn deliver(&mut self, ev: GuestEvent, pc: u64) {
        match ev {
            GuestEvent::Halt { code } => {
                self.runtime.exit_code = Some(code);
                return;
            }
            GuestEvent::DataAbort { vaddr, write } => {
                self.runtime.take_exception(
                    &mut self.machine,
                    esr_class::DATA_ABORT,
                    write as u64,
                    pc,
                    Some(vaddr),
                );
            }
            GuestEvent::InstrAbort { vaddr } => {
                self.runtime.take_exception(
                    &mut self.machine,
                    esr_class::INSTR_ABORT,
                    0,
                    pc,
                    Some(vaddr),
                );
            }
            GuestEvent::Irq { line } => {
                self.stats.irqs_delivered += 1;
                if line == hvm::TIMER_LINE {
                    self.stats.timer_irqs += 1;
                }
                self.runtime.take_exception(
                    &mut self.machine,
                    esr_class::IRQ,
                    line as u64,
                    pc,
                    None,
                );
            }
        }
        self.stats.guest_exceptions += 1;
    }

    /// Translates one block in the TCG style: memory accesses and FP go
    /// through helpers, everything else reuses the generator functions.
    fn translate(&mut self, pc: u64, pa: u64) -> Region {
        let mut e = Emitter::new();
        let mut guest_insns = 0usize;
        let mut va = pc;
        loop {
            if guest_insns > 0 && (va & !0xFFF) != (pc & !0xFFF) {
                break;
            }
            let pa_i = if guest_insns == 0 {
                pa
            } else {
                match self.runtime.soft_translate(&self.machine, va, false) {
                    Ok((p, _)) => p,
                    Err(_) => break,
                }
            };
            let word = self
                .machine
                .mem
                .read_uint(layout::GUEST_PHYS_BASE + pa_i, 4)
                .unwrap_or(0) as u32;
            let decoded = self
                .timers
                .time(Phase::Decode, || self.isa.decode(word, va));
            let end = match decoded {
                None => {
                    self.timers.time(Phase::Translate, || {
                        let class = e.const_u64(esr_class::UNDEFINED);
                        let iss = e.const_u64(0);
                        let ret = e.const_u64(va);
                        e.call_helper(helpers::TAKE_EXCEPTION, &[class, iss, ret]);
                        e.set_end_of_block();
                    });
                    true
                }
                Some(d) => self.timers.time(Phase::Translate, || {
                    let end = qemu_generate(&d, &mut e, &self.isa);
                    if !end {
                        e.inc_pc(4);
                    }
                    end
                }),
            };
            guest_insns += 1;
            va += 4;
            if end || guest_insns >= self.max_block_insns {
                break;
            }
        }
        // The baseline records terminator metadata too (it is free at
        // translation time) but its dispatcher never follows chain links.
        let exit = e.exit_hint().unwrap_or(BlockExit::Fallthrough { next: va });
        let lir = e.finish();
        let lir_count = lir.len();
        // The baseline deliberately skips the `dbt::opt` phase (TCG-style
        // translation quality); it still benefits from the allocator's
        // iterative dead-code marking, which is part of the shared pipeline.
        let t = match dbt::finish_translation(&mut self.timers, lir, false, false, None) {
            Ok(t) => t,
            Err(_) => {
                // Same degradation as Captive: discard the defective
                // translation and raise a guest UNDEF at the entry instead
                // of executing corrupt host code.
                self.timers.lower_bailouts += 1;
                return self.undef_fallback(pc, pa);
            }
        };
        self.timers.blocks += 1;
        self.timers.guest_insns += guest_insns as u64;
        Region {
            guest_phys: pa,
            guest_virt: pc,
            guest_insns,
            encoded_bytes: t.encoded.len(),
            lir_insns: lir_count,
            elided_insns: t.elided,
            code: Arc::new(t.code),
            exit,
            links: ChainLinks::default(),
            constituents: 1,
            pages: Region::span_pages(pa, guest_insns),
            ctx_gen: 0,
            unroll: 1,
            back_edges: 0,
            loop_guest_insns: 0,
            loop_elided_insns: 0,
            promoted: Vec::new(),
            idiom_candidates: [0; dbt::RULE_COUNT],
        }
    }

    /// The degraded translation used when lowering bails out: a
    /// one-instruction block raising a guest UNDEF exception at `pc`.  The
    /// stub uses no virtual registers, so its own lowering cannot fail.
    fn undef_fallback(&mut self, pc: u64, pa: u64) -> Region {
        let mut e = Emitter::new();
        let class = e.const_u64(esr_class::UNDEFINED);
        let iss = e.const_u64(0);
        let ret = e.const_u64(pc);
        e.call_helper(helpers::TAKE_EXCEPTION, &[class, iss, ret]);
        e.set_end_of_block();
        let lir = e.finish();
        let lir_count = lir.len();
        let t = dbt::finish_translation(&mut self.timers, lir, false, false, None)
            .expect("host bug: the UNDEF stub lowers without virtual registers");
        self.timers.blocks += 1;
        self.timers.guest_insns += 1;
        Region {
            guest_phys: pa,
            guest_virt: pc,
            guest_insns: 1,
            encoded_bytes: t.encoded.len(),
            lir_insns: lir_count,
            elided_insns: t.elided,
            code: Arc::new(t.code),
            exit: BlockExit::Indirect,
            links: ChainLinks::default(),
            constituents: 1,
            pages: Region::span_pages(pa, 1),
            ctx_gen: 0,
            unroll: 1,
            back_edges: 0,
            loop_guest_insns: 0,
            loop_elided_insns: 0,
            promoted: Vec::new(),
            idiom_candidates: [0; dbt::RULE_COUNT],
        }
    }
}

/// TCG-style per-instruction emission: memory and FP through helpers; other
/// instructions fall back to the shared generator functions.
fn qemu_generate(d: &guest_aarch64::gen::Decoded, e: &mut Emitter, isa: &Aarch64Isa) -> bool {
    let load_via_helper =
        |e: &mut Emitter, rn: u32, off_node: dbt::NodeId, size: AccessSize| -> dbt::NodeId {
            let base = e.load_register(x_off(rn), ValueType::U64);
            let addr = e.add(base, off_node);
            let sz = e.const_u64(size.bytes());
            e.call_helper(qhelpers::MMU_READ, &[addr, sz])
        };
    let store_via_helper =
        |e: &mut Emitter, rn: u32, off_node: dbt::NodeId, value: dbt::NodeId, size: AccessSize| {
            let base = e.load_register(x_off(rn), ValueType::U64);
            let addr = e.add(base, off_node);
            let sz = e.const_u64(size.bytes());
            e.call_helper(qhelpers::MMU_WRITE, &[addr, value, sz]);
        };
    match d.insn {
        Insn::Load {
            rt,
            rn,
            imm,
            size,
            sext,
        } => {
            let off = e.const_u64(imm as u64);
            let v = load_via_helper(e, rn, off, size);
            let v = if sext { e.sext(v, ValueType::U32) } else { v };
            if rt != 31 {
                e.store_register(x_off(rt), v);
            }
            false
        }
        Insn::Store { rt, rn, imm, size } => {
            let off = e.const_u64(imm as u64);
            let v = if rt == 31 {
                e.const_u64(0)
            } else {
                e.load_register(x_off(rt), ValueType::U64)
            };
            store_via_helper(e, rn, off, v, size);
            false
        }
        Insn::LoadReg { rt, rn, rm } => {
            let off = e.load_register(x_off(rm), ValueType::U64);
            let v = load_via_helper(e, rn, off, AccessSize::Double);
            if rt != 31 {
                e.store_register(x_off(rt), v);
            }
            false
        }
        Insn::StoreReg { rt, rn, rm } => {
            let off = e.load_register(x_off(rm), ValueType::U64);
            let v = e.load_register(x_off(rt), ValueType::U64);
            store_via_helper(e, rn, off, v, AccessSize::Double);
            false
        }
        Insn::Ldp { rt, rt2, rn, imm } => {
            let off1 = e.const_u64(imm as i64 as u64);
            let v1 = load_via_helper(e, rn, off1, AccessSize::Double);
            e.store_register(x_off(rt), v1);
            let off2 = e.const_u64((imm + 8) as i64 as u64);
            let v2 = load_via_helper(e, rn, off2, AccessSize::Double);
            e.store_register(x_off(rt2), v2);
            false
        }
        Insn::Stp { rt, rt2, rn, imm } => {
            let v1 = e.load_register(x_off(rt), ValueType::U64);
            let off1 = e.const_u64(imm as i64 as u64);
            store_via_helper(e, rn, off1, v1, AccessSize::Double);
            let v2 = e.load_register(x_off(rt2), ValueType::U64);
            let off2 = e.const_u64((imm + 8) as i64 as u64);
            store_via_helper(e, rn, off2, v2, AccessSize::Double);
            false
        }
        Insn::LoadFp { vt, rn, imm, size } => {
            let off = e.const_u64(imm as u64);
            let v = load_via_helper(e, rn, off, AccessSize::Double);
            e.store_register(v_off(vt), v);
            if size == AccessSize::Quad {
                let off2 = e.const_u64(imm as u64 + 8);
                let v2 = load_via_helper(e, rn, off2, AccessSize::Double);
                e.store_register_sized(v_off(vt) + 8, v2, MemSize::U64);
            } else {
                let zero = e.const_u64(0);
                e.store_register_sized(v_off(vt) + 8, zero, MemSize::U64);
            }
            false
        }
        Insn::StoreFp { vt, rn, imm, size } => {
            let v = e.load_register(v_off(vt), ValueType::U64);
            let off = e.const_u64(imm as u64);
            store_via_helper(e, rn, off, v, AccessSize::Double);
            if size == AccessSize::Quad {
                let v2 = e.load_register(v_off(vt) + 8, ValueType::U64);
                let off2 = e.const_u64(imm as u64 + 8);
                store_via_helper(e, rn, off2, v2, AccessSize::Double);
            }
            false
        }
        Insn::FpReg { kind, vd, vn, vm } => {
            let op = e.const_u64(match kind {
                FpKind::Add => 0,
                FpKind::Sub => 1,
                FpKind::Mul => 2,
                FpKind::Div => 3,
            });
            let a = e.load_register(v_off(vn), ValueType::U64);
            let b = e.load_register(v_off(vm), ValueType::U64);
            let r = e.call_helper(qhelpers::SOFT_FP, &[op, a, b]);
            e.store_register(v_off(vd), r);
            let zero = e.const_u64(0);
            e.store_register_sized(v_off(vd) + 8, zero, MemSize::U64);
            false
        }
        Insn::Fsqrt { vd, vn } => {
            let a = e.load_register(v_off(vn), ValueType::U64);
            let r = e.call_helper(qhelpers::SOFT_SQRT, &[a]);
            e.store_register(v_off(vd), r);
            let zero = e.const_u64(0);
            e.store_register_sized(v_off(vd) + 8, zero, MemSize::U64);
            false
        }
        Insn::Fmadd { vd, vn, vm, va } => {
            let two = e.const_u64(2);
            let a = e.load_register(v_off(vn), ValueType::U64);
            let b = e.load_register(v_off(vm), ValueType::U64);
            let prod = e.call_helper(qhelpers::SOFT_FP, &[two, a, b]);
            let zero_op = e.const_u64(0);
            let c = e.load_register(v_off(va), ValueType::U64);
            let sum = e.call_helper(qhelpers::SOFT_FP, &[zero_op, prod, c]);
            e.store_register(v_off(vd), sum);
            let zero = e.const_u64(0);
            e.store_register_sized(v_off(vd) + 8, zero, MemSize::U64);
            false
        }
        Insn::VAdd2D { vd, vn, vm } | Insn::VMul2D { vd, vn, vm } => {
            let op = e.const_u64(if matches!(d.insn, Insn::VAdd2D { .. }) {
                0
            } else {
                1
            });
            let vd_off = e.const_u64(v_off(vd) as u64);
            let vn_off = e.const_u64(v_off(vn) as u64);
            let vm_off = e.const_u64(v_off(vm) as u64);
            e.call_helper(qhelpers::VEC_OP, &[op, vd_off, vn_off, vm_off]);
            false
        }
        _ => isa.generate(d, e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use guest_aarch64::asm;

    fn boot(words: &[u32]) -> (QemuRef, RunExit) {
        let mut q = QemuRef::new(32 * 1024 * 1024);
        q.load_program(0x1000, words);
        q.set_entry(0x1000);
        let exit = q.run(200_000);
        (q, exit)
    }

    #[test]
    fn runs_arithmetic_and_loops() {
        let mut a = asm::Assembler::new();
        a.push(asm::movz(0, 0, 0));
        a.push(asm::movz(1, 100, 0));
        a.label("loop");
        a.push(asm::add(0, 0, 1));
        a.push(asm::subi(1, 1, 1));
        a.cbnz_to(1, "loop");
        a.push(asm::hlt());
        let (mut q, exit) = boot(&a.finish());
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        assert_eq!(q.guest_reg(0), 5050);
    }

    #[test]
    fn memory_goes_through_softmmu_helpers() {
        let mut a = asm::Assembler::new();
        a.mov_imm64(1, 0x10000);
        a.mov_imm64(2, 0xABCD);
        a.push(asm::str(2, 1, 8));
        a.push(asm::ldr(3, 1, 8));
        a.push(asm::hlt());
        let (mut q, exit) = boot(&a.finish());
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        assert_eq!(q.guest_reg(3), 0xABCD);
        assert!(
            q.machine.perf.helper_calls >= 2,
            "loads and stores call the softmmu helper"
        );
        assert_eq!(q.machine.perf.page_faults, 0, "no host paging involved");
    }

    #[test]
    fn fp_goes_through_softfloat_helpers() {
        let mut a = asm::Assembler::new();
        a.push(asm::fmov_imm(0, 0x78)); // 1.5
        a.push(asm::fmul(1, 0, 0));
        a.push(asm::fmov_to_gpr(0, 1));
        a.push(asm::hlt());
        let (mut q, exit) = boot(&a.finish());
        assert_eq!(exit, RunExit::GuestHalted { code: 0 });
        assert_eq!(f64::from_bits(q.guest_reg(0)), 2.25);
        assert!(q.machine.perf.helper_calls >= 1, "softfloat helper used");
    }

    #[test]
    fn same_page_chaining_is_faster_and_architecturally_invisible() {
        // A same-page multi-block loop: the chained baseline must produce
        // identical guest state, and the whole cycle gap must be the counted
        // chained transfers' saved dispatch cost.
        let mut a = asm::Assembler::new();
        a.push(asm::movz(0, 0, 0));
        a.push(asm::movz(1, 2000, 0));
        a.label("loop");
        a.b_to("body");
        a.label("body");
        a.push(asm::add(0, 0, 1));
        a.push(asm::subi(1, 1, 1));
        a.cbnz_to(1, "loop");
        a.push(asm::hlt());
        let words = a.finish();

        let run = |chaining: bool| {
            let mut q = QemuRef::with_chaining(32 * 1024 * 1024, chaining);
            q.load_program(0x1000, &words);
            q.set_entry(0x1000);
            assert_eq!(q.run(200_000), RunExit::GuestHalted { code: 0 });
            q
        };
        let mut on = run(true);
        let mut off = run(false);
        for r in 0..16 {
            assert_eq!(on.guest_reg(r), off.guest_reg(r), "x{r} diverged");
        }
        let son = on.stats();
        let soff = off.stats();
        assert_eq!(soff.chained_transfers, 0);
        assert!(
            son.chained_transfers > 3000,
            "same-page direct branches must chain: {}",
            son.chained_transfers
        );
        assert!(son.chain_patches >= 1);
        assert!(son.cycles < soff.cycles);
        let per_transfer = on.machine.cost.dispatch - on.machine.cost.chain;
        assert_eq!(
            soff.cycles - son.cycles,
            son.chained_transfers * per_transfer,
            "the gap is exactly the saved dispatch cost"
        );
    }

    #[test]
    fn cross_page_direct_branches_never_chain() {
        // The loop bounces between two guest pages through direct branches;
        // real QEMU (and this baseline) must not chain across the page.
        let mut main = asm::Assembler::new();
        main.push(asm::movz(1, 500, 0)); // 0x1000
                                         // loop head at 0x1004 branches to 0x2000.
        main.push(asm::b(0x2000 - 0x1004));
        let mut far = asm::Assembler::new();
        far.push(asm::subi(1, 1, 1)); // 0x2000
        far.push(asm::cbnz(1, 0x1004 - 0x2004)); // back to the loop head
        far.push(asm::hlt());

        let mut q = QemuRef::with_chaining(32 * 1024 * 1024, true);
        q.load_program(0x1000, &main.finish());
        q.load_program(0x2000, &far.finish());
        q.set_entry(0x1000);
        assert_eq!(q.run(200_000), RunExit::GuestHalted { code: 0 });
        assert_eq!(q.guest_reg(1), 0);
        let s = q.stats();
        // Every loop transfer crosses a page, so nothing may chain.  (The
        // one same-page edge — the final cbnz fallthrough onto the hlt — is
        // allowed to *patch*, but executes only once, so it never follows.)
        assert_eq!(
            s.chained_transfers, 0,
            "cross-page transfers must take the dispatcher"
        );
    }

    #[test]
    fn goto_tb_chains_across_pages_and_stays_invisible() {
        // Same cross-page loop as above: with the `goto_tb` knob the direct
        // branches must link across the page, save exactly the dispatch
        // cost, and leave guest state untouched.
        let mut main = asm::Assembler::new();
        main.push(asm::movz(0, 0, 0)); // 0x1000
        main.push(asm::movz(1, 500, 0));
        // loop head at 0x1008 branches to 0x2000.
        main.push(asm::b(0x2000 - 0x1008));
        let mut far = asm::Assembler::new();
        far.push(asm::add(0, 0, 1)); // 0x2000
        far.push(asm::subi(1, 1, 1));
        far.push(asm::cbnz(1, 0x1008 - 0x2008)); // back to the loop head
        far.push(asm::hlt());
        let main_words = main.finish();
        let far_words = far.finish();

        let run = |goto_tb: bool| {
            let mut q = QemuRef::with_chaining(32 * 1024 * 1024, true);
            q.goto_tb = goto_tb;
            q.load_program(0x1000, &main_words);
            q.load_program(0x2000, &far_words);
            q.set_entry(0x1000);
            assert_eq!(q.run(200_000), RunExit::GuestHalted { code: 0 });
            q
        };
        let mut on = run(true);
        let mut off = run(false);
        for r in 0..16 {
            assert_eq!(on.guest_reg(r), off.guest_reg(r), "x{r} diverged");
        }
        let son = on.stats();
        let soff = off.stats();
        assert_eq!(soff.goto_tb_transfers, 0);
        assert!(
            son.goto_tb_transfers > 500,
            "direct branches must chain across pages: {}",
            son.goto_tb_transfers
        );
        let per_transfer = on.machine.cost.dispatch - on.machine.cost.chain;
        assert_eq!(
            soff.cycles - son.cycles,
            (son.chained_transfers - soff.chained_transfers) * per_transfer,
            "the gap is exactly the saved dispatch cost"
        );
    }

    #[test]
    fn chaining_survives_cache_flushes() {
        // TLBI inside the loop forces the full-cache invalidation of the
        // virtually-indexed design; epoch-stamped links must die with it and
        // execution must stay correct.
        let mut a = asm::Assembler::new();
        a.push(asm::movz(0, 0, 0));
        a.push(asm::movz(1, 50, 0));
        a.label("loop");
        a.b_to("body");
        a.label("body");
        a.push(asm::addi(0, 0, 1));
        a.push(asm::tlbi());
        a.push(asm::subi(1, 1, 1));
        a.cbnz_to(1, "loop");
        a.push(asm::hlt());
        let mut q = QemuRef::with_chaining(32 * 1024 * 1024, true);
        q.load_program(0x1000, &a.finish());
        q.set_entry(0x1000);
        assert_eq!(q.run(200_000), RunExit::GuestHalted { code: 0 });
        assert_eq!(q.guest_reg(0), 50);
        assert!(
            q.cache.stats().invalidated_full > 0,
            "TLBI must flush the virtually-indexed cache"
        );
    }

    #[test]
    fn results_match_captive_on_the_same_program() {
        // A hot loop over memory: x2 accumulates loads of what x0 stores.
        let mut a = asm::Assembler::new();
        a.push(asm::movz(0, 7, 0));
        a.push(asm::movz(1, 1000, 0));
        a.push(asm::movz(2, 0, 0));
        a.mov_imm64(3, 0x20000);
        a.label("loop");
        a.push(asm::str(0, 3, 0));
        a.push(asm::ldr(4, 3, 0));
        a.push(asm::add(2, 2, 4));
        a.push(asm::subi(1, 1, 1));
        a.cbnz_to(1, "loop");
        a.push(asm::hlt());
        let words = a.finish();

        let (mut q, qe) = boot(&words);
        let mut c = captive::Captive::new(captive::CaptiveConfig::default());
        c.load_program(0x1000, &words);
        c.set_entry(0x1000);
        let ce = c.run(100_000);
        assert_eq!(qe, RunExit::GuestHalted { code: 0 });
        assert_eq!(ce, captive::RunExit::GuestHalted { code: 0 });
        for r in 0..5 {
            assert_eq!(q.guest_reg(r), c.guest_reg(r), "x{r} diverged");
        }
        // On a hot memory loop Captive's direct host loads beat the softmmu
        // helper path once the one-off demand-mapping cost is amortised.
        assert!(
            c.stats().cycles < q.stats().cycles,
            "captive {} vs qemu {}",
            c.stats().cycles,
            q.stats().cycles
        );
    }
}
