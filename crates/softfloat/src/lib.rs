//! Software implementation of IEEE-754 binary32 / binary64 arithmetic.
//!
//! This crate provides the software floating-point substrate used by the
//! QEMU-style reference translator (`qemu-ref`), by Captive's softfloat
//! fallback mode, and by the bit-accuracy fix-up machinery (Table 2 of the
//! paper).  All operations are implemented with integer arithmetic only, so
//! results are fully deterministic and independent of the build host's FPU
//! configuration.
//!
//! The API mirrors what a DBT helper library needs:
//!
//! * a [`FpEnv`] carrying the rounding mode and accumulated exception
//!   [`Flags`],
//! * free functions per operation (`f64_add`, `f64_mul`, ...) that take and
//!   update the environment, and
//! * architecture-flavoured variants capturing the behavioural differences
//!   between x86 (`SQRTSD`) and Arm (`FSQRT`) NaN handling that the paper
//!   uses as its motivating fix-up example.
//!
//! The implementation follows the classic unpack → operate in extended
//! precision → normalize → round-and-pack structure.  Intermediate
//! significands are carried with the most significant bit at bit 62 of a
//! `u64` and ten rounding bits below the target precision, in the style of
//! Berkeley SoftFloat.

mod arch;
mod convert;
mod ops;
mod round;

pub use arch::{f32_sqrt_arm, f32_sqrt_x86, f64_sqrt_arm, f64_sqrt_x86, NanPropagation};
pub use convert::{
    f32_to_f64, f32_to_i32, f32_to_i64, f64_to_f32, f64_to_i32, f64_to_i64, f64_to_u64, i32_to_f32,
    i32_to_f64, i64_to_f32, i64_to_f64, u64_to_f64,
};
pub use ops::{
    f32_add, f32_div, f32_eq, f32_le, f32_lt, f32_mul, f32_sqrt, f32_sub, f64_add, f64_div, f64_eq,
    f64_fma, f64_le, f64_lt, f64_mul, f64_sqrt, f64_sub,
};

/// IEEE-754 rounding modes supported by the library.
///
/// `NearestEven` is the default mode of both the Arm FPCR and the x86 MXCSR
/// and is the only mode exercised by the paper's benchmarks, but the other
/// directed modes are implemented and tested for completeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Rounding {
    /// Round to nearest, ties to even (RNE).
    #[default]
    NearestEven,
    /// Round towards zero (RZ).
    TowardZero,
    /// Round towards +infinity (RP).
    TowardPositive,
    /// Round towards -infinity (RM).
    TowardNegative,
}

/// IEEE-754 exception flags, accumulated (sticky) across operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Invalid operation (e.g. `inf - inf`, `sqrt(-1)`, signalling NaN input).
    pub invalid: bool,
    /// Division of a finite non-zero value by zero.
    pub div_by_zero: bool,
    /// Result overflowed to infinity (or the largest finite value).
    pub overflow: bool,
    /// Result underflowed to a subnormal or zero and was inexact.
    pub underflow: bool,
    /// Result could not be represented exactly.
    pub inexact: bool,
}

impl Flags {
    /// Returns flags with every bit clear.
    pub const fn none() -> Self {
        Flags {
            invalid: false,
            div_by_zero: false,
            overflow: false,
            underflow: false,
            inexact: false,
        }
    }

    /// True if any exception flag is raised.
    pub fn any(&self) -> bool {
        self.invalid || self.div_by_zero || self.overflow || self.underflow || self.inexact
    }

    /// Merges another set of flags into this one (sticky OR).
    pub fn merge(&mut self, other: Flags) {
        self.invalid |= other.invalid;
        self.div_by_zero |= other.div_by_zero;
        self.overflow |= other.overflow;
        self.underflow |= other.underflow;
        self.inexact |= other.inexact;
    }
}

/// Floating-point environment: rounding mode, sticky flags and NaN policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct FpEnv {
    /// Current rounding mode.
    pub rounding: Rounding,
    /// Sticky exception flags.
    pub flags: Flags,
    /// How NaN operands propagate to NaN results.
    pub nan_propagation: NanPropagation,
}

impl FpEnv {
    /// A fresh environment with round-to-nearest-even and no flags raised.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh environment using Arm-style default-NaN propagation.
    pub fn arm() -> Self {
        FpEnv {
            nan_propagation: NanPropagation::ArmDefaultNan,
            ..Self::default()
        }
    }

    /// A fresh environment using x86-style first-operand NaN propagation.
    pub fn x86() -> Self {
        FpEnv {
            nan_propagation: NanPropagation::X86PropagateFirst,
            ..Self::default()
        }
    }

    /// Clears the sticky exception flags.
    pub fn clear_flags(&mut self) {
        self.flags = Flags::none();
    }
}

/// The canonical "default NaN" produced by Arm hardware: positive, quiet,
/// no payload.
pub const F64_DEFAULT_NAN: u64 = 0x7FF8_0000_0000_0000;
/// 32-bit counterpart of [`F64_DEFAULT_NAN`].
pub const F32_DEFAULT_NAN: u32 = 0x7FC0_0000;

/// Classification of an unpacked floating-point value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpClass {
    /// Positive or negative zero.
    Zero,
    /// Denormalised (subnormal) value.
    Subnormal,
    /// Ordinary normalised value.
    Normal,
    /// Positive or negative infinity.
    Infinite,
    /// Quiet NaN.
    QuietNan,
    /// Signalling NaN.
    SignallingNan,
}

/// An unpacked binary64 value: sign, biased exponent and fraction field.
#[derive(Debug, Clone, Copy)]
pub struct Unpacked64 {
    /// Sign bit (true = negative).
    pub sign: bool,
    /// Biased exponent (0..=0x7FF).
    pub exp: i32,
    /// Fraction field (52 bits, without the hidden bit).
    pub frac: u64,
}

/// An unpacked binary32 value: sign, biased exponent and fraction field.
#[derive(Debug, Clone, Copy)]
pub struct Unpacked32 {
    /// Sign bit (true = negative).
    pub sign: bool,
    /// Biased exponent (0..=0xFF).
    pub exp: i32,
    /// Fraction field (23 bits, without the hidden bit).
    pub frac: u32,
}

/// Splits a binary64 bit pattern into sign / exponent / fraction.
pub fn unpack64(bits: u64) -> Unpacked64 {
    Unpacked64 {
        sign: bits >> 63 != 0,
        exp: ((bits >> 52) & 0x7FF) as i32,
        frac: bits & ((1u64 << 52) - 1),
    }
}

/// Splits a binary32 bit pattern into sign / exponent / fraction.
pub fn unpack32(bits: u32) -> Unpacked32 {
    Unpacked32 {
        sign: bits >> 31 != 0,
        exp: ((bits >> 23) & 0xFF) as i32,
        frac: bits & ((1u32 << 23) - 1),
    }
}

/// Reassembles a binary64 bit pattern from its fields.
pub fn pack64(sign: bool, exp: i32, frac: u64) -> u64 {
    ((sign as u64) << 63) | ((exp as u64 & 0x7FF) << 52) | (frac & ((1u64 << 52) - 1))
}

/// Reassembles a binary32 bit pattern from its fields.
pub fn pack32(sign: bool, exp: i32, frac: u32) -> u32 {
    ((sign as u32) << 31) | ((exp as u32 & 0xFF) << 23) | (frac & ((1u32 << 23) - 1))
}

/// Classifies a binary64 bit pattern.
pub fn classify64(bits: u64) -> FpClass {
    let u = unpack64(bits);
    match (u.exp, u.frac) {
        (0, 0) => FpClass::Zero,
        (0, _) => FpClass::Subnormal,
        (0x7FF, 0) => FpClass::Infinite,
        (0x7FF, f) if f >> 51 != 0 => FpClass::QuietNan,
        (0x7FF, _) => FpClass::SignallingNan,
        _ => FpClass::Normal,
    }
}

/// Classifies a binary32 bit pattern.
pub fn classify32(bits: u32) -> FpClass {
    let u = unpack32(bits);
    match (u.exp, u.frac) {
        (0, 0) => FpClass::Zero,
        (0, _) => FpClass::Subnormal,
        (0xFF, 0) => FpClass::Infinite,
        (0xFF, f) if f >> 22 != 0 => FpClass::QuietNan,
        (0xFF, _) => FpClass::SignallingNan,
        _ => FpClass::Normal,
    }
}

/// True if the binary64 bit pattern encodes any NaN.
pub fn is_nan64(bits: u64) -> bool {
    matches!(classify64(bits), FpClass::QuietNan | FpClass::SignallingNan)
}

/// True if the binary32 bit pattern encodes any NaN.
pub fn is_nan32(bits: u32) -> bool {
    matches!(classify32(bits), FpClass::QuietNan | FpClass::SignallingNan)
}

/// True if the binary64 bit pattern encodes a signalling NaN.
pub fn is_snan64(bits: u64) -> bool {
    classify64(bits) == FpClass::SignallingNan
}

/// True if the binary32 bit pattern encodes a signalling NaN.
pub fn is_snan32(bits: u32) -> bool {
    classify32(bits) == FpClass::SignallingNan
}

/// Quietens a NaN by setting the most significant fraction bit (binary64).
pub fn quiet64(bits: u64) -> u64 {
    bits | (1u64 << 51)
}

/// Quietens a NaN by setting the most significant fraction bit (binary32).
pub fn quiet32(bits: u32) -> u32 {
    bits | (1u32 << 22)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_covers_all_classes() {
        assert_eq!(classify64(0), FpClass::Zero);
        assert_eq!(classify64(0x8000_0000_0000_0000), FpClass::Zero);
        assert_eq!(classify64(1), FpClass::Subnormal);
        assert_eq!(classify64(1.0f64.to_bits()), FpClass::Normal);
        assert_eq!(classify64(f64::INFINITY.to_bits()), FpClass::Infinite);
        assert_eq!(classify64(F64_DEFAULT_NAN), FpClass::QuietNan);
        assert_eq!(classify64(0x7FF0_0000_0000_0001), FpClass::SignallingNan);
    }

    #[test]
    fn classify32_covers_all_classes() {
        assert_eq!(classify32(0), FpClass::Zero);
        assert_eq!(classify32(0x8000_0000), FpClass::Zero);
        assert_eq!(classify32(1), FpClass::Subnormal);
        assert_eq!(classify32(1.0f32.to_bits()), FpClass::Normal);
        assert_eq!(classify32(f32::INFINITY.to_bits()), FpClass::Infinite);
        assert_eq!(classify32(F32_DEFAULT_NAN), FpClass::QuietNan);
        assert_eq!(classify32(0x7F80_0001), FpClass::SignallingNan);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for bits in [
            0u64,
            1,
            0x3FF0_0000_0000_0000,
            0xFFF8_0000_0000_0001,
            u64::MAX,
        ] {
            let u = unpack64(bits);
            assert_eq!(pack64(u.sign, u.exp, u.frac), bits);
        }
        for bits in [0u32, 1, 0x3F80_0000, 0xFFC0_0001, u32::MAX] {
            let u = unpack32(bits);
            assert_eq!(pack32(u.sign, u.exp, u.frac), bits);
        }
    }

    #[test]
    fn flags_merge_is_sticky() {
        let mut f = Flags::none();
        assert!(!f.any());
        f.merge(Flags {
            inexact: true,
            ..Flags::none()
        });
        f.merge(Flags {
            overflow: true,
            ..Flags::none()
        });
        assert!(f.inexact && f.overflow && f.any());
        assert!(!f.invalid);
    }
}
