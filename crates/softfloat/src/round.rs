//! Normalisation, rounding and packing primitives shared by all operations.
//!
//! Intermediate results are carried as an unsigned significand with the most
//! significant bit placed at bit 62 of a `u64` plus a sticky indication of any
//! discarded lower-order bits.  [`round_pack_f64`] / [`round_pack_f32`] then
//! apply the IEEE-754 rounding rules, including overflow to infinity,
//! gradual underflow to subnormals and exception-flag reporting.

use crate::{Flags, Rounding};

/// Shifts `value` right by `amount`, ORing any shifted-out bits into the
/// least significant bit of the result ("jamming"), as required to preserve
/// sticky-rounding information.
pub(crate) fn shift_right_jam_u64(value: u64, amount: u32) -> u64 {
    if amount == 0 {
        value
    } else if amount < 64 {
        let lost = value & ((1u64 << amount) - 1);
        (value >> amount) | (lost != 0) as u64
    } else {
        (value != 0) as u64
    }
}

/// 128-bit variant of [`shift_right_jam_u64`].
pub(crate) fn shift_right_jam_u128(value: u128, amount: u32) -> u128 {
    if amount == 0 {
        value
    } else if amount < 128 {
        let lost = value & ((1u128 << amount) - 1);
        (value >> amount) | (lost != 0) as u128
    } else {
        (value != 0) as u128
    }
}

/// Integer square root of a `u128`, returning `(root, exact)`.
pub(crate) fn isqrt_u128(value: u128) -> (u128, bool) {
    if value == 0 {
        return (0, true);
    }
    // Newton-Raphson seeded from a power-of-two over-estimate; converges in a
    // handful of iterations for 128-bit inputs.
    let mut x: u128 = 1u128 << ((128 - value.leading_zeros()).div_ceil(2));
    loop {
        let next = (x + value / x) >> 1;
        if next >= x {
            break;
        }
        x = next;
    }
    (x, x * x == value)
}

/// Computes the rounding increment for a significand whose low `round_bits`
/// bits are about to be discarded.
fn round_increment(rm: Rounding, sign: bool, half: u64, mask: u64) -> u64 {
    match rm {
        Rounding::NearestEven => half,
        Rounding::TowardZero => 0,
        Rounding::TowardPositive => {
            if sign {
                0
            } else {
                mask
            }
        }
        Rounding::TowardNegative => {
            if sign {
                mask
            } else {
                0
            }
        }
    }
}

/// Rounds and packs a binary64 result.
///
/// `sig` must either be normalised with its most significant bit at bit 62,
/// or (for values that will underflow) already be the right-shifted
/// subnormal-range significand.  `biased_exp` is the IEEE biased exponent of
/// the leading bit at position 62.  Sticky information must already be OR'd
/// into bit 0 of `sig`.
pub(crate) fn round_pack_f64(
    sign: bool,
    mut biased_exp: i32,
    mut sig: u64,
    rm: Rounding,
    flags: &mut Flags,
) -> u64 {
    const ROUND_MASK: u64 = 0x3FF;
    const ROUND_HALF: u64 = 0x200;
    let inc = round_increment(rm, sign, ROUND_HALF, ROUND_MASK);

    // Overflow: the exponent is too large, or rounding would carry past the
    // largest representable significand at the largest exponent.
    if biased_exp >= 0x7FF
        || (biased_exp == 0x7FE && sig.wrapping_add(inc) >= 0x8000_0000_0000_0000)
    {
        flags.overflow = true;
        flags.inexact = true;
        return if inc == 0 && !matches!(rm, Rounding::NearestEven) {
            // Directed rounding towards zero for this sign: largest finite.
            crate::pack64(sign, 0x7FE, (1u64 << 52) - 1)
        } else {
            crate::pack64(sign, 0x7FF, 0)
        };
    }

    // Underflow: shift the significand into the subnormal range, keeping
    // sticky information, and re-round at the subnormal precision.
    let tiny = biased_exp <= 0;
    if tiny {
        sig = shift_right_jam_u64(sig, (1 - biased_exp) as u32);
        biased_exp = 0;
    }

    let round_bits = sig & ROUND_MASK;
    if round_bits != 0 {
        flags.inexact = true;
        if tiny {
            flags.underflow = true;
        }
    }

    sig = sig.wrapping_add(inc) >> 10;
    // Ties-to-even: clear the LSB when the discarded bits were exactly half.
    if matches!(rm, Rounding::NearestEven) && round_bits == ROUND_HALF {
        sig &= !1;
    }

    // Pack by addition so a significand carry-out bumps the exponent field.
    let exp_field = if biased_exp == 0 {
        0
    } else {
        (biased_exp - 1) as u64
    };
    ((sign as u64) << 63)
        .wrapping_add(exp_field << 52)
        .wrapping_add(sig)
}

/// Rounds and packs a binary32 result.
///
/// Same conventions as [`round_pack_f64`] but the significand is still held
/// in a `u64` with the leading bit at position 62; 39 rounding bits sit below
/// the 24-bit target precision.
pub(crate) fn round_pack_f32(
    sign: bool,
    mut biased_exp: i32,
    mut sig: u64,
    rm: Rounding,
    flags: &mut Flags,
) -> u32 {
    const ROUND_MASK: u64 = (1 << 39) - 1;
    const ROUND_HALF: u64 = 1 << 38;
    let inc = round_increment(rm, sign, ROUND_HALF, ROUND_MASK);

    if biased_exp >= 0xFF || (biased_exp == 0xFE && sig.wrapping_add(inc) >= 0x8000_0000_0000_0000)
    {
        flags.overflow = true;
        flags.inexact = true;
        return if inc == 0 && !matches!(rm, Rounding::NearestEven) {
            crate::pack32(sign, 0xFE, (1u32 << 23) - 1)
        } else {
            crate::pack32(sign, 0xFF, 0)
        };
    }

    let tiny = biased_exp <= 0;
    if tiny {
        sig = shift_right_jam_u64(sig, (1 - biased_exp) as u32);
        biased_exp = 0;
    }

    let round_bits = sig & ROUND_MASK;
    if round_bits != 0 {
        flags.inexact = true;
        if tiny {
            flags.underflow = true;
        }
    }

    sig = sig.wrapping_add(inc) >> 39;
    if matches!(rm, Rounding::NearestEven) && round_bits == ROUND_HALF {
        sig &= !1;
    }

    let exp_field = if biased_exp == 0 {
        0
    } else {
        (biased_exp - 1) as u64
    };
    (((sign as u64) << 31)
        .wrapping_add(exp_field << 23)
        .wrapping_add(sig)) as u32
}

/// Normalises an arbitrary-position significand and rounds it to binary64.
///
/// The value represented is `(-1)^sign * mant * 2^exp * (sticky adds an
/// infinitesimal)`.  `mant` may be zero, in which case a signed zero is
/// returned.
pub(crate) fn norm_round_pack_f64(
    sign: bool,
    exp: i32,
    mant: u128,
    sticky: bool,
    rm: Rounding,
    flags: &mut Flags,
) -> u64 {
    if mant == 0 {
        if sticky {
            // A non-zero value rounded all the way to zero: record it.
            flags.inexact = true;
            flags.underflow = true;
        }
        return crate::pack64(sign, 0, 0);
    }
    let msb = 127 - mant.leading_zeros() as i32;
    let (sig, extra_sticky) = if msb > 62 {
        let shifted = shift_right_jam_u128(mant, (msb - 62) as u32);
        (shifted as u64, false)
    } else {
        ((mant as u64) << (62 - msb), false)
    };
    let sig = sig | (sticky || extra_sticky) as u64;
    // The leading bit sits at binary weight 2^(exp + msb).
    let biased = exp + msb + 1023;
    round_pack_f64(sign, biased, sig, rm, flags)
}

/// Normalises an arbitrary-position significand and rounds it to binary32.
pub(crate) fn norm_round_pack_f32(
    sign: bool,
    exp: i32,
    mant: u128,
    sticky: bool,
    rm: Rounding,
    flags: &mut Flags,
) -> u32 {
    if mant == 0 {
        if sticky {
            flags.inexact = true;
            flags.underflow = true;
        }
        return crate::pack32(sign, 0, 0);
    }
    let msb = 127 - mant.leading_zeros() as i32;
    let sig = if msb > 62 {
        shift_right_jam_u128(mant, (msb - 62) as u32) as u64
    } else {
        (mant as u64) << (62 - msb)
    };
    let sig = sig | sticky as u64;
    let biased = exp + msb + 127;
    round_pack_f32(sign, biased, sig, rm, flags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_right_jam_preserves_stickiness() {
        assert_eq!(shift_right_jam_u64(0b1000, 3), 0b1);
        assert_eq!(
            shift_right_jam_u64(0b1001, 3),
            0b1,
            "lost bits jam into bit 0"
        );
        assert_eq!(shift_right_jam_u64(0b10100, 3), 0b11);
        assert_eq!(shift_right_jam_u64(1, 64), 1);
        assert_eq!(shift_right_jam_u64(0, 64), 0);
        assert_eq!(shift_right_jam_u128(1, 128), 1);
        assert_eq!(shift_right_jam_u128(0x10, 4), 1);
    }

    #[test]
    fn isqrt_exact_and_inexact() {
        assert_eq!(isqrt_u128(0), (0, true));
        assert_eq!(isqrt_u128(1), (1, true));
        assert_eq!(isqrt_u128(144), (12, true));
        assert_eq!(isqrt_u128(150), (12, false));
        let big = (1u128 << 100) + 12345;
        let (r, _) = isqrt_u128(big);
        assert!(r * r <= big && (r + 1) * (r + 1) > big);
    }

    #[test]
    fn norm_round_pack_simple_values() {
        let mut f = Flags::none();
        // 1.0 = 1 * 2^0.
        let one = norm_round_pack_f64(false, 0, 1, false, Rounding::NearestEven, &mut f);
        assert_eq!(one, 1.0f64.to_bits());
        // 2.5 = 5 * 2^-1.
        let v = norm_round_pack_f64(false, -1, 5, false, Rounding::NearestEven, &mut f);
        assert_eq!(v, 2.5f64.to_bits());
        // -8 = 8 * 2^0 with sign.
        let v = norm_round_pack_f64(true, 0, 8, false, Rounding::NearestEven, &mut f);
        assert_eq!(v, (-8.0f64).to_bits());
        assert!(!f.any());
    }

    #[test]
    fn norm_round_pack_f32_simple_values() {
        let mut f = Flags::none();
        let one = norm_round_pack_f32(false, 0, 1, false, Rounding::NearestEven, &mut f);
        assert_eq!(one, 1.0f32.to_bits());
        let v = norm_round_pack_f32(false, -2, 3, false, Rounding::NearestEven, &mut f);
        assert_eq!(v, 0.75f32.to_bits());
    }

    #[test]
    fn rounding_inexact_flag() {
        let mut f = Flags::none();
        // 2^53 + 1 is not representable in binary64.
        let v = norm_round_pack_f64(
            false,
            0,
            (1u128 << 53) + 1,
            false,
            Rounding::NearestEven,
            &mut f,
        );
        assert_eq!(v, ((1u64 << 53) as f64).to_bits());
        assert!(f.inexact);
    }

    #[test]
    fn overflow_to_infinity_and_largest_finite() {
        let mut f = Flags::none();
        let v = norm_round_pack_f64(false, 2000, 1, false, Rounding::NearestEven, &mut f);
        assert_eq!(v, f64::INFINITY.to_bits());
        assert!(f.overflow && f.inexact);

        let mut f = Flags::none();
        let v = norm_round_pack_f64(false, 2000, 1, false, Rounding::TowardZero, &mut f);
        assert_eq!(v, f64::MAX.to_bits());
        assert!(f.overflow);
    }

    #[test]
    fn underflow_to_subnormal() {
        let mut f = Flags::none();
        // 2^-1074 is the smallest subnormal.
        let v = norm_round_pack_f64(false, -1074, 1, false, Rounding::NearestEven, &mut f);
        assert_eq!(v, 1u64);
        assert!(!f.underflow, "exact subnormal must not raise underflow");

        let mut f = Flags::none();
        // 2^-1075 rounds to either 0 or 2^-1074 and is inexact + tiny.
        let v = norm_round_pack_f64(false, -1075, 1, false, Rounding::NearestEven, &mut f);
        assert!(v == 0 || v == 1);
        assert!(f.underflow && f.inexact);
    }
}
