//! Arithmetic and comparison operations on binary32 / binary64 values.

use crate::arch::propagate_nan32;
use crate::arch::propagate_nan64;
use crate::round::{isqrt_u128, norm_round_pack_f32, norm_round_pack_f64, shift_right_jam_u128};
use crate::{
    classify32, classify64, is_nan32, is_nan64, is_snan32, is_snan64, pack32, pack64, unpack32,
    unpack64, FpClass, FpEnv, Rounding, F32_DEFAULT_NAN, F64_DEFAULT_NAN,
};

/// A finite value decomposed as `(-1)^sign * mant * 2^exp` with an integer
/// significand (`mant` includes the hidden bit for normal numbers).
#[derive(Debug, Clone, Copy)]
struct Decomp {
    sign: bool,
    exp: i32,
    mant: u64,
}

/// Decomposes a finite (possibly zero / subnormal) binary64 value.
fn decomp64(bits: u64) -> Decomp {
    let u = unpack64(bits);
    if u.exp == 0 {
        Decomp {
            sign: u.sign,
            exp: -1074,
            mant: u.frac,
        }
    } else {
        Decomp {
            sign: u.sign,
            exp: u.exp - 1023 - 52,
            mant: u.frac | (1u64 << 52),
        }
    }
}

/// Decomposes a finite (possibly zero / subnormal) binary32 value.
fn decomp32(bits: u32) -> Decomp {
    let u = unpack32(bits);
    if u.exp == 0 {
        Decomp {
            sign: u.sign,
            exp: -149,
            mant: u.frac as u64,
        }
    } else {
        Decomp {
            sign: u.sign,
            exp: u.exp - 127 - 23,
            mant: (u.frac | (1u32 << 23)) as u64,
        }
    }
}

/// Aligns two magnitudes to a common exponent, clamping extreme exponent
/// differences so only stickiness of the far-smaller operand survives.
///
/// Returns `(mant_a, mant_b, exp)` such that `a = mant_a * 2^exp` (possibly
/// with an infinitesimal perturbation when clamped) and likewise for `b`.
fn align(a: Decomp, b: Decomp) -> (u128, u128, i32) {
    // Keep 53-bit significands shifted by MAX_SHIFT comfortably inside u128
    // while staying far enough below the rounding point that only stickiness
    // of the smaller operand can matter.
    const MAX_SHIFT: i32 = 70;
    let (hi, lo) = if a.exp >= b.exp { (a, b) } else { (b, a) };
    let mut diff = hi.exp - lo.exp;
    let mut lo_mant = lo.mant as u128;
    if diff > MAX_SHIFT {
        // The low operand is far below the rounding point of any possible
        // result; collapse it to a sticky epsilon.
        diff = MAX_SHIFT;
        if lo_mant != 0 {
            lo_mant = 1;
        }
    }
    let hi_mant = (hi.mant as u128) << diff;
    let exp = hi.exp - diff;
    if a.exp >= b.exp {
        (hi_mant, lo_mant, exp)
    } else {
        (lo_mant, hi_mant, exp)
    }
}

// ---------------------------------------------------------------------------
// binary64
// ---------------------------------------------------------------------------

/// Adds two binary64 values.
pub fn f64_add(a: u64, b: u64, env: &mut FpEnv) -> u64 {
    f64_add_inner(a, b, false, env)
}

/// Subtracts `b` from `a` (binary64).
pub fn f64_sub(a: u64, b: u64, env: &mut FpEnv) -> u64 {
    f64_add_inner(a, b, true, env)
}

fn f64_add_inner(a: u64, b: u64, negate_b: bool, env: &mut FpEnv) -> u64 {
    let b = if negate_b { b ^ (1u64 << 63) } else { b };
    let ca = classify64(a);
    let cb = classify64(b);
    if is_nan64(a) || is_nan64(b) {
        return propagate_nan64(a, b, env);
    }
    match (ca, cb) {
        (FpClass::Infinite, FpClass::Infinite) => {
            if (a >> 63) != (b >> 63) {
                env.flags.invalid = true;
                return F64_DEFAULT_NAN;
            }
            return a;
        }
        (FpClass::Infinite, _) => return a,
        (_, FpClass::Infinite) => return b,
        _ => {}
    }
    let da = decomp64(a);
    let db = decomp64(b);
    let (ma, mb, exp) = align(da, db);
    if da.sign == db.sign {
        norm_round_pack_f64(da.sign, exp, ma + mb, false, env.rounding, &mut env.flags)
    } else {
        // Magnitude subtraction; the sign follows the larger magnitude.
        let (sign, mag) = if ma > mb {
            (da.sign, ma - mb)
        } else if mb > ma {
            (db.sign, mb - ma)
        } else {
            // Exact cancellation: +0 except in round-toward-negative mode.
            let zero_sign = matches!(env.rounding, Rounding::TowardNegative);
            return pack64(zero_sign, 0, 0);
        };
        norm_round_pack_f64(sign, exp, mag, false, env.rounding, &mut env.flags)
    }
}

/// Multiplies two binary64 values.
pub fn f64_mul(a: u64, b: u64, env: &mut FpEnv) -> u64 {
    let ca = classify64(a);
    let cb = classify64(b);
    if is_nan64(a) || is_nan64(b) {
        return propagate_nan64(a, b, env);
    }
    let sign = (a >> 63) ^ (b >> 63) != 0;
    match (ca, cb) {
        (FpClass::Infinite, FpClass::Zero) | (FpClass::Zero, FpClass::Infinite) => {
            env.flags.invalid = true;
            return F64_DEFAULT_NAN;
        }
        (FpClass::Infinite, _) | (_, FpClass::Infinite) => return pack64(sign, 0x7FF, 0),
        (FpClass::Zero, _) | (_, FpClass::Zero) => return pack64(sign, 0, 0),
        _ => {}
    }
    let da = decomp64(a);
    let db = decomp64(b);
    let product = (da.mant as u128) * (db.mant as u128);
    norm_round_pack_f64(
        sign,
        da.exp + db.exp,
        product,
        false,
        env.rounding,
        &mut env.flags,
    )
}

/// Divides `a` by `b` (binary64).
pub fn f64_div(a: u64, b: u64, env: &mut FpEnv) -> u64 {
    let ca = classify64(a);
    let cb = classify64(b);
    if is_nan64(a) || is_nan64(b) {
        return propagate_nan64(a, b, env);
    }
    let sign = (a >> 63) ^ (b >> 63) != 0;
    match (ca, cb) {
        (FpClass::Infinite, FpClass::Infinite) | (FpClass::Zero, FpClass::Zero) => {
            env.flags.invalid = true;
            return F64_DEFAULT_NAN;
        }
        (FpClass::Infinite, _) => return pack64(sign, 0x7FF, 0),
        (_, FpClass::Infinite) => return pack64(sign, 0, 0),
        (FpClass::Zero, _) => return pack64(sign, 0, 0),
        (_, FpClass::Zero) => {
            env.flags.div_by_zero = true;
            return pack64(sign, 0x7FF, 0);
        }
        _ => {}
    }
    let da = decomp64(a);
    let db = decomp64(b);
    let num = (da.mant as u128) << 62;
    let den = db.mant as u128;
    let quot = num / den;
    let rem = num % den;
    norm_round_pack_f64(
        sign,
        da.exp - db.exp - 62,
        quot,
        rem != 0,
        env.rounding,
        &mut env.flags,
    )
}

/// Square root of a binary64 value, following the generic IEEE-754 rules
/// (negative non-zero inputs are invalid and yield a NaN whose flavour is
/// decided by the environment's NaN policy; see [`crate::arch`]).
pub fn f64_sqrt(a: u64, env: &mut FpEnv) -> u64 {
    let ca = classify64(a);
    if is_nan64(a) {
        return propagate_nan64(a, a, env);
    }
    match ca {
        FpClass::Zero => return a,
        FpClass::Infinite => {
            if a >> 63 == 0 {
                return a;
            }
            env.flags.invalid = true;
            return crate::arch::invalid_sqrt_nan64(env);
        }
        _ => {}
    }
    if a >> 63 != 0 {
        env.flags.invalid = true;
        return crate::arch::invalid_sqrt_nan64(env);
    }
    let mut d = decomp64(a);
    // Make the exponent even so the square root has an integral power of two.
    if d.exp & 1 != 0 {
        d.mant <<= 1;
        d.exp -= 1;
    }
    // sqrt(mant * 2^exp) = isqrt(mant << 2t) * 2^(exp/2 - t).
    const T: i32 = 32;
    let scaled = (d.mant as u128) << (2 * T);
    let (root, exact) = isqrt_u128(scaled);
    norm_round_pack_f64(
        false,
        d.exp / 2 - T,
        root,
        !exact,
        env.rounding,
        &mut env.flags,
    )
}

/// Fused multiply-add: `a * b + c` with a single rounding (binary64).
pub fn f64_fma(a: u64, b: u64, c: u64, env: &mut FpEnv) -> u64 {
    let ca = classify64(a);
    let cb = classify64(b);
    let cc = classify64(c);
    if is_nan64(a) || is_nan64(b) || is_nan64(c) {
        // Propagate from the first NaN operand in (a, b, c) order.
        let first = if is_nan64(a) {
            a
        } else if is_nan64(b) {
            b
        } else {
            c
        };
        return propagate_nan64(first, first, env);
    }
    let prod_sign = (a >> 63) ^ (b >> 63) != 0;
    // Invalid: inf * 0, or (inf*finite) + opposite inf.
    if matches!(
        (ca, cb),
        (FpClass::Infinite, FpClass::Zero) | (FpClass::Zero, FpClass::Infinite)
    ) {
        env.flags.invalid = true;
        return F64_DEFAULT_NAN;
    }
    let prod_inf = matches!(ca, FpClass::Infinite) || matches!(cb, FpClass::Infinite);
    if prod_inf {
        if matches!(cc, FpClass::Infinite) && (c >> 63 != 0) != prod_sign {
            env.flags.invalid = true;
            return F64_DEFAULT_NAN;
        }
        return pack64(prod_sign, 0x7FF, 0);
    }
    if matches!(cc, FpClass::Infinite) {
        return c;
    }
    let da = decomp64(a);
    let db = decomp64(b);
    let dc = decomp64(c);
    let prod = (da.mant as u128) * (db.mant as u128);
    let prod_exp = da.exp + db.exp;
    if prod == 0 {
        // 0 + c; respect the sign rules for exact zero sums.
        if dc.mant == 0 {
            let sign = if prod_sign == dc.sign {
                prod_sign
            } else {
                matches!(env.rounding, Rounding::TowardNegative)
            };
            return pack64(sign, 0, 0);
        }
        return c;
    }
    if dc.mant == 0 {
        return norm_round_pack_f64(
            prod_sign,
            prod_exp,
            prod,
            false,
            env.rounding,
            &mut env.flags,
        );
    }
    // Align the addend with the 106-bit product.  The product has at most
    // 106 significant bits, so keeping ~116 bits of either operand and
    // jamming the rest preserves correct rounding.
    let (mut hi_m, mut hi_e, hi_s, mut lo_m, lo_e, lo_s) = if prod_exp >= dc.exp {
        (prod, prod_exp, prod_sign, dc.mant as u128, dc.exp, dc.sign)
    } else {
        (dc.mant as u128, dc.exp, dc.sign, prod, prod_exp, prod_sign)
    };
    let mut diff = (hi_e - lo_e) as u32;
    let headroom = hi_m.leading_zeros().saturating_sub(2);
    let mut sticky = false;
    if diff > headroom {
        let excess = diff - headroom;
        let jammed = shift_right_jam_u128(lo_m, excess);
        sticky = jammed & 1 != 0 && excess > 0 && (lo_m & ((1u128 << excess.min(127)) - 1)) != 0;
        lo_m = jammed & !1 | (jammed & 1);
        // After jamming the low operand has been shifted up by `excess`
        // relative to its own exponent; account for it by reducing diff.
        diff = headroom;
    }
    hi_m <<= diff;
    hi_e -= diff as i32;
    let _ = sticky;
    if hi_s == lo_s {
        norm_round_pack_f64(hi_s, hi_e, hi_m + lo_m, false, env.rounding, &mut env.flags)
    } else {
        let (sign, mag) = if hi_m > lo_m {
            (hi_s, hi_m - lo_m)
        } else if lo_m > hi_m {
            (lo_s, lo_m - hi_m)
        } else {
            let zero_sign = matches!(env.rounding, Rounding::TowardNegative);
            return pack64(zero_sign, 0, 0);
        };
        norm_round_pack_f64(sign, hi_e, mag, false, env.rounding, &mut env.flags)
    }
}

/// IEEE equality comparison (quiet: only signalling NaNs raise invalid).
pub fn f64_eq(a: u64, b: u64, env: &mut FpEnv) -> bool {
    if is_nan64(a) || is_nan64(b) {
        if is_snan64(a) || is_snan64(b) {
            env.flags.invalid = true;
        }
        return false;
    }
    if ((a | b) << 1) == 0 {
        return true; // +0 == -0
    }
    a == b
}

/// IEEE less-than comparison (signalling: any NaN raises invalid).
pub fn f64_lt(a: u64, b: u64, env: &mut FpEnv) -> bool {
    if is_nan64(a) || is_nan64(b) {
        env.flags.invalid = true;
        return false;
    }
    f64_ordered_lt(a, b)
}

/// IEEE less-than-or-equal comparison (signalling).
pub fn f64_le(a: u64, b: u64, env: &mut FpEnv) -> bool {
    if is_nan64(a) || is_nan64(b) {
        env.flags.invalid = true;
        return false;
    }
    if ((a | b) << 1) == 0 {
        return true;
    }
    a == b || f64_ordered_lt(a, b)
}

fn f64_ordered_lt(a: u64, b: u64) -> bool {
    let sa = a >> 63 != 0;
    let sb = b >> 63 != 0;
    if ((a | b) << 1) == 0 {
        return false;
    }
    match (sa, sb) {
        (false, false) => a < b,
        (true, true) => a > b,
        (true, false) => true,
        (false, true) => false,
    }
}

// ---------------------------------------------------------------------------
// binary32
// ---------------------------------------------------------------------------

/// Adds two binary32 values.
pub fn f32_add(a: u32, b: u32, env: &mut FpEnv) -> u32 {
    f32_add_inner(a, b, false, env)
}

/// Subtracts `b` from `a` (binary32).
pub fn f32_sub(a: u32, b: u32, env: &mut FpEnv) -> u32 {
    f32_add_inner(a, b, true, env)
}

fn f32_add_inner(a: u32, b: u32, negate_b: bool, env: &mut FpEnv) -> u32 {
    let b = if negate_b { b ^ (1u32 << 31) } else { b };
    let ca = classify32(a);
    let cb = classify32(b);
    if is_nan32(a) || is_nan32(b) {
        return propagate_nan32(a, b, env);
    }
    match (ca, cb) {
        (FpClass::Infinite, FpClass::Infinite) => {
            if (a >> 31) != (b >> 31) {
                env.flags.invalid = true;
                return F32_DEFAULT_NAN;
            }
            return a;
        }
        (FpClass::Infinite, _) => return a,
        (_, FpClass::Infinite) => return b,
        _ => {}
    }
    let da = decomp32(a);
    let db = decomp32(b);
    let (ma, mb, exp) = align(da, db);
    if da.sign == db.sign {
        norm_round_pack_f32(da.sign, exp, ma + mb, false, env.rounding, &mut env.flags)
    } else {
        let (sign, mag) = if ma > mb {
            (da.sign, ma - mb)
        } else if mb > ma {
            (db.sign, mb - ma)
        } else {
            let zero_sign = matches!(env.rounding, Rounding::TowardNegative);
            return pack32(zero_sign, 0, 0);
        };
        norm_round_pack_f32(sign, exp, mag, false, env.rounding, &mut env.flags)
    }
}

/// Multiplies two binary32 values.
pub fn f32_mul(a: u32, b: u32, env: &mut FpEnv) -> u32 {
    let ca = classify32(a);
    let cb = classify32(b);
    if is_nan32(a) || is_nan32(b) {
        return propagate_nan32(a, b, env);
    }
    let sign = (a >> 31) ^ (b >> 31) != 0;
    match (ca, cb) {
        (FpClass::Infinite, FpClass::Zero) | (FpClass::Zero, FpClass::Infinite) => {
            env.flags.invalid = true;
            return F32_DEFAULT_NAN;
        }
        (FpClass::Infinite, _) | (_, FpClass::Infinite) => return pack32(sign, 0xFF, 0),
        (FpClass::Zero, _) | (_, FpClass::Zero) => return pack32(sign, 0, 0),
        _ => {}
    }
    let da = decomp32(a);
    let db = decomp32(b);
    let product = (da.mant as u128) * (db.mant as u128);
    norm_round_pack_f32(
        sign,
        da.exp + db.exp,
        product,
        false,
        env.rounding,
        &mut env.flags,
    )
}

/// Divides `a` by `b` (binary32).
pub fn f32_div(a: u32, b: u32, env: &mut FpEnv) -> u32 {
    let ca = classify32(a);
    let cb = classify32(b);
    if is_nan32(a) || is_nan32(b) {
        return propagate_nan32(a, b, env);
    }
    let sign = (a >> 31) ^ (b >> 31) != 0;
    match (ca, cb) {
        (FpClass::Infinite, FpClass::Infinite) | (FpClass::Zero, FpClass::Zero) => {
            env.flags.invalid = true;
            return F32_DEFAULT_NAN;
        }
        (FpClass::Infinite, _) => return pack32(sign, 0xFF, 0),
        (_, FpClass::Infinite) => return pack32(sign, 0, 0),
        (FpClass::Zero, _) => return pack32(sign, 0, 0),
        (_, FpClass::Zero) => {
            env.flags.div_by_zero = true;
            return pack32(sign, 0xFF, 0);
        }
        _ => {}
    }
    let da = decomp32(a);
    let db = decomp32(b);
    let num = (da.mant as u128) << 62;
    let den = db.mant as u128;
    let quot = num / den;
    let rem = num % den;
    norm_round_pack_f32(
        sign,
        da.exp - db.exp - 62,
        quot,
        rem != 0,
        env.rounding,
        &mut env.flags,
    )
}

/// Square root of a binary32 value.
pub fn f32_sqrt(a: u32, env: &mut FpEnv) -> u32 {
    let ca = classify32(a);
    if is_nan32(a) {
        return propagate_nan32(a, a, env);
    }
    match ca {
        FpClass::Zero => return a,
        FpClass::Infinite => {
            if a >> 31 == 0 {
                return a;
            }
            env.flags.invalid = true;
            return crate::arch::invalid_sqrt_nan32(env);
        }
        _ => {}
    }
    if a >> 31 != 0 {
        env.flags.invalid = true;
        return crate::arch::invalid_sqrt_nan32(env);
    }
    let mut d = decomp32(a);
    if d.exp & 1 != 0 {
        d.mant <<= 1;
        d.exp -= 1;
    }
    const T: i32 = 24;
    let scaled = (d.mant as u128) << (2 * T);
    let (root, exact) = isqrt_u128(scaled);
    norm_round_pack_f32(
        false,
        d.exp / 2 - T,
        root,
        !exact,
        env.rounding,
        &mut env.flags,
    )
}

/// IEEE equality comparison for binary32.
pub fn f32_eq(a: u32, b: u32, env: &mut FpEnv) -> bool {
    if is_nan32(a) || is_nan32(b) {
        if is_snan32(a) || is_snan32(b) {
            env.flags.invalid = true;
        }
        return false;
    }
    if ((a | b) << 1) == 0 {
        return true;
    }
    a == b
}

/// IEEE less-than comparison for binary32 (signalling).
pub fn f32_lt(a: u32, b: u32, env: &mut FpEnv) -> bool {
    if is_nan32(a) || is_nan32(b) {
        env.flags.invalid = true;
        return false;
    }
    if ((a | b) << 1) == 0 {
        return false;
    }
    let sa = a >> 31 != 0;
    let sb = b >> 31 != 0;
    match (sa, sb) {
        (false, false) => a < b,
        (true, true) => a > b,
        (true, false) => true,
        (false, true) => false,
    }
}

/// IEEE less-than-or-equal comparison for binary32 (signalling).
pub fn f32_le(a: u32, b: u32, env: &mut FpEnv) -> bool {
    if is_nan32(a) || is_nan32(b) {
        env.flags.invalid = true;
        return false;
    }
    if ((a | b) << 1) == 0 {
        return true;
    }
    a == b || f32_lt(a, b, env)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check64(
        op: impl Fn(u64, u64, &mut FpEnv) -> u64,
        native: impl Fn(f64, f64) -> f64,
        a: f64,
        b: f64,
    ) {
        let mut env = FpEnv::arm();
        let got = op(a.to_bits(), b.to_bits(), &mut env);
        let want = native(a, b);
        if want.is_nan() {
            assert!(is_nan64(got), "{a} ? {b}: expected NaN, got {got:#x}");
        } else {
            assert_eq!(
                got,
                want.to_bits(),
                "{a} ? {b}: got {} want {}",
                f64::from_bits(got),
                want
            );
        }
    }

    #[test]
    fn add_matches_native_on_representative_values() {
        let vals = [
            0.0,
            -0.0,
            1.0,
            -1.0,
            1.5,
            2.5,
            1e300,
            -1e300,
            1e-300,
            std::f64::consts::PI,
            f64::MIN_POSITIVE,
            f64::MAX,
            1e16,
            1.0000000000000002,
        ];
        for &a in &vals {
            for &b in &vals {
                check64(f64_add, |x, y| x + y, a, b);
                check64(f64_sub, |x, y| x - y, a, b);
                check64(f64_mul, |x, y| x * y, a, b);
                check64(f64_div, |x, y| x / y, a, b);
            }
        }
    }

    #[test]
    fn special_values() {
        let mut env = FpEnv::arm();
        let inf = f64::INFINITY.to_bits();
        let ninf = f64::NEG_INFINITY.to_bits();
        assert!(is_nan64(f64_add(inf, ninf, &mut env)));
        assert!(env.flags.invalid);
        env.clear_flags();
        assert_eq!(f64_mul(inf, 0f64.to_bits(), &mut env), F64_DEFAULT_NAN);
        assert!(env.flags.invalid);
        env.clear_flags();
        assert_eq!(f64_div(1f64.to_bits(), 0f64.to_bits(), &mut env), inf);
        assert!(env.flags.div_by_zero);
    }

    #[test]
    fn sqrt_matches_native() {
        let mut env = FpEnv::arm();
        for v in [
            0.25f64, 0.5, 1.0, 2.0, 4.0, 144.0, 1e100, 1e-100, 0.707, 3.0,
        ] {
            let got = f64_sqrt(v.to_bits(), &mut env);
            assert_eq!(got, v.sqrt().to_bits(), "sqrt({v})");
        }
        for v in [0.25f32, 2.0, 100.0, 0.1, 7.5] {
            let got = f32_sqrt(v.to_bits(), &mut env);
            assert_eq!(got, v.sqrt().to_bits(), "sqrt32({v})");
        }
    }

    #[test]
    fn fma_single_rounding() {
        let mut env = FpEnv::arm();
        let cases: [(f64, f64, f64); 5] = [
            (1.0, 1.0, 1.0),
            (1.5, 2.5, -3.75),
            (1e16, 1e16, -1e32),
            (3.0, 1.0 / 3.0, -1.0),
            (1.0000000000000002, 1.0000000000000002, 0.0),
        ];
        for (a, b, c) in cases {
            let got = f64_fma(a.to_bits(), b.to_bits(), c.to_bits(), &mut env);
            let want = f64::mul_add(a, b, c);
            assert_eq!(
                got,
                want.to_bits(),
                "fma({a},{b},{c}) got {} want {}",
                f64::from_bits(got),
                want
            );
        }
    }

    #[test]
    fn comparisons() {
        let mut env = FpEnv::arm();
        assert!(f64_eq(0f64.to_bits(), (-0f64).to_bits(), &mut env));
        assert!(f64_lt((-1f64).to_bits(), 1f64.to_bits(), &mut env));
        assert!(!f64_lt(1f64.to_bits(), 1f64.to_bits(), &mut env));
        assert!(f64_le(1f64.to_bits(), 1f64.to_bits(), &mut env));
        assert!(!f64_eq(f64::NAN.to_bits(), f64::NAN.to_bits(), &mut env));
        assert!(f32_eq(0f32.to_bits(), (-0f32).to_bits(), &mut env));
        assert!(f32_lt((-2f32).to_bits(), 3f32.to_bits(), &mut env));
        assert!(f32_le(3f32.to_bits(), 3f32.to_bits(), &mut env));
    }

    #[test]
    fn f32_ops_match_native() {
        let vals = [
            0.0f32, -0.0, 1.0, -1.0, 1.5, 3.25, 1e30, 1e-30, 0.1, 123456.78,
        ];
        let mut env = FpEnv::arm();
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    f32_add(a.to_bits(), b.to_bits(), &mut env),
                    (a + b).to_bits(),
                    "{a}+{b}"
                );
                assert_eq!(
                    f32_mul(a.to_bits(), b.to_bits(), &mut env),
                    (a * b).to_bits(),
                    "{a}*{b}"
                );
                let want = a / b;
                let got = f32_div(a.to_bits(), b.to_bits(), &mut env);
                if want.is_nan() {
                    assert!(is_nan32(got));
                } else {
                    assert_eq!(got, want.to_bits(), "{a}/{b}");
                }
            }
        }
    }

    #[test]
    fn subnormal_results() {
        let mut env = FpEnv::arm();
        let tiny = f64::MIN_POSITIVE; // smallest normal
        let got = f64_div(tiny.to_bits(), 4f64.to_bits(), &mut env);
        assert_eq!(got, (tiny / 4.0).to_bits());
        let got = f64_mul(tiny.to_bits(), 0.5f64.to_bits(), &mut env);
        assert_eq!(got, (tiny * 0.5).to_bits());
    }
}
