//! Conversions between integers and floating-point formats, and between the
//! two floating-point formats.
//!
//! Integer results saturate on overflow and raise the invalid flag, matching
//! the AArch64 `FCVT*` family (which the guest model relies on), rather than
//! the x86 behaviour of returning the "integer indefinite" value.

use crate::round::{norm_round_pack_f32, norm_round_pack_f64};
use crate::{classify64, is_nan64, pack64, unpack32, unpack64, FpClass, FpEnv, Rounding};

/// Converts a signed 64-bit integer to binary64 (rounding if |v| >= 2^53).
pub fn i64_to_f64(v: i64, env: &mut FpEnv) -> u64 {
    if v == 0 {
        return 0;
    }
    let sign = v < 0;
    let mag = v.unsigned_abs() as u128;
    norm_round_pack_f64(sign, 0, mag, false, env.rounding, &mut env.flags)
}

/// Converts an unsigned 64-bit integer to binary64.
pub fn u64_to_f64(v: u64, env: &mut FpEnv) -> u64 {
    if v == 0 {
        return 0;
    }
    norm_round_pack_f64(false, 0, v as u128, false, env.rounding, &mut env.flags)
}

/// Converts a signed 32-bit integer to binary64 (always exact).
pub fn i32_to_f64(v: i32, env: &mut FpEnv) -> u64 {
    i64_to_f64(v as i64, env)
}

/// Converts a signed 64-bit integer to binary32.
pub fn i64_to_f32(v: i64, env: &mut FpEnv) -> u32 {
    if v == 0 {
        return 0;
    }
    let sign = v < 0;
    let mag = v.unsigned_abs() as u128;
    norm_round_pack_f32(sign, 0, mag, false, env.rounding, &mut env.flags)
}

/// Converts a signed 32-bit integer to binary32.
pub fn i32_to_f32(v: i32, env: &mut FpEnv) -> u32 {
    i64_to_f32(v as i64, env)
}

/// Shared helper: converts a binary64 value to an integer magnitude plus
/// sign, honouring the rounding mode, and reporting inexactness.
fn f64_to_int_parts(bits: u64, env: &mut FpEnv) -> Option<(bool, u128)> {
    match classify64(bits) {
        FpClass::QuietNan | FpClass::SignallingNan | FpClass::Infinite => None,
        FpClass::Zero => Some((false, 0)),
        _ => {
            let u = unpack64(bits);
            let (mant, exp) = if u.exp == 0 {
                (u.frac, -1074i32)
            } else {
                (u.frac | (1 << 52), u.exp - 1023 - 52)
            };
            if exp >= 0 {
                if exp > 70 {
                    // Far too large to represent; let the caller saturate.
                    return Some((u.sign, u128::MAX));
                }
                Some((u.sign, (mant as u128) << exp))
            } else {
                let shift = (-exp) as u32;
                if shift >= 128 {
                    if mant != 0 {
                        env.flags.inexact = true;
                    }
                    return Some((u.sign, 0));
                }
                let whole = (mant as u128) >> shift.min(127);
                let lost = (mant as u128) & ((1u128 << shift.min(127)) - 1);
                let half = 1u128 << (shift - 1);
                if lost != 0 {
                    env.flags.inexact = true;
                }
                let rounded = match env.rounding {
                    Rounding::NearestEven => {
                        if lost > half || (lost == half && whole & 1 == 1) {
                            whole + 1
                        } else {
                            whole
                        }
                    }
                    Rounding::TowardZero => whole,
                    Rounding::TowardPositive => {
                        if lost != 0 && !u.sign {
                            whole + 1
                        } else {
                            whole
                        }
                    }
                    Rounding::TowardNegative => {
                        if lost != 0 && u.sign {
                            whole + 1
                        } else {
                            whole
                        }
                    }
                };
                Some((u.sign, rounded))
            }
        }
    }
}

/// Converts a binary64 value to a signed 64-bit integer (saturating).
pub fn f64_to_i64(bits: u64, env: &mut FpEnv) -> i64 {
    match f64_to_int_parts(bits, env) {
        None => {
            env.flags.invalid = true;
            if bits >> 63 != 0 && !is_nan64(bits) {
                i64::MIN
            } else if is_nan64(bits) {
                0
            } else {
                i64::MAX
            }
        }
        Some((sign, mag)) => {
            if sign {
                if mag > (i64::MAX as u128) + 1 {
                    env.flags.invalid = true;
                    i64::MIN
                } else {
                    (mag as i128).wrapping_neg() as i64
                }
            } else if mag > i64::MAX as u128 {
                env.flags.invalid = true;
                i64::MAX
            } else {
                mag as i64
            }
        }
    }
}

/// Converts a binary64 value to an unsigned 64-bit integer (saturating).
pub fn f64_to_u64(bits: u64, env: &mut FpEnv) -> u64 {
    match f64_to_int_parts(bits, env) {
        None => {
            env.flags.invalid = true;
            // NaN and negative infinities both saturate to 0; positive
            // infinities to the maximum.
            if is_nan64(bits) || bits >> 63 != 0 {
                0
            } else {
                u64::MAX
            }
        }
        Some((sign, mag)) => {
            if sign && mag != 0 {
                env.flags.invalid = true;
                0
            } else if mag > u64::MAX as u128 {
                env.flags.invalid = true;
                u64::MAX
            } else {
                mag as u64
            }
        }
    }
}

/// Converts a binary64 value to a signed 32-bit integer (saturating).
pub fn f64_to_i32(bits: u64, env: &mut FpEnv) -> i32 {
    let wide = f64_to_i64(bits, env);
    if wide > i32::MAX as i64 {
        env.flags.invalid = true;
        i32::MAX
    } else if wide < i32::MIN as i64 {
        env.flags.invalid = true;
        i32::MIN
    } else {
        wide as i32
    }
}

/// Converts a binary32 value to a signed 32-bit integer (saturating).
pub fn f32_to_i32(bits: u32, env: &mut FpEnv) -> i32 {
    f64_to_i32(f32_to_f64(bits, env), env)
}

/// Converts a binary32 value to a signed 64-bit integer (saturating).
pub fn f32_to_i64(bits: u32, env: &mut FpEnv) -> i64 {
    f64_to_i64(f32_to_f64(bits, env), env)
}

/// Widens a binary32 value to binary64 (always exact; NaNs are quietened and
/// keep sign + payload).
pub fn f32_to_f64(bits: u32, env: &mut FpEnv) -> u64 {
    let u = unpack32(bits);
    if u.exp == 0xFF {
        if u.frac == 0 {
            return pack64(u.sign, 0x7FF, 0);
        }
        if bits & (1 << 22) == 0 {
            env.flags.invalid = true;
        }
        return pack64(u.sign, 0x7FF, ((u.frac as u64) << 29) | (1 << 51));
    }
    if u.exp == 0 && u.frac == 0 {
        return pack64(u.sign, 0, 0);
    }
    let d = if u.exp == 0 {
        (u.frac as u128, -149i32)
    } else {
        (((u.frac | (1 << 23)) as u128), (u.exp - 127 - 23))
    };
    let mut scratch = crate::Flags::none();
    // Widening can never be inexact, so use a scratch flag set.
    norm_round_pack_f64(u.sign, d.1, d.0, false, env.rounding, &mut scratch)
}

/// Narrows a binary64 value to binary32, rounding per the environment.
pub fn f64_to_f32(bits: u64, env: &mut FpEnv) -> u32 {
    let u = unpack64(bits);
    if u.exp == 0x7FF {
        if u.frac == 0 {
            return crate::pack32(u.sign, 0xFF, 0);
        }
        if bits & (1 << 51) == 0 {
            env.flags.invalid = true;
        }
        let payload = ((u.frac >> 29) as u32) | (1 << 22);
        return crate::pack32(u.sign, 0xFF, payload);
    }
    if u.exp == 0 && u.frac == 0 {
        return crate::pack32(u.sign, 0, 0);
    }
    let (mant, exp) = if u.exp == 0 {
        (u.frac, -1074i32)
    } else {
        (u.frac | (1 << 52), u.exp - 1023 - 52)
    };
    norm_round_pack_f32(
        u.sign,
        exp,
        mant as u128,
        false,
        env.rounding,
        &mut env.flags,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_to_float_roundtrip() {
        let mut env = FpEnv::arm();
        for v in [
            0i64,
            1,
            -1,
            42,
            -1_000_000,
            i64::MAX,
            i64::MIN,
            1 << 52,
            (1 << 53) + 1,
        ] {
            assert_eq!(i64_to_f64(v, &mut env), (v as f64).to_bits(), "{v}");
        }
        for v in [0u64, 1, u64::MAX, 1 << 63, (1 << 53) + 1] {
            assert_eq!(u64_to_f64(v, &mut env), (v as f64).to_bits(), "{v}");
        }
        for v in [0i32, 5, -7, i32::MAX, i32::MIN] {
            assert_eq!(i32_to_f32(v, &mut env), (v as f32).to_bits(), "{v}");
            assert_eq!(i32_to_f64(v, &mut env), (v as f64).to_bits(), "{v}");
        }
    }

    #[test]
    fn float_to_int_rounds_to_nearest() {
        let mut env = FpEnv::arm();
        assert_eq!(f64_to_i64(2.5f64.to_bits(), &mut env), 2); // ties to even
        assert_eq!(f64_to_i64(3.5f64.to_bits(), &mut env), 4);
        assert_eq!(f64_to_i64((-2.5f64).to_bits(), &mut env), -2);
        assert_eq!(f64_to_i64(2.49f64.to_bits(), &mut env), 2);
        assert!(env.flags.inexact);
    }

    #[test]
    fn float_to_int_saturates() {
        let mut env = FpEnv::arm();
        assert_eq!(f64_to_i64(1e300f64.to_bits(), &mut env), i64::MAX);
        assert!(env.flags.invalid);
        env.clear_flags();
        assert_eq!(f64_to_i64((-1e300f64).to_bits(), &mut env), i64::MIN);
        assert_eq!(f64_to_u64((-1.5f64).to_bits(), &mut env), 0);
        assert!(env.flags.invalid);
        env.clear_flags();
        assert_eq!(f64_to_i32(1e10f64.to_bits(), &mut env), i32::MAX);
        assert!(env.flags.invalid);
        env.clear_flags();
        assert_eq!(f64_to_i64(f64::NAN.to_bits(), &mut env), 0);
        assert!(env.flags.invalid);
    }

    #[test]
    fn f32_f64_conversions_match_native() {
        let mut env = FpEnv::arm();
        for v in [
            0.0f32,
            -0.0,
            1.0,
            -2.5,
            1e30,
            1e-40,
            f32::MIN_POSITIVE,
            f32::MAX,
        ] {
            assert_eq!(
                f32_to_f64(v.to_bits(), &mut env),
                (v as f64).to_bits(),
                "{v}"
            );
        }
        for v in [
            0.0f64,
            -0.0,
            1.0,
            -2.5,
            1e300,
            1e-300,
            0.1,
            std::f64::consts::PI,
            1e-45,
            f64::MAX,
        ] {
            assert_eq!(
                f64_to_f32(v.to_bits(), &mut env),
                (v as f32).to_bits(),
                "{v}"
            );
        }
    }

    #[test]
    fn nan_conversions_keep_quietness() {
        let mut env = FpEnv::arm();
        let wide = f32_to_f64(f32::NAN.to_bits(), &mut env);
        assert!(crate::is_nan64(wide));
        let narrow = f64_to_f32(f64::NAN.to_bits(), &mut env);
        assert!(crate::is_nan32(narrow));
    }
}
