//! Architecture-specific floating-point behaviours.
//!
//! The paper's Table 2 motivates inline "fix-up" code in Captive's JIT with
//! the observation that the x86 `SQRTSD` and Arm `FSQRT` instructions agree
//! on every input except the *sign bit of the NaN* produced for negative
//! inputs: x86 returns a negative quiet NaN, Arm returns the (positive)
//! default NaN.  This module provides both flavours so the DBT layers can be
//! tested for bit-accuracy, plus the two architectures' NaN propagation
//! policies.

use crate::{
    is_nan32, is_nan64, is_snan32, is_snan64, quiet32, quiet64, FpEnv, F32_DEFAULT_NAN,
    F64_DEFAULT_NAN,
};

/// How NaN operands propagate into NaN results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NanPropagation {
    /// Arm default-NaN mode (FPCR.DN = 1, the configuration Linux uses for
    /// AArch64): every NaN result is the canonical positive quiet NaN.
    #[default]
    ArmDefaultNan,
    /// x86 SSE semantics: the first NaN operand is returned, quietened,
    /// preserving its sign and payload.
    X86PropagateFirst,
}

/// Chooses the NaN result for a binary64 operation with at least one NaN
/// operand, honouring the environment's propagation policy and raising the
/// invalid flag for signalling NaNs.
pub(crate) fn propagate_nan64(a: u64, b: u64, env: &mut FpEnv) -> u64 {
    if is_snan64(a) || is_snan64(b) {
        env.flags.invalid = true;
    }
    match env.nan_propagation {
        NanPropagation::ArmDefaultNan => F64_DEFAULT_NAN,
        NanPropagation::X86PropagateFirst => {
            if is_nan64(a) {
                quiet64(a)
            } else if is_nan64(b) {
                quiet64(b)
            } else {
                F64_DEFAULT_NAN
            }
        }
    }
}

/// Chooses the NaN result for a binary32 operation with at least one NaN
/// operand.
pub(crate) fn propagate_nan32(a: u32, b: u32, env: &mut FpEnv) -> u32 {
    if is_snan32(a) || is_snan32(b) {
        env.flags.invalid = true;
    }
    match env.nan_propagation {
        NanPropagation::ArmDefaultNan => F32_DEFAULT_NAN,
        NanPropagation::X86PropagateFirst => {
            if is_nan32(a) {
                quiet32(a)
            } else if is_nan32(b) {
                quiet32(b)
            } else {
                F32_DEFAULT_NAN
            }
        }
    }
}

/// The NaN returned by `sqrt` of a negative value, per the environment's
/// architecture flavour: positive default NaN on Arm, *negative* quiet NaN
/// on x86 (the Table 2 discrepancy).
pub(crate) fn invalid_sqrt_nan64(env: &FpEnv) -> u64 {
    match env.nan_propagation {
        NanPropagation::ArmDefaultNan => F64_DEFAULT_NAN,
        NanPropagation::X86PropagateFirst => F64_DEFAULT_NAN | (1u64 << 63),
    }
}

/// 32-bit counterpart of [`invalid_sqrt_nan64`].
pub(crate) fn invalid_sqrt_nan32(env: &FpEnv) -> u32 {
    match env.nan_propagation {
        NanPropagation::ArmDefaultNan => F32_DEFAULT_NAN,
        NanPropagation::X86PropagateFirst => F32_DEFAULT_NAN | (1u32 << 31),
    }
}

/// Arm-flavoured binary64 square root (`FSQRT`): negative inputs produce the
/// positive default NaN.
pub fn f64_sqrt_arm(a: u64, env: &mut FpEnv) -> u64 {
    let saved = env.nan_propagation;
    env.nan_propagation = NanPropagation::ArmDefaultNan;
    let r = crate::ops::f64_sqrt(a, env);
    env.nan_propagation = saved;
    r
}

/// x86-flavoured binary64 square root (`SQRTSD`): negative inputs produce a
/// *negative* quiet NaN, NaN inputs propagate quietened.
pub fn f64_sqrt_x86(a: u64, env: &mut FpEnv) -> u64 {
    let saved = env.nan_propagation;
    env.nan_propagation = NanPropagation::X86PropagateFirst;
    let r = crate::ops::f64_sqrt(a, env);
    env.nan_propagation = saved;
    r
}

/// Arm-flavoured binary32 square root.
pub fn f32_sqrt_arm(a: u32, env: &mut FpEnv) -> u32 {
    let saved = env.nan_propagation;
    env.nan_propagation = NanPropagation::ArmDefaultNan;
    let r = crate::ops::f32_sqrt(a, env);
    env.nan_propagation = saved;
    r
}

/// x86-flavoured binary32 square root.
pub fn f32_sqrt_x86(a: u32, env: &mut FpEnv) -> u32 {
    let saved = env.nan_propagation;
    env.nan_propagation = NanPropagation::X86PropagateFirst;
    let r = crate::ops::f32_sqrt(a, env);
    env.nan_propagation = saved;
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FpEnv;

    /// Reproduces Table 2 of the paper: per-input behaviour of the x86 and
    /// Arm square-root instructions, differing only in the NaN sign bit for
    /// negative inputs.
    #[test]
    fn table2_sqrt_differences() {
        let inputs: [(f64, &str); 8] = [
            (0.0, "0.0"),
            (-0.0, "-0.0"),
            (f64::INFINITY, "inf"),
            (f64::NEG_INFINITY, "-inf"),
            (0.5, "0.5"),
            (-0.5, "-0.5"),
            (f64::from_bits(crate::F64_DEFAULT_NAN), "NaN"),
            (f64::from_bits(crate::F64_DEFAULT_NAN | (1 << 63)), "-NaN"),
        ];
        let mut env = FpEnv::new();
        for (v, name) in inputs {
            let x86 = f64_sqrt_x86(v.to_bits(), &mut env);
            let arm = f64_sqrt_arm(v.to_bits(), &mut env);
            match name {
                "-inf" | "-0.5" => {
                    // The sign bit is the only difference.
                    assert_ne!(x86 >> 63, arm >> 63, "{name}: sign bits should differ");
                    assert_eq!(x86 & !(1 << 63), arm & !(1 << 63), "{name}");
                    assert_eq!(arm >> 63, 0, "{name}: Arm returns +NaN");
                    assert_eq!(x86 >> 63, 1, "{name}: x86 returns -NaN");
                }
                "-NaN" => {
                    // x86 propagates the input (negative), Arm returns the
                    // default NaN (positive).
                    assert_eq!(x86 >> 63, 1, "{name}");
                    assert_eq!(arm >> 63, 0, "{name}");
                }
                _ => {
                    assert_eq!(x86, arm, "{name}: x86 and Arm agree");
                }
            }
        }
    }

    #[test]
    fn nan_propagation_policies() {
        let payload_nan = 0x7FF8_0000_0000_1234u64 | (1 << 63);
        let mut arm = FpEnv::arm();
        let mut x86 = FpEnv::x86();
        let a = crate::f64_add(payload_nan, 1.0f64.to_bits(), &mut arm);
        assert_eq!(a, crate::F64_DEFAULT_NAN);
        let b = crate::f64_add(payload_nan, 1.0f64.to_bits(), &mut x86);
        assert_eq!(b, payload_nan, "x86 keeps sign and payload");
    }

    #[test]
    fn snan_raises_invalid() {
        let snan = 0x7FF0_0000_0000_0001u64;
        let mut env = FpEnv::arm();
        let _ = crate::f64_add(snan, 1.0f64.to_bits(), &mut env);
        assert!(env.flags.invalid);
    }
}
