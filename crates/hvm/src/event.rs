//! Deterministic guest event sources: a programmable timer and an
//! interrupt latch.
//!
//! Both devices schedule work against the machine's *simulated cycle
//! counter* ([`crate::PerfCounters::cycles`]), never against host wall
//! clock, so a run is reproducible bit-for-bit: the same guest program with
//! the same event plan observes the same interrupts in the same order on
//! every engine.  The execution engines poll [`EventSources::due`] from
//! `Runtime::loop_exit_pending` (so a hot looping region is preempted at
//! its next back-edge) and from their dispatch loops (so straight-line code
//! sees events at block boundaries), then call [`EventSources::take`] to
//! pop the pending interrupt line and deliver it as a guest IRQ exception.
//!
//! Delivery masks further IRQs until the guest executes `eret`
//! ([`EventSources::set_masked`]); deadlines that pass while masked stay
//! latched and fire as soon as the mask clears, like a real interrupt
//! controller's pending register.

/// A one-shot or periodic down-counter timer.
///
/// Armed with an absolute cycle deadline; periodic reload is computed from
/// the *previous deadline* (`deadline += period`), not from the observation
/// point, so tick spacing is independent of how late the poll happened.
#[derive(Debug, Clone, Default)]
pub struct Timer {
    /// Absolute cycle count of the next expiry; `None` when disarmed.
    deadline: Option<u64>,
    /// Reload interval for periodic mode; `None` for one-shot.
    period: Option<u64>,
    /// Number of times the timer has fired.
    pub fires: u64,
}

impl Timer {
    /// Arms a one-shot expiry at absolute cycle `deadline`.
    pub fn arm_oneshot(&mut self, deadline: u64) {
        self.deadline = Some(deadline);
        self.period = None;
    }

    /// Arms a periodic timer: first expiry at `first`, then every `period`
    /// cycles.  A zero period is treated as one-shot (a zero-period timer
    /// would fire forever at a single cycle).
    pub fn arm_periodic(&mut self, first: u64, period: u64) {
        self.deadline = Some(first);
        self.period = if period == 0 { None } else { Some(period) };
    }

    /// Disarms the timer.
    pub fn cancel(&mut self) {
        self.deadline = None;
        self.period = None;
    }

    /// True when the timer has an expiry at or before `cycles`.
    pub fn due(&self, cycles: u64) -> bool {
        matches!(self.deadline, Some(d) if d <= cycles)
    }

    /// Consumes an expiry if one is due, advancing a periodic deadline past
    /// `cycles` (multiple elapsed periods collapse into one delivery, like
    /// a real timer interrupt that was held off).
    pub fn take(&mut self, cycles: u64) -> bool {
        let Some(d) = self.deadline else { return false };
        if d > cycles {
            return false;
        }
        self.fires += 1;
        match self.period {
            Some(p) => {
                // Closed-form advance with checked math: a device programming
                // an enormous period (or a deadline near `u64::MAX`) must not
                // wrap the scheduler; if the next expiry is unrepresentable
                // the timer simply disarms instead of overflowing.
                let missed = (cycles - d) / p;
                self.deadline = missed
                    .checked_add(1)
                    .and_then(|n| n.checked_mul(p))
                    .and_then(|delta| d.checked_add(delta));
            }
            None => self.deadline = None,
        }
        true
    }
}

/// An interrupt latch: lines raised directly or on a cycle schedule.
///
/// Raised lines stay pending until taken; the schedule lets a test inject
/// "spurious" device interrupts at predetermined cycle counts.
#[derive(Debug, Clone, Default)]
pub struct InterruptLatch {
    /// Bitmask of currently-pending lines.
    pending: u64,
    /// `(cycle, line)` pairs still to be raised, sorted by cycle.
    schedule: Vec<(u64, u32)>,
    /// Number of raises latched (direct + scheduled).
    pub raises: u64,
}

impl InterruptLatch {
    /// Latches `line` (0..64) immediately.
    pub fn raise(&mut self, line: u32) {
        self.pending |= 1u64 << (line & 63);
        self.raises += 1;
    }

    /// Schedules `line` to latch once the cycle counter reaches `cycle`.
    pub fn raise_at(&mut self, cycle: u64, line: u32) {
        let at = self.schedule.partition_point(|&(c, _)| c <= cycle);
        self.schedule.insert(at, (cycle, line));
    }

    /// Latches every scheduled raise whose cycle has arrived.
    fn service_schedule(&mut self, cycles: u64) {
        while let Some(&(c, line)) = self.schedule.first() {
            if c > cycles {
                break;
            }
            self.schedule.remove(0);
            self.raise(line);
        }
    }

    /// True when a line is pending (or a scheduled raise has arrived).
    pub fn due(&self, cycles: u64) -> bool {
        self.pending != 0 || self.schedule.first().is_some_and(|&(c, _)| c <= cycles)
    }

    /// True while `line` is latched but not yet taken.  Devices that gate
    /// their next completion on the previous interrupt actually reaching the
    /// guest (e.g. [`crate::virtio`]) poll this instead of re-raising, so no
    /// two deliveries ever collapse into one pending bit.
    pub fn is_pending(&self, line: u32) -> bool {
        self.pending & (1u64 << (line & 63)) != 0
    }

    /// Pops the lowest-numbered pending line, servicing the schedule first.
    pub fn take(&mut self, cycles: u64) -> Option<u32> {
        self.service_schedule(cycles);
        if self.pending == 0 {
            return None;
        }
        let line = self.pending.trailing_zeros();
        self.pending &= self.pending - 1;
        Some(line)
    }
}

/// Interrupt line the timer asserts.
pub const TIMER_LINE: u32 = 30;

/// The machine's event sources plus the CPU-side IRQ mask.
#[derive(Debug, Clone, Default)]
pub struct EventSources {
    /// The programmable timer (guest-visible via `CntTval`/`CntCtl`).
    pub timer: Timer,
    /// The interrupt latch (host/test-programmable).
    pub latch: InterruptLatch,
    /// True while an IRQ is being handled (set at delivery, cleared by
    /// `eret`); pending events are held off but not lost.
    masked: bool,
    /// IRQs delivered (i.e. [`EventSources::take`] returned a line).
    pub delivered: u64,
    /// Timer-originated IRQs delivered (subset of `delivered`).
    pub timer_delivered: u64,
}

impl EventSources {
    /// True when an unmasked event is ready at `cycles`.  Cheap; called per
    /// back-edge from `Runtime::loop_exit_pending`.
    pub fn due(&self, cycles: u64) -> bool {
        !self.masked && (self.timer.due(cycles) || self.latch.due(cycles))
    }

    /// Pops the next deliverable IRQ line, if any.  The timer wins ties so
    /// tick delivery order is deterministic.
    pub fn take(&mut self, cycles: u64) -> Option<u32> {
        if self.masked {
            return None;
        }
        if self.timer.take(cycles) {
            self.delivered += 1;
            self.timer_delivered += 1;
            return Some(TIMER_LINE);
        }
        let line = self.latch.take(cycles)?;
        self.delivered += 1;
        Some(line)
    }

    /// Sets or clears the CPU-side IRQ mask (set at delivery, cleared at
    /// `eret`).
    pub fn set_masked(&mut self, masked: bool) {
        self.masked = masked;
    }

    /// Current mask state.
    pub fn masked(&self) -> bool {
        self.masked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oneshot_fires_once() {
        let mut t = Timer::default();
        t.arm_oneshot(100);
        assert!(!t.due(99));
        assert!(t.due(100));
        assert!(t.take(150));
        assert!(!t.take(1000), "one-shot must not re-fire");
        assert_eq!(t.fires, 1);
    }

    #[test]
    fn periodic_reloads_from_previous_deadline() {
        let mut t = Timer::default();
        t.arm_periodic(100, 50);
        assert!(t.take(100));
        // Observed late at cycle 210: the elapsed 150 and 200 deadlines
        // collapse into this one delivery; the next is 250, not 260.
        assert!(t.take(210));
        assert!(!t.due(249));
        assert!(t.due(250));
        assert_eq!(t.fires, 2);
    }

    #[test]
    fn latch_orders_by_line_and_services_schedule() {
        let mut l = InterruptLatch::default();
        l.raise(5);
        l.raise(2);
        l.raise_at(300, 1);
        assert_eq!(l.take(0), Some(2));
        assert_eq!(l.take(0), Some(5));
        assert_eq!(l.take(0), None);
        assert!(l.due(300));
        assert_eq!(l.take(300), Some(1));
    }

    #[test]
    fn mask_holds_events_without_losing_them() {
        let mut ev = EventSources::default();
        ev.timer.arm_oneshot(10);
        ev.set_masked(true);
        assert!(!ev.due(20));
        assert_eq!(ev.take(20), None);
        ev.set_masked(false);
        assert!(ev.due(20));
        assert_eq!(ev.take(20), Some(TIMER_LINE));
        assert_eq!(ev.delivered, 1);
        assert_eq!(ev.timer_delivered, 1);
    }

    #[test]
    fn periodic_near_u64_max_disarms_instead_of_wrapping() {
        let mut t = Timer::default();
        t.arm_periodic(u64::MAX - 10, u64::MAX / 2);
        assert!(t.take(u64::MAX - 5));
        // The reload deadline would overflow; the timer must disarm, not wrap
        // around to a tiny cycle count and fire forever.
        assert!(!t.due(u64::MAX));
        assert!(!t.take(u64::MAX));
        assert_eq!(t.fires, 1);
    }

    #[test]
    fn periodic_far_behind_advances_in_constant_time() {
        let mut t = Timer::default();
        t.arm_periodic(1, 3);
        // Billions of elapsed periods collapse into one delivery without a
        // per-period loop.
        assert!(t.take(10_000_000_000));
        assert!(!t.due(10_000_000_002));
        assert!(t.due(10_000_000_003));
        assert_eq!(t.fires, 1);
    }

    #[test]
    fn is_pending_tracks_latch_state() {
        let mut l = InterruptLatch::default();
        assert!(!l.is_pending(7));
        l.raise(7);
        assert!(l.is_pending(7));
        assert!(!l.is_pending(8));
        assert_eq!(l.take(0), Some(7));
        assert!(!l.is_pending(7));
    }

    #[test]
    fn timer_wins_ties_deterministically() {
        let mut ev = EventSources::default();
        ev.timer.arm_oneshot(10);
        ev.latch.raise(3);
        assert_eq!(ev.take(10), Some(TIMER_LINE));
        assert_eq!(ev.take(10), Some(3));
    }
}
