//! A virtio-mmio block device with DMA completion, cycle-scheduled latency
//! and a deterministic fault-injection backend.
//!
//! This is the DMA half of the paper's device story: a block device whose
//! completions land in guest physical memory from *outside* the vCPU, behind
//! the translator's back.  The event/IRQ half (PR 6) gave the engines timers
//! and latched interrupt lines; this module gives them a device that walks
//! descriptor rings in guest memory, serves requests from an in-memory disk
//! image, and retires completions on a simulated-cycle deadline — the one
//! invalidation source a physically-indexed code cache has never faced.
//!
//! # Queue layout
//!
//! The ring layout follows the virtio split-virtqueue shape, widened to
//! 64-bit little-endian fields throughout so every field is one guest
//! `str`/`ldr` (the reproduction's guest ISA is 64-bit-centric; the layout
//! is a modelling choice, not an ISA restriction):
//!
//! * **Descriptor table** (`QUEUE_DESC`): `queue_size` entries of 32 bytes —
//!   `{ addr, len, flags, next }`.  `flags` bit 0 ([`DESC_F_NEXT`]) chains to
//!   `next`; bit 1 ([`DESC_F_WRITE`]) marks device-writable buffers.
//! * **Available ring** (`QUEUE_AVAIL`): `{ idx }` at +0, then
//!   `queue_size` slots of 8 bytes at +8: head descriptor indices, written
//!   by the guest at `idx % queue_size` before incrementing `idx`.
//! * **Used ring** (`QUEUE_USED`): `{ idx }` at +0, then `queue_size` slots
//!   of 16 bytes at +8: `{ id, len }`, written by the device in retirement
//!   order.  `idx` is incremented *after* the entry and all request data are
//!   visible, so a guest polling `used.idx` observes completed DMA.
//!
//! A request chain is `header desc → zero or more data descs → status desc`.
//! The header is 16 bytes: `{ type, sector }` with type [`REQ_READ`] or
//! [`REQ_WRITE`]; the final descriptor receives an 8-byte status word
//! ([`STATUS_OK`] / [`STATUS_IOERR`] / [`STATUS_UNSUPP`]).
//!
//! The device registers live in ordinary guest RAM at `mmio_base` (the
//! hypervisor pre-populates the identification words at attach time; the
//! guest writes the queue addresses and `IRQ_ENABLE`).  The queue kick is
//! the guest's `msr VblkNotify, xN` system register write, which reaches the
//! engines through the same `MSR_NOTIFY` helper as the timer registers.
//!
//! # Completion and determinism
//!
//! The two execution engines retire very different cycle counts for the
//! same guest instructions, so nothing architectural may depend on *when*
//! (in cycles) a completion lands — only on program order and counts:
//!
//! * Completion **order** is fixed at kick time: submission order, permuted
//!   only by the seeded [`FaultKind::Reordered`] swap (which is gated on the
//!   *next submission*, a program-order event, never on queue state).
//! * Cycle deadlines only gate when the queue head *may* retire; retirement
//!   is strictly in queue order.
//! * Write payloads are snapshotted from guest memory at kick (a precise
//!   program point — the kick is an `msr` that ends its block); the disk is
//!   mutated at retirement, in retirement order.  Read payloads are
//!   materialized from the disk at retirement, after every earlier write.
//! * An IRQ-raising completion holds back its successors until its latch
//!   line has actually been taken by the guest
//!   ([`InterruptLatch::is_pending`]), so deliveries never collapse and the
//!   per-run IRQ count equals the completion count exactly.
//!
//! Guests therefore synchronize on *counts* (spin on `used.idx`, count IRQ
//! deliveries), never on cycle timing, and both engines end byte-identical.
//!
//! # Fault-injection contract
//!
//! [`FaultPlan`] derives a per-request [`FaultKind`] from a seed and the
//! submission sequence number — pure, engine-independent, replayable.
//! Every injected fault is delivered to the guest as typed device state
//! (status word, short `used.len`, delayed or swapped completion); a fault
//! is **never** a host panic, and every submitted request retires exactly
//! one used-ring entry, so count-driven guests always terminate.  A
//! [`FaultKind::Reordered`] request waits for the next submission before it
//! may retire; programs that stop submitting must fence the tail of the
//! schedule with [`FaultPlan::exempt_after`] (the chaos harness exempts its
//! final, forced request this way).  Malformed descriptor chains — loops,
//! out-of-range indices, unreadable headers — are salvaged into an
//! [`STATUS_IOERR`] completion and counted in [`VirtioStats::desc_errors`].
//!
//! # External-invalidation path
//!
//! All retirement-time stores (data, status, used ring) go through
//! [`crate::PhysMem::write_external`], which reports every touched physical
//! page.  The engine runtime drains [`VirtioBlk::take_touched_pages`] and
//! intersects them with its translated-code page set: a DMA store that lands
//! on a page holding translations must invalidate them
//! (`CodeCache::invalidate_phys_page`, content-keyed reuse refusal) and
//! raise `loop_exit_pending` so a hot looping region reconciles promoted
//! carriers and exits at its next back-edge with a precise register file —
//! asynchronous external self-modifying code, with none of the
//! write-protection machinery that catches vCPU stores.

use std::collections::VecDeque;

use crate::event::InterruptLatch;
use crate::mem::{PhysAccessError, PhysMem};

/// Interrupt line the block device asserts (distinct from the timer's
/// [`crate::TIMER_LINE`] = 30 and the chaos harness's spurious lines 1..16).
pub const VBLK_LINE: u32 = 29;

/// Bytes per disk sector.
pub const SECTOR_SIZE: u64 = 512;

/// Default guest-physical address of the device register window.
pub const DEFAULT_MMIO_BASE: u64 = 0x0080_0000;

/// Device register offsets from `mmio_base` (one 64-bit word each).
pub mod mmio {
    /// Identification magic, pre-populated by the hypervisor ("virt").
    pub const MAGIC: u64 = 0x00;
    /// Device model version.
    pub const VERSION: u64 = 0x08;
    /// Virtio device id (2 = block).
    pub const DEVICE_ID: u64 = 0x10;
    /// Disk capacity in sectors.
    pub const CAPACITY: u64 = 0x18;
    /// Queue size (number of descriptors).
    pub const QUEUE_NUM: u64 = 0x20;
    /// Guest writes: descriptor table guest-physical address.
    pub const QUEUE_DESC: u64 = 0x28;
    /// Guest writes: available ring guest-physical address.
    pub const QUEUE_AVAIL: u64 = 0x30;
    /// Guest writes: used ring guest-physical address.
    pub const QUEUE_USED: u64 = 0x38;
    /// Guest writes: nonzero = raise the IRQ line per completion.
    pub const IRQ_ENABLE: u64 = 0x40;
}

/// Value of the [`mmio::MAGIC`] register: "virt" in LE bytes.
pub const MMIO_MAGIC: u64 = 0x7472_6976;
/// Value of the [`mmio::VERSION`] register.
pub const MMIO_VERSION: u64 = 2;
/// Value of the [`mmio::DEVICE_ID`] register (block device).
pub const MMIO_DEVICE_ID: u64 = 2;

/// Descriptor flag: chain continues at `next`.
pub const DESC_F_NEXT: u64 = 1;
/// Descriptor flag: buffer is device-writable.
pub const DESC_F_WRITE: u64 = 2;

/// Request header `type`: read sectors from disk into guest memory.
pub const REQ_READ: u64 = 0;
/// Request header `type`: write guest memory to disk sectors.
pub const REQ_WRITE: u64 = 1;

/// Status word: success.
pub const STATUS_OK: u64 = 0;
/// Status word: I/O error (bad address, injected write fault, bad chain).
pub const STATUS_IOERR: u64 = 1;
/// Status word: unsupported request (unknown type, corrupted chain walk).
pub const STATUS_UNSUPP: u64 = 2;

/// Longest descriptor chain the device will walk before declaring the
/// chain corrupt (bounds hostile `next` loops).
const MAX_CHAIN: usize = 32;

/// Attach-time configuration, shared verbatim by both execution engines so
/// their device models are identical.
#[derive(Debug, Clone)]
pub struct VirtioBlkConfig {
    /// Guest-physical base of the register window.
    pub mmio_base: u64,
    /// Latch line asserted per completion (when the guest enables IRQs).
    pub irq_line: u32,
    /// Number of descriptors in the queue.
    pub queue_size: u64,
    /// Simulated cycles between kick and completion eligibility.
    pub completion_latency: u64,
    /// Disk capacity in sectors.
    pub disk_sectors: u64,
    /// Seed for the procedurally-filled disk image.
    pub disk_seed: u64,
    /// Explicit disk image; overlaid on the seeded pattern from byte 0.
    pub disk_image: Option<Vec<u8>>,
    /// Seed for the fault-injection backend; `None` = fault-free.
    pub fault_seed: Option<u64>,
    /// Requests with sequence number `>= exempt_after` are never faulted
    /// (see the fault-injection contract in the module docs).
    pub exempt_after: u64,
}

impl Default for VirtioBlkConfig {
    fn default() -> Self {
        VirtioBlkConfig {
            mmio_base: DEFAULT_MMIO_BASE,
            irq_line: VBLK_LINE,
            queue_size: 64,
            completion_latency: 20_000,
            disk_sectors: 64,
            disk_seed: 1,
            disk_image: None,
            fault_seed: None,
            exempt_after: u64::MAX,
        }
    }
}

/// Per-request fault decision (see the module-level contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// No fault: normal request semantics.
    None,
    /// Read transfers only half the requested bytes (`used.len` reports the
    /// short count, status stays [`STATUS_OK`]).
    ShortRead,
    /// Write reaches no disk sector; status [`STATUS_IOERR`].
    WriteError,
    /// Multi-sector write applies only its first sector — a torn DMA write;
    /// status [`STATUS_IOERR`].
    TornWrite,
    /// Completion deadline stretched to 5x the configured latency.
    DelayedCompletion,
    /// Completion retires after the *next submitted* request instead of in
    /// submission order.
    Reordered,
    /// Device misparses the chain: no data transfer, status
    /// [`STATUS_UNSUPP`].
    CorruptChain,
}

fn xorshift64star(mut x: u64) -> u64 {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Seeded, replayable fault schedule: a pure function of
/// `(seed, sequence number, request direction)`.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    exempt_after: u64,
}

impl FaultPlan {
    /// Builds a plan from a seed; `exempt_after` fences the schedule tail.
    pub fn seeded(seed: u64, exempt_after: u64) -> Self {
        FaultPlan {
            seed: seed | 1,
            exempt_after,
        }
    }

    /// The fault decision for submission `seq` of the given direction.
    pub fn decide(&self, seq: u64, is_write: bool) -> FaultKind {
        if seq >= self.exempt_after {
            return FaultKind::None;
        }
        // Top four bits of the mix: the multiply's low bits correlate
        // across adjacent sequence numbers, the high bits do not.
        let h = xorshift64star(self.seed ^ (seq + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 60;
        match (h, is_write) {
            (8, false) => FaultKind::ShortRead,
            (8, true) => FaultKind::TornWrite,
            (9, true) => FaultKind::WriteError,
            (10, _) => FaultKind::DelayedCompletion,
            (11, _) => FaultKind::Reordered,
            (12, _) => FaultKind::CorruptChain,
            _ => FaultKind::None,
        }
    }
}

/// Device counters; sampled into the engines' `RunStats`.
#[derive(Debug, Clone, Default)]
pub struct VirtioStats {
    /// Queue notifications received (`msr VblkNotify`).
    pub kicks: u64,
    /// Requests submitted (available-ring entries consumed).
    pub submissions: u64,
    /// Completions retired (used-ring entries written).
    pub completions: u64,
    /// IRQ raises on the device line.
    pub irqs_raised: u64,
    /// Requests whose fault decision was not [`FaultKind::None`].
    pub fault_injections: u64,
    /// Bytes stored into guest memory through the external-store path.
    pub dma_bytes: u64,
    /// Completions retired with a non-[`STATUS_OK`] status.
    pub io_errors: u64,
    /// Malformed descriptor chains salvaged into error completions.
    pub desc_errors: u64,
}

/// One in-flight request, fully decided at kick time.
#[derive(Debug)]
struct Completion {
    seq: u64,
    head: u64,
    deadline: u64,
    raise_irq: bool,
    used_gpa: u64,
    status: u64,
    status_gpa: Option<u64>,
    used_len: u64,
    /// `(guest gpa, disk offset, len)` copies materialized at retirement.
    reads: Vec<(u64, u64, u64)>,
    /// `(disk offset, bytes)` snapshot applied to the disk at retirement.
    write: Option<(u64, Vec<u8>)>,
    /// Gated until the next request has been submitted (Reordered swap).
    wait_next_submit: bool,
}

/// The virtio-mmio block device.  One instance per engine run; both engines
/// construct it from the same [`VirtioBlkConfig`], so device state evolves
/// identically under identical guest programs.
#[derive(Debug)]
pub struct VirtioBlk {
    cfg: VirtioBlkConfig,
    /// Host-physical address of guest-physical 0.
    guest_base: u64,
    /// Guest RAM size in bytes; DMA beyond this is a typed error.
    guest_ram: u64,
    disk: Vec<u8>,
    fault: Option<FaultPlan>,
    /// Next available-ring index to consume.
    last_avail: u64,
    /// Used-ring entries written so far (device-side `used.idx`).
    used_count: u64,
    pending: VecDeque<Completion>,
    /// Guest-physical page bases touched by retirement DMA, drained by the
    /// engine runtime for code invalidation.
    touched: Vec<u64>,
    /// Device counters.
    pub stats: VirtioStats,
}

impl VirtioBlk {
    /// Builds the device.  `guest_base` is the host-physical address where
    /// guest-physical 0 is mapped; `guest_ram` bounds DMA.
    pub fn new(cfg: VirtioBlkConfig, guest_base: u64, guest_ram: u64) -> Self {
        assert_eq!(guest_base % crate::paging::PAGE_SIZE, 0);
        let len = (cfg.disk_sectors * SECTOR_SIZE) as usize;
        let mut disk = vec![0u8; len];
        for (w, chunk) in disk.chunks_mut(8).enumerate() {
            let v = xorshift64star(cfg.disk_seed.wrapping_add(0x5EC7 + w as u64));
            chunk.copy_from_slice(&v.to_le_bytes()[..chunk.len()]);
        }
        if let Some(image) = &cfg.disk_image {
            let n = image.len().min(len);
            disk[..n].copy_from_slice(&image[..n]);
        }
        let fault = cfg
            .fault_seed
            .map(|s| FaultPlan::seeded(s, cfg.exempt_after));
        VirtioBlk {
            cfg,
            guest_base,
            guest_ram,
            disk,
            fault,
            last_avail: 0,
            used_count: 0,
            pending: VecDeque::new(),
            touched: Vec::new(),
            stats: VirtioStats::default(),
        }
    }

    /// Pre-populates the identification registers in guest RAM.  Called once
    /// at attach time, before the guest runs.
    pub fn init_mmio(&self, mem: &mut PhysMem) -> Result<(), PhysAccessError> {
        let base = self.guest_base + self.cfg.mmio_base;
        mem.write_u64(base + mmio::MAGIC, MMIO_MAGIC)?;
        mem.write_u64(base + mmio::VERSION, MMIO_VERSION)?;
        mem.write_u64(base + mmio::DEVICE_ID, MMIO_DEVICE_ID)?;
        mem.write_u64(base + mmio::CAPACITY, self.cfg.disk_sectors)?;
        mem.write_u64(base + mmio::QUEUE_NUM, self.cfg.queue_size)?;
        Ok(())
    }

    /// The attach-time configuration.
    pub fn config(&self) -> &VirtioBlkConfig {
        &self.cfg
    }

    /// A view of the disk image (tests inspect write retirement).
    pub fn disk(&self) -> &[u8] {
        &self.disk
    }

    fn reg(&self, mem: &PhysMem, off: u64) -> Option<u64> {
        mem.read_u64(self.guest_base + self.cfg.mmio_base + off)
            .ok()
    }

    /// Queue notification: consumes new available-ring entries and enqueues
    /// their completions.  Called from the engines' `MSR_NOTIFY` helper, so
    /// it executes at a precise guest program point on every engine.
    pub fn kick(&mut self, mem: &mut PhysMem, now: u64) {
        self.stats.kicks += 1;
        let (Some(desc), Some(avail), Some(used), Some(irq_en)) = (
            self.reg(mem, mmio::QUEUE_DESC),
            self.reg(mem, mmio::QUEUE_AVAIL),
            self.reg(mem, mmio::QUEUE_USED),
            self.reg(mem, mmio::IRQ_ENABLE),
        ) else {
            self.stats.desc_errors += 1;
            return;
        };
        let Ok(avail_idx) = mem.read_u64(self.guest_base + avail) else {
            self.stats.desc_errors += 1;
            return;
        };
        // A garbage avail.idx consumes at most one queue's worth of heads:
        // deterministic junk, never an unbounded walk.
        let n = avail_idx
            .wrapping_sub(self.last_avail)
            .min(self.cfg.queue_size);
        for _ in 0..n {
            let slot = self.last_avail % self.cfg.queue_size;
            let head = mem
                .read_u64(self.guest_base + avail + 8 + slot * 8)
                .unwrap_or(u64::MAX);
            self.last_avail += 1;
            self.submit(mem, desc, used, head, irq_en != 0, now);
        }
    }

    /// Reads descriptor `idx`, if it is in range and readable.
    fn desc(&self, mem: &PhysMem, table: u64, idx: u64) -> Option<[u64; 4]> {
        if idx >= self.cfg.queue_size {
            return None;
        }
        let base = self.guest_base + table + idx * 32;
        Some([
            mem.read_u64(base).ok()?,
            mem.read_u64(base + 8).ok()?,
            mem.read_u64(base + 16).ok()?,
            mem.read_u64(base + 24).ok()?,
        ])
    }

    /// True when `[gpa, gpa+len)` lies inside guest RAM.
    fn in_ram(&self, gpa: u64, len: u64) -> bool {
        gpa.checked_add(len)
            .is_some_and(|end| end <= self.guest_ram)
    }

    fn enqueue(&mut self, c: Completion) {
        // A Reordered predecessor is still pending here by construction (it
        // is gated on *this* submission), so "insert before it" is a
        // deterministic, program-order operation.
        let at = self
            .pending
            .iter()
            .position(|p| p.wait_next_submit && p.seq + 1 == c.seq)
            .unwrap_or(self.pending.len());
        self.pending.insert(at, c);
    }

    /// Parses and enqueues one request chain.  Every path — including every
    /// malformed one — produces exactly one completion, so `used.idx`
    /// eventually reaches the submission count and count-driven guests
    /// always terminate.
    fn submit(&mut self, mem: &mut PhysMem, table: u64, used: u64, head: u64, irq: bool, now: u64) {
        let seq = self.stats.submissions;
        self.stats.submissions += 1;
        let deadline = now.saturating_add(self.cfg.completion_latency);
        let mut c = Completion {
            seq,
            head,
            deadline,
            raise_irq: irq,
            used_gpa: used,
            status: STATUS_IOERR,
            status_gpa: None,
            used_len: 0,
            reads: Vec::new(),
            write: None,
            wait_next_submit: false,
        };

        // Walk the chain, bounded against hostile `next` loops.
        let mut chain = Vec::new();
        let mut idx = head;
        loop {
            let Some(d) = self.desc(mem, table, idx) else {
                self.stats.desc_errors += 1;
                self.enqueue(c);
                return;
            };
            chain.push(d);
            if d[2] & DESC_F_NEXT == 0 {
                break;
            }
            if chain.len() >= MAX_CHAIN {
                self.stats.desc_errors += 1;
                self.enqueue(c);
                return;
            }
            idx = d[3];
        }
        // Salvage the status address as early as possible so even malformed
        // requests report a typed error to the guest.
        let last = chain[chain.len() - 1];
        if last[2] & DESC_F_WRITE != 0 && last[1] >= 8 && self.in_ram(last[0], 8) {
            c.status_gpa = Some(last[0]);
        }
        if chain.len() < 2 || chain[0][1] < 16 || !self.in_ram(chain[0][0], 16) {
            self.stats.desc_errors += 1;
            self.enqueue(c);
            return;
        }
        let hdr = self.guest_base + chain[0][0];
        let (Ok(req_type), Ok(sector)) = (mem.read_u64(hdr), mem.read_u64(hdr + 8)) else {
            self.stats.desc_errors += 1;
            self.enqueue(c);
            return;
        };
        let is_write = req_type == REQ_WRITE;
        if !is_write && req_type != REQ_READ {
            c.status = STATUS_UNSUPP;
            self.enqueue(c);
            return;
        }

        let fault = self
            .fault
            .as_ref()
            .map_or(FaultKind::None, |f| f.decide(seq, is_write));
        if fault != FaultKind::None {
            self.stats.fault_injections += 1;
        }
        match fault {
            FaultKind::CorruptChain => {
                c.status = STATUS_UNSUPP;
                self.enqueue(c);
                return;
            }
            FaultKind::DelayedCompletion => {
                c.deadline = now.saturating_add(self.cfg.completion_latency.saturating_mul(5));
            }
            FaultKind::Reordered => c.wait_next_submit = true,
            _ => {}
        }

        // Validate the data segments and the disk range up front so
        // retirement cannot fail: a bad request is a typed IOERR now.
        let segs: Vec<(u64, u64)> = chain[1..chain.len() - 1]
            .iter()
            .map(|d| (d[0], d[1]))
            .collect();
        let total: u64 = segs.iter().map(|&(_, l)| l).sum();
        let disk_off = sector.checked_mul(SECTOR_SIZE);
        let disk_ok = disk_off
            .and_then(|o| o.checked_add(total))
            .is_some_and(|end| end <= self.disk.len() as u64);
        let ram_ok = segs.iter().all(|&(gpa, len)| self.in_ram(gpa, len));
        if !disk_ok || !ram_ok {
            self.enqueue(c); // status already IOERR
            return;
        }
        let disk_off = disk_off.unwrap();

        if is_write {
            match fault {
                FaultKind::WriteError => {} // no disk mutation, status IOERR
                FaultKind::TornWrite => {
                    // Snapshot only the first sector of a multi-sector
                    // write: the torn prefix lands, the tail never does.
                    let torn = total.min(SECTOR_SIZE);
                    c.write = Some((disk_off, self.snapshot(mem, &segs, torn)));
                }
                _ => {
                    c.status = STATUS_OK;
                    c.write = Some((disk_off, self.snapshot(mem, &segs, total)));
                }
            }
        } else {
            let transfer = if fault == FaultKind::ShortRead {
                total / 2
            } else {
                total
            };
            c.status = STATUS_OK;
            c.used_len = transfer;
            let (mut off, mut left) = (disk_off, transfer);
            for &(gpa, len) in &segs {
                if left == 0 {
                    break;
                }
                let take = len.min(left);
                c.reads.push((gpa, off, take));
                off += take;
                left -= take;
            }
        }
        self.enqueue(c);
    }

    /// Copies up to `limit` bytes of the scatter list out of guest memory.
    fn snapshot(&self, mem: &PhysMem, segs: &[(u64, u64)], limit: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(limit as usize);
        let mut left = limit;
        for &(gpa, len) in segs {
            if left == 0 {
                break;
            }
            let take = len.min(left) as usize;
            let mut buf = vec![0u8; take];
            // Bounds were validated at submit; a failure here would be a
            // harness bug, still handled as zero-fill rather than a panic.
            let _ = mem.read(self.guest_base + gpa, &mut buf);
            out.extend_from_slice(&buf);
            left -= take as u64;
        }
        out
    }

    /// True when the queue head may retire at `now`: deadline passed, not
    /// gated on an undelivered IRQ, not gated on a next submission.  Cheap;
    /// polled per back-edge from `Runtime::loop_exit_pending` and from the
    /// engines' chained dispatch loops.
    pub fn due(&self, now: u64, latch: &InterruptLatch) -> bool {
        self.pending.front().is_some_and(|c| {
            c.deadline <= now
                && !(c.wait_next_submit && c.seq + 1 >= self.stats.submissions)
                && !(c.raise_irq && latch.is_pending(self.cfg.irq_line))
        })
    }

    /// Retires every eligible completion in queue order.  Returns true when
    /// anything retired (the caller must then reconcile touched pages with
    /// its code cache before re-entering translated code).
    pub fn poll(&mut self, mem: &mut PhysMem, now: u64, latch: &mut InterruptLatch) -> bool {
        let mut any = false;
        while self.due(now, latch) {
            let c = self.pending.pop_front().expect("due() implies a head");
            self.retire(mem, c, latch);
            any = true;
        }
        any
    }

    /// DMA store through the external path, accumulating touched pages in
    /// guest-physical page numbers.
    fn dma(&mut self, mem: &mut PhysMem, gpa: u64, bytes: &[u8]) {
        let mut host_pages = Vec::new();
        if mem
            .write_external(self.guest_base + gpa, bytes, &mut host_pages)
            .is_err()
        {
            // Validated at submit; an unreachable target at retirement is
            // salvaged as a dropped transfer, never a panic.
            self.stats.desc_errors += 1;
            return;
        }
        self.stats.dma_bytes += bytes.len() as u64;
        for hp in host_pages {
            let gp = hp - self.guest_base;
            if self.touched.last() != Some(&gp) {
                self.touched.push(gp);
            }
        }
    }

    /// Applies one completion: disk mutation, guest DMA, status, used-ring
    /// entry, then `used.idx`, then the IRQ — so a guest that observes
    /// either signal is guaranteed to see the data.
    fn retire(&mut self, mem: &mut PhysMem, c: Completion, latch: &mut InterruptLatch) {
        if let Some((off, bytes)) = &c.write {
            let (off, n) = (*off as usize, bytes.len());
            if off + n <= self.disk.len() {
                self.disk[off..off + n].copy_from_slice(bytes);
            }
        }
        for &(gpa, off, len) in &c.reads {
            let buf = self.disk[off as usize..(off + len) as usize].to_vec();
            self.dma(mem, gpa, &buf);
        }
        if let Some(sa) = c.status_gpa {
            self.dma(mem, sa, &c.status.to_le_bytes());
        }
        let slot = self.used_count % self.cfg.queue_size;
        let ubase = c.used_gpa + 8 + slot * 16;
        self.dma(mem, ubase, &c.head.to_le_bytes());
        self.dma(mem, ubase + 8, &c.used_len.to_le_bytes());
        self.used_count += 1;
        let count = self.used_count;
        self.dma(mem, c.used_gpa, &count.to_le_bytes());
        self.stats.completions += 1;
        if c.status != STATUS_OK {
            self.stats.io_errors += 1;
        }
        if c.raise_irq {
            latch.raise(self.cfg.irq_line);
            self.stats.irqs_raised += 1;
        }
    }

    /// Drains the guest-physical page bases touched by retirement DMA since
    /// the last drain.
    pub fn take_touched_pages(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.touched)
    }

    /// In-flight request count (tests assert drain).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GUEST_BASE: u64 = 0x10_0000;
    const RAM: u64 = 0x10_0000; // 1 MiB of guest RAM
    const DESC: u64 = 0x2000;
    const AVAIL: u64 = 0x3000;
    const USED: u64 = 0x4000;
    const HDR: u64 = 0x5000;
    const STATUS: u64 = 0x5100;
    const BUF: u64 = 0x6000;

    fn setup(mut cfg: VirtioBlkConfig) -> (PhysMem, VirtioBlk, InterruptLatch) {
        cfg.mmio_base = 0x1000; // inside the 1 MiB test guest RAM
        let mut mem = PhysMem::new(GUEST_BASE + RAM);
        let dev = VirtioBlk::new(cfg, GUEST_BASE, RAM);
        dev.init_mmio(&mut mem).unwrap();
        // Point the queue registers at our rings (as the guest would).
        let mb = GUEST_BASE + dev.config().mmio_base;
        mem.write_u64(mb + mmio::QUEUE_DESC, DESC).unwrap();
        mem.write_u64(mb + mmio::QUEUE_AVAIL, AVAIL).unwrap();
        mem.write_u64(mb + mmio::QUEUE_USED, USED).unwrap();
        mem.write_u64(mb + mmio::IRQ_ENABLE, 0).unwrap();
        (mem, dev, InterruptLatch::default())
    }

    fn write_desc(mem: &mut PhysMem, i: u64, addr: u64, len: u64, flags: u64, next: u64) {
        let b = GUEST_BASE + DESC + i * 32;
        mem.write_u64(b, addr).unwrap();
        mem.write_u64(b + 8, len).unwrap();
        mem.write_u64(b + 16, flags).unwrap();
        mem.write_u64(b + 24, next).unwrap();
    }

    /// Builds a 3-descriptor chain at indices `d0..d0+2` and publishes it as
    /// the next available entry.
    #[allow(clippy::too_many_arguments)]
    fn publish_request(
        mem: &mut PhysMem,
        slot: u64,
        d0: u64,
        req_type: u64,
        sector: u64,
        buf: u64,
        len: u64,
        status: u64,
    ) {
        let hdr = HDR + slot * 16;
        mem.write_u64(GUEST_BASE + hdr, req_type).unwrap();
        mem.write_u64(GUEST_BASE + hdr + 8, sector).unwrap();
        let wr = if req_type == REQ_READ {
            DESC_F_WRITE
        } else {
            0
        };
        write_desc(mem, d0, hdr, 16, DESC_F_NEXT, d0 + 1);
        write_desc(mem, d0 + 1, buf, len, DESC_F_NEXT | wr, d0 + 2);
        write_desc(mem, d0 + 2, status, 8, DESC_F_WRITE, 0);
        mem.write_u64(GUEST_BASE + AVAIL + 8 + slot * 8, d0)
            .unwrap();
        mem.write_u64(GUEST_BASE + AVAIL, slot + 1).unwrap();
    }

    #[test]
    fn read_request_completes_with_disk_data() {
        let cfg = VirtioBlkConfig {
            completion_latency: 100,
            ..VirtioBlkConfig::default()
        };
        let (mut mem, mut dev, mut latch) = setup(cfg);
        publish_request(&mut mem, 0, 0, REQ_READ, 3, BUF, 64, STATUS);
        dev.kick(&mut mem, 10);
        assert_eq!(dev.in_flight(), 1);
        assert!(!dev.due(50, &latch), "latency must gate retirement");
        assert!(dev.due(110, &latch));
        assert!(dev.poll(&mut mem, 110, &mut latch));
        let mut got = [0u8; 64];
        mem.read(GUEST_BASE + BUF, &mut got).unwrap();
        assert_eq!(&got[..], &dev.disk()[3 * 512..3 * 512 + 64]);
        assert_eq!(mem.read_u64(GUEST_BASE + STATUS).unwrap(), STATUS_OK);
        assert_eq!(mem.read_u64(GUEST_BASE + USED).unwrap(), 1);
        assert_eq!(mem.read_u64(GUEST_BASE + USED + 8).unwrap(), 0); // id
        assert_eq!(mem.read_u64(GUEST_BASE + USED + 16).unwrap(), 64); // len
        assert_eq!(dev.stats.completions, 1);
        assert_eq!(dev.stats.io_errors, 0);
        assert_eq!(latch.raises, 0, "polling mode must not raise");
    }

    #[test]
    fn write_then_read_round_trips_through_disk() {
        let cfg = VirtioBlkConfig {
            completion_latency: 10,
            ..VirtioBlkConfig::default()
        };
        let (mut mem, mut dev, mut latch) = setup(cfg);
        let payload = [0x5Au8; 512];
        mem.write(GUEST_BASE + BUF, &payload).unwrap();
        publish_request(&mut mem, 0, 0, REQ_WRITE, 7, BUF, 512, STATUS);
        publish_request(&mut mem, 1, 3, REQ_READ, 7, BUF + 0x1000, 512, STATUS + 8);
        dev.kick(&mut mem, 0);
        // Disk mutates only at retirement, and the read (submitted second)
        // retires after the write: it must observe the new bytes.
        assert!(dev.poll(&mut mem, 1000, &mut latch));
        assert_eq!(&dev.disk()[7 * 512..8 * 512], &payload[..]);
        let mut got = [0u8; 512];
        mem.read(GUEST_BASE + BUF + 0x1000, &mut got).unwrap();
        assert_eq!(got, payload);
        assert_eq!(mem.read_u64(GUEST_BASE + USED).unwrap(), 2);
    }

    #[test]
    fn irq_mode_gates_next_completion_on_delivery() {
        let cfg = VirtioBlkConfig {
            completion_latency: 10,
            ..VirtioBlkConfig::default()
        };
        let (mut mem, mut dev, mut latch) = setup(cfg);
        let mb = GUEST_BASE + dev.config().mmio_base;
        mem.write_u64(mb + mmio::IRQ_ENABLE, 1).unwrap();
        publish_request(&mut mem, 0, 0, REQ_READ, 0, BUF, 8, STATUS);
        publish_request(&mut mem, 1, 3, REQ_READ, 1, BUF + 64, 8, STATUS + 8);
        dev.kick(&mut mem, 0);
        assert!(dev.poll(&mut mem, 100, &mut latch));
        // Only the first retired: its IRQ is still pending.
        assert_eq!(dev.stats.completions, 1);
        assert!(latch.is_pending(VBLK_LINE));
        assert!(!dev.due(100, &latch));
        assert_eq!(latch.take(100), Some(VBLK_LINE));
        assert!(dev.poll(&mut mem, 100, &mut latch));
        assert_eq!(dev.stats.completions, 2);
        assert_eq!(dev.stats.irqs_raised, 2);
    }

    #[test]
    fn bad_addresses_are_typed_ioerr_never_a_panic() {
        let cfg = VirtioBlkConfig {
            completion_latency: 1,
            ..VirtioBlkConfig::default()
        };
        let (mut mem, mut dev, mut latch) = setup(cfg);
        // Data buffer far outside guest RAM.
        publish_request(&mut mem, 0, 0, REQ_READ, 0, 0xFFFF_F000, 64, STATUS);
        // Sector beyond disk capacity.
        publish_request(&mut mem, 1, 3, REQ_READ, 1 << 40, BUF, 64, STATUS + 8);
        // Unknown request type.
        publish_request(&mut mem, 2, 6, 99, 0, BUF, 64, STATUS + 16);
        dev.kick(&mut mem, 0);
        assert!(dev.poll(&mut mem, 10, &mut latch));
        assert_eq!(mem.read_u64(GUEST_BASE + STATUS).unwrap(), STATUS_IOERR);
        assert_eq!(mem.read_u64(GUEST_BASE + STATUS + 8).unwrap(), STATUS_IOERR);
        assert_eq!(
            mem.read_u64(GUEST_BASE + STATUS + 16).unwrap(),
            STATUS_UNSUPP
        );
        // All three still produced used entries: count-driven guests finish.
        assert_eq!(mem.read_u64(GUEST_BASE + USED).unwrap(), 3);
        assert_eq!(dev.stats.io_errors, 3);
    }

    #[test]
    fn corrupt_chain_loop_is_bounded_and_salvaged() {
        let cfg = VirtioBlkConfig {
            completion_latency: 1,
            ..VirtioBlkConfig::default()
        };
        let (mut mem, mut dev, mut latch) = setup(cfg);
        // Descriptor that chains to itself forever.
        write_desc(&mut mem, 0, HDR, 16, DESC_F_NEXT, 0);
        mem.write_u64(GUEST_BASE + AVAIL + 8, 0).unwrap();
        mem.write_u64(GUEST_BASE + AVAIL, 1).unwrap();
        // And one with an out-of-range head index.
        mem.write_u64(GUEST_BASE + AVAIL + 16, 9999).unwrap();
        mem.write_u64(GUEST_BASE + AVAIL, 2).unwrap();
        dev.kick(&mut mem, 0);
        assert_eq!(dev.stats.desc_errors, 2);
        assert!(dev.poll(&mut mem, 10, &mut latch));
        assert_eq!(mem.read_u64(GUEST_BASE + USED).unwrap(), 2);
    }

    #[test]
    fn fault_plan_is_deterministic_and_typed() {
        let plan = FaultPlan::seeded(0xFA_u64, u64::MAX);
        let a: Vec<FaultKind> = (0..64).map(|s| plan.decide(s, false)).collect();
        let b: Vec<FaultKind> = (0..64).map(|s| plan.decide(s, false)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&k| k != FaultKind::None));
        let fenced = FaultPlan::seeded(0xFA_u64, 4);
        assert!((4..64).all(|s| fenced.decide(s, true) == FaultKind::None));
    }

    #[test]
    fn injected_faults_deliver_typed_status() {
        // Find a seed whose first two write decisions are TornWrite and
        // WriteError deterministically by scanning.
        let mut seed = None;
        for s in (1..2_000_000u64).step_by(2) {
            let p = FaultPlan::seeded(s, u64::MAX);
            if p.decide(0, true) == FaultKind::TornWrite
                && p.decide(1, true) == FaultKind::WriteError
                && p.decide(2, false) == FaultKind::ShortRead
            {
                seed = Some(s);
                break;
            }
        }
        let seed = seed.expect("seed scan must find the schedule");
        let cfg = VirtioBlkConfig {
            completion_latency: 1,
            fault_seed: Some(seed),
            ..VirtioBlkConfig::default()
        };
        let (mut mem, mut dev, mut latch) = setup(cfg);
        let payload = [0xEEu8; 1024];
        mem.write(GUEST_BASE + BUF, &payload).unwrap();
        let before: Vec<u8> = dev.disk()[..3 * 512].to_vec();
        // Torn multi-sector write: only sector 0 lands, status IOERR.
        publish_request(&mut mem, 0, 0, REQ_WRITE, 0, BUF, 1024, STATUS);
        // Write error: sector 2 untouched, status IOERR.
        publish_request(&mut mem, 1, 3, REQ_WRITE, 2, BUF, 512, STATUS + 8);
        // Short read: used.len is half, status OK.
        publish_request(&mut mem, 2, 6, REQ_READ, 4, BUF + 0x2000, 512, STATUS + 16);
        dev.kick(&mut mem, 0);
        assert!(dev.poll(&mut mem, 100, &mut latch));
        assert_eq!(dev.stats.fault_injections, 3);
        assert_eq!(&dev.disk()[..512], &payload[..512], "torn prefix lands");
        assert_eq!(
            &dev.disk()[512..1024],
            &before[512..1024],
            "torn tail does not"
        );
        assert_eq!(&dev.disk()[2 * 512..3 * 512], &before[2 * 512..3 * 512]);
        assert_eq!(mem.read_u64(GUEST_BASE + STATUS).unwrap(), STATUS_IOERR);
        assert_eq!(mem.read_u64(GUEST_BASE + STATUS + 8).unwrap(), STATUS_IOERR);
        assert_eq!(mem.read_u64(GUEST_BASE + STATUS + 16).unwrap(), STATUS_OK);
        assert_eq!(
            mem.read_u64(GUEST_BASE + USED + 8 + 2 * 16 + 8).unwrap(),
            256
        );
    }

    #[test]
    fn reordered_completion_waits_for_next_submission_then_swaps() {
        let mut seed = None;
        for s in 1..20_000u64 {
            let p = FaultPlan::seeded(s, u64::MAX);
            if p.decide(0, false) == FaultKind::Reordered && p.decide(1, false) == FaultKind::None {
                seed = Some(s);
                break;
            }
        }
        let cfg = VirtioBlkConfig {
            completion_latency: 1,
            fault_seed: Some(seed.expect("seed scan")),
            ..VirtioBlkConfig::default()
        };
        let (mut mem, mut dev, mut latch) = setup(cfg);
        publish_request(&mut mem, 0, 0, REQ_READ, 0, BUF, 8, STATUS);
        dev.kick(&mut mem, 0);
        // Gated: deadline long past, but the next submission hasn't arrived.
        assert!(!dev.due(1_000_000, &latch));
        assert!(!dev.poll(&mut mem, 1_000_000, &mut latch));
        publish_request(&mut mem, 1, 3, REQ_READ, 1, BUF + 64, 8, STATUS + 8);
        dev.kick(&mut mem, 0);
        assert!(dev.poll(&mut mem, 1_000_000, &mut latch));
        // Request 1 retired first (used entry id 3), then request 0.
        assert_eq!(mem.read_u64(GUEST_BASE + USED).unwrap(), 2);
        assert_eq!(mem.read_u64(GUEST_BASE + USED + 8).unwrap(), 3);
        assert_eq!(mem.read_u64(GUEST_BASE + USED + 8 + 16).unwrap(), 0);
    }

    #[test]
    fn huge_latency_saturates_instead_of_wrapping() {
        let cfg = VirtioBlkConfig {
            completion_latency: u64::MAX,
            ..VirtioBlkConfig::default()
        };
        let (mut mem, mut dev, latch) = setup(cfg);
        publish_request(&mut mem, 0, 0, REQ_READ, 0, BUF, 8, STATUS);
        dev.kick(&mut mem, 1000);
        // A wrapped deadline would be tiny and fire immediately; saturation
        // means it never becomes due within any realistic run.
        assert!(!dev.due(u64::MAX - 1, &latch));
    }

    #[test]
    fn retirement_dma_reports_touched_guest_pages() {
        let cfg = VirtioBlkConfig {
            completion_latency: 1,
            ..VirtioBlkConfig::default()
        };
        let (mut mem, mut dev, mut latch) = setup(cfg);
        publish_request(&mut mem, 0, 0, REQ_READ, 0, 0x8FF0, 0x20, STATUS);
        dev.kick(&mut mem, 0);
        assert!(dev.poll(&mut mem, 10, &mut latch));
        let pages = dev.take_touched_pages();
        // Data spans 0x8000 and 0x9000; status and used ring add theirs.
        assert!(pages.contains(&0x8000) && pages.contains(&0x9000));
        assert!(pages.contains(&(STATUS & !0xFFF)));
        assert!(pages.contains(&(USED & !0xFFF)));
        assert!(dev.take_touched_pages().is_empty(), "drain is one-shot");
    }
}
