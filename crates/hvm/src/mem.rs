//! Physical memory of the host virtual machine.
//!
//! Modelled as a single flat RAM region (as KVM presents to a guest that
//! requested one memory slot) with bounds-checked byte/word accessors.  Both
//! the page walker and the interpreter go through this type, and the
//! hypervisor layer uses it directly to load the unikernel image and the
//! emulated guest physical memory (Fig. 15 of the paper).

/// Flat physical memory for the host VM.
#[derive(Debug)]
pub struct PhysMem {
    bytes: Vec<u8>,
}

/// Error returned for out-of-range physical accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysAccessError {
    /// The faulting physical address.
    pub addr: u64,
    /// The access size in bytes.
    pub size: u64,
}

impl std::fmt::Display for PhysAccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "physical access out of range: {:#x} (+{})",
            self.addr, self.size
        )
    }
}

impl std::error::Error for PhysAccessError {}

impl PhysMem {
    /// Allocates `size` bytes of zeroed physical memory.
    pub fn new(size: u64) -> Self {
        PhysMem {
            bytes: vec![0; size as usize],
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn check(&self, addr: u64, size: u64) -> Result<usize, PhysAccessError> {
        let end = addr
            .checked_add(size)
            .ok_or(PhysAccessError { addr, size })?;
        if end > self.bytes.len() as u64 {
            return Err(PhysAccessError { addr, size });
        }
        Ok(addr as usize)
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: u64, buf: &mut [u8]) -> Result<(), PhysAccessError> {
        let a = self.check(addr, buf.len() as u64)?;
        buf.copy_from_slice(&self.bytes[a..a + buf.len()]);
        Ok(())
    }

    /// Writes `buf` starting at `addr`.
    pub fn write(&mut self, addr: u64, buf: &[u8]) -> Result<(), PhysAccessError> {
        let a = self.check(addr, buf.len() as u64)?;
        self.bytes[a..a + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    /// Reads an unsigned little-endian value of `size` bytes (1, 2, 4 or 8).
    pub fn read_uint(&self, addr: u64, size: u64) -> Result<u64, PhysAccessError> {
        let a = self.check(addr, size)?;
        let mut v = 0u64;
        for i in 0..size as usize {
            v |= (self.bytes[a + i] as u64) << (8 * i);
        }
        Ok(v)
    }

    /// Writes an unsigned little-endian value of `size` bytes (1, 2, 4 or 8).
    pub fn write_uint(&mut self, addr: u64, value: u64, size: u64) -> Result<(), PhysAccessError> {
        let a = self.check(addr, size)?;
        for i in 0..size as usize {
            self.bytes[a + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Reads a 64-bit little-endian word.
    pub fn read_u64(&self, addr: u64) -> Result<u64, PhysAccessError> {
        self.read_uint(addr, 8)
    }

    /// Writes a 64-bit little-endian word.
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), PhysAccessError> {
        self.write_uint(addr, value, 8)
    }

    /// Reads a 128-bit value as a `[u64; 2]` (low, high).
    pub fn read_u128(&self, addr: u64) -> Result<[u64; 2], PhysAccessError> {
        // Check the full 16-byte span up front so an `addr` near `u64::MAX`
        // cannot overflow the high-half address computation.
        let a = self.check(addr, 16)? as u64;
        Ok([self.read_uint(a, 8)?, self.read_uint(a + 8, 8)?])
    }

    /// Writes a 128-bit value from a `[u64; 2]` (low, high).
    pub fn write_u128(&mut self, addr: u64, value: [u64; 2]) -> Result<(), PhysAccessError> {
        let a = self.check(addr, 16)? as u64;
        self.write_uint(a, value[0], 8)?;
        self.write_uint(a + 8, value[1], 8)
    }

    /// Fills `[addr, addr+len)` with a byte value.
    pub fn fill(&mut self, addr: u64, len: u64, value: u8) -> Result<(), PhysAccessError> {
        let a = self.check(addr, len)?;
        self.bytes[a..a + len as usize].fill(value);
        Ok(())
    }

    /// Device-originated ("external") store: writes `buf` at `addr` and
    /// records the 4 KiB page base of every page the write touched in
    /// `touched_pages` (deduplicated against its current tail).
    ///
    /// This is the DMA path: stores that land in memory from *outside* the
    /// vCPU, behind the translator's back.  The caller (the execution
    /// engine's runtime) intersects the touched pages with its set of
    /// translated-code pages to invalidate stale translations — the same
    /// self-modifying-code discipline guest stores get from write-protected
    /// host mappings, which external stores bypass.  A failed bounds check
    /// writes nothing and touches nothing.
    pub fn write_external(
        &mut self,
        addr: u64,
        buf: &[u8],
        touched_pages: &mut Vec<u64>,
    ) -> Result<(), PhysAccessError> {
        const PAGE: u64 = crate::paging::PAGE_SIZE;
        self.write(addr, buf)?;
        if buf.is_empty() {
            return Ok(());
        }
        let mut page = addr & !(PAGE - 1);
        let last = (addr + buf.len() as u64 - 1) & !(PAGE - 1);
        loop {
            if touched_pages.last() != Some(&page) {
                touched_pages.push(page);
            }
            if page == last {
                break;
            }
            page += PAGE;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = PhysMem::new(4096);
        m.write_u64(0x100, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.read_u64(0x100).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.read_uint(0x100, 1).unwrap(), 0x88);
        assert_eq!(m.read_uint(0x100, 2).unwrap(), 0x7788);
        assert_eq!(m.read_uint(0x104, 4).unwrap(), 0x1122_3344);
    }

    #[test]
    fn out_of_range_is_an_error() {
        let mut m = PhysMem::new(64);
        assert!(m.read_u64(60).is_err());
        assert!(m.write_u64(u64::MAX - 3, 0).is_err());
        assert!(m.read_u64(56).is_ok());
    }

    #[test]
    fn u128_near_end_of_memory_is_an_error_not_a_wrap() {
        let mut m = PhysMem::new(64);
        assert!(m.read_u128(56).is_err());
        assert!(m.write_u128(u64::MAX - 7, [1, 2]).is_err());
        assert!(m.read_u128(48).is_ok());
    }

    #[test]
    fn external_store_reports_touched_pages() {
        let mut m = PhysMem::new(4 * 4096);
        let mut pages = Vec::new();
        // Spans the page boundary at 0x1000: both pages reported once.
        m.write_external(0xFF0, &[0xAA; 0x20], &mut pages).unwrap();
        assert_eq!(pages, vec![0x0000, 0x1000]);
        // Same-page follow-up write does not duplicate the tail entry.
        m.write_external(0x1800, &[1, 2, 3], &mut pages).unwrap();
        assert_eq!(pages, vec![0x0000, 0x1000]);
        assert_eq!(m.read_uint(0xFF0, 1).unwrap(), 0xAA);
        assert_eq!(m.read_uint(0x1800, 1).unwrap(), 1);
        // Out-of-range external store fails typed and touches nothing.
        let before = pages.clone();
        assert!(m.write_external(4 * 4096 - 2, &[0; 8], &mut pages).is_err());
        assert_eq!(pages, before);
        // Empty write is a no-op.
        m.write_external(0x2000, &[], &mut pages).unwrap();
        assert_eq!(pages, before);
    }

    #[test]
    fn u128_roundtrip_and_fill() {
        let mut m = PhysMem::new(256);
        m.write_u128(16, [1, 2]).unwrap();
        assert_eq!(m.read_u128(16).unwrap(), [1, 2]);
        m.fill(0, 16, 0xAB).unwrap();
        assert_eq!(m.read_uint(15, 1).unwrap(), 0xAB);
        assert_eq!(m.read_uint(16, 1).unwrap(), 1);
    }
}
