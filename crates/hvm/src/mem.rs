//! Physical memory of the host virtual machine.
//!
//! Modelled as a single flat RAM region (as KVM presents to a guest that
//! requested one memory slot) with bounds-checked byte/word accessors.  Both
//! the page walker and the interpreter go through this type, and the
//! hypervisor layer uses it directly to load the unikernel image and the
//! emulated guest physical memory (Fig. 15 of the paper).

/// Flat physical memory for the host VM.
#[derive(Debug)]
pub struct PhysMem {
    bytes: Vec<u8>,
}

/// Error returned for out-of-range physical accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysAccessError {
    /// The faulting physical address.
    pub addr: u64,
    /// The access size in bytes.
    pub size: u64,
}

impl std::fmt::Display for PhysAccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "physical access out of range: {:#x} (+{})",
            self.addr, self.size
        )
    }
}

impl std::error::Error for PhysAccessError {}

impl PhysMem {
    /// Allocates `size` bytes of zeroed physical memory.
    pub fn new(size: u64) -> Self {
        PhysMem {
            bytes: vec![0; size as usize],
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn check(&self, addr: u64, size: u64) -> Result<usize, PhysAccessError> {
        let end = addr
            .checked_add(size)
            .ok_or(PhysAccessError { addr, size })?;
        if end > self.bytes.len() as u64 {
            return Err(PhysAccessError { addr, size });
        }
        Ok(addr as usize)
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: u64, buf: &mut [u8]) -> Result<(), PhysAccessError> {
        let a = self.check(addr, buf.len() as u64)?;
        buf.copy_from_slice(&self.bytes[a..a + buf.len()]);
        Ok(())
    }

    /// Writes `buf` starting at `addr`.
    pub fn write(&mut self, addr: u64, buf: &[u8]) -> Result<(), PhysAccessError> {
        let a = self.check(addr, buf.len() as u64)?;
        self.bytes[a..a + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    /// Reads an unsigned little-endian value of `size` bytes (1, 2, 4 or 8).
    pub fn read_uint(&self, addr: u64, size: u64) -> Result<u64, PhysAccessError> {
        let a = self.check(addr, size)?;
        let mut v = 0u64;
        for i in 0..size as usize {
            v |= (self.bytes[a + i] as u64) << (8 * i);
        }
        Ok(v)
    }

    /// Writes an unsigned little-endian value of `size` bytes (1, 2, 4 or 8).
    pub fn write_uint(&mut self, addr: u64, value: u64, size: u64) -> Result<(), PhysAccessError> {
        let a = self.check(addr, size)?;
        for i in 0..size as usize {
            self.bytes[a + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Reads a 64-bit little-endian word.
    pub fn read_u64(&self, addr: u64) -> Result<u64, PhysAccessError> {
        self.read_uint(addr, 8)
    }

    /// Writes a 64-bit little-endian word.
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), PhysAccessError> {
        self.write_uint(addr, value, 8)
    }

    /// Reads a 128-bit value as a `[u64; 2]` (low, high).
    pub fn read_u128(&self, addr: u64) -> Result<[u64; 2], PhysAccessError> {
        Ok([self.read_uint(addr, 8)?, self.read_uint(addr + 8, 8)?])
    }

    /// Writes a 128-bit value from a `[u64; 2]` (low, high).
    pub fn write_u128(&mut self, addr: u64, value: [u64; 2]) -> Result<(), PhysAccessError> {
        self.write_uint(addr, value[0], 8)?;
        self.write_uint(addr + 8, value[1], 8)
    }

    /// Fills `[addr, addr+len)` with a byte value.
    pub fn fill(&mut self, addr: u64, len: u64, value: u8) -> Result<(), PhysAccessError> {
        let a = self.check(addr, len)?;
        self.bytes[a..a + len as usize].fill(value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = PhysMem::new(4096);
        m.write_u64(0x100, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.read_u64(0x100).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.read_uint(0x100, 1).unwrap(), 0x88);
        assert_eq!(m.read_uint(0x100, 2).unwrap(), 0x7788);
        assert_eq!(m.read_uint(0x104, 4).unwrap(), 0x1122_3344);
    }

    #[test]
    fn out_of_range_is_an_error() {
        let mut m = PhysMem::new(64);
        assert!(m.read_u64(60).is_err());
        assert!(m.write_u64(u64::MAX - 3, 0).is_err());
        assert!(m.read_u64(56).is_ok());
    }

    #[test]
    fn u128_roundtrip_and_fill() {
        let mut m = PhysMem::new(256);
        m.write_u128(16, [1, 2]).unwrap();
        assert_eq!(m.read_u128(16).unwrap(), [1, 2]);
        m.fill(0, 16, 0xAB).unwrap();
        assert_eq!(m.read_uint(15, 1).unwrap(), 0xAB);
        assert_eq!(m.read_uint(16, 1).unwrap(), 1);
    }
}
