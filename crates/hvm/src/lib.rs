//! HVM64 — a simulated bare-metal host virtual machine.
//!
//! The paper's Captive runs its generated code inside a KVM virtual machine
//! on a real x86-64 processor, which gives the DBT direct control over host
//! page tables, protection rings, PCIDs, port I/O and software interrupts.
//! None of that hardware is available (or appropriate) for a deterministic
//! reproduction, so this crate provides the substitute substrate: a software
//! model of an x86-64-like machine ("HVM64") that is rich enough for every
//! host feature the paper exploits to be exercised as a real code path:
//!
//! * 16 general-purpose registers, 16 vector registers, condition flags;
//! * a load/store instruction set with a compact binary encoding
//!   ([`encode`]) so generated-code *size* can be measured;
//! * 4-level hierarchical page tables walked by a hardware-model MMU
//!   ([`paging`]), a PCID-tagged TLB ([`tlb`]), and optional second-level
//!   address translation;
//! * protection rings 0–3 with user/supervisor page checks;
//! * software interrupts, port I/O and a helper-call interface through which
//!   runtime services (soft-MMU, softfloat, device emulation, page-fault
//!   handling) are reached;
//! * a deterministic cycle cost model ([`cost`]) and performance counters
//!   ([`perf`]).
//!
//! Both Captive and the QEMU-style baseline generate HVM64 code and run it on
//! this machine, so their measured difference is exactly the difference in
//! the code they generate and the runtime services they lean on — the same
//! variable the paper isolates.

pub mod cost;
pub mod encode;
pub mod event;
pub mod insn;
pub mod machine;
pub mod mem;
pub mod paging;
pub mod perf;
pub mod tlb;
pub mod virtio;

pub use cost::CostModel;
pub use event::{EventSources, InterruptLatch, Timer, TIMER_LINE};
pub use insn::{AluOp, Cond, FpOp, Gpr, MachInsn, MemRef, MemSize, Operand, VecOp, Xmm};
pub use machine::{
    ExitReason, FaultAction, FlagsReg, HelperCtx, HelperResult, Machine, MachineConfig,
    NullRuntime, Ring, Runtime,
};
pub use mem::PhysMem;
pub use paging::{PageFlags, PageWalk, WalkError, PAGE_SIZE};
pub use perf::PerfCounters;
pub use tlb::{Tlb, TlbEntry};
pub use virtio::{FaultKind, FaultPlan, VirtioBlk, VirtioBlkConfig, VirtioStats, VBLK_LINE};
