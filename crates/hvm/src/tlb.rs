//! A PCID-tagged translation lookaside buffer.
//!
//! The paper exploits Process Context Identifiers to avoid full TLB flushes
//! when Captive switches between the lower-half (guest) and upper-half
//! (hypervisor / 64-bit overflow) address-space mappings (Section 2.7.5).
//! The model here is a direct-mapped TLB indexed by virtual page number,
//! with each entry tagged by the PCID it was filled under.

use crate::paging::{PageFlags, PAGE_SIZE};

/// One cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page number (vaddr >> 12).
    pub vpn: u64,
    /// Physical frame base address.
    pub frame: u64,
    /// Mapping permissions.
    pub flags: PageFlags,
    /// PCID the entry belongs to.
    pub pcid: u16,
}

/// Direct-mapped, PCID-tagged TLB.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<Option<TlbEntry>>,
    /// Number of entries (power of two).
    size: usize,
    /// Fills since creation (diagnostic).
    pub fills: u64,
    /// Evictions of a valid entry by a conflicting fill (diagnostic).
    pub evictions: u64,
}

impl Tlb {
    /// Creates a TLB with `size` entries (rounded up to a power of two).
    pub fn new(size: usize) -> Self {
        let size = size.next_power_of_two().max(1);
        Tlb {
            entries: vec![None; size],
            size,
            fills: 0,
            evictions: 0,
        }
    }

    /// Number of entries.
    pub fn capacity(&self) -> usize {
        self.size
    }

    fn slot(&self, vpn: u64) -> usize {
        (vpn as usize) & (self.size - 1)
    }

    /// Looks up a translation for `vaddr` under `pcid`.
    pub fn lookup(&self, vaddr: u64, pcid: u16) -> Option<TlbEntry> {
        let vpn = vaddr / PAGE_SIZE;
        let e = self.entries[self.slot(vpn)]?;
        (e.vpn == vpn && e.pcid == pcid).then_some(e)
    }

    /// Inserts a translation, evicting whatever conflicts.
    pub fn insert(&mut self, entry: TlbEntry) {
        let slot = self.slot(entry.vpn);
        if self.entries[slot].is_some() {
            self.evictions += 1;
        }
        self.fills += 1;
        self.entries[slot] = Some(entry);
    }

    /// Drops every entry regardless of PCID.
    pub fn flush_all(&mut self) {
        self.entries.iter_mut().for_each(|e| *e = None);
    }

    /// Drops entries belonging to one PCID, keeping others resident — the
    /// property that makes PCID-based address-space switching cheap.
    pub fn flush_pcid(&mut self, pcid: u16) {
        for e in self.entries.iter_mut() {
            if matches!(e, Some(en) if en.pcid == pcid) {
                *e = None;
            }
        }
    }

    /// Drops any entry for the page containing `vaddr` (all PCIDs).
    pub fn flush_page(&mut self, vaddr: u64) {
        let vpn = vaddr / PAGE_SIZE;
        let slot = self.slot(vpn);
        if matches!(self.entries[slot], Some(e) if e.vpn == vpn) {
            self.entries[slot] = None;
        }
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(vpn: u64, pcid: u16) -> TlbEntry {
        TlbEntry {
            vpn,
            frame: vpn * PAGE_SIZE + 0x1000_0000,
            flags: PageFlags::user_rw(),
            pcid,
        }
    }

    #[test]
    fn hit_requires_matching_vpn_and_pcid() {
        let mut tlb = Tlb::new(64);
        tlb.insert(entry(5, 1));
        assert!(tlb.lookup(5 * PAGE_SIZE + 123, 1).is_some());
        assert!(
            tlb.lookup(5 * PAGE_SIZE, 2).is_none(),
            "other PCID must miss"
        );
        assert!(tlb.lookup(6 * PAGE_SIZE, 1).is_none());
    }

    #[test]
    fn conflicting_fill_evicts() {
        let mut tlb = Tlb::new(4);
        tlb.insert(entry(1, 0));
        tlb.insert(entry(5, 0)); // same slot in a 4-entry TLB
        assert!(tlb.lookup(PAGE_SIZE, 0).is_none());
        assert!(tlb.lookup(5 * PAGE_SIZE, 0).is_some());
        assert_eq!(tlb.evictions, 1);
    }

    #[test]
    fn pcid_selective_flush_keeps_other_entries() {
        let mut tlb = Tlb::new(64);
        tlb.insert(entry(1, 0));
        tlb.insert(entry(2, 1));
        tlb.flush_pcid(0);
        assert!(tlb.lookup(PAGE_SIZE, 0).is_none());
        assert!(tlb.lookup(2 * PAGE_SIZE, 1).is_some());
        tlb.flush_all();
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    fn page_flush_only_affects_that_page() {
        let mut tlb = Tlb::new(64);
        tlb.insert(entry(7, 0));
        tlb.insert(entry(8, 0));
        tlb.flush_page(7 * PAGE_SIZE + 42);
        assert!(tlb.lookup(7 * PAGE_SIZE, 0).is_none());
        assert!(tlb.lookup(8 * PAGE_SIZE, 0).is_some());
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(Tlb::new(100).capacity(), 128);
        assert_eq!(Tlb::new(1).capacity(), 1);
    }
}
