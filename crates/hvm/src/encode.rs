//! Binary encoding of HVM64 instructions.
//!
//! The JIT's final phase lowers register-allocated instructions into this
//! byte format (the analogue of x86-64 machine code emission in the paper),
//! which is what makes the "bytes of host code per guest instruction"
//! statistic of Section 3.4 measurable.  The format is not x86, but its
//! operand sizes are chosen to match x86-64 closely: one opcode byte,
//! one byte per register, a mode byte plus 1/4 bytes of displacement for
//! memory operands, 4-byte branch offsets and 4- or 8-byte immediates.

use crate::insn::{AluOp, Cond, FpOp, Gpr, MachInsn, MemRef, MemSize, Operand, VecOp, Xmm};

/// Encoding/decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of bytes while decoding.
    Truncated,
    /// An opcode or field value is not valid.
    Invalid(u8),
}

fn size_code(s: MemSize) -> u8 {
    match s {
        MemSize::U8 => 0,
        MemSize::U16 => 1,
        MemSize::U32 => 2,
        MemSize::U64 => 3,
        MemSize::U128 => 4,
    }
}

fn size_from(c: u8) -> Result<MemSize, CodecError> {
    Ok(match c {
        0 => MemSize::U8,
        1 => MemSize::U16,
        2 => MemSize::U32,
        3 => MemSize::U64,
        4 => MemSize::U128,
        v => return Err(CodecError::Invalid(v)),
    })
}

fn alu_code(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
        AluOp::Mul => 5,
        AluOp::MulHiU => 6,
        AluOp::MulHiS => 7,
        AluOp::DivU => 8,
        AluOp::DivS => 9,
        AluOp::RemU => 10,
        AluOp::RemS => 11,
        AluOp::Shl => 12,
        AluOp::Shr => 13,
        AluOp::Sar => 14,
        AluOp::Ror => 15,
    }
}

fn alu_from(c: u8) -> Result<AluOp, CodecError> {
    Ok(match c {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Mul,
        6 => AluOp::MulHiU,
        7 => AluOp::MulHiS,
        8 => AluOp::DivU,
        9 => AluOp::DivS,
        10 => AluOp::RemU,
        11 => AluOp::RemS,
        12 => AluOp::Shl,
        13 => AluOp::Shr,
        14 => AluOp::Sar,
        15 => AluOp::Ror,
        v => return Err(CodecError::Invalid(v)),
    })
}

fn cond_code(c: Cond) -> u8 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Le => 3,
        Cond::Ge => 4,
        Cond::Gt => 5,
        Cond::SLt => 6,
        Cond::SLe => 7,
        Cond::SGe => 8,
        Cond::SGt => 9,
        Cond::Mi => 10,
        Cond::Pl => 11,
        Cond::Vs => 12,
        Cond::Vc => 13,
    }
}

fn cond_from(c: u8) -> Result<Cond, CodecError> {
    Ok(match c {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Lt,
        3 => Cond::Le,
        4 => Cond::Ge,
        5 => Cond::Gt,
        6 => Cond::SLt,
        7 => Cond::SLe,
        8 => Cond::SGe,
        9 => Cond::SGt,
        10 => Cond::Mi,
        11 => Cond::Pl,
        12 => Cond::Vs,
        13 => Cond::Vc,
        v => return Err(CodecError::Invalid(v)),
    })
}

fn fp_code(op: FpOp) -> u8 {
    match op {
        FpOp::AddD => 0,
        FpOp::SubD => 1,
        FpOp::MulD => 2,
        FpOp::DivD => 3,
        FpOp::SqrtD => 4,
        FpOp::MinD => 5,
        FpOp::MaxD => 6,
        FpOp::AddS => 7,
        FpOp::SubS => 8,
        FpOp::MulS => 9,
        FpOp::DivS => 10,
        FpOp::SqrtS => 11,
        FpOp::FmaD => 12,
    }
}

fn fp_from(c: u8) -> Result<FpOp, CodecError> {
    Ok(match c {
        0 => FpOp::AddD,
        1 => FpOp::SubD,
        2 => FpOp::MulD,
        3 => FpOp::DivD,
        4 => FpOp::SqrtD,
        5 => FpOp::MinD,
        6 => FpOp::MaxD,
        7 => FpOp::AddS,
        8 => FpOp::SubS,
        9 => FpOp::MulS,
        10 => FpOp::DivS,
        11 => FpOp::SqrtS,
        12 => FpOp::FmaD,
        v => return Err(CodecError::Invalid(v)),
    })
}

fn vec_code(op: VecOp) -> u8 {
    match op {
        VecOp::PAddQ => 0,
        VecOp::PSubQ => 1,
        VecOp::PAddD => 2,
        VecOp::PMulD => 3,
        VecOp::AddPd => 4,
        VecOp::MulPd => 5,
        VecOp::SubPd => 6,
        VecOp::PAnd => 7,
        VecOp::POr => 8,
        VecOp::PXor => 9,
        VecOp::Dup64 => 10,
    }
}

fn vec_from(c: u8) -> Result<VecOp, CodecError> {
    Ok(match c {
        0 => VecOp::PAddQ,
        1 => VecOp::PSubQ,
        2 => VecOp::PAddD,
        3 => VecOp::PMulD,
        4 => VecOp::AddPd,
        5 => VecOp::MulPd,
        6 => VecOp::SubPd,
        7 => VecOp::PAnd,
        8 => VecOp::POr,
        9 => VecOp::PXor,
        10 => VecOp::Dup64,
        v => return Err(CodecError::Invalid(v)),
    })
}

/// A byte writer used by the encoder.
struct Writer<'a>(&'a mut Vec<u8>);

impl Writer<'_> {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn i32(&mut self, v: i32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn gpr(&mut self, r: Gpr) {
        self.u8(r.index());
    }
    fn xmm(&mut self, x: Xmm) {
        self.u8(x.0);
    }
    fn mem(&mut self, m: &MemRef) {
        // Mode byte: bit0 = has index, bit1 = disp fits in i8, bit2 = disp is
        // zero.  This mirrors x86's disp0/disp8/disp32 encodings.
        let disp_zero = m.disp == 0;
        let disp8 = i8::try_from(m.disp).is_ok();
        let mode = (m.index.is_some() as u8) | ((disp8 as u8) << 1) | ((disp_zero as u8) << 2);
        self.u8(mode);
        self.gpr(m.base);
        if let Some((idx, scale)) = m.index {
            self.u8(idx.index() | (scale.trailing_zeros() as u8) << 6);
        }
        if !disp_zero {
            if disp8 {
                self.u8(m.disp as i8 as u8);
            } else {
                self.i32(m.disp);
            }
        }
    }
    fn operand(&mut self, o: &Operand) {
        match o {
            Operand::Reg(r) => {
                self.u8(0);
                self.gpr(*r);
            }
            Operand::Imm(v) => {
                if *v as i64 >= i32::MIN as i64 && *v as i64 <= i32::MAX as i64 {
                    self.u8(1);
                    self.i32(*v as i64 as i32);
                } else {
                    self.u8(2);
                    self.u64(*v);
                }
            }
        }
    }
}

/// A byte reader used by the decoder.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u8(&mut self) -> Result<u8, CodecError> {
        let v = *self.buf.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(v)
    }
    fn i32(&mut self) -> Result<i32, CodecError> {
        let b = self
            .buf
            .get(self.pos..self.pos + 4)
            .ok_or(CodecError::Truncated)?;
        self.pos += 4;
        Ok(i32::from_le_bytes(b.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self
            .buf
            .get(self.pos..self.pos + 4)
            .ok_or(CodecError::Truncated)?;
        self.pos += 4;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self
            .buf
            .get(self.pos..self.pos + 8)
            .ok_or(CodecError::Truncated)?;
        self.pos += 8;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }
    fn gpr(&mut self) -> Result<Gpr, CodecError> {
        let v = self.u8()?;
        Gpr::from_index(v).ok_or(CodecError::Invalid(v))
    }
    fn xmm(&mut self) -> Result<Xmm, CodecError> {
        let v = self.u8()?;
        if v < Xmm::COUNT {
            Ok(Xmm(v))
        } else {
            Err(CodecError::Invalid(v))
        }
    }
    fn mem(&mut self) -> Result<MemRef, CodecError> {
        let mode = self.u8()?;
        let base = self.gpr()?;
        let index = if mode & 1 != 0 {
            let b = self.u8()?;
            let reg = Gpr::from_index(b & 0x3F).ok_or(CodecError::Invalid(b))?;
            let scale = 1u8 << (b >> 6);
            Some((reg, scale))
        } else {
            None
        };
        let disp = if mode & 4 != 0 {
            0
        } else if mode & 2 != 0 {
            self.u8()? as i8 as i32
        } else {
            self.i32()?
        };
        Ok(MemRef { base, index, disp })
    }
    fn operand(&mut self) -> Result<Operand, CodecError> {
        match self.u8()? {
            0 => Ok(Operand::Reg(self.gpr()?)),
            1 => Ok(Operand::Imm(self.i32()? as i64 as u64)),
            2 => Ok(Operand::Imm(self.u64()?)),
            v => Err(CodecError::Invalid(v)),
        }
    }
}

/// Encodes one instruction, appending its bytes to `out`.  Returns the number
/// of bytes written.
pub fn encode(insn: &MachInsn, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    let mut w = Writer(out);
    match insn {
        MachInsn::Nop => w.u8(0x00),
        MachInsn::MovImm { dst, imm } => {
            w.u8(0x01);
            w.gpr(*dst);
            w.u64(*imm);
        }
        MachInsn::MovReg { dst, src } => {
            w.u8(0x02);
            w.gpr(*dst);
            w.gpr(*src);
        }
        MachInsn::Load { dst, addr, size } => {
            w.u8(0x03);
            w.u8(size_code(*size));
            w.gpr(*dst);
            w.mem(addr);
        }
        MachInsn::LoadSx { dst, addr, size } => {
            w.u8(0x04);
            w.u8(size_code(*size));
            w.gpr(*dst);
            w.mem(addr);
        }
        MachInsn::Store { src, addr, size } => {
            w.u8(0x05);
            w.u8(size_code(*size));
            w.gpr(*src);
            w.mem(addr);
        }
        MachInsn::StoreImm { imm, addr, size } => {
            w.u8(0x06);
            w.u8(size_code(*size));
            w.u64(*imm);
            w.mem(addr);
        }
        MachInsn::Lea { dst, addr } => {
            w.u8(0x07);
            w.gpr(*dst);
            w.mem(addr);
        }
        MachInsn::Alu { op, dst, src } => {
            w.u8(0x08);
            w.u8(alu_code(*op));
            w.gpr(*dst);
            w.operand(src);
        }
        MachInsn::Cmp { a, b } => {
            w.u8(0x09);
            w.gpr(*a);
            w.operand(b);
        }
        MachInsn::Test { a, b } => {
            w.u8(0x0A);
            w.gpr(*a);
            w.operand(b);
        }
        MachInsn::Neg { dst } => {
            w.u8(0x0B);
            w.gpr(*dst);
        }
        MachInsn::Not { dst } => {
            w.u8(0x0C);
            w.gpr(*dst);
        }
        MachInsn::MovZx { dst, src, size } => {
            w.u8(0x0D);
            w.u8(size_code(*size));
            w.gpr(*dst);
            w.gpr(*src);
        }
        MachInsn::MovSx { dst, src, size } => {
            w.u8(0x0E);
            w.u8(size_code(*size));
            w.gpr(*dst);
            w.gpr(*src);
        }
        MachInsn::SetCc { cond, dst } => {
            w.u8(0x0F);
            w.u8(cond_code(*cond));
            w.gpr(*dst);
        }
        MachInsn::CmovCc { cond, dst, src } => {
            w.u8(0x10);
            w.u8(cond_code(*cond));
            w.gpr(*dst);
            w.gpr(*src);
        }
        MachInsn::Jmp { target } => {
            w.u8(0x11);
            w.i32(*target);
        }
        MachInsn::Jcc { cond, target } => {
            w.u8(0x12);
            w.u8(cond_code(*cond));
            w.i32(*target);
        }
        MachInsn::CallHelper { helper } => {
            w.u8(0x13);
            w.u8((*helper & 0xFF) as u8);
            w.u8((*helper >> 8) as u8);
            // Real call instructions carry a 4-byte displacement; pad so the
            // code-size statistics stay comparable.
            w.i32(0);
        }
        MachInsn::Ret => w.u8(0x14),
        MachInsn::LoadXmm { dst, addr, size } => {
            w.u8(0x15);
            w.u8(size_code(*size));
            w.xmm(*dst);
            w.mem(addr);
        }
        MachInsn::StoreXmm { src, addr, size } => {
            w.u8(0x16);
            w.u8(size_code(*size));
            w.xmm(*src);
            w.mem(addr);
        }
        MachInsn::MovGprToXmm { dst, src } => {
            w.u8(0x17);
            w.xmm(*dst);
            w.gpr(*src);
        }
        MachInsn::MovXmmToGpr { dst, src } => {
            w.u8(0x18);
            w.gpr(*dst);
            w.xmm(*src);
        }
        MachInsn::Fp { op, dst, src } => {
            w.u8(0x19);
            w.u8(fp_code(*op));
            w.xmm(*dst);
            w.xmm(*src);
        }
        MachInsn::FpFma { dst, a, b } => {
            w.u8(0x1A);
            w.xmm(*dst);
            w.xmm(*a);
            w.xmm(*b);
        }
        MachInsn::FpCmp { a, b } => {
            w.u8(0x1B);
            w.xmm(*a);
            w.xmm(*b);
        }
        MachInsn::CvtI2D { dst, src } => {
            w.u8(0x1C);
            w.xmm(*dst);
            w.gpr(*src);
        }
        MachInsn::CvtD2I { dst, src } => {
            w.u8(0x1D);
            w.gpr(*dst);
            w.xmm(*src);
        }
        MachInsn::CvtS2D { dst, src } => {
            w.u8(0x1E);
            w.xmm(*dst);
            w.xmm(*src);
        }
        MachInsn::CvtD2S { dst, src } => {
            w.u8(0x1F);
            w.xmm(*dst);
            w.xmm(*src);
        }
        MachInsn::Vec { op, dst, src } => {
            w.u8(0x20);
            w.u8(vec_code(*op));
            w.xmm(*dst);
            w.xmm(*src);
        }
        MachInsn::Int { vector } => {
            w.u8(0x21);
            w.u8(*vector);
        }
        MachInsn::IRet => w.u8(0x22),
        MachInsn::Syscall => w.u8(0x23),
        MachInsn::Sysret => w.u8(0x24),
        MachInsn::Out { port, src } => {
            w.u8(0x25);
            w.u8((*port & 0xFF) as u8);
            w.u8((*port >> 8) as u8);
            w.gpr(*src);
        }
        MachInsn::In { dst, port } => {
            w.u8(0x26);
            w.u8((*port & 0xFF) as u8);
            w.u8((*port >> 8) as u8);
            w.gpr(*dst);
        }
        MachInsn::WriteCr3 { src } => {
            w.u8(0x27);
            w.gpr(*src);
        }
        MachInsn::ReadCr3 { dst } => {
            w.u8(0x28);
            w.gpr(*dst);
        }
        MachInsn::TlbFlushAll => w.u8(0x29),
        MachInsn::TlbFlushPcid => w.u8(0x2A),
        MachInsn::Invlpg { addr } => {
            w.u8(0x2B);
            w.gpr(*addr);
        }
        MachInsn::Hlt => w.u8(0x2C),
        MachInsn::TraceEdge => w.u8(0x2D),
        MachInsn::BackEdge {
            pc,
            target,
            reconcile,
            weight,
        } => {
            w.u8(0x2E);
            w.u8(*reconcile as u8);
            w.u64(*pc);
            w.i32(*target);
            w.u32(*weight);
        }
        MachInsn::MovXmm { dst, src, size } => {
            w.u8(0x2F);
            w.u8(size_code(*size));
            w.xmm(*dst);
            w.xmm(*src);
        }
    }
    out.len() - start
}

/// Encodes a whole block of instructions, returning the byte buffer.
pub fn encode_block(insns: &[MachInsn]) -> Vec<u8> {
    let mut out = Vec::with_capacity(insns.len() * 6);
    for i in insns {
        encode(i, &mut out);
    }
    out
}

/// Decodes one instruction starting at `buf[*pos]`, advancing `pos`.
pub fn decode(buf: &[u8], pos: &mut usize) -> Result<MachInsn, CodecError> {
    let mut r = Reader { buf, pos: *pos };
    let op = r.u8()?;
    let insn = match op {
        0x00 => MachInsn::Nop,
        0x01 => MachInsn::MovImm {
            dst: r.gpr()?,
            imm: r.u64()?,
        },
        0x02 => MachInsn::MovReg {
            dst: r.gpr()?,
            src: r.gpr()?,
        },
        0x03 => {
            let size = size_from(r.u8()?)?;
            MachInsn::Load {
                dst: r.gpr()?,
                addr: r.mem()?,
                size,
            }
        }
        0x04 => {
            let size = size_from(r.u8()?)?;
            MachInsn::LoadSx {
                dst: r.gpr()?,
                addr: r.mem()?,
                size,
            }
        }
        0x05 => {
            let size = size_from(r.u8()?)?;
            MachInsn::Store {
                src: r.gpr()?,
                addr: r.mem()?,
                size,
            }
        }
        0x06 => {
            let size = size_from(r.u8()?)?;
            MachInsn::StoreImm {
                imm: r.u64()?,
                addr: r.mem()?,
                size,
            }
        }
        0x07 => MachInsn::Lea {
            dst: r.gpr()?,
            addr: r.mem()?,
        },
        0x08 => {
            let op = alu_from(r.u8()?)?;
            MachInsn::Alu {
                op,
                dst: r.gpr()?,
                src: r.operand()?,
            }
        }
        0x09 => MachInsn::Cmp {
            a: r.gpr()?,
            b: r.operand()?,
        },
        0x0A => MachInsn::Test {
            a: r.gpr()?,
            b: r.operand()?,
        },
        0x0B => MachInsn::Neg { dst: r.gpr()? },
        0x0C => MachInsn::Not { dst: r.gpr()? },
        0x0D => {
            let size = size_from(r.u8()?)?;
            MachInsn::MovZx {
                dst: r.gpr()?,
                src: r.gpr()?,
                size,
            }
        }
        0x0E => {
            let size = size_from(r.u8()?)?;
            MachInsn::MovSx {
                dst: r.gpr()?,
                src: r.gpr()?,
                size,
            }
        }
        0x0F => MachInsn::SetCc {
            cond: cond_from(r.u8()?)?,
            dst: r.gpr()?,
        },
        0x10 => MachInsn::CmovCc {
            cond: cond_from(r.u8()?)?,
            dst: r.gpr()?,
            src: r.gpr()?,
        },
        0x11 => MachInsn::Jmp { target: r.i32()? },
        0x12 => MachInsn::Jcc {
            cond: cond_from(r.u8()?)?,
            target: r.i32()?,
        },
        0x13 => {
            let lo = r.u8()? as u16;
            let hi = r.u8()? as u16;
            let _pad = r.i32()?;
            MachInsn::CallHelper {
                helper: lo | (hi << 8),
            }
        }
        0x14 => MachInsn::Ret,
        0x15 => {
            let size = size_from(r.u8()?)?;
            MachInsn::LoadXmm {
                dst: r.xmm()?,
                addr: r.mem()?,
                size,
            }
        }
        0x16 => {
            let size = size_from(r.u8()?)?;
            MachInsn::StoreXmm {
                src: r.xmm()?,
                addr: r.mem()?,
                size,
            }
        }
        0x17 => MachInsn::MovGprToXmm {
            dst: r.xmm()?,
            src: r.gpr()?,
        },
        0x18 => MachInsn::MovXmmToGpr {
            dst: r.gpr()?,
            src: r.xmm()?,
        },
        0x19 => {
            let op = fp_from(r.u8()?)?;
            MachInsn::Fp {
                op,
                dst: r.xmm()?,
                src: r.xmm()?,
            }
        }
        0x1A => MachInsn::FpFma {
            dst: r.xmm()?,
            a: r.xmm()?,
            b: r.xmm()?,
        },
        0x1B => MachInsn::FpCmp {
            a: r.xmm()?,
            b: r.xmm()?,
        },
        0x1C => MachInsn::CvtI2D {
            dst: r.xmm()?,
            src: r.gpr()?,
        },
        0x1D => MachInsn::CvtD2I {
            dst: r.gpr()?,
            src: r.xmm()?,
        },
        0x1E => MachInsn::CvtS2D {
            dst: r.xmm()?,
            src: r.xmm()?,
        },
        0x1F => MachInsn::CvtD2S {
            dst: r.xmm()?,
            src: r.xmm()?,
        },
        0x20 => {
            let op = vec_from(r.u8()?)?;
            MachInsn::Vec {
                op,
                dst: r.xmm()?,
                src: r.xmm()?,
            }
        }
        0x21 => MachInsn::Int { vector: r.u8()? },
        0x22 => MachInsn::IRet,
        0x23 => MachInsn::Syscall,
        0x24 => MachInsn::Sysret,
        0x25 => {
            let lo = r.u8()? as u16;
            let hi = r.u8()? as u16;
            MachInsn::Out {
                port: lo | (hi << 8),
                src: r.gpr()?,
            }
        }
        0x26 => {
            let lo = r.u8()? as u16;
            let hi = r.u8()? as u16;
            MachInsn::In {
                port: lo | (hi << 8),
                dst: r.gpr()?,
            }
        }
        0x27 => MachInsn::WriteCr3 { src: r.gpr()? },
        0x28 => MachInsn::ReadCr3 { dst: r.gpr()? },
        0x29 => MachInsn::TlbFlushAll,
        0x2A => MachInsn::TlbFlushPcid,
        0x2B => MachInsn::Invlpg { addr: r.gpr()? },
        0x2C => MachInsn::Hlt,
        0x2D => MachInsn::TraceEdge,
        0x2E => {
            let reconcile = r.u8()? != 0;
            MachInsn::BackEdge {
                pc: r.u64()?,
                target: r.i32()?,
                reconcile,
                weight: r.u32()?,
            }
        }
        0x2F => {
            let size = size_from(r.u8()?)?;
            MachInsn::MovXmm {
                dst: r.xmm()?,
                src: r.xmm()?,
                size,
            }
        }
        v => return Err(CodecError::Invalid(v)),
    };
    *pos = r.pos;
    Ok(insn)
}

/// Decodes an entire encoded block.
pub fn decode_block(buf: &[u8]) -> Result<Vec<MachInsn>, CodecError> {
    let mut pos = 0;
    let mut out = Vec::new();
    while pos < buf.len() {
        out.push(decode(buf, &mut pos)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_insns() -> Vec<MachInsn> {
        vec![
            MachInsn::Nop,
            MachInsn::MovImm {
                dst: Gpr::Rax,
                imm: 0x3FF8_0000_0000_0000,
            },
            MachInsn::MovReg {
                dst: Gpr::Rbx,
                src: Gpr::R9,
            },
            MachInsn::Load {
                dst: Gpr::Rcx,
                addr: MemRef::base_disp(Gpr::Rbp, 0x100),
                size: MemSize::U64,
            },
            MachInsn::LoadSx {
                dst: Gpr::Rcx,
                addr: MemRef::base_index(Gpr::Rbp, Gpr::Rdx, 8, -16),
                size: MemSize::U16,
            },
            MachInsn::Store {
                src: Gpr::Rdi,
                addr: MemRef::base(Gpr::Rsi),
                size: MemSize::U8,
            },
            MachInsn::StoreImm {
                imm: 0,
                addr: MemRef::base_disp(Gpr::Rbp, 0x108),
                size: MemSize::U64,
            },
            MachInsn::Lea {
                dst: Gpr::R8,
                addr: MemRef::base_disp(Gpr::R15, 4),
            },
            MachInsn::Alu {
                op: AluOp::Add,
                dst: Gpr::Rax,
                src: Operand::Imm(1),
            },
            MachInsn::Alu {
                op: AluOp::Shl,
                dst: Gpr::Rax,
                src: Operand::Reg(Gpr::Rcx),
            },
            MachInsn::Alu {
                op: AluOp::Xor,
                dst: Gpr::Rdx,
                src: Operand::Imm(0xDEAD_BEEF_CAFE_F00D),
            },
            MachInsn::Cmp {
                a: Gpr::Rax,
                b: Operand::Imm(42),
            },
            MachInsn::Test {
                a: Gpr::Rax,
                b: Operand::Reg(Gpr::Rax),
            },
            MachInsn::Neg { dst: Gpr::R10 },
            MachInsn::Not { dst: Gpr::R11 },
            MachInsn::MovZx {
                dst: Gpr::Rax,
                src: Gpr::Rbx,
                size: MemSize::U32,
            },
            MachInsn::MovSx {
                dst: Gpr::Rax,
                src: Gpr::Rbx,
                size: MemSize::U8,
            },
            MachInsn::SetCc {
                cond: Cond::SLt,
                dst: Gpr::Rax,
            },
            MachInsn::CmovCc {
                cond: Cond::Ne,
                dst: Gpr::Rax,
                src: Gpr::Rcx,
            },
            MachInsn::Jmp { target: -3 },
            MachInsn::Jcc {
                cond: Cond::Eq,
                target: 7,
            },
            MachInsn::CallHelper { helper: 0x1234 },
            MachInsn::Ret,
            MachInsn::LoadXmm {
                dst: Xmm(0),
                addr: MemRef::base_disp(Gpr::Rbp, 0x110),
                size: MemSize::U64,
            },
            MachInsn::StoreXmm {
                src: Xmm(1),
                addr: MemRef::base_disp(Gpr::Rbp, 0x120),
                size: MemSize::U128,
            },
            MachInsn::MovGprToXmm {
                dst: Xmm(2),
                src: Gpr::Rax,
            },
            MachInsn::MovXmmToGpr {
                dst: Gpr::Rax,
                src: Xmm(3),
            },
            MachInsn::Fp {
                op: FpOp::MulD,
                dst: Xmm(0),
                src: Xmm(1),
            },
            MachInsn::FpFma {
                dst: Xmm(0),
                a: Xmm(1),
                b: Xmm(2),
            },
            MachInsn::FpCmp {
                a: Xmm(0),
                b: Xmm(1),
            },
            MachInsn::CvtI2D {
                dst: Xmm(0),
                src: Gpr::Rax,
            },
            MachInsn::CvtD2I {
                dst: Gpr::Rax,
                src: Xmm(0),
            },
            MachInsn::CvtS2D {
                dst: Xmm(0),
                src: Xmm(1),
            },
            MachInsn::CvtD2S {
                dst: Xmm(0),
                src: Xmm(1),
            },
            MachInsn::Vec {
                op: VecOp::MulPd,
                dst: Xmm(4),
                src: Xmm(5),
            },
            MachInsn::Int { vector: 0x80 },
            MachInsn::IRet,
            MachInsn::Syscall,
            MachInsn::Sysret,
            MachInsn::Out {
                port: 0x3F8,
                src: Gpr::Rax,
            },
            MachInsn::In {
                dst: Gpr::Rax,
                port: 0x3F8,
            },
            MachInsn::WriteCr3 { src: Gpr::Rax },
            MachInsn::ReadCr3 { dst: Gpr::Rbx },
            MachInsn::TlbFlushAll,
            MachInsn::TlbFlushPcid,
            MachInsn::Invlpg { addr: Gpr::Rax },
            MachInsn::Hlt,
            MachInsn::TraceEdge,
            MachInsn::BackEdge {
                pc: 0x1000,
                target: -9,
                reconcile: false,
                weight: 1,
            },
            MachInsn::BackEdge {
                pc: 0x2000,
                target: -3,
                reconcile: true,
                weight: 8,
            },
            MachInsn::MovXmm {
                dst: Xmm(4),
                src: Xmm(5),
                size: MemSize::U64,
            },
            MachInsn::MovXmm {
                dst: Xmm(6),
                src: Xmm(7),
                size: MemSize::U128,
            },
        ]
    }

    #[test]
    fn encode_decode_roundtrip_every_variant() {
        let insns = sample_insns();
        let bytes = encode_block(&insns);
        let decoded = decode_block(&bytes).expect("decode");
        assert_eq!(insns, decoded);
    }

    #[test]
    fn encoding_sizes_resemble_x86() {
        let mut buf = Vec::new();
        // movabs imm64 into a register is 10 bytes on x86-64.
        let n = encode(
            &MachInsn::MovImm {
                dst: Gpr::Rax,
                imm: u64::MAX,
            },
            &mut buf,
        );
        assert_eq!(n, 10);
        // A register-register move is tiny.
        buf.clear();
        let n = encode(
            &MachInsn::MovReg {
                dst: Gpr::Rax,
                src: Gpr::Rbx,
            },
            &mut buf,
        );
        assert_eq!(n, 3);
        // A load with a small displacement uses the disp8 form.
        buf.clear();
        let small = encode(
            &MachInsn::Load {
                dst: Gpr::Rax,
                addr: MemRef::base_disp(Gpr::Rbp, 0x10),
                size: MemSize::U64,
            },
            &mut buf,
        );
        buf.clear();
        let large = encode(
            &MachInsn::Load {
                dst: Gpr::Rax,
                addr: MemRef::base_disp(Gpr::Rbp, 0x1000),
                size: MemSize::U64,
            },
            &mut buf,
        );
        assert!(small < large);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let insns = [MachInsn::MovImm {
            dst: Gpr::Rax,
            imm: 42,
        }];
        let bytes = encode_block(&insns);
        assert_eq!(
            decode_block(&bytes[..bytes.len() - 1]),
            Err(CodecError::Truncated)
        );
    }

    #[test]
    fn invalid_opcode_is_an_error() {
        assert!(matches!(
            decode_block(&[0xFF]),
            Err(CodecError::Invalid(0xFF))
        ));
    }
}
