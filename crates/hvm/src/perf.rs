//! Performance counters maintained by the machine.
//!
//! Every figure in EXPERIMENTS.md is computed from these counters (plus the
//! JIT's own wall-clock phase timers), so they are deliberately fine-grained.

/// Counters accumulated while the machine executes translated code.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfCounters {
    /// Total simulated cycles (per the [`crate::CostModel`]).
    pub cycles: u64,
    /// Host instructions executed.
    pub insns: u64,
    /// Memory accesses that went through the MMU.
    pub mem_accesses: u64,
    /// TLB hits.
    pub tlb_hits: u64,
    /// TLB misses (each implies a page walk).
    pub tlb_misses: u64,
    /// Page walks that ended in a fault delivered to the fault handler.
    pub page_faults: u64,
    /// Runtime helper invocations.
    pub helper_calls: u64,
    /// Software interrupts delivered.
    pub interrupts: u64,
    /// Fast system calls executed.
    pub syscalls: u64,
    /// Explicit TLB flushes (all / PCID / single page).
    pub tlb_flushes: u64,
    /// CR3 (address-space) switches.
    pub cr3_writes: u64,
    /// Port I/O operations.
    pub port_ios: u64,
    /// Translated blocks entered (dispatch events).
    pub blocks_entered: u64,
    /// Blocks entered through a direct chain link (subset of
    /// `blocks_entered`; these paid the chain cost, not the dispatch cost).
    pub chained_entries: u64,
    /// Intra-superblock constituent transfers: stitched block boundaries
    /// crossed without returning to the dispatcher (each one is an
    /// interpreter entry that chaining alone would have paid for).
    pub superblock_transfers: u64,
    /// Region-internal backward transfers: loop-back edges taken inside one
    /// translation (each one is a whole loop trip that chaining alone would
    /// have re-entered the interpreter for).
    pub backedge_transfers: u64,
    /// Host instructions the LIR optimiser kept out of executed blocks: each
    /// block entry adds the number of LIR instructions eliminated from that
    /// translation (the dynamic instructions-saved count the `figures -- opt`
    /// report is built on).
    pub elided_insns: u64,
}

impl PerfCounters {
    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = PerfCounters::default();
    }

    /// TLB hit rate in [0, 1]; 1.0 when there were no memory accesses.
    pub fn tlb_hit_rate(&self) -> f64 {
        let total = self.tlb_hits + self.tlb_misses;
        if total == 0 {
            1.0
        } else {
            self.tlb_hits as f64 / total as f64
        }
    }

    /// Difference between two snapshots (self - earlier), saturating.
    pub fn delta_since(&self, earlier: &PerfCounters) -> PerfCounters {
        PerfCounters {
            cycles: self.cycles.saturating_sub(earlier.cycles),
            insns: self.insns.saturating_sub(earlier.insns),
            mem_accesses: self.mem_accesses.saturating_sub(earlier.mem_accesses),
            tlb_hits: self.tlb_hits.saturating_sub(earlier.tlb_hits),
            tlb_misses: self.tlb_misses.saturating_sub(earlier.tlb_misses),
            page_faults: self.page_faults.saturating_sub(earlier.page_faults),
            helper_calls: self.helper_calls.saturating_sub(earlier.helper_calls),
            interrupts: self.interrupts.saturating_sub(earlier.interrupts),
            syscalls: self.syscalls.saturating_sub(earlier.syscalls),
            tlb_flushes: self.tlb_flushes.saturating_sub(earlier.tlb_flushes),
            cr3_writes: self.cr3_writes.saturating_sub(earlier.cr3_writes),
            port_ios: self.port_ios.saturating_sub(earlier.port_ios),
            blocks_entered: self.blocks_entered.saturating_sub(earlier.blocks_entered),
            chained_entries: self.chained_entries.saturating_sub(earlier.chained_entries),
            superblock_transfers: self
                .superblock_transfers
                .saturating_sub(earlier.superblock_transfers),
            backedge_transfers: self
                .backedge_transfers
                .saturating_sub(earlier.backedge_transfers),
            elided_insns: self.elided_insns.saturating_sub(earlier.elided_insns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_accesses() {
        let p = PerfCounters::default();
        assert_eq!(p.tlb_hit_rate(), 1.0);
    }

    #[test]
    fn delta_subtracts_fieldwise() {
        let a = PerfCounters {
            cycles: 100,
            insns: 10,
            ..Default::default()
        };
        let b = PerfCounters {
            cycles: 150,
            insns: 25,
            ..Default::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.cycles, 50);
        assert_eq!(d.insns, 15);
    }
}
