//! The HVM64 instruction set.
//!
//! These are the instructions the DBT back-ends emit.  The shapes follow
//! x86-64 closely enough that the paper's code examples (Figs. 10, 12, 13)
//! map one-to-one: a guest-register-file base pointer lives in [`Gpr::Rbp`],
//! the emulated guest program counter in [`Gpr::R15`], memory operands use
//! base + scaled-index + displacement addressing, and scalar / packed
//! floating-point work happens in [`Xmm`] registers.

use std::fmt;

/// General-purpose host registers (x86-64 names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Gpr {
    /// Return / scratch register.
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    /// Host stack pointer (reserved by the execution engine).
    Rsp = 4,
    /// Guest register-file base pointer (reserved by both DBT back-ends).
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    /// Emulated guest program counter (reserved by both DBT back-ends).
    R15 = 15,
}

impl Gpr {
    /// All sixteen registers in encoding order.
    pub const ALL: [Gpr; 16] = [
        Gpr::Rax,
        Gpr::Rcx,
        Gpr::Rdx,
        Gpr::Rbx,
        Gpr::Rsp,
        Gpr::Rbp,
        Gpr::Rsi,
        Gpr::Rdi,
        Gpr::R8,
        Gpr::R9,
        Gpr::R10,
        Gpr::R11,
        Gpr::R12,
        Gpr::R13,
        Gpr::R14,
        Gpr::R15,
    ];

    /// Registers available to the register allocator (everything except the
    /// reserved stack pointer, guest register file base and guest PC).
    pub const ALLOCATABLE: [Gpr; 13] = [
        Gpr::Rax,
        Gpr::Rcx,
        Gpr::Rdx,
        Gpr::Rbx,
        Gpr::Rsi,
        Gpr::Rdi,
        Gpr::R8,
        Gpr::R9,
        Gpr::R10,
        Gpr::R11,
        Gpr::R12,
        Gpr::R13,
        Gpr::R14,
    ];

    /// Converts an encoding index back to a register.
    pub fn from_index(i: u8) -> Option<Gpr> {
        Gpr::ALL.get(i as usize).copied()
    }

    /// Encoding index of the register.
    pub fn index(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi", "r8", "r9", "r10", "r11",
            "r12", "r13", "r14", "r15",
        ];
        write!(f, "%{}", names[*self as usize])
    }
}

/// Vector (SSE-like) host registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Xmm(pub u8);

impl Xmm {
    /// Number of vector registers.
    pub const COUNT: u8 = 16;
}

impl fmt::Display for Xmm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%xmm{}", self.0)
    }
}

/// Width of a memory access or sub-register operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSize {
    /// 8 bits.
    U8,
    /// 16 bits.
    U16,
    /// 32 bits.
    U32,
    /// 64 bits.
    U64,
    /// 128 bits (vector only).
    U128,
}

impl MemSize {
    /// Access width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemSize::U8 => 1,
            MemSize::U16 => 2,
            MemSize::U32 => 4,
            MemSize::U64 => 8,
            MemSize::U128 => 16,
        }
    }

    /// Mask selecting the low `bytes()` bytes of a 64-bit value.
    pub fn mask(self) -> u64 {
        match self {
            MemSize::U8 => 0xFF,
            MemSize::U16 => 0xFFFF,
            MemSize::U32 => 0xFFFF_FFFF,
            MemSize::U64 | MemSize::U128 => u64::MAX,
        }
    }
}

/// A memory operand: `disp + base + index * scale`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Base register.
    pub base: Gpr,
    /// Optional scaled index register.
    pub index: Option<(Gpr, u8)>,
    /// Signed displacement.
    pub disp: i32,
}

impl MemRef {
    /// A base-plus-displacement reference.
    pub fn base_disp(base: Gpr, disp: i32) -> Self {
        MemRef {
            base,
            index: None,
            disp,
        }
    }

    /// A reference to `[base]`.
    pub fn base(base: Gpr) -> Self {
        Self::base_disp(base, 0)
    }

    /// A base + index*scale + disp reference.
    pub fn base_index(base: Gpr, index: Gpr, scale: u8, disp: i32) -> Self {
        MemRef {
            base,
            index: Some((index, scale)),
            disp,
        }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.index {
            Some((idx, scale)) => write!(f, "{:#x}({},{},{})", self.disp, self.base, idx, scale),
            None => write!(f, "{:#x}({})", self.disp, self.base),
        }
    }
}

/// A register-or-immediate source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A general-purpose register.
    Reg(Gpr),
    /// A 64-bit immediate.
    Imm(u64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "${v:#x}"),
        }
    }
}

/// Integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    /// Signed multiply (low 64 bits).
    Mul,
    /// Unsigned multiply returning the high 64 bits.
    MulHiU,
    /// Signed multiply returning the high 64 bits.
    MulHiS,
    /// Unsigned divide.
    DivU,
    /// Signed divide.
    DivS,
    /// Unsigned remainder.
    RemU,
    /// Signed remainder.
    RemS,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Rotate right.
    Ror,
}

/// Condition codes for `Jcc`, `SetCc` and `CmovCc`, mirroring the x86 set the
/// back-ends need for AArch64 condition fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal (ZF).
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned lower (CF).
    Lt,
    /// Unsigned lower or equal.
    Le,
    /// Unsigned higher or same.
    Ge,
    /// Unsigned higher.
    Gt,
    /// Signed less than.
    SLt,
    /// Signed less or equal.
    SLe,
    /// Signed greater or equal.
    SGe,
    /// Signed greater.
    SGt,
    /// Negative (SF).
    Mi,
    /// Non-negative.
    Pl,
    /// Overflow set.
    Vs,
    /// Overflow clear.
    Vc,
}

impl Cond {
    /// The condition that is true exactly when `self` is false.
    pub fn invert(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Ge => Cond::Lt,
            Cond::Gt => Cond::Le,
            Cond::SLt => Cond::SGe,
            Cond::SLe => Cond::SGt,
            Cond::SGe => Cond::SLt,
            Cond::SGt => Cond::SLe,
            Cond::Mi => Cond::Pl,
            Cond::Pl => Cond::Mi,
            Cond::Vs => Cond::Vc,
            Cond::Vc => Cond::Vs,
        }
    }
}

/// Scalar floating-point operations on vector registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpOp {
    /// Scalar double add (`addsd`).
    AddD,
    SubD,
    MulD,
    DivD,
    SqrtD,
    MinD,
    MaxD,
    /// Scalar single-precision variants.
    AddS,
    SubS,
    MulS,
    DivS,
    SqrtS,
    /// Fused multiply-add (`vfmadd`), dst = dst * src1 + src2 handled by the
    /// three-operand form in [`MachInsn::FpFma`].
    FmaD,
}

/// Packed (SIMD) integer / float operations, 128-bit lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VecOp {
    /// Packed 64-bit integer add.
    PAddQ,
    /// Packed 64-bit integer sub.
    PSubQ,
    /// Packed 32-bit integer add.
    PAddD,
    /// Packed 32-bit multiply (low).
    PMulD,
    /// Packed double-precision add.
    AddPd,
    /// Packed double-precision multiply.
    MulPd,
    /// Packed double-precision subtract.
    SubPd,
    /// Bitwise AND of the full 128 bits.
    PAnd,
    /// Bitwise OR of the full 128 bits.
    POr,
    /// Bitwise XOR of the full 128 bits.
    PXor,
    /// Broadcast the low 64 bits to both lanes.
    Dup64,
}

/// One HVM64 machine instruction.
///
/// Register operands here are *physical* registers; the DBT's low-level IR
/// uses the same opcodes with virtual registers and is lowered onto this type
/// by register allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachInsn {
    /// No operation.
    Nop,
    /// `dst <- imm`.
    MovImm { dst: Gpr, imm: u64 },
    /// `dst <- src`.
    MovReg { dst: Gpr, src: Gpr },
    /// Zero-extending load from virtual memory.
    Load {
        dst: Gpr,
        addr: MemRef,
        size: MemSize,
    },
    /// Sign-extending load from virtual memory.
    LoadSx {
        dst: Gpr,
        addr: MemRef,
        size: MemSize,
    },
    /// Store to virtual memory.
    Store {
        src: Gpr,
        addr: MemRef,
        size: MemSize,
    },
    /// Store an immediate to virtual memory.
    StoreImm {
        imm: u64,
        addr: MemRef,
        size: MemSize,
    },
    /// Address computation without memory access.
    Lea { dst: Gpr, addr: MemRef },
    /// ALU operation `dst <- dst op src` (also sets flags for Add/Sub/And/Or/Xor).
    Alu { op: AluOp, dst: Gpr, src: Operand },
    /// Compare: sets flags from `a - b` without writing a register.
    Cmp { a: Gpr, b: Operand },
    /// Test: sets flags from `a & b`.
    Test { a: Gpr, b: Operand },
    /// Two's complement negate.
    Neg { dst: Gpr },
    /// Bitwise not.
    Not { dst: Gpr },
    /// Zero-extend the low `size` bits of `src` into `dst`.
    MovZx { dst: Gpr, src: Gpr, size: MemSize },
    /// Sign-extend the low `size` bits of `src` into `dst`.
    MovSx { dst: Gpr, src: Gpr, size: MemSize },
    /// Set `dst` to 1 if the condition holds, else 0.
    SetCc { cond: Cond, dst: Gpr },
    /// Conditional move.
    CmovCc { cond: Cond, dst: Gpr, src: Gpr },
    /// Unconditional relative jump (offset in instructions within the block).
    Jmp { target: i32 },
    /// Conditional relative jump.
    Jcc { cond: Cond, target: i32 },
    /// Call a registered runtime helper.  Arguments/results use the standard
    /// registers (`rdi`, `rsi`, `rdx`, `rcx` in; `rax` out).
    CallHelper { helper: u16 },
    /// Return from the translated block to the execution engine.
    Ret,
    /// Load into a vector register.
    LoadXmm {
        dst: Xmm,
        addr: MemRef,
        size: MemSize,
    },
    /// Store from a vector register.
    StoreXmm {
        src: Xmm,
        addr: MemRef,
        size: MemSize,
    },
    /// Move GPR to the low 64 bits of a vector register.
    MovGprToXmm { dst: Xmm, src: Gpr },
    /// Move the low 64 bits of a vector register to a GPR.
    MovXmmToGpr { dst: Gpr, src: Xmm },
    /// Scalar FP operation `dst <- dst op src`.
    Fp { op: FpOp, dst: Xmm, src: Xmm },
    /// Fused multiply-add `dst <- a * b + dst` (double precision).
    FpFma { dst: Xmm, a: Xmm, b: Xmm },
    /// Scalar double compare: sets integer flags (like `ucomisd`).
    FpCmp { a: Xmm, b: Xmm },
    /// Convert signed 64-bit integer in GPR to double in XMM.
    CvtI2D { dst: Xmm, src: Gpr },
    /// Convert double in XMM to signed 64-bit integer in GPR (round to nearest).
    CvtD2I { dst: Gpr, src: Xmm },
    /// Convert single to double.
    CvtS2D { dst: Xmm, src: Xmm },
    /// Convert double to single.
    CvtD2S { dst: Xmm, src: Xmm },
    /// Packed vector operation `dst <- dst op src`.
    Vec { op: VecOp, dst: Xmm, src: Xmm },
    /// Software interrupt (enters ring 0 via the IDT).
    Int { vector: u8 },
    /// Return from interrupt (ring 0 only).
    IRet,
    /// Fast system call into ring 0.
    Syscall,
    /// Return from a fast system call.
    Sysret,
    /// Write a byte/word to an I/O port from `src` (ring 0 only).
    Out { port: u16, src: Gpr },
    /// Read from an I/O port into `dst` (ring 0 only).
    In { dst: Gpr, port: u16 },
    /// Write CR3 (page-table base + PCID) from a register (ring 0 only).
    WriteCr3 { src: Gpr },
    /// Read CR3 into a register (ring 0 only).
    ReadCr3 { dst: Gpr },
    /// Flush the entire TLB, all PCIDs (ring 0 only).
    TlbFlushAll,
    /// Flush TLB entries for the current PCID only (ring 0 only).
    TlbFlushPcid,
    /// Invalidate a single virtual page (address in `addr`, ring 0 only).
    Invlpg { addr: Gpr },
    /// Halt the machine (ring 0 only) — used by the execution engine to stop.
    Hlt,
    /// Pseudo-instruction marking an intra-superblock constituent boundary:
    /// control passed from one stitched guest basic block to the next without
    /// returning to the dispatcher.  Costs [`crate::CostModel::superblock_transfer`]
    /// and bumps [`crate::PerfCounters::superblock_transfers`].
    TraceEdge,
    /// A region-internal backward transfer: sets the guest PC (`%r15`) to
    /// `pc` and jumps `target` instructions backward within the same
    /// translation — the loop-back edge of a looping region.  On real
    /// hardware this is a single taken branch (the guest PC is implicit in
    /// the branch target), so it costs [`crate::CostModel::backedge`] and
    /// bumps [`crate::PerfCounters::backedge_transfers`].  Before taking the
    /// jump the interpreter polls [`crate::Runtime::loop_exit_pending`]; a
    /// pending event (self-modifying code on a constituent page, a queued
    /// guest event) turns the transfer into a dispatcher exit with the PC
    /// already precise at the loop header.
    BackEdge {
        /// Guest virtual address of the loop header (the value `%r15` takes).
        pc: u64,
        /// Relative jump distance (negative: backward within the block).
        target: i32,
        /// Loop-exit discipline.  `false`: a pending-event poll (or the trip
        /// limit) returns straight to the dispatcher — every slot was pinned
        /// architecturally current by the optimiser, so nothing remains to
        /// do.  `true`: the region holds *promoted* loop-carried slots in
        /// host registers, and a loop exit must instead fall through to the
        /// reconcile block that follows this instruction (compensation
        /// stores materialising the promoted slots, then `Ret`).
        reconcile: bool,
        /// Guest loop iterations one transfer covers (1 for ordinary
        /// back-edges; >1 for a wide bulk-move trip, see `dbt::idiom`).
        /// The interpreter credits `weight` transfers per taken jump so the
        /// trip limit and iteration accounting stay exact.
        weight: u32,
    },
    /// Register-to-register vector move.  `U64` copies the low lane and
    /// zeroes the upper (the same write shape as a `U64` [`MachInsn::LoadXmm`]);
    /// `U128` copies both lanes.
    MovXmm { dst: Xmm, src: Xmm, size: MemSize },
}

impl MachInsn {
    /// True if the instruction unconditionally ends a straight-line run
    /// (the interpreter and encoder treat these as block terminators).
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            MachInsn::Ret
                | MachInsn::Jmp { .. }
                | MachInsn::Hlt
                | MachInsn::IRet
                | MachInsn::Sysret
        )
    }

    /// True if the instruction may access guest-visible memory through the
    /// MMU (used by cost accounting and tests).
    pub fn touches_memory(&self) -> bool {
        matches!(
            self,
            MachInsn::Load { .. }
                | MachInsn::LoadSx { .. }
                | MachInsn::Store { .. }
                | MachInsn::StoreImm { .. }
                | MachInsn::LoadXmm { .. }
                | MachInsn::StoreXmm { .. }
        )
    }
}

impl fmt::Display for MachInsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachInsn::Nop => write!(f, "nop"),
            MachInsn::MovImm { dst, imm } => write!(f, "mov ${imm:#x}, {dst}"),
            MachInsn::MovReg { dst, src } => write!(f, "mov {src}, {dst}"),
            MachInsn::Load { dst, addr, size } => write!(f, "mov{:?} {addr}, {dst}", size),
            MachInsn::LoadSx { dst, addr, size } => write!(f, "movsx{:?} {addr}, {dst}", size),
            MachInsn::Store { src, addr, size } => write!(f, "mov{:?} {src}, {addr}", size),
            MachInsn::StoreImm { imm, addr, size } => write!(f, "mov{:?} ${imm:#x}, {addr}", size),
            MachInsn::Lea { dst, addr } => write!(f, "lea {addr}, {dst}"),
            MachInsn::Alu { op, dst, src } => write!(f, "{op:?} {src}, {dst}"),
            MachInsn::Cmp { a, b } => write!(f, "cmp {b}, {a}"),
            MachInsn::Test { a, b } => write!(f, "test {b}, {a}"),
            MachInsn::Neg { dst } => write!(f, "neg {dst}"),
            MachInsn::Not { dst } => write!(f, "not {dst}"),
            MachInsn::MovZx { dst, src, size } => write!(f, "movzx{:?} {src}, {dst}", size),
            MachInsn::MovSx { dst, src, size } => write!(f, "movsx{:?} {src}, {dst}", size),
            MachInsn::SetCc { cond, dst } => write!(f, "set{cond:?} {dst}"),
            MachInsn::CmovCc { cond, dst, src } => write!(f, "cmov{cond:?} {src}, {dst}"),
            MachInsn::Jmp { target } => write!(f, "jmp {target:+}"),
            MachInsn::Jcc { cond, target } => write!(f, "j{cond:?} {target:+}"),
            MachInsn::CallHelper { helper } => write!(f, "call helper#{helper}"),
            MachInsn::Ret => write!(f, "ret"),
            MachInsn::LoadXmm { dst, addr, .. } => write!(f, "movq {addr}, {dst}"),
            MachInsn::StoreXmm { src, addr, .. } => write!(f, "movq {src}, {addr}"),
            MachInsn::MovGprToXmm { dst, src } => write!(f, "movq {src}, {dst}"),
            MachInsn::MovXmmToGpr { dst, src } => write!(f, "movq {src}, {dst}"),
            MachInsn::Fp { op, dst, src } => write!(f, "{op:?} {src}, {dst}"),
            MachInsn::FpFma { dst, a, b } => write!(f, "vfmadd {a}, {b}, {dst}"),
            MachInsn::FpCmp { a, b } => write!(f, "ucomisd {b}, {a}"),
            MachInsn::CvtI2D { dst, src } => write!(f, "cvtsi2sd {src}, {dst}"),
            MachInsn::CvtD2I { dst, src } => write!(f, "cvtsd2si {src}, {dst}"),
            MachInsn::CvtS2D { dst, src } => write!(f, "cvtss2sd {src}, {dst}"),
            MachInsn::CvtD2S { dst, src } => write!(f, "cvtsd2ss {src}, {dst}"),
            MachInsn::Vec { op, dst, src } => write!(f, "{op:?} {src}, {dst}"),
            MachInsn::Int { vector } => write!(f, "int ${vector:#x}"),
            MachInsn::IRet => write!(f, "iret"),
            MachInsn::Syscall => write!(f, "syscall"),
            MachInsn::Sysret => write!(f, "sysret"),
            MachInsn::Out { port, src } => write!(f, "out {src}, ${port:#x}"),
            MachInsn::In { dst, port } => write!(f, "in ${port:#x}, {dst}"),
            MachInsn::WriteCr3 { src } => write!(f, "mov {src}, %cr3"),
            MachInsn::ReadCr3 { dst } => write!(f, "mov %cr3, {dst}"),
            MachInsn::TlbFlushAll => write!(f, "invtlb all"),
            MachInsn::TlbFlushPcid => write!(f, "invtlb pcid"),
            MachInsn::Invlpg { addr } => write!(f, "invlpg ({addr})"),
            MachInsn::Hlt => write!(f, "hlt"),
            MachInsn::TraceEdge => write!(f, "trace-edge"),
            MachInsn::BackEdge {
                pc,
                target,
                reconcile,
                weight,
            } => {
                let w = if *weight > 1 {
                    format!(" x{weight}")
                } else {
                    String::new()
                };
                if *reconcile {
                    write!(f, "back-edge.r {pc:#x}, {target}{w}")
                } else {
                    write!(f, "back-edge {pc:#x}, {target}{w}")
                }
            }
            MachInsn::MovXmm { dst, src, size } => match size {
                MemSize::U128 => write!(f, "movdqa {src}, {dst}"),
                _ => write!(f, "movq {src}, {dst}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_indices_roundtrip() {
        for (i, r) in Gpr::ALL.iter().enumerate() {
            assert_eq!(r.index() as usize, i);
            assert_eq!(Gpr::from_index(i as u8), Some(*r));
        }
        assert_eq!(Gpr::from_index(16), None);
    }

    #[test]
    fn allocatable_excludes_reserved() {
        assert!(!Gpr::ALLOCATABLE.contains(&Gpr::Rsp));
        assert!(!Gpr::ALLOCATABLE.contains(&Gpr::Rbp));
        assert!(!Gpr::ALLOCATABLE.contains(&Gpr::R15));
        assert_eq!(Gpr::ALLOCATABLE.len(), 13);
    }

    #[test]
    fn cond_inversion_is_involutive() {
        let all = [
            Cond::Eq,
            Cond::Ne,
            Cond::Lt,
            Cond::Le,
            Cond::Ge,
            Cond::Gt,
            Cond::SLt,
            Cond::SLe,
            Cond::SGe,
            Cond::SGt,
            Cond::Mi,
            Cond::Pl,
            Cond::Vs,
            Cond::Vc,
        ];
        for c in all {
            assert_eq!(c.invert().invert(), c);
            assert_ne!(c.invert(), c);
        }
    }

    #[test]
    fn mem_size_bytes_and_masks() {
        assert_eq!(MemSize::U8.bytes(), 1);
        assert_eq!(MemSize::U64.bytes(), 8);
        assert_eq!(MemSize::U128.bytes(), 16);
        assert_eq!(MemSize::U16.mask(), 0xFFFF);
        assert_eq!(MemSize::U32.mask(), 0xFFFF_FFFF);
    }

    #[test]
    fn terminators_and_memory_classification() {
        assert!(MachInsn::Ret.is_terminator());
        assert!(MachInsn::Jmp { target: 1 }.is_terminator());
        assert!(!MachInsn::Nop.is_terminator());
        assert!(MachInsn::Load {
            dst: Gpr::Rax,
            addr: MemRef::base(Gpr::Rbp),
            size: MemSize::U64
        }
        .touches_memory());
        assert!(!MachInsn::MovImm {
            dst: Gpr::Rax,
            imm: 0
        }
        .touches_memory());
    }

    #[test]
    fn display_formats_are_readable() {
        let insn = MachInsn::Load {
            dst: Gpr::Rax,
            addr: MemRef::base_disp(Gpr::Rbp, 0x100),
            size: MemSize::U64,
        };
        assert!(format!("{insn}").contains("rbp"));
        assert!(format!("{}", Gpr::R15).contains("r15"));
        assert!(format!("{}", Xmm(3)).contains("xmm3"));
    }
}
