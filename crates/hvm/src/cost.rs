//! The cycle cost model used for all simulated-time results.
//!
//! The paper reports wall-clock time on real hardware.  This reproduction
//! replaces the hardware with the HVM64 simulator, so "time" becomes the sum
//! of per-event costs defined here.  The constants are loosely calibrated to
//! a modern out-of-order x86 core (latencies, not throughput) — what matters
//! for reproducing the paper's *shape* is the relative cost of a plain memory
//! access vs. an inline software-TLB lookup vs. a helper call vs. a page
//! walk, because those are the mechanisms Captive and QEMU differ on.

use crate::insn::{AluOp, FpOp, MachInsn};

/// Per-event cycle costs.  All simulated-time figures derive from one
/// instance of this structure so experiments stay comparable.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Simple register-to-register ALU operation.
    pub alu: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide / remainder.
    pub div: u64,
    /// L1-hit memory access (load or store), excluding translation costs.
    pub mem: u64,
    /// Scalar floating-point add/sub/mul.
    pub fp: u64,
    /// Scalar floating-point divide or square root.
    pub fp_div: u64,
    /// Packed (SIMD) operation.
    pub vec: u64,
    /// Taken or not-taken direct branch.
    pub branch: u64,
    /// Indirect branch through a register.
    pub branch_indirect: u64,
    /// Fixed overhead of calling a runtime helper (register save/restore,
    /// call/ret, argument marshalling) — the cost QEMU pays on every softfloat
    /// or softmmu slow-path invocation.
    pub helper_call: u64,
    /// Hardware TLB hit (added to `mem`).
    pub tlb_hit: u64,
    /// Hardware TLB miss: page-walk cost per level touched.
    pub page_walk_per_level: u64,
    /// Delivering an interrupt/exception into ring 0 and returning.
    pub interrupt: u64,
    /// Fast syscall/sysret pair.
    pub syscall: u64,
    /// Writing CR3 without PCID (full TLB flush implied by the flush itself).
    pub cr3_write: u64,
    /// Explicit TLB flush (all or per-PCID).
    pub tlb_flush: u64,
    /// Port I/O access.
    pub port_io: u64,
    /// Per-block dispatch overhead in the execution engine (looking up the
    /// next translation and jumping to it).
    pub dispatch: u64,
    /// Entering a block through a patched direct chain link: a single jump
    /// between translations, with no dispatcher involvement (Section 2.6).
    pub chain: u64,
    /// Passing from one stitched constituent of a superblock to the next:
    /// internal fallthrough inside one translation — at most as cheap as a
    /// chained transfer, since not even an inter-translation jump is needed.
    pub superblock_transfer: u64,
    /// A region-internal backward transfer (the loop-back edge of a looping
    /// region): a single predicted-taken branch inside one translation, with
    /// the guest PC update folded into the jump.  At most as expensive as a
    /// chained transfer — the whole point of keeping the loop inside one
    /// region is that not even an inter-translation jump is paid.
    ///
    /// The cost is per *executed transfer instruction*, not per credited
    /// trip: a weighted back-edge (a wide bulk-move trip covering `weight`
    /// guest iterations, see `dbt::idiom`) still costs one branch — that the
    /// per-iteration loop-back and bookkeeping collapse into one trip is
    /// exactly the bulk rewrite's payoff.
    pub backedge: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu: 1,
            mul: 3,
            div: 24,
            mem: 4,
            fp: 4,
            fp_div: 20,
            vec: 2,
            branch: 1,
            branch_indirect: 4,
            helper_call: 40,
            tlb_hit: 0,
            page_walk_per_level: 20,
            interrupt: 350,
            syscall: 80,
            cr3_write: 30,
            tlb_flush: 40,
            port_io: 60,
            dispatch: 12,
            chain: 1,
            superblock_transfer: 1,
            backedge: 1,
        }
    }
}

impl CostModel {
    /// Base execution cost of one machine instruction, excluding memory
    /// translation penalties (TLB misses, faults) and helper bodies, which
    /// are accounted separately by the machine.
    pub fn insn_cost(&self, insn: &MachInsn) -> u64 {
        match insn {
            MachInsn::Nop => self.alu,
            MachInsn::MovImm { .. } | MachInsn::MovReg { .. } | MachInsn::Lea { .. } => self.alu,
            MachInsn::Load { .. }
            | MachInsn::LoadSx { .. }
            | MachInsn::Store { .. }
            | MachInsn::StoreImm { .. }
            | MachInsn::LoadXmm { .. }
            | MachInsn::StoreXmm { .. } => self.mem,
            MachInsn::Alu { op, .. } => match op {
                AluOp::Mul | AluOp::MulHiS | AluOp::MulHiU => self.mul,
                AluOp::DivS | AluOp::DivU | AluOp::RemS | AluOp::RemU => self.div,
                _ => self.alu,
            },
            MachInsn::Cmp { .. }
            | MachInsn::Test { .. }
            | MachInsn::Neg { .. }
            | MachInsn::Not { .. }
            | MachInsn::MovZx { .. }
            | MachInsn::MovSx { .. }
            | MachInsn::SetCc { .. }
            | MachInsn::CmovCc { .. } => self.alu,
            MachInsn::Jmp { .. } | MachInsn::Jcc { .. } => self.branch,
            MachInsn::Ret => self.branch_indirect,
            MachInsn::CallHelper { .. } => self.helper_call,
            MachInsn::MovGprToXmm { .. } | MachInsn::MovXmmToGpr { .. } => self.alu,
            MachInsn::MovXmm { .. } => self.alu,
            MachInsn::Fp { op, .. } => match op {
                FpOp::DivD | FpOp::DivS | FpOp::SqrtD | FpOp::SqrtS => self.fp_div,
                _ => self.fp,
            },
            MachInsn::FpFma { .. } => self.fp,
            MachInsn::FpCmp { .. } => self.fp,
            MachInsn::CvtI2D { .. }
            | MachInsn::CvtD2I { .. }
            | MachInsn::CvtS2D { .. }
            | MachInsn::CvtD2S { .. } => self.fp,
            MachInsn::Vec { .. } => self.vec,
            MachInsn::Int { .. } => self.interrupt,
            MachInsn::IRet => self.interrupt / 2,
            MachInsn::Syscall | MachInsn::Sysret => self.syscall / 2,
            MachInsn::Out { .. } | MachInsn::In { .. } => self.port_io,
            MachInsn::WriteCr3 { .. } | MachInsn::ReadCr3 { .. } => self.cr3_write,
            MachInsn::TlbFlushAll | MachInsn::TlbFlushPcid | MachInsn::Invlpg { .. } => {
                self.tlb_flush
            }
            MachInsn::Hlt => self.alu,
            MachInsn::TraceEdge => self.superblock_transfer,
            MachInsn::BackEdge { .. } => self.backedge,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{Gpr, MemRef, MemSize};

    #[test]
    fn relative_costs_are_sane() {
        let c = CostModel::default();
        assert!(
            c.helper_call > c.mem,
            "helper calls must dominate plain loads"
        );
        assert!(c.div > c.mul && c.mul >= c.alu);
        assert!(c.interrupt > c.helper_call);
        assert!(c.page_walk_per_level > c.mem);
        assert!(
            c.chain < c.dispatch,
            "chained transfers must be cheaper than dispatches"
        );
        assert!(
            c.superblock_transfer <= c.chain,
            "intra-superblock transfers must not exceed the chain cost"
        );
        assert!(
            c.backedge <= c.chain,
            "region-internal back-edges must not exceed the chain cost"
        );
    }

    #[test]
    fn insn_cost_uses_the_right_categories() {
        let c = CostModel::default();
        let load = MachInsn::Load {
            dst: Gpr::Rax,
            addr: MemRef::base(Gpr::Rbp),
            size: MemSize::U64,
        };
        assert_eq!(c.insn_cost(&load), c.mem);
        assert_eq!(
            c.insn_cost(&MachInsn::CallHelper { helper: 0 }),
            c.helper_call
        );
        assert_eq!(
            c.insn_cost(&MachInsn::Alu {
                op: AluOp::DivU,
                dst: Gpr::Rax,
                src: crate::insn::Operand::Imm(3)
            }),
            c.div
        );
        assert_eq!(
            c.insn_cost(&MachInsn::Fp {
                op: FpOp::SqrtD,
                dst: crate::insn::Xmm(0),
                src: crate::insn::Xmm(1)
            }),
            c.fp_div
        );
    }
}
