//! The HVM64 machine: register state, MMU, interpreter and runtime hooks.
//!
//! The machine executes blocks of [`MachInsn`] produced by a DBT back-end.
//! All interaction with the outside world goes through a [`Runtime`]
//! implementation supplied by the hypervisor layer: helper calls, software
//! interrupts, port I/O and page-fault handling.  This mirrors the paper's
//! split between the generated code (running inside the host VM) and the
//! execution engine / hypervisor servicing its exits.

use crate::cost::CostModel;
use crate::insn::{AluOp, Cond, FpOp, Gpr, MachInsn, MemRef, MemSize, Operand, VecOp, Xmm};
use crate::mem::PhysMem;
use crate::paging::{self, WalkError, PAGE_SIZE};
use crate::perf::PerfCounters;
use crate::tlb::{Tlb, TlbEntry};

/// x86-style protection rings.  Captive runs guest system code in ring 0 and
/// guest user code in ring 3 of the host VM (Fig. 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Ring {
    /// Most privileged.
    Ring0 = 0,
    Ring1 = 1,
    Ring2 = 2,
    /// Least privileged (user mode).
    Ring3 = 3,
}

/// Arithmetic flags produced by ALU / compare instructions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlagsReg {
    /// Zero flag.
    pub zf: bool,
    /// Sign flag.
    pub sf: bool,
    /// Carry flag.
    pub cf: bool,
    /// Overflow flag.
    pub of: bool,
}

/// Why [`Machine::run_block`] returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExitReason {
    /// The block executed `Ret`: return to the dispatcher.
    BlockEnd,
    /// A helper or `Hlt` requested that the whole machine stop.
    Halted,
    /// A helper requested an early return to the dispatcher.
    HelperExit,
    /// A memory access faulted and the runtime asked for it to be propagated
    /// (e.g. a genuine guest page fault).
    MemFault {
        /// Faulting virtual address.
        vaddr: u64,
        /// Whether the access was a write.
        write: bool,
    },
    /// The per-run fuel limit was exhausted (runaway block).
    FuelExhausted,
    /// The block was malformed (jump out of range, bad operands, ...).
    Error(String),
}

/// Result returned by runtime helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelperResult {
    /// Continue executing the block; the helper body consumed `cost` cycles.
    Continue {
        /// Simulated cycles spent inside the helper.
        cost: u64,
    },
    /// Stop executing the block and return to the dispatcher.
    Exit {
        /// Simulated cycles spent inside the helper.
        cost: u64,
    },
    /// Halt the machine entirely (e.g. guest powered off).
    Halt {
        /// Simulated cycles spent inside the helper.
        cost: u64,
    },
}

/// What to do after the runtime has seen a page fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The runtime repaired the mapping (host PTE installed); retry the
    /// access.  `cost` is the handler's cycle cost.
    Retry {
        /// Simulated cycles spent in the fault handler.
        cost: u64,
    },
    /// The fault is guest-visible; abort the block and report it.
    Propagate {
        /// Simulated cycles spent in the fault handler.
        cost: u64,
    },
}

/// Hooks through which generated code reaches runtime services.
///
/// The hypervisor layer (Captive or the QEMU-style baseline) implements this
/// trait; the machine calls into it while interpreting.
pub trait Runtime {
    /// A `CallHelper` instruction was executed.  Arguments are in `rdi`,
    /// `rsi`, `rdx`, `rcx`; the result goes in `rax`.
    fn helper(&mut self, id: u16, machine: &mut Machine) -> HelperResult;

    /// A software interrupt (`Int`) was executed (already in ring 0).
    fn interrupt(&mut self, vector: u8, machine: &mut Machine) -> HelperResult {
        let _ = (vector, machine);
        HelperResult::Continue { cost: 0 }
    }

    /// A fast system call (`Syscall`) was executed.
    fn syscall(&mut self, machine: &mut Machine) -> HelperResult {
        let _ = machine;
        HelperResult::Continue { cost: 0 }
    }

    /// An `Out` instruction wrote `value` to `port`.
    fn port_out(&mut self, port: u16, value: u64, machine: &mut Machine) -> HelperResult {
        let _ = (port, value, machine);
        HelperResult::Continue { cost: 0 }
    }

    /// An `In` instruction read from `port`; return the value.
    fn port_in(&mut self, port: u16, machine: &mut Machine) -> (u64, HelperResult) {
        let _ = (port, machine);
        (0, HelperResult::Continue { cost: 0 })
    }

    /// A memory access through the MMU faulted (missing mapping or
    /// permission violation).
    fn page_fault(&mut self, vaddr: u64, write: bool, machine: &mut Machine) -> FaultAction {
        let _ = (vaddr, write, machine);
        FaultAction::Propagate { cost: 0 }
    }

    /// Polled at every [`MachInsn::BackEdge`] before the loop-back jump is
    /// taken, with the machine's current simulated cycle count.  Returning
    /// `true` turns the transfer into a dispatcher exit (the guest PC is
    /// already precise at the loop header), which is how the hypervisor
    /// bounds the staleness of a looping translation: a self-modifying
    /// write to a constituent page, a queued guest event, or an expired
    /// [`crate::event::Timer`] deadline takes effect at the next iteration
    /// boundary instead of waiting for the loop to exit on its own.
    fn loop_exit_pending(&mut self, cycles: u64) -> bool {
        let _ = cycles;
        false
    }
}

/// A runtime that provides no services; useful for tests of pure code.
#[derive(Debug, Default)]
pub struct NullRuntime;

impl Runtime for NullRuntime {
    fn helper(&mut self, _id: u16, _machine: &mut Machine) -> HelperResult {
        HelperResult::Continue { cost: 0 }
    }
}

/// Configuration for a new machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Bytes of host physical memory.
    pub phys_mem: u64,
    /// Number of TLB entries.
    pub tlb_entries: usize,
    /// Cycle cost model.
    pub cost: CostModel,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            phys_mem: 256 * 1024 * 1024,
            tlb_entries: 512,
            cost: CostModel::default(),
        }
    }
}

/// The complete architectural state of the host virtual machine.
pub struct Machine {
    /// General-purpose registers.
    pub gpr: [u64; 16],
    /// Vector registers (low, high 64-bit lanes).
    pub xmm: [[u64; 2]; 16],
    /// ALU flags.
    pub flags: FlagsReg,
    /// Current protection ring.
    pub ring: Ring,
    /// Ring to return to on `IRet` / `Sysret`.
    saved_ring: Ring,
    /// CR3: page-table root (bits 12+) and PCID (bits 0..12).
    pub cr3: u64,
    /// Whether paging is enabled (otherwise virtual == physical).
    pub paging: bool,
    /// Physical memory.
    pub mem: PhysMem,
    /// Hardware TLB.
    pub tlb: Tlb,
    /// Cost model in effect.
    pub cost: CostModel,
    /// Performance counters.
    pub perf: PerfCounters,
    /// Maximum instructions interpreted per `run_block` call.
    pub fuel_per_block: u64,
    /// Maximum [`MachInsn::BackEdge`] transfers taken per `run_block` call.
    /// A looping region otherwise runs its whole loop in one entry, which
    /// would starve the dispatcher's block budget and trip the fuel limit
    /// on long (or infinite) guest loops; at the cap the loop *yields* —
    /// the entry returns with the PC precise at the loop header and the
    /// dispatcher chains straight back in, so the cost is one chained
    /// transfer per `loop_trip_limit` iterations.
    pub loop_trip_limit: u64,
}

/// Alias used by helper implementations that want a shorter name.
pub type HelperCtx = Machine;

/// Internal signal describing a failed virtual memory access.
#[derive(Debug, Clone, Copy)]
struct MemFaultInfo {
    vaddr: u64,
    write: bool,
}

impl Machine {
    /// Creates a machine with the given configuration, paging disabled and
    /// all registers zeroed.
    pub fn new(config: MachineConfig) -> Self {
        Machine {
            gpr: [0; 16],
            xmm: [[0; 2]; 16],
            flags: FlagsReg::default(),
            ring: Ring::Ring0,
            saved_ring: Ring::Ring0,
            cr3: 0,
            paging: false,
            mem: PhysMem::new(config.phys_mem),
            tlb: Tlb::new(config.tlb_entries),
            cost: config.cost,
            perf: PerfCounters::default(),
            fuel_per_block: 10_000_000,
            loop_trip_limit: 4096,
        }
    }

    /// Reads a general-purpose register.
    pub fn reg(&self, r: Gpr) -> u64 {
        self.gpr[r.index() as usize]
    }

    /// Writes a general-purpose register.
    pub fn set_reg(&mut self, r: Gpr, v: u64) {
        self.gpr[r.index() as usize] = v;
    }

    /// Reads a vector register.
    pub fn xmm_reg(&self, x: Xmm) -> [u64; 2] {
        self.xmm[x.0 as usize]
    }

    /// Writes a vector register.
    pub fn set_xmm(&mut self, x: Xmm, v: [u64; 2]) {
        self.xmm[x.0 as usize] = v;
    }

    /// Enables paging with the given table root and PCID.
    pub fn enable_paging(&mut self, root: u64, pcid: u16) {
        self.cr3 = (root & !0xFFF) | pcid as u64;
        self.paging = true;
    }

    /// Disables paging (virtual addresses become physical addresses).
    pub fn disable_paging(&mut self) {
        self.paging = false;
    }

    /// Current PCID from CR3.
    pub fn pcid(&self) -> u16 {
        (self.cr3 & 0xFFF) as u16
    }

    /// Current page-table root from CR3.
    pub fn pt_root(&self) -> u64 {
        self.cr3 & !0xFFF
    }

    /// Switches CR3 (page-table root and PCID), flushing non-PCID-tagged
    /// entries as real hardware would when `flush` is true.
    pub fn write_cr3(&mut self, value: u64, flush: bool) {
        self.cr3 = value;
        self.perf.cr3_writes += 1;
        if flush {
            self.tlb.flush_all();
            self.perf.tlb_flushes += 1;
        }
    }

    /// Translates a virtual address for an access of the given kind,
    /// consulting and filling the TLB.  Does not invoke the runtime.
    pub fn translate(&mut self, vaddr: u64, write: bool, user: bool) -> Result<u64, WalkError> {
        if !self.paging {
            return Ok(vaddr);
        }
        let pcid = self.pcid();
        if let Some(entry) = self.tlb.lookup(vaddr, pcid) {
            if (!write || entry.flags.writable) && (!user || entry.flags.user) {
                self.perf.tlb_hits += 1;
                self.perf.cycles += self.cost.tlb_hit;
                return Ok(entry.frame | (vaddr & (PAGE_SIZE - 1)));
            }
            // Permission upgrade required: fall through to a fresh walk so a
            // runtime-managed PTE change is observed.
        }
        self.perf.tlb_misses += 1;
        let walk = paging::walk(&self.mem, self.pt_root(), vaddr)?;
        self.perf.cycles += self.cost.page_walk_per_level * walk.levels as u64;
        if write && !walk.flags.writable {
            return Err(WalkError::NotPresent { level: 1 });
        }
        if user && !walk.flags.user {
            return Err(WalkError::NotPresent { level: 1 });
        }
        self.tlb.insert(TlbEntry {
            vpn: vaddr / PAGE_SIZE,
            frame: walk.frame,
            flags: walk.flags,
            pcid,
        });
        Ok(walk.frame | (vaddr & (PAGE_SIZE - 1)))
    }

    /// Reads `size` bytes from virtual memory (zero-extended to 64 bits).
    /// Fails with the faulting address if translation fails.
    pub fn read_virt(&mut self, vaddr: u64, size: MemSize) -> Result<u64, u64> {
        let user = self.ring == Ring::Ring3;
        let pa = self.translate(vaddr, false, user).map_err(|_| vaddr)?;
        self.perf.mem_accesses += 1;
        self.mem.read_uint(pa, size.bytes()).map_err(|_| vaddr)
    }

    /// Writes the low `size` bytes of `value` to virtual memory.
    pub fn write_virt(&mut self, vaddr: u64, value: u64, size: MemSize) -> Result<(), u64> {
        let user = self.ring == Ring::Ring3;
        let pa = self.translate(vaddr, true, user).map_err(|_| vaddr)?;
        self.perf.mem_accesses += 1;
        self.mem
            .write_uint(pa, value & size.mask(), size.bytes())
            .map_err(|_| vaddr)
    }

    /// Computes the effective address of a memory operand.
    pub fn effective_address(&self, m: &MemRef) -> u64 {
        let mut a = self.reg(m.base).wrapping_add(m.disp as i64 as u64);
        if let Some((idx, scale)) = m.index {
            a = a.wrapping_add(self.reg(idx).wrapping_mul(scale as u64));
        }
        a
    }

    fn operand_value(&self, o: &Operand) -> u64 {
        match o {
            Operand::Reg(r) => self.reg(*r),
            Operand::Imm(v) => *v,
        }
    }

    fn set_flags_logic(&mut self, result: u64) {
        self.flags.zf = result == 0;
        self.flags.sf = (result as i64) < 0;
        self.flags.cf = false;
        self.flags.of = false;
    }

    fn set_flags_add(&mut self, a: u64, b: u64, result: u64) {
        self.flags.zf = result == 0;
        self.flags.sf = (result as i64) < 0;
        self.flags.cf = result < a;
        self.flags.of = ((a ^ result) & (b ^ result)) >> 63 != 0;
    }

    fn set_flags_sub(&mut self, a: u64, b: u64, result: u64) {
        self.flags.zf = result == 0;
        self.flags.sf = (result as i64) < 0;
        self.flags.cf = a < b;
        self.flags.of = ((a ^ b) & (a ^ result)) >> 63 != 0;
    }

    /// Evaluates a condition against the current flags.
    pub fn cond(&self, c: Cond) -> bool {
        let f = self.flags;
        match c {
            Cond::Eq => f.zf,
            Cond::Ne => !f.zf,
            Cond::Lt => f.cf,
            Cond::Le => f.cf || f.zf,
            Cond::Ge => !f.cf,
            Cond::Gt => !f.cf && !f.zf,
            Cond::SLt => f.sf != f.of,
            Cond::SLe => f.zf || (f.sf != f.of),
            Cond::SGe => f.sf == f.of,
            Cond::SGt => !f.zf && (f.sf == f.of),
            Cond::Mi => f.sf,
            Cond::Pl => !f.sf,
            Cond::Vs => f.of,
            Cond::Vc => !f.of,
        }
    }

    fn alu(&mut self, op: AluOp, dst: u64, src: u64) -> u64 {
        match op {
            AluOp::Add => {
                let r = dst.wrapping_add(src);
                self.set_flags_add(dst, src, r);
                r
            }
            AluOp::Sub => {
                let r = dst.wrapping_sub(src);
                self.set_flags_sub(dst, src, r);
                r
            }
            AluOp::And => {
                let r = dst & src;
                self.set_flags_logic(r);
                r
            }
            AluOp::Or => {
                let r = dst | src;
                self.set_flags_logic(r);
                r
            }
            AluOp::Xor => {
                let r = dst ^ src;
                self.set_flags_logic(r);
                r
            }
            AluOp::Mul => dst.wrapping_mul(src),
            AluOp::MulHiU => ((dst as u128 * src as u128) >> 64) as u64,
            AluOp::MulHiS => (((dst as i64 as i128) * (src as i64 as i128)) >> 64) as u64,
            AluOp::DivU => dst.checked_div(src).unwrap_or(0),
            AluOp::DivS => {
                if src == 0 {
                    0
                } else {
                    ((dst as i64).wrapping_div(src as i64)) as u64
                }
            }
            AluOp::RemU => dst.checked_rem(src).unwrap_or(0),
            AluOp::RemS => {
                if src == 0 {
                    0
                } else {
                    ((dst as i64).wrapping_rem(src as i64)) as u64
                }
            }
            AluOp::Shl => dst.wrapping_shl((src & 63) as u32),
            AluOp::Shr => dst.wrapping_shr((src & 63) as u32),
            AluOp::Sar => ((dst as i64).wrapping_shr((src & 63) as u32)) as u64,
            AluOp::Ror => dst.rotate_right((src & 63) as u32),
        }
    }

    fn fp_scalar(&mut self, op: FpOp, dst: [u64; 2], src: [u64; 2]) -> [u64; 2] {
        let d = f64::from_bits(dst[0]);
        let s = f64::from_bits(src[0]);
        let low = match op {
            FpOp::AddD => (d + s).to_bits(),
            FpOp::SubD => (d - s).to_bits(),
            FpOp::MulD => (d * s).to_bits(),
            FpOp::DivD => (d / s).to_bits(),
            FpOp::SqrtD => {
                // Model the x86 SQRTSD corner case deterministically: the
                // square root of a negative (non-zero) operand is a
                // *negative* quiet NaN (Table 2 of the paper).
                if s < 0.0 {
                    0xFFF8_0000_0000_0000
                } else if s.is_nan() {
                    src[0] | (1 << 51)
                } else {
                    s.sqrt().to_bits()
                }
            }
            FpOp::MinD => {
                if s < d {
                    src[0]
                } else {
                    dst[0]
                }
            }
            FpOp::MaxD => {
                if s > d {
                    src[0]
                } else {
                    dst[0]
                }
            }
            FpOp::AddS | FpOp::SubS | FpOp::MulS | FpOp::DivS | FpOp::SqrtS => {
                let df = f32::from_bits(dst[0] as u32);
                let sf = f32::from_bits(src[0] as u32);
                let r = match op {
                    FpOp::AddS => df + sf,
                    FpOp::SubS => df - sf,
                    FpOp::MulS => df * sf,
                    FpOp::DivS => df / sf,
                    FpOp::SqrtS => {
                        if sf < 0.0 {
                            f32::from_bits(0xFFC0_0000)
                        } else {
                            sf.sqrt()
                        }
                    }
                    _ => unreachable!("host bug: outer match guarantees a single-precision op"),
                };
                return [(dst[0] & !0xFFFF_FFFF) | r.to_bits() as u64, dst[1]];
            }
            FpOp::FmaD => f64::mul_add(d, s, f64::from_bits(dst[0])).to_bits(),
        };
        [low, dst[1]]
    }

    fn vec_op(&mut self, op: VecOp, dst: [u64; 2], src: [u64; 2]) -> [u64; 2] {
        match op {
            VecOp::PAddQ => [dst[0].wrapping_add(src[0]), dst[1].wrapping_add(src[1])],
            VecOp::PSubQ => [dst[0].wrapping_sub(src[0]), dst[1].wrapping_sub(src[1])],
            VecOp::PAddD => {
                let lane = |d: u64, s: u64| {
                    let lo = (d as u32).wrapping_add(s as u32) as u64;
                    let hi = ((d >> 32) as u32).wrapping_add((s >> 32) as u32) as u64;
                    lo | (hi << 32)
                };
                [lane(dst[0], src[0]), lane(dst[1], src[1])]
            }
            VecOp::PMulD => {
                let lane = |d: u64, s: u64| {
                    let lo = (d as u32).wrapping_mul(s as u32) as u64;
                    let hi = ((d >> 32) as u32).wrapping_mul((s >> 32) as u32) as u64;
                    lo | (hi << 32)
                };
                [lane(dst[0], src[0]), lane(dst[1], src[1])]
            }
            VecOp::AddPd => [
                (f64::from_bits(dst[0]) + f64::from_bits(src[0])).to_bits(),
                (f64::from_bits(dst[1]) + f64::from_bits(src[1])).to_bits(),
            ],
            VecOp::SubPd => [
                (f64::from_bits(dst[0]) - f64::from_bits(src[0])).to_bits(),
                (f64::from_bits(dst[1]) - f64::from_bits(src[1])).to_bits(),
            ],
            VecOp::MulPd => [
                (f64::from_bits(dst[0]) * f64::from_bits(src[0])).to_bits(),
                (f64::from_bits(dst[1]) * f64::from_bits(src[1])).to_bits(),
            ],
            VecOp::PAnd => [dst[0] & src[0], dst[1] & src[1]],
            VecOp::POr => [dst[0] | src[0], dst[1] | src[1]],
            VecOp::PXor => [dst[0] ^ src[0], dst[1] ^ src[1]],
            VecOp::Dup64 => [src[0], src[0]],
        }
    }

    /// Performs a memory load for the interpreter, consulting the runtime on
    /// faults.
    fn do_load(
        &mut self,
        rt: &mut dyn Runtime,
        vaddr: u64,
        size: MemSize,
        wide: bool,
    ) -> Result<[u64; 2], Result<MemFaultInfo, ExitReason>> {
        let mut retried = false;
        loop {
            let user = self.ring == Ring::Ring3;
            match self.translate(vaddr, false, user) {
                Ok(pa) => {
                    self.perf.mem_accesses += 1;
                    if wide {
                        return self
                            .mem
                            .read_u128(pa)
                            .map_err(|e| Err(ExitReason::Error(e.to_string())));
                    }
                    return self
                        .mem
                        .read_uint(pa, size.bytes())
                        .map(|v| [v, 0])
                        .map_err(|e| Err(ExitReason::Error(e.to_string())));
                }
                Err(_) if !retried => {
                    retried = true;
                    self.perf.page_faults += 1;
                    match rt.page_fault(vaddr, false, self) {
                        FaultAction::Retry { cost } => {
                            self.perf.cycles += cost;
                            continue;
                        }
                        FaultAction::Propagate { cost } => {
                            self.perf.cycles += cost;
                            return Err(Ok(MemFaultInfo {
                                vaddr,
                                write: false,
                            }));
                        }
                    }
                }
                // The runtime claimed the retry would succeed but the
                // mapping still faults (e.g. a hostile guest unmapped the
                // page from its own handler).  Degrade to a guest-visible
                // data abort instead of killing the engine.
                Err(_) => {
                    return Err(Ok(MemFaultInfo {
                        vaddr,
                        write: false,
                    }))
                }
            }
        }
    }

    /// Performs a memory store for the interpreter, consulting the runtime on
    /// faults.
    fn do_store(
        &mut self,
        rt: &mut dyn Runtime,
        vaddr: u64,
        value: [u64; 2],
        size: MemSize,
        wide: bool,
    ) -> Result<(), Result<MemFaultInfo, ExitReason>> {
        let mut retried = false;
        loop {
            let user = self.ring == Ring::Ring3;
            match self.translate(vaddr, true, user) {
                Ok(pa) => {
                    self.perf.mem_accesses += 1;
                    let res = if wide {
                        self.mem.write_u128(pa, value)
                    } else {
                        self.mem
                            .write_uint(pa, value[0] & size.mask(), size.bytes())
                    };
                    return res.map_err(|e| Err(ExitReason::Error(e.to_string())));
                }
                Err(_) if !retried => {
                    retried = true;
                    self.perf.page_faults += 1;
                    match rt.page_fault(vaddr, true, self) {
                        FaultAction::Retry { cost } => {
                            self.perf.cycles += cost;
                            continue;
                        }
                        FaultAction::Propagate { cost } => {
                            self.perf.cycles += cost;
                            return Err(Ok(MemFaultInfo { vaddr, write: true }));
                        }
                    }
                }
                // Mapping still faults after a runtime-promised retry; see
                // `do_load` — degrade to a guest data abort, never a host
                // engine error.
                Err(_) => return Err(Ok(MemFaultInfo { vaddr, write: true })),
            }
        }
    }

    /// Executes one translated block entered through the dispatcher.  `code`
    /// is the block's instruction sequence; jumps are relative indices within
    /// the block.
    pub fn run_block(&mut self, code: &[MachInsn], rt: &mut dyn Runtime) -> ExitReason {
        self.perf.cycles += self.cost.dispatch;
        self.run_block_body(code, rt)
    }

    /// Executes one translated block entered through a patched direct chain
    /// link: charges the (near-zero) chain cost instead of the dispatch cost
    /// and counts the entry as chained.
    pub fn run_block_chained(&mut self, code: &[MachInsn], rt: &mut dyn Runtime) -> ExitReason {
        self.perf.cycles += self.cost.chain;
        self.perf.chained_entries += 1;
        self.run_block_body(code, rt)
    }

    fn run_block_body(&mut self, code: &[MachInsn], rt: &mut dyn Runtime) -> ExitReason {
        self.perf.blocks_entered += 1;
        let mut pc: i64 = 0;
        let mut fuel = self.fuel_per_block;
        let mut backedges_taken = 0u64;
        loop {
            if fuel == 0 {
                return ExitReason::FuelExhausted;
            }
            fuel -= 1;
            let Some(insn) = code.get(pc as usize) else {
                // Running off the end of a block behaves like a return.
                return ExitReason::BlockEnd;
            };
            let insn = *insn;
            self.perf.insns += 1;
            self.perf.cycles += self.cost.insn_cost(&insn);
            pc += 1;
            match insn {
                MachInsn::Nop => {}
                MachInsn::MovImm { dst, imm } => self.set_reg(dst, imm),
                MachInsn::MovReg { dst, src } => self.set_reg(dst, self.reg(src)),
                MachInsn::Load { dst, addr, size } => {
                    let va = self.effective_address(&addr);
                    match self.do_load(rt, va, size, false) {
                        Ok(v) => self.set_reg(dst, v[0]),
                        Err(Ok(f)) => {
                            return ExitReason::MemFault {
                                vaddr: f.vaddr,
                                write: f.write,
                            }
                        }
                        Err(Err(e)) => return e,
                    }
                }
                MachInsn::LoadSx { dst, addr, size } => {
                    let va = self.effective_address(&addr);
                    match self.do_load(rt, va, size, false) {
                        Ok(v) => {
                            let bits = size.bytes() * 8;
                            let val = v[0];
                            let sext = if bits == 64 {
                                val
                            } else {
                                let shift = 64 - bits;
                                (((val << shift) as i64) >> shift) as u64
                            };
                            self.set_reg(dst, sext);
                        }
                        Err(Ok(f)) => {
                            return ExitReason::MemFault {
                                vaddr: f.vaddr,
                                write: f.write,
                            }
                        }
                        Err(Err(e)) => return e,
                    }
                }
                MachInsn::Store { src, addr, size } => {
                    let va = self.effective_address(&addr);
                    let v = self.reg(src);
                    match self.do_store(rt, va, [v, 0], size, false) {
                        Ok(()) => {}
                        Err(Ok(f)) => {
                            return ExitReason::MemFault {
                                vaddr: f.vaddr,
                                write: f.write,
                            }
                        }
                        Err(Err(e)) => return e,
                    }
                }
                MachInsn::StoreImm { imm, addr, size } => {
                    let va = self.effective_address(&addr);
                    match self.do_store(rt, va, [imm, 0], size, false) {
                        Ok(()) => {}
                        Err(Ok(f)) => {
                            return ExitReason::MemFault {
                                vaddr: f.vaddr,
                                write: f.write,
                            }
                        }
                        Err(Err(e)) => return e,
                    }
                }
                MachInsn::Lea { dst, addr } => {
                    let va = self.effective_address(&addr);
                    self.set_reg(dst, va);
                }
                MachInsn::Alu { op, dst, src } => {
                    let a = self.reg(dst);
                    let b = self.operand_value(&src);
                    let r = self.alu(op, a, b);
                    self.set_reg(dst, r);
                }
                MachInsn::Cmp { a, b } => {
                    let av = self.reg(a);
                    let bv = self.operand_value(&b);
                    let r = av.wrapping_sub(bv);
                    self.set_flags_sub(av, bv, r);
                }
                MachInsn::Test { a, b } => {
                    let r = self.reg(a) & self.operand_value(&b);
                    self.set_flags_logic(r);
                }
                MachInsn::Neg { dst } => {
                    let v = self.reg(dst).wrapping_neg();
                    self.set_reg(dst, v);
                }
                MachInsn::Not { dst } => {
                    let v = !self.reg(dst);
                    self.set_reg(dst, v);
                }
                MachInsn::MovZx { dst, src, size } => {
                    self.set_reg(dst, self.reg(src) & size.mask());
                }
                MachInsn::MovSx { dst, src, size } => {
                    let bits = size.bytes() * 8;
                    let val = self.reg(src) & size.mask();
                    let shift = 64 - bits;
                    let sext = (((val << shift) as i64) >> shift) as u64;
                    self.set_reg(dst, sext);
                }
                MachInsn::SetCc { cond, dst } => {
                    let v = self.cond(cond) as u64;
                    self.set_reg(dst, v);
                }
                MachInsn::CmovCc { cond, dst, src } => {
                    if self.cond(cond) {
                        self.set_reg(dst, self.reg(src));
                    }
                }
                MachInsn::Jmp { target } => {
                    pc = pc - 1 + target as i64;
                    if pc < 0 || pc as usize > code.len() {
                        return ExitReason::Error(format!("jump out of range to {pc}"));
                    }
                }
                MachInsn::Jcc { cond, target } => {
                    if self.cond(cond) {
                        pc = pc - 1 + target as i64;
                        if pc < 0 || pc as usize > code.len() {
                            return ExitReason::Error(format!("jump out of range to {pc}"));
                        }
                    }
                }
                MachInsn::CallHelper { helper } => {
                    self.perf.helper_calls += 1;
                    match rt.helper(helper, self) {
                        HelperResult::Continue { cost } => self.perf.cycles += cost,
                        HelperResult::Exit { cost } => {
                            self.perf.cycles += cost;
                            return ExitReason::HelperExit;
                        }
                        HelperResult::Halt { cost } => {
                            self.perf.cycles += cost;
                            return ExitReason::Halted;
                        }
                    }
                }
                MachInsn::Ret => return ExitReason::BlockEnd,
                MachInsn::LoadXmm { dst, addr, size } => {
                    let va = self.effective_address(&addr);
                    let wide = size == MemSize::U128;
                    match self.do_load(rt, va, size, wide) {
                        Ok(v) => {
                            if wide {
                                self.set_xmm(dst, v);
                            } else {
                                self.set_xmm(dst, [v[0], 0]);
                            }
                        }
                        Err(Ok(f)) => {
                            return ExitReason::MemFault {
                                vaddr: f.vaddr,
                                write: f.write,
                            }
                        }
                        Err(Err(e)) => return e,
                    }
                }
                MachInsn::StoreXmm { src, addr, size } => {
                    let va = self.effective_address(&addr);
                    let wide = size == MemSize::U128;
                    let v = self.xmm_reg(src);
                    match self.do_store(rt, va, v, size, wide) {
                        Ok(()) => {}
                        Err(Ok(f)) => {
                            return ExitReason::MemFault {
                                vaddr: f.vaddr,
                                write: f.write,
                            }
                        }
                        Err(Err(e)) => return e,
                    }
                }
                MachInsn::MovGprToXmm { dst, src } => {
                    let v = self.reg(src);
                    self.set_xmm(dst, [v, 0]);
                }
                MachInsn::MovXmm { dst, src, size } => {
                    let v = self.xmm_reg(src);
                    match size {
                        MemSize::U128 => self.set_xmm(dst, v),
                        // Low-lane move zeroes the upper lane, mirroring a
                        // U64 LoadXmm.
                        _ => self.set_xmm(dst, [v[0], 0]),
                    }
                }
                MachInsn::MovXmmToGpr { dst, src } => {
                    let v = self.xmm_reg(src)[0];
                    self.set_reg(dst, v);
                }
                MachInsn::Fp { op, dst, src } => {
                    let d = self.xmm_reg(dst);
                    let s = self.xmm_reg(src);
                    let r = self.fp_scalar(op, d, s);
                    self.set_xmm(dst, r);
                }
                MachInsn::FpFma { dst, a, b } => {
                    let acc = f64::from_bits(self.xmm_reg(dst)[0]);
                    let av = f64::from_bits(self.xmm_reg(a)[0]);
                    let bv = f64::from_bits(self.xmm_reg(b)[0]);
                    let hi = self.xmm_reg(dst)[1];
                    self.set_xmm(dst, [f64::mul_add(av, bv, acc).to_bits(), hi]);
                }
                MachInsn::FpCmp { a, b } => {
                    let x = f64::from_bits(self.xmm_reg(a)[0]);
                    let y = f64::from_bits(self.xmm_reg(b)[0]);
                    // ucomisd semantics: ZF/CF encode the outcome, OF/SF cleared.
                    self.flags.of = false;
                    self.flags.sf = false;
                    if x.is_nan() || y.is_nan() {
                        self.flags.zf = true;
                        self.flags.cf = true;
                    } else if x < y {
                        self.flags.zf = false;
                        self.flags.cf = true;
                    } else if x > y {
                        self.flags.zf = false;
                        self.flags.cf = false;
                    } else {
                        self.flags.zf = true;
                        self.flags.cf = false;
                    }
                }
                MachInsn::CvtI2D { dst, src } => {
                    let v = self.reg(src) as i64 as f64;
                    let hi = self.xmm_reg(dst)[1];
                    self.set_xmm(dst, [v.to_bits(), hi]);
                }
                MachInsn::CvtD2I { dst, src } => {
                    let v = f64::from_bits(self.xmm_reg(src)[0]);
                    let r = if v.is_nan() {
                        0
                    } else if v >= i64::MAX as f64 {
                        i64::MAX
                    } else if v <= i64::MIN as f64 {
                        i64::MIN
                    } else {
                        v.round_ties_even() as i64
                    };
                    self.set_reg(dst, r as u64);
                }
                MachInsn::CvtS2D { dst, src } => {
                    let v = f32::from_bits(self.xmm_reg(src)[0] as u32) as f64;
                    let hi = self.xmm_reg(dst)[1];
                    self.set_xmm(dst, [v.to_bits(), hi]);
                }
                MachInsn::CvtD2S { dst, src } => {
                    let v = f64::from_bits(self.xmm_reg(src)[0]) as f32;
                    let hi = self.xmm_reg(dst)[1];
                    self.set_xmm(dst, [v.to_bits() as u64, hi]);
                }
                MachInsn::Vec { op, dst, src } => {
                    let d = self.xmm_reg(dst);
                    let s = self.xmm_reg(src);
                    let r = self.vec_op(op, d, s);
                    self.set_xmm(dst, r);
                }
                MachInsn::Int { vector } => {
                    self.perf.interrupts += 1;
                    self.saved_ring = self.ring;
                    self.ring = Ring::Ring0;
                    match rt.interrupt(vector, self) {
                        HelperResult::Continue { cost } => {
                            self.perf.cycles += cost;
                            self.ring = self.saved_ring;
                        }
                        HelperResult::Exit { cost } => {
                            self.perf.cycles += cost;
                            self.ring = self.saved_ring;
                            return ExitReason::HelperExit;
                        }
                        HelperResult::Halt { cost } => {
                            self.perf.cycles += cost;
                            return ExitReason::Halted;
                        }
                    }
                }
                MachInsn::IRet => {
                    if self.ring != Ring::Ring0 {
                        return ExitReason::Error("iret outside ring 0".into());
                    }
                    self.ring = self.saved_ring;
                }
                MachInsn::Syscall => {
                    self.perf.syscalls += 1;
                    self.saved_ring = self.ring;
                    self.ring = Ring::Ring0;
                    match rt.syscall(self) {
                        HelperResult::Continue { cost } => {
                            self.perf.cycles += cost;
                            self.ring = self.saved_ring;
                        }
                        HelperResult::Exit { cost } => {
                            self.perf.cycles += cost;
                            self.ring = self.saved_ring;
                            return ExitReason::HelperExit;
                        }
                        HelperResult::Halt { cost } => {
                            self.perf.cycles += cost;
                            return ExitReason::Halted;
                        }
                    }
                }
                MachInsn::Sysret => {
                    if self.ring != Ring::Ring0 {
                        return ExitReason::Error("sysret outside ring 0".into());
                    }
                    self.ring = self.saved_ring;
                }
                MachInsn::Out { port, src } => {
                    if self.ring != Ring::Ring0 {
                        return ExitReason::Error("out instruction outside ring 0".into());
                    }
                    self.perf.port_ios += 1;
                    let v = self.reg(src);
                    match rt.port_out(port, v, self) {
                        HelperResult::Continue { cost } => self.perf.cycles += cost,
                        HelperResult::Exit { cost } => {
                            self.perf.cycles += cost;
                            return ExitReason::HelperExit;
                        }
                        HelperResult::Halt { cost } => {
                            self.perf.cycles += cost;
                            return ExitReason::Halted;
                        }
                    }
                }
                MachInsn::In { dst, port } => {
                    if self.ring != Ring::Ring0 {
                        return ExitReason::Error("in instruction outside ring 0".into());
                    }
                    self.perf.port_ios += 1;
                    let (v, res) = rt.port_in(port, self);
                    self.set_reg(dst, v);
                    match res {
                        HelperResult::Continue { cost } => self.perf.cycles += cost,
                        HelperResult::Exit { cost } => {
                            self.perf.cycles += cost;
                            return ExitReason::HelperExit;
                        }
                        HelperResult::Halt { cost } => {
                            self.perf.cycles += cost;
                            return ExitReason::Halted;
                        }
                    }
                }
                MachInsn::WriteCr3 { src } => {
                    if self.ring != Ring::Ring0 {
                        return ExitReason::Error("cr3 write outside ring 0".into());
                    }
                    let v = self.reg(src);
                    // PCID-style CR3 write: keep TLB entries (they are tagged).
                    self.write_cr3(v, false);
                }
                MachInsn::ReadCr3 { dst } => {
                    if self.ring != Ring::Ring0 {
                        return ExitReason::Error("cr3 read outside ring 0".into());
                    }
                    self.set_reg(dst, self.cr3);
                }
                MachInsn::TlbFlushAll => {
                    if self.ring != Ring::Ring0 {
                        return ExitReason::Error("TLB flush outside ring 0".into());
                    }
                    self.perf.tlb_flushes += 1;
                    self.tlb.flush_all();
                }
                MachInsn::TlbFlushPcid => {
                    if self.ring != Ring::Ring0 {
                        return ExitReason::Error("TLB flush outside ring 0".into());
                    }
                    self.perf.tlb_flushes += 1;
                    let pcid = self.pcid();
                    self.tlb.flush_pcid(pcid);
                }
                MachInsn::Invlpg { addr } => {
                    if self.ring != Ring::Ring0 {
                        return ExitReason::Error("invlpg outside ring 0".into());
                    }
                    self.perf.tlb_flushes += 1;
                    let va = self.reg(addr);
                    self.tlb.flush_page(va);
                }
                MachInsn::Hlt => {
                    if self.ring != Ring::Ring0 {
                        return ExitReason::Error("hlt outside ring 0".into());
                    }
                    return ExitReason::Halted;
                }
                MachInsn::TraceEdge => {
                    self.perf.superblock_transfers += 1;
                }
                MachInsn::BackEdge {
                    pc: header,
                    target,
                    reconcile,
                    weight,
                } => {
                    // The PC update is folded into the transfer: state is
                    // precise at the loop header whether the jump is taken or
                    // the pending-event poll exits to the dispatcher.
                    self.set_reg(Gpr::R15, header);
                    if rt.loop_exit_pending(self.perf.cycles)
                        || backedges_taken >= self.loop_trip_limit
                    {
                        if !reconcile {
                            return ExitReason::BlockEnd;
                        }
                        // Promoted region: fall through into the reconcile
                        // block (compensation stores + Ret) so the promoted
                        // slots are materialised before the dispatcher sees
                        // the register file.
                    } else {
                        // A wide bulk-move trip covers `weight` guest
                        // iterations: credit them all so the trip limit and
                        // the engine's per-trip guest-instruction accounting
                        // stay exact.
                        backedges_taken += weight as u64;
                        self.perf.backedge_transfers += weight as u64;
                        pc = pc - 1 + target as i64;
                        if pc < 0 || pc as usize > code.len() {
                            return ExitReason::Error(format!("back-edge out of range to {pc}"));
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paging::{map_page, FrameAlloc, PageFlags};

    fn machine() -> Machine {
        Machine::new(MachineConfig {
            phys_mem: 8 * 1024 * 1024,
            ..Default::default()
        })
    }

    #[test]
    fn arithmetic_and_flags() {
        let mut m = machine();
        let mut rt = NullRuntime;
        let code = [
            MachInsn::MovImm {
                dst: Gpr::Rax,
                imm: 40,
            },
            MachInsn::Alu {
                op: AluOp::Add,
                dst: Gpr::Rax,
                src: Operand::Imm(2),
            },
            MachInsn::Cmp {
                a: Gpr::Rax,
                b: Operand::Imm(42),
            },
            MachInsn::SetCc {
                cond: Cond::Eq,
                dst: Gpr::Rbx,
            },
            MachInsn::Ret,
        ];
        assert_eq!(m.run_block(&code, &mut rt), ExitReason::BlockEnd);
        assert_eq!(m.reg(Gpr::Rax), 42);
        assert_eq!(m.reg(Gpr::Rbx), 1);
        assert_eq!(m.perf.insns, 5);
        assert!(m.perf.cycles > 0);
    }

    #[test]
    fn flat_memory_access_without_paging() {
        let mut m = machine();
        let mut rt = NullRuntime;
        let code = [
            MachInsn::MovImm {
                dst: Gpr::Rsi,
                imm: 0x2000,
            },
            MachInsn::MovImm {
                dst: Gpr::Rax,
                imm: 0xDEAD_BEEF,
            },
            MachInsn::Store {
                src: Gpr::Rax,
                addr: MemRef::base(Gpr::Rsi),
                size: MemSize::U64,
            },
            MachInsn::Load {
                dst: Gpr::Rbx,
                addr: MemRef::base_disp(Gpr::Rsi, 0),
                size: MemSize::U32,
            },
            MachInsn::Ret,
        ];
        assert_eq!(m.run_block(&code, &mut rt), ExitReason::BlockEnd);
        assert_eq!(m.reg(Gpr::Rbx), 0xDEAD_BEEF);
        assert_eq!(m.mem.read_u64(0x2000).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn loops_with_conditional_jumps() {
        let mut m = machine();
        let mut rt = NullRuntime;
        // Sum 1..=10 in rax using rcx as the counter.
        let code = [
            MachInsn::MovImm {
                dst: Gpr::Rax,
                imm: 0,
            },
            MachInsn::MovImm {
                dst: Gpr::Rcx,
                imm: 10,
            },
            // loop:
            MachInsn::Alu {
                op: AluOp::Add,
                dst: Gpr::Rax,
                src: Operand::Reg(Gpr::Rcx),
            },
            MachInsn::Alu {
                op: AluOp::Sub,
                dst: Gpr::Rcx,
                src: Operand::Imm(1),
            },
            MachInsn::Jcc {
                cond: Cond::Ne,
                target: -2,
            },
            MachInsn::Ret,
        ];
        assert_eq!(m.run_block(&code, &mut rt), ExitReason::BlockEnd);
        assert_eq!(m.reg(Gpr::Rax), 55);
    }

    #[test]
    fn paging_translates_and_counts_tlb() {
        let mut m = machine();
        let mut rt = NullRuntime;
        let mut alloc = FrameAlloc::new(0x100000, 0x200000);
        let root = alloc.alloc(&mut m.mem).unwrap();
        assert!(map_page(
            &mut m.mem,
            root,
            0x4000_0000,
            0x3000,
            PageFlags::kernel_rw(),
            &mut alloc
        ));
        m.enable_paging(root, 0);
        m.mem.write_u64(0x3008, 0x1234).unwrap();

        let code = [
            MachInsn::MovImm {
                dst: Gpr::Rsi,
                imm: 0x4000_0008,
            },
            MachInsn::Load {
                dst: Gpr::Rax,
                addr: MemRef::base(Gpr::Rsi),
                size: MemSize::U64,
            },
            MachInsn::Load {
                dst: Gpr::Rbx,
                addr: MemRef::base(Gpr::Rsi),
                size: MemSize::U64,
            },
            MachInsn::Ret,
        ];
        assert_eq!(m.run_block(&code, &mut rt), ExitReason::BlockEnd);
        assert_eq!(m.reg(Gpr::Rax), 0x1234);
        assert_eq!(m.perf.tlb_misses, 1, "first access walks");
        assert_eq!(m.perf.tlb_hits, 1, "second access hits the TLB");
    }

    #[test]
    fn unmapped_access_propagates_fault() {
        let mut m = machine();
        let mut rt = NullRuntime;
        let mut alloc = FrameAlloc::new(0x100000, 0x200000);
        let root = alloc.alloc(&mut m.mem).unwrap();
        m.enable_paging(root, 0);
        let code = [
            MachInsn::MovImm {
                dst: Gpr::Rsi,
                imm: 0x7777_0000,
            },
            MachInsn::Load {
                dst: Gpr::Rax,
                addr: MemRef::base(Gpr::Rsi),
                size: MemSize::U64,
            },
            MachInsn::Ret,
        ];
        assert_eq!(
            m.run_block(&code, &mut rt),
            ExitReason::MemFault {
                vaddr: 0x7777_0000,
                write: false
            }
        );
        assert_eq!(m.perf.page_faults, 1);
    }

    #[test]
    fn user_mode_cannot_touch_kernel_pages() {
        let mut m = machine();
        let mut rt = NullRuntime;
        let mut alloc = FrameAlloc::new(0x100000, 0x200000);
        let root = alloc.alloc(&mut m.mem).unwrap();
        assert!(map_page(
            &mut m.mem,
            root,
            0x5000,
            0x6000,
            PageFlags::kernel_rw(),
            &mut alloc
        ));
        m.enable_paging(root, 0);
        m.ring = Ring::Ring3;
        let code = [
            MachInsn::MovImm {
                dst: Gpr::Rsi,
                imm: 0x5000,
            },
            MachInsn::Load {
                dst: Gpr::Rax,
                addr: MemRef::base(Gpr::Rsi),
                size: MemSize::U64,
            },
            MachInsn::Ret,
        ];
        assert!(matches!(
            m.run_block(&code, &mut rt),
            ExitReason::MemFault { .. }
        ));
    }

    #[test]
    fn privileged_instructions_fault_in_ring3() {
        let mut m = machine();
        let mut rt = NullRuntime;
        m.ring = Ring::Ring3;
        let code = [MachInsn::TlbFlushAll, MachInsn::Ret];
        assert!(matches!(m.run_block(&code, &mut rt), ExitReason::Error(_)));
        let code = [MachInsn::Hlt];
        assert!(matches!(m.run_block(&code, &mut rt), ExitReason::Error(_)));
    }

    #[test]
    fn fp_and_vector_ops() {
        let mut m = machine();
        let mut rt = NullRuntime;
        m.set_xmm(Xmm(0), [2.0f64.to_bits(), 0]);
        m.set_xmm(Xmm(1), [3.5f64.to_bits(), 0]);
        m.set_xmm(Xmm(2), [1.0f64.to_bits(), 10.0f64.to_bits()]);
        m.set_xmm(Xmm(3), [4.0f64.to_bits(), 0.5f64.to_bits()]);
        let code = [
            MachInsn::Fp {
                op: FpOp::MulD,
                dst: Xmm(0),
                src: Xmm(1),
            },
            MachInsn::Vec {
                op: VecOp::AddPd,
                dst: Xmm(2),
                src: Xmm(3),
            },
            MachInsn::Ret,
        ];
        assert_eq!(m.run_block(&code, &mut rt), ExitReason::BlockEnd);
        assert_eq!(f64::from_bits(m.xmm_reg(Xmm(0))[0]), 7.0);
        assert_eq!(f64::from_bits(m.xmm_reg(Xmm(2))[0]), 5.0);
        assert_eq!(f64::from_bits(m.xmm_reg(Xmm(2))[1]), 10.5);
    }

    #[test]
    fn sqrt_of_negative_matches_x86_sign_behaviour() {
        let mut m = machine();
        let mut rt = NullRuntime;
        m.set_xmm(Xmm(1), [(-0.5f64).to_bits(), 0]);
        let code = [
            MachInsn::Fp {
                op: FpOp::SqrtD,
                dst: Xmm(0),
                src: Xmm(1),
            },
            MachInsn::Ret,
        ];
        m.run_block(&code, &mut rt);
        let bits = m.xmm_reg(Xmm(0))[0];
        assert!(f64::from_bits(bits).is_nan());
        assert_eq!(
            bits >> 63,
            1,
            "host (x86-style) sqrt returns a negative NaN"
        );
    }

    #[test]
    fn helper_calls_reach_the_runtime() {
        struct CountingRt {
            calls: u32,
        }
        impl Runtime for CountingRt {
            fn helper(&mut self, id: u16, m: &mut Machine) -> HelperResult {
                self.calls += 1;
                let arg = m.reg(Gpr::Rdi);
                m.set_reg(Gpr::Rax, arg * 2 + id as u64);
                HelperResult::Continue { cost: 100 }
            }
        }
        let mut m = machine();
        let mut rt = CountingRt { calls: 0 };
        let code = [
            MachInsn::MovImm {
                dst: Gpr::Rdi,
                imm: 21,
            },
            MachInsn::CallHelper { helper: 7 },
            MachInsn::Ret,
        ];
        let before = m.perf.cycles;
        assert_eq!(m.run_block(&code, &mut rt), ExitReason::BlockEnd);
        assert_eq!(rt.calls, 1);
        assert_eq!(m.reg(Gpr::Rax), 49);
        assert!(m.perf.cycles - before >= 100 + m.cost.helper_call);
    }

    #[test]
    fn interrupt_switches_to_ring0_and_back() {
        struct RingCheckRt {
            observed: Option<Ring>,
        }
        impl Runtime for RingCheckRt {
            fn helper(&mut self, _id: u16, _m: &mut Machine) -> HelperResult {
                HelperResult::Continue { cost: 0 }
            }
            fn interrupt(&mut self, _v: u8, m: &mut Machine) -> HelperResult {
                self.observed = Some(m.ring);
                HelperResult::Continue { cost: 50 }
            }
        }
        let mut m = machine();
        m.ring = Ring::Ring3;
        let mut rt = RingCheckRt { observed: None };
        let code = [MachInsn::Int { vector: 0x80 }, MachInsn::Ret];
        assert_eq!(m.run_block(&code, &mut rt), ExitReason::BlockEnd);
        assert_eq!(rt.observed, Some(Ring::Ring0));
        assert_eq!(m.ring, Ring::Ring3, "ring restored after the interrupt");
    }

    #[test]
    fn fuel_limit_stops_runaway_blocks() {
        let mut m = machine();
        m.fuel_per_block = 100;
        let mut rt = NullRuntime;
        let code = [MachInsn::Jmp { target: 0 }];
        assert_eq!(m.run_block(&code, &mut rt), ExitReason::FuelExhausted);
    }

    #[test]
    fn fault_handler_can_repair_and_retry() {
        struct FixerRt {
            root: u64,
            alloc: FrameAlloc,
            fixed: u32,
        }
        impl Runtime for FixerRt {
            fn helper(&mut self, _id: u16, _m: &mut Machine) -> HelperResult {
                HelperResult::Continue { cost: 0 }
            }
            fn page_fault(&mut self, vaddr: u64, _write: bool, m: &mut Machine) -> FaultAction {
                self.fixed += 1;
                let page = vaddr & !(PAGE_SIZE - 1);
                map_page(
                    &mut m.mem,
                    self.root,
                    page,
                    0x3000,
                    PageFlags::kernel_rw(),
                    &mut self.alloc,
                );
                FaultAction::Retry { cost: 500 }
            }
        }
        let mut m = machine();
        let mut alloc = FrameAlloc::new(0x100000, 0x200000);
        let root = alloc.alloc(&mut m.mem).unwrap();
        m.enable_paging(root, 0);
        m.mem.write_u64(0x3010, 77).unwrap();
        let mut rt = FixerRt {
            root,
            alloc,
            fixed: 0,
        };
        let code = [
            MachInsn::MovImm {
                dst: Gpr::Rsi,
                imm: 0x9000_0010,
            },
            MachInsn::Load {
                dst: Gpr::Rax,
                addr: MemRef::base(Gpr::Rsi),
                size: MemSize::U64,
            },
            MachInsn::Ret,
        ];
        assert_eq!(m.run_block(&code, &mut rt), ExitReason::BlockEnd);
        assert_eq!(rt.fixed, 1, "handler ran once");
        assert_eq!(m.reg(Gpr::Rax), 77, "access succeeded after repair");
    }
}
