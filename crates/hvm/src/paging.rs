//! Four-level hierarchical page tables and the hardware page-walker model.
//!
//! The layout mirrors x86-64 long mode: CR3 holds the physical base of the
//! top-level table (PML4) plus a PCID in its low 12 bits; each level holds
//! 512 eight-byte entries; virtual addresses are 48 bits split 9/9/9/9/12.
//! Captive builds and mutates these tables directly (it owns the "bare
//! metal"), which is the mechanism behind the paper's accelerated virtual
//! memory system (Section 2.7).

use crate::mem::PhysMem;

/// Page size in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 4096;
/// Number of entries per table level.
pub const ENTRIES_PER_TABLE: u64 = 512;
/// Number of levels walked (PML4, PDPT, PD, PT).
pub const LEVELS: u32 = 4;
/// Size of one page table in bytes.
pub const TABLE_SIZE: u64 = ENTRIES_PER_TABLE * 8;

/// Access permissions and attributes of a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PageFlags {
    /// Mapping exists.
    pub present: bool,
    /// Writes allowed.
    pub writable: bool,
    /// Ring-3 access allowed.
    pub user: bool,
}

impl PageFlags {
    /// Read/write supervisor-only mapping.
    pub const fn kernel_rw() -> Self {
        PageFlags {
            present: true,
            writable: true,
            user: false,
        }
    }

    /// Read/write user-accessible mapping.
    pub const fn user_rw() -> Self {
        PageFlags {
            present: true,
            writable: true,
            user: true,
        }
    }

    /// Read-only user-accessible mapping.
    pub const fn user_ro() -> Self {
        PageFlags {
            present: true,
            writable: false,
            user: true,
        }
    }

    /// Encodes the flags into the low bits of a page-table entry.
    pub fn encode(self) -> u64 {
        (self.present as u64) | (self.writable as u64) << 1 | (self.user as u64) << 2
    }

    /// Decodes flags from a page-table entry.
    pub fn decode(pte: u64) -> Self {
        PageFlags {
            present: pte & 1 != 0,
            writable: pte & 2 != 0,
            user: pte & 4 != 0,
        }
    }
}

/// Successful translation result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageWalk {
    /// Physical address of the page frame (page-aligned).
    pub frame: u64,
    /// Effective flags of the final mapping (AND of intermediate user/write
    /// permissions, as on real hardware).
    pub flags: PageFlags,
    /// Number of levels the walker touched (for cost accounting).
    pub levels: u32,
}

/// Translation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkError {
    /// A table entry at the given level (4 = PML4 .. 1 = PT) was not present.
    NotPresent {
        /// Level at which the walk stopped.
        level: u32,
    },
    /// A table pointer referenced physical memory outside RAM.
    BadPhysAddr,
}

/// Extracts the table index for `level` (4 = PML4 .. 1 = PT).
pub fn table_index(vaddr: u64, level: u32) -> u64 {
    (vaddr >> (12 + 9 * (level - 1))) & 0x1FF
}

/// Physical frame number of a canonical page-table entry.
fn pte_frame(pte: u64) -> u64 {
    pte & 0x000F_FFFF_FFFF_F000
}

/// Walks the page tables rooted at `root` (a physical, page-aligned address)
/// translating `vaddr`.  Does not consult or fill any TLB; that is the
/// machine's job.
pub fn walk(mem: &PhysMem, root: u64, vaddr: u64) -> Result<PageWalk, WalkError> {
    let mut table = root & !0xFFF;
    let mut flags = PageFlags {
        present: true,
        writable: true,
        user: true,
    };
    // Descend through the pointer levels (4..2), then read the leaf entry
    // outside the loop so every path has an explicit result.
    for level in (2..=LEVELS).rev() {
        let idx = table_index(vaddr, level);
        let pte_addr = table + idx * 8;
        let pte = mem.read_u64(pte_addr).map_err(|_| WalkError::BadPhysAddr)?;
        let entry_flags = PageFlags::decode(pte);
        if !entry_flags.present {
            return Err(WalkError::NotPresent { level });
        }
        // Permissions accumulate restrictively down the hierarchy.
        flags.writable &= entry_flags.writable;
        flags.user &= entry_flags.user;
        table = pte_frame(pte);
    }
    let idx = table_index(vaddr, 1);
    let pte = mem
        .read_u64(table + idx * 8)
        .map_err(|_| WalkError::BadPhysAddr)?;
    let entry_flags = PageFlags::decode(pte);
    if !entry_flags.present {
        return Err(WalkError::NotPresent { level: 1 });
    }
    flags.writable &= entry_flags.writable;
    flags.user &= entry_flags.user;
    Ok(PageWalk {
        frame: pte_frame(pte),
        flags: PageFlags {
            present: true,
            ..flags
        },
        levels: LEVELS,
    })
}

/// A bump allocator handing out physical page frames for page tables.
///
/// The hypervisor carves a region of host physical memory out for page
/// tables; this mirrors Captive's unikernel-internal frame allocator.
#[derive(Debug, Clone)]
pub struct FrameAlloc {
    next: u64,
    end: u64,
}

impl FrameAlloc {
    /// Creates an allocator over `[start, end)`; both must be page-aligned.
    pub fn new(start: u64, end: u64) -> Self {
        assert_eq!(start % PAGE_SIZE, 0, "host bug: start must be page aligned");
        assert_eq!(end % PAGE_SIZE, 0, "host bug: end must be page aligned");
        FrameAlloc { next: start, end }
    }

    /// Allocates one zeroed frame, returning its physical address.
    pub fn alloc(&mut self, mem: &mut PhysMem) -> Option<u64> {
        if self.next >= self.end {
            return None;
        }
        let frame = self.next;
        self.next += PAGE_SIZE;
        mem.fill(frame, PAGE_SIZE, 0).ok()?;
        Some(frame)
    }

    /// Number of frames still available.
    pub fn remaining(&self) -> u64 {
        (self.end - self.next) / PAGE_SIZE
    }

    /// Current allocation position, for later bulk reclamation with
    /// [`FrameAlloc::reset_to`].
    pub fn mark(&self) -> u64 {
        self.next
    }

    /// Reclaims every frame allocated since `mark` was taken.  The caller
    /// must guarantee nothing reachable still references those frames;
    /// frames are re-zeroed on reallocation.
    pub fn reset_to(&mut self, mark: u64) {
        assert!(
            mark.is_multiple_of(PAGE_SIZE) && mark <= self.next,
            "host bug: mark must be an earlier allocation position"
        );
        self.next = mark;
    }
}

/// Installs a 4 KiB mapping `vaddr -> paddr` in the table rooted at `root`,
/// allocating intermediate tables from `alloc` as needed.
///
/// Returns `false` if the frame allocator is exhausted.
pub fn map_page(
    mem: &mut PhysMem,
    root: u64,
    vaddr: u64,
    paddr: u64,
    flags: PageFlags,
    alloc: &mut FrameAlloc,
) -> bool {
    let mut table = root & !0xFFF;
    for level in (2..=LEVELS).rev() {
        let idx = table_index(vaddr, level);
        let pte_addr = table + idx * 8;
        let pte = mem.read_u64(pte_addr).unwrap_or(0);
        if pte & 1 == 0 {
            if pte_frame(pte) != 0 {
                // A previously allocated table whose present bit was cleared
                // by `clear_top_level_entries` (lazy teardown): reuse the
                // frame instead of leaking a new one, but clear its contents
                // so no stale lower-level mappings are revived.
                let frame = pte_frame(pte);
                if mem.fill(frame, TABLE_SIZE, 0).is_err() {
                    return false;
                }
                let entry = frame | PageFlags::user_rw().encode();
                if mem.write_u64(pte_addr, entry).is_err() {
                    return false;
                }
                table = frame;
                continue;
            }
            let Some(new_table) = alloc.alloc(mem) else {
                return false;
            };
            // Intermediate entries grant full access; the leaf restricts.
            let entry = new_table | PageFlags::user_rw().encode();
            if mem.write_u64(pte_addr, entry).is_err() {
                return false;
            }
            table = new_table;
        } else {
            table = pte_frame(pte);
        }
    }
    let idx = table_index(vaddr, 1);
    let pte_addr = table + idx * 8;
    mem.write_u64(pte_addr, (paddr & !0xFFF) | flags.encode())
        .is_ok()
}

/// Removes the mapping for `vaddr` (clears the leaf entry's present bit).
/// Returns `true` if a present mapping existed.
pub fn unmap_page(mem: &mut PhysMem, root: u64, vaddr: u64) -> bool {
    let mut table = root & !0xFFF;
    for level in (2..=LEVELS).rev() {
        let idx = table_index(vaddr, level);
        let pte = match mem.read_u64(table + idx * 8) {
            Ok(v) => v,
            Err(_) => return false,
        };
        if pte & 1 == 0 {
            return false;
        }
        table = pte_frame(pte);
    }
    let pte_addr = table + table_index(vaddr, 1) * 8;
    match mem.read_u64(pte_addr) {
        Ok(pte) if pte & 1 != 0 => {
            let _ = mem.write_u64(pte_addr, pte & !1);
            true
        }
        _ => false,
    }
}

/// Clears the present bit of the first `n` top-level (PML4) entries.
///
/// This is exactly the operation the paper describes for intercepted guest
/// TLB flushes: invalidating the 256 low-half PML4 entries lazily tears down
/// the entire guest mapping without touching lower-level tables
/// (Section 2.7.4).
pub fn clear_top_level_entries(mem: &mut PhysMem, root: u64, n: u64) {
    let root = root & !0xFFF;
    for i in 0..n.min(ENTRIES_PER_TABLE) {
        if let Ok(pte) = mem.read_u64(root + i * 8) {
            if pte & 1 != 0 {
                let _ = mem.write_u64(root + i * 8, pte & !1);
            }
        }
    }
}

/// Marks the leaf mapping of `vaddr` read-only (used for self-modifying-code
/// detection via write protection).  Returns true if a mapping was present.
pub fn write_protect_page(mem: &mut PhysMem, root: u64, vaddr: u64) -> bool {
    set_leaf_writable(mem, root, vaddr, false)
}

/// Restores write permission on the leaf mapping of `vaddr`.
pub fn write_unprotect_page(mem: &mut PhysMem, root: u64, vaddr: u64) -> bool {
    set_leaf_writable(mem, root, vaddr, true)
}

fn set_leaf_writable(mem: &mut PhysMem, root: u64, vaddr: u64, writable: bool) -> bool {
    let mut table = root & !0xFFF;
    for level in (2..=LEVELS).rev() {
        let idx = table_index(vaddr, level);
        let pte = match mem.read_u64(table + idx * 8) {
            Ok(v) => v,
            Err(_) => return false,
        };
        if pte & 1 == 0 {
            return false;
        }
        table = pte_frame(pte);
    }
    let pte_addr = table + table_index(vaddr, 1) * 8;
    match mem.read_u64(pte_addr) {
        Ok(pte) if pte & 1 != 0 => {
            let new = if writable { pte | 2 } else { pte & !2 };
            let _ = mem.write_u64(pte_addr, new);
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhysMem, FrameAlloc, u64) {
        let mut mem = PhysMem::new(4 * 1024 * 1024);
        let mut alloc = FrameAlloc::new(0x10000, 0x200000);
        let root = alloc.alloc(&mut mem).unwrap();
        (mem, alloc, root)
    }

    #[test]
    fn map_then_walk_translates() {
        let (mut mem, mut alloc, root) = setup();
        assert!(map_page(
            &mut mem,
            root,
            0x7000_1000,
            0x42000,
            PageFlags::user_rw(),
            &mut alloc
        ));
        let w = walk(&mem, root, 0x7000_1234).unwrap();
        assert_eq!(w.frame, 0x42000);
        assert!(w.flags.user && w.flags.writable);
        assert_eq!(w.levels, 4);
    }

    #[test]
    fn missing_mapping_reports_level() {
        let (mem, _alloc, root) = setup();
        match walk(&mem, root, 0x1234_5000) {
            Err(WalkError::NotPresent { level }) => assert_eq!(level, 4),
            other => panic!("expected NotPresent, got {other:?}"),
        }
    }

    #[test]
    fn leaf_permissions_are_restrictive() {
        let (mut mem, mut alloc, root) = setup();
        assert!(map_page(
            &mut mem,
            root,
            0x8000,
            0x9000,
            PageFlags::user_ro(),
            &mut alloc
        ));
        let w = walk(&mem, root, 0x8000).unwrap();
        assert!(!w.flags.writable && w.flags.user);

        assert!(map_page(
            &mut mem,
            root,
            0x9000,
            0xA000,
            PageFlags::kernel_rw(),
            &mut alloc
        ));
        let w = walk(&mem, root, 0x9000).unwrap();
        assert!(w.flags.writable && !w.flags.user);
    }

    #[test]
    fn unmap_and_clear_top_level() {
        let (mut mem, mut alloc, root) = setup();
        assert!(map_page(
            &mut mem,
            root,
            0x5000,
            0x6000,
            PageFlags::user_rw(),
            &mut alloc
        ));
        assert!(unmap_page(&mut mem, root, 0x5000));
        assert!(walk(&mem, root, 0x5000).is_err());
        assert!(!unmap_page(&mut mem, root, 0x5000), "already unmapped");

        assert!(map_page(
            &mut mem,
            root,
            0x7000,
            0x8000,
            PageFlags::user_rw(),
            &mut alloc
        ));
        clear_top_level_entries(&mut mem, root, 256);
        assert!(walk(&mem, root, 0x7000).is_err());
    }

    #[test]
    fn write_protection_toggles() {
        let (mut mem, mut alloc, root) = setup();
        assert!(map_page(
            &mut mem,
            root,
            0xA000,
            0xB000,
            PageFlags::user_rw(),
            &mut alloc
        ));
        assert!(write_protect_page(&mut mem, root, 0xA000));
        assert!(!walk(&mem, root, 0xA000).unwrap().flags.writable);
        assert!(write_unprotect_page(&mut mem, root, 0xA000));
        assert!(walk(&mem, root, 0xA000).unwrap().flags.writable);
    }

    #[test]
    fn different_vaddrs_same_top_entry_share_tables() {
        let (mut mem, mut alloc, root) = setup();
        let before = alloc.remaining();
        assert!(map_page(
            &mut mem,
            root,
            0x1000,
            0x2000,
            PageFlags::user_rw(),
            &mut alloc
        ));
        let used_first = before - alloc.remaining();
        assert!(map_page(
            &mut mem,
            root,
            0x3000,
            0x4000,
            PageFlags::user_rw(),
            &mut alloc
        ));
        let used_second = before - used_first - alloc.remaining();
        assert_eq!(used_first, 3, "first mapping allocates PDPT+PD+PT");
        assert_eq!(used_second, 0, "second mapping in same region reuses them");
    }

    #[test]
    fn table_index_extracts_nine_bit_fields() {
        let v = 0x0000_7F3A_1B2C_3D4E;
        for level in 1..=4 {
            let idx = table_index(v, level);
            assert!(idx < 512);
        }
        assert_eq!(table_index(0x1000, 1), 1);
        assert_eq!(table_index(0x0020_0000, 2), 1);
        assert_eq!(table_index(0x4000_0000, 3), 1);
        assert_eq!(table_index(0x0080_0000_0000, 4), 1);
    }
}
