//! Profile-mined guest-idiom rules over the LIR: NZCV-free compare+branch
//! fusion, scaled-index address folding, and bulk-move loop rewriting.
//!
//! The generic pipeline ([`crate::opt`] + the allocator's DCE) removes work
//! the guest program cannot observe, but it never changes *shape*: a guest
//! `CMP/SUBS + B.cond` still materialises all four NZCV flags into the
//! register file and re-derives the condition from them with a dozen ALU
//! operations, an address computed as `base + (index << k)` still lowers
//! insn-by-insn, and a byte-wide memset loop still moves one byte per trip.
//! This module is the *idiom layer*: a small set of multi-instruction guest
//! patterns recognised on the raw LIR and rewritten into the host shape a
//! human translator would have written — the learned-translation-rules idea,
//! with the rule set driven by data rather than faith (see *Mining*).
//!
//! # The rules
//!
//! * **`fuse.cmpbr`** — an NZCV nibble produced by the subtract-shaped
//!   `set_nzcv` chain (`V|C<<1|Z<<2|N<<3` with `C = a >=u b`,
//!   `Z/N = cmp(a-b, 0)`, `V` the sign of the overflow mask) and consumed by
//!   a conditional branch whose condition value is a pure bit-extraction of
//!   that nibble.  The `Test cv,cv; Jcc` pair is rewritten to a single host
//!   `Cmp a,b; Jcc cc` with the guest condition mapped onto the host flags
//!   the compare sets directly — x86 `SUB` flags are AArch64 `SUBS` flags
//!   with the carry inverted, so all fourteen guest conditions map.  The
//!   whole consumer chain (NZCV load + extraction ALUs) dies with its last
//!   use and is swept by the allocator; the producer's store stays, keeping
//!   the architectural NZCV exact at every observer.
//! * **`fuse.tstbr`** — same consumer, but the producer is the logic-shaped
//!   chain (`Z<<2|N<<3`, carry and overflow cleared).  Rewritten to
//!   `Test r,r; Jcc cc`.  `Hi`/`Ls` consult the cleared carry in a way host
//!   `TEST` flags cannot express with one condition, so those two are
//!   conservatively refused; the other twelve map.
//! * **`fuse.cbz`** — a compare materialised straight into a 0/1 value
//!   (`Cmp; SetCc`) and branched on (`CBZ`/`CBNZ`, which never touch NZCV).
//!   The re-test of the materialised boolean is replaced by re-issuing the
//!   compare at the branch: `Cmp a,b; Jcc cc`.
//! * **`addr.fold`** — an address built as `t = x + y` (optionally with
//!   `y = i << k`, `k <= 3`) feeding a memory operand is folded into the
//!   x86 scaled-index addressing mode `[x + i*2^k + disp]`; the arithmetic
//!   chain goes dead and the addressing mode is free in the cost model.
//! * **`bulk.memset`** — a single-back-edge byte-store loop
//!   (`strb; add cur,1; sub cnt,1; cbnz`) gets a *wide fast path* spliced
//!   in at the loop header: when at least 9 bytes remain and the next 8
//!   stay inside one 4 KiB page, one 64-bit store of the splatted byte
//!   covers 8 trips, with the counters advanced by 8 and the back-edge
//!   *weighted* so the machine credits 8 guest iterations per transfer
//!   (trip accounting and the trip limit stay exact).  Otherwise the
//!   original byte body runs unchanged — so trip counts 0–8, the loop
//!   tail, page boundaries and faults take exactly the architectural path.
//!
//! # Soundness contract
//!
//! Every fusion site must pass, in addition to its structural match:
//!
//! * **Flag deadness** — the host flags set by the fused compare must be
//!   provably dead after the branch, by the same fixpoint flag-demand
//!   analysis the register allocator uses
//!   ([`crate::regalloc::host_flags_live_after`]), computed with every
//!   instruction treated as kept so the answer holds whatever DCE later
//!   removes.  A side-exit `Ret` clears demand (host flags are not guest
//!   state); a `SetCc`/`CmovCc`/`Jcc` reachable after the branch keeps the
//!   site unfused.
//! * **Value stability** — the operands re-read at the fusion point must
//!   have the same reaching definition they had at the producer's own
//!   compare, and the traced spans must contain no joins (`Label`), calls,
//!   or unit exits that could let another path supply a different NZCV or
//!   operand value.  `TraceEdge` is deliberately transparent: fusing a
//!   compare in one stitched constituent with the branch in the next is
//!   the superblock payoff.
//! * **Nibble identity** — the producer chain is not pattern-matched
//!   syntactically: its leaves (the `SetCc`s and the overflow shift) are
//!   discovered and the combining expression is *evaluated* over all leaf
//!   assignments; only a chain that packs exactly `V|C<<1|Z<<2|N<<3` (or
//!   `Z<<2|N<<3`) classifies.  The consumer is evaluated the same way over
//!   all sixteen nibble values and matched against the guest condition
//!   truth tables.  An `ADDS`-shaped producer (different carry polarity)
//!   fails classification and is never fused.
//!
//! # Mining
//!
//! Recognition and rewriting are decoupled through the [`RuleTable`]: every
//! structural+soundness match counts into [`IdiomStats::candidates`] whether
//! or not its rule is enabled, and only enabled rules rewrite (counted in
//! [`IdiomStats::fused`]).  The engine accumulates per-region candidate
//! counts, weighs them by each region's measured execution count from the
//! region profile, and emits a table in which rules that never fire on the
//! observed workload are pruned — the active rule set is mined from the
//! profile, not hand-enabled.  The table serialises to a stable text form
//! and contributes [`RuleTable::hash`] to the translation-reuse key, so
//! cached code is never shared across different rule sets.

use crate::cache::fnv1a;
use crate::lir::{LirBase, LirInsn, LirMem, LirOperand, RegFileAccess, Vreg, VregClass};
use crate::regalloc::host_flags_live_after;
use hvm::{AluOp, Cond, MemSize};
use std::sync::OnceLock;

/// Number of shipped rules (indexes [`IdiomStats::fused`] and friends).
pub const RULE_COUNT: usize = 5;

/// The shipped rule kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleKind {
    /// Subtract-producer compare+branch fusion.
    FuseCmpBr,
    /// Logic-producer (flags-from-`ANDS`-style) compare+branch fusion.
    FuseTstBr,
    /// `CBZ`/`CBNZ`-style materialised-boolean branch fusion.
    FuseCbz,
    /// Shift/add address chains folded into scaled-index operands.
    AddrFold,
    /// Byte-memset loops given a wide (64-bit) fast path.
    BulkMemset,
}

impl RuleKind {
    /// All rules, in stats-index order.
    pub const ALL: [RuleKind; RULE_COUNT] = [
        RuleKind::FuseCmpBr,
        RuleKind::FuseTstBr,
        RuleKind::FuseCbz,
        RuleKind::AddrFold,
        RuleKind::BulkMemset,
    ];

    /// Index into the per-rule stats arrays.
    pub fn index(self) -> usize {
        match self {
            RuleKind::FuseCmpBr => 0,
            RuleKind::FuseTstBr => 1,
            RuleKind::FuseCbz => 2,
            RuleKind::AddrFold => 3,
            RuleKind::BulkMemset => 4,
        }
    }

    /// Stable external name (serialisation, figures, counters).
    pub fn name(self) -> &'static str {
        match self {
            RuleKind::FuseCmpBr => "fuse.cmpbr",
            RuleKind::FuseTstBr => "fuse.tstbr",
            RuleKind::FuseCbz => "fuse.cbz",
            RuleKind::AddrFold => "addr.fold",
            RuleKind::BulkMemset => "bulk.memset",
        }
    }

    /// Inverse of [`RuleKind::name`].
    pub fn from_name(s: &str) -> Option<RuleKind> {
        RuleKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

/// One table entry: a rule, whether it rewrites, and its mined weight
/// (dynamic candidate count; informational — it does not affect codegen
/// and is excluded from [`RuleTable::hash`]).
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    pub kind: RuleKind,
    pub enabled: bool,
    pub weight: u64,
}

/// The active idiom rule set applied by a translation pipeline.
#[derive(Debug, Clone)]
pub struct RuleTable {
    /// Byte offset of the guest NZCV slot in the register file.  The
    /// recogniser is otherwise frontend-agnostic; this is the one piece of
    /// guest layout it needs.
    pub nzcv_off: i32,
    /// Entries, one per [`RuleKind`].
    pub rules: Vec<Rule>,
}

/// Default NZCV slot offset (the AArch64 frontend's register-file layout).
pub const DEFAULT_NZCV_OFF: i32 = 256;

impl RuleTable {
    /// A table with every shipped rule enabled (weights zero).
    pub fn full() -> RuleTable {
        RuleTable {
            nzcv_off: DEFAULT_NZCV_OFF,
            rules: RuleKind::ALL
                .into_iter()
                .map(|kind| Rule {
                    kind,
                    enabled: true,
                    weight: 0,
                })
                .collect(),
        }
    }

    /// A table that recognises (counts candidates) but rewrites nothing —
    /// the miner's observation configuration.
    pub fn observe_only() -> RuleTable {
        let mut t = RuleTable::full();
        for r in &mut t.rules {
            r.enabled = false;
        }
        t
    }

    /// The process-wide default table (all rules on).
    pub fn builtin() -> &'static RuleTable {
        static TABLE: OnceLock<RuleTable> = OnceLock::new();
        TABLE.get_or_init(RuleTable::full)
    }

    /// Whether `kind` rewrites under this table.
    pub fn enabled(&self, kind: RuleKind) -> bool {
        self.rules.iter().any(|r| r.kind == kind && r.enabled)
    }

    /// Enable or disable one rule.
    pub fn set_enabled(&mut self, kind: RuleKind, on: bool) {
        for r in &mut self.rules {
            if r.kind == kind {
                r.enabled = on;
            }
        }
    }

    /// Record a mined weight for one rule.
    pub fn set_weight(&mut self, kind: RuleKind, weight: u64) {
        for r in &mut self.rules {
            if r.kind == kind {
                r.weight = weight;
            }
        }
    }

    /// Mined weight of one rule.
    pub fn weight(&self, kind: RuleKind) -> u64 {
        self.rules
            .iter()
            .find(|r| r.kind == kind)
            .map_or(0, |r| r.weight)
    }

    /// Stable text serialisation.
    pub fn serialize(&self) -> String {
        let mut s = String::from("idiom-rules-v1\n");
        s.push_str(&format!("nzcv {}\n", self.nzcv_off));
        for r in &self.rules {
            s.push_str(&format!(
                "rule {} {} {}\n",
                r.kind.name(),
                if r.enabled { "on" } else { "off" },
                r.weight
            ));
        }
        s
    }

    /// Parse the [`RuleTable::serialize`] form.  Unknown rule names are
    /// ignored (forward compatibility); missing rules default to disabled.
    pub fn parse(text: &str) -> Option<RuleTable> {
        let mut lines = text.lines();
        if lines.next()? != "idiom-rules-v1" {
            return None;
        }
        let mut table = RuleTable::observe_only();
        for line in lines {
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("nzcv") => table.nzcv_off = parts.next()?.parse().ok()?,
                Some("rule") => {
                    let name = parts.next()?;
                    let on = match parts.next()? {
                        "on" => true,
                        "off" => false,
                        _ => return None,
                    };
                    let weight: u64 = parts.next()?.parse().ok()?;
                    if let Some(kind) = RuleKind::from_name(name) {
                        table.set_enabled(kind, on);
                        table.set_weight(kind, weight);
                    }
                }
                None => {}
                _ => return None,
            }
        }
        Some(table)
    }

    /// Content hash of everything that affects generated code: the format
    /// version, the NZCV offset and the set of *enabled* rules.  Weights are
    /// excluded — they are mining metadata.  Joins the translation-reuse
    /// key, so cached code never crosses rule sets.
    pub fn hash(&self) -> u64 {
        let mut names: Vec<&str> = self
            .rules
            .iter()
            .filter(|r| r.enabled)
            .map(|r| r.kind.name())
            .collect();
        names.sort_unstable();
        let canon = format!("idiom-rules-v1\0{}\0{}", self.nzcv_off, names.join(","));
        fnv1a(canon.as_bytes())
    }
}

/// Per-translation idiom counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdiomStats {
    /// Sites rewritten, per rule (requires the rule enabled).
    pub fused: [u32; RULE_COUNT],
    /// Sites that matched structurally *and* passed every soundness check,
    /// per rule, counted whether or not the rule is enabled — the miner's
    /// input signal.
    pub candidates: [u32; RULE_COUNT],
}

impl IdiomStats {
    /// Total rewrites across all rules.
    pub fn total_fused(&self) -> u32 {
        self.fused.iter().sum()
    }

    /// Accumulate another translation's counters.
    pub fn merge(&mut self, other: &IdiomStats) {
        for i in 0..RULE_COUNT {
            self.fused[i] += other.fused[i];
            self.candidates[i] += other.candidates[i];
        }
    }
}

// ---------------------------------------------------------------------------
// Shared recogniser plumbing
// ---------------------------------------------------------------------------

/// Index of the last definition of `v` strictly before `idx`.
fn last_def_before(lir: &[LirInsn], v: Vreg, idx: usize) -> Option<usize> {
    lir[..idx].iter().rposition(|i| i.def() == Some(v))
}

/// True when `v` has the same reaching definition at positions `a` and `b`
/// (reading just before each) — the value re-read at `b` is the value that
/// was read at `a`.
fn same_reaching_def(lir: &[LirInsn], v: Vreg, a: usize, b: usize) -> bool {
    let da = last_def_before(lir, v, a);
    da.is_some() && da == last_def_before(lir, v, b)
}

fn operand_stable(lir: &[LirInsn], op: LirOperand, a: usize, b: usize) -> bool {
    match op {
        LirOperand::Imm(_) => true,
        LirOperand::Vreg(v) => same_reaching_def(lir, v, a, b),
    }
}

/// The fixed NZCV regfile slot.
fn nzcv_slot(nzcv_off: i32) -> RegFileAccess {
    RegFileAccess {
        offset: nzcv_off,
        size: MemSize::U64,
    }
}

fn apply_alu(op: AluOp, a: u64, b: u64) -> Option<u64> {
    Some(match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl((b & 63) as u32),
        AluOp::Shr => a.wrapping_shr((b & 63) as u32),
        AluOp::Sar => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Guest condition truth tables
// ---------------------------------------------------------------------------

/// The fourteen non-trivial AArch64 condition codes, evaluated over the
/// NZCV nibble (`V = bit 0`, `C = bit 1`, `Z = bit 2`, `N = bit 3` — the
/// frontend's packing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GuestCc {
    Eq,
    Ne,
    Cs,
    Cc,
    Mi,
    Pl,
    Vs,
    Vc,
    Hi,
    Ls,
    Ge,
    Lt,
    Gt,
    Le,
}

const GUEST_CCS: [GuestCc; 14] = [
    GuestCc::Eq,
    GuestCc::Ne,
    GuestCc::Cs,
    GuestCc::Cc,
    GuestCc::Mi,
    GuestCc::Pl,
    GuestCc::Vs,
    GuestCc::Vc,
    GuestCc::Hi,
    GuestCc::Ls,
    GuestCc::Ge,
    GuestCc::Lt,
    GuestCc::Gt,
    GuestCc::Le,
];

fn guest_holds(g: GuestCc, nzcv: u64) -> bool {
    let v = nzcv & 1 != 0;
    let c = (nzcv >> 1) & 1 != 0;
    let z = (nzcv >> 2) & 1 != 0;
    let n = (nzcv >> 3) & 1 != 0;
    match g {
        GuestCc::Eq => z,
        GuestCc::Ne => !z,
        GuestCc::Cs => c,
        GuestCc::Cc => !c,
        GuestCc::Mi => n,
        GuestCc::Pl => !n,
        GuestCc::Vs => v,
        GuestCc::Vc => !v,
        GuestCc::Hi => c && !z,
        GuestCc::Ls => !c || z,
        GuestCc::Ge => n == v,
        GuestCc::Lt => n != v,
        GuestCc::Gt => !z && n == v,
        GuestCc::Le => z || n != v,
    }
}

/// Host condition after a fused `Cmp a, b` for a subtract-shaped producer.
/// x86 `SUB` flags are AArch64 `SUBS` flags with inverted carry
/// (`CF = borrow`, guest `C = !borrow`), so every code maps.
fn host_for_sub(g: GuestCc) -> Cond {
    match g {
        GuestCc::Eq => Cond::Eq,
        GuestCc::Ne => Cond::Ne,
        GuestCc::Cs => Cond::Ge,
        GuestCc::Cc => Cond::Lt,
        GuestCc::Mi => Cond::Mi,
        GuestCc::Pl => Cond::Pl,
        GuestCc::Vs => Cond::Vs,
        GuestCc::Vc => Cond::Vc,
        GuestCc::Hi => Cond::Gt,
        GuestCc::Ls => Cond::Le,
        GuestCc::Ge => Cond::SGe,
        GuestCc::Lt => Cond::SLt,
        GuestCc::Gt => Cond::SGt,
        GuestCc::Le => Cond::SLe,
    }
}

/// Host condition after a fused `Test r, r` for a logic-shaped producer
/// (guest C and V architecturally zero; host CF and OF cleared by `TEST`).
/// `Hi`/`Ls` mix the cleared carry with Z in a way that has no single host
/// condition under this encoding, so they are refused.
fn host_for_logic(g: GuestCc) -> Option<Cond> {
    Some(match g {
        GuestCc::Eq => Cond::Eq,
        GuestCc::Ne => Cond::Ne,
        // Guest C is 0: Cs is constant-false, Cc constant-true.  Host CF is
        // 0 after TEST: Lt is constant-false, Ge constant-true.
        GuestCc::Cs => Cond::Lt,
        GuestCc::Cc => Cond::Ge,
        GuestCc::Mi => Cond::Mi,
        GuestCc::Pl => Cond::Pl,
        // Guest V is 0 and host OF is 0: both constant.
        GuestCc::Vs => Cond::Vs,
        GuestCc::Vc => Cond::Vc,
        GuestCc::Ge => Cond::SGe,
        GuestCc::Lt => Cond::SLt,
        GuestCc::Gt => Cond::SGt,
        GuestCc::Le => Cond::SLe,
        GuestCc::Hi | GuestCc::Ls => return None,
    })
}

// ---------------------------------------------------------------------------
// Consumer recognition: cv as a function of the NZCV nibble
// ---------------------------------------------------------------------------

/// Evaluates the value of `v` just before `before`, treating loads of the
/// NZCV slot as the symbolic input `nzcv_val`.  Only pure, frontend-emitted
/// chain shapes evaluate; anything else aborts the match.  Root load
/// indices are appended to `roots`.
fn eval_consumer(
    lir: &[LirInsn],
    v: Vreg,
    before: usize,
    nzcv_off: i32,
    nzcv_val: u64,
    roots: &mut Vec<usize>,
    depth: u32,
) -> Option<u64> {
    if depth > 24 {
        return None;
    }
    let i = last_def_before(lir, v, before)?;
    match &lir[i] {
        LirInsn::Load { .. } => {
            let slot = lir[i].regfile_load()?;
            if slot == nzcv_slot(nzcv_off) {
                roots.push(i);
                Some(nzcv_val)
            } else {
                None
            }
        }
        LirInsn::MovImm { imm, .. } => Some(*imm),
        LirInsn::MovReg { src, .. } => {
            eval_consumer(lir, *src, i, nzcv_off, nzcv_val, roots, depth + 1)
        }
        LirInsn::MovZx { src, size, .. } => {
            let x = eval_consumer(lir, *src, i, nzcv_off, nzcv_val, roots, depth + 1)?;
            Some(x & size.mask())
        }
        LirInsn::Alu { op, dst, src } => {
            let a = eval_consumer(lir, *dst, i, nzcv_off, nzcv_val, roots, depth + 1)?;
            let b = match src {
                LirOperand::Imm(imm) => *imm,
                LirOperand::Vreg(u) => {
                    eval_consumer(lir, *u, i, nzcv_off, nzcv_val, roots, depth + 1)?
                }
            };
            apply_alu(*op, a, b)
        }
        _ => None,
    }
}

/// Classifies the branch condition value `cv` (read at `t`) as a guest
/// condition over the stored NZCV nibble, returning the matched code and the
/// earliest NZCV load the chain is rooted at.
fn classify_consumer(
    lir: &[LirInsn],
    cv: Vreg,
    t: usize,
    nzcv_off: i32,
) -> Option<(GuestCc, usize)> {
    let mut roots = Vec::new();
    let mut table = [false; 16];
    for (nz, holds) in table.iter_mut().enumerate() {
        *holds = eval_consumer(lir, cv, t, nzcv_off, nz as u64, &mut roots, 0)? != 0;
    }
    let root_min = roots.iter().copied().min()?;
    let g = GUEST_CCS
        .into_iter()
        .find(|g| (0..16).all(|nz| guest_holds(*g, nz as u64) == table[nz]))?;
    Some((g, root_min))
}

// ---------------------------------------------------------------------------
// Producer recognition: the stored nibble as a function of its flag leaves
// ---------------------------------------------------------------------------

/// A classified NZCV producer.
enum Producer {
    /// Subtract shape: nibble of `a - b`; `anchor` is the carry compare
    /// (where `a`/`b` were read).
    Sub {
        a: Vreg,
        b: LirOperand,
        anchor: usize,
    },
    /// Logic shape: nibble of `r` with C/V clear; `anchor` is the zero
    /// compare (where `r` was read).
    Logic { r: Vreg, anchor: usize },
}

/// Collects the leaves (SetCc results and shift-by-63 overflow terms) of
/// the expression defining `v`, walking only pure chain shapes.
fn collect_leaves(
    lir: &[LirInsn],
    v: Vreg,
    before: usize,
    out: &mut Vec<usize>,
    depth: u32,
) -> bool {
    if depth > 24 || out.len() > 8 {
        return false;
    }
    let Some(i) = last_def_before(lir, v, before) else {
        return false;
    };
    match &lir[i] {
        LirInsn::SetCc { .. } => {
            if !out.contains(&i) {
                out.push(i);
            }
            true
        }
        LirInsn::Alu {
            op: AluOp::Shr,
            src: LirOperand::Imm(63),
            ..
        } => {
            if !out.contains(&i) {
                out.push(i);
            }
            true
        }
        LirInsn::Alu { op, dst, src } => {
            if apply_alu(*op, 0, 0).is_none() {
                return false;
            }
            let a_ok = collect_leaves(lir, *dst, i, out, depth + 1);
            let b_ok = match src {
                LirOperand::Imm(_) => true,
                LirOperand::Vreg(u) => collect_leaves(lir, *u, i, out, depth + 1),
            };
            a_ok && b_ok
        }
        LirInsn::MovReg { src, .. } => collect_leaves(lir, *src, i, out, depth + 1),
        LirInsn::MovImm { .. } => true,
        _ => false,
    }
}

/// Evaluates `v` just before `before` with the given leaf assignments
/// (keyed by leaf instruction index).
fn eval_with_leaves(
    lir: &[LirInsn],
    v: Vreg,
    before: usize,
    leaves: &[(usize, u64)],
    depth: u32,
) -> Option<u64> {
    if depth > 24 {
        return None;
    }
    let i = last_def_before(lir, v, before)?;
    if let Some((_, val)) = leaves.iter().find(|(idx, _)| *idx == i) {
        return Some(*val);
    }
    match &lir[i] {
        LirInsn::MovImm { imm, .. } => Some(*imm),
        LirInsn::MovReg { src, .. } => eval_with_leaves(lir, *src, i, leaves, depth + 1),
        LirInsn::Alu { op, dst, src } => {
            let a = eval_with_leaves(lir, *dst, i, leaves, depth + 1)?;
            let b = match src {
                LirOperand::Imm(imm) => *imm,
                LirOperand::Vreg(u) => eval_with_leaves(lir, *u, i, leaves, depth + 1)?,
            };
            apply_alu(*op, a, b)
        }
        _ => None,
    }
}

/// Unordered (first-operand, second-operand) pair of a `MovReg`+`Xor` chain
/// defining `x` just before `before`.
fn xor_pair(lir: &[LirInsn], x: Vreg, before: usize) -> Option<(Vreg, LirOperand)> {
    let xi = last_def_before(lir, x, before)?;
    let LirInsn::Alu {
        op: AluOp::Xor,
        dst,
        src,
    } = &lir[xi]
    else {
        return None;
    };
    let mi = last_def_before(lir, *dst, xi)?;
    let LirInsn::MovReg { src: u, .. } = &lir[mi] else {
        return None;
    };
    Some((*u, *src))
}

/// Classifies the stored value `s` (stored at `p`) as one of the two NZCV
/// producer shapes.
fn classify_producer(lir: &[LirInsn], s: Vreg, p: usize) -> Option<Producer> {
    let mut leaves = Vec::new();
    if !collect_leaves(lir, s, p, &mut leaves, 0) {
        return None;
    }
    // Classify each leaf by role.
    let mut c_leaf: Option<(usize, Vreg, LirOperand, usize)> = None; // (leaf, a, b, cmp idx)
    let mut z_leaf: Option<(usize, Vreg, usize)> = None;
    let mut n_leaf: Option<(usize, Vreg, usize)> = None;
    let mut v_leaf: Option<usize> = None;
    for &li in &leaves {
        match &lir[li] {
            LirInsn::SetCc { cond, .. } => {
                // The emitter materialises compares as an adjacent Cmp+SetCc
                // pair; anything else is not a frontend flag leaf.
                if li == 0 {
                    return None;
                }
                let LirInsn::Cmp { a, b } = &lir[li - 1] else {
                    return None;
                };
                match (cond, b) {
                    (Cond::Ge, _) if c_leaf.is_none() => c_leaf = Some((li, *a, *b, li - 1)),
                    (Cond::Eq, LirOperand::Imm(0)) if z_leaf.is_none() => {
                        z_leaf = Some((li, *a, li - 1))
                    }
                    (Cond::SLt, LirOperand::Imm(0)) if n_leaf.is_none() => {
                        n_leaf = Some((li, *a, li - 1))
                    }
                    _ => return None,
                }
            }
            LirInsn::Alu { .. } => {
                if v_leaf.is_some() {
                    return None;
                }
                v_leaf = Some(li);
            }
            _ => return None,
        }
    }
    let (zl, zr, z_cmp) = z_leaf?;
    let (nl, nr, _) = n_leaf?;
    if zr != nr {
        return None;
    }
    let r = zr;
    match (c_leaf, v_leaf) {
        (Some((cl, a, b, c_cmp)), Some(vl)) => {
            // Subtract shape.  Verify the result register really is a - b.
            let ri = last_def_before(lir, r, z_cmp)?;
            let LirInsn::Alu {
                op: AluOp::Sub,
                dst,
                src,
            } = &lir[ri]
            else {
                return None;
            };
            let rm = last_def_before(lir, *dst, ri)?;
            let LirInsn::MovReg { src: r_base, .. } = &lir[rm] else {
                return None;
            };
            if *r_base != a || *src != b {
                return None;
            }
            // Verify the overflow chain: Shr63(And(Xor{a,b}, Xor{a,r})).
            let LirInsn::Alu { dst: v_dst, .. } = &lir[vl] else {
                return None;
            };
            let vm = last_def_before(lir, *v_dst, vl)?;
            let LirInsn::MovReg { src: and_v, .. } = &lir[vm] else {
                return None;
            };
            let ai = last_def_before(lir, *and_v, vm)?;
            let LirInsn::Alu {
                op: AluOp::And,
                dst: and_dst,
                src: and_src,
            } = &lir[ai]
            else {
                return None;
            };
            let am = last_def_before(lir, *and_dst, ai)?;
            let LirInsn::MovReg { src: x1, .. } = &lir[am] else {
                return None;
            };
            let LirOperand::Vreg(x2) = and_src else {
                return None;
            };
            let p1 = xor_pair(lir, *x1, am)?;
            let p2 = xor_pair(lir, *x2, ai)?;
            let ab = (a, b);
            let ar = (a, LirOperand::Vreg(r));
            if !((p1 == ab && p2 == ar) || (p1 == ar && p2 == ab)) {
                return None;
            }
            // Verify the combine packs exactly V | C<<1 | Z<<2 | N<<3.
            for bits in 0u64..16 {
                let assign = [
                    (vl, bits & 1),
                    (cl, (bits >> 1) & 1),
                    (zl, (bits >> 2) & 1),
                    (nl, (bits >> 3) & 1),
                ];
                if eval_with_leaves(lir, s, p, &assign, 0)? != bits {
                    return None;
                }
            }
            Some(Producer::Sub {
                a,
                b,
                anchor: c_cmp,
            })
        }
        (None, None) => {
            // Logic shape: Z and N of r, C and V clear.
            for bits in 0u64..4 {
                let assign = [(zl, bits & 1), (nl, (bits >> 1) & 1)];
                let expect = ((bits & 1) << 2) | (((bits >> 1) & 1) << 3);
                if eval_with_leaves(lir, s, p, &assign, 0)? != expect {
                    return None;
                }
            }
            Some(Producer::Logic { r, anchor: z_cmp })
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Branch fusion
// ---------------------------------------------------------------------------

/// Finds the `Jcc` consuming the flags set at `t`, allowing only
/// flag-transparent instructions between (the emitter's branch shapes put at
/// most a PC write there).
fn find_jcc(lir: &[LirInsn], t: usize) -> Option<usize> {
    for (k, insn) in lir.iter().enumerate().skip(t + 1) {
        match insn {
            LirInsn::Jcc { .. } => return Some(k),
            LirInsn::SetPcImm { .. } | LirInsn::IncPc { .. } | LirInsn::MovImm { .. } => {}
            _ => return None,
        }
    }
    None
}

/// True when the open span `(from, to)` contains a join, call or unit exit
/// that could invalidate a traced value.  `TraceEdge`, `Jcc` and PC updates
/// are transparent.
fn span_has_barrier(lir: &[LirInsn], from: usize, to: usize) -> bool {
    lir[from + 1..to].iter().any(|i| {
        matches!(
            i,
            LirInsn::Label { .. }
                | LirInsn::Jmp { .. }
                | LirInsn::BackEdge { .. }
                | LirInsn::Ret
                | LirInsn::CallHelper { .. }
                | LirInsn::Int { .. }
                | LirInsn::In { .. }
                | LirInsn::Out { .. }
                | LirInsn::Syscall
                | LirInsn::TlbFlushAll
                | LirInsn::TlbFlushPcid
        )
    })
}

/// Finds the store that produced the NZCV value read by the root load at
/// `root`: the nearest preceding store to the NZCV slot, with nothing in
/// between that could change or alias the slot.
fn find_nzcv_store(lir: &[LirInsn], root: usize, nzcv_off: i32) -> Option<usize> {
    let slot = nzcv_slot(nzcv_off);
    for k in (0..root).rev() {
        if let Some(acc) = lir[k].regfile_store() {
            if acc.overlaps(&slot) {
                // Must be a full-width register store of the slot.
                return match &lir[k] {
                    LirInsn::Store { size, .. } if acc == slot && *size == MemSize::U64 => Some(k),
                    _ => None,
                };
            }
            continue;
        }
        if lir[k].invalidates_regfile_values() || matches!(lir[k], LirInsn::BackEdge { .. }) {
            return None;
        }
    }
    None
}

struct FuseSite {
    t: usize,
    j: usize,
    new_cmp: LirInsn,
    cond: Cond,
    kind: RuleKind,
    delete: Vec<usize>,
}

fn match_cbz(lir: &[LirInsn], cv: Vreg, t: usize, j: usize, jc: Cond) -> Option<FuseSite> {
    let s = last_def_before(lir, cv, t)?;
    let LirInsn::SetCc { cond: hc, .. } = lir[s] else {
        return None;
    };
    if s == 0 {
        return None;
    }
    let LirInsn::Cmp { a, b } = lir[s - 1] else {
        return None;
    };
    if !same_reaching_def(lir, a, s - 1, t) || !operand_stable(lir, b, s - 1, t) {
        return None;
    }
    if span_has_barrier(lir, s - 1, t) {
        return None;
    }
    // Delete the materialisation when the boolean has no other consumer
    // (Test reads cv twice), and the original compare when its flags feed
    // nothing else before the next flag write.
    let mut delete = Vec::new();
    let mut uses = Vec::new();
    let mut cv_uses = 0usize;
    for insn in lir {
        uses.clear();
        insn.uses(&mut uses);
        cv_uses += uses.iter().filter(|u| **u == cv).count();
    }
    if cv_uses == 2 {
        delete.push(s);
        let mut cmp_free = true;
        for insn in &lir[s + 1..] {
            if insn.reads_host_flags() {
                cmp_free = false;
                break;
            }
            if insn.writes_host_flags() {
                break;
            }
        }
        if cmp_free {
            delete.push(s - 1);
        }
    }
    let host = if jc == Cond::Ne { hc } else { hc.invert() };
    Some(FuseSite {
        t,
        j,
        new_cmp: LirInsn::Cmp { a, b },
        cond: host,
        kind: RuleKind::FuseCbz,
        delete,
    })
}

fn match_nzcv(
    lir: &[LirInsn],
    cv: Vreg,
    t: usize,
    j: usize,
    jc: Cond,
    nzcv_off: i32,
) -> Option<FuseSite> {
    let (g, root_min) = classify_consumer(lir, cv, t, nzcv_off)?;
    let p = find_nzcv_store(lir, root_min, nzcv_off)?;
    let LirInsn::Store { src: s, .. } = lir[p] else {
        return None;
    };
    let producer = classify_producer(lir, s, p)?;
    match producer {
        Producer::Sub { a, b, anchor } => {
            if span_has_barrier(lir, anchor, t) {
                return None;
            }
            if !same_reaching_def(lir, a, anchor, t) || !operand_stable(lir, b, anchor, t) {
                return None;
            }
            let host = host_for_sub(g);
            let cond = if jc == Cond::Ne { host } else { host.invert() };
            Some(FuseSite {
                t,
                j,
                new_cmp: LirInsn::Cmp { a, b },
                cond,
                kind: RuleKind::FuseCmpBr,
                delete: Vec::new(),
            })
        }
        Producer::Logic { r, anchor } => {
            if span_has_barrier(lir, anchor, t) {
                return None;
            }
            if !same_reaching_def(lir, r, anchor, t) {
                return None;
            }
            let host = host_for_logic(g)?;
            let cond = if jc == Cond::Ne { host } else { host.invert() };
            Some(FuseSite {
                t,
                j,
                new_cmp: LirInsn::Test {
                    a: r,
                    b: LirOperand::Vreg(r),
                },
                cond,
                kind: RuleKind::FuseTstBr,
                delete: Vec::new(),
            })
        }
    }
}

/// The compare+branch fusion pass: rewrites `Test cv,cv; Jcc` pairs whose
/// condition value derives from a recognised flag producer into a direct
/// host compare-and-branch, when the host flags are dead after the branch.
pub fn fuse_branches(lir: &mut Vec<LirInsn>, table: &RuleTable, stats: &mut IdiomStats) {
    let flags_live = host_flags_live_after(lir);
    let mut sites: Vec<FuseSite> = Vec::new();
    for t in 0..lir.len() {
        let LirInsn::Test {
            a: cv,
            b: LirOperand::Vreg(cv2),
        } = lir[t]
        else {
            continue;
        };
        if cv != cv2 {
            continue;
        }
        let Some(j) = find_jcc(lir, t) else {
            continue;
        };
        let LirInsn::Jcc { cond: jc, .. } = lir[j] else {
            unreachable!()
        };
        if !matches!(jc, Cond::Eq | Cond::Ne) {
            continue;
        }
        // Soundness gate: the flags the fused compare would set must be
        // provably dead after the branch.
        if flags_live[j] {
            continue;
        }
        let site =
            match_cbz(lir, cv, t, j, jc).or_else(|| match_nzcv(lir, cv, t, j, jc, nzcv(table)));
        if let Some(site) = site {
            stats.candidates[site.kind.index()] += 1;
            if table.enabled(site.kind) {
                sites.push(site);
            }
        }
    }
    let mut dead = vec![false; lir.len()];
    for site in &sites {
        stats.fused[site.kind.index()] += 1;
        lir[site.t] = site.new_cmp;
        if let LirInsn::Jcc { cond, .. } = &mut lir[site.j] {
            *cond = site.cond;
        }
        for &d in &site.delete {
            dead[d] = true;
        }
    }
    if dead.iter().any(|d| *d) {
        let mut idx = 0;
        lir.retain(|_| {
            let keep = !dead[idx];
            idx += 1;
            keep
        });
    }
}

fn nzcv(table: &RuleTable) -> i32 {
    table.nzcv_off
}

// ---------------------------------------------------------------------------
// Address-mode folding
// ---------------------------------------------------------------------------

fn mem_of(insn: &LirInsn) -> Option<LirMem> {
    match insn {
        LirInsn::Load { addr, .. }
        | LirInsn::LoadSx { addr, .. }
        | LirInsn::Store { addr, .. }
        | LirInsn::StoreImm { addr, .. }
        | LirInsn::LoadXmm { addr, .. }
        | LirInsn::StoreXmm { addr, .. } => Some(*addr),
        _ => None,
    }
}

fn set_mem(insn: &mut LirInsn, new: LirMem) {
    match insn {
        LirInsn::Load { addr, .. }
        | LirInsn::LoadSx { addr, .. }
        | LirInsn::Store { addr, .. }
        | LirInsn::StoreImm { addr, .. }
        | LirInsn::LoadXmm { addr, .. }
        | LirInsn::StoreXmm { addr, .. } => *addr = new,
        _ => unreachable!(),
    }
}

/// Matches `y = i << k` (`k <= 3`) defined before `before`, with `i` stable
/// up to `use_at`.  Returns the pre-shift register and the x86 scale.
fn shift_chain(lir: &[LirInsn], y: Vreg, before: usize, use_at: usize) -> Option<(Vreg, u8)> {
    let sd = last_def_before(lir, y, before)?;
    let LirInsn::Alu {
        op: AluOp::Shl,
        dst,
        src: LirOperand::Imm(k),
    } = &lir[sd]
    else {
        return None;
    };
    if *k > 3 {
        return None;
    }
    let sm = last_def_before(lir, *dst, sd)?;
    let LirInsn::MovReg { src: i0, .. } = &lir[sm] else {
        return None;
    };
    if i0.class != VregClass::Gpr || !same_reaching_def(lir, *i0, sd, use_at) {
        return None;
    }
    Some((*i0, 1u8 << *k))
}

/// The address-mode folding pass: memory operands whose base was computed
/// as `x + y` (optionally `y = i << k`) become scaled-index operands.  Runs
/// after store-to-load forwarding and copy propagation so address values
/// that round-tripped through the register file (the `lsl`+`ldr_reg` guest
/// idiom) are visible as register chains.
pub fn fold_addressing(lir: &mut [LirInsn], table: &RuleTable, stats: &mut IdiomStats) {
    for i in 0..lir.len() {
        let Some(addr) = mem_of(&lir[i]) else {
            continue;
        };
        let (LirBase::Vreg(t), None) = (addr.base, addr.index) else {
            continue;
        };
        let Some(d) = last_def_before(lir, t, i) else {
            continue;
        };
        let LirInsn::Alu {
            op: AluOp::Add,
            dst,
            src: LirOperand::Vreg(y),
        } = lir[d]
        else {
            continue;
        };
        let Some(m) = last_def_before(lir, dst, d) else {
            continue;
        };
        let LirInsn::MovReg { src: x, .. } = lir[m] else {
            continue;
        };
        if x.class != VregClass::Gpr || y.class != VregClass::Gpr {
            continue;
        }
        // Both summands must still hold their add-time values at the access.
        if !same_reaching_def(lir, x, d, i) || !same_reaching_def(lir, y, d, i) {
            continue;
        }
        let folded = if let Some((i0, scale)) = shift_chain(lir, y, d, i) {
            LirMem {
                base: LirBase::Vreg(x),
                index: Some((i0, scale)),
                disp: addr.disp,
            }
        } else if let Some((i0, scale)) = shift_chain(lir, x, d, i) {
            LirMem {
                base: LirBase::Vreg(y),
                index: Some((i0, scale)),
                disp: addr.disp,
            }
        } else {
            LirMem {
                base: LirBase::Vreg(x),
                index: Some((y, 1)),
                disp: addr.disp,
            }
        };
        stats.candidates[RuleKind::AddrFold.index()] += 1;
        if table.enabled(RuleKind::AddrFold) {
            set_mem(&mut lir[i], folded);
            stats.fused[RuleKind::AddrFold.index()] += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Bulk-move rewriting
// ---------------------------------------------------------------------------

/// The matched byte-memset loop roles.
struct MemsetLoop {
    cur: i32,
    val: i32,
    cnt: i32,
}

/// Matches the byte-memset body in the open window `(h, e)` between the
/// loop-header label and the back-edge.  The body must consist exactly of:
/// a byte store of a freshly-loaded value register through the current
/// pointer, the pointer incremented by one and the counter decremented by
/// one (both through the register file), and a fused `Cmp cnt',0; Jcc Eq`
/// loop exit — plus PC bookkeeping.  Anything else refuses the match.
fn match_memset(lir: &[LirInsn], h: usize, e: usize, nzcv_off: i32) -> Option<MemsetLoop> {
    // Use counts over the whole unit let the matcher skip instructions whose
    // result is provably unconsumed (fusion leftovers ahead of DCE).
    let mut use_count = vec![0u32; 0];
    let max_id = lir
        .iter()
        .flat_map(|i| {
            let mut u = Vec::new();
            i.uses(&mut u);
            u.into_iter().map(|v| v.id).chain(i.def().map(|d| d.id))
        })
        .max()
        .unwrap_or(0);
    use_count.resize(max_id as usize + 1, 0);
    let mut scratch = Vec::new();
    for insn in lir {
        scratch.clear();
        insn.uses(&mut scratch);
        for u in &scratch {
            use_count[u.id as usize] += 1;
        }
    }

    let mut byte_store: Option<(usize, Vreg, Vreg)> = None; // (idx, value, addr base)
    let mut slot_loads: Vec<(usize, i32, Vreg)> = Vec::new();
    let mut slot_stores: Vec<(usize, i32, Vreg)> = Vec::new();
    let mut cmp: Option<(usize, Vreg)> = None;
    let mut jcc: Option<usize> = None;
    let mut first_incpc: Option<usize> = None;
    for (k, insn) in lir.iter().enumerate().take(e).skip(h + 1) {
        match insn {
            LirInsn::IncPc { .. } => {
                if first_incpc.is_none() {
                    first_incpc = Some(k);
                }
            }
            LirInsn::Load { dst, .. } => {
                let slot = insn.regfile_load()?;
                if slot.size != MemSize::U64 {
                    return None;
                }
                slot_loads.push((k, slot.offset, *dst));
            }
            LirInsn::Store { src, addr, size } => {
                if let Some(slot) = insn.regfile_store() {
                    if slot.size != MemSize::U64 {
                        return None;
                    }
                    slot_stores.push((k, slot.offset, *src));
                } else if addr.index.is_none() && addr.disp == 0 {
                    let LirBase::Vreg(base) = addr.base else {
                        return None;
                    };
                    if *size != MemSize::U8 || byte_store.is_some() {
                        return None;
                    }
                    byte_store = Some((k, *src, base));
                } else {
                    return None;
                }
            }
            LirInsn::MovReg { .. } => {}
            LirInsn::Alu {
                op: AluOp::Add | AluOp::Sub,
                src: LirOperand::Imm(1),
                ..
            } => {}
            LirInsn::Cmp {
                a,
                b: LirOperand::Imm(0),
            } => {
                if cmp.is_some() {
                    return None;
                }
                cmp = Some((k, *a));
            }
            LirInsn::Jcc { cond: Cond::Eq, .. } => {
                if jcc.is_some() {
                    return None;
                }
                jcc = Some(k);
            }
            other => {
                // Tolerate pure leftovers whose result nothing consumes
                // (pre-DCE fusion residue), refuse everything else.
                let harmless = match other.def() {
                    Some(d) => {
                        use_count[d.id as usize] == 0
                            && !other.has_side_effect()
                            && !other.may_fault()
                    }
                    None => false,
                };
                if !harmless {
                    return None;
                }
            }
        }
    }
    let (bs_idx, bs_val, bs_base) = byte_store?;
    let (cmp_idx, cmp_reg) = cmp?;
    let jcc_idx = jcc?;
    if jcc_idx < cmp_idx || jcc_idx + 1 != e {
        return None;
    }
    // The compare must be the instruction the exit branch consumes.
    if find_jcc(lir, cmp_idx) != Some(jcc_idx) {
        return None;
    }
    // The byte store must belong to the first guest instruction of the loop
    // (no PC advance before it) and precede both slot write-backs, so the
    // wide path's fault point has the same precise state.
    if first_incpc.is_some_and(|f| f < bs_idx) {
        return None;
    }
    // Exactly two slot stores: the pointer and the counter.
    if slot_stores.len() != 2 {
        return None;
    }
    // Trace each store back through `MovReg t <- base; Alu t, Imm 1`.
    let trace_update = |src: Vreg, at: usize, op: AluOp| -> Option<Vreg> {
        let d = last_def_before(lir, src, at)?;
        let LirInsn::Alu {
            op: got,
            dst,
            src: LirOperand::Imm(1),
        } = &lir[d]
        else {
            return None;
        };
        if *got != op {
            return None;
        }
        let m = last_def_before(lir, *dst, d)?;
        let LirInsn::MovReg { src: base, .. } = &lir[m] else {
            return None;
        };
        Some(*base)
    };
    // A role register must be this iteration's in-window load of its slot.
    let loaded_from = |v: Vreg, at: usize| -> Option<i32> {
        let d = last_def_before(lir, v, at)?;
        slot_loads
            .iter()
            .find(|(k, _, dst)| *k == d && *dst == v)
            .map(|(_, off, _)| *off)
    };
    let mut cur: Option<i32> = None;
    let mut cnt: Option<(i32, usize)> = None;
    for &(k, off, src) in &slot_stores {
        if k < bs_idx {
            return None;
        }
        if let Some(base) = trace_update(src, k, AluOp::Add) {
            // Pointer update: `base` must be this iteration's load of the
            // stored slot.  (The byte store's address register is tied to
            // the same slot below; both loads precede the sole in-window
            // store of the slot, so they hold the same value even though
            // raw LIR gives each guest instruction its own load.)
            if loaded_from(base, k) != Some(off) || cur.is_some() {
                return None;
            }
            cur = Some(off);
        } else if let Some(base) = trace_update(src, k, AluOp::Sub) {
            if loaded_from(base, k) != Some(off) || cnt.is_some() {
                return None;
            }
            cnt = Some((off, k));
        } else {
            return None;
        }
    }
    let cur_off = cur?;
    let (cnt_off, cnt_store_idx) = cnt?;
    if cur_off == cnt_off {
        return None;
    }
    // The exit compare must read the decremented counter: either the Sub
    // result itself (the value the counter store wrote) or a reload of the
    // slot after the write-back.
    let cmp_src = last_def_before(lir, cmp_reg, cmp_idx)?;
    let reads_new_cnt = match &lir[cmp_src] {
        LirInsn::Alu {
            op: AluOp::Sub,
            src: LirOperand::Imm(1),
            ..
        } => {
            let (_, _, st_src) = slot_stores
                .iter()
                .find(|(k, _, _)| *k == cnt_store_idx)
                .copied()?;
            last_def_before(lir, st_src, cnt_store_idx) == Some(cmp_src)
        }
        LirInsn::Load { .. } => {
            lir[cmp_src].regfile_load()
                == Some(RegFileAccess {
                    offset: cnt_off,
                    size: MemSize::U64,
                })
                && cmp_src > cnt_store_idx
        }
        _ => false,
    };
    if !reads_new_cnt {
        return None;
    }
    // The byte store must write through the iteration's pointer load, and
    // its value register must be a fresh in-window load of a third slot.
    if loaded_from(bs_base, bs_idx) != Some(cur_off) {
        return None;
    }
    let val_off = loaded_from(bs_val, bs_idx)?;
    if val_off == cur_off || val_off == cnt_off {
        return None;
    }
    // All three slots must be plain 64-bit X-register slots below NZCV.
    for off in [cur_off, val_off, cnt_off] {
        if off < 0 || off % 8 != 0 || off + 8 > nzcv_off {
            return None;
        }
    }
    Some(MemsetLoop {
        cur: cur_off,
        val: val_off,
        cnt: cnt_off,
    })
}

/// The bulk-move pass: splices a wide fast path ahead of a recognised
/// byte-memset loop body.  See the module docs for the shape and the
/// soundness argument (the `>= 9` guard keeps the wide trip exit-free, the
/// page guard keeps its fault behaviour byte-identical, and the weighted
/// back-edge keeps trip accounting exact).
pub fn rewrite_bulk_loops(lir: &mut Vec<LirInsn>, table: &RuleTable, stats: &mut IdiomStats) {
    let backedges: Vec<usize> = lir
        .iter()
        .enumerate()
        .filter_map(|(i, insn)| matches!(insn, LirInsn::BackEdge { .. }).then_some(i))
        .collect();
    let [e] = backedges[..] else {
        return;
    };
    let LirInsn::BackEdge {
        pc,
        label,
        reconcile: false,
        weight: 1,
    } = lir[e]
    else {
        return;
    };
    let Some(h) = lir
        .iter()
        .position(|i| matches!(i, LirInsn::Label { id } if *id == label))
    else {
        return;
    };
    if h >= e {
        return;
    }
    // The loop body may be unrolled: N identical copies of the guest body,
    // each ending in a side-exit `Jcc; SetPcImm <head>; TraceEdge`, with the
    // back-edge closing the last.  Split at the TraceEdge seams and demand
    // that EVERY segment match the memset body with the same slot roles —
    // that proves the whole loop does nothing but the memset, so a wide
    // trip spliced at the head replaces full iterations and nothing else.
    let mut segments: Vec<(usize, usize)> = Vec::new();
    let mut seg_start = h;
    for k in h + 1..e {
        if matches!(lir[k], LirInsn::TraceEdge) {
            let LirInsn::SetPcImm { imm } = lir[k - 1] else {
                return;
            };
            if imm != pc {
                return;
            }
            segments.push((seg_start, k - 1));
            seg_start = k;
        }
    }
    segments.push((seg_start, e));
    let mut roles: Option<MemsetLoop> = None;
    for &(s0, s1) in &segments {
        let Some(r) = match_memset(lir, s0, s1, nzcv(table)) else {
            return;
        };
        match &roles {
            Some(prev) if prev.cur != r.cur || prev.val != r.val || prev.cnt != r.cnt => {
                return;
            }
            Some(_) => {}
            None => roles = Some(r),
        }
    }
    let Some(roles) = roles else {
        return;
    };
    stats.candidates[RuleKind::BulkMemset.index()] += 1;
    if !table.enabled(RuleKind::BulkMemset) {
        return;
    }
    stats.fused[RuleKind::BulkMemset.index()] += 1;

    let mut next_id = lir
        .iter()
        .flat_map(|i| {
            let mut u = Vec::new();
            i.uses(&mut u);
            u.into_iter().map(|v| v.id).chain(i.def().map(|d| d.id))
        })
        .max()
        .map_or(0, |m| m + 1);
    let mut fresh = || {
        let v = Vreg {
            id: next_id,
            class: VregClass::Gpr,
        };
        next_id += 1;
        v
    };
    let byte_label = lir
        .iter()
        .map(|i| match i {
            LirInsn::Label { id } => *id + 1,
            LirInsn::Jmp { label } | LirInsn::Jcc { label, .. } => *label + 1,
            LirInsn::BackEdge { label, .. } => *label + 1,
            _ => 0,
        })
        .max()
        .unwrap_or(0);

    let rf = LirMem::regfile;
    let (va, vn, vp, vv, vs, vab, vnb) = (
        fresh(),
        fresh(),
        fresh(),
        fresh(),
        fresh(),
        fresh(),
        fresh(),
    );
    let wide = vec![
        LirInsn::Load {
            dst: va,
            addr: rf(roles.cur),
            size: MemSize::U64,
        },
        LirInsn::Load {
            dst: vn,
            addr: rf(roles.cnt),
            size: MemSize::U64,
        },
        // Fewer than 9 bytes left: the wide trip could overrun the exit, so
        // take the architectural byte path.
        LirInsn::Cmp {
            a: vn,
            b: LirOperand::Imm(9),
        },
        LirInsn::Jcc {
            cond: Cond::Lt,
            label: byte_label,
        },
        // Next 8 bytes must stay inside one 4 KiB page so the wide store
        // faults exactly when the byte store would.
        LirInsn::MovReg { dst: vp, src: va },
        LirInsn::Alu {
            op: AluOp::And,
            dst: vp,
            src: LirOperand::Imm(0xFFF),
        },
        LirInsn::Cmp {
            a: vp,
            b: LirOperand::Imm(4088),
        },
        LirInsn::Jcc {
            cond: Cond::Gt,
            label: byte_label,
        },
        // Splat the low byte of the value register across 64 bits.
        LirInsn::Load {
            dst: vv,
            addr: rf(roles.val),
            size: MemSize::U64,
        },
        LirInsn::MovReg { dst: vs, src: vv },
        LirInsn::Alu {
            op: AluOp::And,
            dst: vs,
            src: LirOperand::Imm(0xFF),
        },
        LirInsn::Alu {
            op: AluOp::Mul,
            dst: vs,
            src: LirOperand::Imm(0x0101_0101_0101_0101),
        },
        LirInsn::Store {
            src: vs,
            addr: LirMem::vreg(va, 0),
            size: MemSize::U64,
        },
        LirInsn::MovReg { dst: vab, src: va },
        LirInsn::Alu {
            op: AluOp::Add,
            dst: vab,
            src: LirOperand::Imm(8),
        },
        LirInsn::Store {
            src: vab,
            addr: rf(roles.cur),
            size: MemSize::U64,
        },
        LirInsn::MovReg { dst: vnb, src: vn },
        LirInsn::Alu {
            op: AluOp::Sub,
            dst: vnb,
            src: LirOperand::Imm(8),
        },
        LirInsn::Store {
            src: vnb,
            addr: rf(roles.cnt),
            size: MemSize::U64,
        },
        // One transfer, eight credited guest iterations.
        LirInsn::BackEdge {
            pc,
            label,
            reconcile: false,
            weight: 8,
        },
        LirInsn::Label { id: byte_label },
    ];
    lir.splice(h + 1..h + 1, wide);
}

/// Runs the pre-optimisation idiom passes (fusion, then bulk rewriting) on
/// raw LIR.  [`fold_addressing`] runs separately, after forwarding and copy
/// propagation have connected regfile round-trips.
pub fn apply_early(lir: &mut Vec<LirInsn>, table: &RuleTable, stats: &mut IdiomStats) {
    fuse_branches(lir, table, stats);
    rewrite_bulk_loops(lir, table, stats);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32) -> Vreg {
        Vreg {
            id,
            class: VregClass::Gpr,
        }
    }

    fn movi(dst: u32, imm: u64) -> LirInsn {
        LirInsn::MovImm { dst: v(dst), imm }
    }

    fn cmp(a: u32, b: u32) -> LirInsn {
        LirInsn::Cmp {
            a: v(a),
            b: LirOperand::Vreg(v(b)),
        }
    }

    fn test_self(cv: u32) -> LirInsn {
        LirInsn::Test {
            a: v(cv),
            b: LirOperand::Vreg(v(cv)),
        }
    }

    fn setcc(cond: Cond, dst: u32) -> LirInsn {
        LirInsn::SetCc { cond, dst: v(dst) }
    }

    fn jcc(cond: Cond) -> LirInsn {
        LirInsn::Jcc { cond, label: 1 }
    }

    fn fuse_with(lir: &mut Vec<LirInsn>, table: &RuleTable) -> IdiomStats {
        let mut stats = IdiomStats::default();
        fuse_branches(lir, table, &mut stats);
        stats
    }

    fn fuse(lir: &mut Vec<LirInsn>) -> IdiomStats {
        fuse_with(lir, RuleTable::builtin())
    }

    // A CBZ-shaped site: materialised compare re-tested by the branch.
    fn cbz_site(jc: Cond) -> Vec<LirInsn> {
        vec![
            movi(0, 7),
            movi(1, 9),
            cmp(0, 1),
            setcc(Cond::Eq, 2),
            test_self(2),
            jcc(jc),
            LirInsn::Ret,
        ]
    }

    #[test]
    fn table_roundtrips_through_text() {
        let mut t = RuleTable::full();
        t.set_enabled(RuleKind::AddrFold, false);
        t.set_enabled(RuleKind::BulkMemset, false);
        t.set_weight(RuleKind::FuseCmpBr, 36);
        t.set_weight(RuleKind::FuseCbz, 18);
        let back = RuleTable::parse(&t.serialize()).expect("serialized table parses");
        assert_eq!(back.nzcv_off, t.nzcv_off);
        for kind in RuleKind::ALL {
            assert_eq!(back.enabled(kind), t.enabled(kind), "{}", kind.name());
            assert_eq!(back.weight(kind), t.weight(kind), "{}", kind.name());
        }
        assert_eq!(back.serialize(), t.serialize());
        assert_eq!(back.hash(), t.hash());
    }

    #[test]
    fn table_hash_tracks_enablement_not_weights() {
        let full = RuleTable::full();
        // Weights are miner bookkeeping; they never change generated code,
        // so they must not perturb the reuse-key contribution.
        let mut weighted = RuleTable::full();
        weighted.set_weight(RuleKind::FuseTstBr, 17);
        assert_eq!(full.hash(), weighted.hash());
        // Enablement does change generated code.
        let mut pruned = RuleTable::full();
        pruned.set_enabled(RuleKind::BulkMemset, false);
        assert_ne!(full.hash(), pruned.hash());
        assert_ne!(full.hash(), RuleTable::observe_only().hash());
        // So does the guest NZCV layout the recogniser assumes.
        let mut moved = RuleTable::full();
        moved.nzcv_off += 8;
        assert_ne!(full.hash(), moved.hash());
    }

    #[test]
    fn cbz_site_fuses_to_direct_compare() {
        let mut lir = cbz_site(Cond::Ne);
        let stats = fuse(&mut lir);
        assert_eq!(stats.fused[RuleKind::FuseCbz.index()], 1);
        assert_eq!(stats.candidates[RuleKind::FuseCbz.index()], 1);
        // SetCc and the original Cmp die with the fusion; the re-test is
        // rewritten into the compare and the branch takes the host cond
        // directly (CBNZ on an Eq boolean == branch-if-equal).
        assert_eq!(lir.len(), 5);
        assert!(lir
            .iter()
            .all(|i| !matches!(i, LirInsn::SetCc { .. } | LirInsn::Test { .. })));
        assert!(matches!(
            lir[2],
            LirInsn::Cmp {
                a,
                b: LirOperand::Vreg(b),
            } if a == v(0) && b == v(1)
        ));
        assert!(matches!(lir[3], LirInsn::Jcc { cond: Cond::Eq, .. }));
    }

    #[test]
    fn inverted_branch_polarity_inverts_host_cond() {
        // CBZ on an Eq boolean branches when the compare did NOT hold.
        let mut lir = cbz_site(Cond::Eq);
        let stats = fuse(&mut lir);
        assert_eq!(stats.fused[RuleKind::FuseCbz.index()], 1);
        assert!(matches!(lir[3], LirInsn::Jcc { cond: Cond::Ne, .. }));
    }

    #[test]
    fn disabled_rule_still_counts_candidates() {
        let mut lir = cbz_site(Cond::Ne);
        let before = lir.clone();
        let stats = fuse_with(&mut lir, &RuleTable::observe_only());
        assert_eq!(stats.total_fused(), 0);
        assert_eq!(stats.candidates[RuleKind::FuseCbz.index()], 1);
        assert_eq!(lir.len(), before.len(), "observe-only must not rewrite");
    }

    #[test]
    fn flag_reader_after_branch_refuses_fusion() {
        // A SetCc past the branch still wants the *old* host flags; fusing
        // would clobber them with the re-issued compare's.  This gate is
        // only constructible at the LIR level — guest frontends never emit
        // it — which is exactly why it needs a synthetic test.
        let mut lir = cbz_site(Cond::Ne);
        let ret = lir.pop().unwrap();
        lir.push(setcc(Cond::Lt, 5));
        lir.push(LirInsn::Store {
            src: v(5),
            addr: LirMem::regfile(0),
            size: hvm::MemSize::U64,
        });
        lir.push(ret);
        let len = lir.len();
        let stats = fuse(&mut lir);
        assert_eq!(
            stats,
            IdiomStats::default(),
            "live flags must gate the site"
        );
        assert_eq!(lir.len(), len);
    }

    #[test]
    fn join_in_traced_span_refuses_fusion() {
        // A Label between the compare and the re-test could let another
        // path supply a different boolean; the span check refuses it.
        let mut lir = cbz_site(Cond::Ne);
        lir.insert(4, LirInsn::Label { id: 9 });
        let stats = fuse(&mut lir);
        assert_eq!(stats, IdiomStats::default());
    }

    #[test]
    fn redefined_operand_refuses_fusion() {
        // v0 is clobbered between the compare and the branch, so re-issuing
        // `Cmp v0, v1` at the branch would compare the wrong value.
        let mut lir = cbz_site(Cond::Ne);
        lir.insert(4, movi(0, 1234));
        let stats = fuse(&mut lir);
        assert_eq!(stats, IdiomStats::default());
    }
}
