//! Wall-clock timers for the four JIT compilation phases (Fig. 20), plus the
//! tier-level accounting of the two-tier translation service: how much JIT
//! wall-clock the run thread actually *stalled* on versus what ran hidden on
//! background formation workers.

use std::time::{Duration, Instant};

/// The four phases of the online pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Guest instruction decoding.
    Decode,
    /// Generator-function invocation / DAG collapse / LIR emission.
    Translate,
    /// Live-range analysis and register assignment.
    RegAlloc,
    /// Lowering and byte encoding.
    Encode,
}

/// Accumulated time per phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimers {
    /// Time spent decoding guest instructions.
    pub decode: Duration,
    /// Time spent in translation (DAG building and collapse).
    pub translate: Duration,
    /// Time spent in register allocation.
    pub regalloc: Duration,
    /// Time spent encoding machine code.
    pub encode: Duration,
    /// Number of blocks translated.
    pub blocks: u64,
    /// Number of guest instructions translated.
    pub guest_insns: u64,
    /// Regfile stores deleted by the block-scoped optimiser (dead-flag /
    /// covered-slot elimination), across all translations.
    pub opt_dead_stores: u64,
    /// Regfile loads the optimiser rewrote into register moves.
    pub opt_forwarded_loads: u64,
    /// Partial-width forwards (subset of `opt_forwarded_loads`): 32-bit
    /// loads satisfied by the low half of a 64-bit store with an explicit
    /// mask.
    pub opt_partial_forwarded: u64,
    /// Register-copy uses folded by straight-line copy propagation.
    pub opt_copies_folded: u64,
    /// LIR instructions marked dead by the allocator's iterative DCE.
    pub opt_dce_insns: u64,
    /// Register-file slots promoted to loop-carried host registers.
    pub opt_promoted_slots: u64,
    /// In-loop regfile loads hoisted into the preheader (satisfied from a
    /// carrier register instead of memory).
    pub opt_hoisted_loads: u64,
    /// Vector (XMM) regfile loads forwarded from earlier vector stores or
    /// loads, including cross-file GPR<->XMM transfers.
    pub opt_fp_forwarded: u64,
    /// Translations abandoned because lowering found an unassigned virtual
    /// register (the engine fell back to an UNDEF stub or dropped the
    /// region).
    pub lower_bailouts: u64,
    /// Total idiom-layer rewrites across all rules (see [`crate::idiom`]).
    pub opt_idioms_fused: u64,
    /// Per-rule idiom rewrites, indexed by [`crate::idiom::RuleKind::index`].
    pub idiom_hits: [u64; crate::idiom::RULE_COUNT],
    /// Per-rule idiom candidates (sites that matched and passed soundness,
    /// enabled or not) — the rule miner's input.
    pub idiom_candidates: [u64; crate::idiom::RULE_COUNT],
}

impl PhaseTimers {
    /// Runs `f`, attributing its wall-clock time to `phase`.
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        let elapsed = start.elapsed();
        match phase {
            Phase::Decode => self.decode += elapsed,
            Phase::Translate => self.translate += elapsed,
            Phase::RegAlloc => self.regalloc += elapsed,
            Phase::Encode => self.encode += elapsed,
        }
        r
    }

    /// Total JIT compilation time.
    pub fn total(&self) -> Duration {
        self.decode + self.translate + self.regalloc + self.encode
    }

    /// Fraction of total time spent in each phase, in the order
    /// (decode, translate, regalloc, encode).  Returns zeros if nothing has
    /// been timed yet.
    pub fn fractions(&self) -> (f64, f64, f64, f64) {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.decode.as_secs_f64() / total,
            self.translate.as_secs_f64() / total,
            self.regalloc.as_secs_f64() / total,
            self.encode.as_secs_f64() / total,
        )
    }

    /// Merges another set of timers into this one.
    pub fn merge(&mut self, other: &PhaseTimers) {
        self.decode += other.decode;
        self.translate += other.translate;
        self.regalloc += other.regalloc;
        self.encode += other.encode;
        self.blocks += other.blocks;
        self.guest_insns += other.guest_insns;
        self.opt_dead_stores += other.opt_dead_stores;
        self.opt_forwarded_loads += other.opt_forwarded_loads;
        self.opt_partial_forwarded += other.opt_partial_forwarded;
        self.opt_copies_folded += other.opt_copies_folded;
        self.opt_dce_insns += other.opt_dce_insns;
        self.opt_promoted_slots += other.opt_promoted_slots;
        self.opt_hoisted_loads += other.opt_hoisted_loads;
        self.opt_fp_forwarded += other.opt_fp_forwarded;
        self.lower_bailouts += other.lower_bailouts;
        self.opt_idioms_fused += other.opt_idioms_fused;
        for i in 0..crate::idiom::RULE_COUNT {
            self.idiom_hits[i] += other.idiom_hits[i];
            self.idiom_candidates[i] += other.idiom_candidates[i];
        }
    }
}

/// Wall-clock accounting of the tiered translation service, kept separate
/// from the per-phase [`PhaseTimers`]: these attribute time to *who paid for
/// it* (the run thread vs a background worker), not to a pipeline phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct TierTimers {
    /// JIT wall-clock the run thread blocked on: tier-0 block translation,
    /// snapshot capture, waits for in-flight tier-1 results, and synchronous
    /// formation fallbacks.  This is the guest-visible translation latency.
    pub run_thread_stall: Duration,
    /// Share of `run_thread_stall` spent capturing formation snapshots.
    pub snapshot_build: Duration,
    /// Wall-clock spent inside tier-1 workers forming regions (runs hidden
    /// behind tier-0 execution; overlaps `run_thread_stall` only when the
    /// run thread had to wait for a result).
    pub worker_wall: Duration,
    /// Time from engine construction to the first gated (multi-constituent
    /// or looping) region install, if one happened.
    pub first_install: Option<Duration>,
}

impl TierTimers {
    /// Runs `f`, charging its wall-clock to the run thread's stall account.
    pub fn stall<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.run_thread_stall += start.elapsed();
        r
    }

    /// Records the first gated-region install at `since_launch` after engine
    /// construction (later installs are ignored).
    pub fn record_install(&mut self, since_launch: Duration) {
        self.first_install.get_or_insert(since_launch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one_when_timed() {
        let mut t = PhaseTimers::default();
        t.time(Phase::Decode, || {
            std::thread::sleep(Duration::from_millis(1))
        });
        t.time(Phase::Translate, || {
            std::thread::sleep(Duration::from_millis(2))
        });
        t.time(Phase::RegAlloc, || {
            std::thread::sleep(Duration::from_millis(1))
        });
        t.time(Phase::Encode, || {
            std::thread::sleep(Duration::from_millis(1))
        });
        let (d, tr, r, e) = t.fractions();
        assert!((d + tr + r + e - 1.0).abs() < 1e-9);
        assert!(tr > 0.0);
    }

    #[test]
    fn zero_state_reports_zero_fractions() {
        let t = PhaseTimers::default();
        assert_eq!(t.fractions(), (0.0, 0.0, 0.0, 0.0));
        assert_eq!(t.total(), Duration::ZERO);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PhaseTimers {
            blocks: 2,
            guest_insns: 10,
            ..Default::default()
        };
        let b = PhaseTimers {
            blocks: 3,
            guest_insns: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.blocks, 5);
        assert_eq!(a.guest_insns, 17);
    }
}
