//! The invocation-DAG builder (translation phase).
//!
//! Generator functions call methods on [`Emitter`] to describe an
//! instruction's data flow (Fig. 7 of the paper).  Pure operations become
//! nodes in a DAG; operations with run-time side effects (stores to the guest
//! register file, memory writes, PC updates, helper calls, branches) collapse
//! the DAG at that point: the trees feeding the effect are evaluated into
//! virtual registers, emitting low-level IR immediately (Figs. 9 and 10).
//!
//! Evaluation is memoised per node, constants are folded as nodes are built,
//! and a few tree patterns are specialised at collapse time (e.g. a PC store
//! of `PC + imm` becomes a single `add $imm, %r15`) — the "weak form of tree
//! pattern matching on demand" described in Section 2.3.2.
//!
//! Collapse does not discard the register-file slot information it is given:
//! every regfile load/store keeps its byte offset and access width in the
//! emitted [`LirInsn`] (classified by [`LirInsn::regfile_load`] /
//! [`LirInsn::regfile_store`]), which is what lets the [`crate::opt`] passes
//! reason about slot liveness over the finished LIR.

use crate::cache::BlockExit;
use crate::lir::{LirInsn, LirMem, LirOperand, Vreg, VregClass};
use hvm::{AluOp, Cond, FpOp, MemSize, VecOp};
use std::collections::HashMap;

/// Identifier of a DAG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(u32);

/// Value types carried on DAG edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// Unsigned integers of various widths (held in 64-bit registers).
    U8,
    U16,
    U32,
    U64,
    /// Single-precision float (held in a vector register).
    F32,
    /// Double-precision float (held in a vector register).
    F64,
    /// A full 128-bit vector.
    V128,
}

impl ValueType {
    /// Memory access size corresponding to this type.
    pub fn mem_size(self) -> MemSize {
        match self {
            ValueType::U8 => MemSize::U8,
            ValueType::U16 => MemSize::U16,
            ValueType::U32 | ValueType::F32 => MemSize::U32,
            ValueType::U64 | ValueType::F64 => MemSize::U64,
            ValueType::V128 => MemSize::U128,
        }
    }

    /// Whether values of this type live in vector registers.
    pub fn is_fp(self) -> bool {
        matches!(self, ValueType::F32 | ValueType::F64 | ValueType::V128)
    }
}

/// Integer binary operators available on DAG nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Mul,
    MulHiU,
    MulHiS,
    DivU,
    DivS,
    RemU,
    RemS,
    Shl,
    Shr,
    Sar,
    Ror,
}

impl BinOp {
    fn to_alu(self) -> AluOp {
        match self {
            BinOp::Add => AluOp::Add,
            BinOp::Sub => AluOp::Sub,
            BinOp::And => AluOp::And,
            BinOp::Or => AluOp::Or,
            BinOp::Xor => AluOp::Xor,
            BinOp::Mul => AluOp::Mul,
            BinOp::MulHiU => AluOp::MulHiU,
            BinOp::MulHiS => AluOp::MulHiS,
            BinOp::DivU => AluOp::DivU,
            BinOp::DivS => AluOp::DivS,
            BinOp::RemU => AluOp::RemU,
            BinOp::RemS => AluOp::RemS,
            BinOp::Shl => AluOp::Shl,
            BinOp::Shr => AluOp::Shr,
            BinOp::Sar => AluOp::Sar,
            BinOp::Ror => AluOp::Ror,
        }
    }

    fn fold(self, a: u64, b: u64) -> u64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::MulHiU => ((a as u128 * b as u128) >> 64) as u64,
            BinOp::MulHiS => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
            BinOp::DivU => a.checked_div(b).unwrap_or(0),
            BinOp::DivS => {
                if b == 0 {
                    0
                } else {
                    (a as i64).wrapping_div(b as i64) as u64
                }
            }
            BinOp::RemU => a.checked_rem(b).unwrap_or(0),
            BinOp::RemS => {
                if b == 0 {
                    0
                } else {
                    (a as i64).wrapping_rem(b as i64) as u64
                }
            }
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::Sar => ((a as i64).wrapping_shr((b & 63) as u32)) as u64,
            BinOp::Ror => a.rotate_right((b & 63) as u32),
        }
    }
}

/// Floating-point binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
}

/// One DAG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// A constant value known at translation time (a *fixed* value in the
    /// paper's fixed/dynamic terminology).
    Const { value: u64, ty: ValueType },
    /// A read of the guest register file at a fixed byte offset.
    ReadReg { offset: i32, ty: ValueType },
    /// The guest program counter.
    ReadPc,
    /// Integer binary operation.
    Binary { op: BinOp, a: NodeId, b: NodeId },
    /// Zero-extension from `from` bits.
    Zext { a: NodeId, from: ValueType },
    /// Sign-extension from `from` bits.
    Sext { a: NodeId, from: ValueType },
    /// Comparison producing 0 or 1.
    Compare { cond: Cond, a: NodeId, b: NodeId },
    /// Conditional select `cond ? t : f` (cond is a 0/1 node).
    Select { cond: NodeId, t: NodeId, f: NodeId },
    /// Guest memory load at a virtual address.
    LoadMem {
        addr: NodeId,
        ty: ValueType,
        sext: bool,
    },
    /// Floating-point binary operation.
    FpBinary {
        op: FpBinOp,
        a: NodeId,
        b: NodeId,
        ty: ValueType,
    },
    /// Floating-point square root.
    FpSqrt { a: NodeId, ty: ValueType },
    /// Fused multiply-add `a * b + c`.
    FpMulAdd { a: NodeId, b: NodeId, c: NodeId },
    /// Signed 64-bit integer to double.
    IntToFp { a: NodeId },
    /// Double to signed 64-bit integer.
    FpToInt { a: NodeId },
    /// Single to double.
    FpWiden { a: NodeId },
    /// Double to single.
    FpNarrow { a: NodeId },
    /// Move an integer value into a vector register (bit pattern reinterpretation).
    GprToFp { a: NodeId },
    /// Move a vector register's low 64 bits into an integer value.
    FpToGpr { a: NodeId },
    /// Packed vector operation.
    VecBinary { op: VecOp, a: NodeId, b: NodeId },
    /// A 128-bit guest register-file read.
    ReadVec { offset: i32 },
    /// Return value of the most recent helper call.
    HelperResult { seq: u32 },
}

/// Evaluated location of a node (constants are re-materialised from the DAG
/// rather than memoised, so only register locations are recorded).
#[derive(Debug, Clone, Copy)]
enum Loc {
    Gpr(Vreg),
    Xmm(Vreg),
}

/// Statistics the emitter reports for a finished block.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmitStats {
    /// Nodes created in the invocation DAG.
    pub nodes: u32,
    /// Nodes folded to constants at translation time (fixed evaluation).
    pub folded: u32,
    /// LIR instructions emitted.
    pub lir_insns: u32,
}

/// The invocation-DAG builder and LIR emitter.
pub struct Emitter {
    nodes: Vec<Node>,
    lir: Vec<LirInsn>,
    /// Memoised evaluation results (node -> location).
    evaluated: HashMap<NodeId, Loc>,
    next_vreg: u32,
    next_label: u32,
    helper_seq: u32,
    /// Set when the block must not fall through (a branch set the PC).
    end_of_block: bool,
    /// Terminator metadata recorded by the PC-setting effects; `None` while
    /// no terminator has been emitted (the translator turns that into
    /// [`BlockExit::Fallthrough`] when the block ends at a limit).
    exit: Option<BlockExit>,
    /// Trace-stitching mode (superblock formation): when the next direct
    /// terminator targets this VA, the emitter keeps the block open — the
    /// on-trace leg sets the PC and falls through (plus a
    /// [`LirInsn::TraceEdge`] marker), the off-trace leg of a conditional
    /// becomes a side-exit stub that sets the PC and returns.
    trace_next: Option<u64>,
    /// Set when the last terminator was stitched instead of ending the block.
    stitched: bool,
    /// Back-edge stitching mode (looping regions): when the next direct
    /// terminator targets this VA, the loop closes *inside* the region — the
    /// loop leg becomes a [`LirInsn::BackEdge`] to the label bound at the
    /// target's first constituent, the exit leg of a conditional becomes a
    /// side-exit stub.
    trace_back: Option<(u64, u32)>,
    /// Set when the last terminator closed as a region-internal back-edge.
    stitched_back: bool,
    /// Out-of-line side-exit stubs accumulated by stitched conditionals:
    /// (label, off-trace PC).  Emitted after the main stream by
    /// [`Emitter::finish`] so the hot path pays only the guarding `Jcc`.
    pending_stubs: Vec<(u32, u64)>,
    stats: EmitStats,
}

impl Default for Emitter {
    fn default() -> Self {
        Self::new()
    }
}

impl Emitter {
    /// Creates an empty emitter for one guest basic block.
    pub fn new() -> Self {
        Emitter {
            nodes: Vec::with_capacity(64),
            lir: Vec::with_capacity(64),
            evaluated: HashMap::new(),
            next_vreg: 0,
            next_label: 0,
            helper_seq: 0,
            end_of_block: false,
            exit: None,
            trace_next: None,
            stitched: false,
            trace_back: None,
            stitched_back: false,
            pending_stubs: Vec::new(),
            stats: EmitStats::default(),
        }
    }

    fn push_node(&mut self, node: Node) -> NodeId {
        self.stats.nodes += 1;
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    fn node(&self, id: NodeId) -> Node {
        self.nodes[id.0 as usize]
    }

    fn new_vreg(&mut self, class: VregClass) -> Vreg {
        let v = Vreg {
            id: self.next_vreg,
            class,
        };
        self.next_vreg += 1;
        v
    }

    fn emit(&mut self, insn: LirInsn) {
        self.stats.lir_insns += 1;
        self.lir.push(insn);
    }

    /// Marks the current guest instruction as ending the basic block.  When
    /// no PC-setting effect recorded a successor (exceptions, `ERET`,
    /// system-register writes), the terminator is indirect and the block is
    /// never chained.
    pub fn set_end_of_block(&mut self) {
        self.end_of_block = true;
        if self.exit.is_none() {
            self.exit = Some(BlockExit::Indirect);
        }
    }

    /// Whether a branch-type effect already terminated the block.
    pub fn end_of_block(&self) -> bool {
        self.end_of_block
    }

    /// Terminator metadata recorded so far (`None` if no terminator was
    /// emitted, i.e. the block falls through at a translation limit).
    pub fn exit_hint(&self) -> Option<BlockExit> {
        self.exit
    }

    /// Emission statistics for the block so far.
    pub fn stats(&self) -> EmitStats {
        self.stats
    }

    // -- trace stitching (superblock formation) ------------------------------

    /// Arms trace-stitching for the next generated instruction: a direct
    /// terminator whose on-trace target is `va` will fall through into the
    /// next constituent instead of ending the block.
    pub fn set_trace_next(&mut self, va: u64) {
        self.trace_next = Some(va);
        self.stitched = false;
    }

    /// Disarms stitching and reports whether the last terminator was
    /// stitched (fell through) rather than ending the block.
    pub fn take_stitched(&mut self) -> bool {
        self.trace_next = None;
        self.stitched
    }

    /// Emits an intra-superblock constituent-boundary marker (used directly
    /// by the superblock former for page-crossing fallthrough edges).
    pub fn trace_edge(&mut self) {
        self.emit(LirInsn::TraceEdge);
    }

    // -- back-edge stitching (looping regions) -------------------------------

    /// Arms back-edge stitching for the next generated instruction: a direct
    /// terminator whose loop-side target is `va` closes the loop inside the
    /// region with a [`LirInsn::BackEdge`] to `label` instead of ending the
    /// trace.
    pub fn set_trace_back(&mut self, va: u64, label: u32) {
        self.trace_back = Some((va, label));
        self.stitched_back = false;
    }

    /// Disarms back-edge stitching and reports whether the last terminator
    /// closed as a region-internal back-edge.
    pub fn take_stitched_back(&mut self) -> bool {
        self.trace_back = None;
        self.stitched_back
    }

    /// Retroactively binds a fresh label at LIR position `pos` (the start of
    /// an already-emitted constituent), returning its id.  The region former
    /// calls this when a trace closes a back-edge: the loop header is only
    /// known to *be* a loop header once the back-edge is reached, so the
    /// label is inserted after the fact.  Positions recorded after `pos`
    /// shift by one; the former closes the trace immediately after, so no
    /// stale positions survive.
    pub fn insert_label_at(&mut self, pos: usize) -> u32 {
        let id = self.new_label();
        debug_assert!(pos <= self.lir.len());
        self.lir.insert(pos, LirInsn::Label { id });
        self.stats.lir_insns += 1;
        id
    }

    /// Current length of the emitted LIR stream (used by the region former
    /// to record constituent start positions for back-edge labels).
    pub fn lir_pos(&self) -> usize {
        self.lir.len()
    }

    /// Closes a loop: emits the combined PC-update-and-backward-jump to the
    /// armed back-edge label and ends the block (the trace cannot continue
    /// past a closed loop — the loop now iterates inside the region and only
    /// leaves through side exits).
    fn close_back_edge(&mut self, pc: u64, label: u32) {
        self.emit(LirInsn::BackEdge {
            pc,
            label,
            reconcile: false,
            weight: 1,
        });
        self.stitched_back = true;
        self.trace_back = None;
        self.end_of_block = true;
    }

    /// Stitches a direct transfer to `target`: the PC is updated for precise
    /// state, a trace-edge marker is recorded, and the block stays open.
    fn stitch_to(&mut self, target: u64) {
        self.emit(LirInsn::SetPcImm { imm: target });
        self.emit(LirInsn::TraceEdge);
        self.stitched = true;
        self.trace_next = None;
    }

    // -- constants -----------------------------------------------------------

    /// A 64-bit constant node (fixed value).
    pub fn const_u64(&mut self, value: u64) -> NodeId {
        self.push_node(Node::Const {
            value,
            ty: ValueType::U64,
        })
    }

    /// A 32-bit constant node.
    pub fn const_u32(&mut self, value: u32) -> NodeId {
        self.push_node(Node::Const {
            value: value as u64,
            ty: ValueType::U32,
        })
    }

    /// An 8-bit constant node.
    pub fn const_u8(&mut self, value: u8) -> NodeId {
        self.push_node(Node::Const {
            value: value as u64,
            ty: ValueType::U8,
        })
    }

    /// A double-precision constant node (bit pattern).
    pub fn const_f64_bits(&mut self, bits: u64) -> NodeId {
        self.push_node(Node::Const {
            value: bits,
            ty: ValueType::F64,
        })
    }

    /// Returns the constant value of a node if it is fixed.
    pub fn as_const(&self, id: NodeId) -> Option<u64> {
        match self.node(id) {
            Node::Const { value, .. } => Some(value),
            _ => None,
        }
    }

    // -- guest state reads (dynamic values) ----------------------------------

    /// Reads the guest register file at a fixed byte offset.
    pub fn load_register(&mut self, offset: i32, ty: ValueType) -> NodeId {
        if ty == ValueType::V128 {
            return self.push_node(Node::ReadVec { offset });
        }
        self.push_node(Node::ReadReg { offset, ty })
    }

    /// Reads the guest program counter.
    pub fn read_pc(&mut self) -> NodeId {
        self.push_node(Node::ReadPc)
    }

    /// Loads from guest memory at the virtual address given by `addr`.
    pub fn load_memory(&mut self, addr: NodeId, ty: ValueType, sext: bool) -> NodeId {
        self.push_node(Node::LoadMem { addr, ty, sext })
    }

    // -- pure operators ------------------------------------------------------

    /// Integer binary operation node; folds when both operands are fixed.
    pub fn binary(&mut self, op: BinOp, a: NodeId, b: NodeId) -> NodeId {
        if let (Some(x), Some(y)) = (self.as_const(a), self.as_const(b)) {
            self.stats.folded += 1;
            return self.const_u64(op.fold(x, y));
        }
        self.push_node(Node::Binary { op, a, b })
    }

    /// Shorthand for `binary(BinOp::Add, ..)`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::Add, a, b)
    }

    /// Shorthand for `binary(BinOp::Sub, ..)`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::Sub, a, b)
    }

    /// Zero-extension from the low bits of `from`.
    pub fn zext(&mut self, a: NodeId, from: ValueType) -> NodeId {
        if let Some(v) = self.as_const(a) {
            return self.const_u64(v & from.mem_size().mask());
        }
        self.push_node(Node::Zext { a, from })
    }

    /// Sign-extension from the low bits of `from`.
    pub fn sext(&mut self, a: NodeId, from: ValueType) -> NodeId {
        if let Some(v) = self.as_const(a) {
            let bits = from.mem_size().bytes() * 8;
            let shift = 64 - bits;
            return self.const_u64((((v << shift) as i64) >> shift) as u64);
        }
        self.push_node(Node::Sext { a, from })
    }

    /// Comparison node producing 0/1.
    pub fn compare(&mut self, cond: Cond, a: NodeId, b: NodeId) -> NodeId {
        self.push_node(Node::Compare { cond, a, b })
    }

    /// Conditional select node.
    pub fn select(&mut self, cond: NodeId, t: NodeId, f: NodeId) -> NodeId {
        if let Some(c) = self.as_const(cond) {
            return if c != 0 { t } else { f };
        }
        self.push_node(Node::Select { cond, t, f })
    }

    /// Floating-point binary operation node.
    pub fn fp_binary(&mut self, op: FpBinOp, a: NodeId, b: NodeId, ty: ValueType) -> NodeId {
        self.push_node(Node::FpBinary { op, a, b, ty })
    }

    /// Floating-point square root node.
    pub fn fp_sqrt(&mut self, a: NodeId, ty: ValueType) -> NodeId {
        self.push_node(Node::FpSqrt { a, ty })
    }

    /// Fused multiply-add node (`a * b + c`).
    pub fn fp_mul_add(&mut self, a: NodeId, b: NodeId, c: NodeId) -> NodeId {
        self.push_node(Node::FpMulAdd { a, b, c })
    }

    /// Conversion nodes.
    pub fn int_to_fp(&mut self, a: NodeId) -> NodeId {
        self.push_node(Node::IntToFp { a })
    }

    /// Double to signed 64-bit integer.
    pub fn fp_to_int(&mut self, a: NodeId) -> NodeId {
        self.push_node(Node::FpToInt { a })
    }

    /// Single to double precision.
    pub fn fp_widen(&mut self, a: NodeId) -> NodeId {
        self.push_node(Node::FpWiden { a })
    }

    /// Double to single precision.
    pub fn fp_narrow(&mut self, a: NodeId) -> NodeId {
        self.push_node(Node::FpNarrow { a })
    }

    /// Reinterpret an integer value as a vector-register value.
    pub fn gpr_to_fp(&mut self, a: NodeId) -> NodeId {
        self.push_node(Node::GprToFp { a })
    }

    /// Reinterpret a vector-register value as an integer value.
    pub fn fp_to_gpr(&mut self, a: NodeId) -> NodeId {
        self.push_node(Node::FpToGpr { a })
    }

    /// Packed vector operation node.
    pub fn vec_binary(&mut self, op: VecOp, a: NodeId, b: NodeId) -> NodeId {
        self.push_node(Node::VecBinary { op, a, b })
    }

    // -- evaluation ("collapse") ---------------------------------------------

    fn eval_to_operand(&mut self, id: NodeId) -> LirOperand {
        match self.node(id) {
            Node::Const { value, .. } => LirOperand::Imm(value),
            _ => LirOperand::Vreg(self.eval_to_gpr(id)),
        }
    }

    /// Evaluates a node into a general-purpose virtual register.
    pub fn eval_to_gpr(&mut self, id: NodeId) -> Vreg {
        if let Some(loc) = self.evaluated.get(&id) {
            match *loc {
                Loc::Gpr(v) => return v,
                Loc::Xmm(x) => {
                    let dst = self.new_vreg(VregClass::Gpr);
                    self.emit(LirInsn::XmmToGpr { dst, src: x });
                    self.evaluated.insert(id, Loc::Gpr(dst));
                    return dst;
                }
            }
        }
        let node = self.node(id);
        let dst = match node {
            Node::Const { value, .. } => {
                let dst = self.new_vreg(VregClass::Gpr);
                self.emit(LirInsn::MovImm { dst, imm: value });
                dst
            }
            Node::ReadReg { offset, ty } => {
                let dst = self.new_vreg(VregClass::Gpr);
                self.emit(LirInsn::Load {
                    dst,
                    addr: LirMem::regfile(offset),
                    size: ty.mem_size(),
                });
                dst
            }
            Node::ReadPc => {
                let dst = self.new_vreg(VregClass::Gpr);
                self.emit(LirInsn::ReadPc { dst });
                dst
            }
            Node::Binary { op, a, b } => {
                let av = self.eval_to_gpr(a);
                let bo = self.eval_to_operand(b);
                let dst = self.new_vreg(VregClass::Gpr);
                self.emit(LirInsn::MovReg { dst, src: av });
                self.emit(LirInsn::Alu {
                    op: op.to_alu(),
                    dst,
                    src: bo,
                });
                dst
            }
            Node::Zext { a, from } => {
                let av = self.eval_to_gpr(a);
                let dst = self.new_vreg(VregClass::Gpr);
                self.emit(LirInsn::MovZx {
                    dst,
                    src: av,
                    size: from.mem_size(),
                });
                dst
            }
            Node::Sext { a, from } => {
                let av = self.eval_to_gpr(a);
                let dst = self.new_vreg(VregClass::Gpr);
                self.emit(LirInsn::MovSx {
                    dst,
                    src: av,
                    size: from.mem_size(),
                });
                dst
            }
            Node::Compare { cond, a, b } => {
                let av = self.eval_to_gpr(a);
                let bo = self.eval_to_operand(b);
                let dst = self.new_vreg(VregClass::Gpr);
                self.emit(LirInsn::Cmp { a: av, b: bo });
                self.emit(LirInsn::SetCc { cond, dst });
                dst
            }
            Node::Select { cond, t, f } => {
                let cv = self.eval_to_gpr(cond);
                let tv = self.eval_to_gpr(t);
                let fv = self.eval_to_gpr(f);
                let dst = self.new_vreg(VregClass::Gpr);
                self.emit(LirInsn::MovReg { dst, src: fv });
                self.emit(LirInsn::Test {
                    a: cv,
                    b: LirOperand::Vreg(cv),
                });
                self.emit(LirInsn::CmovCc {
                    cond: Cond::Ne,
                    dst,
                    src: tv,
                });
                dst
            }
            Node::LoadMem { addr, ty, sext } => {
                let mem = self.address_operand(addr);
                let dst = self.new_vreg(VregClass::Gpr);
                if sext {
                    self.emit(LirInsn::LoadSx {
                        dst,
                        addr: mem,
                        size: ty.mem_size(),
                    });
                } else {
                    self.emit(LirInsn::Load {
                        dst,
                        addr: mem,
                        size: ty.mem_size(),
                    });
                }
                dst
            }
            Node::FpToGpr { a } => {
                let x = self.eval_to_xmm(a);
                let dst = self.new_vreg(VregClass::Gpr);
                self.emit(LirInsn::XmmToGpr { dst, src: x });
                dst
            }
            Node::FpToInt { a } => {
                let x = self.eval_to_xmm(a);
                let dst = self.new_vreg(VregClass::Gpr);
                self.emit(LirInsn::CvtD2I { dst, src: x });
                dst
            }
            Node::HelperResult { .. } => {
                // Helper results are captured eagerly at call time; reaching
                // this point means the result node was re-used after another
                // call, which the memoisation above prevents.
                let dst = self.new_vreg(VregClass::Gpr);
                self.emit(LirInsn::ReadRet { dst });
                dst
            }
            // Floating-point-valued nodes evaluated into a GPR: go through
            // a vector register then move across.
            _ => {
                let x = self.eval_to_xmm(id);
                let dst = self.new_vreg(VregClass::Gpr);
                self.emit(LirInsn::XmmToGpr { dst, src: x });
                dst
            }
        };
        self.evaluated.insert(id, Loc::Gpr(dst));
        dst
    }

    /// Evaluates a node into a vector (floating-point) virtual register.
    pub fn eval_to_xmm(&mut self, id: NodeId) -> Vreg {
        if let Some(Loc::Xmm(v)) = self.evaluated.get(&id) {
            return *v;
        }
        let node = self.node(id);
        let dst = match node {
            Node::Const { value, .. } => {
                let g = self.new_vreg(VregClass::Gpr);
                self.emit(LirInsn::MovImm { dst: g, imm: value });
                let dst = self.new_vreg(VregClass::Xmm);
                self.emit(LirInsn::GprToXmm { dst, src: g });
                dst
            }
            Node::ReadReg { offset, ty } => {
                let dst = self.new_vreg(VregClass::Xmm);
                self.emit(LirInsn::LoadXmm {
                    dst,
                    addr: LirMem::regfile(offset),
                    size: ty.mem_size(),
                });
                dst
            }
            Node::ReadVec { offset } => {
                let dst = self.new_vreg(VregClass::Xmm);
                self.emit(LirInsn::LoadXmm {
                    dst,
                    addr: LirMem::regfile(offset),
                    size: MemSize::U128,
                });
                dst
            }
            Node::LoadMem { addr, ty, .. } => {
                let mem = self.address_operand(addr);
                let dst = self.new_vreg(VregClass::Xmm);
                self.emit(LirInsn::LoadXmm {
                    dst,
                    addr: mem,
                    size: ty.mem_size(),
                });
                dst
            }
            Node::FpBinary { op, a, b, ty } => {
                let av = self.eval_to_xmm(a);
                let bv = self.eval_to_xmm(b);
                let dst = self.new_vreg(VregClass::Xmm);
                // Two-address form: copy the left operand, then operate in
                // place so `a` stays available for other uses.
                self.emit_fp_copy(dst, av);
                let fop = match (op, ty) {
                    (FpBinOp::Add, ValueType::F32) => FpOp::AddS,
                    (FpBinOp::Sub, ValueType::F32) => FpOp::SubS,
                    (FpBinOp::Mul, ValueType::F32) => FpOp::MulS,
                    (FpBinOp::Div, ValueType::F32) => FpOp::DivS,
                    (FpBinOp::Add, _) => FpOp::AddD,
                    (FpBinOp::Sub, _) => FpOp::SubD,
                    (FpBinOp::Mul, _) => FpOp::MulD,
                    (FpBinOp::Div, _) => FpOp::DivD,
                    (FpBinOp::Min, _) => FpOp::MinD,
                    (FpBinOp::Max, _) => FpOp::MaxD,
                };
                self.emit(LirInsn::Fp {
                    op: fop,
                    dst,
                    src: bv,
                });
                dst
            }
            Node::FpSqrt { a, ty } => {
                let av = self.eval_to_xmm(a);
                let dst = self.new_vreg(VregClass::Xmm);
                let op = if ty == ValueType::F32 {
                    FpOp::SqrtS
                } else {
                    FpOp::SqrtD
                };
                self.emit(LirInsn::Fp { op, dst, src: av });
                dst
            }
            Node::FpMulAdd { a, b, c } => {
                let av = self.eval_to_xmm(a);
                let bv = self.eval_to_xmm(b);
                let cv = self.eval_to_xmm(c);
                let dst = self.new_vreg(VregClass::Xmm);
                self.emit_fp_copy(dst, cv);
                self.emit(LirInsn::FpFma { dst, a: av, b: bv });
                dst
            }
            Node::IntToFp { a } => {
                let av = self.eval_to_gpr(a);
                let dst = self.new_vreg(VregClass::Xmm);
                self.emit(LirInsn::CvtI2D { dst, src: av });
                dst
            }
            Node::FpWiden { a } => {
                let av = self.eval_to_xmm(a);
                let dst = self.new_vreg(VregClass::Xmm);
                self.emit(LirInsn::CvtS2D { dst, src: av });
                dst
            }
            Node::FpNarrow { a } => {
                let av = self.eval_to_xmm(a);
                let dst = self.new_vreg(VregClass::Xmm);
                self.emit(LirInsn::CvtD2S { dst, src: av });
                dst
            }
            Node::GprToFp { a } => {
                let av = self.eval_to_gpr(a);
                let dst = self.new_vreg(VregClass::Xmm);
                self.emit(LirInsn::GprToXmm { dst, src: av });
                dst
            }
            Node::VecBinary { op, a, b } => {
                let av = self.eval_to_xmm(a);
                let bv = self.eval_to_xmm(b);
                let dst = self.new_vreg(VregClass::Xmm);
                self.emit_fp_copy(dst, av);
                self.emit(LirInsn::Vec { op, dst, src: bv });
                dst
            }
            // Integer-valued node required in a vector register.
            _ => {
                let g = self.eval_to_gpr(id);
                let dst = self.new_vreg(VregClass::Xmm);
                self.emit(LirInsn::GprToXmm { dst, src: g });
                dst
            }
        };
        self.evaluated.insert(id, Loc::Xmm(dst));
        dst
    }

    fn emit_fp_copy(&mut self, dst: Vreg, src: Vreg) {
        // Vector copy: clear the destination then OR the source in.  The LIR
        // (like SSE before AVX) has no three-operand forms, so two-address FP
        // operations copy their left operand first.
        self.emit(LirInsn::Vec {
            op: VecOp::PXor,
            dst,
            src: dst,
        });
        self.emit(LirInsn::Vec {
            op: VecOp::POr,
            dst,
            src,
        });
    }

    /// Builds a memory operand for an address node, folding `base + const`
    /// patterns into displacements (address-mode pattern matching).
    fn address_operand(&mut self, addr: NodeId) -> LirMem {
        if let Node::Binary {
            op: BinOp::Add,
            a,
            b,
        } = self.node(addr)
        {
            if let Some(c) = self.as_const(b) {
                if let Ok(disp) = i32::try_from(c as i64) {
                    let base = self.eval_to_gpr(a);
                    return LirMem::vreg(base, disp);
                }
            }
            if let Some(c) = self.as_const(a) {
                if let Ok(disp) = i32::try_from(c as i64) {
                    let base = self.eval_to_gpr(b);
                    return LirMem::vreg(base, disp);
                }
            }
        }
        let base = self.eval_to_gpr(addr);
        LirMem::vreg(base, 0)
    }

    // -- side effects (DAG collapse points) -----------------------------------

    /// Stores a value to the guest register file at a fixed byte offset.
    pub fn store_register(&mut self, offset: i32, value: NodeId) {
        let ty = self.value_type(value);
        if ty.is_fp() {
            let v = self.eval_to_xmm(value);
            self.emit(LirInsn::StoreXmm {
                src: v,
                addr: LirMem::regfile(offset),
                size: ty.mem_size(),
            });
            return;
        }
        match self.eval_to_operand(value) {
            LirOperand::Imm(imm) => self.emit(LirInsn::StoreImm {
                imm,
                addr: LirMem::regfile(offset),
                size: MemSize::U64,
            }),
            LirOperand::Vreg(v) => self.emit(LirInsn::Store {
                src: v,
                addr: LirMem::regfile(offset),
                size: MemSize::U64,
            }),
        }
    }

    /// Stores a value to the guest register file with an explicit width.
    pub fn store_register_sized(&mut self, offset: i32, value: NodeId, size: MemSize) {
        if size == MemSize::U128 {
            let v = self.eval_to_xmm(value);
            self.emit(LirInsn::StoreXmm {
                src: v,
                addr: LirMem::regfile(offset),
                size,
            });
            return;
        }
        match self.eval_to_operand(value) {
            LirOperand::Imm(imm) => self.emit(LirInsn::StoreImm {
                imm,
                addr: LirMem::regfile(offset),
                size,
            }),
            LirOperand::Vreg(v) => self.emit(LirInsn::Store {
                src: v,
                addr: LirMem::regfile(offset),
                size,
            }),
        }
    }

    /// Stores to guest memory at a virtual address.
    pub fn store_memory(&mut self, addr: NodeId, value: NodeId, ty: ValueType) {
        let mem = self.address_operand(addr);
        if ty.is_fp() {
            let v = self.eval_to_xmm(value);
            self.emit(LirInsn::StoreXmm {
                src: v,
                addr: mem,
                size: ty.mem_size(),
            });
            return;
        }
        match self.eval_to_operand(value) {
            LirOperand::Imm(imm) => self.emit(LirInsn::StoreImm {
                imm,
                addr: mem,
                size: ty.mem_size(),
            }),
            LirOperand::Vreg(v) => self.emit(LirInsn::Store {
                src: v,
                addr: mem,
                size: ty.mem_size(),
            }),
        }
    }

    /// Advances the guest PC by a constant — collapses to a single host add
    /// on `%r15` (the specialisation highlighted in Fig. 9/10).
    pub fn inc_pc(&mut self, bytes: u64) {
        self.emit(LirInsn::IncPc { imm: bytes });
    }

    /// Sets the guest PC to a value: a fixed value is a direct jump (a
    /// chaining candidate), a dynamic one an indirect branch.
    pub fn store_pc(&mut self, value: NodeId) {
        if let Some(c) = self.as_const(value) {
            if let Some((back_va, label)) = self.trace_back {
                if back_va == c {
                    // Unconditional loop-back: the region iterates internally
                    // from here on.  The Jump exit metadata still lets a
                    // coincident side exit to the header chain.
                    if self.exit.is_none() {
                        self.exit = Some(BlockExit::Jump { target: c });
                    }
                    self.close_back_edge(c, label);
                    return;
                }
            }
            if self.trace_next == Some(c) {
                self.stitch_to(c);
                return;
            }
            self.emit(LirInsn::SetPcImm { imm: c });
            if self.exit.is_none() {
                self.exit = Some(BlockExit::Jump { target: c });
            }
        } else {
            let v = self.eval_to_gpr(value);
            self.emit(LirInsn::SetPcReg { src: v });
            if self.exit.is_none() {
                self.exit = Some(BlockExit::Indirect);
            }
        }
        self.set_end_of_block();
    }

    /// Sets the guest PC to `taken` if `cond` (a 0/1 node) is non-zero, and
    /// to `fallthrough` otherwise; ends the block.
    pub fn branch_cond(&mut self, cond: NodeId, taken: u64, fallthrough: u64) {
        if let Some(c) = self.as_const(cond) {
            let target = if c != 0 { taken } else { fallthrough };
            if let Some((back_va, label)) = self.trace_back {
                if back_va == target {
                    if self.exit.is_none() {
                        self.exit = Some(BlockExit::Jump { target });
                    }
                    self.close_back_edge(target, label);
                    return;
                }
            }
            if self.trace_next == Some(target) {
                self.stitch_to(target);
                return;
            }
            self.emit(LirInsn::SetPcImm { imm: target });
            if self.exit.is_none() {
                self.exit = Some(BlockExit::Jump { target });
            }
            self.set_end_of_block();
            return;
        }
        if let Some((back_va, label)) = self.trace_back {
            if back_va == taken || back_va == fallthrough {
                // Loop-closing conditional: the loop leg becomes the
                // region-internal back-edge, the exit leg an out-of-line
                // side-exit stub — the hot path per iteration is just the
                // test, the not-taken guard and the back-edge itself.  The
                // Branch exit metadata lets the dispatcher chain the loop
                // exit like any other conditional leg.
                let (off, leave_cond) = if back_va == taken {
                    (fallthrough, Cond::Eq)
                } else {
                    (taken, Cond::Ne)
                };
                if self.exit.is_none() {
                    self.exit = Some(BlockExit::Branch { taken, fallthrough });
                }
                let cv = self.eval_to_gpr(cond);
                let stub = self.new_label();
                self.emit(LirInsn::Test {
                    a: cv,
                    b: LirOperand::Vreg(cv),
                });
                self.emit(LirInsn::Jcc {
                    cond: leave_cond,
                    label: stub,
                });
                self.pending_stubs.push((stub, off));
                self.close_back_edge(back_va, label);
                return;
            }
        }
        if let Some(next) = self.trace_next {
            if next == taken || next == fallthrough {
                // Stitched conditional: the on-trace leg falls through to the
                // next constituent; the off-trace leg jumps to an out-of-line
                // side-exit stub (PC set to the off-trace target, then a
                // return to the dispatcher with precise guest state), so the
                // hot path never executes the stub's PC materialisation.
                let (off, leave_cond) = if next == taken {
                    (fallthrough, Cond::Eq)
                } else {
                    (taken, Cond::Ne)
                };
                let cv = self.eval_to_gpr(cond);
                let stub = self.new_label();
                self.emit(LirInsn::Test {
                    a: cv,
                    b: LirOperand::Vreg(cv),
                });
                self.emit(LirInsn::Jcc {
                    cond: leave_cond,
                    label: stub,
                });
                self.pending_stubs.push((stub, off));
                self.stitch_to(next);
                return;
            }
        }
        if self.exit.is_none() {
            self.exit = Some(BlockExit::Branch { taken, fallthrough });
        }
        let cv = self.eval_to_gpr(cond);
        let label = self.new_label();
        self.emit(LirInsn::Test {
            a: cv,
            b: LirOperand::Vreg(cv),
        });
        self.emit(LirInsn::SetPcImm { imm: fallthrough });
        self.emit(LirInsn::Jcc {
            cond: Cond::Eq,
            label,
        });
        self.emit(LirInsn::SetPcImm { imm: taken });
        self.bind_label(label);
        self.set_end_of_block();
    }

    /// Allocates an intra-block label for generator-internal control flow.
    pub fn new_label(&mut self) -> u32 {
        let l = self.next_label;
        self.next_label += 1;
        l
    }

    /// Binds a label at the current position.
    pub fn bind_label(&mut self, label: u32) {
        self.emit(LirInsn::Label { id: label });
    }

    /// Emits an unconditional jump to a label.
    pub fn jump(&mut self, label: u32) {
        self.emit(LirInsn::Jmp { label });
    }

    /// Emits a conditional jump to a label based on a 0/1 node.
    pub fn jump_if(&mut self, cond: NodeId, label: u32) {
        let cv = self.eval_to_gpr(cond);
        self.emit(LirInsn::Test {
            a: cv,
            b: LirOperand::Vreg(cv),
        });
        self.emit(LirInsn::Jcc {
            cond: Cond::Ne,
            label,
        });
    }

    /// Calls a runtime helper with up to four arguments, returning a node for
    /// its result.  The result is captured into a virtual register
    /// immediately (the call itself is a side effect).
    pub fn call_helper(&mut self, helper: u16, args: &[NodeId]) -> NodeId {
        assert!(args.len() <= 4, "at most four helper arguments supported");
        for (i, &a) in args.iter().enumerate() {
            let op = self.eval_to_operand(a);
            self.emit(LirInsn::SetArg {
                index: i as u8,
                src: op,
            });
        }
        self.emit(LirInsn::CallHelper { helper });
        self.helper_seq += 1;
        let node = self.push_node(Node::HelperResult {
            seq: self.helper_seq,
        });
        let dst = self.new_vreg(VregClass::Gpr);
        self.emit(LirInsn::ReadRet { dst });
        self.evaluated.insert(node, Loc::Gpr(dst));
        node
    }

    /// Emits a raw software interrupt (system-level operations).
    pub fn software_interrupt(&mut self, vector: u8) {
        self.emit(LirInsn::Int { vector });
    }

    /// Emits a host TLB flush (Captive ring-0 generated code only).
    pub fn host_tlb_flush(&mut self) {
        self.emit(LirInsn::TlbFlushAll);
    }

    /// Emits a port write of a value node.
    pub fn port_out(&mut self, port: u16, value: NodeId) {
        let v = self.eval_to_gpr(value);
        self.emit(LirInsn::Out { port, src: v });
    }

    fn value_type(&self, id: NodeId) -> ValueType {
        match self.node(id) {
            Node::Const { ty, .. } => ty,
            Node::ReadReg { ty, .. } => ty,
            Node::LoadMem { ty, .. } => ty,
            Node::FpBinary { ty, .. } => ty,
            Node::FpSqrt { ty, .. } => ty,
            Node::FpMulAdd { .. } | Node::IntToFp { .. } | Node::FpWiden { .. } => ValueType::F64,
            Node::FpNarrow { .. } => ValueType::F32,
            Node::GprToFp { .. } => ValueType::F64,
            Node::VecBinary { .. } | Node::ReadVec { .. } => ValueType::V128,
            _ => ValueType::U64,
        }
    }

    /// Finishes the block: appends the dispatcher return, then the
    /// out-of-line side-exit stubs accumulated by stitched conditionals
    /// (each a label, the off-trace PC materialisation and a return), and
    /// hands back the accumulated low-level IR.
    pub fn finish(mut self) -> Vec<LirInsn> {
        self.lir.push(LirInsn::Ret);
        for (label, off) in std::mem::take(&mut self.pending_stubs) {
            self.lir.push(LirInsn::Label { id: label });
            self.lir.push(LirInsn::SetPcImm { imm: off });
            self.lir.push(LirInsn::Ret);
        }
        self.lir
    }

    /// Number of LIR instructions emitted so far (excluding the final `Ret`).
    pub fn lir_len(&self) -> usize {
        self.lir.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lir::LirBase;

    #[test]
    fn constant_folding_is_applied() {
        let mut e = Emitter::new();
        let a = e.const_u64(40);
        let b = e.const_u64(2);
        let c = e.add(a, b);
        assert_eq!(e.as_const(c), Some(42));
        assert_eq!(e.stats().folded, 1);
    }

    #[test]
    fn register_add_emits_load_alu_store() {
        // The running "add" example of the paper: rd = rn + rm.
        let mut e = Emitter::new();
        let rn = e.load_register(0x100, ValueType::U64);
        let rm = e.load_register(0x108, ValueType::U64);
        let sum = e.add(rn, rm);
        e.store_register(0x100, sum);
        e.inc_pc(4);
        let lir = e.finish();
        // Two loads, a copy+add, a store, the PC increment and the return.
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::Load { addr, .. } if addr.disp == 0x108)));
        assert!(lir.iter().any(|i| matches!(i, LirInsn::Alu { .. })));
        assert!(lir.iter().any(|i| matches!(i, LirInsn::Store { .. })));
        assert!(lir.iter().any(|i| matches!(i, LirInsn::IncPc { imm: 4 })));
        assert!(matches!(lir.last(), Some(LirInsn::Ret)));
    }

    #[test]
    fn store_of_constant_uses_store_imm() {
        let mut e = Emitter::new();
        let c = e.const_u64(123);
        e.store_register(0x10, c);
        let lir = e.finish();
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::StoreImm { imm: 123, .. })));
    }

    #[test]
    fn shared_nodes_are_evaluated_once() {
        let mut e = Emitter::new();
        let rn = e.load_register(0x20, ValueType::U64);
        let doubled = e.add(rn, rn);
        e.store_register(0x20, doubled);
        e.store_register(0x28, doubled);
        let lir = e.finish();
        let loads = lir
            .iter()
            .filter(|i| matches!(i, LirInsn::Load { .. }))
            .count();
        assert_eq!(loads, 1, "the shared ReadReg node must be evaluated once");
    }

    #[test]
    fn memory_address_folding() {
        let mut e = Emitter::new();
        let base = e.load_register(0x40, ValueType::U64);
        let off = e.const_u64(16);
        let addr = e.add(base, off);
        let val = e.load_memory(addr, ValueType::U64, false);
        e.store_register(0x48, val);
        let lir = e.finish();
        assert!(
            lir.iter().any(|i| matches!(
                i,
                LirInsn::Load { addr, .. } if matches!(addr.base, LirBase::Vreg(_)) && addr.disp == 16
            )),
            "constant offset should fold into the displacement"
        );
    }

    #[test]
    fn branch_cond_sets_both_targets() {
        let mut e = Emitter::new();
        let flag = e.load_register(0x200, ValueType::U64);
        let zero = e.const_u64(0);
        let cond = e.compare(Cond::Ne, flag, zero);
        e.branch_cond(cond, 0x2000, 0x1004);
        assert!(e.end_of_block());
        let lir = e.finish();
        let pc_sets = lir
            .iter()
            .filter(|i| matches!(i, LirInsn::SetPcImm { .. }))
            .count();
        assert_eq!(pc_sets, 2);
        assert!(lir.iter().any(|i| matches!(i, LirInsn::Jcc { .. })));
    }

    #[test]
    fn constant_condition_branch_folds_to_single_pc_set() {
        let mut e = Emitter::new();
        let one = e.const_u64(1);
        e.branch_cond(one, 0x3000, 0x1004);
        let lir = e.finish();
        let pc_sets: Vec<_> = lir
            .iter()
            .filter(|i| matches!(i, LirInsn::SetPcImm { .. }))
            .collect();
        assert_eq!(pc_sets.len(), 1);
        assert!(matches!(pc_sets[0], LirInsn::SetPcImm { imm: 0x3000 }));
    }

    #[test]
    fn fp_multiply_goes_through_xmm_registers() {
        // The Fig. 11/13 example: fmul d0, d1, d2 becomes a load, mulsd, store.
        let mut e = Emitter::new();
        let d1 = e.load_register(0x110, ValueType::F64);
        let d2 = e.load_register(0x120, ValueType::F64);
        let prod = e.fp_binary(FpBinOp::Mul, d1, d2, ValueType::F64);
        e.store_register(0x100, prod);
        e.inc_pc(4);
        let lir = e.finish();
        assert!(lir.iter().any(|i| matches!(i, LirInsn::LoadXmm { .. })));
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::Fp { op: FpOp::MulD, .. })));
        assert!(lir.iter().any(|i| matches!(i, LirInsn::StoreXmm { .. })));
        // Crucially there is no helper call, unlike the QEMU output in Fig. 12.
        assert!(!lir.iter().any(|i| matches!(i, LirInsn::CallHelper { .. })));
    }

    #[test]
    fn helper_calls_capture_results() {
        let mut e = Emitter::new();
        let a = e.const_u64(1);
        let b = e.const_u64(2);
        let r = e.call_helper(9, &[a, b]);
        e.store_register(0, r);
        let lir = e.finish();
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::SetArg { index: 0, .. })));
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::SetArg { index: 1, .. })));
        assert!(lir
            .iter()
            .any(|i| matches!(i, LirInsn::CallHelper { helper: 9 })));
        assert!(lir.iter().any(|i| matches!(i, LirInsn::ReadRet { .. })));
    }
}
